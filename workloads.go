package mimdraid

import (
	"repro/internal/advisor"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/tracegen"
	"repro/internal/workload"
)

// Trace is a timestamped block-level workload.
type Trace = trace.Trace

// TraceStats are the workload characteristics of Table 3.
type TraceStats = trace.Stats

// CelloBaseTrace synthesizes a trace with the profile of the paper's
// merged Cello file-system workload (Table 3), sized to about ios I/Os.
func CelloBaseTrace(seed int64, ios int) *Trace {
	return genTrace(tracegen.CelloBase(seed), ios)
}

// CelloDisk6Trace synthesizes the news-spool workload profile.
func CelloDisk6Trace(seed int64, ios int) *Trace {
	return genTrace(tracegen.CelloDisk6(seed), ios)
}

// TPCCTrace synthesizes the TPC-C disk workload profile.
func TPCCTrace(seed int64, ios int) *Trace {
	return genTrace(tracegen.TPCC(seed), ios)
}

func genTrace(p tracegen.Params, ios int) *Trace {
	d := Time(float64(ios) / p.MeanIOPS * 1e6)
	return tracegen.Generate(p.WithDuration(d))
}

// ReplayStats summarizes a trace replay.
type ReplayStats struct {
	Completed int
	// Mean, P95 and Max describe the response times of reads and
	// synchronous writes, the population the paper reports.
	Mean, P95, Max Time
	// Saturated reports the offered load exceeded the array's sustainable
	// throughput (queues grew without bound).
	Saturated bool
}

// Replay plays a trace open-loop against the array, submitting each
// record at its timestamp, and returns response-time statistics.
func Replay(sim *Sim, a *Array, tr *Trace) (*ReplayStats, error) {
	res, err := workload.Replay(sim, a.Array, tr)
	if err != nil {
		return nil, err
	}
	return &ReplayStats{
		Completed: res.Completed,
		Mean:      res.Sync.Mean(),
		P95:       res.Sync.Percentile(95),
		Max:       res.Sync.Max(),
		Saturated: res.Saturated,
	}, nil
}

// ClosedLoop is an Iometer-style generator: Outstanding requests kept in
// flight, ReadFrac-weighted reads of Sectors sectors, offsets drawn with
// seek-locality index Locality.
type ClosedLoop = workload.Iometer

// LoadResult summarizes a closed-loop run.
type LoadResult struct {
	Completed int
	IOPS      float64
	Mean, P95 Time
}

// RunClosedLoop drives the array with total requests under the closed
// loop and reports throughput and latency.
func RunClosedLoop(sim *Sim, a *Array, w ClosedLoop, total int) (*LoadResult, error) {
	res, err := w.Run(sim, a.Array, total)
	if err != nil {
		return nil, err
	}
	return &LoadResult{
		Completed: res.Completed,
		IOPS:      res.IOPS,
		Mean:      res.Latency.Mean(),
		P95:       res.Latency.Percentile(95),
	}, nil
}

// Collector re-exports the sample collector for callers aggregating their
// own response times.
type Collector = stats.Collector

// Advisor re-exports the online workload monitor that implements the
// paper's future-work item: estimating the model parameters (p, q, L)
// from the live request stream and recommending reconfigurations.
type Advisor = advisor.Monitor

// AdvisorObservation is one request fed to an Advisor.
type AdvisorObservation = advisor.Observation

// NewAdvisor builds an online workload monitor for a volume of
// dataSectors sectors.
func NewAdvisor(dataSectors int64) *Advisor { return advisor.NewMonitor(dataSectors) }
