// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each benchmark runs the corresponding experiment end to end
// (trace synthesis, array simulation, measurement) and reports the
// headline quantities as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the full evaluation. The per-iteration configuration is
// reduced (fewer I/Os per data point than the week-long traces); pass
// -benchtime=1x for a single full pass per figure, and see cmd/mimdraid
// for larger runs.
package mimdraid

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/experiments"
	"repro/internal/runner"
	"repro/internal/tracegen"
)

// benchCfg keeps each iteration around a second of wall time.
func benchCfg() experiments.Config {
	return experiments.Config{TraceIOs: 1500, IometerIOs: 1200, Seed: 1}
}

func BenchmarkTable1Platform(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Table1().String() == "" {
			b.Fatal("empty")
		}
	}
}

func BenchmarkTable2HeadPrediction(b *testing.B) {
	var last *experiments.Table2Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table2(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.MissRate*100, "miss%")
	b.ReportMetric(float64(last.Demerit), "demerit-us")
	b.ReportMetric(float64(last.AvgAccess), "access-us")
}

func BenchmarkTable3TraceStats(b *testing.B) {
	var res *experiments.Table3Result
	for i := 0; i < b.N; i++ {
		res = experiments.Table3(benchCfg())
	}
	b.ReportMetric(res.Rows[0].Measured.SeekLocality, "cello-L")
	b.ReportMetric(res.Rows[2].Measured.RAWFrac*100, "tpcc-raw%")
}

// benchFigure runs a figure experiment and reports selected points.
func benchFigure(b *testing.B, f func(experiments.Config) (*experiments.Figure, error), metrics map[string][2]interface{}) {
	b.Helper()
	var fig *experiments.Figure
	for i := 0; i < b.N; i++ {
		var err error
		fig, err = f(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	for name, sel := range metrics {
		label := sel[0].(string)
		x := sel[1].(float64)
		b.ReportMetric(fig.At(label, x), name)
	}
}

func BenchmarkFigure5Validation(b *testing.B) {
	benchFigure(b, experiments.Figure5, map[string][2]interface{}{
		"sim-q32-iops":   {"reads simulator", 32.0},
		"proto-q32-iops": {"reads prototype", 32.0},
	})
}

func BenchmarkFigure6CelloBase(b *testing.B) {
	benchFigure(b, func(c experiments.Config) (*experiments.Figure, error) {
		return experiments.Figure6(c, "cello-base")
	}, map[string][2]interface{}{
		"sr6-us":     {"SR-Array (RSATF)", 6.0},
		"stripe6-us": {"striping (SATF)", 6.0},
		"raid6-us":   {"RAID-10 (SATF)", 6.0},
	})
}

func BenchmarkFigure6CelloDisk6(b *testing.B) {
	benchFigure(b, func(c experiments.Config) (*experiments.Figure, error) {
		return experiments.Figure6(c, "cello-disk6")
	}, map[string][2]interface{}{
		"sr6-us":     {"SR-Array (RSATF)", 6.0},
		"stripe6-us": {"striping (SATF)", 6.0},
	})
}

func BenchmarkFigure7AspectRatios(b *testing.B) {
	benchFigure(b, func(c experiments.Config) (*experiments.Figure, error) {
		return experiments.Figure7(c, "cello-base")
	}, map[string][2]interface{}{
		"chosen6-us": {"model-chosen", 6.0},
	})
}

func BenchmarkFigure8TPCC(b *testing.B) {
	benchFigure(b, experiments.Figure8, map[string][2]interface{}{
		"sr36-us":     {"SR-Array (RSATF)", 36.0},
		"stripe36-us": {"striping (SATF)", 36.0},
	})
}

func BenchmarkFigure9Schedulers(b *testing.B) {
	benchFigure(b, func(c experiments.Config) (*experiments.Figure, error) {
		return experiments.Figure9(c, "cello-base")
	}, map[string][2]interface{}{
		"satf-r16-us":  {"striping SATF", 16.0},
		"rsatf-r16-us": {"SR-Array RSATF", 16.0},
	})
}

func BenchmarkFigure10CelloRates(b *testing.B) {
	benchFigure(b, func(c experiments.Config) (*experiments.Figure, error) {
		return experiments.Figure10(c, "cello-base")
	}, map[string][2]interface{}{
		"sr23-r16-us":   {"2x3x1 rsatf", 16.0},
		"stripe-r16-us": {"6x1x1 satf", 16.0},
	})
}

func BenchmarkFigure10TPCCRates(b *testing.B) {
	benchFigure(b, func(c experiments.Config) (*experiments.Figure, error) {
		return experiments.Figure10(c, "tpcc")
	}, map[string][2]interface{}{
		"sr94-r1-us":   {"9x4x1 rsatf", 1.0},
		"stripe-r1-us": {"36x1x1 satf", 1.0},
	})
}

func BenchmarkFigure11MemoryVsDisks(b *testing.B) {
	benchFigure(b, func(c experiments.Config) (*experiments.Figure, error) {
		return experiments.Figure11(c, "cello-base")
	}, map[string][2]interface{}{
		"disks1-us": {"SR-Array x1", 1.0},
		"disks6-us": {"SR-Array x1", 6.0},
	})
}

func BenchmarkFigure12Throughput(b *testing.B) {
	benchFigure(b, experiments.Figure12, map[string][2]interface{}{
		"sr-q8-d12-iops":     {"q8 SR-Array RSATF", 12.0},
		"stripe-q8-d12-iops": {"q8 striping SATF", 12.0},
		"model-q8-d12-iops":  {"q8 RLOOK model", 12.0},
	})
}

func BenchmarkFigure13WriteRatio(b *testing.B) {
	benchFigure(b, experiments.Figure13, map[string][2]interface{}{
		"sr-w0-iops":       {"q8 3x2x1 RSATF", 0.0},
		"stripe-w0-iops":   {"q8 6x1x1 SATF", 0.0},
		"sr-w100-iops":     {"q8 3x2x1 RSATF", 100.0},
		"stripe-w100-iops": {"q8 6x1x1 SATF", 100.0},
	})
}

// BenchmarkFigure6Parallel measures the end-to-end figure with one worker
// versus every core, trace cache cleared each iteration so the synthesis
// cost is included: the ratio of the two sub-benchmarks is the wall-time
// speedup the parallel runner buys on this machine.
func BenchmarkFigure6Parallel(b *testing.B) {
	workers := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		workers = append(workers, n)
	}
	for _, w := range workers {
		b.Run(fmt.Sprintf("workers%d", w), func(b *testing.B) {
			prev := runner.SetParallelism(w)
			defer runner.SetParallelism(prev)
			for i := 0; i < b.N; i++ {
				tracegen.ResetCache()
				if _, err := experiments.Figure6(benchCfg(), "cello-base"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBigArrayEventsPerSec measures the raw event throughput of
// multi-brick clusters (bricks of 4x2x2 plus a front-end client) under
// each driver: the legacy lockstep co-simulator (a global min-clock scan
// over every sim per event) and the sharded epoch engine at one, two, and
// four workers. Two scales run: the 128-drive default, and a 1024-drive
// cluster where the lockstep driver's O(sims) per-event scan dominates —
// the scaling wall the epoch engine exists to remove. Within a scale
// every sub-benchmark executes the identical simulation — digests are
// asserted equal by TestShardedMatchesSequential — so events/sec is
// directly comparable across drivers and worker counts.
func BenchmarkBigArrayEventsPerSec(b *testing.B) {
	cfg := benchCfg()
	big := experiments.DefaultBigArraySpec(cfg)
	huge := big
	huge.Bricks = 64
	huge.IOs = cfg.IometerIOs * 8
	huge.Outstanding = 16 * huge.Bricks
	run := func(spec experiments.BigArraySpec, f func(experiments.BigArraySpec) (*experiments.BigArrayResult, error), workers int) func(*testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			var events uint64
			for i := 0; i < b.N; i++ {
				s := spec
				s.Workers = workers
				r, err := f(s)
				if err != nil {
					b.Fatal(err)
				}
				events += r.Events
			}
			b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
		}
	}
	for _, scale := range []struct {
		name string
		spec experiments.BigArraySpec
	}{{"drives128", big}, {"drives1024", huge}} {
		b.Run(scale.name+"/lockstep", run(scale.spec, experiments.RunBigArrayLockstep, 0))
		for _, w := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("%s/epoch-w%d", scale.name, w), run(scale.spec, experiments.RunBigArray, w))
		}
	}
}

func BenchmarkAblationReplicaPlacement(b *testing.B) {
	var fig *experiments.Figure
	for i := 0; i < b.N; i++ {
		fig = experiments.AblationReplicaPlacement(benchCfg())
	}
	b.ReportMetric(fig.At("evenly spaced", 3), "even-dr3-us")
	b.ReportMetric(fig.At("randomly placed", 3), "random-dr3-us")
}

func BenchmarkAblationSlack(b *testing.B) {
	benchFigure(b, experiments.AblationSlack, map[string][2]interface{}{
		"k0-miss%":       {"rotation miss %", 0.0},
		"adaptive-miss%": {"rotation miss %", 1.0},
	})
}

func BenchmarkAblationCoalesce(b *testing.B) {
	benchFigure(b, experiments.AblationCoalesce, map[string][2]interface{}{
		"on-cmds-per-write":  {"commands per write", 1.0},
		"off-cmds-per-write": {"commands per write", 0.0},
	})
}

func BenchmarkAblationMirrorSched(b *testing.B) {
	benchFigure(b, experiments.AblationMirrorSched, map[string][2]interface{}{
		"dup-q16-us":    {"duplicate-request", 16.0},
		"static-q16-us": {"static nearest", 16.0},
	})
}

func BenchmarkAblationOpportunistic(b *testing.B) {
	benchFigure(b, experiments.AblationOpportunistic, map[string][2]interface{}{
		"off-miss%":    {"rotation miss %", 0.0},
		"on-miss%":     {"rotation miss %", 1.0},
		"off-refreads": {"reference reads after bootstrap", 0.0},
		"on-refreads":  {"reference reads after bootstrap", 1.0},
	})
}

func BenchmarkAblationIntraTrack(b *testing.B) {
	benchFigure(b, experiments.AblationIntraTrack, map[string][2]interface{}{
		"intra-seq-mbps": {"sequential bandwidth (MB/s)", 0.0},
		"cross-seq-mbps": {"sequential bandwidth (MB/s)", 1.0},
	})
}

func BenchmarkSection25StripedMirror(b *testing.B) {
	benchFigure(b, experiments.Section25, map[string][2]interface{}{
		"sr-q16-iops": {"2x3x1 SR-Array (RSATF)", 16.0},
		"sm-q16-iops": {"2x1x3 striped mirror (SATF)", 16.0},
	})
}

func BenchmarkTCQ(b *testing.B) {
	benchFigure(b, experiments.TCQ, map[string][2]interface{}{
		"host-rsatf-q32-iops": {"2x3 host RSATF", 32.0},
		"tcq-naive-q32-iops":  {"2x3 TCQ drive SATF (naive host)", 32.0},
	})
}

func BenchmarkSensitivity(b *testing.B) {
	benchFigure(b, experiments.Sensitivity, map[string][2]interface{}{
		"slow-spindle-best-dr": {"measured-best Dr", 0.0},
		"slow-arm-best-dr":     {"measured-best Dr", 3.0},
	})
}

func BenchmarkAdvisor(b *testing.B) {
	benchFigure(b, experiments.AdvisorDemo, map[string][2]interface{}{
		"drift-first-window": {"drift of static 12x1 striping", 1.0},
	})
}

func BenchmarkBreakdown(b *testing.B) {
	benchFigure(b, experiments.Breakdown, map[string][2]interface{}{
		"stripe-rotation-us": {"rotation", 0.0},
		"sr-rotation-us":     {"rotation", 2.0},
	})
}

// BenchmarkChaos runs the crash/power-fail experiment end to end: the
// recovery micro once per NVRAM durability mode, then the scripted chaos
// scenario over the four-brick cluster at 1/2/4 epoch workers (digest
// equality asserted inside). Headline tolerance metrics ride along.
func BenchmarkChaos(b *testing.B) {
	var fig *experiments.Figure
	for i := 0; i < b.N; i++ {
		var err error
		fig, err = experiments.Chaos(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(fig.Metrics["cluster/slo_pct"], "slo%")
	b.ReportMetric(fig.Metrics["cluster/divergent_after"], "divergent-after")
	b.ReportMetric(fig.Metrics["recovery/volatile/repaired"], "volatile-repaired")
}
