// Command mimdserve exposes the simulated array as a storage service.
//
// Three modes:
//
//	mimdserve                        serve the HTTP block API on -addr
//	mimdserve -load                  drive a deterministic multi-tenant load
//	                                 in-process and print the report
//	mimdserve -smoke                 tiny double-run determinism check
//	                                 (exit 1 on digest mismatch)
//
// Serve mode bridges real wall-clock HTTP clients onto the array's
// virtual clock (non-deterministic gateway mode):
//
//	mimdserve -addr localhost:8077 &
//	curl 'http://localhost:8077/v1/vol/read?off=0&count=8'
//	curl -XPOST 'http://localhost:8077/v1/vol/write?off=4096&count=16'
//	curl 'http://localhost:8077/v1/stats'
//
// Per-tenant rate limits (-rate/-burst, tenant = X-Tenant header) and the
// array's own admission control (-max-queue-depth) both surface as HTTP
// 429 with Retry-After.
//
// -slo attaches the per-tenant SLO control plane: tenants carry a tier
// (premium / standard / best-effort — name your live tenants with a
// "premium..." or "best..." X-Tenant prefix, the load generator's
// "t%05d" fleet is classified one premium and two each standard and
// best-effort per five), the controller judges windowed p99 against the
// -slo-*-ms targets, and under sustained violation it defers background
// work, then sheds best-effort, then standard — never premium. Brownout
// is visible in /v1/stats ("slo") and /healthz ("degraded: <level>");
// shed requests answer 429 with "shed: service brownout".
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/layout"
	"repro/internal/service"
	"repro/internal/slo"
)

func main() {
	var (
		addr  = flag.String("addr", "localhost:8077", "serve mode: HTTP listen address")
		load  = flag.Bool("load", false, "run the deterministic load generator instead of serving")
		smoke = flag.Bool("smoke", false, "run a small load twice and verify byte-identical digests")

		ds     = flag.Int("ds", 8, "striping degree (Ds)")
		dr     = flag.Int("dr", 2, "rotational replicas (Dr)")
		dm     = flag.Int("dm", 1, "mirrors (Dm)")
		policy = flag.String("policy", "", "scheduler policy; empty picks the paper pairing (rsatf when Dr>1, else satf)")
		depth  = flag.Int("max-queue-depth", 8, "array admission control: shed when a target drive's queue reaches this (0 = off)")
		seed   = flag.Int64("seed", 1, "random seed")

		rate  = flag.Float64("rate", 0, "default per-tenant rate limit in requests per virtual second (0 = unlimited)")
		burst = flag.Float64("burst", 4, "default per-tenant burst")

		sloOn       = flag.Bool("slo", false, "attach the per-tenant SLO control plane (adaptive degradation + priority shedding)")
		sloWindowMs = flag.Float64("slo-window-ms", 100, "SLO evaluation window, virtual ms")
		sloPremMs   = flag.Float64("slo-premium-ms", 25, "premium p99 target, virtual ms (0 = unjudged)")
		sloStdMs    = flag.Float64("slo-standard-ms", 60, "standard p99 target, virtual ms (0 = unjudged)")
		sloBeMs     = flag.Float64("slo-besteffort-ms", 0, "best-effort p99 target, virtual ms (0 = unjudged)")
		sloViolate  = flag.Int("slo-violate", 3, "consecutive violating windows before escalating one brownout level")
		sloRecover  = flag.Int("slo-recover", 4, "consecutive compliant windows before stepping one level back")

		tenants  = flag.Int("tenants", 1000, "load mode: simulated tenants")
		requests = flag.Int("requests", 100000, "load mode: total HTTP requests")
		thinkMs  = flag.Float64("think-ms", 200, "load mode: mean per-tenant think time, virtual ms")
		retries  = flag.Int("retries", 2, "load mode: retries per operation after a 429")
		windowMs = flag.Float64("window-ms", 0, "load mode: report window in virtual ms (0 = auto)")
	)
	flag.Parse()

	cfg := layout.Config{Ds: *ds, Dr: *dr, Dm: *dm}
	pol := *policy
	if pol == "" {
		pol = "satf"
		if cfg.Dr > 1 {
			pol = "rsatf"
		}
	}
	ms := func(v float64) des.Time { return des.Time(v * float64(des.Millisecond)) }
	build := func() (*core.Array, *slo.Controller, error) {
		a, err := core.New(des.New(), core.Options{
			Config: cfg, Policy: pol, Seed: *seed, MaxQueueDepth: *depth,
			// Arm the power switch so /v1/admin/crash and /v1/admin/recover
			// work over the wire.
			Crash: core.CrashModel{Enabled: true, Durability: core.BatteryBacked},
		})
		if err != nil {
			return nil, nil, err
		}
		if !*sloOn {
			return a, nil, nil
		}
		var targets [slo.NumTiers]des.Time
		targets[slo.Premium] = ms(*sloPremMs)
		targets[slo.Standard] = ms(*sloStdMs)
		targets[slo.BestEffort] = ms(*sloBeMs)
		ctl, err := slo.New(a, slo.Options{
			Window:         ms(*sloWindowMs),
			Targets:        targets,
			ViolateWindows: *sloViolate,
			RecoverWindows: *sloRecover,
			Classify:       tierOf,
		})
		if err != nil {
			return nil, nil, err
		}
		return a, ctl, nil
	}
	limits := service.Limits{Default: service.TenantLimit{Rate: *rate, Burst: *burst}}

	switch {
	case *smoke:
		os.Exit(runSmoke(build, limits))
	case *load:
		window := des.Time(*windowMs * float64(des.Millisecond))
		os.Exit(runLoad(build, limits, service.LoadConfig{
			Tenants:    *tenants,
			Requests:   *requests,
			Seed:       *seed,
			ThinkMean:  des.Time(*thinkMs * float64(des.Millisecond)),
			MaxRetries: *retries,
			Window:     window,
		}))
	default:
		os.Exit(serve(build, limits, *addr))
	}
}

// tierOf classifies a tenant: explicit "premium..."/"best..." name
// prefixes for live HTTP tenants, index modulo five for the load
// generator's "t%05d" fleet (one premium, two standard, two best-effort
// in every five tenants), standard otherwise.
func tierOf(name string) slo.Tier {
	switch {
	case strings.HasPrefix(name, "premium"):
		return slo.Premium
	case strings.HasPrefix(name, "best"):
		return slo.BestEffort
	}
	if i, err := strconv.Atoi(strings.TrimPrefix(name, "t")); err == nil && i >= 0 {
		switch i % 5 {
		case 0:
			return slo.Premium
		case 1, 2:
			return slo.Standard
		default:
			return slo.BestEffort
		}
	}
	return slo.Standard
}

type buildFn func() (*core.Array, *slo.Controller, error)

// serve runs the real-time HTTP front-end until interrupted.
func serve(build buildFn, limits service.Limits, addr string) int {
	a, ctl, err := build()
	if err != nil {
		fmt.Fprintf(os.Stderr, "mimdserve: %v\n", err)
		return 2
	}
	gw := service.NewGateway(a, service.Config{Limits: limits, SLO: ctl})
	runErr := make(chan error, 1)
	go func() { runErr <- gw.Run() }()
	srv := &http.Server{Addr: addr, Handler: service.NewServer(gw)}
	mode := ""
	if ctl != nil {
		mode = " (SLO control plane on)"
	}
	fmt.Printf("mimdserve: serving %d sectors over %d disks on http://%s%s\n", a.DataSectors(), a.Disks(), addr, mode)
	fmt.Printf("  curl 'http://%s/v1/vol/read?off=0&count=8'\n", addr)
	fmt.Printf("  curl -XPOST 'http://%s/v1/vol/write?off=4096&count=16'\n", addr)
	fmt.Printf("  curl 'http://%s/v1/stats'\n", addr)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	srvErr := make(chan error, 1)
	go func() { srvErr <- srv.ListenAndServe() }()
	select {
	case err := <-srvErr:
		fmt.Fprintf(os.Stderr, "mimdserve: %v\n", err)
		return 1
	case <-stop:
	}
	_ = srv.Close()
	gw.Close()
	if err := <-runErr; err != nil {
		fmt.Fprintf(os.Stderr, "mimdserve: gateway: %v\n", err)
		return 1
	}
	fmt.Println("mimdserve: drained, bye")
	return 0
}

// runOnce builds a fresh stack and drives one deterministic load.
func runOnce(build buildFn, limits service.Limits, lc service.LoadConfig) (*service.LoadReport, service.Stats, string, error) {
	a, ctl, err := build()
	if err != nil {
		return nil, service.Stats{}, "", err
	}
	h := service.NewHarness(a, service.Config{Deterministic: true, Limits: limits, SLO: ctl})
	lc.Sectors = a.DataSectors()
	rep, err := h.RunLoad(lc)
	if err != nil {
		_ = h.Close()
		return nil, service.Stats{}, "", err
	}
	st := h.GW.Stats()
	if err := h.Close(); err != nil {
		return nil, service.Stats{}, "", err
	}
	// The SLO snapshot folds into the smoke digest so a nondeterministic
	// controller cannot hide behind an identical load report.
	sloState := ""
	if ctl != nil {
		sloState = ctl.State().String()
	}
	return rep, st, sloState, nil
}

func printReport(rep *service.LoadReport, st service.Stats, sloState string) {
	fmt.Printf("issued %d: ok %d, rate-limited 429 %d, overloaded 429 %d, shed 429 %d, failed %d (retries %d, sleeps %d)\n",
		rep.Issued, rep.OK, rep.Limited, rep.Overloaded, st.Shed, rep.Failed, rep.Retries, st.Sleeps)
	if sloState != "" {
		fmt.Printf("slo: %s\n", sloState)
	}
	fmt.Printf("windows %d, digest sha256 %x\n", len(rep.Windows), sha256.Sum256([]byte(rep.Digest()+sloState)))
}

func runLoad(build buildFn, limits service.Limits, lc service.LoadConfig) int {
	rep, st, sloState, err := runOnce(build, limits, lc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mimdserve: %v\n", err)
		return 1
	}
	printReport(rep, st, sloState)
	if rep.Aborted > 0 {
		fmt.Fprintf(os.Stderr, "mimdserve: %d tenants aborted\n", rep.Aborted)
		return 1
	}
	return 0
}

// runSmoke drives a small load twice and demands byte-identical digests —
// the check scripts/check.sh wires into CI.
func runSmoke(build buildFn, limits service.Limits) int {
	if limits.Default.Rate == 0 {
		limits.Default = service.TenantLimit{Rate: 8, Burst: 4}
	}
	lc := service.LoadConfig{
		Tenants: 200, Requests: 5000, Seed: 1,
		ThinkMean: 100 * des.Millisecond, MaxRetries: 2,
	}
	var digests [2]string
	for i := range digests {
		rep, st, sloState, err := runOnce(build, limits, lc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mimdserve: smoke run %d: %v\n", i+1, err)
			return 1
		}
		if i == 0 {
			printReport(rep, st, sloState)
		}
		if rep.Aborted > 0 || rep.OK == 0 {
			fmt.Fprintf(os.Stderr, "mimdserve: smoke run %d unhealthy: ok=%d aborted=%d\n", i+1, rep.OK, rep.Aborted)
			return 1
		}
		digests[i] = rep.Digest() + sloState
	}
	if digests[0] != digests[1] {
		fmt.Fprintln(os.Stderr, "mimdserve: SMOKE FAIL: digests differ across identical runs")
		return 1
	}
	fmt.Println("mimdserve: smoke ok (byte-identical digests)")
	return 0
}
