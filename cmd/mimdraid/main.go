// Command mimdraid runs the paper's evaluation experiments against the
// simulated array and prints the resulting tables and figure data.
//
// Usage:
//
//	mimdraid -list
//	mimdraid -exp fig6-cello-base
//	mimdraid -exp all -trace-ios 10000 -iometer-ios 8000
//	mimdraid -exp degraded-rebuild -json -metrics-out metrics.json -trace-out trace.jsonl
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"time"

	"repro/internal/des"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/runner"
)

func main() {
	var (
		exp        = flag.String("exp", "", "experiment name, or 'all'")
		list       = flag.Bool("list", false, "list experiment names")
		traceIOs   = flag.Int("trace-ios", 3000, "I/Os per macro (trace replay) data point")
		iometerIOs = flag.Int("iometer-ios", 2500, "I/Os per micro (closed loop) data point")
		seed       = flag.Int64("seed", 1, "random seed")
		format     = flag.String("format", "table", "figure output format: table | csv | json")
		jsonOut    = flag.Bool("json", false, "shorthand for -format json")
		metricsOut = flag.String("metrics-out", "", "write the observability registry snapshot (JSON) to this file")
		traceOut   = flag.String("trace-out", "", "write per-request trace records (JSONL) to this file")
		traceCap   = flag.Int("trace-cap", 4096, "per-drive trace ring capacity for -trace-out")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		timing     = flag.Bool("time", false, "print wall time per experiment")
		parallel   = flag.Int("parallel", runtime.GOMAXPROCS(0),
			"simulation jobs to run concurrently (1 = sequential; results are identical at any setting)")
		shards = flag.Int("shards", runtime.GOMAXPROCS(0),
			"epoch workers for sharded multi-brick simulations like -exp bigarray (1 = the sequential legacy path; results are identical at any setting)")
	)
	flag.Parse()
	runner.SetParallelism(*parallel)
	if _, err := des.SetShardWorkers(*shards); err != nil {
		fmt.Fprintf(os.Stderr, "mimdraid: -shards %d: %v\n", *shards, err)
		os.Exit(2)
	}

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "pprof: %v\n", err)
			}
		}()
	}

	if *list {
		for _, n := range experiments.Names() {
			fmt.Println(n)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "usage: mimdraid -exp <name>|all   (or -list)")
		os.Exit(2)
	}
	cfg := experiments.Config{TraceIOs: *traceIOs, IometerIOs: *iometerIOs, Seed: *seed}
	experiments.Format = *format
	if *jsonOut {
		experiments.Format = "json"
	}

	// Metrics or trace output needs a registry attached to every array the
	// experiments build. Tracing is only enabled when asked for: rings cost
	// memory per drive per run.
	var reg *obs.Registry
	if *metricsOut != "" || *traceOut != "" {
		reg = &obs.Registry{}
		if *traceOut != "" {
			reg.TraceCap = *traceCap
		}
		experiments.Observe = reg
	}

	names := []string{*exp}
	if *exp == "all" {
		names = experiments.Names()
	}
	total := time.Now()
	for _, name := range names {
		start := time.Now()
		out, err := experiments.Run(name, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(out)
		if *timing {
			fmt.Printf("  [%s took %v]\n\n", name, time.Since(start).Round(time.Millisecond))
		}
	}
	if *timing && len(names) > 1 {
		fmt.Printf("[%d experiments took %v at -parallel %d]\n",
			len(names), time.Since(total).Round(time.Millisecond), runner.Parallelism())
	}

	if reg != nil {
		if *metricsOut != "" {
			snap, err := reg.Snapshot()
			if err != nil {
				fmt.Fprintf(os.Stderr, "metrics-out: %v\n", err)
				os.Exit(1)
			}
			if err := os.WriteFile(*metricsOut, snap, 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "metrics-out: %v\n", err)
				os.Exit(1)
			}
		}
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "trace-out: %v\n", err)
				os.Exit(1)
			}
			if err := reg.WriteTraceJSONL(f); err != nil {
				fmt.Fprintf(os.Stderr, "trace-out: %v\n", err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "trace-out: %v\n", err)
				os.Exit(1)
			}
		}
	}
}
