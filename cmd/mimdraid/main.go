// Command mimdraid runs the paper's evaluation experiments against the
// simulated array and prints the resulting tables and figure data.
//
// Usage:
//
//	mimdraid -list
//	mimdraid -exp fig6-cello-base
//	mimdraid -exp all -trace-ios 10000 -iometer-ios 8000
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		exp        = flag.String("exp", "", "experiment name, or 'all'")
		list       = flag.Bool("list", false, "list experiment names")
		traceIOs   = flag.Int("trace-ios", 3000, "I/Os per macro (trace replay) data point")
		iometerIOs = flag.Int("iometer-ios", 2500, "I/Os per micro (closed loop) data point")
		seed       = flag.Int64("seed", 1, "random seed")
		format     = flag.String("format", "table", "figure output format: table | csv")
		timing     = flag.Bool("time", false, "print wall time per experiment")
	)
	flag.Parse()

	if *list {
		for _, n := range experiments.Names() {
			fmt.Println(n)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "usage: mimdraid -exp <name>|all   (or -list)")
		os.Exit(2)
	}
	cfg := experiments.Config{TraceIOs: *traceIOs, IometerIOs: *iometerIOs, Seed: *seed}
	experiments.Format = *format

	names := []string{*exp}
	if *exp == "all" {
		names = experiments.Names()
	}
	for _, name := range names {
		start := time.Now()
		out, err := experiments.Run(name, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(out)
		if *timing {
			fmt.Printf("  [%s took %v]\n\n", name, time.Since(start).Round(time.Millisecond))
		}
	}
}
