// Command mimdraid runs the paper's evaluation experiments against the
// simulated array and prints the resulting tables and figure data.
//
// Usage:
//
//	mimdraid -list
//	mimdraid -exp fig6-cello-base
//	mimdraid -exp all -trace-ios 10000 -iometer-ios 8000
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/experiments"
	"repro/internal/runner"
)

func main() {
	var (
		exp        = flag.String("exp", "", "experiment name, or 'all'")
		list       = flag.Bool("list", false, "list experiment names")
		traceIOs   = flag.Int("trace-ios", 3000, "I/Os per macro (trace replay) data point")
		iometerIOs = flag.Int("iometer-ios", 2500, "I/Os per micro (closed loop) data point")
		seed       = flag.Int64("seed", 1, "random seed")
		format     = flag.String("format", "table", "figure output format: table | csv")
		timing     = flag.Bool("time", false, "print wall time per experiment")
		parallel   = flag.Int("parallel", runtime.GOMAXPROCS(0),
			"simulation jobs to run concurrently (1 = sequential; results are identical at any setting)")
	)
	flag.Parse()
	runner.SetParallelism(*parallel)

	if *list {
		for _, n := range experiments.Names() {
			fmt.Println(n)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "usage: mimdraid -exp <name>|all   (or -list)")
		os.Exit(2)
	}
	cfg := experiments.Config{TraceIOs: *traceIOs, IometerIOs: *iometerIOs, Seed: *seed}
	experiments.Format = *format

	names := []string{*exp}
	if *exp == "all" {
		names = experiments.Names()
	}
	total := time.Now()
	for _, name := range names {
		start := time.Now()
		out, err := experiments.Run(name, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(out)
		if *timing {
			fmt.Printf("  [%s took %v]\n\n", name, time.Since(start).Round(time.Millisecond))
		}
	}
	if *timing && len(names) > 1 {
		fmt.Printf("[%d experiments took %v at -parallel %d]\n",
			len(names), time.Since(total).Round(time.Millisecond), runner.Parallelism())
	}
}
