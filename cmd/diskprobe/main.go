// Command diskprobe demonstrates the software-only calibration machinery
// against a prototype-mode drive: it measures the rotation period, the
// command overhead, the seek curve, and (optionally) extracts the full
// zone geometry from timing probes alone, then prints discovered versus
// true values.
//
// This is the tooling a deployment would run once per drive at attach
// time; the MimdRAID prototype did the same against real Seagate disks.
//
// Usage:
//
//	diskprobe [-seed 3] [-geometry] [-rpm 10000]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/bus"
	"repro/internal/calib"
	"repro/internal/des"
	"repro/internal/disk"
)

func main() {
	var (
		seed     = flag.Int64("seed", 1, "random seed for spindle phase/speed and timing noise")
		geometry = flag.Bool("geometry", false, "also run full zone-map extraction (thousands of probe I/Os)")
		rpm      = flag.Float64("rpm", 0, "override drive RPM")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	sp := disk.ST39133LWV()
	sp.RSkew = (rng.Float64()*2 - 1) * 4e-4
	sp.Phase = rng.Float64()
	if *rpm > 0 {
		sp.RPM = *rpm
	}
	d, err := sp.New()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	sim := des.New()
	drv := bus.NewPrototype(sim, d, bus.DefaultNoise(), *seed+1)

	fmt.Printf("probing %s (prototype mode, seed %d)\n\n", sp.Name, *seed)

	r := calib.MeasureRotation(sim, drv, d.NominalR)
	fmt.Printf("rotation period:  measured %.3fus   true %.3fus   (error %+.3fus)\n",
		float64(r), float64(d.R), float64(r-d.R))

	oh := calib.MeasureOverheadSum(sim, drv, drv.Geometry(), r)
	fmt.Printf("command overhead: measured %v (mean submit+complete+transfer)\n", oh)

	sc, err := calib.MeasureSeekCurve(sim, drv, drv.Geometry(), r, oh, d.Seek.WriteSettle)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("seek curve:       t(d) = %.0f + %.1f*sqrt(d) + %.3f*d us\n", sc.Alpha, sc.Beta, sc.Gamma)
	fmt.Printf("  %-10s %12s %12s\n", "distance", "measured", "true")
	for _, dist := range []int{1, 10, 100, 1000, 3000, 6000} {
		fmt.Printf("  %-10d %12v %12v\n", dist, sc.Time(dist, false), d.Seek.Time(dist, false))
	}

	trk := calib.NewTracker(drv.Geometry(), d.NominalR, oh/2)
	trk.Bootstrap(sim, drv)
	fmt.Printf("\nhead tracker:     R estimate %.3fus after %d reference reads (rel err %.2e)\n",
		float64(trk.R()), trk.ObsCount, relErr(float64(trk.R()), float64(d.R)))

	if *geometry {
		fmt.Println("\nextracting zone geometry from timing probes...")
		g, err := calib.ExtractGeometry(sim, drv, d.NominalR)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("heads:      extracted %d, true %d\n", g.Heads, d.Geom.Heads)
		fmt.Printf("track skew: extracted %d, true %d (outer zone)\n", g.TrackSkew, d.Geom.Zones[0].TrackSkew)
		fmt.Printf("cyl skew:   extracted %d, true %d (outer zone)\n", g.CylSkew, d.Geom.Zones[0].CylSkew)
		fmt.Printf("zones:      extracted %v\n", g.ZoneSPT)
		var truth []int
		for _, z := range d.Geom.Zones {
			truth = append(truth, z.SPT)
		}
		fmt.Printf("            true      %v\n", truth)
	}
	fmt.Printf("\n(simulated time consumed by probing: %v)\n", sim.Now())
}

func relErr(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d / b
}
