// Command tracegen emits a synthetic workload trace (Cello-base,
// Cello-disk6, or TPC-C profile) in the repository's text trace format.
//
// Usage:
//
//	tracegen -workload cello-base -duration 1h -seed 7 > cello.trace
//	tracegen -workload tpcc -ios 50000 > tpcc.trace
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"time"

	"repro/internal/des"
	"repro/internal/tracegen"
)

func main() {
	var (
		workload  = flag.String("workload", "cello-base", "cello-base | cello-disk6 | tpcc")
		duration  = flag.Duration("duration", 0, "trace duration (overrides -ios)")
		ios       = flag.Int("ios", 10000, "approximate I/O count (used when -duration is 0)")
		seed      = flag.Int64("seed", 1, "random seed")
		stats     = flag.Bool("stats", false, "print Table-3 statistics to stderr")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "pprof:", err)
			}
		}()
	}

	var p tracegen.Params
	switch *workload {
	case "cello-base":
		p = tracegen.CelloBase(*seed)
	case "cello-disk6":
		p = tracegen.CelloDisk6(*seed)
	case "tpcc":
		p = tracegen.TPCC(*seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workload)
		os.Exit(2)
	}
	if *duration > 0 {
		p = p.WithDuration(des.Time(duration.Microseconds()))
	} else {
		p = p.WithDuration(des.Time(float64(*ios) / p.MeanIOPS * float64(time.Second.Microseconds())))
	}
	tr := tracegen.Generate(p)
	if err := tr.Write(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *stats {
		s := tr.ComputeStats()
		fmt.Fprintf(os.Stderr, "ios=%d rate=%.2f/s reads=%.1f%% async=%.1f%% L=%.2f raw=%.2f%%\n",
			s.IOs, s.AvgIOPS, s.ReadFrac*100, s.AsyncFrac*100, s.SeekLocality, s.RAWFrac*100)
	}
}
