package sched

import (
	"testing"

	"repro/internal/calib"
	"repro/internal/des"
	"repro/internal/disk"
)

func est(t testing.TB) (*disk.Disk, calib.AccessEstimator) {
	t.Helper()
	d := disk.ST39133LWV().MustNew()
	return d, &calib.Exact{Dsk: d, Overhead: 200}
}

func reqAt(id uint64, cyl int, arrive des.Time) *Request {
	return &Request{
		ID:     id,
		Arrive: arrive,
		Replicas: []Replica{
			{Extents: []disk.Extent{{Start: disk.Chs{Cyl: cyl, Head: 0, Sector: 0}, Count: 8}}},
		},
	}
}

func TestNewPolicies(t *testing.T) {
	for _, name := range []string{"fcfs", "sstf", "look", "satf", "rlook", "rsatf"} {
		s, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if s.Name() != name {
			t.Errorf("Name() = %q, want %q", s.Name(), name)
		}
	}
	if _, err := New("zig-zag"); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestEmptyQueue(t *testing.T) {
	_, e := est(t)
	for _, name := range []string{"fcfs", "sstf", "look", "satf", "rlook", "rsatf"} {
		s, _ := New(name)
		if _, ok := s.Pick(0, disk.State{}, nil, e); ok {
			t.Errorf("%s picked from an empty queue", name)
		}
	}
}

func TestFCFSHonorsArrival(t *testing.T) {
	_, e := est(t)
	s, _ := New("fcfs")
	q := []*Request{reqAt(1, 100, 30), reqAt(2, 50, 10), reqAt(3, 2000, 20)}
	c, ok := s.Pick(100, disk.State{}, q, e)
	if !ok || q[c.Index].ID != 2 {
		t.Fatalf("FCFS picked %+v, want earliest arrival (ID 2)", c)
	}
}

func TestSSTFPicksNearestCylinder(t *testing.T) {
	_, e := est(t)
	s, _ := New("sstf")
	q := []*Request{reqAt(1, 4000, 0), reqAt(2, 1100, 0), reqAt(3, 300, 0)}
	c, ok := s.Pick(0, disk.State{Cyl: 1000}, q, e)
	if !ok || q[c.Index].ID != 2 {
		t.Fatalf("SSTF picked %+v, want cylinder 1100 (ID 2)", c)
	}
}

func TestLOOKScansInOneDirectionThenReverses(t *testing.T) {
	_, e := est(t)
	s, _ := New("look")
	q := []*Request{reqAt(1, 500, 0), reqAt(2, 1500, 0), reqAt(3, 900, 0)}
	arm := disk.State{Cyl: 800}
	var order []uint64
	for len(q) > 0 {
		c, ok := s.Pick(0, arm, q, e)
		if !ok {
			t.Fatal("no pick")
		}
		r := q[c.Index]
		order = append(order, r.ID)
		arm = disk.State{Cyl: r.Replicas[0].Extents[0].Start.Cyl}
		q = append(q[:c.Index], q[c.Index+1:]...)
	}
	// Starting at 800 going up: 900, 1500, then reverse to 500.
	want := []uint64{3, 2, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("LOOK order %v, want %v", order, want)
		}
	}
}

func TestSATFPicksShortestAccess(t *testing.T) {
	d, e := est(t)
	s, _ := New("satf")
	// One request on the arm's cylinder, one far away: access estimates
	// must prefer the near one at almost any rotation.
	near := reqAt(1, 1000, 0)
	far := reqAt(2, 6000, 0)
	c, ok := s.Pick(0, disk.State{Cyl: 1000}, []*Request{far, near}, e)
	if !ok {
		t.Fatal("no pick")
	}
	if got := []*Request{far, near}[c.Index]; got.ID != 1 {
		// Rotationally unlucky near choice can lose; verify via estimates.
		tNear := e.Access(disk.State{Cyl: 1000}, disk.Request{Start: near.Replicas[0].Extents[0].Start, Count: 8}, 0)
		tFar := e.Access(disk.State{Cyl: 1000}, disk.Request{Start: far.Replicas[0].Extents[0].Start, Count: 8}, 0)
		if tNear < tFar {
			t.Fatalf("SATF picked ID %d (%v) over cheaper (%v)", got.ID, tFar, tNear)
		}
	}
	_ = d
}

// RSATF with two rotational replicas must never predict worse than SATF
// restricted to the primary.
func TestRSATFBeatsPrimaryOnly(t *testing.T) {
	d, e := est(t)
	g := d.Geom
	cyl := 2000
	primary := disk.Chs{Cyl: cyl, Head: 0, Sector: 10}
	// Second replica half a revolution later on another head.
	angle := g.SectorAngle(primary) + 0.5
	if angle >= 1 {
		angle -= 1
	}
	second := disk.Chs{Cyl: cyl, Head: 6, Sector: g.SectorAtAngle(cyl, 6, angle)}
	req := &Request{
		ID:     1,
		Arrive: 0,
		Replicas: []Replica{
			{Extents: []disk.Extent{{Start: primary, Count: 4}}},
			{Extents: []disk.Extent{{Start: second, Count: 4}}},
		},
	}
	rsatf, _ := New("rsatf")
	satf, _ := New("satf")
	arm := disk.State{Cyl: cyl}
	for now := des.Time(0); now < 6000; now += 500 {
		cR, _ := rsatf.Pick(now, arm, []*Request{req}, e)
		cS, _ := satf.Pick(now, arm, []*Request{req}, e)
		if cR.Predicted > cS.Predicted+1e-9 {
			t.Fatalf("t=%v: RSATF predicted %v worse than SATF %v", now, cR.Predicted, cS.Predicted)
		}
	}
	// And at least sometimes strictly better.
	better := false
	for now := des.Time(0); now < 6000; now += 250 {
		cR, _ := rsatf.Pick(now, arm, []*Request{req}, e)
		cS, _ := satf.Pick(now, arm, []*Request{req}, e)
		if cR.Predicted < cS.Predicted-100 {
			better = true
		}
	}
	if !better {
		t.Fatal("RSATF never used the second replica to advantage")
	}
}

func TestAllowedReplicasMaskRespected(t *testing.T) {
	d, e := est(t)
	g := d.Geom
	cyl := 2000
	primary := disk.Chs{Cyl: cyl, Head: 0, Sector: 10}
	angle := g.SectorAngle(primary) + 0.5
	if angle >= 1 {
		angle -= 1
	}
	second := disk.Chs{Cyl: cyl, Head: 6, Sector: g.SectorAtAngle(cyl, 6, angle)}
	req := &Request{
		ID: 1,
		Replicas: []Replica{
			{Extents: []disk.Extent{{Start: primary, Count: 4}}},
			{Extents: []disk.Extent{{Start: second, Count: 4}}},
		},
		AllowedReplicas: []bool{false, true}, // primary stale
	}
	s, _ := New("rsatf")
	for now := des.Time(0); now < 6000; now += 333 {
		c, ok := s.Pick(now, disk.State{Cyl: cyl}, []*Request{req}, e)
		if !ok || c.Replica != 1 {
			t.Fatalf("t=%v: picked stale replica %d", now, c.Replica)
		}
	}
}

func TestPriorityRequestsJumpTheQueue(t *testing.T) {
	_, e := est(t)
	for _, name := range []string{"fcfs", "sstf", "look", "satf", "rlook", "rsatf"} {
		s, _ := New(name)
		q := []*Request{reqAt(1, 100, 0), reqAt(2, 200, 1)}
		q[1].Priority = true
		c, ok := s.Pick(10, disk.State{Cyl: 100}, q, e)
		if !ok || q[c.Index].ID != 2 {
			t.Errorf("%s: priority request not picked first", name)
		}
	}
}

func TestIsRotationAware(t *testing.T) {
	if !IsRotationAware("rlook") || !IsRotationAware("rsatf") {
		t.Error("rlook/rsatf should be rotation aware")
	}
	if IsRotationAware("satf") || IsRotationAware("look") {
		t.Error("satf/look are not rotation aware")
	}
}

func TestReplicaHelpers(t *testing.T) {
	r := Replica{Extents: []disk.Extent{
		{Start: disk.Chs{Cyl: 1}, Count: 5},
		{Start: disk.Chs{Cyl: 1}, Count: 3},
	}}
	if r.first().Count != 5 {
		t.Error("first extent wrong")
	}
	if r.totalSectors() != 8 {
		t.Error("totalSectors wrong")
	}
}

func TestCLOOKWrapsToLowestCylinder(t *testing.T) {
	_, e := est(t)
	s, _ := New("clook")
	if s.Name() != "clook" {
		t.Fatalf("Name = %q", s.Name())
	}
	q := []*Request{reqAt(1, 500, 0), reqAt(2, 1500, 0), reqAt(3, 900, 0)}
	arm := disk.State{Cyl: 800}
	var order []uint64
	for len(q) > 0 {
		c, ok := s.Pick(0, arm, q, e)
		if !ok {
			t.Fatal("no pick")
		}
		r := q[c.Index]
		order = append(order, r.ID)
		arm = disk.State{Cyl: r.Replicas[0].Extents[0].Start.Cyl}
		q = append(q[:c.Index], q[c.Index+1:]...)
	}
	// Starting at 800 going up: 900, 1500, then WRAP to 500 (not reverse).
	want := []uint64{3, 2, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("C-LOOK order %v, want %v", order, want)
		}
	}
	// One more pass: with requests below and above, the wrap picks the
	// lowest, unlike LOOK which would pick the nearest downward.
	q = []*Request{reqAt(1, 100, 0), reqAt(2, 700, 0)}
	arm = disk.State{Cyl: 800}
	c, _ := s.Pick(0, arm, q, e)
	if q[c.Index].ID != 1 {
		t.Fatalf("C-LOOK picked cylinder %d after wrap, want the lowest (100)",
			q[c.Index].Replicas[0].Extents[0].Start.Cyl)
	}
}

func TestAgedSATFBoundsWaiting(t *testing.T) {
	_, e := est(t)
	plain, _ := New("satf")
	aged, _ := New("asatf")
	// An old request far away competes with a fresh convenient one. Plain
	// SATF keeps preferring the convenient request; aged SATF eventually
	// serves the elder.
	old := reqAt(1, 6000, 0)
	fresh := reqAt(2, 1000, 199500) // just arrived
	arm := disk.State{Cyl: 1000}
	// After 200 ms of waiting, the old request has earned ~10 ms more
	// credit than the newcomer — more than the seek gap between them.
	now := des.Time(200000)
	cP, _ := plain.Pick(now, arm, []*Request{old, fresh}, e)
	cA, _ := aged.Pick(now, arm, []*Request{old, fresh}, e)
	q := []*Request{old, fresh}
	if q[cP.Index].ID != 2 {
		t.Fatalf("plain SATF served the far request (did the fixture break?)")
	}
	if q[cA.Index].ID != 1 {
		t.Fatalf("aged SATF still starves the 50ms-old request")
	}
}

func TestBackgroundDefersToForeground(t *testing.T) {
	_, e := est(t)
	for _, name := range []string{"fcfs", "sstf", "look", "clook", "satf", "rsatf"} {
		s, _ := New(name)
		// Background request is older AND closer — every policy would
		// normally prefer it — but a schedulable foreground request is
		// pending, so the background one must sit out.
		bg := reqAt(1, 1000, 0)
		bg.Background = true
		fgReq := reqAt(2, 4000, 100)
		q := []*Request{bg, fgReq}
		c, ok := s.Pick(200, disk.State{Cyl: 1000}, q, e)
		if !ok || q[c.Index].ID != 2 {
			t.Errorf("%s: background request beat pending foreground work", name)
		}
	}
}

func TestBackgroundServedWhenAlone(t *testing.T) {
	_, e := est(t)
	for _, name := range []string{"fcfs", "sstf", "look", "satf"} {
		s, _ := New(name)
		bg := reqAt(1, 1000, 0)
		bg.Background = true
		c, ok := s.Pick(100, disk.State{Cyl: 1000}, []*Request{bg}, e)
		if !ok || c.Index != 0 {
			t.Errorf("%s: lone background request not served", name)
		}
	}
}

func TestBackgroundAgesPastMaxWait(t *testing.T) {
	_, e := est(t)
	s, _ := New("fcfs")
	bg := reqAt(1, 1000, 0)
	bg.Background = true
	fgReq := reqAt(2, 4000, 100)
	q := []*Request{bg, fgReq}
	// Past the deferral window the background request competes normally,
	// and under FCFS its earlier arrival wins.
	now := des.Time(BackgroundMaxWait) + 1
	c, ok := s.Pick(now, disk.State{Cyl: 1000}, q, e)
	if !ok || q[c.Index].ID != 1 {
		t.Fatal("overdue background request still starved")
	}
}

func TestAgedNames(t *testing.T) {
	for _, name := range []string{"asatf", "rasatf"} {
		s, err := New(name)
		if err != nil || s.Name() != name {
			t.Errorf("New(%q) -> %v, %v", name, s, err)
		}
	}
	if !IsRotationAware("rasatf") {
		t.Error("rasatf should be rotation aware")
	}
}
