package sched

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/calib"
	"repro/internal/des"
	"repro/internal/disk"
)

// benchQueue builds a queue of depth requests, each with three
// same-cylinder rotational replicas (the 2x3 SR-Array shape) and a
// freshness mask so allowed() is exercised the way array reads exercise it.
func benchQueue(d *disk.Disk, depth int) []*Request {
	rng := rand.New(rand.NewSource(7))
	g := d.Geom
	queue := make([]*Request, depth)
	for i := range queue {
		cyl := rng.Intn(g.LogicalCylinders() / 2)
		var reps []Replica
		for j := 0; j < 3; j++ {
			p := disk.Chs{Cyl: cyl, Head: j * (g.Heads / 3), Sector: g.SPTOf(cyl) * j / 3}
			reps = append(reps, Replica{Extents: []disk.Extent{{Start: p, Count: 8}}})
		}
		queue[i] = &Request{
			ID:              uint64(i),
			Arrive:          des.Time(i),
			Replicas:        reps,
			AllowedReplicas: []bool{true, true, true},
		}
	}
	return queue
}

// BenchmarkSchedPickSATF measures a single scheduling decision over queues
// of the depths the macro experiments actually reach (saturation sweeps run
// queues into the hundreds).
func BenchmarkSchedPickSATF(b *testing.B) {
	d := disk.ST39133LWV().MustNew()
	e := &calib.Exact{Dsk: d, Overhead: 200}
	for _, policy := range []string{"satf", "rsatf"} {
		for _, depth := range []int{8, 32, 128} {
			b.Run(fmt.Sprintf("%s/q%d", policy, depth), func(b *testing.B) {
				queue := benchQueue(d, depth)
				s, err := New(policy)
				if err != nil {
					b.Fatal(err)
				}
				arm := disk.State{Cyl: d.Geom.LogicalCylinders() / 4}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, ok := s.Pick(des.Time(depth), arm, queue, e); !ok {
						b.Fatal("no pick")
					}
				}
			})
		}
	}
}

// BenchmarkSchedPickRLOOK covers the other replica-aware policy: the LOOK
// scan plus same-cylinder replica selection.
func BenchmarkSchedPickRLOOK(b *testing.B) {
	d := disk.ST39133LWV().MustNew()
	e := &calib.Exact{Dsk: d, Overhead: 200}
	for _, depth := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("q%d", depth), func(b *testing.B) {
			queue := benchQueue(d, depth)
			s, err := New("rlook")
			if err != nil {
				b.Fatal(err)
			}
			arm := disk.State{Cyl: d.Geom.LogicalCylinders() / 4}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := s.Pick(des.Time(depth), arm, queue, e); !ok {
					b.Fatal("no pick")
				}
			}
		})
	}
}
