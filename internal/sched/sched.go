// Package sched implements the per-drive scheduling policies evaluated in
// the paper: FCFS, SSTF, LOOK and SATF for conventional layouts, and the
// replica-aware extensions RLOOK and RSATF for SR-Arrays (Sections 2.4 and
// 3.3). A scheduler instance is per-drive and may carry state (LOOK's scan
// direction); the drive's queue is owned by the array layer and passed in
// at each decision point.
package sched

import (
	"fmt"
	"math"

	"repro/internal/calib"
	"repro/internal/des"
	"repro/internal/disk"
)

// Replica is one complete copy of a request's data on a drive: usually a
// single extent, occasionally split in two where the layout wraps around a
// track.
type Replica struct {
	Extents []disk.Extent
}

// first returns the leading extent, which determines positioning cost.
func (r Replica) first() disk.Extent { return r.Extents[0] }

// totalSectors sums the extents.
func (r Replica) totalSectors() int {
	n := 0
	for _, e := range r.Extents {
		n += e.Count
	}
	return n
}

// Request is one schedulable physical I/O on a drive, with its rotational
// replica alternatives. All replicas of a block live on the same cylinder
// (the SR-Array invariant), so replica choice never changes seek order —
// only rotational cost.
type Request struct {
	ID       uint64
	Write    bool
	Arrive   des.Time
	Replicas []Replica
	// AllowedReplicas masks which replicas may serve a read (a replica can
	// be stale while a delayed write is still propagating). Nil means all.
	AllowedReplicas []bool
	// AllowedFn, if set, overrides AllowedReplicas with a live predicate,
	// evaluated at scheduling time. First-copy writes use it so that
	// consecutive writes to a chunk keep landing on the one replica that
	// is fresh, preserving the at-least-one-fresh-replica invariant.
	AllowedFn func(replica int) bool
	// Priority requests (head-tracking reference reads) preempt the scan
	// order.
	Priority bool
	// Background requests (rebuild reconstruction reads) yield to
	// foreground traffic: while a schedulable foreground request is
	// pending, a background request sits out the decision until it has
	// waited BackgroundMaxWait, after which it competes normally so
	// rebuild cannot starve under sustained load.
	Background bool
	// Hedged marks a post-dispatch duplicate of an in-flight read (the
	// array's hedged-read mechanism); scheduling treats it like any
	// foreground request, observability classes it separately.
	Hedged bool
	// Penalty handicaps the request in access-time-ranked policies (the
	// SATF family's score and RLOOK's same-cylinder choice): the array
	// layer sets it on duplicates queued to a Suspect fail-slow drive so
	// that a healthy mirror's scan claims the shared copy first. It biases
	// only the comparison, never the predicted time reported in a Choice.
	Penalty des.Time
	// Tag carries array-layer bookkeeping through the scheduler untouched.
	Tag interface{}
}

// allowed reports whether replica i may be used.
func (r *Request) allowed(i int) bool {
	if r.AllowedFn != nil {
		return r.AllowedFn(i)
	}
	if r.Write {
		return true
	}
	return r.AllowedReplicas == nil || r.AllowedReplicas[i]
}

// Choice is a scheduling decision.
type Choice struct {
	Index     int // index into the queue
	Replica   int // index into Request.Replicas
	Predicted des.Time
}

// Scheduler picks the next request (and replica) from a drive queue.
type Scheduler interface {
	Name() string
	Pick(now des.Time, arm disk.State, queue []*Request, est calib.AccessEstimator) (Choice, bool)
}

// New constructs a scheduler by policy name: "fcfs", "rfcfs" (FCFS order
// with rotationally-best replica choice, the host side of the TCQ
// experiment), "sstf", "look", "clook", "satf", "rlook", "rsatf", and the
// aged variants "asatf"/"rasatf" that bound starvation.
func New(policy string) (Scheduler, error) {
	switch policy {
	case "fcfs":
		return fcfs{}, nil
	case "rfcfs":
		return fcfs{rotational: true}, nil
	case "sstf":
		return sstf{}, nil
	case "look":
		return &look{}, nil
	case "clook":
		return &look{circular: true}, nil
	case "satf":
		return &satf{}, nil
	case "asatf":
		return &satf{aging: DefaultAgingWeight}, nil
	case "rlook":
		return &look{rotational: true}, nil
	case "rsatf":
		return &satf{rotational: true}, nil
	case "rasatf":
		return &satf{rotational: true, aging: DefaultAgingWeight}, nil
	default:
		return nil, fmt.Errorf("sched: unknown policy %q", policy)
	}
}

// IsRotationAware reports whether a policy name exploits rotational
// replicas.
func IsRotationAware(policy string) bool {
	return policy == "rlook" || policy == "rsatf" || policy == "rfcfs" || policy == "rasatf"
}

// priorityPick returns any pending priority request (served FCFS among
// themselves), used by every policy: reference-sector reads must not
// starve behind a long scan or the head tracker drifts.
func priorityPick(queue []*Request) (int, bool) {
	for i, r := range queue {
		if r.Priority {
			return i, true
		}
	}
	return 0, false
}

// BackgroundMaxWait bounds how long a background request defers to
// foreground traffic. Within the window a background request is invisible
// whenever foreground work is pending; once it has waited this long it
// competes like any other request. 50 ms keeps rebuild reads off the
// critical path of bursty foreground traffic while guaranteeing rebuild
// progress at least every few revolutions under saturation.
const BackgroundMaxWait = 50 * des.Millisecond

// foregroundPending reports whether any schedulable non-background request
// is waiting. Only when one is does background deferral apply — an
// otherwise idle drive serves background work immediately.
func foregroundPending(queue []*Request) bool {
	for _, r := range queue {
		if !r.Background && schedulable(r) {
			return true
		}
	}
	return false
}

// anyBackground is the cheap pre-check that keeps the common (no
// background work) Pick path at a single flag scan.
func anyBackground(queue []*Request) bool {
	for _, r := range queue {
		if r.Background {
			return true
		}
	}
	return false
}

// deferBG reports whether request r sits out this decision: background,
// foreground pending, and still within the deferral window.
func deferBG(now des.Time, r *Request, fg bool) bool {
	return fg && r.Background && now-r.Arrive < BackgroundMaxWait
}

// schedulable reports whether any replica of the request may currently be
// used. A duplicate write on a mirror disk whose replicas are all stale is
// not schedulable there (a fresher mirror will claim it).
func schedulable(req *Request) bool {
	for i := range req.Replicas {
		if req.allowed(i) {
			return true
		}
	}
	return false
}

// bestAllowedReplica is the fused core of the scan loops: one pass over
// the request's replicas, evaluating allowed() exactly once per replica and
// estimating only the allowed ones. ok is false when no replica may be
// used (the request is not schedulable). Scanning policies use this
// instead of a schedulable() pre-pass followed by bestReplica, which
// walked every replica list twice — and evaluated live AllowedFn
// predicates twice per replica — on every Pick.
func bestAllowedReplica(now des.Time, arm disk.State, req *Request, est calib.AccessEstimator, rotational bool) (int, des.Time, bool) {
	bestIdx, bestT := -1, des.Time(math.Inf(1))
	for i := range req.Replicas {
		if !req.allowed(i) {
			continue
		}
		rep := &req.Replicas[i]
		var t des.Time
		if len(rep.Extents) == 1 {
			e := rep.Extents[0]
			t = est.Access(arm, disk.Request{Start: e.Start, Count: e.Count, Write: req.Write}, now)
		} else {
			// Fragmented replicas pay per-extent overheads; rank on the
			// full run so a contiguous copy wins for large transfers.
			t = est.AccessRun(arm, rep.Extents, req.Write, now)
		}
		if t < bestT {
			bestIdx, bestT = i, t
		}
		if !rotational {
			break // only the first allowed replica
		}
	}
	return bestIdx, bestT, bestIdx >= 0
}

// bestReplica returns the allowed replica of the request with the lowest
// predicted access time. When rotational is false only the primary (or
// first allowed) replica is considered — conventional schedulers do not
// know about rotational copies. The request must be schedulable.
func bestReplica(now des.Time, arm disk.State, req *Request, est calib.AccessEstimator, rotational bool) (int, des.Time) {
	idx, t, ok := bestAllowedReplica(now, arm, req, est, rotational)
	if !ok {
		panic("sched: bestReplica on an unschedulable request")
	}
	return idx, t
}

// --- FCFS / RFCFS ---

// fcfs serves requests in arrival order. With rotational=true (RFCFS) it
// still serves in arrival order but picks the rotationally closest
// replica of each request — the host contribution that remains valuable
// when the drive itself schedules (TCQ).
type fcfs struct {
	rotational bool
}

func (f fcfs) Name() string {
	if f.rotational {
		return "rfcfs"
	}
	return "fcfs"
}

func (f fcfs) Pick(now des.Time, arm disk.State, queue []*Request, est calib.AccessEstimator) (Choice, bool) {
	if len(queue) == 0 {
		return Choice{}, false
	}
	idx := -1
	if i, ok := priorityPick(queue); ok {
		idx = i
	} else {
		fg := anyBackground(queue) && foregroundPending(queue)
		for i, r := range queue {
			if !schedulable(r) || deferBG(now, r, fg) {
				continue
			}
			if idx < 0 || r.Arrive < queue[idx].Arrive {
				idx = i
			}
		}
	}
	if idx < 0 {
		return Choice{}, false
	}
	rep, t := bestReplica(now, arm, queue[idx], est, f.rotational)
	return Choice{Index: idx, Replica: rep, Predicted: t}, true
}

// --- SSTF ---

type sstf struct{}

func (sstf) Name() string { return "sstf" }

func (sstf) Pick(now des.Time, arm disk.State, queue []*Request, est calib.AccessEstimator) (Choice, bool) {
	if len(queue) == 0 {
		return Choice{}, false
	}
	if i, ok := priorityPick(queue); ok {
		rep, t := bestReplica(now, arm, queue[i], est, false)
		return Choice{Index: i, Replica: rep, Predicted: t}, true
	}
	fg := anyBackground(queue) && foregroundPending(queue)
	bestIdx, bestDist := -1, math.MaxInt64
	for i, r := range queue {
		if !schedulable(r) || deferBG(now, r, fg) {
			continue
		}
		d := absCyl(r.Replicas[0].first().Start.Cyl - arm.Cyl)
		if d < bestDist {
			bestIdx, bestDist = i, d
		}
	}
	if bestIdx < 0 {
		return Choice{}, false
	}
	rep, t := bestReplica(now, arm, queue[bestIdx], est, false)
	return Choice{Index: bestIdx, Replica: rep, Predicted: t}, true
}

func absCyl(d int) int {
	if d < 0 {
		return -d
	}
	return d
}

// --- LOOK / RLOOK ---

// look scans the cylinders alternately outward and inward, servicing the
// nearest request in the scan direction. With rotational=true (RLOOK) it
// additionally picks the rotationally closest replica of the chosen
// request (paper Section 2.4). With circular=true (C-LOOK) the scan only
// moves upward, jumping back to the lowest pending cylinder at the end of
// each sweep — trading a little mean latency for lower variance.
type look struct {
	rotational bool
	circular   bool
	dirUp      bool
	inited     bool
	// schedBuf memoizes schedulable() per queue slot within a single Pick:
	// a Pick can scan the queue up to three times (forward scan, flipped or
	// wrapped scan, same-cylinder selection) and AllowedFn predicates are
	// not free. Scratch only — valid for the duration of one Pick call.
	schedBuf []bool
}

func (l *look) Name() string {
	if l.circular {
		return "clook"
	}
	if l.rotational {
		return "rlook"
	}
	return "look"
}

func (l *look) Pick(now des.Time, arm disk.State, queue []*Request, est calib.AccessEstimator) (Choice, bool) {
	if len(queue) == 0 {
		return Choice{}, false
	}
	if !l.inited {
		l.dirUp, l.inited = true, true
	}
	if i, ok := priorityPick(queue); ok {
		rep, t := bestReplica(now, arm, queue[i], est, l.rotational)
		return Choice{Index: i, Replica: rep, Predicted: t}, true
	}
	if cap(l.schedBuf) < len(queue) {
		l.schedBuf = make([]bool, len(queue))
	}
	l.schedBuf = l.schedBuf[:len(queue)]
	fg := anyBackground(queue) && foregroundPending(queue)
	for i, r := range queue {
		l.schedBuf[i] = schedulable(r) && !deferBG(now, r, fg)
	}
	idx := l.scan(arm, queue)
	if idx < 0 {
		if l.circular {
			// Wrap: restart the upward sweep from the lowest pending
			// cylinder.
			idx = l.scan(disk.State{Cyl: -1}, queue)
		} else {
			l.dirUp = !l.dirUp
			idx = l.scan(arm, queue)
		}
	}
	if idx < 0 {
		return Choice{}, false
	}
	// Among same-cylinder requests, take the rotationally best (RLOOK) or
	// the earliest arrival (plain LOOK has no rotational knowledge).
	cyl := queue[idx].Replicas[0].first().Start.Cyl
	if l.rotational {
		bestIdx, bestRep := -1, 0
		bestT, bestScore := des.Time(math.Inf(1)), des.Time(math.Inf(1))
		for i, r := range queue {
			if !l.schedBuf[i] || r.Replicas[0].first().Start.Cyl != cyl {
				continue
			}
			rep, t := bestReplica(now, arm, r, est, true)
			if score := t + r.Penalty; score < bestScore {
				bestIdx, bestRep, bestT, bestScore = i, rep, t, score
			}
		}
		return Choice{Index: bestIdx, Replica: bestRep, Predicted: bestT}, true
	}
	bestIdx := idx
	for i, r := range queue {
		if l.schedBuf[i] && r.Replicas[0].first().Start.Cyl == cyl && r.Arrive < queue[bestIdx].Arrive {
			bestIdx = i
		}
	}
	rep, t := bestReplica(now, arm, queue[bestIdx], est, false)
	return Choice{Index: bestIdx, Replica: rep, Predicted: t}, true
}

// scan returns the queue index whose cylinder is nearest to the arm in the
// current direction, or -1 if none lies that way. Callers must have filled
// l.schedBuf for this queue.
func (l *look) scan(arm disk.State, queue []*Request) int {
	bestIdx, bestDist := -1, math.MaxInt64
	for i, r := range queue {
		if !l.schedBuf[i] {
			continue
		}
		c := r.Replicas[0].first().Start.Cyl
		var d int
		if l.dirUp {
			d = c - arm.Cyl
		} else {
			d = arm.Cyl - c
		}
		if d < 0 {
			continue
		}
		if d < bestDist {
			bestIdx, bestDist = i, d
		}
	}
	return bestIdx
}

// --- SATF / RSATF ---

// DefaultAgingWeight is the credit per microsecond of waiting that the
// aged SATF variants subtract from a request's predicted access time.
// Greedy SATF can starve a request whose position stays inconvenient;
// with aging, every microsecond in the queue makes a request look
// cheaper, so its wait is bounded (cf. the batched/weighted variants in
// Jacobson & Wilkes and Seltzer et al.). The default bounds any wait to
// roughly (access-time range)/weight ≈ 200 ms on the reference drive
// while costing only a few percent of mean latency.
const DefaultAgingWeight = 0.05

// satf greedily picks the request with the shortest predicted access time.
// With rotational=true (RSATF) all rotational replicas compete; otherwise
// only primaries do. A nonzero aging weight subtracts credit for time
// spent waiting.
type satf struct {
	rotational bool
	aging      float64
}

func (s *satf) Name() string {
	switch {
	case s.rotational && s.aging > 0:
		return "rasatf"
	case s.rotational:
		return "rsatf"
	case s.aging > 0:
		return "asatf"
	}
	return "satf"
}

func (s *satf) Pick(now des.Time, arm disk.State, queue []*Request, est calib.AccessEstimator) (Choice, bool) {
	if len(queue) == 0 {
		return Choice{}, false
	}
	if i, ok := priorityPick(queue); ok {
		rep, t := bestReplica(now, arm, queue[i], est, s.rotational)
		return Choice{Index: i, Replica: rep, Predicted: t}, true
	}
	fg := anyBackground(queue) && foregroundPending(queue)
	bestIdx, bestRep := -1, 0
	bestT := des.Time(math.Inf(1))
	bestScore := math.Inf(1)
	for i, r := range queue {
		if deferBG(now, r, fg) {
			continue
		}
		rep, t, ok := bestAllowedReplica(now, arm, r, est, s.rotational)
		if !ok {
			continue
		}
		score := float64(t+r.Penalty) - s.aging*float64(now-r.Arrive)
		if score < bestScore {
			bestIdx, bestRep, bestT, bestScore = i, rep, t, score
		}
	}
	if bestIdx < 0 {
		return Choice{}, false
	}
	return Choice{Index: bestIdx, Replica: bestRep, Predicted: bestT}, true
}

// PickObserver receives every successful scheduling decision of a wrapped
// scheduler. Implementations must be cheap and allocation-free: they run
// on the dispatch hot path.
type PickObserver interface {
	ObservePick(queueLen int, c Choice, ok bool)
}

// Observe wraps a scheduler so that every Pick is reported to o. The
// wrapper forwards Name and Pick unchanged, so wrapping never perturbs
// scheduling decisions — only watches them.
func Observe(s Scheduler, o PickObserver) Scheduler {
	return observed{inner: s, obs: o}
}

type observed struct {
	inner Scheduler
	obs   PickObserver
}

func (w observed) Name() string { return w.inner.Name() }

func (w observed) Pick(now des.Time, arm disk.State, queue []*Request, est calib.AccessEstimator) (Choice, bool) {
	c, ok := w.inner.Pick(now, arm, queue, est)
	w.obs.ObservePick(len(queue), c, ok)
	return c, ok
}
