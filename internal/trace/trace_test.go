package trace

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/des"
)

func sample() *Trace {
	return &Trace{
		Name:        "sample",
		DataSectors: 100000,
		Records: []Record{
			{At: 0, Off: 100, Count: 8},
			{At: 1000, Write: true, Off: 200, Count: 8},
			{At: 2000, Off: 200, Count: 8}, // read-after-write
			{At: 3000, Write: true, Async: true, Off: 300, Count: 16},
			{At: 4000, Off: 50000, Count: 4},
		},
	}
}

func TestScaleHalvesInterarrival(t *testing.T) {
	tr := sample().Scale(2)
	if tr.Records[1].At != 500 {
		t.Fatalf("scaled arrival = %v, want 500", tr.Records[1].At)
	}
	if tr.Records[4].At != 2000 {
		t.Fatalf("scaled arrival = %v, want 2000", tr.Records[4].At)
	}
	// Original untouched.
	if sample().Records[1].At != 1000 {
		t.Fatal("Scale mutated the source")
	}
}

func TestScaleRejectsBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	sample().Scale(0)
}

func TestComputeStats(t *testing.T) {
	s := sample().ComputeStats()
	if s.IOs != 5 {
		t.Fatalf("IOs = %d", s.IOs)
	}
	if math.Abs(s.ReadFrac-0.6) > 1e-9 {
		t.Fatalf("ReadFrac = %v, want 0.6", s.ReadFrac)
	}
	if math.Abs(s.AsyncFrac-0.2) > 1e-9 {
		t.Fatalf("AsyncFrac = %v, want 0.2", s.AsyncFrac)
	}
	if math.Abs(s.RAWFrac-0.2) > 1e-9 {
		t.Fatalf("RAWFrac = %v, want 0.2 (one RAW read of five I/Os)", s.RAWFrac)
	}
	if s.Duration != 4000 {
		t.Fatalf("Duration = %v", s.Duration)
	}
}

func TestRAWWindowExpires(t *testing.T) {
	tr := &Trace{
		DataSectors: 100000,
		Records: []Record{
			{At: 0, Write: true, Off: 100, Count: 8},
			{At: des.Hour + des.Second, Off: 100, Count: 8}, // too late
		},
	}
	if s := tr.ComputeStats(); s.RAWFrac != 0 {
		t.Fatalf("RAWFrac = %v, want 0 (window expired)", s.RAWFrac)
	}
}

func TestSeekLocalityOfUniformTraceIsNearOne(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr := &Trace{DataSectors: 1 << 24}
	for i := 0; i < 20000; i++ {
		tr.Records = append(tr.Records, Record{At: des.Time(i), Off: rng.Int63n(tr.DataSectors), Count: 1})
	}
	s := tr.ComputeStats()
	if s.SeekLocality < 0.9 || s.SeekLocality > 1.1 {
		t.Fatalf("uniform trace L = %v, want ~1", s.SeekLocality)
	}
}

func TestMergeConcatenatesAndSorts(t *testing.T) {
	a := &Trace{DataSectors: 1000, Records: []Record{{At: 10, Off: 5, Count: 1}, {At: 30, Off: 6, Count: 1}}}
	b := &Trace{DataSectors: 2000, Records: []Record{{At: 20, Off: 7, Count: 1}}}
	m := Merge("m", a, b)
	if m.DataSectors != 3000 {
		t.Fatalf("merged volume = %d", m.DataSectors)
	}
	if len(m.Records) != 3 {
		t.Fatalf("merged records = %d", len(m.Records))
	}
	if m.Records[1].Off != 1007 {
		t.Fatalf("second record offset = %d, want 1007 (b's space starts at 1000)", m.Records[1].Off)
	}
	for i := 1; i < len(m.Records); i++ {
		if m.Records[i].At < m.Records[i-1].At {
			t.Fatal("merge not time-sorted")
		}
	}
}

func TestRoundTripSerialization(t *testing.T) {
	var buf bytes.Buffer
	src := sample()
	if err := src.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != src.Name || got.DataSectors != src.DataSectors {
		t.Fatalf("header mismatch: %q %d", got.Name, got.DataSectors)
	}
	if len(got.Records) != len(src.Records) {
		t.Fatalf("%d records, want %d", len(got.Records), len(src.Records))
	}
	for i := range src.Records {
		a, b := src.Records[i], got.Records[i]
		if a.Write != b.Write || a.Async != b.Async || a.Off != b.Off || a.Count != b.Count {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, a, b)
		}
		if math.Abs(float64(a.At-b.At)) > 0.01 {
			t.Fatalf("record %d time mismatch", i)
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewBufferString("12.0 x 5 5\n")); err == nil {
		t.Fatal("unknown op accepted")
	}
	if _, err := Read(bytes.NewBufferString("not-a-number r 5 5\n")); err == nil {
		t.Fatal("bad line accepted")
	}
}

func TestClip(t *testing.T) {
	tr := sample()
	c := tr.Clip(2)
	if len(c.Records) != 2 {
		t.Fatalf("clipped to %d", len(c.Records))
	}
	if got := tr.Clip(100); got != tr {
		t.Fatal("over-clip should return the original")
	}
}
