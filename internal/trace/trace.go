// Package trace defines the block-level trace representation the
// experiments replay: timestamped read/write records over a logical
// volume, with the operations the paper applies to them — merging
// per-disk traces into one volume, uniform time scaling ("when the scaling
// rate is two, the traced inter-arrival times are halved"), and the
// characteristic statistics of Table 3 (I/O rate, read and async-write
// fractions, seek locality L, and read-after-write fraction).
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"repro/internal/des"
)

// Record is one traced I/O.
type Record struct {
	At    des.Time // arrival time
	Write bool
	Async bool // asynchronous write (excluded from response-time reporting)
	Off   int64
	Count int // sectors
}

// Trace is a time-ordered sequence of records over one logical volume.
type Trace struct {
	Name        string
	DataSectors int64
	Records     []Record
}

// Scale returns a copy played at rate times the original speed: all
// arrival timestamps divide by rate.
func (t *Trace) Scale(rate float64) *Trace {
	if rate <= 0 {
		panic("trace: non-positive scale rate")
	}
	out := &Trace{Name: fmt.Sprintf("%s x%g", t.Name, rate), DataSectors: t.DataSectors}
	out.Records = make([]Record, len(t.Records))
	for i, r := range t.Records {
		r.At = des.Time(float64(r.At) / rate)
		out.Records[i] = r
	}
	return out
}

// Clip returns the prefix with at most n records.
func (t *Trace) Clip(n int) *Trace {
	if n >= len(t.Records) {
		return t
	}
	return &Trace{Name: t.Name, DataSectors: t.DataSectors, Records: t.Records[:n]}
}

// Duration returns the arrival span of the trace.
func (t *Trace) Duration() des.Time {
	if len(t.Records) == 0 {
		return 0
	}
	return t.Records[len(t.Records)-1].At - t.Records[0].At
}

// Merge interleaves per-device traces by timestamp and concatenates their
// address spaces, the paper's construction of the Cello-base and TPC-C
// data sets ("we merge these separate disk traces based on time stamps...
// the data from different disks are concatenated").
func Merge(name string, parts ...*Trace) *Trace {
	out := &Trace{Name: name}
	var base int64
	for _, p := range parts {
		for _, r := range p.Records {
			r.Off += base
			out.Records = append(out.Records, r)
		}
		base += p.DataSectors
	}
	out.DataSectors = base
	sort.SliceStable(out.Records, func(i, j int) bool { return out.Records[i].At < out.Records[j].At })
	return out
}

// Stats are the Table-3 characteristics of a trace.
type Stats struct {
	IOs          int
	Duration     des.Time
	AvgIOPS      float64
	ReadFrac     float64
	AsyncFrac    float64 // async writes as a fraction of all I/Os
	SeekLocality float64 // L: (DataSectors/3) / mean |Δoffset|
	RAWFrac      float64 // reads within Window of a write to the same data
}

// RAWWindow is the read-after-write attribution window (the paper uses
// one hour).
const RAWWindow = des.Hour

// rawGranularity is the block size, in sectors, at which read-after-write
// matching is tracked.
const rawGranularity = 16

// ComputeStats derives the Table-3 statistics.
func (t *Trace) ComputeStats() Stats {
	s := Stats{IOs: len(t.Records), Duration: t.Duration()}
	if s.IOs == 0 {
		return s
	}
	if s.Duration > 0 {
		s.AvgIOPS = float64(s.IOs) / s.Duration.Seconds()
	}
	reads, asyncs, raw := 0, 0, 0
	var prevOff int64 = -1
	var seekSum float64
	seekN := 0
	lastWrite := make(map[int64]des.Time)
	for _, r := range t.Records {
		if r.Write {
			if r.Async {
				asyncs++
			}
			for b := r.Off / rawGranularity; b <= (r.Off+int64(r.Count)-1)/rawGranularity; b++ {
				lastWrite[b] = r.At
			}
		} else {
			reads++
			hit := false
			for b := r.Off / rawGranularity; b <= (r.Off+int64(r.Count)-1)/rawGranularity; b++ {
				if w, ok := lastWrite[b]; ok && r.At-w <= RAWWindow {
					hit = true
					break
				}
			}
			if hit {
				raw++
			}
		}
		if prevOff >= 0 {
			d := float64(r.Off - prevOff)
			if d < 0 {
				d = -d
			}
			seekSum += d
			seekN++
		}
		prevOff = r.Off
	}
	s.ReadFrac = float64(reads) / float64(s.IOs)
	s.AsyncFrac = float64(asyncs) / float64(s.IOs)
	s.RAWFrac = float64(raw) / float64(s.IOs)
	if seekN > 0 && seekSum > 0 {
		meanSeek := seekSum / float64(seekN)
		s.SeekLocality = float64(t.DataSectors) / 3 / meanSeek
	}
	return s
}

// Write emits the trace in the repository's plain-text format:
//
//	# name <name>
//	# sectors <n>
//	<at_us> r|w|aw <off> <count>
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# name %s\n# sectors %d\n", t.Name, t.DataSectors)
	for _, r := range t.Records {
		op := "r"
		if r.Write {
			op = "w"
			if r.Async {
				op = "aw"
			}
		}
		fmt.Fprintf(bw, "%.3f %s %d %d\n", float64(r.At), op, r.Off, r.Count)
	}
	return bw.Flush()
}

// Read parses the plain-text format written by Write.
func Read(r io.Reader) (*Trace, error) {
	t := &Trace{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if len(text) == 0 {
			continue
		}
		if text[0] == '#' {
			var name string
			var n int64
			if _, err := fmt.Sscanf(text, "# name %s", &name); err == nil {
				t.Name = name
			} else if _, err := fmt.Sscanf(text, "# sectors %d", &n); err == nil {
				t.DataSectors = n
			}
			continue
		}
		var at float64
		var op string
		var off int64
		var count int
		if _, err := fmt.Sscanf(text, "%f %s %d %d", &at, &op, &off, &count); err != nil {
			return nil, fmt.Errorf("trace: line %d: %v", line, err)
		}
		rec := Record{At: des.Time(at), Off: off, Count: count}
		switch op {
		case "r":
		case "w":
			rec.Write = true
		case "aw":
			rec.Write, rec.Async = true, true
		default:
			return nil, fmt.Errorf("trace: line %d: unknown op %q", line, op)
		}
		t.Records = append(t.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}
