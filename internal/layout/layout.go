// Package layout implements the disk-array data placements the paper
// studies: striping, D-way mirroring, RAID-10, the SR-Array, and the
// general Ds x Dr x Dm SR-Mirror (Sections 2.3 and 2.5).
//
// A configuration distributes one logical volume over D = Ds*Dr*Dm disks:
//
//   - The volume is striped over G = Ds*Dr positions (round-robin by
//     stripe unit), so each disk holds 1/G of the data.
//   - Each disk stores Dr rotational replicas of its share, placed on
//     different tracks of the same cylinder at angles 360/Dr degrees
//     apart. The copies expand each disk's footprint to Dr/G = 1/Ds of its
//     cylinders, which is exactly the seek-distance reduction of Ds-way
//     striping (paper Figure 3).
//   - Each position is mirrored on Dm disks.
//
// Corner cases: D x 1 x 1 is plain striping, 1 x 1 x D is a D-way mirror,
// Ds x 1 x 2 is RAID-10, and Ds x Dr x 1 is an SR-Array.
//
// Rotational replicas are placed by absolute platter angle, not by logical
// sector number: replica j of a block sits at the block's base angle plus
// j/Dr revolutions on its own track. Because each track's skew differs,
// the corresponding sector numbers differ per track — this is the paper's
// "track skews must be re-arranged" requirement, realized here by angle
// arithmetic against the measured geometry.
package layout

import (
	"fmt"

	"repro/internal/disk"
)

// DefaultStripeUnit is 64 KB in sectors, the paper's striping unit.
const DefaultStripeUnit = 65536 / disk.SectorSize

// Config selects an array configuration.
type Config struct {
	Ds int // striping degree (fraction of cylinders used = 1/Ds)
	Dr int // rotational replicas per disk
	Dm int // mirror copies on distinct disks
	// StripeUnit in sectors; 0 means DefaultStripeUnit.
	StripeUnit int
	// IntraTrack places the Dr rotational replicas within a single track
	// (Ng's scheme) instead of on different tracks of the cylinder. It
	// shortens the effective track and costs large-I/O bandwidth — the
	// drawback that motivated the paper's cross-track placement (Section
	// 2.2); kept as an ablation.
	IntraTrack bool
}

// Disks returns the total number of drives the configuration needs.
func (c Config) Disks() int { return c.Ds * c.Dr * c.Dm }

// Positions returns the number of distinct data positions (disks per
// mirror copy).
func (c Config) Positions() int { return c.Ds * c.Dr }

func (c Config) String() string { return fmt.Sprintf("%dx%dx%d", c.Ds, c.Dr, c.Dm) }

// Striping returns a D x 1 x 1 configuration.
func Striping(d int) Config { return Config{Ds: d, Dr: 1, Dm: 1} }

// Mirror returns a 1 x 1 x D configuration.
func Mirror(d int) Config { return Config{Ds: 1, Dr: 1, Dm: d} }

// RAID10 returns a (D/2) x 1 x 2 configuration.
func RAID10(d int) Config { return Config{Ds: d / 2, Dr: 1, Dm: 2} }

// SRArray returns a Ds x Dr x 1 configuration.
func SRArray(ds, dr int) Config { return Config{Ds: ds, Dr: dr, Dm: 1} }

// Piece is the portion of a logical request that falls on one data
// position: the mirror disks that hold it and, per rotational replica, the
// physical extents.
type Piece struct {
	// Position is the data position index in [0, Ds*Dr).
	Position int
	// Mirrors lists the disk IDs holding this piece (length Dm); disk ID
	// m*Positions+Position for mirror m.
	Mirrors []int
	// Replicas[j] holds the extents of rotational replica j (length Dr).
	Replicas [][]disk.Extent
	// Off and Count locate the piece in the logical volume (sectors).
	Off   int64
	Count int
	// Chunk is the stripe-unit index the piece belongs to, the granularity
	// of delayed-write staleness tracking.
	Chunk int64
}

// Layout maps the logical volume onto the array.
type Layout struct {
	Cfg  Config
	Geom *disk.Geometry

	unit        int
	dataSectors int64
	perDisk     int64 // distinct data sectors per disk
	groupTracks int   // tracks per replica group = Heads/Dr

	// zone index: cumulative distinct-data capacity by zone.
	zoneCap []int64 // capacity of cylinders strictly before zone i ends... cumulative at zone end
	usedCyl int
}

// New validates and builds a layout for a volume of dataSectors logical
// sectors over identical drives with the given geometry.
func New(cfg Config, geom *disk.Geometry, dataSectors int64) (*Layout, error) {
	if cfg.Ds < 1 || cfg.Dr < 1 || cfg.Dm < 1 {
		return nil, fmt.Errorf("layout: invalid config %v", cfg)
	}
	if cfg.StripeUnit == 0 {
		cfg.StripeUnit = DefaultStripeUnit
	}
	if cfg.StripeUnit < 1 {
		return nil, fmt.Errorf("layout: invalid stripe unit %d", cfg.StripeUnit)
	}
	if dataSectors <= 0 {
		return nil, fmt.Errorf("layout: non-positive volume size %d", dataSectors)
	}
	if !cfg.IntraTrack && geom.Heads%cfg.Dr != 0 {
		return nil, fmt.Errorf("layout: Dr=%d must divide the %d disk surfaces so each replica owns whole tracks", cfg.Dr, geom.Heads)
	}
	if len(geom.Defects()) != 0 {
		return nil, fmt.Errorf("layout: drives with defects are not supported by the array layout (the prototype skipped defective regions at format time)")
	}
	g := int64(cfg.Positions())
	// Chunks are dealt round-robin, so a disk's data index space covers
	// whole stripe units: position 0 of a volume of n chunks holds
	// ceil(n/G) units even when the last unit is partial.
	numChunks := (dataSectors + int64(cfg.StripeUnit) - 1) / int64(cfg.StripeUnit)
	perDisk := (numChunks + g - 1) / g * int64(cfg.StripeUnit)
	if need := perDisk * int64(cfg.Dr); need > geom.TotalSectors() {
		return nil, fmt.Errorf("layout: %v needs %d sectors/disk for %d data sectors, drive holds %d", cfg, need, dataSectors, geom.TotalSectors())
	}
	groupTracks := geom.Heads / cfg.Dr
	if cfg.IntraTrack {
		groupTracks = geom.Heads // every track carries all replicas
	}
	l := &Layout{
		Cfg:         cfg,
		Geom:        geom,
		unit:        cfg.StripeUnit,
		dataSectors: dataSectors,
		perDisk:     perDisk,
		groupTracks: groupTracks,
	}
	// Distinct-data capacity cumulative per zone (logical cylinders only).
	lastCyl := geom.LogicalCylinders() - 1
	var cum int64
	for _, z := range geom.Zones {
		end := z.EndCyl
		if end > lastCyl {
			end = lastCyl
		}
		if z.StartCyl > lastCyl {
			break
		}
		cum += int64(end-z.StartCyl+1) * int64(l.groupTracks) * int64(l.slotsPerTrack(z.SPT))
		l.zoneCap = append(l.zoneCap, cum)
	}
	// Used cylinders: cylinder of the last data index.
	c, _, _ := l.locate(perDisk - 1)
	l.usedCyl = c + 1
	return l, nil
}

// DataSectors returns the logical volume size.
func (l *Layout) DataSectors() int64 { return l.dataSectors }

// PerDisk returns the distinct data sectors stored per disk.
func (l *Layout) PerDisk() int64 { return l.perDisk }

// UsedCylinders returns how many cylinders of each drive hold data — the
// seek-limiting footprint (≈ LogicalCylinders/Ds when the volume fills the
// array).
func (l *Layout) UsedCylinders() int { return l.usedCyl }

// StripeUnit returns the stripe unit in sectors.
func (l *Layout) StripeUnit() int { return l.unit }

// slotsPerTrack is the distinct-data capacity of one track: the whole
// track for cross-track replication, a 1/Dr region for intra-track.
func (l *Layout) slotsPerTrack(spt int) int {
	if l.Cfg.IntraTrack {
		return spt / l.Cfg.Dr
	}
	return spt
}

// locate maps a per-disk data index to (cylinder, trackInGroup, slot).
// Within a cylinder, data is track-major: index = track*slots + slot.
func (l *Layout) locate(idx int64) (cyl, track, slot int) {
	if idx < 0 || idx >= l.perDisk {
		panic(fmt.Sprintf("layout: data index %d out of [0,%d)", idx, l.perDisk))
	}
	var prev int64
	for zi, cum := range l.zoneCap {
		if idx < cum {
			z := l.Geom.Zones[zi]
			slots := l.slotsPerTrack(z.SPT)
			perCyl := int64(l.groupTracks) * int64(slots)
			rel := idx - prev
			cyl = z.StartCyl + int(rel/perCyl)
			rem := int(rel % perCyl)
			return cyl, rem / slots, rem % slots
		}
		prev = cum
	}
	panic(fmt.Sprintf("layout: data index %d beyond zone capacity", idx))
}

// place returns the physical location of replica j of the data block at
// (cyl, track, slot). Replica 0 sits at its natural sector; replica j sits
// j/Dr of a revolution later on track j*groupTracks+track, with the sector
// number resolved through that track's own skew.
func (l *Layout) place(cyl, track, slot, j int) disk.Chs {
	if l.Cfg.IntraTrack {
		// Replica j sits j/Dr of the track further along the same track.
		slots := l.slotsPerTrack(l.Geom.SPTOf(cyl))
		return disk.Chs{Cyl: cyl, Head: track, Sector: slot + j*slots}
	}
	h0 := track // replica group 0
	if j == 0 {
		return disk.Chs{Cyl: cyl, Head: h0, Sector: slot}
	}
	base := l.Geom.SectorAngle(disk.Chs{Cyl: cyl, Head: h0, Sector: slot})
	angle := base + float64(j)/float64(l.Cfg.Dr)
	if angle >= 1 {
		angle -= 1
	}
	hj := j*l.groupTracks + track
	return disk.Chs{Cyl: cyl, Head: hj, Sector: l.Geom.SectorAtAngle(cyl, hj, angle)}
}

// replicaExtents returns the physical extents of replica j for n data
// sectors starting at per-disk index idx. Runs are split at track
// boundaries of the data layout and at the physical wrap of each track.
func (l *Layout) replicaExtents(idx int64, n, j int) []disk.Extent {
	var out []disk.Extent
	for n > 0 {
		cyl, track, slot := l.locate(idx)
		spt := l.Geom.SPTOf(cyl)
		run := l.slotsPerTrack(spt) - slot
		if run > n {
			run = n
		}
		start := l.place(cyl, track, slot, j)
		// The replica's physical sectors are consecutive from start.Sector,
		// wrapping at the end of the track.
		first := spt - start.Sector
		if first > run {
			first = run
		}
		out = append(out, disk.Extent{Start: start, Count: first})
		if rest := run - first; rest > 0 {
			out = append(out, disk.Extent{Start: disk.Chs{Cyl: cyl, Head: start.Head, Sector: 0}, Count: rest})
		}
		idx += int64(run)
		n -= run
	}
	return out
}

// Arena is reusable backing storage for ResolveArena: all the slices a
// resolution needs come from four flat buffers that are truncated (not
// freed) between uses, so a caller resolving many requests through one
// Arena allocates only until the buffers reach their steady-state
// capacity. Results are handed out as capacity-limited subslices, so a
// holder appending to a returned slice (replica merging in the array
// layer) reallocates privately instead of stomping neighbouring results.
//
// An Arena must not be Reset (or passed to ResolveArena again) while any
// result resolved from it is still in use.
type Arena struct {
	pieces  []Piece
	mirrors []int
	reps    [][]disk.Extent
	extents []disk.Extent
}

// Reset forgets previous contents, retaining capacity.
func (a *Arena) Reset() {
	a.pieces = a.pieces[:0]
	a.mirrors = a.mirrors[:0]
	a.reps = a.reps[:0]
	a.extents = a.extents[:0]
}

// ResolveArena is Resolve backed by ar's buffers (which it Resets first).
// The returned pieces are value-identical to Resolve's. A nil arena falls
// back to plain Resolve.
func (l *Layout) ResolveArena(off int64, count int, ar *Arena) ([]Piece, error) {
	if ar == nil {
		return l.Resolve(off, count)
	}
	if off < 0 || count <= 0 || off+int64(count) > l.dataSectors {
		return nil, fmt.Errorf("layout: range [%d,+%d) outside volume of %d sectors", off, count, l.dataSectors)
	}
	ar.Reset()
	g := l.Cfg.Positions()
	for count > 0 {
		chunk := off / int64(l.unit)
		within := int(off % int64(l.unit))
		n := l.unit - within
		if n > count {
			n = count
		}
		pos := int(chunk % int64(g))
		idx := (chunk/int64(g))*int64(l.unit) + int64(within)
		mStart := len(ar.mirrors)
		for m := 0; m < l.Cfg.Dm; m++ {
			ar.mirrors = append(ar.mirrors, m*g+pos)
		}
		rStart := len(ar.reps)
		for j := 0; j < l.Cfg.Dr; j++ {
			ar.reps = append(ar.reps, nil)
		}
		for j := 0; j < l.Cfg.Dr; j++ {
			ar.reps[rStart+j] = l.replicaExtentsArena(idx, n, j, ar)
		}
		mEnd, rEnd := len(ar.mirrors), len(ar.reps)
		ar.pieces = append(ar.pieces, Piece{
			Position: pos,
			Off:      off,
			Count:    n,
			Chunk:    chunk,
			Mirrors:  ar.mirrors[mStart:mEnd:mEnd],
			Replicas: ar.reps[rStart:rEnd:rEnd],
		})
		off += int64(n)
		count -= n
	}
	n := len(ar.pieces)
	return ar.pieces[0:n:n], nil
}

// replicaExtentsArena is replicaExtents appending into the arena's flat
// extent buffer, returning a capacity-limited subslice.
func (l *Layout) replicaExtentsArena(idx int64, n, j int, ar *Arena) []disk.Extent {
	start := len(ar.extents)
	for n > 0 {
		cyl, track, slot := l.locate(idx)
		spt := l.Geom.SPTOf(cyl)
		run := l.slotsPerTrack(spt) - slot
		if run > n {
			run = n
		}
		s := l.place(cyl, track, slot, j)
		first := spt - s.Sector
		if first > run {
			first = run
		}
		ar.extents = append(ar.extents, disk.Extent{Start: s, Count: first})
		if rest := run - first; rest > 0 {
			ar.extents = append(ar.extents, disk.Extent{Start: disk.Chs{Cyl: cyl, Head: s.Head, Sector: 0}, Count: rest})
		}
		idx += int64(run)
		n -= run
	}
	end := len(ar.extents)
	return ar.extents[start:end:end]
}

// Resolve splits the logical range [off, off+count) into pieces, one per
// stripe chunk touched, each fully resolved to mirror disks and rotational
// replica extents.
func (l *Layout) Resolve(off int64, count int) ([]Piece, error) {
	if off < 0 || count <= 0 || off+int64(count) > l.dataSectors {
		return nil, fmt.Errorf("layout: range [%d,+%d) outside volume of %d sectors", off, count, l.dataSectors)
	}
	g := l.Cfg.Positions()
	var pieces []Piece
	for count > 0 {
		chunk := off / int64(l.unit)
		within := int(off % int64(l.unit))
		n := l.unit - within
		if n > count {
			n = count
		}
		pos := int(chunk % int64(g))
		idx := (chunk/int64(g))*int64(l.unit) + int64(within)
		p := Piece{
			Position: pos,
			Off:      off,
			Count:    n,
			Chunk:    chunk,
			Replicas: make([][]disk.Extent, l.Cfg.Dr),
		}
		for m := 0; m < l.Cfg.Dm; m++ {
			p.Mirrors = append(p.Mirrors, m*g+pos)
		}
		for j := 0; j < l.Cfg.Dr; j++ {
			p.Replicas[j] = l.replicaExtents(idx, n, j)
		}
		pieces = append(pieces, p)
		off += int64(n)
		count -= n
	}
	return pieces, nil
}

// ReplicaAngles returns the platter angles of every rotational replica of
// the data block at logical offset off — a verification hook for the
// even-spacing invariant.
func (l *Layout) ReplicaAngles(off int64) ([]float64, error) {
	pieces, err := l.Resolve(off, 1)
	if err != nil {
		return nil, err
	}
	var angles []float64
	for j := range pieces[0].Replicas {
		e := pieces[0].Replicas[j][0]
		angles = append(angles, l.Geom.SectorAngle(e.Start))
	}
	return angles, nil
}
