package layout

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/disk"
)

func geom(t testing.TB) *disk.Geometry {
	t.Helper()
	return disk.ST39133LWV().MustNew().Geom
}

func TestConfigCorners(t *testing.T) {
	cases := []struct {
		cfg   Config
		disks int
	}{
		{Striping(6), 6},
		{Mirror(6), 6},
		{RAID10(6), 6},
		{SRArray(2, 3), 6},
		{Config{Ds: 9, Dr: 4, Dm: 1}, 36},
		{Config{Ds: 3, Dr: 2, Dm: 2}, 12},
	}
	for _, c := range cases {
		if got := c.cfg.Disks(); got != c.disks {
			t.Errorf("%v.Disks() = %d, want %d", c.cfg, got, c.disks)
		}
	}
}

func TestNewValidation(t *testing.T) {
	g := geom(t)
	if _, err := New(Config{Ds: 0, Dr: 1, Dm: 1}, g, 1000); err == nil {
		t.Error("Ds=0 accepted")
	}
	if _, err := New(Config{Ds: 1, Dr: 5, Dm: 1}, g, 1000); err == nil {
		t.Error("Dr=5 with 12 heads accepted (5 does not divide 12)")
	}
	// A volume bigger than Ds disks' worth cannot fit once replicated.
	if _, err := New(Config{Ds: 1, Dr: 2, Dm: 1}, g, g.TotalSectors()+2); err == nil {
		t.Error("over-capacity configuration accepted")
	}
	// A full single-disk volume (aligned to whole stripe units across the
	// positions) fits exactly in 1x2x1 — each of the 2 disks stores half
	// the data twice — and comfortably in 2x2x1.
	full := g.TotalSectors() / 256 * 256
	if _, err := New(Config{Ds: 1, Dr: 2, Dm: 1}, g, full); err != nil {
		t.Errorf("1x2x1 with a full volume rejected: %v", err)
	}
	if _, err := New(Config{Ds: 2, Dr: 2, Dm: 1}, g, full); err != nil {
		t.Errorf("2x2x1 with a full volume rejected: %v", err)
	}
	sp := disk.ST39133LWV()
	sp.Defects = []int64{12345}
	if _, err := New(Striping(2), sp.MustNew().Geom, 1000); err == nil {
		t.Error("defective geometry accepted")
	}
}

func TestSeekFootprintShrinksWithDs(t *testing.T) {
	g := geom(t)
	vol := g.TotalSectors() / (256 * 3) * (256 * 3) // unit-aligned across configs
	prev := math.MaxInt32
	for _, ds := range []int{1, 2, 3, 6} {
		l, err := New(Config{Ds: ds, Dr: 2, Dm: 1}, g, vol)
		if err != nil {
			t.Fatalf("Ds=%d: %v", ds, err)
		}
		used := l.UsedCylinders()
		want := float64(g.LogicalCylinders()) / float64(ds)
		// Data fills from the denser outer zones, so the footprint comes in
		// at or slightly under the uniform-track 1/Ds estimate.
		if float64(used) > 1.02*want || float64(used) < 0.8*want {
			t.Errorf("Ds=%d: used %d cylinders, want ~%.0f (1/Ds of %d)", ds, used, want, g.LogicalCylinders())
		}
		if used >= prev {
			t.Errorf("Ds=%d: footprint %d did not shrink from %d", ds, used, prev)
		}
		prev = used
	}
}

func TestResolveCoversRangeExactly(t *testing.T) {
	g := geom(t)
	l, err := New(Config{Ds: 3, Dr: 2, Dm: 2}, g, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	f := func(offRaw uint32, cntRaw uint16) bool {
		off := int64(offRaw) % (l.DataSectors() - 1)
		count := int(cntRaw)%512 + 1
		if off+int64(count) > l.DataSectors() {
			count = int(l.DataSectors() - off)
		}
		pieces, err := l.Resolve(off, count)
		if err != nil {
			return false
		}
		// Pieces tile [off, off+count) without gaps or overlap.
		expect := off
		total := 0
		for _, p := range pieces {
			if p.Off != expect {
				return false
			}
			expect += int64(p.Count)
			total += p.Count
			// Every replica covers exactly the piece's sectors.
			for _, rep := range p.Replicas {
				n := 0
				for _, e := range rep {
					n += e.Count
				}
				if n != p.Count {
					return false
				}
			}
			if len(p.Mirrors) != l.Cfg.Dm || len(p.Replicas) != l.Cfg.Dr {
				return false
			}
		}
		return total == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestReplicaAnglesEvenlySpaced(t *testing.T) {
	g := geom(t)
	for _, dr := range []int{2, 3, 4, 6} {
		l, err := New(Config{Ds: 2, Dr: dr, Dm: 1}, g, 1<<21)
		if err != nil {
			t.Fatalf("Dr=%d: %v", dr, err)
		}
		rng := rand.New(rand.NewSource(int64(dr)))
		for trial := 0; trial < 200; trial++ {
			off := rng.Int63n(l.DataSectors())
			angles, err := l.ReplicaAngles(off)
			if err != nil {
				t.Fatal(err)
			}
			if len(angles) != dr {
				t.Fatalf("Dr=%d: %d angles", dr, len(angles))
			}
			// Each replica j sits j/Dr after replica 0, to within one
			// sector of rounding.
			pieces, _ := l.Resolve(off, 1)
			cyl := pieces[0].Replicas[0][0].Start.Cyl
			tol := 1.5 / float64(g.SPTOf(cyl))
			for j := 1; j < dr; j++ {
				gap := angles[j] - angles[0] - float64(j)/float64(dr)
				gap -= math.Round(gap)
				if math.Abs(gap) > tol {
					t.Fatalf("Dr=%d off=%d: replica %d at angle gap %.4f from even spacing (tol %.4f)", dr, off, j, gap, tol)
				}
			}
		}
	}
}

func TestReplicasOnSameCylinderDistinctTracks(t *testing.T) {
	g := geom(t)
	l, err := New(Config{Ds: 2, Dr: 3, Dm: 1}, g, 1<<21)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 300; trial++ {
		off := rng.Int63n(l.DataSectors() - 8)
		pieces, err := l.Resolve(off, 8)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pieces {
			// A piece may legitimately span a track or cylinder boundary,
			// but every replica must visit exactly the primary's cylinders
			// (the SR invariant is per-block, same cylinder per copy) and
			// stay within its own track group.
			primaryCyls := map[int]bool{}
			for _, e := range p.Replicas[0] {
				primaryCyls[e.Start.Cyl] = true
			}
			groupTracks := g.Heads / l.Cfg.Dr
			for j, rep := range p.Replicas {
				for _, e := range rep {
					if !primaryCyls[e.Start.Cyl] {
						t.Fatalf("replica %d extent on cylinder %d, primary on %v", j, e.Start.Cyl, primaryCyls)
					}
					if got := e.Start.Head / groupTracks; got != j {
						t.Fatalf("replica %d extent on head %d (group %d)", j, e.Start.Head, got)
					}
				}
			}
		}
	}
}

func TestMirrorDiskIDs(t *testing.T) {
	g := geom(t)
	l, err := New(Config{Ds: 3, Dr: 1, Dm: 2}, g, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	unit := int64(l.StripeUnit())
	for chunk := int64(0); chunk < 9; chunk++ {
		pieces, err := l.Resolve(chunk*unit, 1)
		if err != nil {
			t.Fatal(err)
		}
		p := pieces[0]
		wantPos := int(chunk % 3)
		if p.Position != wantPos {
			t.Errorf("chunk %d: position %d, want %d", chunk, p.Position, wantPos)
		}
		if p.Mirrors[0] != wantPos || p.Mirrors[1] != wantPos+3 {
			t.Errorf("chunk %d: mirrors %v, want [%d %d]", chunk, p.Mirrors, wantPos, wantPos+3)
		}
	}
}

func TestStripingDistributesChunksRoundRobin(t *testing.T) {
	g := geom(t)
	l, err := New(Striping(4), g, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	unit := int64(l.StripeUnit())
	counts := map[int]int{}
	for chunk := int64(0); chunk < 64; chunk++ {
		pieces, err := l.Resolve(chunk*unit, l.StripeUnit())
		if err != nil {
			t.Fatal(err)
		}
		if len(pieces) != 1 {
			t.Fatalf("chunk-aligned unit resolve returned %d pieces", len(pieces))
		}
		counts[pieces[0].Mirrors[0]]++
	}
	for d := 0; d < 4; d++ {
		if counts[d] != 16 {
			t.Errorf("disk %d got %d chunks, want 16", d, counts[d])
		}
	}
}

func TestResolveRejectsBadRange(t *testing.T) {
	g := geom(t)
	l, err := New(Striping(2), g, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Resolve(-1, 10); err == nil {
		t.Error("negative offset accepted")
	}
	if _, err := l.Resolve(990, 20); err == nil {
		t.Error("range past volume end accepted")
	}
	if _, err := l.Resolve(0, 0); err == nil {
		t.Error("zero count accepted")
	}
}

// Sequential placement: consecutive logical sectors within a chunk are
// physically consecutive (same track, consecutive angles) for the primary
// replica, so sequential bandwidth is preserved.
func TestSequentialPlacementContiguous(t *testing.T) {
	g := geom(t)
	l, err := New(Config{Ds: 2, Dr: 2, Dm: 1}, g, 1<<21)
	if err != nil {
		t.Fatal(err)
	}
	pieces, err := l.Resolve(0, l.StripeUnit())
	if err != nil {
		t.Fatal(err)
	}
	p := pieces[0]
	// The primary replica of one chunk should resolve to at most a couple
	// of extents (track crossing), not one per sector.
	if len(p.Replicas[0]) > 3 {
		t.Errorf("primary replica of one chunk fragmented into %d extents", len(p.Replicas[0]))
	}
}

func TestIntraTrackPlacement(t *testing.T) {
	g := geom(t)
	l, err := New(Config{Ds: 1, Dr: 2, Dm: 1, IntraTrack: true}, g, 1<<21)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		off := rng.Int63n(l.DataSectors() - 8)
		pieces, err := l.Resolve(off, 8)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pieces {
			// Both replicas on the SAME track, half a track apart.
			e0, e1 := p.Replicas[0][0], p.Replicas[1][0]
			if e0.Start.Cyl != e1.Start.Cyl || e0.Start.Head != e1.Start.Head {
				t.Fatalf("intra-track replicas on different tracks: %v vs %v", e0.Start, e1.Start)
			}
			spt := g.SPTOf(e0.Start.Cyl)
			if want := e0.Start.Sector + spt/2; e1.Start.Sector != want {
				t.Fatalf("replica 1 at sector %d, want %d", e1.Start.Sector, want)
			}
		}
	}
	// Intra-track with Dr=5 is allowed even though 5 does not divide the
	// head count (the constraint is per-track, not per-surface).
	if _, err := New(Config{Ds: 1, Dr: 5, Dm: 1, IntraTrack: true}, g, 1<<20); err != nil {
		t.Errorf("intra-track Dr=5 rejected: %v", err)
	}
}

// Within one piece, a replica's extents are pairwise disjoint physical
// sectors.
func TestReplicaExtentsDisjoint(t *testing.T) {
	g := geom(t)
	for _, cfg := range []Config{
		{Ds: 2, Dr: 3, Dm: 1},
		{Ds: 1, Dr: 2, Dm: 1, IntraTrack: true},
	} {
		l, err := New(cfg, g, 1<<21)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))
		for trial := 0; trial < 150; trial++ {
			off := rng.Int63n(l.DataSectors() - 200)
			pieces, err := l.Resolve(off, 200)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range pieces {
				for j, rep := range p.Replicas {
					type span struct{ lo, hi int64 }
					var spans []span
					for _, e := range rep {
						lo, err := g.PhysToLBA(e.Start)
						if err != nil {
							t.Fatal(err)
						}
						spans = append(spans, span{lo, lo + int64(e.Count)})
					}
					for x := range spans {
						for y := x + 1; y < len(spans); y++ {
							if spans[x].lo < spans[y].hi && spans[y].lo < spans[x].hi {
								t.Fatalf("%v replica %d extents overlap: %v %v", cfg, j, spans[x], spans[y])
							}
						}
					}
				}
			}
		}
	}
}

func TestUsedCylindersMonotoneInVolume(t *testing.T) {
	g := geom(t)
	prev := 0
	for _, vol := range []int64{1 << 18, 1 << 20, 1 << 22, 1 << 24} {
		l, err := New(Config{Ds: 2, Dr: 2, Dm: 1}, g, vol)
		if err != nil {
			t.Fatal(err)
		}
		if l.UsedCylinders() < prev {
			t.Fatalf("footprint shrank as volume grew")
		}
		prev = l.UsedCylinders()
	}
}

func TestResolveArenaMatchesResolve(t *testing.T) {
	g := geom(t)
	l, err := New(Config{Ds: 3, Dr: 2, Dm: 2}, g, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	var ar Arena
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		off := rng.Int63n(l.DataSectors() - 1)
		count := rng.Intn(512) + 1
		if off+int64(count) > l.DataSectors() {
			count = int(l.DataSectors() - off)
		}
		want, err := l.Resolve(off, count)
		if err != nil {
			t.Fatal(err)
		}
		got, err := l.ResolveArena(off, count, &ar)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("ResolveArena diverged at off=%d count=%d:\n%v\nvs\n%v", off, count, got, want)
		}
	}
}

func TestResolveArenaSteadyStateAllocFree(t *testing.T) {
	g := geom(t)
	l, err := New(Config{Ds: 3, Dr: 2, Dm: 2}, g, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	var ar Arena
	// Warm the arena to its steady-state capacity.
	for off := int64(0); off < 4096; off += 37 {
		if _, err := l.ResolveArena(off, 300, &ar); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := l.ResolveArena(12345, 300, &ar); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm ResolveArena allocates %.1f objects per call", allocs)
	}
}

func TestResolveArenaNilFallsBack(t *testing.T) {
	g := geom(t)
	l, err := New(Config{Ds: 2, Dr: 2, Dm: 1}, g, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := l.Resolve(100, 50)
	got, err := l.ResolveArena(100, 50, nil)
	if err != nil || !reflect.DeepEqual(got, want) {
		t.Fatalf("nil-arena resolve diverged (err=%v)", err)
	}
}
