package disk

import (
	"fmt"
	"math/rand"

	"repro/internal/des"
)

// FaultKind classifies an injected per-command fault.
type FaultKind int

const (
	// FaultNone is a clean completion.
	FaultNone FaultKind = iota
	// FaultTransient is a transient or latent-sector error: the mechanism
	// positions and transfers normally, but the command reports a medium
	// error (an uncorrectable ECC event). A retry of the same command
	// redraws the fault and usually succeeds — the dominant real-world
	// drive error mode.
	FaultTransient
	// FaultTimeout is a command that dies inside the drive: no mechanical
	// service is observed and the host learns of the loss only when its
	// command timer expires. The arm does not move.
	FaultTimeout
)

func (k FaultKind) String() string {
	switch k {
	case FaultTransient:
		return "transient"
	case FaultTimeout:
		return "timeout"
	default:
		return "none"
	}
}

// DefaultFaultTimeout is the host command-timer expiry used when a
// FaultModel does not set one: SCSI drivers of the prototype's era waited
// a quarter second to a few seconds before giving up on a command.
const DefaultFaultTimeout = 250 * des.Millisecond

// FaultModel parameterizes per-drive fault injection. Rates are per-command
// probabilities; they are deliberately enormous compared to real media
// error rates (~1e-8 per bit read) so that minutes of simulated time
// exercise the retry and failover machinery that years of real operation
// would.
type FaultModel struct {
	// TransientRate is the per-command probability of a transient medium
	// error (FaultTransient).
	TransientRate float64
	// TimeoutRate is the per-command probability of a command timeout
	// (FaultTimeout).
	TimeoutRate float64
	// TimeoutDelay is how long the host waits before declaring a command
	// dead; 0 means DefaultFaultTimeout.
	TimeoutDelay des.Time
	// Slow assigns fail-slow profiles to individual drives by index: the
	// drive keeps answering, just slower — persistently, in stutter
	// windows, or both. Nil or empty means every drive runs at full speed.
	Slow map[int]SlowProfile

	// LatentRate is the per-read-command probability that the media under
	// the command has rotted (a latent sector error): the read completes
	// with good status but returns garbage, and the copy stays bad until
	// rewritten. Only an end-to-end integrity check above the bus can
	// notice.
	LatentRate float64
	// CorruptRate is the per-read-command probability of transient path
	// corruption (a misdirected or bit-flipped transfer): the read returns
	// garbage once, but the media itself is fine and a reissue reads clean.
	CorruptRate float64
	// TornRate is the per-write-command probability of a torn write: the
	// command reports success but the copy on the platter is garbage, and
	// stays garbage until rewritten.
	TornRate float64
}

// Enabled reports whether the model can ever produce a fault.
func (m FaultModel) Enabled() bool { return m.TransientRate > 0 || m.TimeoutRate > 0 }

// CorruptionEnabled reports whether the model can ever corrupt data
// silently.
func (m FaultModel) CorruptionEnabled() bool {
	return m.LatentRate > 0 || m.CorruptRate > 0 || m.TornRate > 0
}

// SlowFor returns drive i's fail-slow profile (zero value when none).
func (m FaultModel) SlowFor(i int) SlowProfile { return m.Slow[i] }

// SlowProfile describes one drive's fail-slow behaviour: real arrays
// mostly degrade by getting slow (media retries, remapped sectors,
// vibration, firmware GC) long before they fail outright. The profile
// inflates the mechanical service time of every command; the host sees
// only the longer completion, exactly as with a real stuttering drive.
type SlowProfile struct {
	// Factor persistently multiplies every command's mechanical service
	// time. 0 or 1 means no persistent inflation; 4 means the drive takes
	// four times as long to position and transfer.
	Factor float64
	// StutterEvery is the mean gap between stutter-window starts (drawn
	// exponentially from the drive's seeded stream). 0 disables stutters.
	StutterEvery des.Time
	// StutterFor is the mean duration of a stutter window (exponential).
	StutterFor des.Time
	// StutterFactor multiplies mechanical service time for commands whose
	// service falls inside a stutter window (on top of Factor).
	StutterFactor float64
}

// Enabled reports whether the profile slows anything.
func (p SlowProfile) Enabled() bool {
	return p.Factor > 1 || p.StutterEvery > 0
}

// Validate rejects nonsensical profiles.
func (p SlowProfile) Validate() error {
	if p.Factor < 0 || (p.Factor > 0 && p.Factor < 1) {
		return fmt.Errorf("disk: slow factor %v must be 0 or >= 1", p.Factor)
	}
	if p.StutterEvery < 0 || p.StutterFor < 0 {
		return fmt.Errorf("disk: negative stutter interval/duration %v/%v", p.StutterEvery, p.StutterFor)
	}
	if p.StutterEvery > 0 {
		if p.StutterFor == 0 {
			return fmt.Errorf("disk: stutter windows enabled with zero duration")
		}
		if p.StutterFactor < 1 {
			return fmt.Errorf("disk: stutter factor %v must be >= 1", p.StutterFactor)
		}
	}
	return nil
}

// Validate rejects rates outside [0, 0.5] (individually) or summing to
// 0.9+. The bound guarantees that retry-until-success terminates quickly:
// the array retries a faulted command in-drive and then fails over, and
// both paths redraw the fault.
func (m FaultModel) Validate() error {
	if m.TransientRate < 0 || m.TransientRate > 0.5 {
		return fmt.Errorf("disk: transient fault rate %v outside [0, 0.5]", m.TransientRate)
	}
	if m.TimeoutRate < 0 || m.TimeoutRate > 0.5 {
		return fmt.Errorf("disk: timeout fault rate %v outside [0, 0.5]", m.TimeoutRate)
	}
	if m.TransientRate+m.TimeoutRate >= 0.9 {
		return fmt.Errorf("disk: combined fault rate %v too close to certainty", m.TransientRate+m.TimeoutRate)
	}
	if m.TimeoutDelay < 0 {
		return fmt.Errorf("disk: negative fault timeout %v", m.TimeoutDelay)
	}
	if m.LatentRate < 0 || m.LatentRate > 0.5 {
		return fmt.Errorf("disk: latent error rate %v outside [0, 0.5]", m.LatentRate)
	}
	if m.CorruptRate < 0 || m.CorruptRate > 0.5 {
		return fmt.Errorf("disk: corruption rate %v outside [0, 0.5]", m.CorruptRate)
	}
	if m.TornRate < 0 || m.TornRate > 0.5 {
		return fmt.Errorf("disk: torn write rate %v outside [0, 0.5]", m.TornRate)
	}
	if m.LatentRate+m.CorruptRate >= 0.9 {
		return fmt.Errorf("disk: combined read corruption rate %v too close to certainty", m.LatentRate+m.CorruptRate)
	}
	for i, p := range m.Slow {
		if i < 0 {
			return fmt.Errorf("disk: slow profile for negative drive index %d", i)
		}
		if err := p.Validate(); err != nil {
			return fmt.Errorf("drive %d: %w", i, err)
		}
	}
	return nil
}

// Timeout returns the configured or default command-timer expiry.
func (m FaultModel) Timeout() des.Time {
	if m.TimeoutDelay > 0 {
		return m.TimeoutDelay
	}
	return DefaultFaultTimeout
}

// FaultInjector draws faults for one drive from its own seeded stream, so
// fault sequences are reproducible and independent of every other source
// of randomness in a run (spindle phases, noise, workloads).
type FaultInjector struct {
	model FaultModel
	rng   *rand.Rand
}

// NewFaultInjector builds an injector for a validated model. A nil return
// means the model injects nothing (callers skip the draw entirely).
func NewFaultInjector(m FaultModel, seed int64) *FaultInjector {
	if !m.Enabled() {
		return nil
	}
	return &FaultInjector{model: m, rng: rand.New(rand.NewSource(seed))}
}

// Model returns the injector's configuration.
func (fi *FaultInjector) Model() FaultModel { return fi.model }

// Draw decides the fate of one command: exactly one uniform variate per
// command, deterministic in command order.
func (fi *FaultInjector) Draw() FaultKind {
	f := fi.rng.Float64()
	if f < fi.model.TimeoutRate {
		return FaultTimeout
	}
	if f < fi.model.TimeoutRate+fi.model.TransientRate {
		return FaultTransient
	}
	return FaultNone
}

// CorruptionInjector draws silent-corruption events for one drive from
// its own seeded stream, independent of the fault and slow streams
// (enabling corruption never perturbs which commands fault or stutter).
type CorruptionInjector struct {
	model FaultModel
	rng   *rand.Rand
}

// NewCorruptionInjector builds an injector for a validated model. A nil
// return means the model never corrupts (callers skip the draw entirely).
func NewCorruptionInjector(m FaultModel, seed int64) *CorruptionInjector {
	if !m.CorruptionEnabled() {
		return nil
	}
	return &CorruptionInjector{model: m, rng: rand.New(rand.NewSource(seed))}
}

// Model returns the injector's configuration.
func (ci *CorruptionInjector) Model() FaultModel { return ci.model }

// Draw decides the silent fate of one command: exactly one uniform
// variate per command regardless of opcode, deterministic in command
// order. Reads draw latent-vs-transient corruption; writes draw tearing.
func (ci *CorruptionInjector) Draw(write bool) (latent, corrupt, torn bool) {
	f := ci.rng.Float64()
	if write {
		return false, false, f < ci.model.TornRate
	}
	if f < ci.model.LatentRate {
		return true, false, false
	}
	if f < ci.model.LatentRate+ci.model.CorruptRate {
		return false, true, false
	}
	return false, false, false
}

// SlowState realizes one drive's SlowProfile: the persistent inflation
// factor plus a lazily generated stream of stutter windows, drawn from the
// drive's own seeded rng so slow behaviour is reproducible and independent
// of the transient-fault stream (enabling stutters never perturbs which
// commands fault).
type SlowState struct {
	prof             SlowProfile
	rng              *rand.Rand
	winStart, winEnd des.Time
	inited           bool
	// Stutters counts commands that fell inside a stutter window.
	Stutters int64
}

// NewSlowState builds the per-drive slow stream. A nil return means the
// profile slows nothing (callers skip the hook entirely).
func NewSlowState(p SlowProfile, seed int64) *SlowState {
	if !p.Enabled() {
		return nil
	}
	return &SlowState{prof: p, rng: rand.New(rand.NewSource(seed))}
}

// Profile returns the state's configuration.
func (s *SlowState) Profile() SlowProfile { return s.prof }

// advance rolls the window stream forward so that winEnd > now, drawing
// new (start, duration) pairs as simulated time passes. Deterministic in
// the sequence of now values, which the DES makes deterministic.
func (s *SlowState) advance(now des.Time) {
	draw := func(mean des.Time) des.Time {
		return des.Time(s.rng.ExpFloat64() * float64(mean))
	}
	if !s.inited {
		s.inited = true
		s.winStart = draw(s.prof.StutterEvery)
		s.winEnd = s.winStart + draw(s.prof.StutterFor)
	}
	for now >= s.winEnd {
		s.winStart = s.winEnd + draw(s.prof.StutterEvery)
		s.winEnd = s.winStart + draw(s.prof.StutterFor)
	}
}

// Inflate returns the extra service time a command suffers: svc is the
// healthy mechanical service duration and now the time the mechanism
// started. stutter reports whether a stutter window contributed (so upper
// layers can attribute the slowness).
func (s *SlowState) Inflate(now, svc des.Time) (extra des.Time, stutter bool) {
	if f := s.prof.Factor; f > 1 {
		extra = des.Time((f - 1) * float64(svc))
	}
	if s.prof.StutterEvery > 0 {
		s.advance(now)
		if now >= s.winStart && now < s.winEnd {
			extra += des.Time((s.prof.StutterFactor - 1) * float64(svc))
			stutter = true
			s.Stutters++
		}
	}
	return extra, stutter
}
