package disk

import (
	"fmt"
	"math/rand"

	"repro/internal/des"
)

// FaultKind classifies an injected per-command fault.
type FaultKind int

const (
	// FaultNone is a clean completion.
	FaultNone FaultKind = iota
	// FaultTransient is a transient or latent-sector error: the mechanism
	// positions and transfers normally, but the command reports a medium
	// error (an uncorrectable ECC event). A retry of the same command
	// redraws the fault and usually succeeds — the dominant real-world
	// drive error mode.
	FaultTransient
	// FaultTimeout is a command that dies inside the drive: no mechanical
	// service is observed and the host learns of the loss only when its
	// command timer expires. The arm does not move.
	FaultTimeout
)

func (k FaultKind) String() string {
	switch k {
	case FaultTransient:
		return "transient"
	case FaultTimeout:
		return "timeout"
	default:
		return "none"
	}
}

// DefaultFaultTimeout is the host command-timer expiry used when a
// FaultModel does not set one: SCSI drivers of the prototype's era waited
// a quarter second to a few seconds before giving up on a command.
const DefaultFaultTimeout = 250 * des.Millisecond

// FaultModel parameterizes per-drive fault injection. Rates are per-command
// probabilities; they are deliberately enormous compared to real media
// error rates (~1e-8 per bit read) so that minutes of simulated time
// exercise the retry and failover machinery that years of real operation
// would.
type FaultModel struct {
	// TransientRate is the per-command probability of a transient medium
	// error (FaultTransient).
	TransientRate float64
	// TimeoutRate is the per-command probability of a command timeout
	// (FaultTimeout).
	TimeoutRate float64
	// TimeoutDelay is how long the host waits before declaring a command
	// dead; 0 means DefaultFaultTimeout.
	TimeoutDelay des.Time
}

// Enabled reports whether the model can ever produce a fault.
func (m FaultModel) Enabled() bool { return m.TransientRate > 0 || m.TimeoutRate > 0 }

// Validate rejects rates outside [0, 0.5] (individually) or summing to
// 0.9+. The bound guarantees that retry-until-success terminates quickly:
// the array retries a faulted command in-drive and then fails over, and
// both paths redraw the fault.
func (m FaultModel) Validate() error {
	if m.TransientRate < 0 || m.TransientRate > 0.5 {
		return fmt.Errorf("disk: transient fault rate %v outside [0, 0.5]", m.TransientRate)
	}
	if m.TimeoutRate < 0 || m.TimeoutRate > 0.5 {
		return fmt.Errorf("disk: timeout fault rate %v outside [0, 0.5]", m.TimeoutRate)
	}
	if m.TransientRate+m.TimeoutRate >= 0.9 {
		return fmt.Errorf("disk: combined fault rate %v too close to certainty", m.TransientRate+m.TimeoutRate)
	}
	if m.TimeoutDelay < 0 {
		return fmt.Errorf("disk: negative fault timeout %v", m.TimeoutDelay)
	}
	return nil
}

// Timeout returns the configured or default command-timer expiry.
func (m FaultModel) Timeout() des.Time {
	if m.TimeoutDelay > 0 {
		return m.TimeoutDelay
	}
	return DefaultFaultTimeout
}

// FaultInjector draws faults for one drive from its own seeded stream, so
// fault sequences are reproducible and independent of every other source
// of randomness in a run (spindle phases, noise, workloads).
type FaultInjector struct {
	model FaultModel
	rng   *rand.Rand
}

// NewFaultInjector builds an injector for a validated model. A nil return
// means the model injects nothing (callers skip the draw entirely).
func NewFaultInjector(m FaultModel, seed int64) *FaultInjector {
	if !m.Enabled() {
		return nil
	}
	return &FaultInjector{model: m, rng: rand.New(rand.NewSource(seed))}
}

// Model returns the injector's configuration.
func (fi *FaultInjector) Model() FaultModel { return fi.model }

// Draw decides the fate of one command: exactly one uniform variate per
// command, deterministic in command order.
func (fi *FaultInjector) Draw() FaultKind {
	f := fi.rng.Float64()
	if f < fi.model.TimeoutRate {
		return FaultTimeout
	}
	if f < fi.model.TimeoutRate+fi.model.TransientRate {
		return FaultTransient
	}
	return FaultNone
}
