package disk

import (
	"testing"

	"repro/internal/des"
)

func TestSlowProfileEnabled(t *testing.T) {
	cases := []struct {
		p    SlowProfile
		want bool
	}{
		{SlowProfile{}, false},
		{SlowProfile{Factor: 1}, false},
		{SlowProfile{Factor: 4}, true},
		{SlowProfile{StutterEvery: des.Second, StutterFor: des.Millisecond, StutterFactor: 2}, true},
	}
	for _, c := range cases {
		if got := c.p.Enabled(); got != c.want {
			t.Errorf("%+v Enabled() = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestSlowProfileValidate(t *testing.T) {
	good := []SlowProfile{
		{},
		{Factor: 1},
		{Factor: 10},
		{Factor: 4, StutterEvery: des.Second, StutterFor: 10 * des.Millisecond, StutterFactor: 8},
	}
	for _, p := range good {
		if err := p.Validate(); err != nil {
			t.Errorf("%+v rejected: %v", p, err)
		}
	}
	bad := []SlowProfile{
		{Factor: -1},
		{Factor: 0.5},
		{StutterEvery: -des.Second},
		{StutterEvery: des.Second, StutterFor: -1},
		{StutterEvery: des.Second},                                    // windows with zero duration
		{StutterEvery: des.Second, StutterFor: des.Millisecond},       // stutter factor < 1
		{StutterEvery: des.Second, StutterFor: 1, StutterFactor: 0.5}, // stutter factor < 1
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("%+v accepted", p)
		}
	}
}

func TestFaultModelValidatesSlowProfiles(t *testing.T) {
	m := FaultModel{Slow: map[int]SlowProfile{2: {Factor: 0.5}}}
	if err := m.Validate(); err == nil {
		t.Fatal("invalid per-drive profile accepted")
	}
	m = FaultModel{Slow: map[int]SlowProfile{-1: {Factor: 4}}}
	if err := m.Validate(); err == nil {
		t.Fatal("negative drive index accepted")
	}
	m = FaultModel{Slow: map[int]SlowProfile{0: {Factor: 4}}}
	if err := m.Validate(); err != nil {
		t.Fatalf("valid slow model rejected: %v", err)
	}
	if !m.SlowFor(0).Enabled() || m.SlowFor(1).Enabled() {
		t.Fatal("SlowFor returned the wrong profile")
	}
}

func TestSlowStateNilWhenDisabled(t *testing.T) {
	if s := NewSlowState(SlowProfile{}, 1); s != nil {
		t.Fatal("disabled profile built a state")
	}
	if s := NewSlowState(SlowProfile{Factor: 1}, 1); s != nil {
		t.Fatal("factor-1 profile built a state")
	}
}

func TestSlowStatePersistentFactor(t *testing.T) {
	s := NewSlowState(SlowProfile{Factor: 4}, 1)
	extra, stutter := s.Inflate(0, 10*des.Millisecond)
	if extra != 30*des.Millisecond {
		t.Fatalf("extra = %v, want 30ms (factor 4 on 10ms)", extra)
	}
	if stutter {
		t.Fatal("stutter reported without stutter windows")
	}
}

func TestSlowStateStutterWindows(t *testing.T) {
	p := SlowProfile{StutterEvery: 100 * des.Millisecond, StutterFor: 50 * des.Millisecond, StutterFactor: 3}
	s := NewSlowState(p, 7)
	// Sweep simulated time; with mean window gaps of 100ms and durations
	// of 50ms, a second of probing must land both in and out of windows.
	in, out := 0, 0
	for now := des.Time(0); now < des.Second; now += des.Millisecond {
		extra, stutter := s.Inflate(now, des.Millisecond)
		if stutter {
			in++
			if extra != 2*des.Millisecond {
				t.Fatalf("stutter extra = %v, want 2ms (factor 3 on 1ms)", extra)
			}
		} else {
			out++
			if extra != 0 {
				t.Fatalf("extra = %v outside a stutter window", extra)
			}
		}
	}
	if in == 0 || out == 0 {
		t.Fatalf("probe never saw both states: in=%d out=%d", in, out)
	}
	if s.Stutters != int64(in) {
		t.Fatalf("Stutters = %d, want %d", s.Stutters, in)
	}
}

func TestSlowStateDeterministicPerSeed(t *testing.T) {
	p := SlowProfile{Factor: 2, StutterEvery: 50 * des.Millisecond, StutterFor: 20 * des.Millisecond, StutterFactor: 5}
	run := func(seed int64) []des.Time {
		s := NewSlowState(p, seed)
		var out []des.Time
		for now := des.Time(0); now < des.Second; now += 3 * des.Millisecond {
			extra, _ := s.Inflate(now, des.Millisecond)
			out = append(out, extra)
		}
		return out
	}
	a, b := run(3), run(3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("inflation %d differs across identically seeded states", i)
		}
	}
	c := run(4)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical stutter streams")
	}
}
