package disk

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func testDisk(t testing.TB) *Disk {
	t.Helper()
	d, err := ST39133LWV().New()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestCapacityMatchesDatasheet(t *testing.T) {
	d := testDisk(t)
	got := d.Geom.Capacity()
	// The drive is marketed as 9.1 GB (decimal); the simulated geometry
	// should land within a few percent.
	lo, hi := int64(8.7e9), int64(9.5e9)
	if got < lo || got > hi {
		t.Fatalf("capacity = %d bytes, want within [%d,%d]", got, lo, hi)
	}
}

func TestZonesCoverAllCylinders(t *testing.T) {
	d := testDisk(t)
	g := d.Geom
	next := 0
	for i, z := range g.Zones {
		if z.StartCyl != next {
			t.Fatalf("zone %d starts at %d, want %d", i, z.StartCyl, next)
		}
		if z.EndCyl < z.StartCyl {
			t.Fatalf("zone %d empty", i)
		}
		next = z.EndCyl + 1
	}
	if next != g.Cylinders {
		t.Fatalf("zones end at %d, want %d", next, g.Cylinders)
	}
}

func TestZoneSPTDecreasesInward(t *testing.T) {
	d := testDisk(t)
	for i := 1; i < len(d.Geom.Zones); i++ {
		if d.Geom.Zones[i].SPT >= d.Geom.Zones[i-1].SPT {
			t.Fatalf("zone %d SPT %d not less than outer zone's %d",
				i, d.Geom.Zones[i].SPT, d.Geom.Zones[i-1].SPT)
		}
	}
}

func TestLBARoundTrip(t *testing.T) {
	d := testDisk(t)
	g := d.Geom
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		lba := rng.Int63n(g.TotalSectors())
		p, err := g.LBAToPhys(lba)
		if err != nil {
			return false
		}
		back, err := g.PhysToLBA(p)
		return err == nil && back == lba
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestLBAOutOfRange(t *testing.T) {
	d := testDisk(t)
	if _, err := d.Geom.LBAToPhys(-1); err == nil {
		t.Error("LBAToPhys(-1) succeeded")
	}
	if _, err := d.Geom.LBAToPhys(d.Geom.TotalSectors()); err == nil {
		t.Error("LBAToPhys(total) succeeded")
	}
}

func TestReservedAreaHasNoLBA(t *testing.T) {
	d := testDisk(t)
	g := d.Geom
	p := Chs{Cyl: g.Cylinders - 1, Head: 0, Sector: 0}
	if _, err := g.PhysToLBA(p); err == nil {
		t.Error("reserved sector mapped to an LBA")
	}
	// The last LBA should land on the last non-reserved cylinder.
	last, err := g.LBAToPhys(g.TotalSectors() - 1)
	if err != nil {
		t.Fatal(err)
	}
	if want := g.Cylinders - g.ReservedCyls - 1; last.Cyl != want {
		t.Errorf("last LBA at cylinder %d, want %d", last.Cyl, want)
	}
}

func TestDefectSlipping(t *testing.T) {
	sp := ST39133LWV()
	clean := sp.MustNew()
	// Mark three physical sectors defective, including two adjacent ones.
	p, err := clean.Geom.LBAToPhys(1000)
	if err != nil {
		t.Fatal(err)
	}
	base := clean.Geom.physIndex(p)
	sp.Defects = []int64{base, base + 1, base + 500}
	d := sp.MustNew()

	if got, want := d.Geom.TotalSectors(), clean.Geom.TotalSectors()-3; got != want {
		t.Fatalf("slipped capacity = %d, want %d", got, want)
	}
	// Every LBA still round-trips and never lands on a defect.
	for _, lba := range []int64{0, 998, 999, 1000, 1001, 1499, 1500, d.Geom.TotalSectors() - 1} {
		p, err := d.Geom.LBAToPhys(lba)
		if err != nil {
			t.Fatalf("LBAToPhys(%d): %v", lba, err)
		}
		if d.Geom.isDefect(d.Geom.physIndex(p)) {
			t.Fatalf("LBA %d mapped onto a defect at %v", lba, p)
		}
		back, err := d.Geom.PhysToLBA(p)
		if err != nil || back != lba {
			t.Fatalf("round trip of %d failed: %d, %v", lba, back, err)
		}
	}
	// LBAs at/after the first defect shift by the number of preceding
	// defects.
	pShift, err := d.Geom.LBAToPhys(1000)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Geom.physIndex(pShift); got != base+2 {
		t.Fatalf("LBA 1000 at phys %d, want %d (slipped past two defects)", got, base+2)
	}
	// Defective sectors themselves have no LBA.
	if _, err := d.Geom.PhysToLBA(d.Geom.physLocation(base)); err == nil {
		t.Error("defective sector mapped to an LBA")
	}
}

func TestDefectValidation(t *testing.T) {
	sp := ST39133LWV()
	sp.Defects = []int64{5, 5}
	if _, err := sp.New(); err == nil {
		t.Error("duplicate defects accepted")
	}
	sp.Defects = []int64{-1}
	if _, err := sp.New(); err == nil {
		t.Error("negative defect accepted")
	}
}

func TestSectorAngleInverse(t *testing.T) {
	d := testDisk(t)
	g := d.Geom
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := rng.Intn(g.Cylinders)
		h := rng.Intn(g.Heads)
		s := rng.Intn(g.SPTOf(c))
		angle := g.SectorAngle(Chs{c, h, s})
		if angle < 0 || angle >= 1 {
			return false
		}
		return g.SectorAtAngle(c, h, angle) == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSectorAtAngleRoundsForward(t *testing.T) {
	d := testDisk(t)
	g := d.Geom
	c, h := 100, 3
	spt := g.SPTOf(c)
	s := 17
	angle := g.SectorAngle(Chs{c, h, s})
	// Slightly after the sector start: must pick the *next* sector.
	eps := 0.25 / float64(spt)
	next := g.SectorAtAngle(c, h, angle+eps)
	if want := (s + 1) % spt; next != want {
		t.Fatalf("SectorAtAngle just past %d = %d, want %d", s, next, want)
	}
}

func TestSkewAlignsSequentialTracks(t *testing.T) {
	d := testDisk(t)
	g := d.Geom
	// Logical sector 0 of (c, h+1) should sit TrackSkew sectors after
	// logical sector 0 of (c, h) in angle.
	c := 42
	z := g.zoneOf(c)
	for h := 0; h+1 < g.Heads; h++ {
		a0 := g.SectorAngle(Chs{c, h, 0})
		a1 := g.SectorAngle(Chs{c, h + 1, 0})
		diff := a1 - a0
		for diff < 0 {
			diff++
		}
		want := float64(z.TrackSkew) / float64(z.SPT)
		if diffAbs(diff, want) > 1e-9 {
			t.Fatalf("track skew angle between h%d/h%d = %v, want %v", h, h+1, diff, want)
		}
	}
}

func diffAbs(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d
}

func TestZoneIndexOf(t *testing.T) {
	d := testDisk(t)
	g := d.Geom
	for i, z := range g.Zones {
		if got := g.ZoneIndexOf(z.StartCyl); got != i {
			t.Errorf("ZoneIndexOf(%d) = %d, want %d", z.StartCyl, got, i)
		}
		if got := g.ZoneIndexOf(z.EndCyl); got != i {
			t.Errorf("ZoneIndexOf(%d) = %d, want %d", z.EndCyl, got, i)
		}
	}
}

func TestNewGeometryRejectsBadInput(t *testing.T) {
	cases := []struct {
		name                 string
		cyl, heads, reserved int
		zones                []int
	}{
		{"no cylinders", 0, 4, 0, []int{100}},
		{"no heads", 100, 0, 0, []int{100}},
		{"reserved too big", 10, 4, 10, []int{100}},
		{"no zones", 100, 4, 0, nil},
		{"zero SPT", 100, 4, 0, []int{0}},
		{"more zones than cylinders", 2, 4, 0, []int{10, 10, 10}},
	}
	for _, c := range cases {
		if _, err := NewGeometry(c.cyl, c.heads, c.reserved, c.zones, nil); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}
