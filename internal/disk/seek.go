package disk

import (
	"fmt"
	"math"

	"repro/internal/des"
)

// SeekCurve models arm movement time as a function of cylinder distance:
//
//	t(d) = Alpha + Beta*sqrt(d) + Gamma*d   (d >= 1, in cylinders)
//	t(0) = 0
//
// The square-root term captures the acceleration-limited regime of short
// seeks and the linear term the coast-limited regime of long seeks
// (Ruemmler & Wilkes, "An Introduction to Disk Drive Modeling"). Writes pay
// an additional settle time because the heads must be positioned more
// precisely before writing than before reading.
type SeekCurve struct {
	Alpha, Beta, Gamma float64 // microseconds
	WriteSettle        des.Time
}

// Time returns the seek time for a move of dist cylinders. A zero-distance
// access costs nothing extra (settle for writes is still charged, because
// the head must verify position before writing even without arm movement
// only when it moved; matching the prototype's measured behaviour we charge
// settle only when dist > 0).
func (sc SeekCurve) Time(dist int, write bool) des.Time {
	if dist < 0 {
		dist = -dist
	}
	if dist == 0 {
		return 0
	}
	t := des.Time(sc.Alpha + sc.Beta*math.Sqrt(float64(dist)) + sc.Gamma*float64(dist))
	if write {
		t += sc.WriteSettle
	}
	return t
}

// MeanSqrtDist returns E[sqrt(|i-j|)] for i, j uniform on [0, c), which is
// (8/15)*sqrt(c). Used when fitting a curve to a published average seek.
func MeanSqrtDist(c int) float64 { return 8.0 / 15.0 * math.Sqrt(float64(c)) }

// MeanDist returns E[|i-j|] for i, j uniform on [0, c), which is c/3.
func MeanDist(c int) float64 { return float64(c) / 3 }

// SolveSeekCurve fits Alpha, Beta, Gamma so that a single-cylinder seek
// takes minT, a full-stroke seek over maxDist cylinders takes maxT, and the
// average seek between two uniformly random cylinders takes avgT. This lets
// a Spec be stated in the terms a datasheet uses.
//
// The three conditions form a linear system:
//
//	Alpha + Beta          + Gamma           = minT
//	Alpha + Beta*(8/15)√C + Gamma*C/3       = avgT
//	Alpha + Beta*√C       + Gamma*C         = maxT
func SolveSeekCurve(minT, avgT, maxT des.Time, maxDist int, writeSettle des.Time) (SeekCurve, error) {
	if maxDist < 4 {
		return SeekCurve{}, fmt.Errorf("disk: maxDist %d too small to fit a seek curve", maxDist)
	}
	if !(minT > 0 && minT < avgT && avgT < maxT) {
		return SeekCurve{}, fmt.Errorf("disk: need 0 < min(%v) < avg(%v) < max(%v)", minT, avgT, maxT)
	}
	c := float64(maxDist)
	m := [3][4]float64{
		{1, 1, 1, float64(minT)},
		{1, MeanSqrtDist(maxDist), c / 3, float64(avgT)},
		{1, math.Sqrt(c), c, float64(maxT)},
	}
	if err := gauss(&m); err != nil {
		return SeekCurve{}, fmt.Errorf("disk: seek curve fit: %v", err)
	}
	sc := SeekCurve{Alpha: m[0][3], Beta: m[1][3], Gamma: m[2][3], WriteSettle: writeSettle}
	// A physical arm can't get faster with distance: require monotonicity
	// over the valid range. With Beta >= 0 and Gamma >= 0 this holds; a
	// negative Gamma can still be monotone, so check the derivative at the
	// far end: dt/dd = Beta/(2√d) + Gamma >= 0 at d = maxDist.
	if sc.Beta < 0 || sc.Beta/(2*math.Sqrt(c))+sc.Gamma < 0 {
		return SeekCurve{}, fmt.Errorf("disk: fitted seek curve not monotone (alpha=%.2f beta=%.2f gamma=%.4f); adjust min/avg/max", sc.Alpha, sc.Beta, sc.Gamma)
	}
	return sc, nil
}

// gauss solves a 3x3 linear system in-place with partial pivoting. The
// right-hand side is column 3; solutions are left in column 3.
func gauss(m *[3][4]float64) error {
	n := 3
	for col := 0; col < n; col++ {
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-12 {
			return fmt.Errorf("singular system")
		}
		m[col], m[pivot] = m[pivot], m[col]
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := m[r][col] / m[col][col]
			for k := col; k <= n; k++ {
				m[r][k] -= f * m[col][k]
			}
		}
	}
	for i := 0; i < n; i++ {
		m[i][3] /= m[i][i]
	}
	return nil
}
