package disk

import (
	"fmt"
	"math"

	"repro/internal/des"
)

// Spec states a drive in datasheet terms and builds the simulated model
// from them. The two specs shipped here correspond to the drives supported
// by the MimdRAID prototype (the paper's results use the ST39133LWV).
type Spec struct {
	Name         string
	Cylinders    int
	Heads        int
	ReservedCyls int
	ZoneSPT      []int // outer to inner
	RPM          float64

	MinSeek, AvgSeek, MaxSeek des.Time // read seeks
	WriteSettle               des.Time
	HeadSwitch                des.Time

	Defects []int64

	// RSkew offsets the true rotation period from nominal by this
	// fraction (e.g. 3e-4 = +0.03%); real spindles are never exactly on
	// the datasheet speed and the head tracker must cope. Phase sets the
	// platter angle at time zero.
	RSkew float64
	Phase float64
}

// ST39133LWV returns the spec of the 9.1 GB 10000 RPM Seagate drive used
// for all results in the paper (Table 1: 5.2 ms read / 6.0 ms write
// average seek, ~900 us track switch).
func ST39133LWV() Spec {
	return Spec{
		Name:         "Seagate ST39133LWV (simulated)",
		Cylinders:    6962,
		Heads:        12,
		ReservedCyls: 2,
		ZoneSPT:      []int{240, 232, 224, 216, 208, 200, 190, 182},
		RPM:          10000,
		MinSeek:      800 * des.Microsecond,
		AvgSeek:      5200 * des.Microsecond,
		MaxSeek:      10500 * des.Microsecond,
		WriteSettle:  800 * des.Microsecond,
		HeadSwitch:   900 * des.Microsecond,
	}
}

// ST34502LW returns the spec of the second (4.5 GB) drive the prototype's
// SCSI layer supported.
func ST34502LW() Spec {
	return Spec{
		Name:         "Seagate ST34502LW (simulated)",
		Cylinders:    6526,
		Heads:        6,
		ReservedCyls: 2,
		ZoneSPT:      []int{254, 246, 235, 224, 213, 202, 191, 180},
		RPM:          10000,
		MinSeek:      900 * des.Microsecond,
		AvgSeek:      5400 * des.Microsecond,
		MaxSeek:      11000 * des.Microsecond,
		WriteSettle:  900 * des.Microsecond,
		HeadSwitch:   900 * des.Microsecond,
	}
}

// New builds the drive model. Skews are derived from the timing: track skew
// covers a head switch and cylinder skew a single-cylinder seek plus head
// switch, each padded by one sector, so sequential I/O crossing a boundary
// catches the next logical sector without losing a rotation.
func (sp Spec) New() (*Disk, error) {
	if sp.RPM <= 0 {
		return nil, fmt.Errorf("disk: non-positive RPM %v", sp.RPM)
	}
	g, err := NewGeometry(sp.Cylinders, sp.Heads, sp.ReservedCyls, sp.ZoneSPT, sp.Defects)
	if err != nil {
		return nil, err
	}
	nominalR := des.Time(60e6 / sp.RPM)
	r := des.Time(float64(nominalR) * (1 + sp.RSkew))

	maxDist := sp.Cylinders - 1
	sc, err := SolveSeekCurve(sp.MinSeek, sp.AvgSeek, sp.MaxSeek, maxDist, sp.WriteSettle)
	if err != nil {
		return nil, err
	}
	oneCyl := sc.Time(1, false)
	for i := range g.Zones {
		z := &g.Zones[i]
		z.TrackSkew = skewSectors(sp.HeadSwitch, r, z.SPT)
		z.CylSkew = skewSectors(oneCyl+sp.HeadSwitch, r, z.SPT)
	}
	return &Disk{
		Name:       sp.Name,
		Geom:       g,
		Seek:       sc,
		R:          r,
		NominalR:   nominalR,
		Phase:      sp.Phase,
		HeadSwitch: sp.HeadSwitch,
	}, nil
}

// skewSectors converts a switch latency into a sector offset with one
// sector of margin, capped below the track size.
func skewSectors(latency, r des.Time, spt int) int {
	s := int(math.Ceil(float64(latency)/float64(r)*float64(spt))) + 1
	if s >= spt {
		s = spt - 1
	}
	return s
}

// MustNew is New for tests and examples with known-good specs.
func (sp Spec) MustNew() *Disk {
	d, err := sp.New()
	if err != nil {
		panic(err)
	}
	return d
}
