package disk

import (
	"testing"

	"repro/internal/des"
)

func TestFaultModelValidate(t *testing.T) {
	good := []FaultModel{
		{},
		{TransientRate: 0.01},
		{TimeoutRate: 0.001, TimeoutDelay: des.Second},
		{TransientRate: 0.4, TimeoutRate: 0.4},
	}
	for _, m := range good {
		if err := m.Validate(); err != nil {
			t.Errorf("%+v rejected: %v", m, err)
		}
	}
	bad := []FaultModel{
		{TransientRate: -0.1},
		{TransientRate: 0.6},
		{TimeoutRate: 0.7},
		{TransientRate: 0.5, TimeoutRate: 0.45},
		{TimeoutDelay: -1},
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("%+v accepted", m)
		}
	}
}

func TestFaultInjectorDeterministicAndCalibrated(t *testing.T) {
	m := FaultModel{TransientRate: 0.2, TimeoutRate: 0.05}
	draw := func(seed int64, n int) (seq []FaultKind, transients, timeouts int) {
		fi := NewFaultInjector(m, seed)
		for i := 0; i < n; i++ {
			k := fi.Draw()
			seq = append(seq, k)
			switch k {
			case FaultTransient:
				transients++
			case FaultTimeout:
				timeouts++
			}
		}
		return
	}
	const n = 20000
	a, tr, to := draw(7, n)
	b, _, _ := draw(7, n)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs across identically seeded injectors", i)
		}
	}
	if got := float64(tr) / n; got < 0.17 || got > 0.23 {
		t.Errorf("transient rate %.3f, want ~0.2", got)
	}
	if got := float64(to) / n; got < 0.035 || got > 0.065 {
		t.Errorf("timeout rate %.3f, want ~0.05", got)
	}
}

func TestFaultInjectorNilWhenDisabled(t *testing.T) {
	if fi := NewFaultInjector(FaultModel{}, 1); fi != nil {
		t.Fatal("disabled model built an injector")
	}
}
