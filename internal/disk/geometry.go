// Package disk implements a mechanically detailed model of a late-1990s
// SCSI disk drive: zoned recording, track and cylinder skew, a three-term
// seek curve, settle time for writes, head switches, defect slipping, and
// rotation modeled as a pure function of absolute simulated time.
//
// The model stands in for the Seagate ST39133LWV drives used by the
// MimdRAID prototype (OSDI 2000, Table 1). Everything the paper's results
// depend on — the relationship between seek distance and seek time, the
// relationship between rotational distance and delay, zone geometry, and
// skew — is represented; magnetics and caching are not (the prototype
// bypassed the drive cache for scheduling fidelity).
package disk

import (
	"fmt"
	"math"
	"sort"
)

// SectorSize is the fixed sector size in bytes.
const SectorSize = 512

// Zone describes a band of cylinders recorded at a single density.
type Zone struct {
	StartCyl int // first cylinder of the zone (inclusive)
	EndCyl   int // last cylinder of the zone (inclusive)
	SPT      int // sectors per track within the zone

	// TrackSkew and CylSkew are the per-track-switch and per-cylinder-switch
	// offsets, in sectors, applied to where logical sector 0 of a track
	// sits. They are derived from head-switch and single-cylinder-seek
	// times so that sequential transfers crossing a boundary just catch
	// the next logical sector.
	TrackSkew int
	CylSkew   int

	startSector int64 // physical index of the zone's first sector
}

// Chs identifies a physical sector by cylinder, head, and sector-on-track.
type Chs struct {
	Cyl, Head, Sector int
}

func (c Chs) String() string { return fmt.Sprintf("(c%d h%d s%d)", c.Cyl, c.Head, c.Sector) }

// Extent is a physically contiguous run of sectors starting at a location.
type Extent struct {
	Start Chs
	Count int
}

// Geometry is the static physical layout of a drive.
type Geometry struct {
	Cylinders    int    // total cylinders, including reserved ones
	Heads        int    // surfaces (tracks per cylinder)
	ReservedCyls int    // trailing cylinders excluded from the logical space
	Zones        []Zone // ascending, contiguous, covering [0, Cylinders)

	defects       []int64 // sorted physical sector indexes that are unusable
	totalPhys     int64   // physical sectors, including reserved cylinders
	logicalPhys   int64   // physical sectors in the addressable cylinders
	logicalSizeLB int64   // logical sectors = logicalPhys - defects in range
}

// NewGeometry validates and indexes a geometry. zoneSPT gives the
// sectors-per-track for each zone; zones get equal cylinder ranges (the
// last zone absorbs the remainder). Skews are filled in later by the Spec
// that knows the drive's timing.
func NewGeometry(cylinders, heads, reservedCyls int, zoneSPT []int, defects []int64) (*Geometry, error) {
	if cylinders <= 0 || heads <= 0 {
		return nil, fmt.Errorf("disk: invalid geometry %d cylinders x %d heads", cylinders, heads)
	}
	if reservedCyls < 0 || reservedCyls >= cylinders {
		return nil, fmt.Errorf("disk: invalid reserved cylinder count %d", reservedCyls)
	}
	if len(zoneSPT) == 0 {
		return nil, fmt.Errorf("disk: at least one zone required")
	}
	g := &Geometry{
		Cylinders:    cylinders,
		Heads:        heads,
		ReservedCyls: reservedCyls,
	}
	per := cylinders / len(zoneSPT)
	if per == 0 {
		return nil, fmt.Errorf("disk: more zones (%d) than cylinders (%d)", len(zoneSPT), cylinders)
	}
	start := 0
	var phys int64
	for i, spt := range zoneSPT {
		if spt <= 0 {
			return nil, fmt.Errorf("disk: zone %d has non-positive SPT %d", i, spt)
		}
		end := start + per - 1
		if i == len(zoneSPT)-1 {
			end = cylinders - 1
		}
		z := Zone{StartCyl: start, EndCyl: end, SPT: spt, startSector: phys}
		g.Zones = append(g.Zones, z)
		phys += int64(end-start+1) * int64(heads) * int64(spt)
		start = end + 1
	}
	g.totalPhys = phys

	lastLogicalCyl := cylinders - reservedCyls - 1
	g.logicalPhys = g.physIndex(Chs{Cyl: lastLogicalCyl, Head: heads - 1, Sector: g.SPTOf(lastLogicalCyl) - 1}) + 1

	g.defects = append([]int64(nil), defects...)
	sort.Slice(g.defects, func(i, j int) bool { return g.defects[i] < g.defects[j] })
	for i := 1; i < len(g.defects); i++ {
		if g.defects[i] == g.defects[i-1] {
			return nil, fmt.Errorf("disk: duplicate defect at physical sector %d", g.defects[i])
		}
	}
	var inRange int64
	for _, d := range g.defects {
		if d < 0 || d >= g.totalPhys {
			return nil, fmt.Errorf("disk: defect %d outside physical space [0,%d)", d, g.totalPhys)
		}
		if d < g.logicalPhys {
			inRange++
		}
	}
	g.logicalSizeLB = g.logicalPhys - inRange
	return g, nil
}

// zoneOf returns the zone containing cylinder c.
func (g *Geometry) zoneOf(c int) *Zone {
	// Zones have (almost) equal cylinder counts, so a direct guess plus a
	// short walk beats binary search.
	per := g.Cylinders / len(g.Zones)
	i := c / per
	if i >= len(g.Zones) {
		i = len(g.Zones) - 1
	}
	for g.Zones[i].StartCyl > c {
		i--
	}
	for g.Zones[i].EndCyl < c {
		i++
	}
	return &g.Zones[i]
}

// SPTOf returns sectors-per-track at cylinder c.
func (g *Geometry) SPTOf(c int) int { return g.zoneOf(c).SPT }

// ZoneIndexOf returns the index of the zone containing cylinder c.
func (g *Geometry) ZoneIndexOf(c int) int {
	z := g.zoneOf(c)
	for i := range g.Zones {
		if &g.Zones[i] == z {
			return i
		}
	}
	return -1
}

// TotalSectors reports the number of logical (addressable) sectors.
func (g *Geometry) TotalSectors() int64 { return g.logicalSizeLB }

// PhysicalSectors reports the number of physical sectors including
// reserved cylinders and defects.
func (g *Geometry) PhysicalSectors() int64 { return g.totalPhys }

// Capacity reports the logical capacity in bytes.
func (g *Geometry) Capacity() int64 { return g.logicalSizeLB * SectorSize }

// LogicalCylinders reports the number of addressable cylinders.
func (g *Geometry) LogicalCylinders() int { return g.Cylinders - g.ReservedCyls }

// physIndex converts a physical location to a global physical sector index
// (cylinder-major, then head, then sector).
func (g *Geometry) physIndex(p Chs) int64 {
	z := g.zoneOf(p.Cyl)
	return z.startSector +
		int64(p.Cyl-z.StartCyl)*int64(g.Heads)*int64(z.SPT) +
		int64(p.Head)*int64(z.SPT) +
		int64(p.Sector)
}

// physLocation is the inverse of physIndex.
func (g *Geometry) physLocation(idx int64) Chs {
	i := sort.Search(len(g.Zones), func(i int) bool {
		return g.Zones[i].startSector > idx
	}) - 1
	z := &g.Zones[i]
	rel := idx - z.startSector
	perCyl := int64(g.Heads) * int64(z.SPT)
	c := z.StartCyl + int(rel/perCyl)
	rel %= perCyl
	h := int(rel / int64(z.SPT))
	s := int(rel % int64(z.SPT))
	return Chs{Cyl: c, Head: h, Sector: s}
}

// defectsBefore counts defects with physical index < idx.
func (g *Geometry) defectsBefore(idx int64) int64 {
	return int64(sort.Search(len(g.defects), func(i int) bool { return g.defects[i] >= idx }))
}

// isDefect reports whether physical index idx is defective.
func (g *Geometry) isDefect(idx int64) bool {
	i := sort.Search(len(g.defects), func(i int) bool { return g.defects[i] >= idx })
	return i < len(g.defects) && g.defects[i] == idx
}

// LBAToPhys maps a logical block address to its physical location, skipping
// slipped defects.
func (g *Geometry) LBAToPhys(lba int64) (Chs, error) {
	if lba < 0 || lba >= g.logicalSizeLB {
		return Chs{}, fmt.Errorf("disk: LBA %d out of range [0,%d)", lba, g.logicalSizeLB)
	}
	// With defect slipping, phys = lba + defectsBefore(phys+1). Iterate to a
	// fixed point; each round can only move phys forward, and it converges
	// in at most len(defects) rounds (typically 1–2).
	phys := lba
	for {
		next := lba + g.defectsBefore(phys+1)
		if next == phys {
			break
		}
		phys = next
	}
	for g.isDefect(phys) {
		phys++
	}
	return g.physLocation(phys), nil
}

// PhysToLBA maps a physical location back to its logical block address. It
// fails for defective or reserved sectors, which have no LBA.
func (g *Geometry) PhysToLBA(p Chs) (int64, error) {
	if err := g.validate(p); err != nil {
		return 0, err
	}
	idx := g.physIndex(p)
	if idx >= g.logicalPhys {
		return 0, fmt.Errorf("disk: %v is in the reserved area", p)
	}
	if g.isDefect(idx) {
		return 0, fmt.Errorf("disk: %v is a defective sector", p)
	}
	return idx - g.defectsBefore(idx), nil
}

func (g *Geometry) validate(p Chs) error {
	if p.Cyl < 0 || p.Cyl >= g.Cylinders {
		return fmt.Errorf("disk: cylinder %d out of range [0,%d)", p.Cyl, g.Cylinders)
	}
	if p.Head < 0 || p.Head >= g.Heads {
		return fmt.Errorf("disk: head %d out of range [0,%d)", p.Head, g.Heads)
	}
	if spt := g.SPTOf(p.Cyl); p.Sector < 0 || p.Sector >= spt {
		return fmt.Errorf("disk: sector %d out of range [0,%d) at cylinder %d", p.Sector, spt, p.Cyl)
	}
	return nil
}

// skewOffset returns the rotational offset, in sectors, of logical sector 0
// of track (c,h). Track skew accumulates per surface within a cylinder and
// cylinder skew accumulates per cylinder, so that sequential transfers that
// cross a track or cylinder boundary arrive just in time for the next
// logical sector.
func (g *Geometry) skewOffset(c, h int) int {
	z := g.zoneOf(c)
	off := c*z.CylSkew + (c*g.Heads+h)*z.TrackSkew
	return off % z.SPT
}

// SectorAngle returns the angular position, in [0,1) fractions of a
// revolution, of the *start* of logical sector s on track (c,h).
func (g *Geometry) SectorAngle(p Chs) float64 {
	z := g.zoneOf(p.Cyl)
	pos := (p.Sector + g.skewOffset(p.Cyl, p.Head)) % z.SPT
	return float64(pos) / float64(z.SPT)
}

// SectorAtAngle returns the logical sector number on track (c,h) whose
// start angle is the first at or after the given angle (in [0,1)).
func (g *Geometry) SectorAtAngle(c, h int, angle float64) int {
	z := g.zoneOf(c)
	spt := z.SPT
	// Physical slot index whose start is at or after angle. The epsilon
	// absorbs float error so an angle computed by SectorAngle maps back to
	// the same sector.
	slot := int(math.Ceil(angle*float64(spt) - 1e-9))
	slot %= spt
	if slot < 0 {
		slot += spt
	}
	s := (slot - g.skewOffset(c, h)) % spt
	if s < 0 {
		s += spt
	}
	return s
}

// AngularWidth returns the angular width of one sector at cylinder c.
func (g *Geometry) AngularWidth(c int) float64 { return 1 / float64(g.SPTOf(c)) }

// Defects returns a copy of the defect list (sorted physical indexes).
func (g *Geometry) Defects() []int64 { return append([]int64(nil), g.defects...) }
