package disk

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/des"
)

func TestSeekCurveHitsDatasheetPoints(t *testing.T) {
	sp := ST39133LWV()
	d := sp.MustNew()
	maxDist := sp.Cylinders - 1
	if got := d.Seek.Time(1, false); math.Abs(float64(got-sp.MinSeek)) > 1 {
		t.Errorf("min seek = %v, want %v", got, sp.MinSeek)
	}
	if got := d.Seek.Time(maxDist, false); math.Abs(float64(got-sp.MaxSeek)) > 1 {
		t.Errorf("max seek = %v, want %v", got, sp.MaxSeek)
	}
	// Monte-Carlo average over random cylinder pairs should land on the
	// datasheet average.
	rng := rand.New(rand.NewSource(7))
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		a, b := rng.Intn(sp.Cylinders), rng.Intn(sp.Cylinders)
		sum += float64(d.Seek.Time(a-b, false))
	}
	avg := sum / n
	if math.Abs(avg-float64(sp.AvgSeek)) > 0.02*float64(sp.AvgSeek) {
		t.Errorf("Monte-Carlo average seek = %.0fus, want ~%v", avg, sp.AvgSeek)
	}
}

func TestSeekCurveMonotone(t *testing.T) {
	d := testDisk(t)
	f := func(a, b uint16) bool {
		da, db := int(a)%6961, int(b)%6961
		if da > db {
			da, db = db, da
		}
		return d.Seek.Time(da, false) <= d.Seek.Time(db, false)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSeekZeroDistanceFree(t *testing.T) {
	d := testDisk(t)
	if got := d.Seek.Time(0, false); got != 0 {
		t.Errorf("zero-distance read seek = %v, want 0", got)
	}
	if got := d.Seek.Time(0, true); got != 0 {
		t.Errorf("zero-distance write seek = %v, want 0", got)
	}
}

func TestWriteSeekSlower(t *testing.T) {
	d := testDisk(t)
	for _, dist := range []int{1, 100, 3000, 6900} {
		r, w := d.Seek.Time(dist, false), d.Seek.Time(dist, true)
		if diffAbs(float64(w-r), float64(d.Seek.WriteSettle)) > 1e-6 {
			t.Errorf("dist %d: write-read = %v, want settle %v", dist, w-r, d.Seek.WriteSettle)
		}
	}
}

func TestSolveSeekCurveRejectsBadInput(t *testing.T) {
	if _, err := SolveSeekCurve(5000, 4000, 10000, 1000, 0); err == nil {
		t.Error("min>avg accepted")
	}
	if _, err := SolveSeekCurve(800, 5200, 10500, 2, 0); err == nil {
		t.Error("tiny maxDist accepted")
	}
}

func TestRotationPureFunctionOfTime(t *testing.T) {
	d := testDisk(t)
	a0 := d.AngleAt(0)
	if math.Abs(a0-d.Phase) > 1e-12 {
		t.Fatalf("angle at 0 = %v, want phase %v", a0, d.Phase)
	}
	// One full period returns to the same angle.
	a1 := d.AngleAt(d.R)
	if diffAbs(a0, a1) > 1e-9 {
		t.Fatalf("angle after one period = %v, want %v", a1, a0)
	}
	// Half a period is half a revolution away.
	ah := d.AngleAt(d.R / 2)
	want := math.Mod(a0+0.5, 1)
	if diffAbs(ah, want) > 1e-9 {
		t.Fatalf("angle after half period = %v, want %v", ah, want)
	}
}

func TestTimeToAngleBounds(t *testing.T) {
	d := testDisk(t)
	f := func(tRaw, aRaw uint32) bool {
		now := des.Time(float64(tRaw) / 10)
		target := float64(aRaw) / float64(math.MaxUint32)
		w := d.TimeToAngle(now, target)
		if w < 0 || w >= d.R+des.Time(1e-6) {
			return false
		}
		// After waiting, we are at the target angle.
		return diffAbs(d.AngleAt(now+w), math.Mod(target, 1)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestServiceSingleSectorBounds(t *testing.T) {
	d := testDisk(t)
	st := State{Cyl: 0, Head: 0}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		c := rng.Intn(d.Geom.Cylinders)
		h := rng.Intn(d.Geom.Heads)
		s := rng.Intn(d.Geom.SPTOf(c))
		tm, err := d.Service(st, Request{Start: Chs{c, h, s}, Count: 1}, des.Time(rng.Float64()*1e6))
		if err != nil {
			t.Fatal(err)
		}
		if tm.Seek < 0 || tm.Rotate < 0 || tm.Rotate >= d.R {
			t.Fatalf("bad timing %+v", tm)
		}
		maxSeek := d.Seek.Time(d.Geom.Cylinders-1, false) + d.HeadSwitch
		if tm.Total() > maxSeek+d.R+d.R {
			t.Fatalf("service took %v, impossibly long", tm.Total())
		}
		if tm.End.Cyl != c || tm.End.Head != h {
			t.Fatalf("end state %+v, want cyl %d head %d", tm.End, c, h)
		}
		st = tm.End
	}
}

func TestServiceFullTrackTakesOneRotationPlusPositioning(t *testing.T) {
	d := testDisk(t)
	c := 10
	spt := d.Geom.SPTOf(c)
	st := State{Cyl: c, Head: 0}
	tm, err := d.Service(st, Request{Start: Chs{c, 0, 0}, Count: spt}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if diffAbs(float64(tm.Transfer), float64(d.R)) > 1 {
		t.Fatalf("full-track transfer = %v, want %v", tm.Transfer, d.R)
	}
	if tm.Seek != 0 {
		t.Fatalf("same-cylinder same-head seek = %v, want 0", tm.Seek)
	}
}

// Sequential I/O crossing a track boundary must not lose a full rotation:
// the skew is sized so the switch costs roughly the skew angle.
func TestSkewPreservesSequentialBandwidth(t *testing.T) {
	d := testDisk(t)
	c := 20
	z := d.Geom.zoneOf(c)
	spt := z.SPT
	st := State{Cyl: c, Head: 0}
	// Read two full tracks starting at (c, 0, 0).
	tm, err := d.Service(st, Request{Start: Chs{c, 0, 0}, Count: 2 * spt}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Ideal: 2 rotations of data + one track switch worth of skew. Anything
	// beyond ~2.35 rotations means we missed a revolution at the boundary.
	limit := 2.35 * float64(d.R)
	if float64(tm.Transfer) > limit {
		t.Fatalf("two-track sequential transfer = %v, exceeds %v (lost a rotation at the switch)", tm.Transfer, des.Time(limit))
	}
}

func TestServiceCylinderCrossing(t *testing.T) {
	d := testDisk(t)
	c := 30
	spt := d.Geom.SPTOf(c)
	total := spt * d.Geom.Heads // a full cylinder
	st := State{Cyl: c, Head: 0}
	tm, err := d.Service(st, Request{Start: Chs{c, 0, 0}, Count: total + spt}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tm.End.Cyl != c+1 || tm.End.Head != 0 {
		t.Fatalf("end state %+v, want cylinder %d head 0", tm.End, c+1)
	}
	// heads+1 tracks: about heads+1 rotations plus switches.
	rots := float64(tm.Transfer) / float64(d.R)
	maxRots := float64(d.Geom.Heads+1) * 1.25
	if rots > maxRots {
		t.Fatalf("cylinder-crossing transfer took %.2f rotations, want < %.2f", rots, maxRots)
	}
}

func TestServiceErrors(t *testing.T) {
	d := testDisk(t)
	if _, err := d.Service(State{}, Request{Start: Chs{0, 0, 0}, Count: 0}, 0); err == nil {
		t.Error("zero-count request accepted")
	}
	if _, err := d.Service(State{}, Request{Start: Chs{-1, 0, 0}, Count: 1}, 0); err == nil {
		t.Error("negative cylinder accepted")
	}
	// Run off the end of the disk.
	g := d.Geom
	lastCyl := g.Cylinders - 1
	spt := g.SPTOf(lastCyl)
	req := Request{Start: Chs{lastCyl, g.Heads - 1, spt - 1}, Count: 2}
	if _, err := d.Service(State{Cyl: lastCyl}, req, 0); err == nil {
		t.Error("transfer past end of disk accepted")
	}
}

func TestServiceLBAMatchesPhysicalWhenContiguous(t *testing.T) {
	d := testDisk(t)
	lba := int64(123456)
	p, err := d.Geom.LBAToPhys(lba)
	if err != nil {
		t.Fatal(err)
	}
	st := State{Cyl: 500, Head: 2}
	a, err := d.ServiceLBA(st, lba, 16, false, 1000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.Service(st, Request{Start: p, Count: 16}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if a.Total() != b.Total() || a.Done != b.Done {
		t.Fatalf("LBA path %+v != phys path %+v", a, b)
	}
}

func TestServiceLBASplitsAtDefects(t *testing.T) {
	sp := ST39133LWV()
	clean := sp.MustNew()
	p, err := clean.Geom.LBAToPhys(5000)
	if err != nil {
		t.Fatal(err)
	}
	base := clean.Geom.physIndex(p)
	sp.Defects = []int64{base + 4}
	d := sp.MustNew()
	// A 8-sector read spanning the defect must still complete and cost at
	// least as much as a contiguous one.
	tm, err := d.ServiceLBA(State{}, 4998, 8, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := clean.ServiceLBA(State{}, 4998, 8, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tm.Total() < ref.Total() {
		t.Fatalf("defect-split transfer %v cheaper than contiguous %v", tm.Total(), ref.Total())
	}
}

func TestAccessTimeAgreesWithService(t *testing.T) {
	d := testDisk(t)
	rng := rand.New(rand.NewSource(3))
	st := State{Cyl: 100}
	for i := 0; i < 100; i++ {
		c := rng.Intn(d.Geom.Cylinders)
		req := Request{Start: Chs{c, rng.Intn(d.Geom.Heads), rng.Intn(d.Geom.SPTOf(c))}, Count: 1 + rng.Intn(8)}
		at := des.Time(rng.Float64() * 1e6)
		tot, err := d.AccessTime(st, req, at)
		if err != nil {
			t.Fatal(err)
		}
		tm, err := d.Service(st, req, at)
		if err != nil {
			t.Fatal(err)
		}
		if tot != tm.Total() {
			t.Fatalf("AccessTime %v != Service total %v", tot, tm.Total())
		}
	}
}

// Statistical check backing the paper's base case: average rotational delay
// for random single-sector reads is R/2.
func TestAverageRotationalDelayIsHalfR(t *testing.T) {
	d := testDisk(t)
	rng := rand.New(rand.NewSource(11))
	var sum float64
	const n = 20000
	c := 300
	spt := d.Geom.SPTOf(c)
	for i := 0; i < n; i++ {
		s := rng.Intn(spt)
		tm, err := d.Service(State{Cyl: c}, Request{Start: Chs{c, 0, s}, Count: 1}, des.Time(rng.Float64()*1e7))
		if err != nil {
			t.Fatal(err)
		}
		sum += float64(tm.Rotate)
	}
	avg := sum / n
	want := float64(d.R) / 2
	if math.Abs(avg-want) > 0.03*want {
		t.Fatalf("average rotational delay = %.0fus, want ~%.0fus (R/2)", avg, want)
	}
}

func TestSpecValidation(t *testing.T) {
	sp := ST39133LWV()
	sp.RPM = 0
	if _, err := sp.New(); err == nil {
		t.Error("zero RPM accepted")
	}
}

func TestST34502LWBuilds(t *testing.T) {
	d := ST34502LW().MustNew()
	if d.Geom.Capacity() < 3e9 || d.Geom.Capacity() > 6e9 {
		t.Errorf("ST34502LW capacity = %d, want ~4.5GB", d.Geom.Capacity())
	}
}

func TestRSkewAppliesToTrueRotation(t *testing.T) {
	sp := ST39133LWV()
	sp.RSkew = 5e-4
	d := sp.MustNew()
	if d.R == d.NominalR {
		t.Fatal("RSkew did not offset the true rotation period")
	}
	want := float64(d.NominalR) * 1.0005
	if math.Abs(float64(d.R)-want) > 1e-9*want {
		t.Fatalf("R = %v, want %v", d.R, want)
	}
}

func TestServiceLBAAcrossZoneBoundary(t *testing.T) {
	d := testDisk(t)
	g := d.Geom
	// Find the first LBA of zone 1 and start a transfer shortly before it.
	z1 := g.Zones[1]
	startOfZone1, err := g.PhysToLBA(Chs{Cyl: z1.StartCyl, Head: 0, Sector: 0})
	if err != nil {
		t.Fatal(err)
	}
	lba := startOfZone1 - 64
	tm, err := d.ServiceLBA(State{Cyl: z1.StartCyl - 2}, lba, 128, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tm.End.Cyl != z1.StartCyl {
		t.Fatalf("transfer across zone boundary ended at cylinder %d, want %d", tm.End.Cyl, z1.StartCyl)
	}
	if tm.Total() <= 0 || tm.Total() > 10*d.R {
		t.Fatalf("implausible zone-crossing service time %v", tm.Total())
	}
}

func TestAngularWidthGrowsInward(t *testing.T) {
	d := testDisk(t)
	g := d.Geom
	prev := 0.0
	for _, z := range g.Zones {
		w := g.AngularWidth(z.StartCyl)
		if w <= prev {
			t.Fatalf("angular width %v at cylinder %d not greater than outer zone's %v (fewer sectors inward -> wider sectors)", w, z.StartCyl, prev)
		}
		prev = w
	}
}

// Physical ordering is monotone in LBA on a defect-free drive.
func TestLBAOrderingMonotone(t *testing.T) {
	d := testDisk(t)
	g := d.Geom
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := rng.Int63n(g.TotalSectors() - 1)
		b := a + 1 + rng.Int63n(g.TotalSectors()-a-1)
		pa, err1 := g.LBAToPhys(a)
		pb, err2 := g.LBAToPhys(b)
		if err1 != nil || err2 != nil {
			return false
		}
		return g.physIndex(pa) < g.physIndex(pb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeToAngleWithOffNominalSpindle(t *testing.T) {
	sp := ST39133LWV()
	sp.RSkew = 3e-4
	sp.Phase = 0.25
	d := sp.MustNew()
	// A full predicted period must use the true (skewed) R, not nominal.
	w := d.TimeToAngle(0, 0.25)
	if w != 0 {
		t.Fatalf("wait to current angle = %v, want 0", w)
	}
	w = d.TimeToAngle(1, 0.25) // just past: almost a full true rotation
	if math.Abs(float64(w-(d.R-1))) > 1e-6 {
		t.Fatalf("wrap wait = %v, want %v", w, d.R-1)
	}
}
