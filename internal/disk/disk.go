package disk

import (
	"fmt"
	"math"

	"repro/internal/des"
)

// State is the mechanical state of a drive between requests: where the arm
// is parked and which surface was last active. The rotational position is
// not part of the state — the platters spin continuously, so the angle is a
// pure function of absolute time (see Disk.AngleAt).
type State struct {
	Cyl  int
	Head int
}

// Request describes one physical transfer.
type Request struct {
	Start Chs
	Count int // sectors
	Write bool
}

// Timing breaks down the cost of servicing a request.
type Timing struct {
	Seek     des.Time // arm movement, including write settle
	Rotate   des.Time // rotational wait before the first sector
	Transfer des.Time // media transfer, including intermediate switches
	Done     des.Time // absolute completion time
	End      State    // arm state after the transfer
}

// Total returns the service time excluding any controller overhead.
func (t Timing) Total() des.Time { return t.Seek + t.Rotate + t.Transfer }

// Disk is a simulated drive: static geometry plus mechanics. Methods are
// pure with respect to simulated time; the caller (the bus layer) owns
// sequencing.
type Disk struct {
	Name string
	Geom *Geometry
	Seek SeekCurve

	// R is the true rotation period. For a prototype-mode device this is
	// deliberately offset from the nominal (datasheet) period by up to a
	// few hundredths of a percent, as real spindles are; the head-tracking
	// layer must estimate it from observed timings.
	R des.Time
	// NominalR is the datasheet rotation period (from RPM).
	NominalR des.Time
	// Phase is the platter angle at simulated time zero, in [0,1).
	Phase float64
	// HeadSwitch is the time to activate a different head within a
	// cylinder (the paper's ~900us "track switch").
	HeadSwitch des.Time
}

// AngleAt returns the platter angle at absolute time t, in [0,1).
func (d *Disk) AngleAt(t des.Time) float64 {
	a := d.Phase + float64(t)/float64(d.R)
	a -= math.Floor(a)
	return a
}

// TimeToAngle returns the delay from time t until the platter reaches
// angle target (in [0,1)).
func (d *Disk) TimeToAngle(t des.Time, target float64) des.Time {
	cur := d.AngleAt(t)
	diff := target - cur
	diff -= math.Floor(diff) // into [0,1)
	return des.Time(diff * float64(d.R))
}

// positioningTo returns the time to move the arm and select the head for
// track (cyl,head), given the previous state.
func (d *Disk) positioningTo(st State, cyl, head int, write bool) des.Time {
	move := d.Seek.Time(cyl-st.Cyl, write)
	if head != st.Head {
		// Head switches overlap with short arm moves; the drive reports
		// whichever dominates.
		sw := d.HeadSwitch
		if write {
			sw += d.Seek.WriteSettle / 2
		}
		if sw > move {
			move = sw
		}
	}
	return move
}

// Service computes the full timing of a physical request started at time
// start with arm state st. Multi-track transfers pay head switches and
// single-cylinder seeks at boundaries; thanks to skew these usually cost
// less than a full extra rotation.
func (d *Disk) Service(st State, req Request, start des.Time) (Timing, error) {
	if req.Count <= 0 {
		return Timing{}, fmt.Errorf("disk: non-positive sector count %d", req.Count)
	}
	if err := d.Geom.validate(req.Start); err != nil {
		return Timing{}, err
	}
	var tm Timing
	now := start
	cur := req.Start
	prev := st
	remaining := req.Count
	first := true
	for remaining > 0 {
		spt := d.Geom.SPTOf(cur.Cyl)
		n := spt - cur.Sector
		if n > remaining {
			n = remaining
		}
		// Position arm and head from wherever the previous chunk (or the
		// prior request) left them.
		pos := d.positioningTo(prev, cur.Cyl, cur.Head, req.Write)
		if first {
			tm.Seek = pos
		} else {
			// Mid-transfer switches are part of the transfer cost.
			tm.Transfer += pos
		}
		now += pos
		// Rotate to the start of the chunk's first sector.
		target := d.Geom.SectorAngle(cur)
		rot := d.TimeToAngle(now, target)
		if first {
			tm.Rotate = rot
		} else {
			tm.Transfer += rot
		}
		now += rot
		// Transfer n contiguous sectors.
		xfer := des.Time(float64(n) / float64(spt) * float64(d.R))
		tm.Transfer += xfer
		now += xfer

		remaining -= n
		prev = State{Cyl: cur.Cyl, Head: cur.Head}
		if remaining > 0 {
			// Advance to the next track: next head, else next cylinder.
			if cur.Head+1 < d.Geom.Heads {
				cur = Chs{Cyl: cur.Cyl, Head: cur.Head + 1}
			} else if cur.Cyl+1 < d.Geom.Cylinders {
				cur = Chs{Cyl: cur.Cyl + 1, Head: 0}
			} else {
				return Timing{}, fmt.Errorf("disk: transfer runs off the end of the disk")
			}
		} else {
			tm.End = prev
		}
		first = false
	}
	tm.Done = now
	return tm, nil
}

// AccessTime returns the total service time (seek + rotate + transfer) for
// req from state st at time start. It is the estimator used by
// position-aware schedulers in simulator mode, where the true mechanical
// parameters are known exactly.
func (d *Disk) AccessTime(st State, req Request, start des.Time) (des.Time, error) {
	tm, err := d.Service(st, req, start)
	if err != nil {
		return 0, err
	}
	return tm.Total(), nil
}

// ServiceLBA is Service for a logical (LBA-addressed) request, as issued
// over the bus. Defect slipping means an LBA run may not be physically
// contiguous; the mapping is resolved per-sector run.
func (d *Disk) ServiceLBA(st State, lba int64, count int, write bool, start des.Time) (Timing, error) {
	if count <= 0 {
		return Timing{}, fmt.Errorf("disk: non-positive sector count %d", count)
	}
	// Fast path: whole run physically contiguous (no defects inside).
	first, err := d.Geom.LBAToPhys(lba)
	if err != nil {
		return Timing{}, err
	}
	last, err := d.Geom.LBAToPhys(lba + int64(count) - 1)
	if err != nil {
		return Timing{}, err
	}
	if d.Geom.physIndex(last)-d.Geom.physIndex(first) == int64(count)-1 {
		return d.Service(st, Request{Start: first, Count: count, Write: write}, start)
	}
	// Slow path: split at defects.
	var total Timing
	now := start
	cur := st
	firstChunk := true
	for i := 0; i < count; {
		p, err := d.Geom.LBAToPhys(lba + int64(i))
		if err != nil {
			return Timing{}, err
		}
		run := 1
		base := d.Geom.physIndex(p)
		for i+run < count {
			q, err := d.Geom.LBAToPhys(lba + int64(i+run))
			if err != nil {
				return Timing{}, err
			}
			if d.Geom.physIndex(q) != base+int64(run) {
				break
			}
			run++
		}
		tm, err := d.Service(cur, Request{Start: p, Count: run, Write: write}, now)
		if err != nil {
			return Timing{}, err
		}
		if firstChunk {
			total.Seek = tm.Seek
			total.Rotate = tm.Rotate
			total.Transfer += tm.Transfer
			firstChunk = false
		} else {
			total.Transfer += tm.Total()
		}
		now = tm.Done
		cur = tm.End
		i += run
	}
	total.Done = now
	total.End = cur
	return total, nil
}
