// Sharded is a conservative-lookahead parallel driver for a set of
// independent Sims ("shards"). Each shard owns a disjoint slice of the
// simulated world — in MimdRAID, a brick: one array plus its drives, buses
// and workload generator — and runs its own event queue with its own clock
// and sequence counter. Shards synchronize only at epoch barriers.
//
// Protocol. Let L > 0 be the lookahead: a lower bound on the latency of any
// cross-shard interaction (for disk bricks, the bus command overhead — no
// completion can reach another shard sooner than the command costs to
// issue). Each epoch computes m, the minimum next-event timestamp across
// all shards, and executes every shard's events in the half-open window
// [m, m+L) — concurrently, on worker goroutines. Cross-shard messages
// (Send) must carry timestamps >= sender-now + L, hence >= m + L, hence
// outside the window: no message can affect an event already being executed
// this epoch, so intra-window execution needs no locks. Buffered messages
// are merged at the barrier in (sender shard, send order) order and
// injected through the target shard's At, which assigns its deterministic
// sequence numbers.
//
// Determinism. Per-shard execution order is fixed by that shard's (at, seq)
// heap, independent of scheduling; the window boundary depends only on
// shard queue states; and the barrier merge order is fixed. Worker count
// therefore changes wall time, never output — the same bar runner.Map sets
// for cross-simulation parallelism. With one worker the engine degenerates
// to running the shards round-robin on the calling goroutine.
package des

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

var shardWorkers atomic.Int64

func init() {
	shardWorkers.Store(int64(runtime.GOMAXPROCS(0)))
}

// ErrWorkerCount reports an invalid worker count passed to SetShardWorkers
// or Sharded.SetWorkers. The error wraps this sentinel (errors.Is) and
// names the offending value and bound.
var ErrWorkerCount = errors.New("des: invalid worker count")

// SetShardWorkers sets the process-wide default worker count new Sharded
// engines start with (the -shards flag of the CLIs lands here). Counts
// below 1 are rejected with an error wrapping ErrWorkerCount — a silent
// clamp here would mask a CLI typo as "sequential mode". On success it
// returns the previous setting so tests can restore it.
func SetShardWorkers(n int) (int, error) {
	if n < 1 {
		return int(shardWorkers.Load()), fmt.Errorf("%w: %d workers (want >= 1)", ErrWorkerCount, n)
	}
	return int(shardWorkers.Swap(int64(n))), nil
}

// ShardWorkers reports the current default (GOMAXPROCS at startup).
func ShardWorkers() int {
	return int(shardWorkers.Load())
}

// message is one buffered cross-shard event.
type message struct {
	to  int
	at  Time
	fn  func()
	fnA func(any)
	arg any
}

// Sharded coordinates n shards under one lookahead window. Construct with
// NewSharded; drive with RunUntil or Run.
type Sharded struct {
	shards    []*Sim
	lookahead Time
	workers   int
	// out buffers cross-shard messages per sender; only the goroutine
	// executing a shard appends to that shard's buffer, and the barrier
	// (which has a happens-after edge on every worker) drains them all.
	out [][]message
	// ch/wg coordinate the persistent epoch workers (ch[0] is unused: the
	// calling goroutine acts as worker 0). Once the pool starts, its size
	// is frozen; each epoch recruits a prefix of it.
	ch []chan epochRun
	wg sync.WaitGroup
	// next caches each shard's next-event timestamp for the epoch scan
	// (+Inf for an empty queue); only RunUntil touches it.
	next []Time
}

// epochRun is one epoch's marching order for a worker. stride is the
// number of workers participating this epoch (never more than the busy
// shard count — extra workers would only add synchronization cost); each
// participant k covers shards k, k+stride, ....
type epochRun struct {
	boundary  Time // exclusive upper bound of the window
	inclusive bool // final partial epoch: run <= horizon instead
	horizon   Time
	stride    int
}

// NewSharded returns an engine over n fresh shards with the given
// lookahead (must be positive: a zero window could never make progress).
// The worker count is captured from ShardWorkers; override per engine with
// SetWorkers.
func NewSharded(n int, lookahead Time) *Sharded {
	if n < 1 {
		panic("des: NewSharded needs at least one shard")
	}
	if !(lookahead > 0) {
		panic(fmt.Sprintf("des: lookahead %v must be positive", lookahead))
	}
	sh := &Sharded{
		shards:    make([]*Sim, n),
		lookahead: lookahead,
		workers:   ShardWorkers(),
		out:       make([][]message, n),
	}
	for i := range sh.shards {
		sh.shards[i] = New()
	}
	return sh
}

// SetWorkers overrides the engine's worker count. Counts below 1 or above
// the shard count are rejected with an error wrapping ErrWorkerCount (a
// worker beyond the shard count could never be recruited, so asking for
// one is a caller bug, not a preference). It must be called before the
// first RunUntil: once the worker pool has started, the count is frozen
// and SetWorkers has no effect.
func (sh *Sharded) SetWorkers(n int) error {
	if n < 1 {
		return fmt.Errorf("%w: %d workers (want >= 1)", ErrWorkerCount, n)
	}
	if n > len(sh.shards) {
		return fmt.Errorf("%w: %d workers for %d shards (want <= shards)", ErrWorkerCount, n, len(sh.shards))
	}
	sh.workers = n
	return nil
}

// Shards reports the shard count.
func (sh *Sharded) Shards() int { return len(sh.shards) }

// Shard returns shard i's simulator, for building that shard's world and
// for same-shard scheduling. Mutating a shard while RunUntil is executing
// an epoch is a data race; do it before running or from that shard's own
// events.
func (sh *Sharded) Shard(i int) *Sim { return sh.shards[i] }

// Lookahead reports the engine's lookahead window.
func (sh *Sharded) Lookahead() Time { return sh.lookahead }

// Processed sums events executed across shards.
func (sh *Sharded) Processed() uint64 {
	var n uint64
	for _, s := range sh.shards {
		n += s.Processed
	}
	return n
}

// Pending sums queued events across shards (excluding buffered messages).
func (sh *Sharded) Pending() int {
	n := 0
	for _, s := range sh.shards {
		n += s.Pending()
	}
	return n
}

// Send schedules fn on shard `to` at absolute time `at` from within an
// event executing on shard `from`. The conservative constraint is
// validated: at must be >= the sender's clock plus the lookahead.
// Violations panic — they indicate the declared lookahead overstates the
// real coupling latency, which would silently break determinism.
func (sh *Sharded) Send(from, to int, at Time, fn func()) {
	sh.send(from, message{to: to, at: at, fn: fn})
}

// SendArg is Send in the allocation-free func(any) form.
func (sh *Sharded) SendArg(from, to int, at Time, fn func(any), arg any) {
	sh.send(from, message{to: to, at: at, fnA: fn, arg: arg})
}

func (sh *Sharded) send(from int, m message) {
	min := sh.shards[from].Now() + sh.lookahead
	if m.at < min {
		panic(fmt.Sprintf("des: cross-shard event at %v violates lookahead (shard %d now %v + %v)",
			m.at, from, sh.shards[from].Now(), sh.lookahead))
	}
	sh.out[from] = append(sh.out[from], m)
}

// Run executes until every shard drains and no messages remain buffered.
func (sh *Sharded) Run() { sh.RunUntil(Time(math.Inf(1))) }

// RunUntil executes events with timestamps <= t on every shard, then
// advances each shard's clock to t (matching Sim.RunUntil). Epochs run
// concurrently on the engine's workers; output is identical for any worker
// count.
func (sh *Sharded) RunUntil(t Time) {
	workers := sh.workers
	if workers > len(sh.shards) {
		workers = len(sh.shards)
	}
	if sh.ch != nil {
		workers = len(sh.ch) // pool already started: its size is frozen
	} else if workers > 1 {
		sh.startWorkers(workers)
	}
	if sh.next == nil {
		sh.next = make([]Time, len(sh.shards))
	}
	for {
		// One pass computes the epoch floor m and caches every shard's next
		// timestamp, so the busy-shard count below needs no second peek.
		m, ok := Time(0), false
		for i, s := range sh.shards {
			at, has := s.nextAt()
			if !has {
				at = Time(math.Inf(1))
			}
			sh.next[i] = at
			if has && (!ok || at < m) {
				m, ok = at, true
			}
		}
		if !ok || m > t {
			break
		}
		run := epochRun{boundary: m + sh.lookahead, horizon: t}
		if run.boundary > t {
			run.boundary = t
			run.inclusive = true
		}
		// Count the shards holding an event inside the window, up to the
		// worker count: the fan-out never recruits more workers than there
		// are busy shards (idle shards' runBefore calls are no-ops, so a
		// worker with no busy shard is pure synchronization cost). At low
		// event density the window often covers a single completion — then
		// the whole epoch runs inline on the calling goroutine. The same
		// events execute under any assignment, so worker count still never
		// changes output.
		busy, sole := 0, -1
		for i, at := range sh.next {
			if at < run.boundary {
				sole = i
				if busy++; busy >= workers && busy > 1 {
					break
				}
			}
		}
		active := busy
		if active > workers {
			active = workers
		}
		switch {
		case busy == 1:
			if run.inclusive {
				sh.shards[sole].RunUntil(run.horizon)
			} else {
				sh.shards[sole].runBefore(run.boundary)
			}
		case active > 1:
			run.stride = active
			sh.wg.Add(active - 1)
			for k := 1; k < active; k++ {
				sh.ch[k] <- run
			}
			sh.runShards(0, active, run)
			sh.wg.Wait()
		default:
			sh.runShards(0, 1, run)
		}
		sh.deliver()
	}
	for _, s := range sh.shards {
		s.advanceTo(t)
	}
}

// startWorkers spins up the persistent epoch workers (main participates as
// worker 0, so workers-1 goroutines). They live for the engine's lifetime.
func (sh *Sharded) startWorkers(workers int) {
	sh.ch = make([]chan epochRun, workers)
	for k := 1; k < workers; k++ {
		ch := make(chan epochRun)
		sh.ch[k] = ch
		go func(k int, ch chan epochRun) {
			for run := range ch {
				sh.runShards(k, run.stride, run)
				sh.wg.Done()
			}
		}(k, ch)
	}
}

// runShards executes one epoch for the shards assigned to worker k
// (static stride assignment: k, k+stride, ...). Shards whose cached next
// timestamp falls outside the window are skipped without touching them —
// sh.next is written only between epochs, so reading it here is safe, and
// an idle shard's runBefore would be a no-op anyway.
func (sh *Sharded) runShards(k, stride int, run epochRun) {
	for i := k; i < len(sh.shards); i += stride {
		if run.inclusive {
			if sh.next[i] <= run.horizon {
				sh.shards[i].RunUntil(run.horizon)
			}
		} else if sh.next[i] < run.boundary {
			sh.shards[i].runBefore(run.boundary)
		}
	}
}

// deliver drains every sender's buffer in shard order and injects the
// messages into their targets. Injection order — and therefore the target
// shards' sequence numbers — is a pure function of the senders' buffered
// order, never of worker scheduling.
func (sh *Sharded) deliver() {
	for from := range sh.out {
		buf := sh.out[from]
		if len(buf) == 0 {
			continue
		}
		for _, m := range buf {
			tgt := sh.shards[m.to]
			if m.fnA != nil {
				tgt.AtArg(m.at, m.fnA, m.arg)
			} else {
				tgt.At(m.at, m.fn)
			}
		}
		sh.out[from] = buf[:0]
	}
}
