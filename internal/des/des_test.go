package des

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestRunExecutesInTimeOrder(t *testing.T) {
	s := New()
	var got []Time
	for _, at := range []Time{50, 10, 30, 20, 40} {
		at := at
		s.At(at, func() { got = append(got, at) })
	}
	s.Run()
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("events out of order: %v", got)
	}
	if len(got) != 5 {
		t.Fatalf("expected 5 events, got %d", len(got))
	}
	if s.Now() != 50 {
		t.Fatalf("clock = %v, want 50", s.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		s.At(7, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-break not FIFO at %d: got %d", i, v)
		}
	}
}

func TestAfterAndNesting(t *testing.T) {
	s := New()
	var order []string
	s.At(10, func() {
		order = append(order, "a")
		s.After(5, func() { order = append(order, "c") })
	})
	s.At(12, func() { order = append(order, "b") })
	s.Run()
	want := []string{"a", "b", "c"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	s := New()
	ran := false
	s.At(100, func() { ran = true })
	s.RunUntil(50)
	if ran {
		t.Fatal("event at 100 ran during RunUntil(50)")
	}
	if s.Now() != 50 {
		t.Fatalf("clock = %v, want 50", s.Now())
	}
	s.RunUntil(150)
	if !ran {
		t.Fatal("event at 100 did not run during RunUntil(150)")
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New()
	s.At(10, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	s.At(5, func() {})
}

func TestNegativeDelayPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative delay")
		}
	}()
	s.After(-1, func() {})
}

func TestStop(t *testing.T) {
	s := New()
	count := 0
	for i := 0; i < 10; i++ {
		s.At(Time(i), func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 3 {
		t.Fatalf("processed %d events after Stop, want 3", count)
	}
	if s.Pending() != 7 {
		t.Fatalf("pending = %d, want 7", s.Pending())
	}
}

func TestStep(t *testing.T) {
	s := New()
	n := 0
	s.At(1, func() { n++ })
	s.At(2, func() { n++ })
	if !s.Step() || n != 1 {
		t.Fatalf("first Step: n=%d", n)
	}
	if !s.Step() || n != 2 {
		t.Fatalf("second Step: n=%d", n)
	}
	if s.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

// Property: for any batch of event times, execution order is a stable sort
// by time.
func TestPropertyStableTimeSort(t *testing.T) {
	f := func(times []uint16) bool {
		s := New()
		type rec struct {
			at  Time
			idx int
		}
		var got []rec
		for i, u := range times {
			at := Time(u)
			i := i
			s.At(at, func() { got = append(got, rec{at, i}) })
		}
		s.Run()
		for i := 1; i < len(got); i++ {
			if got[i].at < got[i-1].at {
				return false
			}
			if got[i].at == got[i-1].at && got[i].idx < got[i-1].idx {
				return false
			}
		}
		return len(got) == len(times)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500.0us"},
		{1500, "1.500ms"},
		{2.5e6, "2.5000s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("%v.String() = %q, want %q", float64(c.t), got, c.want)
		}
	}
}

func BenchmarkEventThroughput(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	s := New()
	for i := 0; i < b.N; i++ {
		s.At(s.Now()+Time(rng.Float64()*100), func() {})
		s.Step()
	}
}

// Randomized stress: thousands of events scheduled from inside callbacks
// still execute in global time order.
func TestStressNestedScheduling(t *testing.T) {
	s := New()
	rng := rand.New(rand.NewSource(99))
	var last Time = -1
	count := 0
	var spawn func(depth int)
	spawn = func(depth int) {
		if s.Now() < last {
			t.Fatal("time went backwards")
		}
		last = s.Now()
		count++
		if depth == 0 {
			return
		}
		kids := rng.Intn(3)
		for i := 0; i < kids; i++ {
			s.After(Time(rng.Float64()*50), func() { spawn(depth - 1) })
		}
	}
	for i := 0; i < 200; i++ {
		s.At(Time(rng.Float64()*1000), func() { spawn(6) })
	}
	s.Run()
	if count < 200 {
		t.Fatalf("only %d events ran", count)
	}
	if s.Pending() != 0 {
		t.Fatalf("%d events left", s.Pending())
	}
}
