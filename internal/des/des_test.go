package des

import (
	"container/heap"
	"math/rand"
	"runtime"
	"sort"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestRunExecutesInTimeOrder(t *testing.T) {
	s := New()
	var got []Time
	for _, at := range []Time{50, 10, 30, 20, 40} {
		at := at
		s.At(at, func() { got = append(got, at) })
	}
	s.Run()
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("events out of order: %v", got)
	}
	if len(got) != 5 {
		t.Fatalf("expected 5 events, got %d", len(got))
	}
	if s.Now() != 50 {
		t.Fatalf("clock = %v, want 50", s.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		s.At(7, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-break not FIFO at %d: got %d", i, v)
		}
	}
}

func TestAfterAndNesting(t *testing.T) {
	s := New()
	var order []string
	s.At(10, func() {
		order = append(order, "a")
		s.After(5, func() { order = append(order, "c") })
	})
	s.At(12, func() { order = append(order, "b") })
	s.Run()
	want := []string{"a", "b", "c"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	s := New()
	ran := false
	s.At(100, func() { ran = true })
	s.RunUntil(50)
	if ran {
		t.Fatal("event at 100 ran during RunUntil(50)")
	}
	if s.Now() != 50 {
		t.Fatalf("clock = %v, want 50", s.Now())
	}
	s.RunUntil(150)
	if !ran {
		t.Fatal("event at 100 did not run during RunUntil(150)")
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New()
	s.At(10, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	s.At(5, func() {})
}

func TestNegativeDelayPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative delay")
		}
	}()
	s.After(-1, func() {})
}

func TestStop(t *testing.T) {
	s := New()
	count := 0
	for i := 0; i < 10; i++ {
		s.At(Time(i), func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 3 {
		t.Fatalf("processed %d events after Stop, want 3", count)
	}
	if s.Pending() != 7 {
		t.Fatalf("pending = %d, want 7", s.Pending())
	}
}

func TestStep(t *testing.T) {
	s := New()
	n := 0
	s.At(1, func() { n++ })
	s.At(2, func() { n++ })
	if !s.Step() || n != 1 {
		t.Fatalf("first Step: n=%d", n)
	}
	if !s.Step() || n != 2 {
		t.Fatalf("second Step: n=%d", n)
	}
	if s.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

// Property: for any batch of event times, execution order is a stable sort
// by time.
func TestPropertyStableTimeSort(t *testing.T) {
	f := func(times []uint16) bool {
		s := New()
		type rec struct {
			at  Time
			idx int
		}
		var got []rec
		for i, u := range times {
			at := Time(u)
			i := i
			s.At(at, func() { got = append(got, rec{at, i}) })
		}
		s.Run()
		for i := 1; i < len(got); i++ {
			if got[i].at < got[i-1].at {
				return false
			}
			if got[i].at == got[i-1].at && got[i].idx < got[i-1].idx {
				return false
			}
		}
		return len(got) == len(times)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500.0us"},
		{1500, "1.500ms"},
		{2.5e6, "2.5000s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("%v.String() = %q, want %q", float64(c.t), got, c.want)
		}
	}
}

func BenchmarkEventThroughput(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	s := New()
	for i := 0; i < b.N; i++ {
		s.At(s.Now()+Time(rng.Float64()*100), func() {})
		s.Step()
	}
}

// Regression: popped events must not keep their closure reachable through
// the queue's backing array. Before the typed heap, the backing array held
// the last-popped event's fn (and everything it captured) until the slot
// was overwritten by a later push — on a drained queue, forever.
func TestPoppedEventsReleaseClosures(t *testing.T) {
	s := New()
	var collected atomic.Bool // the finalizer runs on the runtime's goroutine
	func() {
		big := make([]byte, 1<<20)
		runtime.SetFinalizer(&big[0], func(*byte) { collected.Store(true) })
		s.At(1, func() { _ = big[0] })
	}()
	// Keep the queue (and its backing array) alive while draining it.
	s.At(2, func() {})
	s.Run()
	if s.Pending() != 0 {
		t.Fatalf("queue not drained: %d pending", s.Pending())
	}
	for i := 0; i < 5 && !collected.Load(); i++ {
		runtime.GC()
	}
	if !collected.Load() {
		t.Fatal("popped event's closure still reachable from the event queue")
	}
	_ = s // the Sim itself is still live here
}

// oldEventHeap replicates the pre-optimization container/heap event queue
// so BenchmarkDESPushPop can compare the two shapes side by side.
type oldEventHeap []event

func (h oldEventHeap) Len() int { return len(h) }
func (h oldEventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h oldEventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *oldEventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *oldEventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// BenchmarkDESPushPop holds a queue of depth events and measures one
// push+pop cycle — the steady-state shape of a simulation with many
// components scheduled ahead.
func BenchmarkDESPushPop(b *testing.B) {
	const depth = 256
	b.Run("typed4ary", func(b *testing.B) {
		rng := rand.New(rand.NewSource(1))
		var q eventQueue
		var seq uint64
		now := Time(0)
		for i := 0; i < depth; i++ {
			seq++
			q.push(event{at: now + Time(rng.Float64()*1000), seq: seq, fn: func() {}})
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e := q.pop()
			now = e.at
			seq++
			q.push(event{at: now + Time(rng.Float64()*1000), seq: seq, fn: e.fn})
		}
	})
	b.Run("containerheap", func(b *testing.B) {
		rng := rand.New(rand.NewSource(1))
		var q oldEventHeap
		var seq uint64
		now := Time(0)
		for i := 0; i < depth; i++ {
			seq++
			heap.Push(&q, event{at: now + Time(rng.Float64()*1000), seq: seq, fn: func() {}})
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e := heap.Pop(&q).(event)
			now = e.at
			seq++
			heap.Push(&q, event{at: now + Time(rng.Float64()*1000), seq: seq, fn: e.fn})
		}
	})
}

// Randomized stress: thousands of events scheduled from inside callbacks
// still execute in global time order.
func TestStressNestedScheduling(t *testing.T) {
	s := New()
	rng := rand.New(rand.NewSource(99))
	var last Time = -1
	count := 0
	var spawn func(depth int)
	spawn = func(depth int) {
		if s.Now() < last {
			t.Fatal("time went backwards")
		}
		last = s.Now()
		count++
		if depth == 0 {
			return
		}
		kids := rng.Intn(3)
		for i := 0; i < kids; i++ {
			s.After(Time(rng.Float64()*50), func() { spawn(depth - 1) })
		}
	}
	for i := 0; i < 200; i++ {
		s.At(Time(rng.Float64()*1000), func() { spawn(6) })
	}
	s.Run()
	if count < 200 {
		t.Fatalf("only %d events ran", count)
	}
	if s.Pending() != 0 {
		t.Fatalf("%d events left", s.Pending())
	}
}
