package des

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

// pingPong runs a randomized cross-shard workload on n shards with the
// given worker count and returns a transcript of every event execution
// (shard, time, payload) in a deterministic global order. Each shard runs
// a self-rescheduling local process and fires messages at random peers at
// legal lookahead distances.
func pingPong(t *testing.T, shards, workers int, seed int64) string {
	t.Helper()
	const look = Time(10)
	sh := NewSharded(shards, look)
	if workers > shards {
		workers = shards // SetWorkers rejects over-provisioning
	}
	if err := sh.SetWorkers(workers); err != nil {
		t.Fatal(err)
	}
	logs := make([][]string, shards) // per-shard transcripts: race-free
	rngs := make([]*rand.Rand, shards)
	for i := range rngs {
		rngs[i] = rand.New(rand.NewSource(seed + int64(i)))
	}
	var hop func(shard, ttl int)
	hop = func(shard, ttl int) {
		s := sh.Shard(shard)
		logs[shard] = append(logs[shard], fmt.Sprintf("s%d@%.2f ttl%d", shard, s.Now(), ttl))
		if ttl == 0 {
			return
		}
		rng := rngs[shard]
		to := rng.Intn(shards)
		delay := look + Time(rng.Float64()*25)
		if to == shard {
			s.After(delay, func() { hop(shard, ttl-1) })
		} else {
			sh.Send(shard, to, s.Now()+delay, func() { hop(to, ttl-1) })
		}
	}
	for i := 0; i < shards; i++ {
		i := i
		sh.Shard(i).At(Time(i), func() { hop(i, 40) })
	}
	sh.Run()
	if sh.Pending() != 0 {
		t.Fatalf("%d events left", sh.Pending())
	}
	out := ""
	for i, l := range logs {
		out += fmt.Sprintf("shard %d: %v\n", i, l)
	}
	return out
}

// The tentpole bar: the transcript must be byte-identical for any worker
// count, including the degenerate sequential engine.
func TestShardedDeterministicAcrossWorkers(t *testing.T) {
	for _, shards := range []int{1, 3, 8} {
		want := pingPong(t, shards, 1, 7)
		for _, w := range []int{2, 4, 8} {
			if got := pingPong(t, shards, w, 7); got != want {
				t.Fatalf("shards=%d workers=%d transcript diverged from sequential:\n%s\nvs\n%s", shards, w, got, want)
			}
		}
	}
}

// A second seed exercises different message interleavings.
func TestShardedDeterministicSeed2(t *testing.T) {
	want := pingPong(t, 4, 1, 1234)
	if got := pingPong(t, 4, 4, 1234); got != want {
		t.Fatalf("diverged:\n%s\nvs\n%s", got, want)
	}
}

// Sending below the lookahead horizon must panic loudly: a lookahead that
// overstates the real coupling latency breaks the conservative argument.
func TestShardedLookaheadViolationPanics(t *testing.T) {
	sh := NewSharded(2, 100)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on lookahead violation")
		}
	}()
	sh.Shard(0).At(50, func() {
		sh.Send(0, 1, 60, func() {}) // 60 < 50+100
	})
	sh.Run()
}

// RunUntil must stop at the horizon inclusively and land every shard's
// clock on it, like Sim.RunUntil.
func TestShardedRunUntilHorizon(t *testing.T) {
	sh := NewSharded(2, 10)
	var ran []string
	sh.Shard(0).At(100, func() { ran = append(ran, "a@100") })
	sh.Shard(1).At(100.5, func() { ran = append(ran, "b@100.5") })
	sh.Shard(1).At(101, func() { ran = append(ran, "c@101") })
	sh.RunUntil(100.5)
	if fmt.Sprint(ran) != "[a@100 b@100.5]" {
		t.Fatalf("ran %v", ran)
	}
	for i := 0; i < 2; i++ {
		if now := sh.Shard(i).Now(); now != 100.5 {
			t.Fatalf("shard %d clock %v, want 100.5", i, now)
		}
	}
	sh.RunUntil(200)
	if fmt.Sprint(ran) != "[a@100 b@100.5 c@101]" {
		t.Fatalf("after second run: %v", ran)
	}
}

// AtArg events interleave with closure events in (at, seq) order and pass
// their argument through unboxed.
func TestAtArgOrdering(t *testing.T) {
	s := New()
	var got []string
	type payload struct{ name string }
	fn := func(a any) { got = append(got, a.(*payload).name) }
	p1, p2 := &payload{"arg1"}, &payload{"arg2"}
	s.At(5, func() { got = append(got, "closure@5") })
	s.AtArg(5, fn, p1)
	s.AtArg(3, fn, p2)
	s.Run()
	if fmt.Sprint(got) != "[arg2 closure@5 arg1]" {
		t.Fatalf("order %v", got)
	}
}

// SendArg delivers the allocation-free form across shards.
func TestShardedSendArg(t *testing.T) {
	sh := NewSharded(2, 10)
	hits := 0
	type box struct{ n int }
	b := &box{41}
	sh.Shard(0).At(0, func() {
		sh.SendArg(0, 1, 20, func(a any) {
			hits = a.(*box).n + 1
		}, b)
	})
	sh.Run()
	if hits != 42 {
		t.Fatalf("hits = %d", hits)
	}
}

// Worker-count validation: out-of-range counts are rejected with the typed
// error instead of silently clamped (a clamp would mask a CLI typo as a
// performance setting).
func TestWorkerCountValidation(t *testing.T) {
	prev := ShardWorkers()
	defer SetShardWorkers(prev)

	for _, bad := range []int{0, -1, -100} {
		if _, err := SetShardWorkers(bad); !errors.Is(err, ErrWorkerCount) {
			t.Fatalf("SetShardWorkers(%d) = %v, want ErrWorkerCount", bad, err)
		}
		if got := ShardWorkers(); got != prev {
			t.Fatalf("rejected SetShardWorkers(%d) still changed the setting to %d", bad, got)
		}
	}
	if old, err := SetShardWorkers(3); err != nil || old != prev {
		t.Fatalf("SetShardWorkers(3) = (%d, %v), want (%d, nil)", old, err, prev)
	}
	if got := ShardWorkers(); got != 3 {
		t.Fatalf("ShardWorkers() = %d after setting 3", got)
	}

	sh := NewSharded(4, 10)
	for _, bad := range []int{0, -2, 5, 100} {
		if err := sh.SetWorkers(bad); !errors.Is(err, ErrWorkerCount) {
			t.Fatalf("SetWorkers(%d) on 4 shards = %v, want ErrWorkerCount", bad, err)
		}
	}
	for _, ok := range []int{1, 4} {
		if err := sh.SetWorkers(ok); err != nil {
			t.Fatalf("SetWorkers(%d) on 4 shards: %v", ok, err)
		}
	}
}
