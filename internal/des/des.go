// Package des implements a small deterministic discrete-event simulation
// kernel. All of MimdRAID's simulated components (disks, buses, workload
// generators, trace replayers) advance time exclusively through a shared
// *Sim, so a run with a given seed is exactly reproducible.
//
// Time is measured in microseconds as a float64. Events scheduled for the
// same instant fire in the order they were scheduled (FIFO tie-break on a
// monotonically increasing sequence number), which keeps runs deterministic
// even when many components schedule at identical timestamps.
package des

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a simulated timestamp or duration in microseconds.
type Time float64

// Common durations.
const (
	Microsecond Time = 1
	Millisecond Time = 1000
	Second      Time = 1000 * 1000
	Minute      Time = 60 * Second
	Hour        Time = 60 * Minute
)

// Milliseconds reports t as a float64 number of milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / 1000 }

// Seconds reports t as a float64 number of seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e6 }

// String formats the time with a unit chosen by magnitude.
func (t Time) String() string {
	a := math.Abs(float64(t))
	switch {
	case a < 1000:
		return fmt.Sprintf("%.1fus", float64(t))
	case a < 1e6:
		return fmt.Sprintf("%.3fms", float64(t)/1000)
	default:
		return fmt.Sprintf("%.4fs", float64(t)/1e6)
	}
}

type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Sim is a discrete-event simulator. The zero value is not usable; call New.
type Sim struct {
	now     Time
	events  eventHeap
	seq     uint64
	stopped bool
	// Processed counts events executed; useful for run-away detection in
	// tests.
	Processed uint64
}

// New returns an empty simulator positioned at time zero.
func New() *Sim {
	return &Sim{}
}

// Now returns the current simulated time.
func (s *Sim) Now() Time { return s.now }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it always indicates a logic error in a component, and silently clamping
// would mask causality bugs.
func (s *Sim) At(t Time, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("des: scheduling event at %v before now %v", t, s.now))
	}
	s.seq++
	heap.Push(&s.events, event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d microseconds from now.
func (s *Sim) After(d Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("des: negative delay %v", d))
	}
	s.At(s.now+d, fn)
}

// Pending reports the number of queued events.
func (s *Sim) Pending() int { return len(s.events) }

// Stop halts the current Run/RunUntil after the in-flight event returns.
func (s *Sim) Stop() { s.stopped = true }

// Run executes events until the queue drains or Stop is called.
func (s *Sim) Run() {
	s.RunUntil(Time(math.Inf(1)))
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// t (if the queue drained earlier, the clock still lands on t so periodic
// processes observe a consistent horizon).
func (s *Sim) RunUntil(t Time) {
	s.stopped = false
	for !s.stopped && len(s.events) > 0 {
		if s.events[0].at > t {
			break
		}
		e := heap.Pop(&s.events).(event)
		s.now = e.at
		s.Processed++
		e.fn()
	}
	if !s.stopped && s.now < t && !math.IsInf(float64(t), 1) {
		s.now = t
	}
}

// Step executes exactly one event if any is pending and reports whether one
// ran.
func (s *Sim) Step() bool {
	if len(s.events) == 0 {
		return false
	}
	e := heap.Pop(&s.events).(event)
	s.now = e.at
	s.Processed++
	e.fn()
	return true
}
