// Package des implements a small deterministic discrete-event simulation
// kernel. All of MimdRAID's simulated components (disks, buses, workload
// generators, trace replayers) advance time exclusively through a shared
// *Sim, so a run with a given seed is exactly reproducible.
//
// Time is measured in microseconds as a float64. Events scheduled for the
// same instant fire in the order they were scheduled (FIFO tie-break on a
// monotonically increasing sequence number), which keeps runs deterministic
// even when many components schedule at identical timestamps.
package des

import (
	"fmt"
	"math"
)

// Time is a simulated timestamp or duration in microseconds.
type Time float64

// Common durations.
const (
	Microsecond Time = 1
	Millisecond Time = 1000
	Second      Time = 1000 * 1000
	Minute      Time = 60 * Second
	Hour        Time = 60 * Minute
)

// Milliseconds reports t as a float64 number of milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / 1000 }

// Seconds reports t as a float64 number of seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e6 }

// String formats the time with a unit chosen by magnitude.
func (t Time) String() string {
	a := math.Abs(float64(t))
	switch {
	case a < 1000:
		return fmt.Sprintf("%.1fus", float64(t))
	case a < 1e6:
		return fmt.Sprintf("%.3fms", float64(t)/1000)
	default:
		return fmt.Sprintf("%.4fs", float64(t)/1e6)
	}
}

type event struct {
	at  Time
	seq uint64
	fn  func()
	// fnA/arg is the allocation-free form: a long-lived func(any) plus a
	// pointer-typed argument boxes nothing at schedule time, whereas a
	// per-event fn closure costs one heap allocation per capture set.
	fnA func(any)
	arg any
}

// call runs whichever form the event carries.
func (e *event) call() {
	if e.fnA != nil {
		e.fnA(e.arg)
		return
	}
	e.fn()
}

// eventQueue is a typed 4-ary min-heap ordered by (at, seq). Compared to
// the previous container/heap implementation it avoids the interface{}
// boxing allocation on every Push and the virtual Less/Swap calls on every
// sift; the wider fan-out halves the sift-down depth, which is where a
// pop-heavy simulation spends its comparisons. Vacated slots are zeroed on
// pop so a popped event's closure (and everything it captures — arrays,
// traces, result collectors) becomes collectable immediately instead of
// being retained by the backing array.
type eventQueue struct {
	ev []event
}

// less orders events by time, FIFO among equals.
func (q *eventQueue) less(i, j int) bool {
	a, b := &q.ev[i], &q.ev[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (q *eventQueue) push(e event) {
	q.ev = append(q.ev, e)
	i := len(q.ev) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !q.less(i, p) {
			break
		}
		q.ev[i], q.ev[p] = q.ev[p], q.ev[i]
		i = p
	}
}

func (q *eventQueue) pop() event {
	ev := q.ev
	top := ev[0]
	n := len(ev) - 1
	ev[0] = ev[n]
	ev[n] = event{} // release the closure reference
	ev = ev[:n]
	q.ev = ev
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if q.less(c, min) {
				min = c
			}
		}
		if !q.less(min, i) {
			break
		}
		ev[i], ev[min] = ev[min], ev[i]
		i = min
	}
	return top
}

// Sim is a discrete-event simulator. The zero value is not usable; call New.
type Sim struct {
	now     Time
	events  eventQueue
	seq     uint64
	stopped bool
	// Processed counts events executed; useful for run-away detection in
	// tests.
	Processed uint64
}

// New returns an empty simulator positioned at time zero.
func New() *Sim {
	return &Sim{}
}

// Now returns the current simulated time.
func (s *Sim) Now() Time { return s.now }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it always indicates a logic error in a component, and silently clamping
// would mask causality bugs.
func (s *Sim) At(t Time, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("des: scheduling event at %v before now %v", t, s.now))
	}
	s.seq++
	s.events.push(event{at: t, seq: s.seq, fn: fn})
}

// AtArg schedules fn(arg) at absolute time t. Unlike At, which typically
// forces a fresh closure per event, a caller can reuse one long-lived
// func(any) and thread per-event state through a pooled pointer argument,
// making the schedule itself allocation-free. Hot paths (drive completions,
// request retries) use this form.
func (s *Sim) AtArg(t Time, fn func(any), arg any) {
	if t < s.now {
		panic(fmt.Sprintf("des: scheduling event at %v before now %v", t, s.now))
	}
	s.seq++
	s.events.push(event{at: t, seq: s.seq, fnA: fn, arg: arg})
}

// After schedules fn to run d microseconds from now.
func (s *Sim) After(d Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("des: negative delay %v", d))
	}
	s.At(s.now+d, fn)
}

// Pending reports the number of queued events.
func (s *Sim) Pending() int { return len(s.events.ev) }

// Stop halts the current Run/RunUntil after the in-flight event returns.
func (s *Sim) Stop() { s.stopped = true }

// Run executes events until the queue drains or Stop is called.
func (s *Sim) Run() {
	s.RunUntil(Time(math.Inf(1)))
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// t (if the queue drained earlier, the clock still lands on t so periodic
// processes observe a consistent horizon).
func (s *Sim) RunUntil(t Time) {
	s.stopped = false
	for !s.stopped && len(s.events.ev) > 0 {
		if s.events.ev[0].at > t {
			break
		}
		e := s.events.pop()
		s.now = e.at
		s.Processed++
		e.call()
	}
	if !s.stopped && s.now < t && !math.IsInf(float64(t), 1) {
		s.now = t
	}
}

// Step executes exactly one event if any is pending and reports whether one
// ran.
func (s *Sim) Step() bool {
	if len(s.events.ev) == 0 {
		return false
	}
	e := s.events.pop()
	s.now = e.at
	s.Processed++
	e.call()
	return true
}

// nextAt reports the timestamp of the earliest pending event. The Sharded
// engine uses it to compute the epoch boundary.
func (s *Sim) nextAt() (Time, bool) {
	if len(s.events.ev) == 0 {
		return 0, false
	}
	return s.events.ev[0].at, true
}

// NextAt reports the timestamp of the earliest pending event, ok=false
// when the queue is empty. Lockstep co-simulation drivers use it to pick
// which of several independent Sims to Step next.
func (s *Sim) NextAt() (Time, bool) { return s.nextAt() }

// runBefore executes events with timestamps strictly below t — the
// half-open epoch window of the Sharded engine. The clock is left at the
// last executed event (not advanced to t), so events injected at the epoch
// barrier with at >= t remain schedulable.
func (s *Sim) runBefore(t Time) {
	s.stopped = false
	for !s.stopped && len(s.events.ev) > 0 {
		if s.events.ev[0].at >= t {
			break
		}
		e := s.events.pop()
		s.now = e.at
		s.Processed++
		e.call()
	}
}

// advanceTo moves the clock forward to t without executing anything;
// Sharded uses it to land every shard on the horizon after a drain.
func (s *Sim) advanceTo(t Time) {
	if !math.IsInf(float64(t), 1) && s.now < t {
		s.now = t
	}
}
