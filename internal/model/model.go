// Package model implements the paper's analytical configuration models
// (Section 2): seek-distance and rotational-delay reduction, combined
// read and read/write latency on an SR-Array, queued service time under
// RLOOK, single-disk and array throughput, and the aspect-ratio optimizer
// that turns a disk budget plus workload parameters into a concrete
// Ds x Dr x Dm configuration.
//
// Following the paper, S is the full-stroke seek time, R the rotation
// period, D the disk budget, p the fraction of I/Os that do not force
// foreground replica propagation (Eq. 8), q the per-disk queue length, and
// L the workload's seek-locality index (average random seek distance over
// average observed seek distance; 1 = uniformly random).
package model

import (
	"fmt"
	"math"

	"repro/internal/des"
	"repro/internal/disk"
)

// Disk holds the two mechanical parameters the models use.
type Disk struct {
	S des.Time // full-stroke seek time
	R des.Time // rotation period
}

// effS returns the seek parameter adjusted for locality: the models use
// S/3 as the average random seek, and a workload with locality L seeks
// 1/L as far on average.
func effS(d Disk, l float64) float64 {
	if l <= 0 {
		l = 1
	}
	return float64(d.S) / l
}

// AvgSeekSingle returns the average random-read seek time on one disk,
// S/3 (Teorey & Pinkerton base case).
func AvgSeekSingle(d Disk) des.Time { return d.S / 3 }

// SeekMirror returns the average seek time of a D-way mirror choosing the
// closest head: S/(2D+1) (Bitton & Gray).
func SeekMirror(d Disk, dWay int) des.Time {
	return des.Time(float64(d.S) / float64(2*dWay+1))
}

// SeekStripe returns the average seek time of a D-way stripe with disks
// kept partially empty: S/(3D) (Matloff, Eq. 1).
func SeekStripe(d Disk, dWay int) des.Time {
	return des.Time(float64(d.S) / float64(3*dWay))
}

// RotEven returns the average read rotational delay with D evenly spaced
// replicas: R/(2D) (Eq. 2).
func RotEven(d Disk, replicas int) des.Time {
	return des.Time(float64(d.R) / float64(2*replicas))
}

// RotRandom returns the average read rotational delay with D randomly
// placed replicas: R/(D+1) (Section 2.2) — strictly worse than even
// spacing, which is why the SR-Array uses the latter.
func RotRandom(d Disk, replicas int) des.Time {
	return des.Time(float64(d.R) / float64(replicas+1))
}

// RotWriteAll returns the average rotational delay to write all D replicas
// on a track in one pass: R - R/(2D) (Eq. 3).
func RotWriteAll(d Disk, replicas int) des.Time {
	return d.R - des.Time(float64(d.R)/float64(2*replicas))
}

// ReadLatency returns the overhead-independent random-read latency of a
// Ds x Dr SR-Array (Eq. 4), with seek locality L.
func ReadLatency(d Disk, ds, dr int, l float64) des.Time {
	return des.Time(effS(d, l)/float64(3*ds) + float64(d.R)/float64(2*dr))
}

// WriteLatency returns the worst-case (foreground-propagated) write
// latency (Eq. 7).
func WriteLatency(d Disk, ds, dr int, l float64) des.Time {
	return des.Time(effS(d, l)/float64(3*ds) + float64(d.R) - float64(d.R)/float64(2*dr))
}

// Latency returns the average read/write latency with foreground-
// propagation ratio p (Eq. 9): pT_R + (1-p)T_W.
func Latency(d Disk, ds, dr int, p, l float64) des.Time {
	s := effS(d, l) / float64(3*ds)
	r := float64(d.R)
	return des.Time(s + p*r/float64(2*dr) + (1-p)*(r-r/float64(2*dr)))
}

// QueuedLatency returns the average per-request service time of a single
// RLOOK stroke with q requests queued (Eq. 12). The paper notes this
// approximation holds for q > 3; callers should fall back to Latency for
// sparse queues.
func QueuedLatency(d Disk, ds, dr int, p, q, l float64) des.Time {
	s := effS(d, l) / (q * float64(ds))
	r := float64(d.R)
	return des.Time(s + p*r/float64(2*dr) + (1-p)*(r-r/float64(2*dr)))
}

// OptimalAspect returns the real-valued optimum (Ds, Dr) for D disks.
// Three regimes, from the paper:
//
//   - Low load, read-only or background propagation (p=1, q<=3): Eq. (5).
//   - Low load with foreground writes: Eq. (10) — the rotational benefit
//     shrinks by (2p-1).
//   - Queued (q > 3): Eq. (13) — queueing amortizes seeks, favoring taller
//     (more rotational) configurations.
//
// For p <= 0.5 replication cannot pay off (Section 2.2) and the optimum
// degenerates to pure striping: (D, 1).
func OptimalAspect(d Disk, D int, p, q, l float64) (ds, dr float64) {
	if p <= 0.5 {
		return float64(D), 1
	}
	s := effS(d, l)
	r := float64(d.R)
	if q > 3 {
		ds = math.Sqrt(2 * s / (r * (2*p - 1) * q) * float64(D))
	} else {
		ds = math.Sqrt(2 * s / (3 * r * (2*p - 1)) * float64(D))
	}
	if ds < 1 {
		ds = 1
	}
	if ds > float64(D) {
		ds = float64(D)
	}
	return ds, float64(D) / ds
}

// BestLatency returns the overhead-independent latency at the real-valued
// optimal aspect ratio (Eqs. 6, 11, 14).
func BestLatency(d Disk, D int, p, q, l float64) des.Time {
	s := effS(d, l)
	r := float64(d.R)
	if p <= 0.5 {
		if q > 3 {
			return des.Time(s/(q*float64(D)) + r/2)
		}
		return des.Time(s/(3*float64(D)) + r/2)
	}
	if q > 3 {
		return des.Time(math.Sqrt(2*s*r*(2*p-1)/(q*float64(D))) + (1-p)*r)
	}
	return des.Time(math.Sqrt(2*s*r*(2*p-1)/(3*float64(D))) + (1-p)*r)
}

// ThroughputSingle returns the single-disk throughput 1/(To + Tbest)
// (Eq. 15), in requests per microsecond; multiply by 1e6 for IOPS.
func ThroughputSingle(overhead, tBest des.Time) float64 {
	return 1 / float64(overhead+tBest)
}

// ThroughputArray returns the D-disk throughput with Q outstanding
// requests system-wide (Eq. 16): load imbalance idles disks when Q is not
// much larger than D.
func ThroughputArray(D int, Q int, n1 float64) float64 {
	idle := math.Pow(1-1/float64(D), float64(Q))
	return float64(D) * (1 - idle) * n1
}

// MaxDr is the prototype's practical cap on rotational replication: with
// replicas on different tracks and a ~900us track switch, propagating more
// than six copies within one revolution is infeasible (Section 4.1).
const MaxDr = 6

// Constraint restricts which Dr values a concrete array can realize (e.g.
// the layout requires Dr to divide the number of disk surfaces). Nil
// allows any.
type Constraint func(dr int) bool

// Optimize picks the best integer configuration for D disks: Dr is the
// largest admissible integer factor of D not exceeding the real-valued
// optimum (and at most MaxDr), exactly the paper's rounding rule; Ds gets
// the rest.
func Optimize(d Disk, D int, p, q, l float64, allowed Constraint) (ds, dr int, err error) {
	if D < 1 {
		return 0, 0, fmt.Errorf("model: need at least one disk")
	}
	_, drOpt := OptimalAspect(d, D, p, q, l)
	best := 1
	for f := 1; f <= D && float64(f) <= drOpt; f++ {
		if D%f != 0 || f > MaxDr {
			continue
		}
		if allowed != nil && !allowed(f) {
			continue
		}
		best = f
	}
	return D / best, best, nil
}

// LatencyInt evaluates Eq. (9)/(12) at an integer configuration, choosing
// the queued form when q > 3 — the comparison surface behind Figure 7.
func LatencyInt(d Disk, ds, dr int, p, q, l float64) des.Time {
	if q > 3 {
		return QueuedLatency(d, ds, dr, p, q, l)
	}
	return Latency(d, ds, dr, p, l)
}

// MechParams evaluates the latency models against a measured seek curve
// instead of the linear seek-time-proportional-to-distance approximation.
// The paper notes that "seek latency is approximately a linear function of
// seek distance only for long seeks"; on a drive whose short seeks are
// dominated by the arm's acceleration limit, a LOOK stroke of q short
// seeks costs far more than one full stroke divided by q, and this variant
// captures that.
type MechParams struct {
	Seek    disk.SeekCurve
	R       des.Time
	UsedCyl int // cylinders the data occupies on each disk (≈ C/Ds)
}

// QueuedLatencyMech is Eq. (12) with the seek term evaluated as one seek
// of span/(q+1) cylinders on the measured curve, where span is the
// locality-shrunk data band. For sparse queues (q <= 3) it degrades to the
// random-access form (span/3), mirroring the paper's guidance.
func (m MechParams) QueuedLatencyMech(dr int, p, q, l float64) des.Time {
	if l < 1 {
		l = 1
	}
	span := float64(m.UsedCyl) / l
	var dist float64
	if q > 3 {
		dist = span / (q + 1)
	} else {
		dist = span / 3
	}
	seek := m.Seek.Time(int(dist), false)
	r := float64(m.R)
	rot := p*r/float64(2*dr) + (1-p)*(r-r/float64(2*dr))
	return seek + des.Time(rot)
}
