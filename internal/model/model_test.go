package model

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/des"
	"repro/internal/disk"
)

// diskpkgForModel builds the reference drive for MechParams tests.
func diskpkgForModel(t *testing.T) *disk.Disk {
	t.Helper()
	return disk.ST39133LWV().MustNew()
}

var seagate = Disk{S: 10500 * des.Microsecond, R: 6000 * des.Microsecond}

func TestSeekReductionFormulas(t *testing.T) {
	// Eq. (1): striping beats mirroring at equal D for seek reduction.
	for _, d := range []int{2, 4, 8} {
		stripe := SeekStripe(seagate, d)
		mirror := SeekMirror(seagate, d)
		if stripe >= mirror {
			t.Errorf("D=%d: stripe seek %v not better than mirror %v", d, stripe, mirror)
		}
	}
	if got, want := SeekStripe(seagate, 1), AvgSeekSingle(seagate); got != want {
		t.Errorf("1-way stripe %v != single disk %v", got, want)
	}
}

// Monte-Carlo check of the mirror seek model S/(2D+1): the expected
// minimum of D uniform seek distances.
func TestMirrorSeekMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, d := range []int{1, 2, 3, 5} {
		var sum float64
		const n = 100000
		for i := 0; i < n; i++ {
			target := rng.Float64()
			best := 1.0
			for k := 0; k < d; k++ {
				if dist := math.Abs(rng.Float64() - target); dist < best {
					best = dist
				}
			}
			sum += best
		}
		got := sum / n
		want := 1 / float64(2*d+1)
		if math.Abs(got-want) > 0.015 {
			t.Errorf("D=%d: Monte-Carlo mean min distance %.4f, model %.4f", d, got, want)
		}
	}
}

// Monte-Carlo check of Eq. (2) and the random-placement variant: evenly
// spaced replicas give R/2D; random placement gives R/(D+1).
func TestRotationalModelsMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, d := range []int{1, 2, 3, 6} {
		var sumEven, sumRand float64
		const n = 100000
		for i := 0; i < n; i++ {
			head := rng.Float64()
			// Evenly spaced replicas at j/d + phase.
			phase := rng.Float64()
			best := 1.0
			for j := 0; j < d; j++ {
				w := math.Mod(phase+float64(j)/float64(d)-head+2, 1)
				if w < best {
					best = w
				}
			}
			sumEven += best
			// Randomly placed replicas.
			best = 1.0
			for j := 0; j < d; j++ {
				if w := math.Mod(rng.Float64()-head+1, 1); w < best {
					best = w
				}
			}
			sumRand += best
		}
		gotEven := des.Time(sumEven / n * float64(seagate.R))
		wantEven := RotEven(seagate, d)
		if math.Abs(float64(gotEven-wantEven)) > 0.03*float64(seagate.R) {
			t.Errorf("D=%d even: %v, model %v", d, gotEven, wantEven)
		}
		gotRand := des.Time(sumRand / n * float64(seagate.R))
		wantRand := RotRandom(seagate, d)
		if math.Abs(float64(gotRand-wantRand)) > 0.03*float64(seagate.R) {
			t.Errorf("D=%d random: %v, model %v", d, gotRand, wantRand)
		}
	}
}

func TestReadPlusWriteRotationIsR(t *testing.T) {
	// Section 2.2: R_r(D) + R_w(D) = R for any D.
	for d := 1; d <= 8; d++ {
		sum := RotEven(seagate, d) + RotWriteAll(seagate, d)
		if math.Abs(float64(sum-seagate.R)) > 1e-9 {
			t.Errorf("D=%d: Rr+Rw = %v, want R = %v", d, sum, seagate.R)
		}
	}
}

func TestOptimalAspectMatchesClosedForm(t *testing.T) {
	// Eq. (5) with p=1, q<=3: Ds = sqrt(2S/(3R) * D).
	for _, D := range []int{4, 6, 12, 36} {
		ds, dr := OptimalAspect(seagate, D, 1, 1, 1)
		want := math.Sqrt(2 * float64(seagate.S) / (3 * float64(seagate.R)) * float64(D))
		if math.Abs(ds-want) > 1e-9 {
			t.Errorf("D=%d: Ds = %v, want %v", D, ds, want)
		}
		if math.Abs(ds*dr-float64(D)) > 1e-9 {
			t.Errorf("D=%d: Ds*Dr = %v, want D", D, ds*dr)
		}
	}
}

func TestOptimalAspectIsActuallyOptimal(t *testing.T) {
	// The closed form should beat any perturbed aspect ratio under Eq. (9).
	for _, p := range []float64{1.0, 0.9, 0.7} {
		ds, _ := OptimalAspect(seagate, 12, p, 1, 1)
		eval := func(dsF float64) float64 {
			drF := 12 / dsF
			s := float64(seagate.S) / (3 * dsF)
			r := float64(seagate.R)
			return s + p*r/(2*drF) + (1-p)*(r-r/(2*drF))
		}
		best := eval(ds)
		for _, f := range []float64{0.5, 0.8, 1.25, 2} {
			alt := ds * f
			if alt < 1 || alt > 12 {
				continue
			}
			if eval(alt) < best-1e-9 {
				t.Errorf("p=%v: perturbed Ds=%.2f beats optimum Ds=%.2f", p, alt, ds)
			}
		}
	}
}

func TestLowPPrecludesReplication(t *testing.T) {
	ds, dr := OptimalAspect(seagate, 8, 0.4, 1, 1)
	if dr != 1 || ds != 8 {
		t.Errorf("p=0.4: got %vx%v, want pure striping 8x1", ds, dr)
	}
	dsI, drI, err := Optimize(seagate, 8, 0.3, 1, 1, nil)
	if err != nil || drI != 1 || dsI != 8 {
		t.Errorf("Optimize at p=0.3: %dx%d (%v), want 8x1", dsI, drI, err)
	}
}

func TestQueueFavorsRotationalReplication(t *testing.T) {
	// Eq. (13): larger q shifts disks from seek to rotation.
	_, drShort := OptimalAspect(seagate, 36, 1, 1, 1)
	_, drLong := OptimalAspect(seagate, 36, 1, 16, 1)
	if drLong <= drShort {
		t.Errorf("Dr(q=16) = %.2f not greater than Dr(q=1) = %.2f", drLong, drShort)
	}
}

func TestLocalityFavorsRotationalReplication(t *testing.T) {
	// High seek locality (short seeks) means seeks matter less: taller
	// grids win. Cello disk 6 (L=16.67) should want more replicas than
	// TPC-C (L=1.04).
	_, drLocal := OptimalAspect(seagate, 6, 1, 1, 16.67)
	_, drRandom := OptimalAspect(seagate, 6, 1, 1, 1.04)
	if drLocal <= drRandom {
		t.Errorf("Dr(L=16.67) = %.2f not greater than Dr(L=1.04) = %.2f", drLocal, drRandom)
	}
}

func TestOptimizeIntegerRules(t *testing.T) {
	// Dr must divide D, not exceed MaxDr, not exceed the real optimum, and
	// respect extra constraints.
	ds, dr, err := Optimize(seagate, 6, 1, 1, 4.14, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ds*dr != 6 {
		t.Fatalf("Ds*Dr = %d, want 6", ds*dr)
	}
	if dr < 1 || dr > MaxDr {
		t.Fatalf("Dr = %d out of range", dr)
	}
	// With a constraint rejecting everything above 2:
	_, dr2, err := Optimize(seagate, 6, 1, 1, 4.14, func(d int) bool { return d <= 2 })
	if err != nil || dr2 > 2 {
		t.Fatalf("constrained Dr = %d (%v), want <= 2", dr2, err)
	}
	// D=9: factors 1,3,9; cap at MaxDr means Dr in {1,3}. The paper notes
	// the practical Dr for D=9 is 3 despite a real-valued optimum near 6+.
	_, dr9, err := Optimize(seagate, 9, 1, 1, 16.67, nil)
	if err != nil || dr9 != 3 {
		t.Fatalf("D=9 high locality: Dr = %d (%v), want 3", dr9, err)
	}
}

func TestBestLatencyScalesAsSqrtD(t *testing.T) {
	// Rule of thumb: response time improves as sqrt(D) when p -> 1.
	t4 := float64(BestLatency(seagate, 4, 1, 1, 1))
	t16 := float64(BestLatency(seagate, 16, 1, 1, 1))
	ratio := t4 / t16
	if math.Abs(ratio-2) > 0.05 {
		t.Errorf("latency(4)/latency(16) = %.3f, want ~2 (sqrt scaling)", ratio)
	}
}

func TestThroughputArrayLimits(t *testing.T) {
	n1 := ThroughputSingle(2700, 10000)
	// With Q >> D, throughput approaches D*N1.
	full := ThroughputArray(8, 1000, n1)
	if math.Abs(full-8*n1) > 0.01*8*n1 {
		t.Errorf("saturated throughput %v, want ~%v", full, 8*n1)
	}
	// With Q = 1, exactly one disk works: throughput ~ N1.
	one := ThroughputArray(8, 1, n1)
	if math.Abs(one-n1) > 1e-12 {
		t.Errorf("Q=1 throughput %v, want %v", one, n1)
	}
	// Monotone in Q.
	prev := 0.0
	for q := 1; q <= 64; q *= 2 {
		cur := ThroughputArray(8, q, n1)
		if cur <= prev {
			t.Errorf("throughput not increasing at Q=%d", q)
		}
		prev = cur
	}
}

func TestLatencyDegeneratesToStriping(t *testing.T) {
	// Dr=1 must reduce Eq. (9) to seek + R/2 regardless of p (no replicas
	// to propagate: T_R == T_W).
	for _, p := range []float64{0.2, 0.5, 1} {
		got := Latency(seagate, 6, 1, p, 1)
		want := des.Time(float64(seagate.S)/(3*6) + float64(seagate.R)/2)
		if math.Abs(float64(got-want)) > 1e-9 {
			t.Errorf("p=%v: latency %v, want %v", p, got, want)
		}
	}
}

func TestOptimizeRejectsBadInput(t *testing.T) {
	if _, _, err := Optimize(seagate, 0, 1, 1, 1, nil); err == nil {
		t.Error("D=0 accepted")
	}
}

func TestReadWriteLatencyConsistency(t *testing.T) {
	// Eq. (9) interpolates between Eq. (4) at p=1 and Eq. (7) at p=0.
	for _, cfg := range []struct{ ds, dr int }{{2, 3}, {6, 1}, {1, 6}} {
		r := ReadLatency(seagate, cfg.ds, cfg.dr, 1)
		if got := Latency(seagate, cfg.ds, cfg.dr, 1, 1); math.Abs(float64(got-r)) > 1e-9 {
			t.Errorf("%dx%d: Latency(p=1) = %v, ReadLatency = %v", cfg.ds, cfg.dr, got, r)
		}
		w := WriteLatency(seagate, cfg.ds, cfg.dr, 1)
		if got := Latency(seagate, cfg.ds, cfg.dr, 0, 1); math.Abs(float64(got-w)) > 1e-9 {
			t.Errorf("%dx%d: Latency(p=0) = %v, WriteLatency = %v", cfg.ds, cfg.dr, got, w)
		}
		if w <= r && cfg.dr > 1 {
			t.Errorf("%dx%d: write latency %v not above read latency %v", cfg.ds, cfg.dr, w, r)
		}
	}
}

func TestQueuedLatencyAmortizesSeek(t *testing.T) {
	// Eq. (12): deeper queues amortize the stroke; rotation term is
	// unchanged.
	l4 := QueuedLatency(seagate, 2, 3, 1, 4, 1)
	l16 := QueuedLatency(seagate, 2, 3, 1, 16, 1)
	if l16 >= l4 {
		t.Errorf("q=16 latency %v not below q=4 %v", l16, l4)
	}
	// As q grows the latency approaches the pure rotational term.
	l1000 := QueuedLatency(seagate, 2, 3, 1, 1000, 1)
	rot := RotEven(seagate, 3)
	if math.Abs(float64(l1000-rot)) > 50 {
		t.Errorf("q=1000 latency %v, want ~%v (rotation only)", l1000, rot)
	}
}

func TestBestLatencyLowPBranches(t *testing.T) {
	// p <= 0.5: pure striping, with and without queueing.
	lo := BestLatency(seagate, 8, 0.4, 1, 1)
	want := des.Time(float64(seagate.S)/(3*8) + float64(seagate.R)/2)
	if math.Abs(float64(lo-want)) > 1e-9 {
		t.Errorf("BestLatency(p=0.4, q=1) = %v, want %v", lo, want)
	}
	loQ := BestLatency(seagate, 8, 0.4, 8, 1)
	wantQ := des.Time(float64(seagate.S)/(8*8) + float64(seagate.R)/2)
	if math.Abs(float64(loQ-wantQ)) > 1e-9 {
		t.Errorf("BestLatency(p=0.4, q=8) = %v, want %v", loQ, wantQ)
	}
	// And the queued high-p branch.
	hiQ := BestLatency(seagate, 8, 1, 8, 1)
	if hiQ >= BestLatency(seagate, 8, 1, 1, 1) {
		t.Errorf("queued best latency %v not below unqueued", hiQ)
	}
}

func TestLatencyIntChoosesForm(t *testing.T) {
	// q <= 3 uses Eq. (9); q > 3 uses Eq. (12).
	if got, want := LatencyInt(seagate, 2, 3, 1, 2, 1), Latency(seagate, 2, 3, 1, 1); got != want {
		t.Errorf("LatencyInt(q=2) = %v, want Latency %v", got, want)
	}
	if got, want := LatencyInt(seagate, 2, 3, 1, 8, 1), QueuedLatency(seagate, 2, 3, 1, 8, 1); got != want {
		t.Errorf("LatencyInt(q=8) = %v, want QueuedLatency %v", got, want)
	}
}

func TestMechParamsBehavior(t *testing.T) {
	d := diskpkgForModel(t)
	m := MechParams{Seek: d.Seek, R: d.NominalR, UsedCyl: d.Geom.LogicalCylinders() / 2}
	// Deeper queues and more replicas both reduce the queued latency.
	base := m.QueuedLatencyMech(2, 1, 8, 1)
	if deeper := m.QueuedLatencyMech(2, 1, 32, 1); deeper >= base {
		t.Errorf("deeper queue latency %v not below %v", deeper, base)
	}
	if taller := m.QueuedLatencyMech(6, 1, 8, 1); taller >= base {
		t.Errorf("more replicas latency %v not below %v", taller, base)
	}
	// Locality shortens the seek term.
	if local := m.QueuedLatencyMech(2, 1, 8, 4); local >= base {
		t.Errorf("local latency %v not below %v", local, base)
	}
	// The sparse-queue form uses span/3 and is larger than the queued one.
	sparse := m.QueuedLatencyMech(2, 1, 2, 1)
	if sparse <= base {
		t.Errorf("sparse-queue latency %v not above queued %v", sparse, base)
	}
	// All writes foreground (p=0): rotation term grows toward R.
	w := m.QueuedLatencyMech(2, 0, 8, 1)
	if w <= base {
		t.Errorf("p=0 latency %v not above p=1 %v", w, base)
	}
}
