package slo

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/layout"
)

const testWindow = 100 * des.Millisecond

func testVolume(t *testing.T) *core.Array {
	t.Helper()
	a, err := core.New(des.New(), core.Options{
		Config:        layout.Config{Ds: 2, Dr: 2, Dm: 1},
		Policy:        "rsatf",
		Seed:          1,
		MaxQueueDepth: 8,
		Scrub:         core.ScrubOptions{MBps: 4},
	})
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}
	return a
}

func testOptions() Options {
	return Options{
		Window:         testWindow,
		Targets:        [NumTiers]des.Time{Premium: 20 * des.Millisecond, Standard: 50 * des.Millisecond},
		ViolateWindows: 3,
		RecoverWindows: 4,
		MinSamples:     4,
		Classify: func(tenant string) Tier {
			switch {
			case strings.HasPrefix(tenant, "p"):
				return Premium
			case strings.HasPrefix(tenant, "b"):
				return BestEffort
			}
			return Standard
		},
	}
}

// feeder drives synthetic windows through a controller on the virtual
// window grid.
type feeder struct {
	c   *Controller
	win int64
}

// window feeds one full window of completions (all with latency lat for
// tenant) and then advances the clock into the next window so it is
// judged. n=0 feeds an empty (trivially compliant) window.
func (f *feeder) window(tenant string, lat des.Time, n int) {
	at := des.Time(f.win) * testWindow
	for i := 0; i < n; i++ {
		f.c.Observe(at, tenant, lat, false)
	}
	f.win++
	// First touch of the next window closes (and judges) this one.
	f.c.Admit(des.Time(f.win)*testWindow, "p0")
}

func TestSingleSpikeDoesNotBrownout(t *testing.T) {
	c, err := New(testVolume(t), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	f := &feeder{c: c}
	f.window("p0", des.Millisecond, 16) // warm-up, compliant
	f.window("p0", des.Second, 16)      // one massive p99 spike
	if got := c.Level(); got != Normal {
		t.Fatalf("level after single spike = %v, want normal", got)
	}
	for i := 0; i < 8; i++ {
		f.window("p0", des.Millisecond, 16)
	}
	if got := c.Level(); got != Normal {
		t.Fatalf("level after spike cleared = %v, want normal", got)
	}
	if st := c.State(); st.Violations != 1 || st.Escalations != 0 {
		t.Fatalf("state = %+v, want exactly 1 violation and 0 escalations", st)
	}
}

func TestBelowMinSamplesIsNotJudged(t *testing.T) {
	c, err := New(testVolume(t), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	f := &feeder{c: c}
	for i := 0; i < 10; i++ {
		f.window("p0", des.Second, 3) // violating latencies, but < MinSamples
	}
	st := c.State()
	if st.Judged != 0 || st.Violations != 0 || c.Level() != Normal {
		t.Fatalf("sparse windows were judged: %+v", st)
	}
}

// TestEscalationLadder walks the full brownout ladder under sustained
// violation and checks each rung's actuation and shed set.
func TestEscalationLadder(t *testing.T) {
	vol := testVolume(t)
	base := vol.Tuning()
	opts := testOptions()
	opts.Actuators = Actuators{BackgroundMBps: 1, HedgeAfter: 5 * des.Millisecond}
	c, err := New(vol, opts)
	if err != nil {
		t.Fatal(err)
	}
	f := &feeder{c: c}

	rungs := []struct {
		level   Level
		shedBE  bool
		shedStd bool
	}{
		{DegradeBackground, false, false},
		{ShedBestEffort, true, false},
		{ShedStandard, true, true},
	}
	for _, rung := range rungs {
		// ViolateWindows consecutive violating windows climb one rung.
		for i := 0; i < opts.ViolateWindows; i++ {
			f.window("p0", des.Second, 16)
		}
		if got := c.Level(); got != rung.level {
			t.Fatalf("level = %v, want %v", got, rung.level)
		}
		now := des.Time(f.win) * testWindow
		if _, ok := c.Admit(now, "p0"); !ok {
			t.Fatalf("%v: premium shed — premium must never be shed", rung.level)
		}
		if _, ok := c.Admit(now, "b0"); ok == rung.shedBE {
			t.Fatalf("%v: best-effort admitted=%v, want shed=%v", rung.level, ok, rung.shedBE)
		}
		if _, ok := c.Admit(now, "s0"); ok == rung.shedStd {
			t.Fatalf("%v: standard admitted=%v, want shed=%v", rung.level, ok, rung.shedStd)
		}
	}

	// Best-effort was shed strictly before standard.
	st := c.State()
	if st.Tiers[BestEffort].Sheds == 0 || st.Tiers[Standard].Sheds == 0 || st.Tiers[Premium].Sheds != 0 {
		t.Fatalf("shed counters %+v: want best-effort and standard shed, premium untouched", st.Tiers)
	}
	if st.Escalations != 3 {
		t.Fatalf("escalations = %d, want 3", st.Escalations)
	}

	// Actuation: background pacing floored, hedge clamped, depth tightened.
	tun := vol.Tuning()
	if tun.ScrubMBps != 1 || tun.RebuildMBps != 1 || tun.RecoveryScanMBps != 1 {
		t.Fatalf("background pacing not floored: %+v", tun)
	}
	if tun.HedgeAfter != 5*des.Millisecond {
		t.Fatalf("hedge delay = %v, want clamped to 5ms", tun.HedgeAfter)
	}
	if tun.MaxQueueDepth != base.MaxQueueDepth/2 {
		t.Fatalf("queue depth = %d, want %d", tun.MaxQueueDepth, base.MaxQueueDepth/2)
	}
	// The retry hint quoted to shed tenants defaults to one window.
	if ra, ok := c.Admit(des.Time(f.win)*testWindow, "b1"); ok || ra != testWindow {
		t.Fatalf("shed retry-after = %v admitted=%v, want %v", ra, ok, testWindow)
	}
}

// TestRecoveryReverseOrder verifies a recovered system re-admits tiers one
// level per RecoverWindows in reverse shed order, restores the baseline
// tuning exactly, and does not oscillate.
func TestRecoveryReverseOrder(t *testing.T) {
	vol := testVolume(t)
	base := vol.Tuning()
	opts := testOptions()
	c, err := New(vol, opts)
	if err != nil {
		t.Fatal(err)
	}
	f := &feeder{c: c}
	for i := 0; i < 3*opts.ViolateWindows; i++ {
		f.window("p0", des.Second, 16)
	}
	if c.Level() != ShedStandard {
		t.Fatalf("setup: level = %v, want standard-shed", c.Level())
	}

	// Compliant windows de-escalate one level per RecoverWindows:
	// standard re-admitted first, best-effort second, then Normal.
	down := []Level{ShedBestEffort, DegradeBackground, Normal}
	for _, want := range down {
		for i := 0; i < opts.RecoverWindows; i++ {
			f.window("p0", des.Millisecond, 16)
		}
		if got := c.Level(); got != want {
			t.Fatalf("level = %v, want %v", got, want)
		}
	}

	// No oscillation: further compliant traffic keeps us at Normal and
	// the baseline actuators are restored bit-exactly.
	for i := 0; i < 10; i++ {
		f.window("p0", des.Millisecond, 16)
	}
	st := c.State()
	if c.Level() != Normal || st.Escalations != 3 || st.Deescalations != 3 {
		t.Fatalf("oscillation: level=%v esc=%d deesc=%d", c.Level(), st.Escalations, st.Deescalations)
	}
	if got := vol.Tuning(); got != base {
		t.Fatalf("tuning not restored: got %+v, want %+v", got, base)
	}
	if !strings.Contains(st.TransitionsLog, "best-effort-shed→background-deferred") {
		t.Fatalf("transitions log missing reverse-order de-escalation: %q", st.TransitionsLog)
	}
}

// TestShedTenantsDriveReadmission: once every non-premium tenant is shed
// their Observe stream dries up, but their Admit probes still advance the
// window grid; evidence-free windows count compliant, so the system can
// come back.
func TestShedTenantsDriveReadmission(t *testing.T) {
	opts := testOptions()
	opts.MaxLevel = ShedStandard
	c, err := New(testVolume(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	f := &feeder{c: c}
	for i := 0; i < 3*opts.ViolateWindows; i++ {
		f.window("s0", des.Second, 16)
	}
	if c.Level() != ShedStandard {
		t.Fatalf("setup: level = %v", c.Level())
	}
	// Only shed tenants knocking — no completions at all.
	for w := 0; w < 3*opts.RecoverWindows+3; w++ {
		f.win++
		c.Admit(des.Time(f.win)*testWindow, "s0")
	}
	if got := c.Level(); got != Normal {
		t.Fatalf("level = %v after idle recovery, want normal", got)
	}
	if _, ok := c.Admit(des.Time(f.win)*testWindow, "s0"); !ok {
		t.Fatal("standard still shed after recovery")
	}
}

func TestFailuresCountAgainstTarget(t *testing.T) {
	c, err := New(testVolume(t), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	f := &feeder{c: c}
	at := des.Time(0)
	for i := 0; i < 16; i++ {
		c.Observe(at, "p0", des.Millisecond, true) // fast but failed
	}
	f.win++
	c.Admit(des.Time(f.win)*testWindow, "p0")
	st := c.State()
	if st.Violations != 1 || st.Tiers[Premium].Failures != 16 {
		t.Fatalf("failures did not violate: %+v", st)
	}
}

func TestRateScaleByTierAndLevel(t *testing.T) {
	c, err := New(testVolume(t), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	f := &feeder{c: c}
	if s := c.RateScale("b0"); s != 1 {
		t.Fatalf("normal scale = %v, want 1", s)
	}
	for i := 0; i < 3; i++ {
		f.window("s0", des.Second, 16)
	}
	// DegradeBackground: best-effort throttled, standard and premium not.
	if c.Level() != DegradeBackground {
		t.Fatalf("level = %v", c.Level())
	}
	if s := c.RateScale("b0"); s != 0.5 {
		t.Fatalf("best-effort scale = %v, want 0.5", s)
	}
	if s := c.RateScale("s0"); s != 1 {
		t.Fatalf("standard scale = %v, want 1", s)
	}
	for i := 0; i < 3; i++ {
		f.window("s0", des.Second, 16)
	}
	// ShedBestEffort: standard throttled too, premium never.
	if s := c.RateScale("s0"); s != 0.5 {
		t.Fatalf("standard scale = %v, want 0.5", s)
	}
	if s := c.RateScale("p0"); s != 1 {
		t.Fatalf("premium scale = %v, want 1", s)
	}
}

func TestNilControllerInert(t *testing.T) {
	var c *Controller
	if _, ok := c.Admit(0, "x"); !ok {
		t.Fatal("nil controller shed a request")
	}
	c.Observe(0, "x", des.Second, true)
	if s := c.RateScale("x"); s != 1 {
		t.Fatalf("nil RateScale = %v", s)
	}
	if got := c.State(); got.Level != "normal" {
		t.Fatalf("nil State = %+v", got)
	}
	if got := c.Level(); got != Normal {
		t.Fatalf("nil Level = %v", got)
	}
	if got := c.Tier("x"); got != Standard {
		t.Fatalf("nil Tier = %v", got)
	}
}

func TestOptionsValidate(t *testing.T) {
	vol := testVolume(t)
	bad := []Options{
		{Window: -1},
		{Targets: [NumTiers]des.Time{Premium: -des.Millisecond}},
		{ViolateWindows: -1},
		{MaxLevel: NumLevels},
		{Actuators: Actuators{BackgroundMBps: -1}},
		{Actuators: Actuators{ThrottleScale: -0.5}},
	}
	for i, o := range bad {
		if _, err := New(vol, o); err == nil {
			t.Errorf("case %d: New accepted invalid options %+v", i, o)
		}
	}
	if _, err := New(nil, Options{}); err == nil {
		t.Error("New accepted nil volume")
	}
	if _, err := New(vol, Options{}); err != nil {
		t.Errorf("New rejected zero options: %v", err)
	}
}

func TestParseTier(t *testing.T) {
	for name, want := range map[string]Tier{
		"premium": Premium, "standard": Standard, "best-effort": BestEffort, "besteffort": BestEffort,
	} {
		got, err := ParseTier(name)
		if err != nil || got != want {
			t.Errorf("ParseTier(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseTier("gold"); err == nil {
		t.Error("ParseTier accepted unknown tier")
	}
}
