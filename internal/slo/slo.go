// Package slo is the per-tenant SLO control plane: it closes the loop
// from observed windowed p99 latency back onto the actuators the array
// and gateway expose — hedging aggressiveness, background-work pacing
// (scrub, rebuild, recovery scan), admission depth, and per-tenant
// token-bucket rates.
//
// Tenants carry a tier (premium / standard / best-effort). Under
// sustained SLO violation the controller walks a brownout ladder,
// shedding in strict priority order: background work is deferred first,
// then best-effort admission, then standard; premium is never shed. Each
// step requires ViolateWindows consecutive violating windows, and each
// step back requires RecoverWindows consecutive compliant windows — the
// same Suspect/Evict hysteresis discipline the drive-health tracker uses,
// so a single p99 spike cannot trigger a brownout and a recovered system
// re-admits tiers one level at a time, in reverse shed order, without
// flapping.
//
// The controller is event-driven on the virtual clock: every Observe and
// Admit carries the caller's virtual timestamp, windows close lazily when
// the first event of a later window arrives, and no free-running timer
// events are scheduled — a stalled simulation therefore still runs out of
// events, and a disabled (nil) controller leaves every caller
// byte-identical.
//
// All methods must be called from the goroutine that owns the volume's
// simulator (the gateway run loop, or the brick's shard); the controller
// does no locking of its own.
package slo

import (
	"fmt"

	"repro/internal/des"
)

// Tier classifies a tenant's service priority. Shedding strictly follows
// tier order: higher-numbered tiers are shed first, and Premium is never
// shed by the controller.
type Tier uint8

const (
	Premium Tier = iota
	Standard
	BestEffort
	// NumTiers sizes per-tier arrays.
	NumTiers
)

func (t Tier) String() string {
	switch t {
	case Premium:
		return "premium"
	case Standard:
		return "standard"
	case BestEffort:
		return "best-effort"
	default:
		return fmt.Sprintf("slo.Tier(%d)", uint8(t))
	}
}

// ParseTier maps the canonical names (as used by CLI flags and config
// files) back to tiers.
func ParseTier(s string) (Tier, error) {
	switch s {
	case "premium":
		return Premium, nil
	case "standard":
		return Standard, nil
	case "best-effort", "besteffort":
		return BestEffort, nil
	}
	return Standard, fmt.Errorf("slo: unknown tier %q (want premium, standard, or best-effort)", s)
}

// Level is the brownout ladder. Each escalation adds one degradation on
// top of the previous level's.
type Level uint8

const (
	// Normal applies no degradation.
	Normal Level = iota
	// DegradeBackground defers redundancy maintenance: scrub, rebuild,
	// and recovery-scan pacing drop to the background floor, the hedge
	// delay is clamped, and best-effort token buckets refill slower.
	DegradeBackground
	// ShedBestEffort additionally rejects best-effort admission outright
	// (429 with a Retry-After), throttles standard buckets, and tightens
	// the array's admission depth.
	ShedBestEffort
	// ShedStandard additionally rejects standard admission; only premium
	// traffic still reaches the array.
	ShedStandard
	// NumLevels sizes the ladder.
	NumLevels
)

func (l Level) String() string {
	switch l {
	case Normal:
		return "normal"
	case DegradeBackground:
		return "background-deferred"
	case ShedBestEffort:
		return "best-effort-shed"
	case ShedStandard:
		return "standard-shed"
	default:
		return fmt.Sprintf("slo.Level(%d)", uint8(l))
	}
}

// Actuators bounds what each brownout level may do to the system. The
// zero value selects the documented defaults.
type Actuators struct {
	// BackgroundMBps is the pacing floor applied to scrub, rebuild, and
	// recovery-scan bandwidth at DegradeBackground and above (existing
	// pacing below the floor is kept). 0 means 1 MB/s.
	BackgroundMBps float64
	// HedgeAfter, when positive, pins the hedged-read delay during
	// brownout — hedging earlier trades extra load for tail latency,
	// which is the right trade once background work has stepped aside.
	// 0 leaves the configured delay alone.
	HedgeAfter des.Time
	// ThrottleScale multiplies the token-bucket refill rate of throttled
	// tiers (best-effort from DegradeBackground, standard from
	// ShedBestEffort). 0 means 0.5; values >= 1 disable throttling.
	ThrottleScale float64
	// DepthFactor scales MaxQueueDepth at ShedBestEffort and above so
	// queueing delay shrinks for the traffic still admitted. 0 means 0.5
	// (floor 1); negative leaves the depth alone. Ignored when admission
	// control is off.
	DepthFactor float64
}

// Options configures a Controller. The zero value of any field selects
// the default documented on it.
type Options struct {
	// Window is the evaluation window on the virtual clock. Default
	// 100 ms.
	Window des.Time
	// Targets is the per-tier p99 target; 0 leaves a tier unjudged (it is
	// still classified and shed by the ladder, it just contributes no
	// violation evidence).
	Targets [NumTiers]des.Time
	// ViolateWindows is how many consecutive violating windows escalate
	// one level. Default 3.
	ViolateWindows int
	// RecoverWindows is how many consecutive compliant windows
	// de-escalate one level. Default 4.
	RecoverWindows int
	// MinSamples is the fewest completions a tier needs in a window to be
	// judged; windows without evidence count as compliant. Default 8.
	MinSamples int
	// MaxLevel caps the ladder. Default ShedStandard (the full ladder).
	MaxLevel Level
	// ShedRetryAfter is the virtual Retry-After quoted on brownout
	// rejections. Default one Window.
	ShedRetryAfter des.Time
	// Classify maps a tenant to its tier; nil classifies everyone
	// Standard.
	Classify func(tenant string) Tier
	// Actuators bounds the per-level degradations.
	Actuators Actuators
}

// Validate rejects options the controller cannot run with.
func (o Options) Validate() error {
	if o.Window < 0 || o.ShedRetryAfter < 0 || o.Actuators.HedgeAfter < 0 {
		return fmt.Errorf("slo: negative duration in options")
	}
	for t, tgt := range o.Targets {
		if tgt < 0 {
			return fmt.Errorf("slo: negative p99 target %v for tier %v", tgt, Tier(t))
		}
	}
	if o.ViolateWindows < 0 || o.RecoverWindows < 0 || o.MinSamples < 0 {
		return fmt.Errorf("slo: negative hysteresis count in options")
	}
	if o.MaxLevel >= NumLevels {
		return fmt.Errorf("slo: max level %d beyond ladder (max %d)", o.MaxLevel, NumLevels-1)
	}
	if o.Actuators.BackgroundMBps < 0 {
		return fmt.Errorf("slo: negative background floor %v", o.Actuators.BackgroundMBps)
	}
	if o.Actuators.ThrottleScale < 0 {
		return fmt.Errorf("slo: negative throttle scale %v", o.Actuators.ThrottleScale)
	}
	return nil
}

func (o Options) window() des.Time {
	if o.Window == 0 {
		return 100 * des.Millisecond
	}
	return o.Window
}

func (o Options) violateWindows() int {
	if o.ViolateWindows == 0 {
		return 3
	}
	return o.ViolateWindows
}

func (o Options) recoverWindows() int {
	if o.RecoverWindows == 0 {
		return 4
	}
	return o.RecoverWindows
}

func (o Options) minSamples() int {
	if o.MinSamples == 0 {
		return 8
	}
	return o.MinSamples
}

func (o Options) maxLevel() Level {
	if o.MaxLevel == 0 {
		return ShedStandard
	}
	return o.MaxLevel
}

func (o Options) shedRetryAfter() des.Time {
	if o.ShedRetryAfter == 0 {
		return o.window()
	}
	return o.ShedRetryAfter
}

func (a Actuators) backgroundMBps() float64 {
	if a.BackgroundMBps == 0 {
		return 1
	}
	return a.BackgroundMBps
}

func (a Actuators) throttleScale() float64 {
	if a.ThrottleScale == 0 {
		return 0.5
	}
	return a.ThrottleScale
}

func (a Actuators) depthFactor() float64 {
	if a.DepthFactor == 0 {
		return 0.5
	}
	return a.DepthFactor
}
