package slo

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/obs"
)

// Controller is the control loop. It buckets completions into fixed
// windows of virtual time, judges each closed window against the per-tier
// p99 targets, walks the brownout ladder with hysteresis, and steps the
// volume's actuators through core.Volume.SetTuning.
//
// A nil *Controller is valid and inert: Admit always admits, RateScale is
// 1, Observe is a no-op — callers need no enabled-flag branches.
type Controller struct {
	vol  core.Volume
	opts Options

	// base is the tuning captured at attach; brownout levels derive their
	// clamps from it and Normal restores it exactly.
	base core.Tuning

	level      Level
	winIdx     int64
	started    bool
	violStreak int
	okStreak   int

	// lats holds the current window's completion latencies per tier;
	// failures are recorded as +Inf so an outage reads as a p99 violation.
	lats [NumTiers][]des.Time
	// dist accumulates the whole-run latency distribution per tier for
	// State (failures recorded as one virtual hour, the histogram's
	// effective overflow).
	dist [NumTiers]obs.Hist

	ctr         counters
	transitions []Transition
}

type counters struct {
	windows        int64
	judged         int64
	violations     int64
	escalations    int64
	deescalations  int64
	tierViolations [NumTiers]int64
	observed       [NumTiers]int64
	failures       [NumTiers]int64
	sheds          [NumTiers]int64
}

// Transition records one ladder move, stamped with the virtual end time
// of the window that triggered it.
type Transition struct {
	At   des.Time `json:"at_us"`
	From Level    `json:"-"`
	To   Level    `json:"-"`
}

// New attaches a controller to vol. The volume's current tuning becomes
// the Normal baseline that recovery restores.
func New(vol core.Volume, opts Options) (*Controller, error) {
	if vol == nil {
		return nil, fmt.Errorf("slo: nil volume")
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	return &Controller{vol: vol, opts: opts, base: vol.Tuning()}, nil
}

// Tier classifies a tenant via Options.Classify (Standard when nil).
func (c *Controller) Tier(tenant string) Tier {
	if c == nil || c.opts.Classify == nil {
		return Standard
	}
	t := c.opts.Classify(tenant)
	if t >= NumTiers {
		t = Standard
	}
	return t
}

// Level reports the current brownout level.
func (c *Controller) Level() Level {
	if c == nil {
		return Normal
	}
	return c.level
}

// Admit decides whether tenant's request may proceed at virtual time now.
// A false return means the request is shed by the brownout ladder; the
// returned duration is the Retry-After hint to quote.
func (c *Controller) Admit(now des.Time, tenant string) (des.Time, bool) {
	if c == nil {
		return 0, true
	}
	c.advance(now)
	tier := c.Tier(tenant)
	shed := false
	switch tier {
	case BestEffort:
		shed = c.level >= ShedBestEffort
	case Standard:
		shed = c.level >= ShedStandard
	}
	if shed {
		c.ctr.sheds[tier]++
		return c.opts.shedRetryAfter(), false
	}
	return 0, true
}

// RateScale is the multiplier the gateway applies to tenant's token-bucket
// refill rate: 1 at Normal, Actuators.ThrottleScale for best-effort from
// DegradeBackground and for standard from ShedBestEffort.
func (c *Controller) RateScale(tenant string) float64 {
	if c == nil || c.level == Normal {
		return 1
	}
	s := c.opts.Actuators.throttleScale()
	if s >= 1 {
		return 1
	}
	switch c.Tier(tenant) {
	case BestEffort:
		return s
	case Standard:
		if c.level >= ShedBestEffort {
			return s
		}
	}
	return 1
}

// Observe records one completed request for tenant: lat is its service
// latency, failed marks 5xx-class outcomes (recorded as +Inf latency so
// failures count against the target).
func (c *Controller) Observe(now des.Time, tenant string, lat des.Time, failed bool) {
	if c == nil {
		return
	}
	c.advance(now)
	tier := c.Tier(tenant)
	c.ctr.observed[tier]++
	if failed {
		c.ctr.failures[tier]++
		lat = des.Time(math.Inf(1))
		c.dist[tier].Observe(des.Hour)
	} else {
		c.dist[tier].Observe(lat)
	}
	c.lats[tier] = append(c.lats[tier], lat)
}

// advance lazily closes every window that ended before now. The first
// event anchors the window grid; long empty gaps at Normal fast-forward
// in one step so idle volumes cost nothing.
func (c *Controller) advance(now des.Time) {
	idx := int64(now / c.opts.window())
	if !c.started {
		c.started = true
		c.winIdx = idx
		return
	}
	for c.winIdx < idx {
		if c.level == Normal && c.violStreak == 0 && c.empty() {
			// Nothing buffered and nothing to recover from: every
			// remaining window is trivially compliant.
			c.ctr.windows += idx - c.winIdx
			c.okStreak += int(idx - c.winIdx)
			c.winIdx = idx
			return
		}
		c.closeWindow()
		c.winIdx++
	}
}

func (c *Controller) empty() bool {
	for t := range c.lats {
		if len(c.lats[t]) > 0 {
			return false
		}
	}
	return true
}

// closeWindow judges window c.winIdx and walks the ladder.
func (c *Controller) closeWindow() {
	violating, judged := false, false
	for t := range c.lats {
		target := c.opts.Targets[t]
		if target > 0 && len(c.lats[t]) >= c.opts.minSamples() {
			judged = true
			if p99(c.lats[t]) > target {
				violating = true
				c.ctr.tierViolations[t]++
			}
		}
		c.lats[t] = c.lats[t][:0]
	}
	c.ctr.windows++
	if judged {
		c.ctr.judged++
	}
	end := des.Time(c.winIdx+1) * c.opts.window()
	if violating {
		c.ctr.violations++
		c.violStreak++
		c.okStreak = 0
		if c.violStreak >= c.opts.violateWindows() && c.level < c.opts.maxLevel() {
			c.step(end, c.level+1)
			c.ctr.escalations++
			c.violStreak = 0
		}
	} else {
		c.okStreak++
		c.violStreak = 0
		if c.okStreak >= c.opts.recoverWindows() && c.level > Normal {
			c.step(end, c.level-1)
			c.ctr.deescalations++
			c.okStreak = 0
		}
	}
	if c.level > Normal {
		// Re-assert the clamps every window: chaos events (a scrub pass
		// armed mid-brownout, a recovery scan started by Recover) create
		// fresh pacing state the last apply never saw.
		c.apply()
	}
}

func (c *Controller) step(at des.Time, to Level) {
	c.transitions = append(c.transitions, Transition{At: at, From: c.level, To: to})
	c.level = to
	c.apply()
}

// apply derives the tuning for the current level from the attach-time
// baseline and installs it. Derivations only ever tighten relative to
// base, so Normal restores base exactly.
func (c *Controller) apply() {
	t := c.base
	if c.level >= DegradeBackground {
		floor := c.opts.Actuators.backgroundMBps()
		t.RebuildMBps = clampMBps(c.base.RebuildMBps, floor, 8)
		t.ScrubMBps = clampMBps(c.base.ScrubMBps, floor, core.DefaultScrubMBps)
		t.RecoveryScanMBps = clampMBps(c.base.RecoveryScanMBps, floor, core.DefaultRecoveryScanMBps)
		if ha := c.opts.Actuators.HedgeAfter; ha > 0 {
			t.HedgeAfter = ha
		}
	}
	if c.level >= ShedBestEffort && c.base.MaxQueueDepth > 0 {
		if df := c.opts.Actuators.depthFactor(); df > 0 {
			d := int(float64(c.base.MaxQueueDepth)*df + 0.5)
			if d < 1 {
				d = 1
			}
			if d < t.MaxQueueDepth {
				t.MaxQueueDepth = d
			}
		}
	}
	if err := c.vol.SetTuning(t); err != nil {
		// Every field is a clamp of values SetTuning already accepted.
		panic(fmt.Sprintf("slo: apply rejected: %v", err))
	}
}

// clampMBps lowers a configured pacing rate to floor. A configured 0
// means "the default def at next start", so it clamps as def does.
func clampMBps(configured, floor, def float64) float64 {
	cur := configured
	if cur == 0 {
		cur = def
	}
	if cur < floor {
		return cur
	}
	return floor
}

// p99 computes the same nearest-rank percentile the load generator and
// observability windows use.
func p99(lats []des.Time) des.Time {
	s := append([]des.Time(nil), lats...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	k := (len(s)*99 + 99) / 100
	if k < 1 {
		k = 1
	}
	if k > len(s) {
		k = len(s)
	}
	return s[k-1]
}

// TierCounters is the per-tier slice of a State snapshot. MeanUS and
// P99US summarize the whole-run latency distribution (obs.Hist buckets,
// so P99US is the conservative bucket upper bound).
type TierCounters struct {
	Observed   int64   `json:"observed"`
	Failures   int64   `json:"failures"`
	Violations int64   `json:"violations"`
	Sheds      int64   `json:"sheds"`
	MeanUS     float64 `json:"mean_us"`
	P99US      int64   `json:"p99_us"`
}

// State is a deterministic snapshot of the controller for /v1/stats and
// experiment digests.
type State struct {
	Level          string                 `json:"level"`
	LevelIndex     int                    `json:"level_index"`
	ViolateStreak  int                    `json:"violate_streak"`
	OKStreak       int                    `json:"ok_streak"`
	Windows        int64                  `json:"windows"`
	Judged         int64                  `json:"judged"`
	Violations     int64                  `json:"violations"`
	Escalations    int64                  `json:"escalations"`
	Deescalations  int64                  `json:"deescalations"`
	Tiers          [NumTiers]TierCounters `json:"tiers"`
	TransitionsLog string                 `json:"transitions"`
}

// State snapshots the controller. Safe on a nil controller (zero State).
func (c *Controller) State() State {
	if c == nil {
		return State{Level: Normal.String()}
	}
	s := State{
		Level:         c.level.String(),
		LevelIndex:    int(c.level),
		ViolateStreak: c.violStreak,
		OKStreak:      c.okStreak,
		Windows:       c.ctr.windows,
		Judged:        c.ctr.judged,
		Violations:    c.ctr.violations,
		Escalations:   c.ctr.escalations,
		Deescalations: c.ctr.deescalations,
	}
	for t := range s.Tiers {
		s.Tiers[t] = TierCounters{
			Observed:   c.ctr.observed[t],
			Failures:   c.ctr.failures[t],
			Violations: c.ctr.tierViolations[t],
			Sheds:      c.ctr.sheds[t],
			MeanUS:     c.dist[t].MeanUS(),
			P99US:      c.dist[t].QuantileUS(0.99),
		}
	}
	var b strings.Builder
	for i, tr := range c.transitions {
		if i == 32 {
			fmt.Fprintf(&b, " …+%d", len(c.transitions)-i)
			break
		}
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%.0f:%s→%s", float64(tr.At), tr.From, tr.To)
	}
	s.TransitionsLog = b.String()
	return s
}

// String renders the snapshot compactly for digests and logs.
func (s State) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "level=%s windows=%d judged=%d viol=%d esc=%d deesc=%d",
		s.Level, s.Windows, s.Judged, s.Violations, s.Escalations, s.Deescalations)
	for t := Tier(0); t < NumTiers; t++ {
		tc := s.Tiers[t]
		fmt.Fprintf(&b, " %s[obs=%d fail=%d viol=%d shed=%d p99us=%d]",
			t, tc.Observed, tc.Failures, tc.Violations, tc.Sheds, tc.P99US)
	}
	if s.TransitionsLog != "" {
		fmt.Fprintf(&b, " transitions[%s]", s.TransitionsLog)
	}
	return b.String()
}
