// Package bus models the host-visible interface to a drive: LBA-addressed
// commands submitted one at a time, with completion callbacks delivered
// through the simulation kernel.
//
// A Drive runs in one of two modes, mirroring the paper's prototype
// architecture (Figure 4):
//
//   - Simulator mode: command overheads are fixed and the host may query
//     exact mechanical timing. This is the paper's integrated simulator.
//   - Prototype mode: every command pays a stochastic OS + SCSI overhead
//     before and after the mechanical service, the spindle speed is offset
//     from nominal, and the host sees only noisy completion timestamps. The
//     calibration layer (package calib) must estimate rotational position
//     through this noise, exactly as the real MimdRAID driver did.
package bus

import (
	"fmt"
	"math/rand"

	"repro/internal/des"
	"repro/internal/disk"
)

// Op is a command opcode.
type Op int

const (
	OpRead Op = iota
	OpWrite
)

func (o Op) String() string {
	if o == OpWrite {
		return "write"
	}
	return "read"
}

// Command is one LBA-addressed transfer.
type Command struct {
	Op    Op
	LBA   int64
	Count int // sectors
}

// Completion reports a finished command. Observed is the host-visible
// completion timestamp (includes completion-side overhead and, in
// prototype mode, jitter). Mechanical timing fields are the ground truth
// the simulator knows; prototype-mode hosts must not use them for
// scheduling (the calibration layer exists to estimate them) but tests and
// accuracy reports may.
type Completion struct {
	Cmd       Command
	Submitted des.Time // when Submit was called
	Observed  des.Time // host-visible completion time

	// Fault is non-zero when the command did not transfer its data: a
	// transient medium error (full mechanical service, failed transfer) or
	// a command timeout (no mechanical service at all). The host decides
	// whether to retry, fail over to another copy, or give up.
	Fault disk.FaultKind

	// Latent, Corrupt, and Torn mark silent corruption injected on an
	// otherwise successful completion — OK() stays true and the host's
	// driver sees nothing wrong; only an end-to-end integrity check above
	// the bus can notice. Latent: the media under a read has rotted and the
	// returned data is garbage (persists until rewritten). Corrupt: the
	// transfer path garbled this read once (the media is fine). Torn: a
	// write reported success but the copy on the platter is garbage.
	Latent  bool
	Corrupt bool
	Torn    bool

	// SlowBy is the extra service time a fail-slow drive added to this
	// command (zero on healthy drives); Stutter reports that a stutter
	// window — rather than only the drive's persistent inflation —
	// contributed. Upper layers use these to attribute tail latency to the
	// drive rather than to queueing.
	SlowBy  des.Time
	Stutter bool

	// Ground truth, for validation only in prototype mode.
	MechStart des.Time // when the mechanism began positioning
	MechDone  des.Time // when the last sector left the media
	Timing    disk.Timing
	ArmAfter  disk.State
}

// OK reports a clean, fault-free completion.
func (c Completion) OK() bool { return c.Fault == disk.FaultNone }

// ServiceTime is the host-observable service duration.
func (c Completion) ServiceTime() des.Time { return c.Observed - c.Submitted }

// NoiseModel parameterizes prototype-mode command overheads. Pre covers
// host submit path + command decode (before the mechanism moves); Post
// covers completion interrupt + status delivery. Jitter values are means of
// exponential components; outliers model rare scheduling glitches.
type NoiseModel struct {
	PreBase     des.Time
	PreJitter   des.Time
	PostBase    des.Time
	PostJitter  des.Time
	OutlierProb float64
	OutlierMean des.Time
}

// DefaultNoise returns overheads representative of the paper's Windows
// 2000 + Adaptec 39160 platform: a couple hundred microseconds of fixed
// path length, tens of microseconds of jitter, and rare millisecond-scale
// outliers.
func DefaultNoise() NoiseModel {
	return NoiseModel{
		PreBase:     120 * des.Microsecond,
		PreJitter:   15 * des.Microsecond,
		PostBase:    90 * des.Microsecond,
		PostJitter:  20 * des.Microsecond,
		OutlierProb: 0.001,
		OutlierMean: 1500 * des.Microsecond,
	}
}

func (n NoiseModel) draw(rng *rand.Rand, base, jitter des.Time) des.Time {
	d := base + des.Time(rng.ExpFloat64()*float64(jitter))
	if n.OutlierProb > 0 && rng.Float64() < n.OutlierProb {
		d += des.Time(rng.ExpFloat64() * float64(n.OutlierMean))
	}
	return d
}

// Drive is one disk behind the bus. By default it services a single
// command at a time — queueing and scheduling are the host's job (the
// paper's drive queues live in the array layer). With EnableTCQ it
// accepts up to a depth of tagged commands and schedules them internally
// by shortest access time, the "intelligent internal scheduling" of
// firmware like the HP C2490A that the paper's related-work section
// discusses: the drive knows its own mechanics exactly, but it cannot
// choose among inter-disk or rotational replicas — that knowledge lives
// in the host.
type Drive struct {
	Name string

	sim   *des.Sim
	dsk   *disk.Disk
	noise *NoiseModel // nil in simulator mode
	rng   *rand.Rand

	// CmdOverhead is the fixed controller cost per command in simulator
	// mode (prototype mode replaces it with the noise model).
	CmdOverhead des.Time
	// XferRate is the bus transfer rate in bytes per microsecond
	// (160 MB/s ≈ 167.8 B/us).
	XferRate float64

	arm  disk.State
	busy bool

	// faults injects per-command transient errors and timeouts; nil (the
	// default) means the drive never misbehaves.
	faults *disk.FaultInjector
	// slow inflates mechanical service times (fail-slow drive); nil (the
	// default) means the drive runs at full speed.
	slow *disk.SlowState
	// corrupt injects silent corruption (latent errors, path corruption,
	// torn writes); nil (the default) means data is always faithful.
	corrupt *disk.CorruptionInjector

	// Tagged command queueing.
	tcqDepth int
	tcq      []tcqEntry

	// freePending recycles completion-event carriers; inflight is the
	// carrier of the command currently on the mechanism (nil when idle),
	// kept so PowerFail can tear it.
	freePending *pending
	inflight    *pending

	// Stats
	Commands int64
	BusyTime des.Time
}

type tcqEntry struct {
	cmd   Command
	h     CompletionHandler
	token uint64
}

// CompletionHandler receives completions without a per-command closure: an
// implementation is a long-lived (typically pooled) request context, and
// the token — echoed back verbatim — lets one handler serve many
// outstanding commands. This is the allocation-free submission form; the
// closure-based Submit wraps it.
type CompletionHandler interface {
	OnCompletion(token uint64, comp Completion)
}

// funcHandler adapts a closure to CompletionHandler for the compat Submit
// path (costs an interface-boxing allocation per call; hot paths use
// SubmitHandled directly).
type funcHandler struct{ fn func(Completion) }

func (h funcHandler) OnCompletion(_ uint64, c Completion) { h.fn(c) }

// pending is a pooled in-flight completion event: one per command, recycled
// through the drive's free list the moment it fires, so steady-state
// submission schedules zero allocations.
type pending struct {
	d     *Drive
	h     CompletionHandler
	token uint64
	comp  Completion
	// dead marks a completion event orphaned by a power failure: the DES
	// heap still holds it, so firePending recycles the carrier without
	// touching the drive or delivering anything.
	dead bool
	next *pending
}

func (d *Drive) getPending() *pending {
	p := d.freePending
	if p == nil {
		return &pending{d: d}
	}
	d.freePending = p.next
	p.next = nil
	return p
}

// firePending is the single long-lived event function for every drive
// completion (scheduled with des.Sim.AtArg). Order matters and mirrors the
// original closure: release the mechanism, account busy time, start the
// next tagged command, then deliver the completion — so the handler
// observes the drive already advanced, exactly as before.
func firePending(a any) {
	p := a.(*pending)
	d := p.d
	if p.dead {
		p.dead = false
		p.h = nil
		p.comp = Completion{}
		p.next = d.freePending
		d.freePending = p
		return
	}
	comp := p.comp
	h, token := p.h, p.token
	d.inflight = nil
	d.arm = comp.ArmAfter
	d.busy = false
	d.BusyTime += comp.Observed - comp.Submitted
	if len(d.tcq) > 0 {
		next := d.pickTCQ()
		d.start(next.cmd, next.h, next.token)
	}
	p.h = nil
	p.comp = Completion{}
	p.next = d.freePending
	d.freePending = p
	h.OnCompletion(token, comp)
}

const defaultXferRate = 160e6 / 1e6 // 160 MB/s in bytes per microsecond

// NewSim returns a drive in simulator mode.
func NewSim(sim *des.Sim, dsk *disk.Disk) *Drive {
	return &Drive{
		Name:        dsk.Name,
		sim:         sim,
		dsk:         dsk,
		CmdOverhead: 150 * des.Microsecond,
		XferRate:    defaultXferRate,
	}
}

// NewPrototype returns a drive in prototype mode with the given noise
// model and seed. Callers typically also build the disk with a nonzero
// RSkew and random Phase so that rotation must genuinely be estimated.
func NewPrototype(sim *des.Sim, dsk *disk.Disk, noise NoiseModel, seed int64) *Drive {
	return &Drive{
		Name:     dsk.Name,
		sim:      sim,
		dsk:      dsk,
		noise:    &noise,
		rng:      rand.New(rand.NewSource(seed)),
		XferRate: defaultXferRate,
	}
}

// Prototype reports whether the drive hides its mechanics behind noise.
func (d *Drive) Prototype() bool { return d.noise != nil }

// Geometry exposes the drive's layout. The real prototype obtained this via
// Worthington-style extraction (see calib.ExtractGeometry, which recovers
// it from timing probes); the array layer consumes it directly.
func (d *Drive) Geometry() *disk.Geometry { return d.dsk.Geom }

// Disk exposes the full mechanical model. Only simulator-mode components
// and validation code may call this; prototype-mode scheduling must go
// through a calibrated estimator.
func (d *Drive) Disk() *disk.Disk { return d.dsk }

// ArmState returns the last known arm position. The host can track this in
// both modes because it chooses every target; rotational position is what
// prototype mode hides.
func (d *Drive) ArmState() disk.State { return d.arm }

// Busy reports whether a command is in flight.
func (d *Drive) Busy() bool { return d.busy }

// SetFaults attaches a fault injector (nil disables injection). Attach
// before submitting commands so the draw sequence is reproducible.
func (d *Drive) SetFaults(fi *disk.FaultInjector) { d.faults = fi }

// SetSlow attaches a fail-slow state (nil keeps the drive at full speed).
// Attach before submitting commands so the stutter stream is reproducible.
func (d *Drive) SetSlow(s *disk.SlowState) { d.slow = s }

// Slow returns the drive's fail-slow state, nil when healthy.
func (d *Drive) Slow() *disk.SlowState { return d.slow }

// SetCorruption attaches a silent-corruption injector (nil keeps data
// faithful). Attach before submitting commands so the draw sequence is
// reproducible.
func (d *Drive) SetCorruption(ci *disk.CorruptionInjector) { d.corrupt = ci }

// EnableTCQ turns on tagged command queueing with the given depth.
func (d *Drive) EnableTCQ(depth int) {
	if depth < 1 {
		panic("bus: TCQ depth must be at least 1")
	}
	d.tcqDepth = depth
}

// Free reports how many more commands the drive accepts right now: the
// remaining tag slots under TCQ, or one-if-idle without it.
func (d *Drive) Free() int {
	if d.tcqDepth == 0 {
		if d.busy {
			return 0
		}
		return 1
	}
	used := len(d.tcq)
	if d.busy {
		used++
	}
	if used >= d.tcqDepth {
		return 0
	}
	return d.tcqDepth - used
}

// Idle reports that nothing is in flight or queued inside the drive.
func (d *Drive) Idle() bool { return !d.busy && len(d.tcq) == 0 }

// pickTCQ removes and returns the queued command with the shortest access
// time from the current arm state — the drive's firmware scheduler, which
// has perfect knowledge of its own mechanics.
func (d *Drive) pickTCQ() tcqEntry {
	best, bestT := 0, des.Time(0)
	for i, e := range d.tcq {
		t, err := d.dsk.AccessTime(d.arm, physOf(d.dsk, e.cmd), d.sim.Now())
		if err != nil {
			panic(err)
		}
		if i == 0 || t < bestT {
			best, bestT = i, t
		}
	}
	e := d.tcq[best]
	d.tcq = append(d.tcq[:best], d.tcq[best+1:]...)
	return e
}

func physOf(dsk *disk.Disk, cmd Command) disk.Request {
	p, err := dsk.Geom.LBAToPhys(cmd.LBA)
	if err != nil {
		panic(err)
	}
	return disk.Request{Start: p, Count: cmd.Count, Write: cmd.Op == OpWrite}
}

// Submit starts a command. Without TCQ the drive must be idle — the host
// owns queueing. With TCQ, commands beyond the one in flight are accepted
// into the drive's internal queue (up to the tag depth) and scheduled by
// the firmware. done is invoked through the simulator at the
// host-observed completion time.
func (d *Drive) Submit(cmd Command, done func(Completion)) {
	d.SubmitHandled(cmd, funcHandler{done}, 0)
}

// SubmitHandled is Submit with a pre-bound handler and context token in
// place of a closure: the hot-path form, which allocates nothing per
// command. Semantics are otherwise identical to Submit.
func (d *Drive) SubmitHandled(cmd Command, h CompletionHandler, token uint64) {
	if cmd.Count <= 0 {
		panic(fmt.Sprintf("bus: command with count %d", cmd.Count))
	}
	if d.busy {
		if d.Free() == 0 {
			panic(fmt.Sprintf("bus: Submit on busy drive %s with no free tags", d.Name))
		}
		d.tcq = append(d.tcq, tcqEntry{cmd: cmd, h: h, token: token})
		return
	}
	d.start(cmd, h, token)
}

// start runs one command on the idle mechanism.
func (d *Drive) start(cmd Command, h CompletionHandler, token uint64) {
	d.busy = true
	d.Commands++
	now := d.sim.Now()

	var fault disk.FaultKind
	if d.faults != nil {
		fault = d.faults.Draw()
	}
	// The corruption stream draws once per command unconditionally, so
	// which commands corrupt is independent of which ones fault; a faulted
	// command transfers nothing and its draw is discarded.
	var latent, corrupt, torn bool
	if d.corrupt != nil {
		latent, corrupt, torn = d.corrupt.Draw(cmd.Op == OpWrite)
		if fault != disk.FaultNone {
			latent, corrupt, torn = false, false, false
		}
	}
	if fault == disk.FaultTimeout {
		// The command dies inside the drive: no mechanical service, no arm
		// movement. The host learns of the loss only when its command timer
		// expires, which is when the drive becomes usable again (the real
		// recovery would be an abort/reset cycle).
		observed := now + d.faults.Model().Timeout()
		p := d.getPending()
		p.h, p.token = h, token
		// ArmAfter = the unmoved arm: firePending's unconditional arm update
		// is a no-op here, as the mechanism never serviced anything.
		p.comp = Completion{Cmd: cmd, Submitted: now, Observed: observed, Fault: fault, ArmAfter: d.arm}
		d.inflight = p
		d.sim.AtArg(observed, firePending, p)
		return
	}

	var pre, post des.Time
	if d.noise != nil {
		pre = d.noise.draw(d.rng, d.noise.PreBase, d.noise.PreJitter)
		post = d.noise.draw(d.rng, d.noise.PostBase, d.noise.PostJitter)
	} else {
		pre = d.CmdOverhead / 2
		post = d.CmdOverhead / 2
	}
	// Bus transfer overlaps with media transfer on reads of more than one
	// sector; model it as an additive tail for the final sector's worth.
	xfer := des.Time(float64(disk.SectorSize) / d.XferRate)

	mechStart := now + pre
	tm, err := d.dsk.ServiceLBA(d.arm, cmd.LBA, cmd.Count, cmd.Op == OpWrite, mechStart)
	if err != nil {
		panic(fmt.Sprintf("bus: %s: %v", d.Name, err))
	}
	// A fail-slow drive stretches the mechanical service (internal retries,
	// re-reads, firmware stalls); the host sees only the later completion.
	var slowBy des.Time
	var stutter bool
	if d.slow != nil {
		slowBy, stutter = d.slow.Inflate(mechStart, tm.Done-mechStart)
	}
	observed := tm.Done + slowBy + xfer + post
	p := d.getPending()
	p.h, p.token = h, token
	p.comp = Completion{
		Cmd:       cmd,
		Submitted: now,
		Observed:  observed,
		Fault:     fault, // FaultNone or FaultTransient (full service, bad transfer)
		Latent:    latent,
		Corrupt:   corrupt,
		Torn:      torn,
		SlowBy:    slowBy,
		Stutter:   stutter,
		MechStart: mechStart,
		MechDone:  tm.Done,
		Timing:    tm,
		ArmAfter:  tm.End,
	}
	d.inflight = p
	d.sim.AtArg(observed, firePending, p)
}

// PowerFail models an instantaneous power loss: the command on the
// mechanism is abandoned mid-transfer (a write in flight leaves garbage on
// the platter — the torn-write outcome) and the drive's internal tag queue
// is dropped. visit is called for the in-flight command first (inFlight
// true), then for each queued tagged command in queue order (inFlight
// false), so the host can resolve its own bookkeeping for every command
// the drive will never complete. The already-scheduled completion event is
// orphaned, not delivered. After PowerFail the drive is idle and accepts
// commands again as soon as the host chooses to restart it.
func (d *Drive) PowerFail(visit func(cmd Command, h CompletionHandler, token uint64, inFlight bool)) {
	if p := d.inflight; p != nil {
		p.dead = true
		d.inflight = nil
		d.busy = false
		// The mechanism stops wherever the interrupted service would have
		// left it — deterministic, and harmless to the recovery model.
		d.arm = p.comp.ArmAfter
		visit(p.comp.Cmd, p.h, p.token, true)
	}
	for _, e := range d.tcq {
		visit(e.cmd, e.h, e.token, false)
	}
	d.tcq = d.tcq[:0]
}
