package bus

import (
	"testing"

	"repro/internal/des"
	"repro/internal/disk"
)

func simDrive(t testing.TB) (*des.Sim, *Drive) {
	t.Helper()
	sim := des.New()
	return sim, NewSim(sim, disk.ST39133LWV().MustNew())
}

func TestSubmitCompletes(t *testing.T) {
	sim, drv := simDrive(t)
	var comp Completion
	done := false
	drv.Submit(Command{Op: OpRead, LBA: 12345, Count: 8}, func(c Completion) {
		comp = c
		done = true
	})
	if !drv.Busy() {
		t.Fatal("drive not busy after Submit")
	}
	sim.Run()
	if !done {
		t.Fatal("completion never fired")
	}
	if drv.Busy() {
		t.Fatal("drive still busy after completion")
	}
	if comp.Observed <= comp.Submitted {
		t.Fatal("non-positive service time")
	}
	if comp.ServiceTime() > 25000 {
		t.Fatalf("service %v implausibly long", comp.ServiceTime())
	}
	if drv.Commands != 1 {
		t.Fatalf("Commands = %d", drv.Commands)
	}
}

func TestSubmitWhileBusyPanics(t *testing.T) {
	_, drv := simDrive(t)
	drv.Submit(Command{Op: OpRead, LBA: 0, Count: 1}, func(Completion) {})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double Submit")
		}
	}()
	drv.Submit(Command{Op: OpRead, LBA: 1, Count: 1}, func(Completion) {})
}

func TestBadCountPanics(t *testing.T) {
	_, drv := simDrive(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on zero count")
		}
	}()
	drv.Submit(Command{Op: OpRead, LBA: 0, Count: 0}, func(Completion) {})
}

func TestArmStateTracksCompletions(t *testing.T) {
	sim, drv := simDrive(t)
	lba := int64(1 << 22)
	want, err := drv.Geometry().LBAToPhys(lba + 7)
	if err != nil {
		t.Fatal(err)
	}
	drv.Submit(Command{Op: OpRead, LBA: lba, Count: 8}, func(Completion) {})
	sim.Run()
	if got := drv.ArmState().Cyl; got != want.Cyl {
		t.Fatalf("arm at cylinder %d, want %d", got, want.Cyl)
	}
}

func TestPrototypeDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) des.Time {
		sim := des.New()
		drv := NewPrototype(sim, disk.ST39133LWV().MustNew(), DefaultNoise(), seed)
		var total des.Time
		for i := 0; i < 20; i++ {
			done := false
			drv.Submit(Command{Op: OpRead, LBA: int64(i) * 9973, Count: 4}, func(c Completion) {
				total += c.ServiceTime()
				done = true
			})
			for !done {
				sim.Step()
			}
		}
		return total
	}
	if a, b := run(5), run(5); a != b {
		t.Fatalf("same seed, different timing: %v vs %v", a, b)
	}
	if a, b := run(5), run(6); a == b {
		t.Fatal("different seeds produced identical noise")
	}
}

func TestPrototypeAddsOverheadOverSimMode(t *testing.T) {
	// The same command stream should take longer on average in prototype
	// mode (jittered overheads exceed the fixed CmdOverhead).
	mean := func(proto bool) des.Time {
		sim := des.New()
		var drv *Drive
		d := disk.ST39133LWV().MustNew()
		if proto {
			drv = NewPrototype(sim, d, DefaultNoise(), 1)
		} else {
			drv = NewSim(sim, d)
		}
		var total des.Time
		const n = 200
		for i := 0; i < n; i++ {
			done := false
			drv.Submit(Command{Op: OpRead, LBA: int64(i*7919) % d.Geom.TotalSectors(), Count: 1}, func(c Completion) {
				total += c.ServiceTime()
				done = true
			})
			for !done {
				sim.Step()
			}
		}
		return total / n
	}
	simMean := mean(false)
	protoMean := mean(true)
	if protoMean <= simMean {
		t.Fatalf("prototype mean %v not above simulator mean %v", protoMean, simMean)
	}
}

func TestWriteSlowerThanReadOnAverage(t *testing.T) {
	sim, drv := simDrive(t)
	measure := func(op Op) des.Time {
		var total des.Time
		const n = 300
		for i := 0; i < n; i++ {
			done := false
			drv.Submit(Command{Op: op, LBA: int64(i*104729) % drv.Geometry().TotalSectors(), Count: 1}, func(c Completion) {
				total += c.ServiceTime()
				done = true
			})
			for !done {
				sim.Step()
			}
		}
		return total / n
	}
	r := measure(OpRead)
	w := measure(OpWrite)
	if w <= r {
		t.Fatalf("write mean %v not above read mean %v (settle time missing?)", w, r)
	}
}

func TestCompletionGroundTruthConsistent(t *testing.T) {
	sim, drv := simDrive(t)
	var comp Completion
	drv.Submit(Command{Op: OpRead, LBA: 999, Count: 4}, func(c Completion) { comp = c })
	sim.Run()
	if comp.MechStart < comp.Submitted || comp.MechDone < comp.MechStart || comp.Observed < comp.MechDone {
		t.Fatalf("inconsistent timeline: %+v", comp)
	}
	if comp.Timing.Done != comp.MechDone {
		t.Fatal("Timing.Done disagrees with MechDone")
	}
}

func TestTCQInternalScheduling(t *testing.T) {
	sim, drv := simDrive(t)
	drv.EnableTCQ(4)
	if drv.Free() != 4 {
		t.Fatalf("Free = %d, want 4", drv.Free())
	}
	// Submit four commands; the drive runs the first (it was idle) and
	// then schedules the rest by access time from wherever the arm is.
	var order []int64
	lbas := []int64{100, 6_000_000, 200, 6_000_100}
	for _, lba := range lbas {
		lba := lba
		drv.Submit(Command{Op: OpRead, LBA: lba, Count: 1}, func(Completion) {
			order = append(order, lba)
		})
	}
	if drv.Free() != 0 {
		t.Fatalf("Free = %d after filling, want 0", drv.Free())
	}
	sim.Run()
	if len(order) != 4 {
		t.Fatalf("%d completions", len(order))
	}
	// The first command (LBA 100) starts immediately; with the arm still
	// near the outer edge, the queued LBA 200 must beat both far commands
	// despite arriving after one of them.
	pos := map[int64]int{}
	for i, l := range order {
		pos[l] = i
	}
	if !(pos[200] < pos[6_000_000] && pos[200] < pos[6_000_100]) {
		t.Fatalf("internal scheduling did not prefer the near command: %v", order)
	}
	if !drv.Idle() {
		t.Fatal("drive not idle after drain")
	}
}

func TestFaultTimeoutCompletion(t *testing.T) {
	sim, drv := simDrive(t)
	// TimeoutRate 0.5 with seed 1: find a draw that times out by submitting
	// until one fires; the first faulted completion must obey the timeout
	// contract exactly.
	drv.SetFaults(disk.NewFaultInjector(disk.FaultModel{TimeoutRate: 0.5}, 1))
	armBefore := drv.ArmState()
	for i := 0; i < 64; i++ {
		var comp Completion
		drv.Submit(Command{Op: OpRead, LBA: int64(i) * 1000, Count: 4}, func(c Completion) { comp = c })
		sim.Run()
		if comp.Fault == disk.FaultTimeout {
			if comp.OK() {
				t.Fatal("timed-out completion reported OK")
			}
			if got, want := comp.Observed-comp.Submitted, disk.DefaultFaultTimeout; got != want {
				t.Fatalf("timeout took %v, want %v", got, want)
			}
			if comp.ArmAfter != armBefore {
				t.Fatal("arm moved during a command timeout")
			}
			if drv.Busy() {
				t.Fatal("drive still busy after timeout")
			}
			return
		}
		armBefore = drv.ArmState()
	}
	t.Fatal("no timeout drawn in 64 commands at rate 0.5")
}

func TestFaultTransientCompletion(t *testing.T) {
	sim, drv := simDrive(t)
	drv.SetFaults(disk.NewFaultInjector(disk.FaultModel{TransientRate: 0.5}, 1))
	for i := 0; i < 64; i++ {
		var comp Completion
		drv.Submit(Command{Op: OpRead, LBA: int64(i) * 1000, Count: 4}, func(c Completion) { comp = c })
		sim.Run()
		if comp.Fault == disk.FaultTransient {
			if comp.OK() {
				t.Fatal("transient-fault completion reported OK")
			}
			// Full mechanical service happened: timeline fields are populated
			// just like a clean command.
			if comp.MechDone <= comp.MechStart || comp.Observed <= comp.MechDone {
				t.Fatalf("transient fault skipped mechanical service: %+v", comp)
			}
			return
		}
	}
	t.Fatal("no transient fault drawn in 64 commands at rate 0.5")
}

func TestFaultSequenceDeterministic(t *testing.T) {
	run := func() []disk.FaultKind {
		sim := des.New()
		drv := NewSim(sim, disk.ST39133LWV().MustNew())
		drv.SetFaults(disk.NewFaultInjector(disk.FaultModel{TransientRate: 0.3, TimeoutRate: 0.2}, 42))
		var seq []disk.FaultKind
		for i := 0; i < 50; i++ {
			drv.Submit(Command{Op: OpRead, LBA: int64(i) * 777, Count: 2}, func(c Completion) {
				seq = append(seq, c.Fault)
			})
			sim.Run()
		}
		return seq
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault %d differs across identical runs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestTCQOverflowPanics(t *testing.T) {
	_, drv := simDrive(t)
	drv.EnableTCQ(2)
	drv.Submit(Command{Op: OpRead, LBA: 0, Count: 1}, func(Completion) {})
	drv.Submit(Command{Op: OpRead, LBA: 1, Count: 1}, func(Completion) {})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on tag overflow")
		}
	}()
	drv.Submit(Command{Op: OpRead, LBA: 2, Count: 1}, func(Completion) {})
}
