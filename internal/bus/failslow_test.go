package bus

import (
	"testing"

	"repro/internal/des"
	"repro/internal/disk"
)

// runReads drives one command at a time through the drive and returns the
// completions.
func runReads(t *testing.T, drv *Drive, sim *des.Sim, n int) []Completion {
	t.Helper()
	var comps []Completion
	for i := 0; i < n; i++ {
		done := false
		drv.Submit(Command{Op: OpRead, LBA: int64(i * 5000), Count: 8}, func(c Completion) {
			comps = append(comps, c)
			done = true
		})
		for !done {
			if !sim.Step() {
				t.Fatalf("stalled at command %d", i)
			}
		}
	}
	return comps
}

// TestSlowDriveInflatesCompletions: a persistent factor stretches every
// observed completion by exactly the mechanical share, surfaces SlowBy on
// the completion, and leaves the command sequence otherwise identical —
// the zero-model run is byte-identical in timing once SlowBy is removed.
func TestSlowDriveInflatesCompletions(t *testing.T) {
	// One command per fresh drive: later commands start at different
	// simulated times in the slow run (their predecessors finished later),
	// so rotational phase makes their healthy timings incomparable.
	run := func(factor float64, lba int64) Completion {
		sim, drv := simDrive(t)
		if factor > 0 {
			drv.SetSlow(disk.NewSlowState(disk.SlowProfile{Factor: factor}, 42))
		}
		var comp Completion
		drv.Submit(Command{Op: OpRead, LBA: lba, Count: 8}, func(c Completion) { comp = c })
		sim.Run()
		return comp
	}
	for _, lba := range []int64{0, 5000, 1 << 20, 1 << 24} {
		b := run(0, lba)
		s := run(3, lba)
		if b.SlowBy != 0 || b.Stutter {
			t.Fatalf("healthy completion at %d reports slowness %v/%v", lba, b.SlowBy, b.Stutter)
		}
		if s.SlowBy <= 0 {
			t.Fatalf("slow completion at %d reports no inflation", lba)
		}
		// Removing the surfaced inflation must recover the healthy timing
		// (to float rounding): slowness perturbs nothing but the observed
		// completion.
		if d := s.Observed - s.SlowBy - b.Observed; d > 1e-3 || d < -1e-3 {
			t.Fatalf("lba %d: slow observed %v - SlowBy %v != healthy %v",
				lba, s.Observed, s.SlowBy, b.Observed)
		}
	}
}

// TestSlowDriveStutterAttribution: commands inside stutter windows carry
// Stutter=true and a larger inflation than factor-only commands.
func TestSlowDriveStutterAttribution(t *testing.T) {
	sim, drv := simDrive(t)
	drv.SetSlow(disk.NewSlowState(disk.SlowProfile{
		Factor:        2,
		StutterEvery:  20 * des.Millisecond,
		StutterFor:    15 * des.Millisecond,
		StutterFactor: 6,
	}, 7))
	comps := runReads(t, drv, sim, 200)
	stuttered := 0
	for _, c := range comps {
		if c.SlowBy <= 0 {
			t.Fatal("slow drive produced an uninflated completion")
		}
		if c.Stutter {
			stuttered++
		}
	}
	if stuttered == 0 || stuttered == len(comps) {
		t.Fatalf("stutter windows hit %d of %d commands; expected a mix", stuttered, len(comps))
	}
	if got := drv.Slow().Stutters; got != int64(stuttered) {
		t.Fatalf("state counted %d stutters, completions carried %d", got, stuttered)
	}
}

// TestSlowWithFaultsIndependentStreams: enabling slowness must not perturb
// which commands fault — the fault stream draws from its own rng.
func TestSlowWithFaultsIndependentStreams(t *testing.T) {
	faults := func(slow bool) []disk.FaultKind {
		sim, drv := simDrive(t)
		m := disk.FaultModel{TransientRate: 0.3}
		drv.SetFaults(disk.NewFaultInjector(m, 11))
		if slow {
			drv.SetSlow(disk.NewSlowState(disk.SlowProfile{Factor: 5}, 13))
		}
		var kinds []disk.FaultKind
		for i := 0; i < 100; i++ {
			done := false
			drv.Submit(Command{Op: OpRead, LBA: int64(i * 3000), Count: 8}, func(c Completion) {
				kinds = append(kinds, c.Fault)
				done = true
			})
			for !done {
				if !sim.Step() {
					t.Fatalf("stalled at command %d", i)
				}
			}
		}
		return kinds
	}
	base := faults(false)
	slow := faults(true)
	for i := range base {
		if base[i] != slow[i] {
			t.Fatalf("command %d fault %v (healthy) != %v (slow): streams not independent", i, base[i], slow[i])
		}
	}
}
