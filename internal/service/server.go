package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/slo"
)

// Volume returns the wrapped volume. Touch it only through Admin while
// the gateway is open.
func (g *Gateway) Volume() core.Volume { return g.vol }

// apiResponse is the JSON body the block endpoints return. Timestamps
// are virtual microseconds.
type apiResponse struct {
	Status       int     `json:"status"`
	Error        string  `json:"error,omitempty"`
	SubmitUs     float64 `json:"submit_us"`
	DoneUs       float64 `json:"done_us"`
	LatencyUs    float64 `json:"latency_us"`
	RetryAfterUs float64 `json:"retry_after_us,omitempty"`
}

// statsPayload is /v1/stats: the gateway's counters plus the array's
// own accounting, snapshotted on the run loop.
type statsPayload struct {
	Gateway  Stats                 `json:"gateway"`
	Sheds    core.ShedCounters     `json:"sheds"`
	Faults   core.FaultCounters    `json:"faults"`
	Hedges   core.HedgeCounters    `json:"hedges"`
	Recovery core.RecoveryCounters `json:"recovery"`
	Crashed  bool                  `json:"crashed"`
	NowUs    float64               `json:"now_us"`
	// SLO is the control plane's snapshot (zero-valued "normal" when no
	// controller is attached).
	SLO slo.State `json:"slo"`
}

// Server is the HTTP block front-end over a Gateway:
//
//	GET  /v1/vol/read?off=N&count=N    submit a read
//	POST /v1/vol/write?off=N&count=N   submit a synchronous write
//	GET  /v1/stats                     gateway + array counters
//	POST /v1/admin/crash               power-fail the array
//	POST /v1/admin/recover             recover it
//	GET  /healthz                      liveness
//
// Tenants identify with the X-Tenant header (default "anon") and order
// their own requests with X-Seq. Rejections come back as HTTP 429 with
// Retry-After (whole virtual seconds, floored — sub-second hints read 0)
// and X-Retry-After-Us (exact virtual microseconds); a crashed array
// answers 503.
type Server struct {
	gw  *Gateway
	mux *http.ServeMux
}

// NewServer builds the front-end over gw.
func NewServer(gw *Gateway) *Server {
	s := &Server{gw: gw, mux: http.NewServeMux()}
	s.mux.HandleFunc("/v1/vol/read", func(w http.ResponseWriter, r *http.Request) {
		s.handleIO(w, r, core.Read, http.MethodGet)
	})
	s.mux.HandleFunc("/v1/vol/write", func(w http.ResponseWriter, r *http.Request) {
		s.handleIO(w, r, core.Write, http.MethodPost)
	})
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/v1/admin/crash", s.handleAdmin(func(v core.Volume) error { return v.Crash() }))
	s.mux.HandleFunc("/v1/admin/recover", s.handleAdmin(func(v core.Volume) error { return v.Recover() }))
	s.mux.HandleFunc("/healthz", s.handleHealth)
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) handleIO(w http.ResponseWriter, r *http.Request, op core.Op, method string) {
	if r.Method != method {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	q := r.URL.Query()
	off, err := strconv.ParseInt(q.Get("off"), 10, 64)
	if err != nil {
		http.Error(w, "bad off", http.StatusBadRequest)
		return
	}
	count := 8
	if c := q.Get("count"); c != "" {
		count, err = strconv.Atoi(c)
		if err != nil {
			http.Error(w, "bad count", http.StatusBadRequest)
			return
		}
	}
	tenant := r.Header.Get("X-Tenant")
	if tenant == "" {
		tenant = "anon"
	}
	var seq uint64
	if sq := r.Header.Get("X-Seq"); sq != "" {
		seq, err = strconv.ParseUint(sq, 10, 64)
		if err != nil {
			http.Error(w, "bad seq", http.StatusBadRequest)
			return
		}
	}
	resp := s.gw.Do(Request{Tenant: tenant, Seq: seq, Op: op, Off: off, Count: count})
	writeResponse(w, resp)
}

// handleHealth reports liveness honestly: 503 when the array is crashed
// (or the gateway is closed), 200 with an explicit "degraded" body while
// the SLO controller is in brownout, plain "ok" otherwise.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	var (
		crashed bool
		level   slo.Level
	)
	admin := s.gw.Admin(func() error {
		crashed = s.gw.Volume().Crashed()
		level = s.gw.cfg.SLO.Level()
		return nil
	})
	switch {
	case admin.Status != StatusOK:
		http.Error(w, "unavailable: "+admin.Err, http.StatusServiceUnavailable)
	case crashed:
		http.Error(w, "crashed", http.StatusServiceUnavailable)
	case level > slo.Normal:
		w.WriteHeader(http.StatusOK)
		fmt.Fprintf(w, "degraded: %s\n", level)
	default:
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ok\n"))
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	var p statsPayload
	admin := s.gw.Admin(func() error {
		v := s.gw.Volume()
		p = statsPayload{
			Sheds:    v.Sheds(),
			Faults:   v.Faults(),
			Hedges:   v.Hedges(),
			Recovery: v.Recovery(),
			Crashed:  v.Crashed(),
			NowUs:    float64(v.Sim().Now()),
			SLO:      s.gw.cfg.SLO.State(),
		}
		return nil
	})
	if admin.Status != StatusOK {
		http.Error(w, admin.Err, admin.Status)
		return
	}
	p.Gateway = s.gw.Stats()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(p)
}

func (s *Server) handleAdmin(fn func(core.Volume) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		writeResponse(w, s.gw.Admin(func() error { return fn(s.gw.Volume()) }))
	}
}

func writeResponse(w http.ResponseWriter, resp Response) {
	if resp.RetryAfter > 0 {
		// Retry-After is whole seconds on the wire, so floor the virtual
		// hint: a microsecond-scale hint must read as 0 ("retry now",
		// legal per RFC 9110), not round up to a full second of
		// over-backoff. X-Retry-After-Us always carries the exact hint.
		secs := int64(resp.RetryAfter / des.Second)
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		w.Header().Set("X-Retry-After-Us", strconv.FormatFloat(float64(resp.RetryAfter), 'f', -1, 64))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(resp.Status)
	_ = json.NewEncoder(w).Encode(apiResponse{
		Status:       resp.Status,
		Error:        resp.Err,
		SubmitUs:     float64(resp.Submit),
		DoneUs:       float64(resp.Done),
		LatencyUs:    float64(resp.Latency()),
		RetryAfterUs: float64(resp.RetryAfter),
	})
}
