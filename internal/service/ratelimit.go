package service

import "repro/internal/des"

// TenantLimit is one tenant's token-bucket policy, in virtual time.
type TenantLimit struct {
	// Rate is the sustained budget in requests per virtual second; zero
	// or negative disables limiting for the tenant.
	Rate float64
	// Burst is the bucket capacity — how far above Rate a quiet tenant
	// may spike. Values below 1 are treated as 1 (a full bucket must
	// admit at least one request).
	Burst float64
}

// Limits is the gateway's rate-limit policy: a default bucket shape with
// per-tenant overrides, plus the Retry-After hint attached to 429s the
// array's own admission control causes.
type Limits struct {
	Default   TenantLimit
	PerTenant map[string]TenantLimit
	// OverloadRetryAfter is the virtual Retry-After returned when the
	// array sheds with ErrOverload (the bucket rejections compute their
	// own from the refill rate). Zero means 2ms — roughly an array-queue
	// drain time at the reference drive's service rates.
	OverloadRetryAfter des.Time
	// UnavailableRetryAfter is the virtual Retry-After attached to 503s
	// caused by the volume rejecting with ErrCrashed (every replica of
	// the requested range down). Zero means 5ms — the order of a
	// circuit-breaker probe cycle, the earliest a retry could find a
	// replica back. Gateway-closed 503s carry no hint: the service is
	// going away, not recovering.
	UnavailableRetryAfter des.Time
}

func (l Limits) forTenant(t string) TenantLimit {
	if tl, ok := l.PerTenant[t]; ok {
		return tl
	}
	return l.Default
}

func (l Limits) overloadRetryAfter() des.Time {
	if l.OverloadRetryAfter > 0 {
		return l.OverloadRetryAfter
	}
	return 2 * des.Millisecond
}

func (l Limits) unavailableRetryAfter() des.Time {
	if l.UnavailableRetryAfter > 0 {
		return l.UnavailableRetryAfter
	}
	return 5 * des.Millisecond
}

// bucket is one tenant's token state. Buckets refill as a pure function
// of the virtual clock and are touched only on the gateway's run loop,
// so rate-limit decisions are deterministic in deterministic mode.
type bucket struct {
	tokens float64
	last   des.Time
}

// allow draws one token from tenant's bucket at virtual instant now. A
// rejection returns the virtual duration until the bucket refills to one
// token — the Retry-After the front-end surfaces.
func (g *Gateway) allow(tenant string, now des.Time) (retryAfter des.Time, ok bool) {
	tl := g.cfg.Limits.forTenant(tenant)
	if tl.Rate <= 0 {
		return 0, true
	}
	// During brownout the SLO controller slows the refill of throttled
	// tiers; the scale is 1 at Normal (and from a nil controller), so the
	// default path is arithmetic-identical to an unscaled bucket.
	rate := tl.Rate * g.cfg.SLO.RateScale(tenant)
	burst := tl.Burst
	if burst < 1 {
		burst = 1
	}
	b := g.buckets[tenant]
	if b == nil {
		b = &bucket{tokens: burst, last: now}
		g.buckets[tenant] = b
	}
	b.tokens += rate * float64(now-b.last) / float64(des.Second)
	if b.tokens > burst {
		b.tokens = burst
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return 0, true
	}
	return des.Time((1 - b.tokens) / rate * float64(des.Second)), false
}
