package service

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/slo"
)

// TestRetryBackoffJitterSpreads pins the 429 backoff fix: tenants that
// all receive the same Retry-After hint must not wake at the same virtual
// instant. Each seeded RNG draws a backoff in [hint, 1.5·hint) and the
// population is spread, not clustered on the hint.
func TestRetryBackoffJitterSpreads(t *testing.T) {
	const hint = 10 * des.Millisecond
	const tenants = 200
	seen := make(map[des.Time]int, tenants)
	for i := 0; i < tenants; i++ {
		rng := rand.New(rand.NewSource(1<<20 ^ int64(i))) // loadgen's seeding shape
		b := retryBackoff(rng, hint)
		if b < hint || b >= hint+hint/2 {
			t.Fatalf("tenant %d: backoff %v outside [%v, %v)", i, b, hint, hint+hint/2)
		}
		seen[b]++
	}
	if len(seen) < tenants*9/10 {
		t.Fatalf("retry wave not spread: only %d distinct wake times across %d tenants", len(seen), tenants)
	}
	// Determinism: the same RNG state draws the same backoff.
	a := retryBackoff(rand.New(rand.NewSource(42)), hint)
	b := retryBackoff(rand.New(rand.NewSource(42)), hint)
	if a != b {
		t.Fatalf("jitter not deterministic: %v vs %v", a, b)
	}
	if got := retryBackoff(rand.New(rand.NewSource(1)), 0); got != 0 {
		t.Fatalf("zero hint jittered to %v", got)
	}
}

// TestRetryAfterHeaderConsistency pins the second-rounding fix: the
// whole-second Retry-After must be the floor of the exact X-Retry-After-Us
// hint — a microsecond-scale hint reads 0, not a full second of
// over-backoff.
func TestRetryAfterHeaderConsistency(t *testing.T) {
	vol := testVolume(t, nil)
	h := NewHarness(vol, Config{Limits: Limits{
		PerTenant: map[string]TenantLimit{"slow": {Rate: 10, Burst: 1}},
	}})
	defer func() {
		if err := h.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	var checked int
	for i := 0; i < 6; i++ {
		hr, body := h.get(t, http.MethodGet, "http://mem/v1/vol/read?off=0&count=8",
			map[string]string{"X-Tenant": "slow"})
		if hr.StatusCode != StatusTooMany {
			continue
		}
		secs, err := strconv.ParseInt(hr.Header.Get("Retry-After"), 10, 64)
		if err != nil {
			t.Fatalf("bad Retry-After %q: %v", hr.Header.Get("Retry-After"), err)
		}
		us, err := strconv.ParseFloat(hr.Header.Get("X-Retry-After-Us"), 64)
		if err != nil || us <= 0 {
			t.Fatalf("bad X-Retry-After-Us %q: %v", hr.Header.Get("X-Retry-After-Us"), err)
		}
		if want := int64(us / 1e6); secs != want {
			t.Fatalf("Retry-After %d inconsistent with exact hint %.0fus (want floor %d)", secs, us, want)
		}
		// At 10 req/s the refill wait is ~100ms: a spec-compliant client
		// must read 0 whole seconds, not the old rounded-up 1.
		if us < 1e6 && secs != 0 {
			t.Fatalf("sub-second hint %.0fus rounded up to Retry-After %d", us, secs)
		}
		var resp apiResponse
		if err := json.Unmarshal(body, &resp); err != nil || resp.RetryAfterUs != us {
			t.Fatalf("body hint %v != header hint %v (err %v)", resp.RetryAfterUs, us, err)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no 429 observed; test exercised nothing")
	}
}

// TestRealTimeConcurrentTenants exercises the non-deterministic gateway
// mode under genuine goroutine concurrency: many tenants in flight at
// once, every request completing with sane timestamps.
func TestRealTimeConcurrentTenants(t *testing.T) {
	vol := testVolume(t, nil)
	h := NewHarness(vol, Config{})
	defer func() {
		if err := h.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	const tenants, per = 16, 8
	var wg sync.WaitGroup
	errs := make(chan string, tenants*per)
	for i := 0; i < tenants; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			name := "rt" + strconv.Itoa(i)
			for n := 0; n < per; n++ {
				hr, body := h.get(t, http.MethodGet,
					"http://mem/v1/vol/read?off="+strconv.Itoa(512*i)+"&count=8",
					map[string]string{"X-Tenant": name, "X-Seq": strconv.Itoa(n)})
				if hr.StatusCode != 200 {
					errs <- hr.Status + " " + string(body)
					return
				}
				var resp apiResponse
				if err := json.Unmarshal(body, &resp); err != nil || resp.DoneUs < resp.SubmitUs {
					errs <- "bad body " + string(body)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatalf("concurrent tenant failed: %s", e)
	}
	if st := h.GW.Stats(); st.OK != tenants*per {
		t.Fatalf("stats.OK = %d, want %d", st.OK, tenants*per)
	}
}

// TestRealTimeCrashMidFlight crashes the array while concurrent tenants
// are mid-loop: requests racing the crash must resolve cleanly (200 before,
// 503 after, never a hang), healthz must report the crash, and recovery
// must restore service.
func TestRealTimeCrashMidFlight(t *testing.T) {
	vol := testVolume(t, func(o *core.Options) {
		o.Crash = core.CrashModel{Enabled: true, Durability: core.BatteryBacked}
	})
	h := NewHarness(vol, Config{})
	defer func() {
		if err := h.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	const tenants = 8
	var wg sync.WaitGroup
	bad := make(chan string, tenants)
	var unavailable int64
	var mu sync.Mutex
	for i := 0; i < tenants; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 40; n++ {
				hr, body := h.get(t, http.MethodGet, "http://mem/v1/vol/read?off=0&count=8",
					map[string]string{"X-Tenant": "c" + strconv.Itoa(i)})
				switch hr.StatusCode {
				case 200:
				case StatusUnavailable:
					mu.Lock()
					unavailable++
					mu.Unlock()
					if !strings.Contains(string(body), "crash") {
						bad <- "503 without crash cause: " + string(body)
						return
					}
				default:
					bad <- "status " + hr.Status + ": " + string(body)
					return
				}
			}
		}()
	}
	// Let traffic start, then pull the power mid-flight.
	if hr, body := h.get(t, http.MethodPost, "http://mem/v1/admin/crash", nil); hr.StatusCode != 200 {
		t.Fatalf("crash: %d %s", hr.StatusCode, body)
	}
	if hr, body := h.get(t, http.MethodGet, "http://mem/healthz", nil); hr.StatusCode != StatusUnavailable || !strings.Contains(string(body), "crashed") {
		t.Fatalf("healthz while crashed: %d %q", hr.StatusCode, body)
	}
	wg.Wait()
	close(bad)
	for e := range bad {
		t.Fatalf("mid-flight crash: %s", e)
	}
	if unavailable == 0 {
		t.Fatal("no request observed the crash; test exercised nothing")
	}
	if hr, body := h.get(t, http.MethodPost, "http://mem/v1/admin/recover", nil); hr.StatusCode != 200 {
		t.Fatalf("recover: %d %s", hr.StatusCode, body)
	}
	if hr, body := h.get(t, http.MethodGet, "http://mem/v1/vol/read?off=0&count=8", nil); hr.StatusCode != 200 {
		t.Fatalf("read after recover: %d %s", hr.StatusCode, body)
	}
	if hr, body := h.get(t, http.MethodGet, "http://mem/healthz", nil); hr.StatusCode != 200 || string(body) != "ok\n" {
		t.Fatalf("healthz after recover: %d %q", hr.StatusCode, body)
	}
}

// TestRealTimeGracefulDrain closes the gateway while tenants are still
// issuing: every racing call resolves — completed in-flight work as 200,
// never-admitted calls as a clean 503 — and the run loop exits nil.
func TestRealTimeGracefulDrain(t *testing.T) {
	vol := testVolume(t, nil)
	h := NewHarness(vol, Config{})
	const tenants, per = 8, 20
	results := make(chan Response, tenants*per)
	var wg sync.WaitGroup
	for i := 0; i < tenants; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < per; n++ {
				results <- h.GW.Do(Request{
					Tenant: "d" + strconv.Itoa(i), Seq: uint64(n),
					Op: core.Read, Off: int64(512 * i), Count: 8,
				})
			}
		}()
	}
	// Let the load get in flight, then race Close against it and join:
	// every call must resolve (a hang here fails the test by timeout).
	time.Sleep(20 * time.Millisecond)
	if err := h.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	wg.Wait()
	close(results)
	var ok, closed int
	for r := range results {
		switch {
		case r.Status == StatusOK:
			ok++
			if r.Done < r.Submit {
				t.Fatalf("drained completion has bad timestamps: %+v", r)
			}
		case r.Status == StatusUnavailable && strings.Contains(r.Err, "closed"):
			closed++
		default:
			t.Fatalf("drain left a call in state %+v", r)
		}
	}
	if ok+closed != tenants*per {
		t.Fatalf("resolved %d+%d of %d calls", ok, closed, tenants*per)
	}
	if ok == 0 {
		t.Fatal("no call completed before Close; drain path exercised nothing")
	}
	// Completions the gateway admitted are all accounted; rejections that
	// never reached the run loop are not, so only OK must reconcile.
	if st := h.GW.Stats(); st.OK != int64(ok) {
		t.Fatalf("stats %+v disagree with observed ok=%d", st, ok)
	}
}

// TestSLOBrownoutE2E drives the full control loop over the wire: an
// unreachable premium target forces sustained violation, the ladder walks
// to best-effort shedding, /healthz and /v1/stats surface the brownout,
// premium is never shed, and the array's background pacing is clamped.
func TestSLOBrownoutE2E(t *testing.T) {
	vol := testVolume(t, func(o *core.Options) { o.MaxQueueDepth = 8 })
	base := vol.Tuning()
	ctrl, err := slo.New(vol, slo.Options{
		Window:         des.Millisecond,
		Targets:        [slo.NumTiers]des.Time{slo.Premium: des.Microsecond},
		ViolateWindows: 1,
		MinSamples:     1,
		Classify: func(tenant string) slo.Tier {
			switch {
			case strings.HasPrefix(tenant, "p"):
				return slo.Premium
			case strings.HasPrefix(tenant, "b"):
				return slo.BestEffort
			}
			return slo.Standard
		},
	})
	if err != nil {
		t.Fatalf("slo.New: %v", err)
	}
	h := NewHarness(vol, Config{SLO: ctrl})
	defer func() {
		if err := h.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()

	// Every premium completion misses the 1µs target; with 1ms windows and
	// single-window hysteresis the ladder reaches standard-shed fast.
	for i := 0; i < 30; i++ {
		if hr, body := h.get(t, http.MethodGet, "http://mem/v1/vol/read?off=0&count=8",
			map[string]string{"X-Tenant": "prem", "X-Seq": strconv.Itoa(i)}); hr.StatusCode != 200 {
			t.Fatalf("premium read %d: %d %s", i, hr.StatusCode, body)
		}
	}

	// Brownout surfaced on both operator endpoints.
	hr, body := h.get(t, http.MethodGet, "http://mem/healthz", nil)
	if hr.StatusCode != 200 || !strings.Contains(string(body), "degraded") {
		t.Fatalf("healthz during brownout: %d %q", hr.StatusCode, body)
	}
	hr, body = h.get(t, http.MethodGet, "http://mem/v1/stats", nil)
	if hr.StatusCode != 200 {
		t.Fatalf("stats: %d %s", hr.StatusCode, body)
	}
	var stats statsPayload
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatalf("stats JSON: %v", err)
	}
	if stats.SLO.LevelIndex < int(slo.ShedBestEffort) || stats.SLO.Escalations == 0 {
		t.Fatalf("controller state not surfaced: %+v", stats.SLO)
	}
	if stats.SLO.Tiers[slo.Premium].Observed == 0 {
		t.Fatalf("premium completions not observed: %+v", stats.SLO)
	}

	// Best-effort is shed with a Retry-After; premium still flows.
	hr, body = h.get(t, http.MethodGet, "http://mem/v1/vol/read?off=0&count=8",
		map[string]string{"X-Tenant": "be1"})
	if hr.StatusCode != StatusTooMany || !strings.Contains(string(body), "brownout") {
		t.Fatalf("best-effort during brownout: %d %s", hr.StatusCode, body)
	}
	if hr.Header.Get("X-Retry-After-Us") == "" {
		t.Fatalf("shed 429 missing Retry-After headers: %v", hr.Header)
	}
	if hr, body := h.get(t, http.MethodGet, "http://mem/v1/vol/read?off=0&count=8",
		map[string]string{"X-Tenant": "prem", "X-Seq": "99"}); hr.StatusCode != 200 {
		t.Fatalf("premium during brownout: %d %s", hr.StatusCode, body)
	}
	if st := h.GW.Stats(); st.Shed == 0 {
		t.Fatalf("gateway shed counter not incremented: %+v", st)
	}

	// The actuators really moved: background pacing clamped below base.
	var tun core.Tuning
	if resp := h.GW.Admin(func() error { tun = vol.Tuning(); return nil }); resp.Status != StatusOK {
		t.Fatalf("Admin: %+v", resp)
	}
	if tun.ScrubMBps >= core.DefaultScrubMBps || tun.MaxQueueDepth >= base.MaxQueueDepth {
		t.Fatalf("actuators untouched during brownout: %+v (base %+v)", tun, base)
	}
}
