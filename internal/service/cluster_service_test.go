package service

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/layout"
)

// testCluster builds a colocated 3-brick R=2 replicated volume for the
// gateway to front. The returned sim is only safe to touch before the
// harness starts (pre-arming fault events) or after it closes.
func testCluster(t *testing.T) (*des.Sim, *cluster.Cluster) {
	t.Helper()
	sim := des.New()
	bricks := make([]core.Volume, 3)
	for i := range bricks {
		a, err := core.New(sim, core.Options{
			Config: layout.SRArray(2, 2), Policy: "rsatf",
			DataSectors: 1 << 14, Seed: int64(i + 1),
			Crash: core.CrashModel{Enabled: true, Durability: core.BatteryBacked},
		})
		if err != nil {
			t.Fatalf("core.New: %v", err)
		}
		bricks[i] = a
	}
	cl, err := cluster.New(sim, bricks, cluster.Options{
		Replicas: 2, ExtentSectors: 512, Seed: 42, BackfillMBps: 256,
	})
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	return sim, cl
}

// TestRealTimeClusterBrickCrash fronts a replicated cluster with the
// real-time gateway and crashes one brick mid-flight: every client call
// must still return 200 — the outage is absorbed by read failover and
// quorum writes, never surfaced — and after the drain the divergence
// counters reconcile exactly.
func TestRealTimeClusterBrickCrash(t *testing.T) {
	sim, cl := testCluster(t)
	// Pre-arm the outage on the virtual clock: crash early enough to land
	// under traffic, recover late enough that backfill runs in the drain.
	sim.At(3*des.Millisecond, func() {
		if err := cl.CrashBrick(1); err != nil {
			t.Errorf("CrashBrick: %v", err)
		}
	})
	sim.At(80*des.Millisecond, func() {
		if err := cl.Brick(1).Recover(); err != nil {
			t.Errorf("Recover: %v", err)
		}
	})
	h := NewHarness(cl, Config{})
	const tenants, per = 8, 30
	var wg sync.WaitGroup
	bad := make(chan string, tenants*per)
	for i := 0; i < tenants; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < per; n++ {
				op, method := "read", http.MethodGet
				if n%3 == 0 {
					op, method = "write", http.MethodPost
				}
				off := strconv.Itoa(512 * ((i*per + n) % 24))
				hr, body := h.get(t, method, "http://mem/v1/vol/"+op+"?off="+off+"&count=8",
					map[string]string{"X-Tenant": "c" + strconv.Itoa(i)})
				if hr.StatusCode != 200 {
					bad <- op + " -> " + hr.Status + ": " + string(body)
					return
				}
			}
		}()
	}
	wg.Wait()
	// One brick dark is not a crashed service: healthz stays green.
	if hr, body := h.get(t, http.MethodGet, "http://mem/healthz", nil); hr.StatusCode != 200 {
		t.Errorf("healthz during single-brick outage: %d %q", hr.StatusCode, body)
	}
	if err := h.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	close(bad)
	for e := range bad {
		t.Fatalf("client saw the brick outage: %s", e)
	}
	ctr := cl.Counters()
	if ctr.Trips == 0 {
		t.Fatal("breaker never tripped; the crash landed after traffic ended")
	}
	if ctr.ReadFailovers == 0 && ctr.Diverged == 0 {
		t.Fatal("no failovers and no divergence; outage exercised nothing")
	}
	if ctr.AllDown != 0 {
		t.Fatalf("%d submissions saw all replicas down with two bricks healthy", ctr.AllDown)
	}
	if ctr.Diverged != ctr.Backfilled+ctr.Abandoned {
		t.Fatalf("counters do not reconcile after drain: Diverged=%d Backfilled=%d Abandoned=%d",
			ctr.Diverged, ctr.Backfilled, ctr.Abandoned)
	}
	if n := cl.DivergencePending(); n != 0 {
		t.Fatalf("%d divergence entries survived the drain", n)
	}
}

// TestRealTimeClusterGracefulDrain closes the gateway while tenants are
// mid-loop against the replicated volume: every call resolves (200 or a
// clean gateway-closed 503), and the shutdown drain settles the cluster's
// background machinery.
func TestRealTimeClusterGracefulDrain(t *testing.T) {
	_, cl := testCluster(t)
	h := NewHarness(cl, Config{})
	const tenants, per = 6, 20
	results := make(chan Response, tenants*per)
	var wg sync.WaitGroup
	for i := 0; i < tenants; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < per; n++ {
				op := core.Read
				if n%4 == 0 {
					op = core.Write
				}
				results <- h.GW.Do(Request{
					Tenant: "d" + strconv.Itoa(i), Seq: uint64(n),
					Op: op, Off: int64(512 * i), Count: 8,
				})
			}
		}()
	}
	time.Sleep(20 * time.Millisecond)
	if err := h.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	wg.Wait()
	close(results)
	var ok, closed int
	for r := range results {
		switch {
		case r.Status == StatusOK:
			ok++
		case r.Status == StatusUnavailable && strings.Contains(r.Err, "closed"):
			closed++
		default:
			t.Fatalf("drain left a call in state %+v", r)
		}
	}
	if ok+closed != tenants*per {
		t.Fatalf("resolved %d+%d of %d calls", ok, closed, tenants*per)
	}
	if ok == 0 {
		t.Fatal("no call completed before Close; drain path exercised nothing")
	}
	if !cl.Idle() {
		t.Fatal("cluster not idle after gateway drain")
	}
}

// TestUnavailableRetryAfterHint pins the 503 half of the Retry-After
// contract: a crashed-volume rejection carries the configured hint in the
// same three places the 429 path does (Retry-After, X-Retry-After-Us,
// body), while gateway-closed 503s stay hintless.
func TestUnavailableRetryAfterHint(t *testing.T) {
	vol := testVolume(t, func(o *core.Options) {
		o.Crash = core.CrashModel{Enabled: true, Durability: core.BatteryBacked}
	})
	h := NewHarness(vol, Config{Limits: Limits{UnavailableRetryAfter: 7 * des.Millisecond}})
	defer func() {
		if err := h.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	if hr, body := h.get(t, http.MethodPost, "http://mem/v1/admin/crash", nil); hr.StatusCode != 200 {
		t.Fatalf("crash: %d %s", hr.StatusCode, body)
	}
	hr, body := h.get(t, http.MethodGet, "http://mem/v1/vol/read?off=0&count=8", nil)
	if hr.StatusCode != StatusUnavailable {
		t.Fatalf("read on crashed volume: %d %s", hr.StatusCode, body)
	}
	if got := hr.Header.Get("Retry-After"); got != "0" {
		t.Errorf("Retry-After %q, want 0 (floor of 7ms)", got)
	}
	us, err := strconv.ParseFloat(hr.Header.Get("X-Retry-After-Us"), 64)
	if err != nil || us != 7000 {
		t.Errorf("X-Retry-After-Us %q, want 7000", hr.Header.Get("X-Retry-After-Us"))
	}
	var resp apiResponse
	if err := json.Unmarshal(body, &resp); err != nil || resp.RetryAfterUs != us {
		t.Errorf("body hint %v != header hint %v (err %v)", resp.RetryAfterUs, us, err)
	}
	if hr, body := h.get(t, http.MethodPost, "http://mem/v1/admin/recover", nil); hr.StatusCode != 200 {
		t.Fatalf("recover: %d %s", hr.StatusCode, body)
	}
}
