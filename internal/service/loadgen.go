package service

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/des"
)

// Harness stands up the full in-process serving stack over a volume:
// the virtual-time gateway, the HTTP server on a MemListener, and an
// http.Client whose transport dials it. Everything the wire would carry
// is exercised; no TCP port is opened.
type Harness struct {
	GW     *Gateway
	Client *http.Client
	ln     *MemListener
	srv    *http.Server
	runErr chan error
}

// NewHarness builds and starts the stack (server goroutine + gateway
// run loop). Callers must Close it.
func NewHarness(vol core.Volume, cfg Config) *Harness {
	h := &Harness{
		GW:     NewGateway(vol, cfg),
		ln:     NewMemListener(),
		runErr: make(chan error, 1),
	}
	h.srv = &http.Server{Handler: NewServer(h.GW)}
	go func() { _ = h.srv.Serve(h.ln) }()
	go func() { h.runErr <- h.GW.Run() }()
	h.Client = &http.Client{Transport: &http.Transport{
		DialContext: func(ctx context.Context, _, _ string) (net.Conn, error) {
			return h.ln.Dial(ctx)
		},
		// Generous idle pool: a request must never wait for another
		// tenant's in-flight response (in deterministic mode that wait
		// would deadlock the barrier), so keep every tenant's connection
		// alive instead of cycling through a small pool.
		MaxIdleConns:        0,
		MaxIdleConnsPerHost: 1 << 14,
		DisableCompression:  true,
	}}
	return h
}

// Close shuts the gateway down (draining admitted work on the virtual
// clock), then the server, and returns the run loop's error.
func (h *Harness) Close() error {
	h.GW.Close()
	err := <-h.runErr
	h.Client.CloseIdleConnections()
	_ = h.srv.Close()
	_ = h.ln.Close()
	return err
}

// LoadConfig sizes a multi-tenant closed-loop load.
type LoadConfig struct {
	// Tenants and Requests set the fleet size and the total request
	// budget (split evenly, remainder to the low tenants).
	Tenants  int
	Requests int
	// Sectors bounds request offsets (the volume's DataSectors).
	Sectors int64
	// Seed derives every tenant's private RNG.
	Seed int64
	// ThinkMean is the mean virtual think time between a tenant's
	// operations (exponential); every 50th tenant runs hot at an eighth
	// of it. Zero means no think time — a pure closed loop.
	ThinkMean des.Time
	// MaxRetries bounds how many times one logical operation retries
	// after a 429 (sleeping out a jittered multiple of the Retry-After in
	// virtual time).
	MaxRetries int
	// Window groups completions into virtual-time windows for the
	// p99/429-rate series; default 100ms.
	Window des.Time
	// SLOTarget optionally maps a tenant index to its per-request latency
	// target; successful responses at or under it count toward the
	// tenant's Met tally. Nil disables the tally.
	SLOTarget func(tenant int) des.Time
	// BurstPeriod/BurstFactor overlay square-wave burstiness on the think
	// time: during the first half of each virtual period every tenant
	// thinks BurstFactor× faster. Zero period (or factor <= 1) disables.
	BurstPeriod des.Time
	BurstFactor float64
}

// TenantTotals is one tenant's outcome tallies. Met counts OK responses
// within the tenant's SLOTarget (0 when no target is configured).
type TenantTotals struct {
	Issued, OK, Limited, Overloaded, Failed, Met int64
}

// Window is one virtual-time bucket of the load: counts by outcome and
// the p99 of successful latencies.
type Window struct {
	Index                                  int64
	Count, OK, Limited, Overloaded, Failed int64
	P99                                    des.Time
}

// LoadReport aggregates a load run.
type LoadReport struct {
	Issued     int64 // HTTP requests issued (retries included)
	OK         int64
	Limited    int64 // 429 from the token buckets
	Overloaded int64 // 429 from array admission control
	Failed     int64
	Retries    int64
	Aborted    int64 // tenants that died on a transport error
	Windows    []Window
	PerTenant  []TenantTotals
}

// Digest folds the report into a stable fingerprint: totals, every
// window, every tenant. Two deterministic-mode runs of the same load
// must produce byte-identical digests.
func (r *LoadReport) Digest() string {
	var b strings.Builder
	fmt.Fprintf(&b, "issued=%d ok=%d limited=%d overloaded=%d failed=%d retries=%d aborted=%d\n",
		r.Issued, r.OK, r.Limited, r.Overloaded, r.Failed, r.Retries, r.Aborted)
	for _, w := range r.Windows {
		fmt.Fprintf(&b, "w%d n=%d ok=%d lim=%d over=%d fail=%d p99=%.3f\n",
			w.Index, w.Count, w.OK, w.Limited, w.Overloaded, w.Failed, float64(w.P99))
	}
	for i, t := range r.PerTenant {
		fmt.Fprintf(&b, "t%d %d/%d/%d/%d/%d met=%d\n", i, t.Issued, t.OK, t.Limited, t.Overloaded, t.Failed, t.Met)
	}
	return b.String()
}

// tenantName is fixed-width so lexicographic order (the deterministic
// admission sort key) equals tenant index order.
func tenantName(i int) string { return fmt.Sprintf("t%05d", i) }

// winAgg accumulates one virtual-time window during the run.
type winAgg struct {
	count, ok, limited, overloaded, failed int64
	lats                                   []float64
}

// tenantRun is one tenant goroutine's private accumulator — no locks;
// merged after the WaitGroup joins.
type tenantRun struct {
	totals  TenantTotals
	wins    map[int64]*winAgg
	target  des.Time // per-request SLO target; 0 = untracked
	retries int64
	aborted bool
}

func (tr *tenantRun) record(resp apiResponse, window des.Time) {
	tr.totals.Issued++
	idx := int64(des.Time(resp.DoneUs) / window)
	wa := tr.wins[idx]
	if wa == nil {
		wa = &winAgg{}
		tr.wins[idx] = wa
	}
	wa.count++
	switch {
	case resp.Status == StatusOK:
		tr.totals.OK++
		wa.ok++
		if tr.target > 0 && des.Time(resp.LatencyUs) <= tr.target {
			tr.totals.Met++
		}
		wa.lats = append(wa.lats, resp.LatencyUs)
	case resp.Status == StatusTooMany && strings.Contains(resp.Error, "overload"):
		tr.totals.Overloaded++
		wa.overloaded++
	case resp.Status == StatusTooMany:
		tr.totals.Limited++
		wa.limited++
	default:
		tr.totals.Failed++
		wa.failed++
	}
}

// RunLoad drives the configured load through the harness's HTTP client
// and returns the merged report. Every tenant is registered with the
// gateway before any traffic starts, keeps one call outstanding at a
// time, and unregisters when its quota is spent — the contract the
// deterministic barrier requires.
func (h *Harness) RunLoad(cfg LoadConfig) (*LoadReport, error) {
	if cfg.Tenants <= 0 || cfg.Requests <= 0 {
		return nil, fmt.Errorf("service: load needs tenants and requests, got %d/%d", cfg.Tenants, cfg.Requests)
	}
	if cfg.Sectors <= 0 {
		return nil, fmt.Errorf("service: load needs the volume size (Sectors)")
	}
	window := cfg.Window
	if window <= 0 {
		window = 100 * des.Millisecond
	}
	quota := make([]int, cfg.Tenants)
	for i := range quota {
		quota[i] = cfg.Requests / cfg.Tenants
		if i < cfg.Requests%cfg.Tenants {
			quota[i]++
		}
	}
	// Register the whole fleet before any traffic: the barrier size must
	// be fixed when the first request lands, or admission order would
	// depend on registration timing.
	for i := 0; i < cfg.Tenants; i++ {
		h.GW.Register(tenantName(i))
	}
	runs := make([]tenantRun, cfg.Tenants)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Tenants; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			name := tenantName(i)
			defer h.GW.Unregister(name)
			tr := &runs[i]
			tr.wins = make(map[int64]*winAgg)
			if cfg.SLOTarget != nil {
				tr.target = cfg.SLOTarget(i)
			}
			rng := rand.New(rand.NewSource(cfg.Seed<<20 ^ int64(i)))
			readFrac := 0.5 + 0.4*float64(i%7)/6
			count := 8 << (i % 3)
			think := cfg.ThinkMean
			if i%50 == 0 {
				think /= 8 // hot tenant: drives its bucket into rejection
			}
			var seq uint64
			var lastDone des.Time
			for n := 0; n < quota[i]; n++ {
				op := "read"
				if rng.Float64() >= readFrac {
					op = "write"
				}
				off := rng.Int63n(cfg.Sectors - int64(count))
				for attempt := 0; ; attempt++ {
					seq++
					resp, err := h.doOp(op, name, seq, off, count)
					if err != nil {
						tr.aborted = true
						return
					}
					tr.record(resp, window)
					lastDone = des.Time(resp.DoneUs)
					if resp.Status == StatusTooMany && attempt < cfg.MaxRetries {
						tr.retries++
						seq++
						h.GW.Sleep(name, seq, retryBackoff(rng, des.Time(resp.RetryAfterUs)))
						continue
					}
					break
				}
				if think > 0 {
					tk := think
					if burstActive(cfg, lastDone) {
						tk = des.Time(float64(tk) / cfg.BurstFactor)
					}
					seq++
					h.GW.Sleep(name, seq, des.Time(rng.ExpFloat64()*float64(tk)))
				}
			}
		}()
	}
	wg.Wait()
	// Merge in tenant index order, then window order — deterministic.
	rep := &LoadReport{PerTenant: make([]TenantTotals, cfg.Tenants)}
	wins := make(map[int64]*winAgg)
	for i := range runs {
		tr := &runs[i]
		rep.PerTenant[i] = tr.totals
		rep.Issued += tr.totals.Issued
		rep.OK += tr.totals.OK
		rep.Limited += tr.totals.Limited
		rep.Overloaded += tr.totals.Overloaded
		rep.Failed += tr.totals.Failed
		rep.Retries += tr.retries
		if tr.aborted {
			rep.Aborted++
		}
		for idx, wa := range tr.wins {
			g := wins[idx]
			if g == nil {
				g = &winAgg{}
				wins[idx] = g
			}
			g.count += wa.count
			g.ok += wa.ok
			g.limited += wa.limited
			g.overloaded += wa.overloaded
			g.failed += wa.failed
			g.lats = append(g.lats, wa.lats...)
		}
	}
	idxs := make([]int64, 0, len(wins))
	for idx := range wins {
		idxs = append(idxs, idx)
	}
	sort.Slice(idxs, func(a, b int) bool { return idxs[a] < idxs[b] })
	for _, idx := range idxs {
		g := wins[idx]
		w := Window{Index: idx, Count: g.count, OK: g.ok, Limited: g.limited,
			Overloaded: g.overloaded, Failed: g.failed}
		if len(g.lats) > 0 {
			sort.Float64s(g.lats)
			k := (len(g.lats)*99 + 99) / 100
			if k > len(g.lats) {
				k = len(g.lats)
			}
			w.P99 = des.Time(g.lats[k-1])
		}
		rep.Windows = append(rep.Windows, w)
	}
	return rep, nil
}

// retryBackoff spreads a shared Retry-After hint. Clients honoring an
// identical hint verbatim wake at the same virtual instant and re-stampede
// the bucket in lockstep; each retry instead sleeps hint × [1.0, 1.5),
// drawn from the tenant's seeded RNG — deterministic across runs, but
// de-synchronized across tenants.
func retryBackoff(rng *rand.Rand, hint des.Time) des.Time {
	if hint <= 0 {
		return 0
	}
	return hint + des.Time(rng.Float64()*0.5*float64(hint))
}

// burstActive reports whether the square-wave burst overlay is in its hot
// half-period at virtual instant now.
func burstActive(cfg LoadConfig, now des.Time) bool {
	if cfg.BurstPeriod <= 0 || cfg.BurstFactor <= 1 {
		return false
	}
	phase := now - des.Time(int64(now/cfg.BurstPeriod))*cfg.BurstPeriod
	return phase < cfg.BurstPeriod/2
}

func (h *Harness) doOp(op, tenant string, seq uint64, off int64, count int) (apiResponse, error) {
	method, path := http.MethodGet, "/v1/vol/read"
	if op == "write" {
		method, path = http.MethodPost, "/v1/vol/write"
	}
	url := "http://mem" + path + "?off=" + strconv.FormatInt(off, 10) + "&count=" + strconv.Itoa(count)
	req, err := http.NewRequest(method, url, nil)
	if err != nil {
		return apiResponse{}, err
	}
	req.Header.Set("X-Tenant", tenant)
	req.Header.Set("X-Seq", strconv.FormatUint(seq, 10))
	hr, err := h.Client.Do(req)
	if err != nil {
		return apiResponse{}, err
	}
	defer hr.Body.Close()
	var resp apiResponse
	if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
		return apiResponse{}, fmt.Errorf("service: bad response body: %w", err)
	}
	return resp, nil
}
