// Package service puts a storage-service front-end on a simulated array:
// an HTTP block API, per-tenant token-bucket rate limiting, and the
// virtual-time gateway that bridges goroutine-per-connection handlers
// onto the array's discrete-event clock.
//
// The hard problem is the clock. Handlers run on OS threads in wall
// time; the array lives on a des.Sim that only one goroutine may touch
// and that jumps between event timestamps. The Gateway owns the Sim:
// callers park in Do/Sleep while their request rides the simulator, and
// the gateway's run loop advances virtual time, waking each caller when
// its completion event fires. In deterministic mode the loop only
// advances when every registered client is parked (a counting barrier,
// the same discipline des.Sharded uses across shards), and admits each
// barrier's arrivals in (tenant, seq) order — so a load run is
// byte-identical no matter how the OS schedules a thousand tenant
// goroutines. In real-time mode the barrier is dropped and the loop
// advances whenever someone is waiting, which is what an interactive
// server wants.
//
// Backpressure composes from two layers, both surfaced as HTTP 429 with
// a Retry-After: the gateway's token buckets (per-tenant rates in
// virtual time) reject before the array sees the request, and the
// array's own MaxQueueDepth admission control (core.ErrOverload) rejects
// when the drives are saturated.
package service

import (
	"errors"

	"repro/internal/core"
	"repro/internal/des"
)

// Request is one block-API operation as the gateway admits it: the
// tenant it bills to, the tenant's own sequence number (the deterministic
// sort key within a barrier batch), and the I/O itself.
type Request struct {
	Tenant string
	Seq    uint64
	Op     core.Op
	Off    int64
	Count  int
}

// Response statuses, deliberately HTTP's: the gateway is the policy
// layer and the HTTP server translates 1:1.
const (
	StatusOK          = 200
	StatusBadRequest  = 400
	StatusTooMany     = 429
	StatusFailed      = 500
	StatusUnavailable = 503
)

// Response reports one completed gateway call. Submit and Done are
// virtual timestamps; a 429 carries RetryAfter, the virtual duration
// after which the tenant's bucket (or the array's queues) should admit a
// retry.
type Response struct {
	Status     int
	Err        string
	Submit     des.Time
	Done       des.Time
	RetryAfter des.Time
}

// Latency is the request's virtual service time.
func (r Response) Latency() des.Time { return r.Done - r.Submit }

// Stats counts gateway activity. Requests tallies every admitted call
// (I/O and admin, not sleeps); the rejection counters split the 429/503
// paths by cause.
type Stats struct {
	Requests    int64
	OK          int64
	Failed      int64
	RateLimited int64 // 429: token bucket said no
	Overloaded  int64 // 429: array admission control (ErrOverload)
	Shed        int64 // 429: SLO brownout ladder shed the tenant's tier
	Unavailable int64 // 503: array crashed
	BadRequest  int64
	Sleeps      int64
}

// ErrGatewayClosed reports a call against a gateway that has shut down.
var ErrGatewayClosed = errors.New("service: gateway closed")

// ErrGatewayStalled reports a deterministic-mode deadlock: every client
// parked, no pending arrivals, and the simulator out of events — some
// completion can never fire.
var ErrGatewayStalled = errors.New("service: gateway stalled (no events left with callers parked)")

// statusOf maps a synchronous submit error or completion error to a
// response status.
func statusOf(err error) int {
	switch {
	case err == nil:
		return StatusOK
	case errors.Is(err, core.ErrOverload):
		return StatusTooMany
	case errors.Is(err, core.ErrCrashed):
		return StatusUnavailable
	case errors.Is(err, core.ErrDataLost),
		errors.Is(err, core.ErrNoFreshReplica),
		errors.Is(err, core.ErrCorruptData),
		errors.Is(err, core.ErrDeadlineExceeded):
		return StatusFailed
	default:
		return StatusBadRequest
	}
}
