package service

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/layout"
)

// testVolume builds a small SR-Array on a fresh simulator.
func testVolume(t *testing.T, mod func(*core.Options)) *core.Array {
	t.Helper()
	sim := des.New()
	o := core.Options{
		Config:      layout.SRArray(2, 2),
		Policy:      "rsatf",
		DataSectors: 1 << 16,
		Seed:        1,
	}
	if mod != nil {
		mod(&o)
	}
	a, err := core.New(sim, o)
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}
	return a
}

// get issues a raw HTTP request through the harness client.
func (h *Harness) get(t *testing.T, method, url string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, nil)
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	hr, err := h.Client.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	body, err := io.ReadAll(hr.Body)
	hr.Body.Close()
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return hr, body
}

// TestServerHTTP drives the full stack — client transport, wire format,
// handlers, gateway, simulator — in real-time (non-deterministic) mode:
// reads, writes, input validation, stats, and the crash/recover admin
// path surfacing 503.
func TestServerHTTP(t *testing.T) {
	vol := testVolume(t, func(o *core.Options) {
		o.Crash = core.CrashModel{Enabled: true, Durability: core.BatteryBacked}
	})
	h := NewHarness(vol, Config{})
	defer func() {
		if err := h.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()

	// healthz.
	hr, body := h.get(t, http.MethodGet, "http://mem/healthz", nil)
	if hr.StatusCode != 200 || string(body) != "ok\n" {
		t.Fatalf("healthz: %d %q", hr.StatusCode, body)
	}

	// A read and a write, both 200 with sane virtual timestamps.
	for _, tc := range []struct{ method, url string }{
		{http.MethodGet, "http://mem/v1/vol/read?off=0&count=8"},
		{http.MethodPost, "http://mem/v1/vol/write?off=4096&count=16"},
	} {
		hr, body := h.get(t, tc.method, tc.url, map[string]string{"X-Tenant": "curl", "X-Seq": "1"})
		if hr.StatusCode != 200 {
			t.Fatalf("%s %s: status %d body %s", tc.method, tc.url, hr.StatusCode, body)
		}
		var resp apiResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatalf("bad JSON %q: %v", body, err)
		}
		if resp.Status != 200 || resp.LatencyUs <= 0 || resp.DoneUs < resp.SubmitUs {
			t.Fatalf("bad response: %+v", resp)
		}
	}

	// Method and parameter validation.
	if hr, _ := h.get(t, http.MethodPost, "http://mem/v1/vol/read?off=0", nil); hr.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST read: got %d, want 405", hr.StatusCode)
	}
	if hr, _ := h.get(t, http.MethodGet, "http://mem/v1/vol/read?off=nope", nil); hr.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad off: got %d, want 400", hr.StatusCode)
	}
	// Out-of-range offset: rejected by the array at submit, as a 400.
	if hr, _ := h.get(t, http.MethodGet, "http://mem/v1/vol/read?off=999999999&count=8", nil); hr.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range read: got %d, want 400", hr.StatusCode)
	}

	// Stats reflect the traffic so far.
	hr, body = h.get(t, http.MethodGet, "http://mem/v1/stats", nil)
	if hr.StatusCode != 200 {
		t.Fatalf("stats: %d %s", hr.StatusCode, body)
	}
	var stats statsPayload
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatalf("stats JSON: %v", err)
	}
	if stats.Gateway.OK < 2 || stats.Gateway.BadRequest < 1 {
		t.Fatalf("stats counters off: %+v", stats.Gateway)
	}
	if stats.Crashed {
		t.Fatalf("not crashed yet: %+v", stats)
	}

	// Crash: I/O answers 503; recover: it works again.
	if hr, body := h.get(t, http.MethodPost, "http://mem/v1/admin/crash", nil); hr.StatusCode != 200 {
		t.Fatalf("crash: %d %s", hr.StatusCode, body)
	}
	hr, body = h.get(t, http.MethodGet, "http://mem/v1/vol/read?off=0&count=8", nil)
	if hr.StatusCode != StatusUnavailable {
		t.Fatalf("read while crashed: got %d body %s, want 503", hr.StatusCode, body)
	}
	var down apiResponse
	if err := json.Unmarshal(body, &down); err != nil || !strings.Contains(down.Error, "crash") {
		t.Fatalf("crashed error body: %q err %v", body, err)
	}
	if hr, body := h.get(t, http.MethodPost, "http://mem/v1/admin/recover", nil); hr.StatusCode != 200 {
		t.Fatalf("recover: %d %s", hr.StatusCode, body)
	}
	if hr, body := h.get(t, http.MethodGet, "http://mem/v1/vol/read?off=0&count=8", nil); hr.StatusCode != 200 {
		t.Fatalf("read after recover: %d %s", hr.StatusCode, body)
	}
}

// TestRateLimited429 exercises the token-bucket layer over the wire: a
// tightly limited tenant's burst draws 429s carrying both Retry-After
// forms, while an unlimited tenant is untouched.
func TestRateLimited429(t *testing.T) {
	vol := testVolume(t, nil)
	h := NewHarness(vol, Config{Limits: Limits{
		PerTenant: map[string]TenantLimit{"slow": {Rate: 10, Burst: 2}},
	}})
	defer func() {
		if err := h.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()

	var ok, limited int
	for i := 0; i < 6; i++ {
		hr, body := h.get(t, http.MethodGet, "http://mem/v1/vol/read?off=0&count=8",
			map[string]string{"X-Tenant": "slow"})
		switch hr.StatusCode {
		case 200:
			ok++
		case StatusTooMany:
			limited++
			if hr.Header.Get("Retry-After") == "" || hr.Header.Get("X-Retry-After-Us") == "" {
				t.Fatalf("429 without Retry-After headers: %v", hr.Header)
			}
			var resp apiResponse
			if err := json.Unmarshal(body, &resp); err != nil || resp.RetryAfterUs <= 0 {
				t.Fatalf("429 body %q: %v", body, err)
			}
		default:
			t.Fatalf("unexpected status %d: %s", hr.StatusCode, body)
		}
	}
	// Burst 2 admits the first two; each read takes well under 100ms of
	// virtual time so at most one refill token can appear mid-loop.
	if ok < 2 || limited < 3 {
		t.Fatalf("ok=%d limited=%d, want >=2 / >=3", ok, limited)
	}
	for i := 0; i < 6; i++ {
		if hr, body := h.get(t, http.MethodGet, "http://mem/v1/vol/read?off=0&count=8",
			map[string]string{"X-Tenant": "fast"}); hr.StatusCode != 200 {
			t.Fatalf("unlimited tenant: %d %s", hr.StatusCode, body)
		}
	}
	st := h.GW.Stats()
	if st.RateLimited < 3 || st.OK < 8 {
		t.Fatalf("gateway stats: %+v", st)
	}
}

// TestAllowArithmetic unit-tests the bucket math directly: burst capping,
// linear refill against the virtual clock, and the Retry-After quote.
func TestAllowArithmetic(t *testing.T) {
	vol := testVolume(t, nil)
	g := NewGateway(vol, Config{Limits: Limits{
		Default: TenantLimit{Rate: 100, Burst: 3},
	}})
	// Burst admits 3 back-to-back at t=0, then rejects.
	for i := 0; i < 3; i++ {
		if ra, ok := g.allow("t", 0); !ok {
			t.Fatalf("burst draw %d rejected (retryAfter %v)", i, ra)
		}
	}
	ra, ok := g.allow("t", 0)
	if ok {
		t.Fatalf("4th draw admitted past burst")
	}
	// Empty bucket at rate 100/s: one token in 10ms.
	if want := 10 * des.Millisecond; ra < want-des.Microsecond || ra > want+des.Microsecond {
		t.Fatalf("retryAfter = %v, want ~%v", ra, want)
	}
	// Refill is linear: at t=5ms there is half a token — still rejected,
	// with half the wait quoted.
	ra, ok = g.allow("t", 5*des.Millisecond)
	if ok || ra < 5*des.Millisecond-des.Microsecond || ra > 5*des.Millisecond+des.Microsecond {
		t.Fatalf("half refill: ok=%v retryAfter=%v", ok, ra)
	}
	// After a long idle stretch the bucket caps at burst, not rate×idle.
	for i := 0; i < 3; i++ {
		if _, ok := g.allow("t", des.Second); !ok {
			t.Fatalf("post-idle draw %d rejected", i)
		}
	}
	if _, ok := g.allow("t", des.Second); ok {
		t.Fatalf("burst cap not enforced after idle")
	}
	// Rate 0 disables limiting entirely.
	g2 := NewGateway(vol, Config{})
	for i := 0; i < 100; i++ {
		if _, ok := g2.allow("t", 0); !ok {
			t.Fatalf("unlimited gateway rejected")
		}
	}
}

// TestDeterministicDigest is the tentpole's core property: the same
// multi-tenant load, driven twice over the real HTTP stack against fresh
// identical arrays, produces byte-identical reports — windows, per-tenant
// tallies, retries, everything — no matter how the OS schedules the
// tenant goroutines. The load is sized to exercise both 429 paths (token
// bucket and array admission control).
func TestDeterministicDigest(t *testing.T) {
	run := func() (string, Stats, core.ShedCounters) {
		vol := testVolume(t, func(o *core.Options) { o.MaxQueueDepth = 3 })
		h := NewHarness(vol, Config{
			Deterministic: true,
			Limits:        Limits{Default: TenantLimit{Rate: 400, Burst: 3}},
		})
		rep, err := h.RunLoad(LoadConfig{
			Tenants:    24,
			Requests:   720,
			Sectors:    vol.DataSectors(),
			Seed:       7,
			ThinkMean:  2 * des.Millisecond,
			MaxRetries: 2,
			Window:     50 * des.Millisecond,
		})
		if err != nil {
			t.Fatalf("RunLoad: %v", err)
		}
		stats := h.GW.Stats()
		sheds := vol.Sheds()
		if err := h.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		if rep.Aborted != 0 {
			t.Fatalf("aborted tenants: %d", rep.Aborted)
		}
		return rep.Digest(), stats, sheds
	}
	d1, s1, sh1 := run()
	d2, s2, sh2 := run()
	if d1 != d2 {
		t.Fatalf("digests differ:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", d1, d2)
	}
	if s1 != s2 {
		t.Fatalf("gateway stats differ: %+v vs %+v", s1, s2)
	}
	if sh1 != sh2 {
		t.Fatalf("shed counters differ: %+v vs %+v", sh1, sh2)
	}
	// The load must actually have exercised the interesting paths.
	first := strings.SplitN(d1, "\n", 2)[0]
	if s1.OK == 0 || s1.RateLimited == 0 || s1.Overloaded == 0 {
		t.Fatalf("load missed a 429 path: %+v (digest %s)", s1, first)
	}
	if sh1.Overload != s1.Overloaded {
		t.Fatalf("array sheds %d != gateway overload 429s %d", sh1.Overload, s1.Overloaded)
	}
}

// TestGatewayCloseRejects: calls against a closed gateway answer 503
// immediately, and Run exits cleanly.
func TestGatewayCloseRejects(t *testing.T) {
	vol := testVolume(t, nil)
	h := NewHarness(vol, Config{})
	if err := h.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	resp := h.GW.Do(Request{Tenant: "t", Op: core.Read, Off: 0, Count: 8})
	if resp.Status != StatusUnavailable || !strings.Contains(resp.Err, "closed") {
		t.Fatalf("Do after close: %+v", resp)
	}
	if resp := h.GW.Admin(func() error { return nil }); resp.Status != StatusUnavailable {
		t.Fatalf("Admin after close: %+v", resp)
	}
}
