package service

import (
	"errors"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/slo"
)

// Config configures a Gateway.
type Config struct {
	// Deterministic selects the counting-barrier discipline: virtual
	// time advances only when every registered tenant is parked in a
	// call, and each barrier's arrivals are admitted in (tenant, seq)
	// order — a load run is then byte-identical regardless of OS
	// scheduling. Off, the loop advances whenever any caller is waiting,
	// which is what an interactive server wants.
	Deterministic bool
	// Limits is the per-tenant rate-limit policy.
	Limits Limits
	// SLO optionally attaches the per-tenant SLO control plane. The
	// controller must wrap the same volume and is stepped exclusively on
	// the run loop: admissions consult its brownout ladder, token buckets
	// refill at its per-tier scale, completions feed its windows. Nil (the
	// default) leaves the gateway byte-identical to a controller-free
	// build.
	SLO *slo.Controller
}

type callKind uint8

const (
	callIO callKind = iota
	callSleep
	callAdmin
)

// call is one parked caller: the request, the response slot, and the
// channel its goroutine blocks on until the run loop completes it.
type call struct {
	kind  callKind
	req   Request
	dur   des.Time     // callSleep: how long
	admin func() error // callAdmin: runs on the run loop
	// counted marks a call billed to a registered tenant — the ones the
	// deterministic barrier accounts for.
	counted bool
	// overload marks a 429 caused by array admission control rather
	// than the token bucket; shed marks one caused by the SLO brownout
	// ladder.
	overload bool
	shed     bool
	resp     Response
	done     chan struct{}
}

// Gateway owns a Volume's Sim and bridges concurrent callers onto it.
// Callers park in Do/Sleep/Admin; the Run loop admits arrivals, advances
// virtual time, and wakes each caller when its completion fires. All
// Volume and Sim access happens on the Run goroutine.
type Gateway struct {
	vol core.Volume
	sim *des.Sim
	cfg Config

	mu   sync.Mutex
	cond *sync.Cond
	// clients holds the registered tenant names; accounted counts their
	// outstanding calls. The deterministic barrier opens exactly when
	// accounted == len(clients): every registered tenant is parked.
	clients   map[string]struct{}
	accounted int
	parked    int // all outstanding calls, registered or not
	pending   []*call
	closed    bool
	stats     Stats

	// Run-loop-only state (never touched under mu).
	buckets     map[string]*bucket
	outstanding map[*call]struct{} // admitted to the array, completion owed
}

// NewGateway wraps vol. The caller must run Run on its own goroutine
// before calls will complete, and must not touch vol or its Sim while
// the gateway is open.
func NewGateway(vol core.Volume, cfg Config) *Gateway {
	g := &Gateway{
		vol:         vol,
		sim:         vol.Sim(),
		cfg:         cfg,
		clients:     make(map[string]struct{}),
		buckets:     make(map[string]*bucket),
		outstanding: make(map[*call]struct{}),
	}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// Register adds a tenant to the deterministic barrier. A registered
// tenant must keep exactly one call outstanding at a time (issue, wait,
// think, issue) and must Unregister — with no call outstanding — when it
// finishes, or the barrier never opens again. Unregistered callers may
// still call Do/Admin; they are admitted at barriers without being
// waited for.
func (g *Gateway) Register(tenant string) {
	g.mu.Lock()
	g.clients[tenant] = struct{}{}
	g.cond.Broadcast()
	g.mu.Unlock()
}

// Unregister removes a tenant from the barrier.
func (g *Gateway) Unregister(tenant string) {
	g.mu.Lock()
	delete(g.clients, tenant)
	g.cond.Broadcast()
	g.mu.Unlock()
}

// Do submits one I/O and blocks until its virtual completion.
func (g *Gateway) Do(req Request) Response {
	c := &call{kind: callIO, req: req, done: make(chan struct{})}
	if !g.enqueue(c) {
		return c.resp
	}
	<-c.done
	return c.resp
}

// Sleep parks the tenant for a virtual duration — think time, or the
// backoff a 429's RetryAfter asked for. The seq keeps the tenant's calls
// totally ordered for the deterministic sort.
func (g *Gateway) Sleep(tenant string, seq uint64, d des.Time) Response {
	if d < 0 {
		d = 0
	}
	c := &call{kind: callSleep, req: Request{Tenant: tenant, Seq: seq}, dur: d, done: make(chan struct{})}
	if !g.enqueue(c) {
		return c.resp
	}
	<-c.done
	return c.resp
}

// Admin runs fn on the run loop — the only place Volume state may be
// read or mutated (stats snapshots, Crash/Recover) while the gateway is
// open — and blocks until it has run.
func (g *Gateway) Admin(fn func() error) Response {
	c := &call{kind: callAdmin, admin: fn, done: make(chan struct{})}
	if !g.enqueue(c) {
		return c.resp
	}
	<-c.done
	return c.resp
}

// Close shuts the gateway down: pending un-admitted calls are rejected,
// admitted work runs to its virtual completion, background machinery
// drains, and Run returns.
func (g *Gateway) Close() {
	g.mu.Lock()
	if !g.closed {
		g.closed = true
		g.cond.Broadcast()
	}
	g.mu.Unlock()
}

// Stats snapshots the gateway counters.
func (g *Gateway) Stats() Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.stats
}

func (g *Gateway) enqueue(c *call) bool {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		c.resp = Response{Status: StatusUnavailable, Err: ErrGatewayClosed.Error()}
		return false
	}
	if _, ok := g.clients[c.req.Tenant]; ok {
		c.counted = true
		g.accounted++
	}
	g.parked++
	g.pending = append(g.pending, c)
	g.cond.Broadcast()
	g.mu.Unlock()
	return true
}

// complete resolves one call: response recorded, barrier accounting
// released, caller woken. Runs on the run loop (or shutdown).
func (g *Gateway) complete(c *call, resp Response) {
	g.mu.Lock()
	c.resp = resp
	g.parked--
	if c.counted {
		g.accounted--
	}
	delete(g.outstanding, c)
	if c.kind == callSleep {
		g.stats.Sleeps++
	} else {
		g.stats.Requests++
		switch {
		case resp.Status == StatusOK:
			g.stats.OK++
		case resp.Status == StatusTooMany && c.shed:
			g.stats.Shed++
		case resp.Status == StatusTooMany && c.overload:
			g.stats.Overloaded++
		case resp.Status == StatusTooMany:
			g.stats.RateLimited++
		case resp.Status == StatusUnavailable:
			g.stats.Unavailable++
		case resp.Status == StatusBadRequest:
			g.stats.BadRequest++
		default:
			g.stats.Failed++
		}
	}
	g.mu.Unlock()
	close(c.done)
}

// runnableLocked reports whether the run loop has work it may do now.
func (g *Gateway) runnableLocked() bool {
	if g.cfg.Deterministic && g.accounted != len(g.clients) {
		// Some registered tenant is mid-think (or mid-HTTP-round-trip):
		// hold the barrier until every one of them is parked again.
		return false
	}
	return len(g.pending) > 0 || g.parked > 0
}

// Run is the gateway's event loop: admit arrivals, step the simulator,
// repeat. It returns after Close (nil) or on a stall (every caller
// parked with no event left to wake them).
func (g *Gateway) Run() error {
	for {
		g.mu.Lock()
		for !g.closed && !g.runnableLocked() {
			g.cond.Wait()
		}
		if g.closed {
			pending := g.pending
			g.pending = nil
			g.mu.Unlock()
			return g.shutdown(pending)
		}
		batch := g.pending
		g.pending = nil
		g.mu.Unlock()

		if len(batch) > 0 {
			g.admit(batch)
			continue // re-evaluate: admissions may have woken callers
		}
		if !g.sim.Step() {
			g.failOutstanding(ErrGatewayStalled)
			return ErrGatewayStalled
		}
	}
}

// admit routes one barrier's arrivals: deterministic order, rate-limit
// policy on the virtual clock, then one batched submit into the array so
// each touched drive schedules once.
func (g *Gateway) admit(batch []*call) {
	if g.cfg.Deterministic {
		sort.SliceStable(batch, func(i, j int) bool {
			a, b := &batch[i].req, &batch[j].req
			if a.Tenant != b.Tenant {
				return a.Tenant < b.Tenant
			}
			return a.Seq < b.Seq
		})
	}
	now := g.sim.Now()
	var ios []*call
	for _, c := range batch {
		switch c.kind {
		case callSleep:
			c := c
			g.sim.At(now+c.dur, func() {
				g.complete(c, Response{Status: StatusOK, Submit: now, Done: g.sim.Now()})
			})
		case callAdmin:
			err := c.admin()
			resp := Response{Status: statusOf(err), Submit: now, Done: now}
			if err != nil {
				resp.Err = err.Error()
			}
			g.complete(c, resp)
		default:
			// The brownout ladder sheds whole tiers before the token
			// bucket is even consulted — a shed tenant must not drain its
			// bucket.
			if ra, ok := g.cfg.SLO.Admit(now, c.req.Tenant); !ok {
				c.shed = true
				g.complete(c, Response{
					Status: StatusTooMany, Err: "shed: service brownout",
					Submit: now, Done: now, RetryAfter: ra,
				})
				continue
			}
			if ra, ok := g.allow(c.req.Tenant, now); !ok {
				g.complete(c, Response{
					Status: StatusTooMany, Err: "rate limited",
					Submit: now, Done: now, RetryAfter: ra,
				})
				continue
			}
			ios = append(ios, c)
		}
	}
	if len(ios) == 0 {
		return
	}
	ops := make([]core.BatchOp, len(ios))
	for i, c := range ios {
		c := c
		ops[i] = core.BatchOp{Op: c.req.Op, Off: c.req.Off, Count: c.req.Count, Done: func(r core.Result) {
			g.cfg.SLO.Observe(r.Done, c.req.Tenant, r.Done-r.Submit, r.Failed)
			status, errText := StatusOK, ""
			var retryAfter des.Time
			if r.Failed {
				status = statusOf(r.Err)
				if status == StatusBadRequest {
					// A completion-time failure is the array's, not the
					// caller's.
					status = StatusFailed
				}
				if status == StatusUnavailable {
					// The outage that failed this request is the kind a
					// probe cycle can heal: tell the client when to retry,
					// same contract as the 429 path.
					retryAfter = g.cfg.Limits.unavailableRetryAfter()
				}
				if r.Err != nil {
					errText = r.Err.Error()
				}
			}
			g.complete(c, Response{Status: status, Err: errText, Submit: r.Submit, Done: r.Done, RetryAfter: retryAfter})
		}}
		g.outstanding[c] = struct{}{}
	}
	errs, _ := g.vol.SubmitBatchErrs(ops)
	for i, e := range errs {
		if e == nil {
			continue
		}
		c := ios[i]
		delete(g.outstanding, c)
		resp := Response{Status: statusOf(e), Err: e.Error(), Submit: now, Done: now}
		if errors.Is(e, core.ErrOverload) {
			c.overload = true
			resp.RetryAfter = g.cfg.Limits.overloadRetryAfter()
		}
		if resp.Status == StatusUnavailable {
			// A crashed-volume rejection is retryable once a replica comes
			// back; hint like the 429 path does. (A cluster-backed volume
			// only rejects this way when every replica is down — partial
			// outages fail over inside the cluster and never surface here.)
			resp.RetryAfter = g.cfg.Limits.unavailableRetryAfter()
		}
		if resp.Status == StatusUnavailable || resp.Status == StatusFailed {
			// 5xx-class synchronous rejections (a crashed array) are SLO
			// failures; 4xx-class backpressure and caller errors are not.
			g.cfg.SLO.Observe(now, c.req.Tenant, 0, true)
		}
		g.complete(c, resp)
	}
}

// shutdown finishes a closed gateway: reject what was never admitted,
// run admitted work to completion, and settle the volume's background
// machinery so its counters reconcile.
func (g *Gateway) shutdown(pending []*call) error {
	for _, c := range pending {
		g.complete(c, Response{Status: StatusUnavailable, Err: ErrGatewayClosed.Error()})
	}
	for {
		g.mu.Lock()
		parked := g.parked
		pend := g.pending
		g.pending = nil
		g.mu.Unlock()
		for _, c := range pend { // stragglers racing Close
			g.complete(c, Response{Status: StatusUnavailable, Err: ErrGatewayClosed.Error()})
		}
		if parked == 0 {
			break
		}
		if !g.sim.Step() {
			g.failOutstanding(ErrGatewayStalled)
			return ErrGatewayStalled
		}
	}
	g.vol.Drain(des.Hour)
	return nil
}

// failOutstanding resolves every admitted-but-incomplete call with err,
// in (tenant, seq) order so even the failure path is deterministic.
func (g *Gateway) failOutstanding(err error) {
	calls := make([]*call, 0, len(g.outstanding))
	for c := range g.outstanding {
		calls = append(calls, c)
	}
	sort.Slice(calls, func(i, j int) bool {
		a, b := &calls[i].req, &calls[j].req
		if a.Tenant != b.Tenant {
			return a.Tenant < b.Tenant
		}
		return a.Seq < b.Seq
	})
	for _, c := range calls {
		g.complete(c, Response{Status: StatusUnavailable, Err: err.Error()})
	}
}
