package service

import (
	"context"
	"fmt"
	"net"
	"sync"
)

// MemListener is an in-process net.Listener over synchronous pipes: the
// load generator and tests run the full HTTP stack — client transport,
// wire format, server connection handling — without a TCP port. Dial
// returns the client half of a fresh pipe whose server half comes out of
// Accept.
type MemListener struct {
	conns  chan net.Conn
	once   sync.Once
	closed chan struct{}
}

// NewMemListener returns an open listener.
func NewMemListener() *MemListener {
	return &MemListener{conns: make(chan net.Conn), closed: make(chan struct{})}
}

// Dial opens a new connection to the listener.
func (l *MemListener) Dial(ctx context.Context) (net.Conn, error) {
	client, server := net.Pipe()
	select {
	case l.conns <- server:
		return client, nil
	case <-l.closed:
		return nil, fmt.Errorf("memlistener: closed")
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Accept implements net.Listener.
func (l *MemListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.conns:
		return c, nil
	case <-l.closed:
		return nil, net.ErrClosed
	}
}

// Close implements net.Listener.
func (l *MemListener) Close() error {
	l.once.Do(func() { close(l.closed) })
	return nil
}

type memAddr struct{}

func (memAddr) Network() string { return "mem" }
func (memAddr) String() string  { return "mem" }

// Addr implements net.Listener.
func (l *MemListener) Addr() net.Addr { return memAddr{} }
