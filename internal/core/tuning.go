package core

import (
	"fmt"

	"repro/internal/des"
)

// Tuning is the runtime-adjustable slice of Options — the actuators an SLO
// controller (or an operator) may step while the array is live: hedging
// aggressiveness, admission depth, and the pacing of every class of
// background work. Each field keeps the semantics of its Options
// counterpart (0 selects the documented default / adaptive mode); setters
// validate exactly like New, so a live array can never be tuned into a
// configuration construction would have rejected.
type Tuning struct {
	// HedgeAfter is the hedged-read delay (Options.HedgeAfter): 0 means
	// adaptive p99-derived, positive pins it. Ignored unless hedging was
	// enabled at construction.
	HedgeAfter des.Time
	// MaxQueueDepth is the admission-control shed depth
	// (Options.MaxQueueDepth); 0 disables shedding.
	MaxQueueDepth int
	// RebuildMBps paces hot-spare reconstruction; 0 restores the default
	// 8 MB/s.
	RebuildMBps float64
	// ScrubMBps paces the background scrubber — the active pass re-paces
	// from its next chunk, and future StartScrub calls with MBps 0 inherit
	// it. 0 means DefaultScrubMBps.
	ScrubMBps float64
	// RecoveryScanMBps paces the post-crash divergence scan — an active
	// scan re-paces from its next batch. 0 means DefaultRecoveryScanMBps.
	RecoveryScanMBps float64
}

// Tuning snapshots the array's current actuator settings. The returned
// value round-trips through SetTuning unchanged.
func (a *Array) Tuning() Tuning {
	t := Tuning{
		HedgeAfter:       a.opts.HedgeAfter,
		MaxQueueDepth:    a.opts.MaxQueueDepth,
		RebuildMBps:      a.opts.RebuildMBps,
		ScrubMBps:        a.opts.Scrub.MBps,
		RecoveryScanMBps: a.opts.Crash.ScanMBps,
	}
	if s := a.scrub; s != nil && !s.done {
		t.ScrubMBps = s.opts.MBps
	}
	if s := a.recScan; s != nil && !s.done {
		t.RecoveryScanMBps = s.mbps
	}
	return t
}

// SetTuning applies t, re-pacing any background work already in flight:
// the scrubber and recovery scan pick up their new bandwidth at the next
// chunk, rebuild at the next chunk start, hedging and admission control at
// the next submit. Invalid values are rejected atomically (nothing is
// applied).
func (a *Array) SetTuning(t Tuning) error {
	if t.HedgeAfter < 0 {
		return fmt.Errorf("core: negative hedge delay %v", t.HedgeAfter)
	}
	if t.MaxQueueDepth < 0 {
		return fmt.Errorf("core: negative max queue depth %d", t.MaxQueueDepth)
	}
	if t.RebuildMBps < 0 || t.ScrubMBps < 0 || t.RecoveryScanMBps < 0 {
		return fmt.Errorf("core: negative background bandwidth in %+v", t)
	}
	a.opts.HedgeAfter = t.HedgeAfter
	a.opts.MaxQueueDepth = t.MaxQueueDepth
	a.opts.RebuildMBps = t.RebuildMBps
	if a.opts.RebuildMBps == 0 {
		a.opts.RebuildMBps = 8 // New's default
	}
	a.opts.Scrub.MBps = t.ScrubMBps
	if s := a.scrub; s != nil && !s.done {
		mbps := t.ScrubMBps
		if mbps == 0 {
			mbps = DefaultScrubMBps
		}
		s.opts.MBps = mbps
	}
	a.opts.Crash.ScanMBps = t.RecoveryScanMBps
	if s := a.recScan; s != nil && !s.done {
		mbps := t.RecoveryScanMBps
		if mbps == 0 {
			mbps = DefaultRecoveryScanMBps
		}
		s.mbps = mbps
	}
	return nil
}
