// Package core implements the MimdRAID array controller — the paper's
// primary contribution assembled from the substrate packages: the logical
// disk layer, the disk configuration layer (striping / mirroring / RAID-10
// / SR-Array / SR-Mirror via package layout), per-drive scheduling queues
// (package sched), delayed write propagation with an NVRAM metadata table
// (Section 3.4), the duplicate-request heuristic for scheduling reads on
// mirrors (Section 3.3), and the head-tracking calibration machinery in
// prototype mode (Section 3.2).
package core

import (
	"fmt"
	"math/rand"

	"repro/internal/bus"
	"repro/internal/calib"
	"repro/internal/des"
	"repro/internal/disk"
	"repro/internal/layout"
	"repro/internal/obs"
	"repro/internal/sched"
)

// Op is a logical operation.
type Op int

const (
	Read Op = iota
	Write
)

func (o Op) String() string {
	if o == Write {
		return "write"
	}
	return "read"
}

// Result reports one completed logical request.
type Result struct {
	Op     Op
	Off    int64
	Count  int
	Async  bool // asynchronous write (reported separately, per the paper)
	Submit des.Time
	Done   des.Time
	// Failed reports that some piece of the request had no surviving copy
	// (a drive failure made the data unreachable). Mirrored and SR-Mirror
	// configurations survive single failures; striping and plain SR-Arrays
	// do not — the reliability side of the capacity tradeoff.
	Failed bool
	// Err classifies the first failure when Failed is set (ErrDataLost or
	// ErrNoFreshReplica); nil otherwise.
	Err error
}

// Latency is the response time.
func (r Result) Latency() des.Time { return r.Done - r.Submit }

// Options configures an Array.
type Options struct {
	Config layout.Config
	// Policy names the per-drive scheduler: fcfs, sstf, look, satf, rlook,
	// rsatf. Empty selects satf, or rsatf when Config.Dr > 1.
	Policy string
	// Spec is the drive model; zero value selects the ST39133LWV.
	Spec disk.Spec
	// DataSectors is the logical volume size; 0 means one disk's capacity.
	DataSectors int64
	// Prototype enables the noisy-timing mode: drives hide their mechanics
	// behind the bus noise model and scheduling runs on calibrated
	// estimates from the head tracker.
	Prototype bool
	// Seed drives all randomness (spindle phases, noise streams).
	Seed int64
	// ForegroundWrites disables delayed propagation: a write completes
	// only when every copy is on disk (the worst case of Section 2.2).
	ForegroundWrites bool
	// NVRAMEntries bounds the delayed-write metadata table; 0 means the
	// prototype's 10000.
	NVRAMEntries int
	// IdleDelay is how long a drive's foreground queue must stay empty
	// before background replica propagation starts (so intra-burst gaps
	// don't trigger 5 ms propagations in front of the next request). 0
	// means the 10 ms default; negative disables the wait.
	IdleDelay des.Time
	// TCQDepth enables tagged command queueing: each drive accepts up to
	// this many commands and schedules them internally by shortest access
	// time (firmware-grade knowledge of its own mechanics). The host policy
	// must then be order-free — fcfs, or rfcfs to keep host-side rotational
	// replica choice (the paper's open question about drives with
	// intelligent internal scheduling).
	TCQDepth int
	// OpportunisticTracking refines the head tracker's phase from ordinary
	// request completions (the paper's unimplemented optimization).
	OpportunisticTracking bool
	// RecalibrateEvery overrides the head tracker's reference-read
	// interval (0 keeps the default two minutes).
	RecalibrateEvery des.Time

	// Faults injects per-drive transient errors and command timeouts (see
	// disk.FaultModel), and assigns fail-slow profiles (persistent
	// service-time inflation and stutter windows) to individual drives.
	// Each drive draws from its own stream seeded off Seed, so fault and
	// slowness sequences are reproducible and a zero model leaves existing
	// runs byte-identical.
	Faults disk.FaultModel
	// Spares adds hot-spare drives beyond Config.Disks(). When a drive of
	// a mirrored configuration (Dm >= 2) fail-stops, a spare is swapped
	// into its slot and the lost chunks are reconstructed from surviving
	// mirrors in the background.
	Spares int
	// RebuildMBps caps the reconstruction bandwidth of a rebuild so
	// foreground latency stays bounded; 0 means 8 MB/s.
	RebuildMBps float64

	// Health configures the per-drive fail-slow health tracker (EWMA
	// service latency versus the array median, plus fault counts) with
	// Healthy -> Suspect -> Evicted states. The zero value disables
	// tracking entirely.
	Health HealthOptions
	// Hedge enables hedged reads: a dispatched foreground read that has
	// not completed after HedgeAfter is duplicated onto another fresh
	// mirror, and whichever copy finishes first answers the caller (the
	// loser is cancelled from its queue or its completion discarded). The
	// post-dispatch generalization of the mirror duplicate-request
	// heuristic, aimed at fail-slow drives rather than busy ones.
	Hedge bool
	// HedgeAfter is the hedge delay. 0 derives it adaptively from the
	// observed p99 of foreground read service times (the hedged-request
	// policy of Dean & Barroso); a fixed positive value pins it.
	HedgeAfter des.Time
	// MaxQueueDepth sheds a logical request at Submit with ErrOverload
	// when every candidate drive of some piece already has at least this
	// many foreground requests queued. 0 disables admission control.
	// While any drive's queue is at least half this deep, background work
	// (delayed propagation, rebuild chunk starts) is throttled.
	MaxQueueDepth int
	// ReadDeadline fails a queued read with ErrDeadlineExceeded if it has
	// not been dispatched within this budget of its submission — load
	// shedding for callers who would rather retry elsewhere than wait out
	// a saturated queue. In-flight commands are never aborted. 0 disables.
	ReadDeadline des.Time
	// VerifyReads checks every foreground/hedged read's data against the
	// integrity oracle (the simulator's stand-in for per-extent
	// checksums): corrupt or stale data is never returned — the read fails
	// over to a clean replica and an in-place repair of the bad copy is
	// queued. Off, corrupt data flows to the caller and is tallied in
	// FaultCounters.SilentReads.
	VerifyReads bool
	// Scrub starts the paced background scrubber at construction: a
	// cylinder-order walk of every drive's chunk copies issuing
	// background-class verify reads and repairing what they catch. See
	// ScrubOptions.
	Scrub ScrubOptions
	// Crash enables the whole-array power-failure model: Crash()/Recover()
	// become available (or fire automatically at CrashModel.At), NVRAM
	// durability follows CrashModel.Durability, and restart runs the
	// recovery pipeline. The zero value disables the model entirely and
	// keeps every hot path untouched. See CrashModel.
	Crash CrashModel

	// Obs, when non-nil, attaches the array to an observability registry:
	// per-drive latency histograms, scheduler decision counters, fault and
	// rebuild accounting, and (when the registry enables tracing)
	// per-request trace rings. Nil keeps every hot path untouched — the
	// recording calls are guarded by a single pointer check and the
	// disabled cost is zero allocations.
	Obs *obs.Registry
	// ObsLabel names this array's recorder in the registry; empty derives
	// "config/policy/seedN" from the options.
	ObsLabel string

	// Ablation knobs (all default to the paper's design).
	//
	// FixedSlack pins the rotational slack to a constant k instead of the
	// feedback controller; -1 (default 0 value means adaptive) — use
	// FixedSlackSet to distinguish.
	FixedSlack    int
	FixedSlackSet bool
	// DisableCoalescing keeps superseded delayed writes instead of
	// discarding them.
	DisableCoalescing bool
	// DisableDupRequests replaces the duplicate-request mirror heuristic
	// with a static choice of the estimated-nearest mirror at submit time.
	DisableDupRequests bool
}

// Array is a configured MimdRAID logical disk.
type Array struct {
	sim  *des.Sim
	opts Options
	lay  *layout.Layout

	drives []*drive
	// spares holds the unused hot spares, consumed front-first by
	// rebuilds.
	spares []*drive
	// rebuild is the active hot-spare rebuild, nil when none is running.
	rebuild *rebuildState
	// lostChunks records chunks no rebuild could reconstruct — data that
	// is permanently gone.
	lostChunks map[int64]bool
	reqSeq     uint64

	// writeGate serializes delayed-mode first-copy writes per chunk: two
	// concurrent first copies of the same chunk landing on different
	// mirror disks would each mark the other's disk stale, leaving no
	// fresh replica anywhere. Waiters carry their userRequest so a crash
	// can fail them instead of running them against a dead array.
	writeGate map[int64][]gateWaiter

	nvramCap  int
	nvramUsed int

	// Counters exposed for experiments and tests.
	ForcedDelayed  int64 // delayed writes forced out by a full table
	RefReads       int64 // head-tracking reference reads issued
	RotationMisses int64
	Dispatches     int64

	faults    FaultCounters
	breakdown Breakdown
	hedges    HedgeCounters
	sheds     ShedCounters

	// integrity gates the silent-corruption oracle: true when corruption
	// can be injected, reads are verified, or a scrubber runs. False keeps
	// every read/write path free of oracle work (and allocation).
	integrity bool
	// verSeq stamps logical writes; committed holds each chunk's durable
	// content version (see integrity.go).
	verSeq    uint64
	committed map[int64]uint64
	// scrub is the background scrubber state, nil until started; scrubCtr
	// accumulates its counters (surviving scrubber completion).
	scrub    *scrubState
	scrubCtr ScrubCounters

	// Crash/recovery state (see crash.go and recovery.go). crashed marks
	// the power-failed window between Crash and Recover; crashSnap holds
	// the battery-backed NVRAM snapshot taken at the instant of the crash;
	// crashDelayed counts the delayed propagation copies that were pending
	// then. crashScrub* remember an interrupted scrub pass for resumption.
	// recScan is the active post-recovery divergence scan; recCtr
	// accumulates crash/recovery counters across cycles.
	crashed          bool
	crashAt          des.Time
	crashSnap        []byte
	crashDelayed     int64
	crashScrubActive bool
	crashScrubOpts   ScrubOptions
	recScan          *recoveryScan
	recCtr           RecoveryCounters
	// slowEpoch counts SetDriveSlow calls so each mid-run profile draws a
	// fresh deterministic stutter stream.
	slowEpoch int64

	// hedgeLat accumulates clean foreground read service times for the
	// adaptive hedge delay (maintained only when Hedge is on and
	// HedgeAfter is 0).
	hedgeLat latHist
	// healthScratch is reused by the health tracker's median computation
	// so per-completion evaluation never allocates.
	healthScratch []float64

	// obsRec is the array's observability recorder; nil when Options.Obs
	// was not set (the common case — hot paths check the per-drive rec
	// pointer instead of this).
	obsRec *obs.Recorder

	// Free lists backing the zero-allocation submit/dispatch path (see
	// pool.go). The array runs on one goroutine (its Sim), so no locking.
	freeReqs        *pooledReq
	freeRuns        *extentRun
	freeURs         *userRequest
	freeFGs         *fgWrite
	freeCopies      *delayedCopy
	freeEntries     *propEntry
	freeChunkStates *chunkState
	// touched is registerPropagation's reusable drive set.
	touched []*drive

	// deferKicks batches drive kicks during SubmitBatch: enqueues record
	// their drive in pendingKicks (once each) and the batch flush kicks
	// them in first-touch order.
	deferKicks   bool
	pendingKicks []*drive
}

// Breakdown decomposes foreground service time into its mechanical
// components, summed over dispatched requests — the quantitative form of
// Section 2's reasoning about where an SR-Array saves time. Queue is the
// wait between arrival and dispatch; Overhead is command processing and
// transfer-tail time.
type Breakdown struct {
	N        int64
	Queue    des.Time
	Overhead des.Time
	Seek     des.Time
	Rotate   des.Time
	Transfer des.Time
}

// Means returns the per-request averages.
func (b Breakdown) Means() (queue, overhead, seek, rotate, transfer des.Time) {
	if b.N == 0 {
		return
	}
	n := des.Time(b.N)
	return b.Queue / n, b.Overhead / n, b.Seek / n, b.Rotate / n, b.Transfer / n
}

// BreakdownReport returns the accumulated service-time decomposition.
func (a *Array) BreakdownReport() Breakdown { return a.breakdown }

// drive bundles one spindle's queueing and calibration state.
type drive struct {
	id    int
	bus   *bus.Drive
	dsk   *disk.Disk
	sched sched.Scheduler
	est   calib.AccessEstimator
	trk   *calib.Tracker
	slack *calib.SlackController
	acc   calib.AccuracyStats

	queue   []*sched.Request
	delayed []*delayedCopy
	stale   map[int64]*chunkState // chunk -> pending-propagation state
	// integ is the integrity oracle's per-chunk copy state (content
	// versions and corruption marks), allocated lazily and only when the
	// oracle is on.
	integ map[int64]*integState

	refInFlight bool
	// rec is this drive's observability slot, keyed by physical creation
	// index — stable even when a spare's id is reassigned to the failed
	// slot it replaces. Nil (metrics disabled) short-circuits every
	// recording site with one pointer check.
	rec *obs.DriveMetrics
	// failed marks a fail-stopped drive: it finishes its in-flight command
	// and then accepts no further work.
	failed bool
	// missing marks chunks this drive holds no valid data for — a
	// swapped-in spare before its rebuild reaches them, or chunks lost
	// outright. Reads and writes steer around them.
	missing map[int64]bool
	// lastActive is the last time foreground work touched the drive; the
	// idle-delay gate for background propagation measures from it.
	lastActive des.Time
	// recheckAt dedups scheduled idle-gate rechecks.
	recheckAt des.Time
	// kickFn is the drive's cached kick callback, so recheck events
	// schedule without allocating a closure per event.
	kickFn func()
	// kickPending marks the drive as already recorded in the array's
	// deferred-kick list during a SubmitBatch.
	kickPending bool

	// Fail-slow health tracking (see health.go). ewmaUS smooths the
	// drive's clean foreground service times; healthN counts the samples
	// behind it; faultCount counts injected faults the drive surfaced;
	// health is the tracked state. All zero when tracking is disabled.
	ewmaUS     float64
	healthN    int64
	faultCount int64
	health     HealthState
}

// New builds the array, its simulated drives, and (in prototype mode)
// bootstraps each drive's head tracker. Construction advances the
// simulation clock past calibration, as attaching disks did on the real
// prototype.
func New(sim *des.Sim, opts Options) (*Array, error) {
	if opts.Spec.Name == "" {
		opts.Spec = disk.ST39133LWV()
	}
	if opts.Policy == "" {
		if opts.Config.Dr > 1 {
			opts.Policy = "rsatf"
		} else {
			opts.Policy = "satf"
		}
	}
	if opts.NVRAMEntries == 0 {
		opts.NVRAMEntries = 10000
	}
	if opts.IdleDelay == 0 {
		opts.IdleDelay = 10 * des.Millisecond
	} else if opts.IdleDelay < 0 {
		opts.IdleDelay = 0
	}
	if opts.TCQDepth > 0 && opts.Policy != "fcfs" && opts.Policy != "rfcfs" {
		return nil, fmt.Errorf("core: TCQ delegates ordering to the drive; host policy must be fcfs or rfcfs, not %q", opts.Policy)
	}
	if err := opts.Faults.Validate(); err != nil {
		return nil, err
	}
	for i := range opts.Faults.Slow {
		if i >= opts.Config.Disks()+opts.Spares {
			return nil, fmt.Errorf("core: slow profile for drive %d with %d drives", i, opts.Config.Disks()+opts.Spares)
		}
	}
	if err := opts.Health.validate(); err != nil {
		return nil, err
	}
	if opts.HedgeAfter < 0 {
		return nil, fmt.Errorf("core: negative hedge delay %v", opts.HedgeAfter)
	}
	if opts.MaxQueueDepth < 0 {
		return nil, fmt.Errorf("core: negative max queue depth %d", opts.MaxQueueDepth)
	}
	if opts.ReadDeadline < 0 {
		return nil, fmt.Errorf("core: negative read deadline %v", opts.ReadDeadline)
	}
	if opts.Spares < 0 {
		return nil, fmt.Errorf("core: negative spare count %d", opts.Spares)
	}
	if opts.RebuildMBps < 0 {
		return nil, fmt.Errorf("core: negative rebuild bandwidth %v", opts.RebuildMBps)
	}
	if opts.RebuildMBps == 0 {
		opts.RebuildMBps = 8
	}
	if err := opts.Scrub.validate(); err != nil {
		return nil, err
	}
	if err := opts.Crash.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	// Build a reference drive to size the volume.
	refSpec := opts.Spec
	ref, err := refSpec.New()
	if err != nil {
		return nil, err
	}
	dataSectors := opts.DataSectors
	if dataSectors == 0 {
		// Default to one disk's worth of data, aligned down to whole
		// stripe units across all positions so every configuration of this
		// budget can hold it exactly.
		unit := opts.Config.StripeUnit
		if unit == 0 {
			unit = layout.DefaultStripeUnit
		}
		align := int64(unit * opts.Config.Positions())
		if align <= 0 {
			align = int64(unit)
		}
		dataSectors = ref.Geom.TotalSectors() / align * align
	}
	lay, err := layout.New(opts.Config, ref.Geom, dataSectors)
	if err != nil {
		return nil, err
	}
	a := &Array{
		sim: sim, opts: opts, lay: lay, nvramCap: opts.NVRAMEntries,
		writeGate:  make(map[int64][]gateWaiter),
		lostChunks: make(map[int64]bool),
	}
	// The oracle runs whenever something can corrupt data or consult the
	// check; otherwise the committed map stays nil and no path touches it.
	// The crash model needs it too: the recovery scan walks content
	// versions to find replicas a lost delayed copy left divergent.
	a.integrity = opts.Faults.CorruptionEnabled() || opts.VerifyReads || opts.Scrub.Enabled ||
		opts.Crash.Enabled
	if a.integrity {
		a.committed = make(map[int64]uint64)
	}

	noise := bus.DefaultNoise()
	newDrive := func(i int) (*drive, error) {
		sp := opts.Spec
		sp.Phase = rng.Float64()
		if opts.Prototype {
			sp.RSkew = (rng.Float64()*2 - 1) * 4e-4
		}
		dsk, err := sp.New()
		if err != nil {
			return nil, err
		}
		sc, err := sched.New(opts.Policy)
		if err != nil {
			return nil, err
		}
		d := &drive{id: i, dsk: dsk, sched: sc, stale: make(map[int64]*chunkState)}
		d.kickFn = func() { a.kick(d) }
		if opts.Prototype {
			d.bus = bus.NewPrototype(sim, dsk, noise, opts.Seed+int64(i)*7919+1)
			post := noise.PostBase + noise.PostJitter + des.Time(float64(disk.SectorSize)/(160e6/1e6))
			d.trk = calib.NewTracker(dsk.Geom, dsk.NominalR, post)
			if opts.RecalibrateEvery > 0 {
				d.trk.RecalibrateEvery = opts.RecalibrateEvery
			}
			d.slack = calib.NewSlackController(4)
			if opts.FixedSlackSet {
				d.slack = calib.NewSlackController(opts.FixedSlack)
				d.slack.MinK = opts.FixedSlack
				d.slack.MaxK = opts.FixedSlack
			}
			d.est = &calib.Tracked{
				Geom:       dsk.Geom,
				Seek:       dsk.Seek, // as recovered by calib.MeasureSeekCurve
				HeadSwitch: dsk.HeadSwitch,
				Pre:        noise.PreBase + noise.PreJitter,
				Post:       post,
				Trk:        d.trk,
				Slack:      d.slack,
			}
		} else {
			d.bus = bus.NewSim(sim, dsk)
			d.est = &calib.Exact{Dsk: dsk, Overhead: d.bus.CmdOverhead}
		}
		if opts.TCQDepth > 0 {
			d.bus.EnableTCQ(opts.TCQDepth)
		}
		// A distinct stream per drive keeps fault sequences independent of
		// each other and of every other randomness source.
		d.bus.SetFaults(disk.NewFaultInjector(opts.Faults, opts.Seed+int64(i)*15485863+3))
		// Slow streams are seeded separately so enabling stutters never
		// perturbs which commands draw transient faults.
		d.bus.SetSlow(disk.NewSlowState(opts.Faults.SlowFor(i), opts.Seed+int64(i)*32452843+11))
		// Corruption draws come from a third independent stream: enabling
		// silent corruption never perturbs faults or stutters.
		d.bus.SetCorruption(disk.NewCorruptionInjector(opts.Faults, opts.Seed+int64(i)*49979687+17))
		return d, nil
	}
	for i := 0; i < opts.Config.Disks(); i++ {
		d, err := newDrive(i)
		if err != nil {
			return nil, err
		}
		a.drives = append(a.drives, d)
	}
	// Spares come after the main drives so that a Spares=0 configuration
	// consumes exactly the seed's random stream and stays byte-identical.
	for k := 0; k < opts.Spares; k++ {
		d, err := newDrive(opts.Config.Disks() + k)
		if err != nil {
			return nil, err
		}
		a.spares = append(a.spares, d)
	}
	if opts.Obs != nil {
		label := opts.ObsLabel
		if label == "" {
			label = fmt.Sprintf("%s/%s/seed%d", opts.Config, opts.Policy, opts.Seed)
		}
		a.obsRec = opts.Obs.NewRecorder(label, len(a.drives)+len(a.spares))
		attach := func(d *drive, slot int) {
			d.rec = a.obsRec.Drive(slot)
			d.sched = sched.Observe(d.sched, d.rec)
		}
		for i, d := range a.drives {
			attach(d, i)
		}
		for k, d := range a.spares {
			attach(d, len(a.drives)+k)
		}
	}
	if opts.Prototype {
		for _, d := range a.drives {
			d.trk.Bootstrap(sim, d.bus)
			a.RefReads += int64(d.trk.ObsCount)
		}
		for _, d := range a.spares {
			d.trk.Bootstrap(sim, d.bus)
			a.RefReads += int64(d.trk.ObsCount)
		}
	}
	if opts.Scrub.Enabled {
		if err := a.StartScrub(opts.Scrub); err != nil {
			return nil, err
		}
	}
	if opts.Crash.Enabled && opts.Crash.At > 0 {
		a.scheduleCrash(opts.Crash.At, opts.Crash.RecoverAfter)
	}
	return a, nil
}

// Obs returns the array's observability recorder, nil unless Options.Obs
// attached one.
func (a *Array) Obs() *obs.Recorder { return a.obsRec }

// Layout exposes the array's data placement.
func (a *Array) Layout() *layout.Layout { return a.lay }

// Sim returns the simulation kernel the array runs on.
func (a *Array) Sim() *des.Sim { return a.sim }

// DataSectors returns the logical volume size in sectors.
func (a *Array) DataSectors() int64 { return a.lay.DataSectors() }

// Disks returns the number of drives.
func (a *Array) Disks() int { return len(a.drives) }

// QueueLen returns the foreground queue length of drive i (in-flight
// excluded).
func (a *Array) QueueLen(i int) int { return len(a.drives[i].queue) }

// DelayedLen returns drive i's pending delayed-write count.
func (a *Array) DelayedLen(i int) int { return len(a.drives[i].delayed) }

// NVRAMUsed returns the number of live delayed-write table entries.
func (a *Array) NVRAMUsed() int { return a.nvramUsed }

// BusyTime returns the cumulative busy time of drive i.
func (a *Array) BusyTime(i int) des.Time { return a.drives[i].bus.BusyTime }

// Commands returns the number of media commands drive i has executed.
func (a *Array) Commands(i int) int64 { return a.drives[i].bus.Commands }

// Accuracy merges the per-drive prediction accuracy stats (prototype
// mode): Table 2's inputs.
func (a *Array) Accuracy() *calib.AccuracyStats {
	var out calib.AccuracyStats
	for _, d := range a.drives {
		out.Merge(&d.acc)
	}
	return &out
}

// RotationPeriod returns drive 0's (estimated) rotation period.
func (a *Array) RotationPeriod() des.Time { return a.drives[0].est.RotationPeriod() }

func (a *Array) nextID() uint64 {
	a.reqSeq++
	return a.reqSeq
}

// Submit issues a logical I/O. done runs at completion time (through the
// simulator); it may be nil. With MaxQueueDepth configured, an overloaded
// array rejects the request synchronously with ErrOverload (done is never
// invoked) — callers shed load instead of deepening a saturated queue.
func (a *Array) Submit(op Op, off int64, count int, async bool, done func(Result)) error {
	if a.crashed {
		return ErrCrashed
	}
	ur := a.getUR()
	pieces, err := a.lay.ResolveArena(off, count, &ur.arena)
	if err != nil {
		a.putUR(ur)
		return err
	}
	if a.opts.MaxQueueDepth > 0 {
		if err := a.admit(op, pieces); err != nil {
			a.putUR(ur)
			return err
		}
	}
	if op == Read {
		pieces = a.mergeReadPieces(ur, pieces)
	}
	ur.op, ur.off, ur.count, ur.async = op, off, count, async
	ur.submit = a.sim.Now()
	ur.done = done
	ur.remaining = len(pieces)
	// The resolved extents outlive the request's completion in three cases,
	// which fall back to the garbage collector: delayed-mode writes park
	// arena extents in delayedCopies until propagation lands; a hedged read
	// can leave its duplicate in flight past the primary's completion; and
	// with the integrity oracle on, repair machinery is kept conservative.
	ur.noRecycle = a.opts.Hedge || a.integrity ||
		(op == Write && !a.opts.ForegroundWrites)
	ur.submitting = true
	for i := range pieces {
		p := &pieces[i]
		if op == Read {
			a.submitRead(ur, p)
		} else {
			a.submitWrite(ur, p)
		}
	}
	ur.submitting = false
	if ur.remaining == 0 && ur.pooled && !ur.noRecycle {
		// Every piece resolved synchronously (failure paths); pieceDone
		// deferred the recycle to us.
		a.putUR(ur)
	}
	return nil
}

// BatchOp is one operation of a SubmitBatch.
type BatchOp struct {
	Op    Op
	Off   int64
	Count int
	Async bool
	// Done runs at the operation's completion, like Submit's done.
	Done func(Result)
}

// SubmitBatch issues a batch of logical I/Os with amortized dispatch:
// every operation is validated, resolved, and routed into the drive queues
// first, and each touched drive is kicked exactly once at the end, so the
// per-drive schedulers see the whole batch instead of scheduling after
// every operation. Closed-loop drivers priming many outstanding requests
// and clients carrying queues of accumulated work get one scheduling pass
// per drive instead of one per operation.
//
// Operations are submitted in order. The first error stops the batch;
// already-routed operations stay submitted (their Done callbacks will
// run), and the count of successfully submitted operations is returned
// with the error.
func (a *Array) SubmitBatch(ops []BatchOp) (int, error) {
	if a.deferKicks {
		panic("core: SubmitBatch reentered")
	}
	a.deferKicks = true
	n := 0
	var err error
	for i := range ops {
		o := &ops[i]
		if e := a.Submit(o.Op, o.Off, o.Count, o.Async, o.Done); e != nil {
			err = e
			break
		}
		n++
	}
	a.deferKicks = false
	a.flushKicks()
	return n, err
}

// SubmitBatchErrs issues the batch like SubmitBatch but does not stop at
// the first failed submission: every operation is attempted in order, and
// per-operation submit errors (resolve errors, ErrOverload, ErrCrashed)
// are returned in an index-aligned slice. A nil slice means every
// operation was submitted. An operation whose slot is non-nil was never
// queued and its Done will not run; an operation whose slot is nil is
// queued exactly as Submit would have queued it. Note that
// ErrDeadlineExceeded is never a submission error — a read that waits out
// Options.ReadDeadline in a queue reports it through its Done result. The
// count of successfully submitted operations is returned alongside.
func (a *Array) SubmitBatchErrs(ops []BatchOp) ([]error, int) {
	if a.deferKicks {
		panic("core: SubmitBatchErrs reentered")
	}
	a.deferKicks = true
	var errs []error
	n := 0
	for i := range ops {
		o := &ops[i]
		if e := a.Submit(o.Op, o.Off, o.Count, o.Async, o.Done); e != nil {
			if errs == nil {
				errs = make([]error, len(ops))
			}
			errs[i] = e
			continue
		}
		n++
	}
	a.deferKicks = false
	a.flushKicks()
	return errs, n
}

// flushKicks kicks every drive recorded during a deferred-kick window, in
// first-touch order (deterministic: a pure function of the batch).
func (a *Array) flushKicks() {
	pend := a.pendingKicks
	a.pendingKicks = pend[:0]
	for _, d := range pend {
		d.kickPending = false
	}
	for _, d := range pend {
		a.kick(d)
	}
}

// mergeReadPieces coalesces consecutive pieces of a large read that fall
// on the same position and are physically contiguous, so a sequential
// request reaches each drive as one long command instead of one command
// per stripe chunk. Without this, per-chunk scheduling re-picks a replica
// every 64 KB and large-I/O bandwidth collapses (the exact degradation
// the paper's cross-track placement is designed to avoid). Only
// fully-fresh chunks merge: staleness tracking stays chunk-granular.
func (a *Array) mergeReadPieces(ur *userRequest, pieces []layout.Piece) []layout.Piece {
	// Single-chunk reads — the overwhelmingly common OLTP shape — skip the
	// grouping pass entirely; only the extent fuse below applies (a piece
	// can straddle a track boundary within one chunk).
	if len(pieces) == 1 {
		a.fusePieceReplicas(&pieces[0])
		return pieces
	}
	// Group by position: round-robin striping interleaves positions in
	// logical order, but each position's successive chunks are physically
	// contiguous on its disk.
	out := ur.mergeBuf[:0]
	lastAt := ur.lastAt
	if n := a.lay.Cfg.Positions(); len(lastAt) < n {
		lastAt = make([]int, n)
		ur.lastAt = lastAt
	}
	for i := range lastAt {
		lastAt[i] = -1 // position -> index in out of its last piece
	}
	for i := range pieces {
		p := pieces[i]
		if at := lastAt[p.Position]; at >= 0 {
			cur := &out[at]
			if a.pieceFresh(cur) && a.pieceFresh(&p) && a.extContiguous(cur.Replicas[0][len(cur.Replicas[0])-1], p.Replicas[0][0]) {
				// Append each replica's extents, fusing at physical joins.
				mergeable := true
				for j := 1; j < len(cur.Replicas); j++ {
					// All replicas must continue contiguously too (they do
					// by construction; guard against layout variants).
					if !a.extContiguous(cur.Replicas[j][len(cur.Replicas[j])-1], p.Replicas[j][0]) {
						mergeable = false
						break
					}
				}
				if mergeable {
					for j := range cur.Replicas {
						// Arena subslices are capacity-limited, so this append
						// copies out rather than clobbering the next piece.
						cur.Replicas[j] = append(cur.Replicas[j], p.Replicas[j]...)
					}
					cur.Count += p.Count
					continue
				}
			}
		}
		out = append(out, p)
		lastAt[p.Position] = len(out) - 1
	}
	ur.mergeBuf = out
	// Fuse physically contiguous extents so each replica reaches the bus
	// as the fewest, longest commands (the layout splits conservatively at
	// track boundaries, but a multi-track run is one LBA-contiguous
	// command that the drive streams across its skewed tracks).
	for i := range out {
		a.fusePieceReplicas(&out[i])
	}
	return out
}

// extContiguous reports whether next begins at the LBA right after prev
// ends — the two are one streamable command.
func (a *Array) extContiguous(prev, next disk.Extent) bool {
	geom := a.drives[0].dsk.Geom
	pl, err1 := geom.PhysToLBA(prev.Start)
	nl, err2 := geom.PhysToLBA(next.Start)
	return err1 == nil && err2 == nil && pl+int64(prev.Count) == nl
}

// pieceFresh reports whether every mirror of the piece's chunk is intact:
// a drive whose copy is gone (failed drive), not yet reconstructed
// (rebuilding spare), or tainted (pending propagation, detected
// corruption) makes freshness non-uniform across a merged range, so such
// pieces must stay separate and route chunk-by-chunk.
func (a *Array) pieceFresh(p *layout.Piece) bool {
	for _, id := range p.Mirrors {
		d := a.drives[id]
		if d.failed || d.unreadable(p.Chunk) || d.stale[p.Chunk] != nil || a.anyKnownBad(d, p.Chunk) {
			return false
		}
	}
	return true
}

// fusePieceReplicas compacts each replica's extent list in place, merging
// runs that are LBA-contiguous. Writes trail reads, so mutating the arena
// slice in place is safe.
func (a *Array) fusePieceReplicas(p *layout.Piece) {
	for j := range p.Replicas {
		src := p.Replicas[j]
		fused := src[:1]
		for _, e := range src[1:] {
			if n := len(fused) - 1; a.extContiguous(fused[n], e) {
				fused[n].Count += e.Count
			} else {
				fused = append(fused, e)
			}
		}
		p.Replicas[j] = fused
	}
}

// userRequest tracks a logical request across its pieces. Pooled
// instances keep their arena and merge buffers across recycles so a
// steady-state workload resolves and merges without allocating.
type userRequest struct {
	a         *Array
	op        Op
	off       int64
	count     int
	async     bool
	submit    des.Time
	remaining int
	failed    bool
	err       error
	done      func(Result)

	arena    layout.Arena
	mergeBuf []layout.Piece
	lastAt   []int // position -> merge index, reset each use

	pooled     bool // came from the free list; eligible for putUR
	noRecycle  bool // extents outlive completion; leave to the GC
	submitting bool // inside Submit's pieces loop; defer recycle
	free       bool
	next       *userRequest
}

func (ur *userRequest) pieceDone() {
	ur.remaining--
	if ur.remaining > 0 {
		return
	}
	if ur.failed {
		if ur.op == Read {
			ur.a.faults.FailedReads++
		} else {
			ur.a.faults.FailedWrites++
		}
	}
	if ur.done != nil {
		ur.done(Result{
			Op: ur.op, Off: ur.off, Count: ur.count, Async: ur.async,
			Submit: ur.submit, Done: ur.a.sim.Now(), Failed: ur.failed, Err: ur.err,
		})
	}
	// Recycle only after the user's callback returns: the Result references
	// nothing of ours, and the callback commonly reissues (closed loop),
	// which would otherwise hand back this very object while the caller's
	// frame still points at it. If we are inside Submit's synchronous
	// pieces loop, Submit recycles after the loop instead.
	if ur.pooled && !ur.noRecycle && !ur.submitting {
		ur.a.putUR(ur)
	}
}

// pieceFailed records that a piece had no surviving copy, keeping the
// first cause for the Result.
func (ur *userRequest) pieceFailed(err error) {
	ur.failed = true
	if ur.err == nil {
		ur.err = err
	}
	ur.pieceDone()
}

// FailDrive fail-stops drive i: the in-flight command (if any) finishes,
// queued work is rerouted to surviving mirrors or failed, pending replica
// propagation to the drive is dropped, and no further commands are
// accepted. With a hot spare configured and Dm >= 2, a rebuild starts
// reconstructing the lost chunks onto the spare; otherwise the array runs
// degraded, as the paper's reliability discussion assumes. Failing an
// already-failed drive is a no-op; an out-of-range index returns
// ErrDriveIndex.
func (a *Array) FailDrive(i int) error {
	if i < 0 || i >= len(a.drives) {
		return fmt.Errorf("%w: FailDrive(%d) with %d drives", ErrDriveIndex, i, len(a.drives))
	}
	d := a.drives[i]
	if d.failed {
		return nil
	}
	d.failed = true
	// A rebuild writing onto this drive dies with it; cancel before
	// dropping its queues so the per-chunk callbacks see the cancellation.
	if a.rebuild != nil && a.rebuild.slot == i {
		a.cancelRebuild()
	}
	// Drop pending propagation to this drive; the copies are lost but the
	// table entries must still resolve. Rebuild reconstruction copies never
	// marked staleness (the chunk was missing outright), and in-place
	// repairs die with the drive (counted as dropped).
	for _, c := range d.delayed {
		a.finishCopy(d, c, false, bus.Completion{})
		a.putCopy(c)
	}
	d.delayed = nil
	// Reroute or fail queued foreground work.
	queue := d.queue
	d.queue = nil
	for _, req := range queue {
		tag := req.Tag.(*reqTag)
		tag.offQueue = true
		if tag.ref {
			d.refInFlight = false
			continue
		}
		if g := tag.group; g != nil && !g.claimed {
			// Duplicates on surviving drives keep the request alive; just
			// forget this member.
			live := g.members[:0]
			for _, m := range g.members {
				if m.req != req {
					live = append(live, m)
				}
			}
			g.members = live
			if len(g.members) > 0 {
				if tag.pr != nil {
					a.putReq(tag.pr)
				}
				continue
			}
		}
		reused := a.failTag(tag)
		if !reused && tag.pr != nil {
			a.putReq(tag.pr)
		}
	}
	a.maybeStartRebuild()
	return nil
}

// Alive reports whether drive i accepts work. Out-of-range indexes are
// simply not alive.
func (a *Array) Alive(i int) bool {
	return i >= 0 && i < len(a.drives) && !a.drives[i].failed
}
