package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/des"
	"repro/internal/disk"
	"repro/internal/layout"
)

// poolStressRun drives a fault-heavy closed loop — transient errors,
// timeouts, a mid-run drive failure and rebuild onto a spare, delayed-write
// propagation — and returns a digest of everything observable. Every
// recycled pooled object (requests, extent runs, user requests, delayed
// copies) is exercised across all the release paths: clean completion,
// fault retry, duplicate-claim losers, and the FailDrive sweep.
func poolStressRun(t *testing.T) string {
	t.Helper()
	sim, a := newArray(t, layout.Config{Ds: 1, Dr: 2, Dm: 2}, "rsatf", func(o *Options) {
		o.Spares = 1
		o.Faults = disk.FaultModel{TransientRate: 0.02, TimeoutRate: 0.005}
	})
	rng := rand.New(rand.NewSource(7))
	const total = 1500
	issued, finished, failed := 0, 0, 0
	var latSum des.Time
	var issue func()
	onDone := func(r Result) {
		finished++
		if r.Failed {
			failed++
		}
		latSum += r.Latency()
		issue()
	}
	n := a.DataSectors() - 64
	issue = func() {
		if issued >= total {
			return
		}
		issued++
		op := Read
		if rng.Float64() < 0.4 {
			op = Write
		}
		if err := a.Submit(op, rng.Int63n(n), 8+rng.Intn(56), false, onDone); err != nil {
			t.Fatalf("submit: %v", err)
		}
		if issued == total/3 {
			if err := a.FailDrive(1); err != nil {
				t.Fatalf("FailDrive: %v", err)
			}
		}
	}
	for i := 0; i < 32; i++ {
		issue()
	}
	for finished < total {
		if !sim.Step() {
			t.Fatalf("stalled at %d/%d", finished, total)
		}
	}
	if !a.Drain(des.Hour) {
		t.Fatal("array never drained")
	}
	f := a.Faults()
	return fmt.Sprintf("finished=%d failed=%d lat=%v now=%v faults=%+v rebuilt=%v",
		finished, failed, latSum, sim.Now(), f, a.RebuildProgress())
}

// TestPoolPoisoningAliasRegression runs the fault-heavy loop with pool
// poisoning off and on. Poisoning scrambles every object as it returns to
// its free list, so any consumer still holding a released request, run, or
// copy either panics outright or diverges the digest. Identical digests
// mean no release path lets an alias escape.
func TestPoolPoisoningAliasRegression(t *testing.T) {
	clean := poolStressRun(t)
	defer SetPoolPoisoning(SetPoolPoisoning(true))
	poisoned := poolStressRun(t)
	if clean != poisoned {
		t.Fatalf("pool poisoning changed the simulation:\nclean:    %s\npoisoned: %s", clean, poisoned)
	}
}

// TestPooledSubmitSteadyStateAllocs pins the zero-alloc claim at the API
// boundary: a steady-state closed loop of pooled reads and delayed-mode
// writes must stay under a handful of allocations per operation (extent
// merges and scheduler scratch included, amortized).
func TestPooledSubmitSteadyStateAllocs(t *testing.T) {
	sim, a := newArray(t, layout.SRArray(2, 2), "rsatf", nil)
	rng := rand.New(rand.NewSource(3))
	n := a.DataSectors() - 8
	var issue func()
	issued, finished := 0, 0
	const total = 4000
	onDone := func(Result) { finished++; issue() }
	issue = func() {
		if issued >= total {
			return
		}
		issued++
		op := Read
		if rng.Float64() < 0.3 {
			op = Write
		}
		if err := a.Submit(op, rng.Int63n(n), 8, false, onDone); err != nil {
			t.Fatal(err)
		}
	}
	// Warm the pools with a quarter of the run before measuring.
	for i := 0; i < 16; i++ {
		issue()
	}
	for finished < total/4 {
		if !sim.Step() {
			t.Fatal("stalled during warmup")
		}
	}
	start := finished
	avg := testing.AllocsPerRun(1, func() {
		for finished < total {
			if !sim.Step() {
				t.Fatal("stalled")
			}
		}
	})
	perOp := avg / float64(total-start)
	if perOp > 5 {
		t.Fatalf("steady state allocates %.2f allocs/op, want <= 5", perOp)
	}
}
