package core

import (
	"math/rand"
	"testing"

	"repro/internal/des"
	"repro/internal/layout"
)

// A 2-way mirror survives a single drive failure: reads and writes keep
// completing on the survivor.
func TestMirrorSurvivesSingleFailure(t *testing.T) {
	_, a := newArray(t, layout.Mirror(2), "satf", nil)
	a.FailDrive(0)
	if a.Alive(0) || !a.Alive(1) {
		t.Fatal("alive state wrong after FailDrive(0)")
	}
	rng := rand.New(rand.NewSource(1))
	ok, failed := 0, 0
	for i := 0; i < 60; i++ {
		off := rng.Int63n(a.DataSectors() - 8)
		op := Read
		if i%3 == 0 {
			op = Write
		}
		if err := a.Submit(op, off, 8, false, func(r Result) {
			if r.Failed {
				failed++
			} else {
				ok++
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	if !a.Drain(des.Hour) {
		t.Fatal("drain failed")
	}
	if failed != 0 || ok != 60 {
		t.Fatalf("ok=%d failed=%d on a degraded mirror, want all 60 ok", ok, failed)
	}
	// Everything ran on the survivor.
	if a.Commands(0) != 0 {
		t.Fatalf("failed drive executed %d commands", a.Commands(0))
	}
}

// Striping has no redundancy: after a failure, requests touching the dead
// disk fail and the rest complete.
func TestStripingLosesDataOnFailure(t *testing.T) {
	_, a := newArray(t, layout.Striping(2), "satf", nil)
	a.FailDrive(0)
	unit := int64(a.Layout().StripeUnit())
	results := map[int64]bool{} // chunk -> failed
	for chunk := int64(0); chunk < 8; chunk++ {
		off := chunk * unit
		chunk := chunk
		if err := a.Submit(Read, off, 8, false, func(r Result) {
			results[chunk] = r.Failed
		}); err != nil {
			t.Fatal(err)
		}
	}
	if !a.Drain(des.Hour) {
		t.Fatal("drain failed")
	}
	for chunk, failed := range results {
		onDead := chunk%2 == 0 // position 0 holds even chunks
		if failed != onDead {
			t.Errorf("chunk %d: failed=%v, want %v", chunk, failed, onDead)
		}
	}
}

// Queued duplicate reads survive the failure of one of their candidate
// drives: the claim machinery reroutes them to the survivors.
func TestQueuedDuplicatesRerouteOnFailure(t *testing.T) {
	_, a := newArray(t, layout.Mirror(3), "satf", nil)
	rng := rand.New(rand.NewSource(2))
	ok := 0
	// Saturate so requests queue (and duplicate) before we pull a drive.
	for i := 0; i < 40; i++ {
		off := rng.Int63n(a.DataSectors() - 8)
		if err := a.Submit(Read, off, 8, false, func(r Result) {
			if !r.Failed {
				ok++
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	a.FailDrive(1)
	if !a.Drain(des.Hour) {
		t.Fatal("drain failed")
	}
	if ok != 40 {
		t.Fatalf("%d of 40 reads survived a mid-queue failure on a 3-way mirror", ok)
	}
}

// Delayed-write propagation to a failed drive is dropped and the NVRAM
// table still drains; the surviving mirror keeps serving the data.
func TestPropagationDroppedOnFailure(t *testing.T) {
	sim, a := newArray(t, layout.Config{Ds: 1, Dr: 2, Dm: 2}, "rsatf", nil)
	off := int64(4096)
	wrote := false
	if err := a.Submit(Write, off, 8, false, func(Result) { wrote = true }); err != nil {
		t.Fatal(err)
	}
	for !wrote {
		sim.Step()
	}
	// Propagation to the other mirror is pending; kill that mirror.
	if a.NVRAMUsed() == 0 {
		t.Skip("propagation already finished")
	}
	// Find a drive with pending delayed work and fail it.
	failedOne := false
	for i := 0; i < a.Disks(); i++ {
		if a.DelayedLen(i) > 0 {
			a.FailDrive(i)
			failedOne = true
			break
		}
	}
	if !failedOne {
		t.Skip("no pending per-drive propagation to drop")
	}
	if !a.Drain(des.Hour) {
		t.Fatal("drain failed")
	}
	if a.NVRAMUsed() != 0 {
		t.Fatalf("NVRAM = %d after failure drain", a.NVRAMUsed())
	}
	// The data is still readable.
	got := false
	var failed bool
	a.Submit(Read, off, 8, false, func(r Result) { got, failed = true, r.Failed })
	if !a.Drain(des.Hour) || !got || failed {
		t.Fatalf("read after degraded propagation: got=%v failed=%v", got, failed)
	}
}

// A degraded mirror is slower than a healthy one: all load lands on the
// survivor.
func TestDegradedMirrorSlower(t *testing.T) {
	measure := func(fail bool) des.Time {
		sim, a := newArray(t, layout.Mirror(2), "satf", nil)
		if fail {
			a.FailDrive(1)
		}
		return runRandomReads(t, sim, a, 200, 8, 5)
	}
	healthy := measure(false)
	degraded := measure(true)
	if degraded <= healthy {
		t.Fatalf("degraded mean %v not above healthy %v", degraded, healthy)
	}
}

// Failing a drive twice is a no-op, and failing every drive makes all
// requests fail cleanly rather than hang.
func TestTotalFailure(t *testing.T) {
	_, a := newArray(t, layout.RAID10(4), "satf", nil)
	for i := 0; i < a.Disks(); i++ {
		a.FailDrive(i)
		a.FailDrive(i)
	}
	results := 0
	failed := 0
	for i := 0; i < 10; i++ {
		if err := a.Submit(Read, int64(i)*1024, 8, false, func(r Result) {
			results++
			if r.Failed {
				failed++
			}
		}); err != nil {
			t.Fatal(err)
		}
		if err := a.Submit(Write, int64(i)*1024, 8, false, func(r Result) {
			results++
			if r.Failed {
				failed++
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	if !a.Drain(des.Hour) {
		t.Fatal("drain failed")
	}
	if results != 20 || failed != 20 {
		t.Fatalf("results=%d failed=%d, want 20/20 failed completions", results, failed)
	}
}

// A crash loses the delayed queues but not the NVRAM table: a fresh array
// instance adopts the snapshot and completes the owed copies.
func TestNVRAMSnapshotRecovery(t *testing.T) {
	sim, a := newArray(t, layout.SRArray(1, 3), "rsatf", nil)
	rng := rand.New(rand.NewSource(13))
	wrote := 0
	for i := 0; i < 15; i++ {
		off := rng.Int63n(a.DataSectors() - 8)
		wrote++
		a.Submit(Write, off, 8, false, func(Result) { wrote-- })
	}
	for wrote > 0 {
		sim.Step()
	}
	if a.NVRAMUsed() == 0 {
		t.Skip("propagation outran the crash point")
	}
	snap, err := a.SnapshotNVRAM()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) == 0 {
		t.Fatal("empty snapshot with pending entries")
	}
	// "Reboot": a brand new array of the same configuration.
	_, b := newArray(t, layout.SRArray(1, 3), "rsatf", nil)
	n, err := b.AdoptNVRAM(snap)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("recovery reissued nothing")
	}
	if !b.Drain(des.Hour) {
		t.Fatal("recovered array did not drain")
	}
	var cmds int64
	for i := 0; i < b.Disks(); i++ {
		cmds += b.Commands(i)
	}
	if cmds < int64(n) {
		t.Fatalf("recovered array executed %d commands for %d owed copies", cmds, n)
	}
}

func TestAdoptNVRAMRejectsGarbage(t *testing.T) {
	_, a := newArray(t, layout.SRArray(1, 3), "rsatf", nil)
	if _, err := a.AdoptNVRAM([]byte("not a gob stream")); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
}
