package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/des"
	"repro/internal/layout"
)

// crashArray builds a small mirrored array with the crash model enabled
// (manual Crash/Recover unless the caller sets CrashModel.At).
func crashArray(t testing.TB, durability NVRAMDurability, opts func(*Options)) (*des.Sim, *Array) {
	t.Helper()
	return newArray(t, layout.RAID10(4), "rsatf", func(o *Options) {
		o.DataSectors = 1 << 16
		o.Crash = CrashModel{Enabled: true, Durability: durability}
		if opts != nil {
			opts(o)
		}
	})
}

// crashMidLoad submits n writes, runs the simulation until the array holds
// pending delayed propagation, and crashes it there. Returns how many
// submissions have not yet reported a result.
func crashMidLoad(t *testing.T, sim *des.Sim, a *Array, n int, seed int64, outstanding *int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		off := rng.Int63n(a.DataSectors() - 8)
		*outstanding++
		if err := a.Submit(Write, off, 8, false, func(Result) { *outstanding-- }); err != nil {
			t.Fatal(err)
		}
	}
	for a.NVRAMUsed() == 0 {
		if !sim.Step() {
			t.Fatal("no delayed propagation ever became pending")
		}
	}
	if err := a.Crash(); err != nil {
		t.Fatal(err)
	}
}

func TestCrashModelValidation(t *testing.T) {
	cases := []struct {
		m  CrashModel
		ok bool
	}{
		{CrashModel{}, true},
		{CrashModel{At: -1, RecoverAfter: -1, ScanMBps: -1}, true}, // disabled: ignored
		{CrashModel{Enabled: true}, true},
		{CrashModel{Enabled: true, At: des.Second, RecoverAfter: des.Second}, true},
		{CrashModel{Enabled: true, At: -1}, false},
		{CrashModel{Enabled: true, At: des.Second, RecoverAfter: -1}, false},
		{CrashModel{Enabled: true, RecoverAfter: des.Second}, false},
		{CrashModel{Enabled: true, BatteryHorizon: -1}, false},
		{CrashModel{Enabled: true, Durability: 7}, false},
		{CrashModel{Enabled: true, ScanMBps: -0.5}, false},
	}
	for i, c := range cases {
		if err := c.m.Validate(); (err == nil) != c.ok {
			t.Errorf("case %d: Validate(%+v) = %v, want ok=%v", i, c.m, err, c.ok)
		}
	}
}

func TestCrashStateMachine(t *testing.T) {
	// Disabled model: Crash refuses.
	_, plain := newArray(t, layout.Mirror(2), "satf", nil)
	if err := plain.Crash(); err == nil {
		t.Fatal("Crash succeeded with the model disabled")
	}
	if err := plain.Recover(); err == nil {
		t.Fatal("Recover succeeded on an array that never crashed")
	}

	sim, a := crashArray(t, Volatile, nil)
	if a.Crashed() {
		t.Fatal("array born crashed")
	}
	if err := a.Crash(); err != nil {
		t.Fatal(err)
	}
	if !a.Crashed() {
		t.Fatal("Crashed() false after Crash")
	}
	if err := a.Crash(); err == nil {
		t.Fatal("second Crash succeeded")
	}
	if err := a.Submit(Read, 0, 8, false, nil); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Submit on crashed array: %v, want ErrCrashed", err)
	}
	if err := a.StartScrub(ScrubOptions{}); err == nil {
		t.Fatal("StartScrub succeeded on a crashed array")
	}
	if a.Idle() {
		t.Fatal("crashed array reports idle")
	}
	if err := a.Recover(); err != nil {
		t.Fatal(err)
	}
	if a.Crashed() {
		t.Fatal("Crashed() true after Recover")
	}
	if !a.Drain(des.Hour) {
		t.Fatal("drain after recovery")
	}
	rec := a.Recovery()
	if rec.Crashes != 1 || rec.Recoveries != 1 {
		t.Fatalf("counters %+v, want one crash and one recovery", rec)
	}
	_ = sim
}

// TestCrashFailsOutstanding: every request in flight at the instant of the
// power failure reports ErrCrashed exactly once — nothing completes
// successfully after the crash, and nothing dangles.
func TestCrashFailsOutstanding(t *testing.T) {
	sim, a := crashArray(t, Volatile, nil)
	rng := rand.New(rand.NewSource(5))
	outstanding, crashed, other := 0, 0, 0
	for i := 0; i < 60; i++ {
		off := rng.Int63n(a.DataSectors() - 8)
		op := Read
		if i%2 == 0 {
			op = Write
		}
		outstanding++
		if err := a.Submit(op, off, 8, false, func(r Result) {
			outstanding--
			if r.Failed {
				if errors.Is(r.Err, ErrCrashed) {
					crashed++
				} else {
					other++
				}
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Let a handful of requests finish, then pull the plug mid-storm.
	for i := 0; i < 40 && outstanding > 0; i++ {
		if !sim.Step() {
			break
		}
	}
	if err := a.Crash(); err != nil {
		t.Fatal(err)
	}
	for sim.Step() {
	}
	if outstanding != 0 {
		t.Fatalf("%d requests never completed after the crash", outstanding)
	}
	if crashed == 0 {
		t.Fatal("no request reported ErrCrashed")
	}
	if other != 0 {
		t.Fatalf("%d requests failed with something other than ErrCrashed", other)
	}
}

// reconcileRecovery asserts the recovery counter invariants after a full
// drain: every divergent copy found was queued or unrepairable, every
// queued repair resolved, and the array converged to zero divergence.
func reconcileRecovery(t *testing.T, a *Array) RecoveryCounters {
	t.Helper()
	rec := a.Recovery()
	if rec.DivergentFound != rec.RepairsQueued+rec.Unrepairable {
		t.Fatalf("divergence accounting: %+v", rec)
	}
	if rec.RepairsQueued != rec.Repaired+rec.RepairsDropped {
		t.Fatalf("repair accounting: %+v", rec)
	}
	if got := a.DivergentCopies(); got != 0 {
		t.Fatalf("%d divergent copies survive recovery (%+v)", got, rec)
	}
	return rec
}

func TestCrashRecoverVolatile(t *testing.T) {
	sim, a := crashArray(t, Volatile, nil)
	outstanding := 0
	crashMidLoad(t, sim, a, 80, 11, &outstanding)
	if err := a.Recover(); err != nil {
		t.Fatal(err)
	}
	if !a.Drain(des.Hour) {
		t.Fatal("drain after recovery")
	}
	rec := reconcileRecovery(t, a)
	if rec.LostDelayed == 0 {
		t.Fatalf("volatile NVRAM lost nothing: %+v", rec)
	}
	if rec.Adopted != 0 {
		t.Fatalf("volatile NVRAM adopted %d entries", rec.Adopted)
	}
	// Every lost propagation left a replica behind the committed version;
	// with all mirrors alive the scan must find and repair them, not lose
	// them.
	if rec.DivergentFound == 0 {
		t.Fatalf("lost %d delayed copies but the scan found no divergence", rec.LostDelayed)
	}
	if rec.Unrepairable != 0 {
		t.Fatalf("unrepairable divergence with every mirror alive: %+v", rec)
	}
	if rec.Scanned == 0 || rec.RecoveryTime == 0 {
		t.Fatalf("scan never ran: %+v", rec)
	}
	if outstanding != 0 {
		t.Fatalf("%d submissions never completed", outstanding)
	}
}

func TestCrashRecoverBatteryBacked(t *testing.T) {
	sim, a := crashArray(t, BatteryBacked, nil)
	outstanding := 0
	crashMidLoad(t, sim, a, 80, 11, &outstanding)
	if err := a.Recover(); err != nil {
		t.Fatal(err)
	}
	if !a.Drain(des.Hour) {
		t.Fatal("drain after recovery")
	}
	rec := reconcileRecovery(t, a)
	if rec.LostDelayed != 0 {
		t.Fatalf("battery-backed NVRAM lost %d delayed copies: %+v", rec.LostDelayed, rec)
	}
	if rec.Adopted == 0 {
		t.Fatalf("battery-backed recovery adopted nothing: %+v", rec)
	}
	if outstanding != 0 {
		t.Fatalf("%d submissions never completed", outstanding)
	}
}

func TestBatteryHorizonDrains(t *testing.T) {
	sim, a := crashArray(t, BatteryBacked, func(o *Options) {
		o.Crash.BatteryHorizon = des.Second
	})
	outstanding := 0
	crashMidLoad(t, sim, a, 80, 11, &outstanding)
	// Recover only after the battery has died: the table is gone and
	// recovery degenerates to the volatile case.
	sim.At(sim.Now()+2*des.Second, func() {
		if err := a.Recover(); err != nil {
			t.Error(err)
		}
	})
	if !a.Drain(des.Hour) {
		t.Fatal("drain after recovery")
	}
	rec := reconcileRecovery(t, a)
	if rec.Adopted != 0 {
		t.Fatalf("recovery past the battery horizon adopted %d entries", rec.Adopted)
	}
	if rec.LostDelayed == 0 {
		t.Fatalf("drained battery lost nothing: %+v", rec)
	}
}

// TestScheduledCrashRecover drives the whole cycle from Options alone (the
// construction-time schedule the chaos engine uses) and checks the run is
// deterministic.
func TestScheduledCrashRecover(t *testing.T) {
	run := func() (RecoveryCounters, des.Time) {
		sim, a := crashArray(t, Volatile, func(o *Options) {
			o.Crash.At = 50 * des.Millisecond
			o.Crash.RecoverAfter = 20 * des.Millisecond
		})
		rng := rand.New(rand.NewSource(3))
		outstanding := 0
		for i := 0; i < 120; i++ {
			off := rng.Int63n(a.DataSectors() - 8)
			outstanding++
			if err := a.Submit(Write, off, 8, false, func(Result) { outstanding-- }); err != nil {
				t.Fatal(err)
			}
		}
		if !a.Drain(des.Hour) {
			t.Fatal("drain")
		}
		if outstanding != 0 {
			t.Fatalf("%d submissions never completed", outstanding)
		}
		return a.Recovery(), sim.Now()
	}
	rec, now := run()
	if rec.Crashes != 1 || rec.Recoveries != 1 {
		t.Fatalf("scheduled cycle did not run: %+v", rec)
	}
	if got := a2digest(rec, now); got != a2digest(run()) {
		t.Fatalf("same seed produced different crash timelines")
	}
}

func a2digest(rec RecoveryCounters, now des.Time) string {
	return fmt.Sprintf("%+v@%v", rec, now)
}

// TestCrashDuringRebuildResumes: a power failure mid-reconstruction must
// not strand the spare — recovery picks the rebuild back up from the
// missing-chunk set and finishes it.
func TestCrashDuringRebuildResumes(t *testing.T) {
	sim, a := crashArray(t, Volatile, func(o *Options) {
		o.Spares = 1
		o.RebuildMBps = 4
	})
	outstanding := 0
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 40; i++ {
		off := rng.Int63n(a.DataSectors() - 8)
		outstanding++
		if err := a.Submit(Write, off, 8, false, func(Result) { outstanding-- }); err != nil {
			t.Fatal(err)
		}
	}
	// Let propagation drain fully before the failure: the crash should
	// interrupt the rebuild, not also destroy pending delayed copies whose
	// only fresh source is the about-to-fail drive (that composition is
	// genuine data loss, exercised by the fuzz harness instead).
	if !a.Drain(des.Hour) {
		t.Fatal("pre-failure drain")
	}
	if outstanding != 0 {
		t.Fatalf("%d writes unacknowledged after drain", outstanding)
	}
	if err := a.FailDrive(0); err != nil {
		t.Fatal(err)
	}
	for !a.RebuildProgress().Active || a.RebuildProgress().Done == 0 {
		if !sim.Step() {
			t.Fatal("rebuild never started")
		}
	}
	before := a.RebuildProgress()
	if err := a.Crash(); err != nil {
		t.Fatal(err)
	}
	if a.RebuildProgress().Active {
		t.Fatal("rebuild still active on a crashed array")
	}
	if err := a.Recover(); err != nil {
		t.Fatal(err)
	}
	after := a.RebuildProgress()
	if !after.Active {
		t.Fatal("rebuild did not resume at recovery")
	}
	if after.Total >= before.Total {
		t.Fatalf("resumed rebuild total %d not smaller than original %d (chunks done pre-crash were forgotten)",
			after.Total, before.Total)
	}
	if !a.Drain(des.Hour) {
		t.Fatal("drain after recovery")
	}
	if st := a.DriveState(0); st != DriveHealthy {
		t.Fatalf("rebuilt slot state %v, want healthy", st)
	}
	if a.LostChunks() != 0 {
		t.Fatalf("%d chunks lost with a surviving mirror", a.LostChunks())
	}
	reconcileRecovery(t, a)
}

// TestCrashDuringScrubResumes: a scrub pass interrupted by a crash
// restarts at recovery and still finishes its pass.
func TestCrashDuringScrubResumes(t *testing.T) {
	sim, a := crashArray(t, Volatile, nil)
	if n := a.InjectCorruption(8, 5); n != 8 {
		t.Fatalf("injected %d of 8", n)
	}
	if err := a.StartScrub(ScrubOptions{MBps: 16}); err != nil {
		t.Fatal(err)
	}
	for a.ScrubProgress().Done == 0 {
		if !sim.Step() {
			t.Fatal("scrub never started")
		}
	}
	if err := a.Crash(); err != nil {
		t.Fatal(err)
	}
	if a.ScrubProgress().Active {
		t.Fatal("scrub still active on a crashed array")
	}
	if err := a.Recover(); err != nil {
		t.Fatal(err)
	}
	if !a.ScrubProgress().Active {
		t.Fatal("scrub did not restart at recovery")
	}
	if !a.Drain(des.Hour) {
		t.Fatal("drain after recovery")
	}
	if got := a.ScrubCounters().Passes; got != 1 {
		t.Fatalf("completed passes = %d, want 1", got)
	}
	if got := a.CorruptCopies(); got != 0 {
		t.Fatalf("%d corrupt copies survive scrub + recovery scan", got)
	}
	reconcileRecovery(t, a)
}

// TestBatchThenCrash: SubmitBatchErrs partial-failure semantics, and the
// regression for batch-then-crash ordering — every op the batch queued
// reports ErrCrashed exactly once, ops the batch rejected never run their
// Done, and the completion order is deterministic.
func TestBatchThenCrash(t *testing.T) {
	run := func() (order []int, submitted int, errs []error) {
		sim, a := crashArray(t, Volatile, nil)
		ops := make([]BatchOp, 12)
		for i := range ops {
			i := i
			off := int64(i) * 128
			if i == 5 {
				off = a.DataSectors() + 1 // invalid: must be rejected, Done never run
			}
			ops[i] = BatchOp{Op: Write, Off: off, Count: 8, Done: func(r Result) {
				if !r.Failed || !errors.Is(r.Err, ErrCrashed) {
					t.Errorf("op %d: result %+v, want ErrCrashed", i, r)
				}
				order = append(order, i)
			}}
		}
		errs, submitted = a.SubmitBatchErrs(ops)
		if err := a.Crash(); err != nil {
			t.Fatal(err)
		}
		for sim.Step() {
		}
		return
	}
	order, submitted, errs := run()
	if submitted != 11 {
		t.Fatalf("submitted %d of 11 valid ops", submitted)
	}
	if errs == nil || errs[5] == nil {
		t.Fatalf("invalid op produced no slot error: %v", errs)
	}
	for i, e := range errs {
		if i != 5 && e != nil {
			t.Fatalf("valid op %d rejected: %v", i, e)
		}
	}
	if len(order) != 11 {
		t.Fatalf("%d of 11 queued ops completed after the crash", len(order))
	}
	for _, i := range order {
		if i == 5 {
			t.Fatal("rejected op ran its Done")
		}
	}
	order2, _, _ := run()
	if fmt.Sprint(order) != fmt.Sprint(order2) {
		t.Fatalf("batch-then-crash completion order not deterministic:\n%v\n%v", order, order2)
	}
	// First-error-stops SubmitBatch still reports the prefix count.
	_, b := crashArray(t, Volatile, nil)
	ops := []BatchOp{
		{Op: Write, Off: 0, Count: 8},
		{Op: Write, Off: b.DataSectors() + 1, Count: 8},
		{Op: Write, Off: 256, Count: 8},
	}
	n, err := b.SubmitBatch(ops)
	if n != 1 || err == nil {
		t.Fatalf("SubmitBatch = (%d, %v), want (1, error)", n, err)
	}
}

// TestCrashDuringRecoveryScan: a second power failure arriving while the
// first recovery's divergence scan is mid-flight — with repairs queued but
// unresolved — must not leak those repairs (every queued repair still ends
// in Repaired or RepairsDropped) and must leave the cumulative
// RecoveryCounters reconciling after the second recovery finishes. The
// copies whose repairs the crash destroyed are badKnown already, so the
// second scan's re-queue path, not fresh condemnation, has to find them.
func TestCrashDuringRecoveryScan(t *testing.T) {
	sim, a := crashArray(t, Volatile, func(o *Options) {
		o.Crash.ScanMBps = 2 // slow the scan so the second crash lands mid-flight
	})
	outstanding := 0
	crashMidLoad(t, sim, a, 80, 11, &outstanding)
	if err := a.Recover(); err != nil {
		t.Fatal(err)
	}
	// Run until the scan is mid-flight with repairs queued but not yet
	// resolved — the window where a crash can strand them.
	for {
		rec := a.Recovery()
		if a.RecoveryScanActive() && rec.RepairsQueued > rec.Repaired+rec.RepairsDropped {
			break
		}
		if !sim.Step() {
			t.Fatal("recovery scan finished without a pending-repair window")
		}
	}
	if err := a.Crash(); err != nil {
		t.Fatal(err)
	}
	if a.RecoveryScanActive() {
		t.Fatal("recovery scan still active on a crashed array")
	}
	// The crash sweep must resolve every repair it destroyed on the spot:
	// anything queued and unresolved here has leaked.
	rec := a.Recovery()
	if rec.RepairsQueued != rec.Repaired+rec.RepairsDropped {
		t.Fatalf("crash mid-scan leaked queued repairs: %+v", rec)
	}
	if rec.RepairsDropped == 0 {
		t.Fatalf("second crash dropped no repairs — the test missed the window: %+v", rec)
	}
	if err := a.Recover(); err != nil {
		t.Fatal(err)
	}
	if !a.Drain(des.Hour) {
		t.Fatal("drain after second recovery")
	}
	rec = reconcileRecovery(t, a)
	if rec.Crashes != 2 || rec.Recoveries != 2 {
		t.Fatalf("cycle counters %+v, want two crashes and two recoveries", rec)
	}
	// The re-queue path ran: divergence found exceeds what one scan could
	// condemn fresh, because dropped repairs were found again.
	if rec.RepairsQueued <= rec.RepairsDropped {
		t.Fatalf("dropped repairs were never re-queued: %+v", rec)
	}
	if outstanding != 0 {
		t.Fatalf("%d submissions never completed", outstanding)
	}
}

// TestCrashWhileCrashedScrubRejected: crash/recover twice in a row to
// exercise cumulative counters.
func TestRepeatedCrashCycles(t *testing.T) {
	sim, a := crashArray(t, Volatile, nil)
	for cycle := 1; cycle <= 3; cycle++ {
		outstanding := 0
		crashMidLoad(t, sim, a, 40, int64(cycle), &outstanding)
		if err := a.Recover(); err != nil {
			t.Fatal(err)
		}
		if !a.Drain(des.Hour) {
			t.Fatalf("cycle %d: drain failed", cycle)
		}
		rec := reconcileRecovery(t, a)
		if rec.Crashes != int64(cycle) || rec.Recoveries != int64(cycle) {
			t.Fatalf("cycle %d: counters %+v", cycle, rec)
		}
	}
}
