package core

import (
	"fmt"
	"sort"

	"repro/internal/bus"
	"repro/internal/des"
)

// Fail-slow health tracking: real drives mostly degrade by getting slow —
// media retries, remapped sectors, firmware stalls — long before they
// fail-stop, and a single stuttering drive drags the whole array's tail
// latency while every fail-stop detector stays silent. The tracker smooths
// each drive's clean foreground service times with an EWMA, compares it
// against the array median (its peers see the same workload, so the median
// is the healthy baseline), folds in the injected-fault counters from the
// retry/failover layer, and walks each drive through
//
//	Healthy -> Suspect -> Evicted
//
// Suspect drives keep serving but are deprioritized: duplicate-request
// groups and hedged reads prefer healthy mirrors, and requests that do
// land on a suspect drive carry a scheduling penalty so the drive's
// SATF/RSATF scan serves its exclusive work first. Eviction proactively
// fail-stops the drive — Thomasian's proactive-replacement argument — and
// the existing hot-spare rebuild machinery restores redundancy. A drive
// whose EWMA recovers (transient congestion, not degradation) drops back
// from Suspect to Healthy; Evicted is terminal.

// HealthState classifies one drive's fail-slow condition.
type HealthState int

const (
	// HealthHealthy tracks near the array median.
	HealthHealthy HealthState = iota
	// HealthSuspect is persistently slower than its peers (or surfacing
	// faults) and is deprioritized as a read target.
	HealthSuspect
	// HealthEvicted was proactively fail-stopped by the tracker.
	HealthEvicted
)

func (s HealthState) String() string {
	switch s {
	case HealthSuspect:
		return "suspect"
	case HealthEvicted:
		return "evicted"
	default:
		return "healthy"
	}
}

// HealthOptions configures the tracker. The zero value disables it; a
// zero field of an enabled tracker selects the default noted on it.
type HealthOptions struct {
	// Enabled turns tracking on.
	Enabled bool
	// SuspectRatio is the drive-EWMA over array-median ratio at which a
	// drive becomes Suspect. 0 means 2.
	SuspectRatio float64
	// EvictRatio is the ratio at which a drive is proactively evicted.
	// 0 means 3.5; negative disables eviction (detection only).
	EvictRatio float64
	// MinSamples is how many clean completions a drive must contribute
	// before its EWMA takes part in judgements. 0 means 32.
	MinSamples int64
	// Alpha is the EWMA smoothing factor. 0 means 0.125 (an 8-sample time
	// constant: fast enough to catch a stutter window, slow enough to
	// ignore one unlucky seek).
	Alpha float64
	// SuspectFaults marks a drive Suspect once it has surfaced this many
	// injected faults, regardless of latency. 0 means 16.
	SuspectFaults int64
	// EvictFaults evicts at this many faults. 0 means 64; negative
	// disables fault-based eviction.
	EvictFaults int64
}

func (h HealthOptions) validate() error {
	if !h.Enabled {
		return nil
	}
	if h.SuspectRatio < 0 || h.Alpha < 0 || h.Alpha > 1 || h.MinSamples < 0 || h.SuspectFaults < 0 {
		return fmt.Errorf("core: invalid health options %+v", h)
	}
	if sr, er := h.suspectRatio(), h.evictRatio(); er > 0 && er < sr {
		return fmt.Errorf("core: evict ratio %v below suspect ratio %v", er, sr)
	}
	return nil
}

func (h HealthOptions) suspectRatio() float64 {
	if h.SuspectRatio == 0 {
		return 2
	}
	return h.SuspectRatio
}

// evictRatio returns the eviction threshold, <= 0 meaning disabled.
func (h HealthOptions) evictRatio() float64 {
	if h.EvictRatio == 0 {
		return 3.5
	}
	return h.EvictRatio
}

func (h HealthOptions) minSamples() int64 {
	if h.MinSamples == 0 {
		return 32
	}
	return h.MinSamples
}

func (h HealthOptions) alpha() float64 {
	if h.Alpha == 0 {
		return 0.125
	}
	return h.Alpha
}

func (h HealthOptions) suspectFaults() int64 {
	if h.SuspectFaults == 0 {
		return 16
	}
	return h.SuspectFaults
}

// evictFaults returns the fault-count eviction threshold, <= 0 disabled.
func (h HealthOptions) evictFaults() int64 {
	if h.EvictFaults == 0 {
		return 64
	}
	return h.EvictFaults
}

// SuspectPenalty is the scheduling handicap a request carries when it is
// enqueued on a Suspect drive: about half a rotation plus an average seek
// on the reference drive, enough that a healthy mirror's scan claims a
// shared duplicate first without making the suspect drive unusable.
const SuspectPenalty = 4 * des.Millisecond

// DriveHealth reports the tracked health state of drive slot i (always
// HealthHealthy when tracking is disabled; an evicted or fail-stopped
// slot whose spare took over reports the spare's state).
func (a *Array) DriveHealth(i int) HealthState {
	if i < 0 || i >= len(a.drives) {
		return HealthEvicted
	}
	return a.drives[i].health
}

// suspectDrive reports whether d should be deprioritized as a read or
// hedge target.
func (a *Array) suspectDrive(d *drive) bool {
	return a.opts.Health.Enabled && d.health != HealthHealthy
}

// observeHealth feeds one clean foreground service time into the drive's
// EWMA and re-evaluates its state.
func (a *Array) observeHealth(d *drive, service des.Time) {
	h := &a.opts.Health
	us := float64(service)
	if d.healthN == 0 {
		d.ewmaUS = us
	} else {
		d.ewmaUS += h.alpha() * (us - d.ewmaUS)
	}
	d.healthN++
	a.evaluateHealth(d)
}

// healthFault counts one injected fault against the drive and re-evaluates
// (a timing-out drive can look clean on its surviving completions).
func (a *Array) healthFault(d *drive) {
	d.faultCount++
	a.evaluateHealth(d)
}

// medianEWMA computes the median drive EWMA over alive drives with enough
// samples, reusing the array's scratch buffer. Returns 0 when fewer than
// two drives qualify — one drive has no peers to be slower than.
func (a *Array) medianEWMA() float64 {
	s := a.healthScratch[:0]
	min := a.opts.Health.minSamples()
	for _, d := range a.drives {
		if !d.failed && d.healthN >= min {
			s = append(s, d.ewmaUS)
		}
	}
	a.healthScratch = s
	if len(s) < 2 {
		return 0
	}
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

// evaluateHealth runs the state machine for one drive.
func (a *Array) evaluateHealth(d *drive) {
	h := &a.opts.Health
	if d.failed || d.health == HealthEvicted {
		return
	}
	var ratio float64
	if d.healthN >= h.minSamples() {
		if med := a.medianEWMA(); med > 0 {
			ratio = d.ewmaUS / med
		}
	}
	evict := (h.evictRatio() > 0 && ratio >= h.evictRatio()) ||
		(h.evictFaults() > 0 && d.faultCount >= h.evictFaults())
	suspect := evict || ratio >= h.suspectRatio() || d.faultCount >= h.suspectFaults()

	if evict && a.canEvict() {
		a.setHealth(d, HealthEvicted)
		a.faults.Evictions++
		if a.obsRec != nil {
			a.obsRec.Evictions++
		}
		// FailDrive reroutes the queue and starts the hot-spare rebuild;
		// the drive index is its current slot (spares are re-slotted).
		if err := a.FailDrive(d.id); err != nil {
			panic(fmt.Sprintf("core: evicting drive %d: %v", d.id, err))
		}
		return
	}
	switch {
	case suspect && d.health == HealthHealthy:
		a.setHealth(d, HealthSuspect)
	case !suspect && d.health == HealthSuspect:
		// The slowness cleared (transient congestion, not degradation).
		a.setHealth(d, HealthHealthy)
	}
}

// canEvict reports whether proactively failing a drive is safe and useful:
// the configuration must survive the loss (mirror redundancy), a spare
// must be ready to take over, and no rebuild may already be running —
// otherwise the drive stays Suspect and only loses read preference.
func (a *Array) canEvict() bool {
	return a.opts.Config.Dm >= 2 && len(a.spares) > 0 && a.rebuild == nil
}

func (a *Array) setHealth(d *drive, s HealthState) {
	d.health = s
	if d.rec != nil {
		d.rec.Health.Set(int64(s))
	}
}

// noteSlow attributes one inflated completion to its drive: the fail-slow
// model surfaces SlowBy/Stutter per completion precisely so slowness is
// distinguishable from queueing at the layer that can act on it.
func (a *Array) noteSlow(d *drive, comp bus.Completion) {
	a.faults.SlowCommands++
	if comp.Stutter {
		a.faults.Stutters++
	}
	if d.rec != nil {
		d.rec.Slow(comp.SlowBy, comp.Stutter)
	}
}
