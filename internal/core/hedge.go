package core

import (
	"fmt"
	"math/bits"

	"repro/internal/bus"
	"repro/internal/des"
	"repro/internal/layout"
	"repro/internal/sched"
)

// Hedged reads generalize the paper's mirror duplicate-request heuristic
// (Section 3.3) from submit time to dispatch time. The original trick
// duplicates a read into every mirror queue and cancels the losers the
// moment one scheduler claims a copy — it routes around a *busy* drive,
// but once a copy is dispatched the read is committed to that drive, slow
// or not. A hedge re-opens the race after dispatch: if the in-flight copy
// has not completed within the hedge delay, a duplicate is enqueued on
// another fresh mirror and whichever copy finishes first answers the
// caller (Dean & Barroso's tail-at-scale hedged request, applied inside
// one array). The loser is cancelled from its queue when still undispatched
// or its completion is discarded when already on the wire — commands in
// flight are never aborted, matching how the duplicate machinery already
// behaves.
//
// The delay is Options.HedgeAfter when pinned, or adaptively the observed
// p99 of clean foreground read service times: hedging the slowest 1% adds
// ~1% extra load in exchange for cutting the tail, and the p99 tracks the
// workload as it shifts. Suspect drives (see health.go) are avoided as
// hedge targets while any healthy candidate exists.

// hedgeBuckets and hedgeMinSamples size the adaptive-delay histogram: log2
// microsecond buckets (as in package obs) and the sample count below which
// hedging stays off — a p99 estimated from fewer than a hundred-odd
// samples is noise, and the first requests of a run would hedge blindly.
const (
	hedgeBuckets    = 23
	hedgeMinSamples = 128
)

// latHist is a minimal allocation-free log2 latency histogram for the
// adaptive hedge delay.
type latHist struct {
	count   int64
	buckets [hedgeBuckets]int64
}

func (h *latHist) observe(t des.Time) {
	us := int64(t)
	if us < 0 {
		us = 0
	}
	b := bits.Len64(uint64(us))
	if b >= hedgeBuckets {
		b = hedgeBuckets - 1
	}
	h.buckets[b]++
	h.count++
}

// quantile returns the upper bound of the bucket holding the q-quantile,
// or ok=false below hedgeMinSamples. Bucket granularity (powers of two)
// is plenty: the delay only needs to separate "normal" from "tail".
func (h *latHist) quantile(q float64) (des.Time, bool) {
	if h.count < hedgeMinSamples {
		return 0, false
	}
	rank := int64(q*float64(h.count)) + 1
	if rank > h.count {
		rank = h.count
	}
	cum := int64(0)
	for b, n := range h.buckets {
		cum += n
		if cum >= rank {
			return des.Time(int64(1) << uint(b)), true
		}
	}
	return 0, false
}

// HedgeCounters reports the lifecycle of every hedge: each issued hedge
// terminates exactly one way, so Issued == Won + Lost + Cancelled always
// reconciles.
type HedgeCounters struct {
	// Issued counts hedge duplicates enqueued.
	Issued int64
	// Won counts hedges that completed before their primary — the tail
	// latency the mechanism recovered.
	Won int64
	// Lost counts hedges beaten by their primary after dispatch (their
	// completion is discarded) or abandoned to a drive failure.
	Lost int64
	// Cancelled counts hedges removed from their queue undispatched when
	// the primary finished first — the cheap case.
	Cancelled int64
}

// Hedges returns a snapshot of the hedge counters.
func (a *Array) Hedges() HedgeCounters { return a.hedges }

// ShedCounters reports admission-control activity (see Submit).
type ShedCounters struct {
	// Overload counts logical requests rejected at Submit with ErrOverload.
	Overload int64
	// Deadline counts read pieces failed with ErrDeadlineExceeded after
	// waiting out Options.ReadDeadline undispatched.
	Deadline int64
}

// Sheds returns a snapshot of the admission-control counters.
func (a *Array) Sheds() ShedCounters { return a.sheds }

// hedgeDelay returns the current hedge delay; ok=false means hedging is
// not yet armed (adaptive mode still collecting samples). The adaptive
// delay is the observed p99, clamped to at most four times the median:
// when a fail-slow drive serves more than 1% of reads it pollutes the p99
// itself, and an unclamped delay would chase the very tail hedging is
// meant to cut. The median stays honest as long as most reads land on
// healthy drives.
func (a *Array) hedgeDelay() (des.Time, bool) {
	if a.opts.HedgeAfter > 0 {
		return a.opts.HedgeAfter, true
	}
	p99, ok := a.hedgeLat.quantile(0.99)
	if !ok {
		return 0, false
	}
	if p50, ok := a.hedgeLat.quantile(0.50); ok && p99 > 4*p50 {
		p99 = 4 * p50
	}
	return p99, true
}

// hedgeCtl tracks one foreground read piece through the primary/hedge
// race. Exactly one terminal transition settles it: the primary completes,
// the hedge completes, or both fail and the piece re-enters submitRead.
type hedgeCtl struct {
	a  *Array
	ur *userRequest
	p  *layout.Piece

	// settled: the piece has been answered (or handed back to submitRead);
	// every later event on this controller is a no-op — in particular the
	// discarded loser's completion.
	settled bool
	// primaryGone: the primary dispatch faulted out while the hedge was
	// live, so the hedge carries the read alone.
	primaryGone bool
	// hedgeLive: a hedge was issued and has not yet terminated.
	hedgeLive bool
	// hedgeReq is non-nil while the hedge sits undispatched in
	// hedgeDrive's queue (the window where it can be cancelled).
	hedgeReq     *sched.Request
	hedgeDrive   *drive
	primaryDrive *drive
}

// armHedge schedules the hedge timer for a just-dispatched primary.
func (a *Array) armHedge(hc *hedgeCtl, d *drive) {
	hc.primaryDrive = d
	delay, ok := a.hedgeDelay()
	if !ok {
		return
	}
	a.sim.At(a.sim.Now()+delay, func() { a.fireHedge(hc) })
}

// fireHedge issues the duplicate if the primary is still in flight and a
// fresh replica exists elsewhere. Healthy drives are preferred over
// Suspect ones, then shorter queues; a hedge that lands on a Suspect drive
// anyway (no healthy candidate) carries the scheduling penalty.
func (a *Array) fireHedge(hc *hedgeCtl) {
	if hc.settled || hc.hedgeLive {
		return
	}
	var best *drive
	bestRank, bestQ := 0, 0
	for _, id := range hc.p.Mirrors {
		d := a.drives[id]
		if d == hc.primaryDrive || d.failed || d.unreadable(hc.p.Chunk) {
			continue
		}
		mask := a.readMask(d, hc.p.Chunk)
		if mask != nil && !anyTrue(mask) {
			continue
		}
		rank := 0
		if a.suspectDrive(d) {
			rank = 1
		}
		q := len(d.queue)
		if best == nil || rank < bestRank || (rank == bestRank && q < bestQ) {
			best, bestRank, bestQ = d, rank, q
		}
	}
	if best == nil {
		return
	}
	req := &sched.Request{
		ID:              a.nextID(),
		Arrive:          a.sim.Now(),
		Hedged:          true,
		Replicas:        replicasOf(hc.p),
		AllowedReplicas: a.readMask(best, hc.p.Chunk),
	}
	if bestRank > 0 {
		req.Penalty = SuspectPenalty
	}
	req.Tag = &reqTag{
		hedgeOf: hc,
		onDone: func(last bus.Completion, chosen int) {
			// Hedges verify like primaries: a corrupt winner must not
			// answer the caller.
			bad := a.integrity && a.checkPieceRead(best, hc.p, chosen, last)
			if bad && a.opts.VerifyReads {
				a.noteDetected(best, hc.p, chosen)
				hc.hedgeFail()
				return
			}
			hc.hedgeDone(bad)
		},
		onFail: func() { hc.hedgeFail() },
	}
	hc.hedgeLive = true
	hc.hedgeReq = req
	hc.hedgeDrive = best
	a.hedges.Issued++
	if a.obsRec != nil {
		a.obsRec.HedgesIssued++
	}
	a.enqueue(best, req)
}

// primaryDone settles the race in the primary's favor (or discards the
// primary's completion if the hedge already won). bad reports that the
// winning data was corrupt with verification off: only the copy that
// actually answers the caller counts as a silent read.
func (hc *hedgeCtl) primaryDone(bad bool) {
	if hc.settled {
		return
	}
	hc.settled = true
	if bad {
		hc.a.noteSilent()
	}
	hc.cancelHedge()
	hc.ur.pieceDone()
}

// primaryFail reroutes a faulted-out primary: if a hedge is live it takes
// over the read; otherwise the piece re-enters submitRead (which builds a
// fresh controller).
func (hc *hedgeCtl) primaryFail() {
	if hc.settled {
		return
	}
	if hc.hedgeLive {
		hc.primaryGone = true
		return
	}
	hc.settled = true
	hc.a.submitRead(hc.ur, hc.p)
}

// hedgeDone settles the race in the hedge's favor (or discards the hedge's
// completion if the primary already won — Lost was counted then). bad
// marks a corrupt winner under verification-off, counted only because this
// copy answers the caller.
func (hc *hedgeCtl) hedgeDone(bad bool) {
	if hc.settled {
		return
	}
	hc.settled = true
	hc.hedgeLive = false
	if bad {
		hc.a.noteSilent()
	}
	hc.a.hedges.Won++
	if hc.a.obsRec != nil {
		hc.a.obsRec.HedgesWon++
	}
	hc.ur.pieceDone()
}

// hedgeFail retires a hedge that faulted out or died with its drive. With
// the primary also gone the piece re-enters submitRead; otherwise the
// primary is still in flight and simply keeps the read.
func (hc *hedgeCtl) hedgeFail() {
	if hc.settled {
		return
	}
	hc.hedgeLive = false
	hc.hedgeReq = nil
	hc.a.hedges.Lost++
	if hc.a.obsRec != nil {
		hc.a.obsRec.HedgesLost++
	}
	if hc.primaryGone {
		hc.settled = true
		hc.a.submitRead(hc.ur, hc.p)
	}
}

// crash settles the controller at a whole-array power failure: the piece
// fails with ErrCrashed unless already answered. The crash teardown visits
// each queued/in-flight copy exactly once, so the settled latch makes
// whichever of primary/hedge is visited first report the failure and the
// other a no-op.
func (hc *hedgeCtl) crash() {
	if hc.settled {
		return
	}
	hc.settled = true
	hc.hedgeLive = false
	hc.hedgeReq = nil
	hc.ur.pieceFailed(ErrCrashed)
}

// cancelHedge retires a live hedge after the primary won: removed from its
// queue when still undispatched, or left to complete and be discarded.
func (hc *hedgeCtl) cancelHedge() {
	if !hc.hedgeLive {
		return
	}
	hc.hedgeLive = false
	a := hc.a
	if hc.hedgeReq != nil {
		removeFromQueue(hc.hedgeDrive, hc.hedgeReq)
		hc.hedgeReq = nil
		a.hedges.Cancelled++
		if a.obsRec != nil {
			a.obsRec.HedgesCancelled++
		}
		return
	}
	a.hedges.Lost++
	if a.obsRec != nil {
		a.obsRec.HedgesLost++
	}
}

// throttleRecheck is how often throttled background work re-tests the
// overload predicate. Short enough that background work resumes promptly
// after a burst drains; long enough that a saturated array is not spammed
// with recheck events.
const throttleRecheck = des.Millisecond

// overloaded reports whether any drive's foreground queue has reached half
// of MaxQueueDepth — the threshold where background work (delayed
// propagation, rebuild chunk starts) steps aside so foreground latency
// recovers first. Always false with admission control off.
//
// At MaxQueueDepth == 1 "half" and the shed threshold coincide: a queued
// foreground request is already at depth, so background work would only
// yield once foreground is being rejected — never actually deprioritized.
// There the predicate instead watches for any foreground activity at all
// (a queued request or a command on the bus), giving background work a
// genuine step-aside band while still draining when the array idles.
func (a *Array) overloaded() bool {
	depth := a.opts.MaxQueueDepth
	if depth == 0 {
		return false
	}
	if depth == 1 {
		for _, d := range a.drives {
			if len(d.queue) >= 1 || (!d.failed && d.bus.Busy()) {
				return true
			}
		}
		return false
	}
	half := (depth + 1) / 2
	for _, d := range a.drives {
		if len(d.queue) >= half {
			return true
		}
	}
	return false
}

// admit applies MaxQueueDepth admission control to a resolved request:
// a read is shed when every candidate drive of some piece is at depth; a
// write is shed when a drive that must take a copy is at depth (foreground
// mode writes land on every live mirror; delayed mode needs only the
// least-loaded one).
func (a *Array) admit(op Op, pieces []layout.Piece) error {
	depth := a.opts.MaxQueueDepth
	for i := range pieces {
		p := &pieces[i]
		minQ, candidates := 0, 0
		maxQ := 0
		for _, id := range p.Mirrors {
			d := a.drives[id]
			if d.failed || d.unreadable(p.Chunk) {
				continue
			}
			q := len(d.queue)
			if candidates == 0 || q < minQ {
				minQ = q
			}
			if q > maxQ {
				maxQ = q
			}
			candidates++
		}
		if candidates == 0 {
			continue // no survivors: let the routing fail with ErrDataLost
		}
		over := minQ >= depth
		if op == Write && a.opts.ForegroundWrites {
			over = maxQ >= depth
		}
		if over {
			a.sheds.Overload++
			if a.obsRec != nil {
				a.obsRec.ShedOverload++
			}
			// The bare sentinel, not an fmt.Errorf wrap: this is the hottest
			// path in the array during an overload burst, and a per-rejection
			// allocation is exactly the wrong time to allocate.
			return ErrOverload
		}
	}
	return nil
}

// armDeadline starts the ReadDeadline clock for one queued read piece: if
// neither the request (nor any member of its duplicate group) has been
// dispatched when it expires, the queued copies are removed and the piece
// fails with ErrDeadlineExceeded. In-flight commands are never aborted.
// The budget restarts when a failover resubmits the piece.
func (a *Array) armDeadline(ur *userRequest, p *layout.Piece, g *dupGroup, d *drive, req *sched.Request) {
	chunk := p.Chunk
	// The deadline event outlives the request when it completes in time, and
	// a pooled request may have been recycled into a different logical
	// request by then. The generation captured here tells a stale firing
	// apart from a live one (dupGroups are heap-allocated and use g.claimed
	// for the same purpose).
	var tag *reqTag
	var gen uint64
	if req != nil {
		tag = req.Tag.(*reqTag)
		gen = tag.gen
	}
	a.sim.At(a.sim.Now()+a.opts.ReadDeadline, func() {
		if g != nil {
			if g.claimed || len(g.members) == 0 {
				// Dispatched, or every member died with its drive and the
				// failover path owns the piece now.
				return
			}
			for _, m := range g.members {
				removeFromQueue(m.d, m.req)
				if mt := m.req.Tag.(*reqTag); mt.pr != nil {
					a.putReq(mt.pr)
				}
			}
			g.members = nil
			g.claimed = true // nothing may dispatch this group anymore
		} else {
			if tag.gen != gen || tag.offQueue {
				return
			}
			tag.offQueue = true
			removeFromQueue(d, req)
			if tag.pr != nil {
				a.putReq(tag.pr)
			}
		}
		a.sheds.Deadline++
		if a.obsRec != nil {
			a.obsRec.ShedDeadline++
		}
		ur.pieceFailed(fmt.Errorf("%w: chunk %d", ErrDeadlineExceeded, chunk))
	})
}
