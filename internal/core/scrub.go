package core

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/des"
	"repro/internal/disk"
	"repro/internal/sched"
)

// The background scrubber closes the window verify-on-read leaves open:
// verification only touches data somebody reads, so a latent error in a
// cold chunk sits undetected until the day its mirror fails and the
// rebuild copies garbage. The scrubber walks every drive's chunk copies in
// cylinder order (chunks of a slot ascend physically), issuing
// Background-class verify reads that yield to foreground traffic, paced to
// a bandwidth cap exactly like rebuild reconstruction, and stepping aside
// entirely while any foreground queue crosses the half-depth overload
// threshold. A divergent copy is condemned, a clean source is re-read (the
// repair data has to come from somewhere), and the rewrite rides the
// delayed-write machinery as an in-place repair.
//
// One verify read is in flight at a time: the scan is a serial chain
// (issue -> complete -> pace -> issue), so the scrubber's foreground
// interference is bounded by a single Background command per array plus
// the paced repair writes.

// DefaultScrubMBps paces a scrubber that sets no explicit rate: gentle
// enough to hide under foreground traffic, fast enough to cover a
// prototype-sized volume in minutes of simulated time.
const DefaultScrubMBps = 4.0

// ScrubOptions configures the background scrubber.
type ScrubOptions struct {
	// Enabled starts the scrubber at array construction (via
	// Options.Scrub). StartScrub ignores it.
	Enabled bool
	// MBps caps the verify-read bandwidth per pass; 0 means
	// DefaultScrubMBps.
	MBps float64
	// Passes is how many full passes to run before the scrubber retires;
	// 0 means 1.
	Passes int
}

func (o ScrubOptions) validate() error {
	if o.MBps < 0 {
		return fmt.Errorf("core: negative scrub bandwidth %v", o.MBps)
	}
	if o.Passes < 0 {
		return fmt.Errorf("core: negative scrub pass count %d", o.Passes)
	}
	return nil
}

// ScrubCounters reports the scrubber's activity. Every cursor step ends in
// exactly one of Verified, Corrupt, Skipped, or Faulted; every Corrupt
// ends in one of RepairsQueued or Unrepairable, and every queued repair in
// Repaired or RepairsDropped.
type ScrubCounters struct {
	// Verified counts chunk copies read and found clean.
	Verified int64
	// Corrupt counts copies the verify check condemned.
	Corrupt int64
	// RepairsQueued/Repaired/RepairsDropped track the in-place rewrites of
	// condemned copies; Unrepairable counts condemnations with no clean
	// source left.
	RepairsQueued  int64
	Repaired       int64
	RepairsDropped int64
	Unrepairable   int64
	// Skipped counts copies the scan stepped over without reading: failed
	// or rebuilding-missing chunks, propagation-stale replicas (about to
	// be rewritten anyway), and chunks whose write gate is held.
	Skipped int64
	// Faulted counts verify reads abandoned to injected faults or drive
	// failures.
	Faulted int64
	// Passes counts completed full passes.
	Passes int64
}

// ScrubProgress describes the active scrub pass.
type ScrubProgress struct {
	Active bool
	// Pass is the 1-based pass number.
	Pass int
	// Done and Total count chunk copies of the current pass.
	Done, Total int64
}

// scrubCursor is one slot's scan position: copy (chunkIndex n, replica
// rep), where the slot's n-th chunk is slot%G + n*G. Keyed by slot, not
// drive, so a spare swapped in mid-pass inherits the cursor and nothing is
// stranded.
type scrubCursor struct {
	n   int64
	rep int
}

// scrubState is one scrubber run (possibly several passes).
type scrubState struct {
	opts ScrubOptions
	// cur holds each slot's cursor; slot is the next slot to step
	// (round-robin across slots spreads the verify load).
	cur  []scrubCursor
	slot int
	// pass is the 0-based pass index; done retires the scrubber.
	pass int
	done bool
	// passDone/passTotal count chunk copies for progress reporting.
	passDone  int64
	passTotal int64
	// nextAt paces issuance to the bandwidth cap, as rebuildState does.
	nextAt des.Time
}

// slotChunks returns how many chunks live on a slot.
func (a *Array) slotChunks(slot int) int64 {
	g := int64(a.opts.Config.Positions())
	unit := int64(a.lay.StripeUnit())
	numChunks := (a.lay.DataSectors() + unit - 1) / unit
	first := int64(slot % a.opts.Config.Positions())
	if first >= numChunks {
		return 0
	}
	return (numChunks - first + g - 1) / g
}

// StartScrub begins a scrubber run. It turns the integrity oracle on (a
// scrub of an array that cannot corrupt data verifies everything clean,
// which is still an honest answer). Exactly one run at a time.
func (a *Array) StartScrub(o ScrubOptions) error {
	if err := o.validate(); err != nil {
		return err
	}
	if a.crashed {
		return fmt.Errorf("core: cannot start a scrub on a crashed array")
	}
	if a.scrub != nil && !a.scrub.done {
		return fmt.Errorf("core: scrub already running")
	}
	if o.MBps == 0 {
		o.MBps = DefaultScrubMBps
	}
	if o.Passes == 0 {
		o.Passes = 1
	}
	a.ensureIntegrity()
	s := &scrubState{opts: o, cur: make([]scrubCursor, len(a.drives)), nextAt: a.sim.Now()}
	for slot := range a.drives {
		s.passTotal += a.slotChunks(slot) * int64(a.opts.Config.Dr)
	}
	a.scrub = s
	a.scrubNext()
	return nil
}

// ScrubCounters returns a snapshot of the scrubber counters (cumulative
// across runs).
func (a *Array) ScrubCounters() ScrubCounters { return a.scrubCtr }

// ScrubProgress returns a snapshot of the active pass (zero value when no
// scrubber is running).
func (a *Array) ScrubProgress() ScrubProgress {
	s := a.scrub
	if s == nil || s.done {
		return ScrubProgress{}
	}
	return ScrubProgress{Active: true, Pass: s.pass + 1, Done: s.passDone, Total: s.passTotal}
}

// scrubInterval is the pacing delay one chunk's verify read earns at the
// bandwidth cap.
func (a *Array) scrubInterval(c int64) des.Time {
	unit := int64(a.lay.StripeUnit())
	count := unit
	if rest := a.lay.DataSectors() - c*unit; rest < count {
		count = rest
	}
	return des.Time(float64(count*disk.SectorSize) / a.scrub.opts.MBps)
}

// scrubNext schedules the next cursor step no earlier than the pacing
// allows.
func (a *Array) scrubNext() {
	s := a.scrub
	if s == nil || s.done {
		return
	}
	now := a.sim.Now()
	at := s.nextAt
	if at < now {
		at = now
	}
	if at > now {
		a.sim.At(at, func() { a.scrubTick(s) })
		return
	}
	a.scrubTick(s)
}

// scrubTick advances the scan by one chunk copy: pick the next unexhausted
// slot cursor, charge the pacing, and issue (or skip) the verify read. The
// chain continues from the read's completion.
func (a *Array) scrubTick(s *scrubState) {
	if s.done || s != a.scrub {
		return
	}
	// Foreground saturation pauses the scan entirely (same half-depth
	// predicate that throttles delayed propagation and rebuild starts).
	if a.overloaded() {
		a.sim.At(a.sim.Now()+throttleRecheck, func() { a.scrubTick(s) })
		return
	}
	// Find the next slot with work, round-robin from s.slot.
	slot := -1
	for i := 0; i < len(s.cur); i++ {
		cand := (s.slot + i) % len(s.cur)
		if s.cur[cand].n < a.slotChunks(cand) {
			slot = cand
			break
		}
	}
	if slot < 0 {
		a.scrubPassDone(s)
		return
	}
	cur := &s.cur[slot]
	g := int64(a.opts.Config.Positions())
	chunk := int64(slot%a.opts.Config.Positions()) + cur.n*g
	rep := cur.rep
	// Advance: next replica of the chunk, then the slot's next chunk; the
	// round-robin pointer moves on either way.
	cur.rep++
	if cur.rep >= a.opts.Config.Dr {
		cur.rep = 0
		cur.n++
	}
	s.slot = (slot + 1) % len(s.cur)
	s.passDone++
	s.nextAt = a.sim.Now() + a.scrubInterval(chunk)

	d := a.drives[slot]
	_, gated := a.writeGate[chunk]
	skip := d.failed || d.unreadable(chunk) || gated
	if !skip {
		if m := a.freshMask(d, chunk); m != nil && !m[rep] {
			// A pending propagation will rewrite this copy anyway.
			skip = true
		}
	}
	if skip {
		a.scrubCtr.Skipped++
		a.scrubNext()
		return
	}
	a.issueScrubRead(s, d, slot, chunk, rep)
}

// issueScrubRead reads one chunk copy (Background class, pinned to the
// replica under test) and consults the oracle on completion.
func (a *Array) issueScrubRead(s *scrubState, d *drive, slot int, chunk int64, rep int) {
	p := a.chunkPiece(chunk)
	req := &sched.Request{
		ID:         a.nextID(),
		Arrive:     a.sim.Now(),
		Background: true,
		Replicas:   []sched.Replica{{Extents: p.Replicas[rep]}},
	}
	req.Tag = &reqTag{
		onDone: func(last bus.Completion, _ int) {
			if d.failed {
				// The drive died under the read; its copies are gone, not
				// corrupt.
				a.scrubCtr.Skipped++
				a.scrubNext()
				return
			}
			if a.checkPieceRead(d, p, rep, last) {
				a.scrubCtr.Corrupt++
				if a.obsRec != nil {
					a.obsRec.ScrubCorrupt++
				}
				a.scrubSourceRead(s, d, chunk, rep)
				return
			}
			a.scrubCtr.Verified++
			if a.obsRec != nil {
				a.obsRec.ScrubVerified++
			}
			a.scrubNext()
		},
		onFail: func() {
			a.scrubCtr.Faulted++
			a.scrubNext()
		},
	}
	a.enqueue(d, req)
}

// scrubSourceRead condemns the divergent copy and fetches the repair data
// from a clean source before queueing the in-place rewrite — the repair
// has to read the good data from somewhere, and that read is itself
// verified.
func (a *Array) scrubSourceRead(s *scrubState, d *drive, chunk int64, rep int) {
	if !a.condemnWrong(d, chunk, rep, originScrub) {
		// Transient path corruption (the media is fine) or a copy already
		// condemned with a repair pending: nothing further to do.
		a.scrubNext()
		return
	}
	// condemnWrong queued the repair (or counted it unrepairable); now pay
	// for the source read that supplies the data. The repair write itself
	// drains through the delayed queue.
	p := a.chunkPiece(chunk)
	var src *drive
	srcRep := -1
	for _, id := range p.Mirrors {
		q := a.drives[id]
		if q.failed || q.unreadable(chunk) {
			continue
		}
		mask := a.readMask(q, chunk)
		for j := 0; j < a.opts.Config.Dr; j++ {
			if q == d && j == rep {
				continue
			}
			if mask != nil && !mask[j] {
				continue
			}
			src, srcRep = q, j
			break
		}
		if src != nil {
			break
		}
	}
	if src == nil {
		a.scrubNext()
		return
	}
	req := &sched.Request{
		ID:         a.nextID(),
		Arrive:     a.sim.Now(),
		Background: true,
		Replicas:   []sched.Replica{{Extents: p.Replicas[srcRep]}},
	}
	req.Tag = &reqTag{
		onDone: func(last bus.Completion, _ int) {
			if !src.failed && a.checkPieceRead(src, p, srcRep, last) {
				// The would-be source is divergent too: condemn it and keep
				// looking.
				a.scrubCtr.Corrupt++
				if a.obsRec != nil {
					a.obsRec.ScrubCorrupt++
				}
				a.scrubSourceRead(s, src, chunk, srcRep)
				return
			}
			a.scrubNext()
		},
		onFail: func() {
			a.scrubCtr.Faulted++
			a.scrubNext()
		},
	}
	a.enqueue(src, req)
}

// scrubPassDone retires a finished pass: rewind the cursors for the next
// one, or retire the scrubber.
func (a *Array) scrubPassDone(s *scrubState) {
	a.scrubCtr.Passes++
	if a.obsRec != nil {
		a.obsRec.ScrubPasses++
	}
	s.pass++
	if s.pass >= s.opts.Passes {
		s.done = true
		return
	}
	for i := range s.cur {
		s.cur[i] = scrubCursor{}
	}
	s.slot = 0
	s.passDone = 0
	a.scrubNext()
}
