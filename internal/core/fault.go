package core

import "repro/internal/disk"

// FaultCounters aggregates the array's degraded-mode activity: how often
// injected faults fired, how the retry/failover policy responded, and what
// the user-visible damage was. All counts are cumulative since
// construction.
type FaultCounters struct {
	// Transients and Timeouts count injected faults observed at the array
	// layer (after the bus surfaced them).
	Transients int64
	Timeouts   int64
	// Retries counts in-drive retries: the same command reissued once on
	// the same drive after a fault.
	Retries int64
	// Failovers counts dispatched requests that exhausted their in-drive
	// retry and were rerouted through the failure path (typically to a
	// surviving mirror).
	Failovers int64
	// FailedReads and FailedWrites count logical requests that completed
	// with Failed set — data loss visible to the caller.
	FailedReads  int64
	FailedWrites int64
	// RebuildsStarted and RebuildsDone count hot-spare rebuilds.
	RebuildsStarted int64
	RebuildsDone    int64
	// LostChunks counts chunks a rebuild could not reconstruct from any
	// surviving replica.
	LostChunks int64
	// SlowCommands counts commands inflated by a fail-slow drive, and
	// Stutters the subset that fell inside a stutter window.
	SlowCommands int64
	Stutters     int64
	// Evictions counts drives the health tracker proactively fail-stopped.
	Evictions int64
}

// Faults returns a snapshot of the degraded-mode counters.
func (a *Array) Faults() FaultCounters { return a.faults }

// noteFault tallies an injected fault surfaced by the bus, both globally
// and on the drive that produced it.
func (a *Array) noteFault(d *drive, k disk.FaultKind) {
	switch k {
	case disk.FaultTransient:
		a.faults.Transients++
	case disk.FaultTimeout:
		a.faults.Timeouts++
	}
	if d.rec != nil {
		d.rec.Fault(k)
	}
	if a.opts.Health.Enabled {
		a.healthFault(d)
	}
}
