package core

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/disk"
)

// FaultCounters aggregates the array's degraded-mode activity: how often
// injected faults fired, how the retry/failover policy responded, and what
// the user-visible damage was. All counts are cumulative since
// construction.
type FaultCounters struct {
	// Transients and Timeouts count injected faults observed at the array
	// layer (after the bus surfaced them).
	Transients int64
	Timeouts   int64
	// Retries counts in-drive retries: the same command reissued once on
	// the same drive after a fault.
	Retries int64
	// Failovers counts dispatched requests that exhausted their in-drive
	// retry and were rerouted through the failure path (typically to a
	// surviving mirror).
	Failovers int64
	// FailedReads and FailedWrites count logical requests that completed
	// with Failed set — data loss visible to the caller.
	FailedReads  int64
	FailedWrites int64
	// RebuildsStarted and RebuildsDone count hot-spare rebuilds.
	RebuildsStarted int64
	RebuildsDone    int64
	// LostChunks counts chunks a rebuild could not reconstruct from any
	// surviving replica.
	LostChunks int64
	// SlowCommands counts commands inflated by a fail-slow drive, and
	// Stutters the subset that fell inside a stutter window.
	SlowCommands int64
	Stutters     int64
	// Evictions counts drives the health tracker proactively fail-stopped.
	Evictions int64

	// LatentErrors counts latent sector errors surfaced by the corruption
	// stream (plus copies poisoned via InjectCorruption); TornWrites counts
	// writes that reported success onto garbage; CorruptReads counts
	// transient read-path corruption draws. All three are injections
	// observed, whether or not anything noticed them.
	LatentErrors int64
	TornWrites   int64
	CorruptReads int64
	// SilentReads counts foreground/hedged reads that returned corrupt or
	// stale data to the caller with verification off — the exposure window
	// the verify-on-read check exists to close.
	SilentReads int64
	// VerifyDetected counts reads the verify-on-read check failed over
	// because the data was corrupt or stale.
	VerifyDetected int64
	// RepairsQueued/RepairsDone/RepairsDropped count in-place repairs
	// initiated by verify-on-read (scrub-initiated repairs are tallied in
	// ScrubCounters instead). A repair dies with its drive as Dropped.
	RepairsQueued  int64
	RepairsDone    int64
	RepairsDropped int64
	// Unrepairable counts detected-corrupt copies with no clean source
	// left to repair from.
	Unrepairable int64
}

// Faults returns a snapshot of the degraded-mode counters.
func (a *Array) Faults() FaultCounters { return a.faults }

// noteFault tallies an injected fault surfaced by the bus, both globally
// and on the drive that produced it.
func (a *Array) noteFault(d *drive, k disk.FaultKind) {
	switch k {
	case disk.FaultTransient:
		a.faults.Transients++
	case disk.FaultTimeout:
		a.faults.Timeouts++
	}
	if d.rec != nil {
		d.rec.Fault(k)
	}
	if a.opts.Health.Enabled {
		a.healthFault(d)
	}
}

// noteCorruption tallies the silent-corruption injections one clean
// command surfaced, both globally and on the drive that produced them.
// Called only for completions carrying at least one corruption flag, so
// the disabled path costs nothing.
func (a *Array) noteCorruption(d *drive, comp bus.Completion) {
	if comp.Latent {
		a.faults.LatentErrors++
	}
	if comp.Corrupt {
		a.faults.CorruptReads++
	}
	if comp.Torn {
		a.faults.TornWrites++
	}
	if d.rec != nil {
		d.rec.Corruption(comp.Latent, comp.Corrupt, comp.Torn)
	}
}

// SetDriveSlow attaches a fail-slow profile to drive slot i at the current
// instant — the chaos engine's mid-run "drive turns slow" event. A
// disabled (zero) profile restores the drive to full speed. Each call
// draws a fresh deterministic stutter stream from the array seed, the slot
// and a per-array call counter, so timelines replay byte-identically.
func (a *Array) SetDriveSlow(i int, p disk.SlowProfile) error {
	if i < 0 || i >= len(a.drives) {
		return fmt.Errorf("core: no drive %d to slow", i)
	}
	if err := p.Validate(); err != nil {
		return err
	}
	if a.crashed {
		return ErrCrashed
	}
	a.slowEpoch++
	seed := a.opts.Seed + int64(i)*32452843 + 11 + a.slowEpoch*104729
	a.drives[i].bus.SetSlow(disk.NewSlowState(p, seed))
	return nil
}
