package core

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/des"
	"repro/internal/disk"
	"repro/internal/layout"
	"repro/internal/obs"
)

// slowDrive0 is the fail-slow injection used across these tests: drive 0
// answers every command at 8x mechanical time.
func slowDrive0() disk.FaultModel {
	return disk.FaultModel{Slow: map[int]disk.SlowProfile{0: {Factor: 8}}}
}

// closedLoopReads runs n uniform random reads with the given concurrency,
// returning how many served (vs. failed).
func closedLoopReads(t *testing.T, sim *des.Sim, a *Array, n, outstanding int, seed int64) (served, failed int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	finished := 0
	issued := 0
	var issue func()
	issue = func() {
		if issued >= n {
			return
		}
		issued++
		off := rng.Int63n(a.DataSectors()-8)/8*8 + 8
		if err := a.Submit(Read, off, 8, false, func(r Result) {
			finished++
			if r.Failed {
				failed++
			} else {
				served++
			}
			issue()
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < outstanding && i < n; i++ {
		issue()
	}
	for finished < n {
		if !sim.Step() {
			t.Fatalf("stalled at %d/%d", finished, n)
		}
	}
	return served, failed
}

// TestHealthSuspectDetection: a fail-slow drive walks to Suspect while its
// healthy peers stay Healthy (eviction disabled: detection-only mode).
func TestHealthSuspectDetection(t *testing.T) {
	sim, a := newArray(t, layout.RAID10(4), "rsatf", func(o *Options) {
		o.DataSectors = 1 << 15
		o.Faults = slowDrive0()
		o.Health = HealthOptions{Enabled: true, MinSamples: 16, Alpha: 0.25, EvictRatio: -1, EvictFaults: -1}
	})
	closedLoopReads(t, sim, a, 600, 4, 9)
	if got := a.DriveHealth(0); got != HealthSuspect {
		t.Fatalf("slow drive health = %v, want suspect", got)
	}
	for i := 1; i < 4; i++ {
		if got := a.DriveHealth(i); got != HealthHealthy {
			t.Fatalf("healthy drive %d health = %v", i, got)
		}
	}
	if a.Faults().Evictions != 0 {
		t.Fatal("eviction fired despite being disabled")
	}
	if a.Faults().SlowCommands == 0 {
		t.Fatal("no slow commands attributed")
	}
}

// TestHealthEvictionIntoSpare: with eviction enabled and a hot spare, the
// tracker proactively fail-stops the slow drive, the spare rebuild runs,
// and the array ends fully healthy with no slow drive in it.
func TestHealthEvictionIntoSpare(t *testing.T) {
	sim, a := newArray(t, layout.RAID10(4), "rsatf", func(o *Options) {
		o.DataSectors = 1 << 15
		o.Spares = 1
		o.RebuildMBps = 100
		o.Faults = slowDrive0()
		o.Health = HealthOptions{Enabled: true, MinSamples: 16, Alpha: 0.25, EvictRatio: 2.5, EvictFaults: -1}
	})
	served, failed := closedLoopReads(t, sim, a, 600, 4, 9)
	if failed != 0 || served != 600 {
		t.Fatalf("served %d failed %d; mirrored array must survive the eviction", served, failed)
	}
	fc := a.Faults()
	if fc.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", fc.Evictions)
	}
	if fc.RebuildsStarted != 1 {
		t.Fatalf("eviction did not start the spare rebuild: %+v", fc)
	}
	if a.Spares() != 0 {
		t.Fatal("spare not consumed")
	}
	if !a.Drain(des.Hour) {
		t.Fatal("drain failed")
	}
	if a.Faults().RebuildsDone != 1 || a.Faults().LostChunks != 0 {
		t.Fatalf("rebuild did not complete cleanly: %+v", a.Faults())
	}
	if got := a.DriveState(0); got != DriveHealthy {
		t.Fatalf("slot 0 state %v after rebuild", got)
	}
	// The re-slotted spare starts with a fresh health record.
	if got := a.DriveHealth(0); got != HealthHealthy {
		t.Fatalf("spare in slot 0 reports %v", got)
	}
}

// TestHealthEvictionRequiresSpare: without a spare (or without mirror
// redundancy) the drive stays Suspect — eviction would trade a slow drive
// for a degraded array.
func TestHealthEvictionRequiresSpare(t *testing.T) {
	sim, a := newArray(t, layout.RAID10(4), "rsatf", func(o *Options) {
		o.DataSectors = 1 << 15
		o.Faults = slowDrive0()
		o.Health = HealthOptions{Enabled: true, MinSamples: 16, Alpha: 0.25, EvictRatio: 2.5, EvictFaults: -1}
	})
	closedLoopReads(t, sim, a, 600, 4, 9)
	if a.Faults().Evictions != 0 {
		t.Fatal("evicted with no spare available")
	}
	if got := a.DriveHealth(0); got != HealthSuspect {
		t.Fatalf("slow drive health = %v, want suspect (eviction gated)", got)
	}
}

// TestHedgedReadsReconcile: with a pinned hedge delay over a fail-slow
// drive, hedges fire and win, and the counters reconcile exactly — every
// issued hedge terminates exactly once (Won + Lost + Cancelled), the obs
// recorder mirrors the array's counters, and the hedge-class histograms
// hold exactly the hedges that were dispatched (Won + Lost; cancelled
// hedges never dispatch, and with no fault injection every dispatched
// hedge completes cleanly).
func TestHedgedReadsReconcile(t *testing.T) {
	reg := &obs.Registry{}
	sim, a := newArray(t, layout.RAID10(4), "rsatf", func(o *Options) {
		o.DataSectors = 1 << 15
		o.Faults = slowDrive0()
		o.Hedge = true
		o.HedgeAfter = 10 * des.Millisecond
		o.Obs = reg
		o.ObsLabel = "hedge-reconcile"
	})
	served, failed := closedLoopReads(t, sim, a, 800, 4, 11)
	if failed != 0 || served != 800 {
		t.Fatalf("served %d failed %d", served, failed)
	}
	h := a.Hedges()
	if h.Issued == 0 {
		t.Fatal("no hedges issued against a fail-slow drive")
	}
	if h.Won == 0 {
		t.Fatal("no hedge ever won; the mechanism is not cutting the tail")
	}
	if h.Issued != h.Won+h.Lost+h.Cancelled {
		t.Fatalf("hedge counters do not reconcile: %+v", h)
	}
	rec := a.Obs()
	if rec.HedgesIssued != h.Issued || rec.HedgesWon != h.Won ||
		rec.HedgesLost != h.Lost || rec.HedgesCancelled != h.Cancelled {
		t.Fatalf("obs hedge counters %d/%d/%d/%d != array %+v",
			rec.HedgesIssued, rec.HedgesWon, rec.HedgesLost, rec.HedgesCancelled, h)
	}
	var hedgeDispatches int64
	for i := 0; i < rec.Drives(); i++ {
		hedgeDispatches += rec.Drive(i).Service[obs.Hedge][obs.OpRead].Count
	}
	if hedgeDispatches != h.Won+h.Lost {
		t.Fatalf("hedge-class dispatches %d != won %d + lost %d", hedgeDispatches, h.Won, h.Lost)
	}
	// Slow-command attribution reached the per-drive metrics: only the
	// fail-slow drive carries SlowUS.
	for i := 0; i < rec.Drives(); i++ {
		slow := rec.Drive(i).SlowUS
		if (i == 0) != (slow > 0) {
			t.Fatalf("drive %d SlowUS = %d", i, slow)
		}
	}
	if a.Sheds() != (ShedCounters{}) {
		t.Fatalf("sheds %+v without admission control", a.Sheds())
	}
}

// TestHedgeAdaptiveDelayEngages: with no pinned delay, hedging stays off
// until the latency histogram has samples, then fires using the observed
// p99.
func TestHedgeAdaptiveDelayEngages(t *testing.T) {
	sim, a := newArray(t, layout.RAID10(4), "rsatf", func(o *Options) {
		o.DataSectors = 1 << 15
		o.Faults = slowDrive0()
		o.Hedge = true // HedgeAfter zero: adaptive
	})
	if _, ok := a.hedgeDelay(); ok {
		t.Fatal("adaptive delay armed with no samples")
	}
	closedLoopReads(t, sim, a, 800, 4, 11)
	d, ok := a.hedgeDelay()
	if !ok || d <= 0 {
		t.Fatalf("adaptive delay not armed after run: %v %v", d, ok)
	}
	if a.Hedges().Issued == 0 {
		t.Fatal("adaptive hedging never fired over a fail-slow drive")
	}
}

// TestAdmissionOverload: a burst beyond MaxQueueDepth on every candidate
// drive is shed synchronously with ErrOverload, and accepted requests all
// complete.
func TestAdmissionOverload(t *testing.T) {
	reg := &obs.Registry{}
	sim, a := newArray(t, layout.Config{Ds: 1, Dr: 1, Dm: 1}, "fcfs", func(o *Options) {
		o.DataSectors = 1 << 15
		o.MaxQueueDepth = 3
		o.Obs = reg
	})
	accepted, shed := 0, 0
	finished := 0
	for i := 0; i < 20; i++ {
		err := a.Submit(Read, int64(i*64), 8, false, func(r Result) {
			finished++
			if r.Failed {
				t.Errorf("accepted read %d failed: %v", i, r.Err)
			}
		})
		switch {
		case err == nil:
			accepted++
		case errors.Is(err, ErrOverload):
			shed++
		default:
			t.Fatal(err)
		}
	}
	if shed == 0 || accepted == 0 {
		t.Fatalf("burst split accepted=%d shed=%d; want both nonzero", accepted, shed)
	}
	for finished < accepted {
		if !sim.Step() {
			t.Fatalf("stalled at %d/%d", finished, accepted)
		}
	}
	if got := a.Sheds().Overload; got != int64(shed) {
		t.Fatalf("Sheds().Overload = %d, want %d", got, shed)
	}
	if rec := a.Obs(); rec.ShedOverload != int64(shed) {
		t.Fatalf("obs ShedOverload = %d, want %d", rec.ShedOverload, shed)
	}
}

// TestReadDeadlineSheds: queued reads that wait out ReadDeadline fail with
// ErrDeadlineExceeded; dispatched commands are never aborted.
func TestReadDeadlineSheds(t *testing.T) {
	reg := &obs.Registry{}
	sim, a := newArray(t, layout.Config{Ds: 1, Dr: 1, Dm: 1}, "fcfs", func(o *Options) {
		o.DataSectors = 1 << 15
		o.ReadDeadline = 5 * des.Millisecond
		o.Obs = reg
	})
	const n = 20
	served, deadline := 0, 0
	finished := 0
	for i := 0; i < n; i++ {
		if err := a.Submit(Read, int64(i*512), 8, false, func(r Result) {
			finished++
			switch {
			case !r.Failed:
				served++
			case errors.Is(r.Err, ErrDeadlineExceeded):
				deadline++
			default:
				t.Errorf("unexpected failure: %v", r.Err)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	for finished < n {
		if !sim.Step() {
			t.Fatalf("stalled at %d/%d", finished, n)
		}
	}
	if served == 0 || deadline == 0 {
		t.Fatalf("served=%d deadline=%d; want both nonzero", served, deadline)
	}
	if got := a.Sheds().Deadline; got != int64(deadline) {
		t.Fatalf("Sheds().Deadline = %d, want %d", got, deadline)
	}
	if rec := a.Obs(); rec.ShedDeadline != int64(deadline) {
		t.Fatalf("obs ShedDeadline = %d, want %d", rec.ShedDeadline, deadline)
	}
	if !a.Drain(des.Hour) {
		t.Fatal("drain failed")
	}
}

// TestReadDeadlineWithMirrors: the deadline applies to duplicate groups as
// a unit — shedding cancels every queued copy and the read fails once.
func TestReadDeadlineWithMirrors(t *testing.T) {
	sim, a := newArray(t, layout.RAID10(2), "satf", func(o *Options) {
		o.DataSectors = 1 << 15
		o.ReadDeadline = 3 * des.Millisecond
	})
	const n = 30
	served, deadline := 0, 0
	finished := 0
	for i := 0; i < n; i++ {
		if err := a.Submit(Read, int64(i*512), 8, false, func(r Result) {
			finished++
			if !r.Failed {
				served++
			} else if errors.Is(r.Err, ErrDeadlineExceeded) {
				deadline++
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	for finished < n {
		if !sim.Step() {
			t.Fatalf("stalled at %d/%d", finished, n)
		}
	}
	if served+deadline != n {
		t.Fatalf("served %d + deadline %d != %d", served, deadline, n)
	}
	if deadline == 0 {
		t.Fatal("burst of 30 never tripped a 3ms deadline")
	}
	if !a.Drain(des.Hour) {
		t.Fatal("drain failed")
	}
}

// TestBackgroundThrottleUnderOverload: with admission control on, delayed
// propagation steps aside while the array is overloaded but still drains
// afterwards.
func TestBackgroundThrottleUnderOverload(t *testing.T) {
	sim, a := newArray(t, layout.Config{Ds: 1, Dr: 2, Dm: 1}, "rsatf", func(o *Options) {
		o.DataSectors = 1 << 15
		o.MaxQueueDepth = 4
	})
	// Writes queue delayed propagations; a read burst then saturates the
	// array so the throttle engages.
	finished := 0
	submitted := 0
	for i := 0; i < 30; i++ {
		if err := a.Submit(Write, int64(i*64), 8, false, func(Result) { finished++ }); err != nil {
			if errors.Is(err, ErrOverload) {
				continue
			}
			t.Fatal(err)
		}
		submitted++
	}
	for finished < submitted {
		if !sim.Step() {
			t.Fatal("stalled")
		}
	}
	if !a.Drain(des.Hour) {
		t.Fatal("delayed work did not drain after overload")
	}
	if !a.Idle() {
		t.Fatal("array not idle after drain")
	}
}

// TestFailSlowOptionValidation: the new knobs reject nonsense.
func TestFailSlowOptionValidation(t *testing.T) {
	bad := []func(*Options){
		func(o *Options) { o.HedgeAfter = -des.Millisecond },
		func(o *Options) { o.MaxQueueDepth = -1 },
		func(o *Options) { o.ReadDeadline = -des.Second },
		func(o *Options) { o.Health = HealthOptions{Enabled: true, Alpha: 2} },
		func(o *Options) { o.Health = HealthOptions{Enabled: true, SuspectRatio: 3, EvictRatio: 2} },
		func(o *Options) { o.Faults = disk.FaultModel{Slow: map[int]disk.SlowProfile{9: {Factor: 4}}} },
		func(o *Options) { o.Faults = disk.FaultModel{Slow: map[int]disk.SlowProfile{0: {Factor: 0.2}}} },
	}
	for i, mod := range bad {
		o := Options{Config: layout.RAID10(4), DataSectors: 1 << 15}
		mod(&o)
		if _, err := New(des.New(), o); err == nil {
			t.Errorf("case %d: invalid options accepted", i)
		}
	}
	// A slow profile for a spare slot is legal (spares are drives too).
	o := Options{Config: layout.RAID10(4), DataSectors: 1 << 15, Spares: 1,
		Faults: disk.FaultModel{Slow: map[int]disk.SlowProfile{4: {Factor: 4}}}}
	if _, err := New(des.New(), o); err != nil {
		t.Errorf("slow profile on spare slot rejected: %v", err)
	}
}
