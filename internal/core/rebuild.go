package core

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/des"
	"repro/internal/disk"
	"repro/internal/layout"
	"repro/internal/sched"
)

// Hot-spare rebuild: when a drive of a mirrored configuration (Dm >= 2)
// fail-stops and a spare is available, the spare is swapped into the dead
// drive's slot and every chunk of that position is reconstructed from a
// surviving mirror. Reconstruction runs chunk-by-chunk:
//
//   - the pump paces chunk starts to Options.RebuildMBps, so rebuild
//     bandwidth — not foreground latency — is what the cap sacrifices;
//   - each chunk takes the per-chunk write gate, so reconstruction never
//     interleaves with a foreground write of the same chunk;
//   - the source read is a Background request: it yields to foreground
//     traffic on the source drive until it has waited
//     sched.BackgroundMaxWait;
//   - the Dr replica writes onto the spare ride the delayed-write queue,
//     sharing one propEntry whose completion advances the pump;
//   - a chunk with no surviving fresh source is recorded as lost and the
//     rebuild moves on — partial restoration beats none.
//
// While a chunk is still missing on the spare, reads and writes steer
// around it (drive.missing); the rebuild copies whatever the surviving
// mirror holds when it reaches the chunk, so writes accepted mid-rebuild
// are never lost.

// DriveStatus classifies one drive slot's health.
type DriveStatus int

const (
	// DriveHealthy holds every chunk of its position.
	DriveHealthy DriveStatus = iota
	// DriveRebuilding is a swapped-in spare still being reconstructed.
	DriveRebuilding
	// DriveDegraded finished (or had cancelled) a rebuild with chunks
	// permanently lost.
	DriveDegraded
	// DriveFailed is fail-stopped (or the index is out of range).
	DriveFailed
)

func (s DriveStatus) String() string {
	switch s {
	case DriveHealthy:
		return "healthy"
	case DriveRebuilding:
		return "rebuilding"
	case DriveDegraded:
		return "degraded"
	default:
		return "failed"
	}
}

// DriveState reports the health of drive slot i.
func (a *Array) DriveState(i int) DriveStatus {
	if i < 0 || i >= len(a.drives) || a.drives[i].failed {
		return DriveFailed
	}
	if a.rebuild != nil && a.rebuild.slot == i {
		return DriveRebuilding
	}
	if len(a.drives[i].missing) > 0 {
		return DriveDegraded
	}
	return DriveHealthy
}

// Spares returns how many hot spares remain unconsumed.
func (a *Array) Spares() int { return len(a.spares) }

// RebuildProgress describes the active rebuild, if any.
type RebuildProgress struct {
	Active bool
	// Slot is the drive index being reconstructed.
	Slot int
	// Total, Done and Lost count chunks of the rebuilt position.
	Total, Done, Lost int
	// ETA estimates the remaining reconstruction time at the configured
	// bandwidth cap.
	ETA des.Time
}

// RebuildProgress returns a snapshot of the active rebuild (zero value
// when none is running).
func (a *Array) RebuildProgress() RebuildProgress {
	st := a.rebuild
	if st == nil {
		return RebuildProgress{}
	}
	remaining := st.total - st.done - st.lost
	unit := int64(a.lay.StripeUnit())
	perChunk := des.Time(float64(unit*disk.SectorSize) / a.opts.RebuildMBps)
	return RebuildProgress{
		Active: true, Slot: st.slot,
		Total: st.total, Done: st.done, Lost: st.lost,
		ETA: des.Time(remaining) * perChunk,
	}
}

// LostChunks returns how many chunks are permanently unreadable.
func (a *Array) LostChunks() int { return len(a.lostChunks) }

// unreadable reports that this drive holds no valid data for the chunk.
func (d *drive) unreadable(chunk int64) bool {
	return d.missing != nil && d.missing[chunk]
}

// rebuildState is one in-progress reconstruction. Exactly one runs at a
// time; further failures wait (degraded) until it finishes and another
// spare is available.
type rebuildState struct {
	slot    int
	pending []int64 // chunks of the slot's position, ascending
	next    int     // index into pending of the next chunk to start
	total   int
	done    int
	lost    int
	started des.Time
	// activeChunk/gateHeld track write-gate ownership for cancellation;
	// activeChunk is meaningful only while gateHeld.
	activeChunk int64
	gateHeld    bool
	cancelled   bool
	// nextAt is the earliest start time of the next chunk — the pacing
	// that caps reconstruction bandwidth.
	nextAt des.Time
}

// maybeStartRebuild begins reconstructing the lowest-numbered failed slot
// if a spare is available, the configuration has mirror redundancy to
// rebuild from, and no rebuild is already running.
func (a *Array) maybeStartRebuild() {
	// A crashed array starts nothing; Recover re-invokes this after the
	// power comes back.
	if a.crashed || a.rebuild != nil || len(a.spares) == 0 || a.opts.Config.Dm < 2 {
		return
	}
	slot := -1
	for i, d := range a.drives {
		if d.failed {
			slot = i
			break
		}
	}
	if slot < 0 {
		return
	}
	spare := a.spares[0]
	a.spares = a.spares[1:]
	spare.id = slot
	a.drives[slot] = spare

	// Every chunk of the slot's position is missing until reconstructed.
	g := int64(a.opts.Config.Positions())
	unit := int64(a.lay.StripeUnit())
	numChunks := (a.lay.DataSectors() + unit - 1) / unit
	spare.missing = make(map[int64]bool)
	var pending []int64
	for c := int64(slot % a.opts.Config.Positions()); c < numChunks; c += g {
		spare.missing[c] = true
		pending = append(pending, c)
	}
	st := &rebuildState{
		slot: slot, pending: pending, total: len(pending),
		started: a.sim.Now(), activeChunk: -1, nextAt: a.sim.Now(),
	}
	a.rebuild = st
	a.faults.RebuildsStarted++
	a.scheduleNextChunk(st)
}

// cancelRebuild abandons the active rebuild (its target drive failed).
// Chunks already reconstructed stay valid on the — now failed — spare's
// slot only as history; the remaining missing chunks die with it.
func (a *Array) cancelRebuild() {
	st := a.rebuild
	if st == nil {
		return
	}
	st.cancelled = true
	if st.gateHeld {
		st.gateHeld = false
		a.releaseWriteGate(st.activeChunk)
	}
	a.rebuild = nil
}

// rebuildInterval is the pacing delay the chunk's size earns at the
// bandwidth cap.
func (a *Array) rebuildInterval(c int64) des.Time {
	unit := int64(a.lay.StripeUnit())
	count := unit
	if rest := a.lay.DataSectors() - c*unit; rest < count {
		count = rest
	}
	// bytes / (MB/s) = bytes/(bytes/µs) = µs, the 1e6 factors cancel.
	return des.Time(float64(count*disk.SectorSize) / a.opts.RebuildMBps)
}

// scheduleNextChunk starts the next pending chunk no earlier than the
// pacing allows, or completes the rebuild.
func (a *Array) scheduleNextChunk(st *rebuildState) {
	if st.cancelled {
		return
	}
	if st.next >= len(st.pending) {
		a.finishRebuild(st)
		return
	}
	c := st.pending[st.next]
	st.next++
	now := a.sim.Now()
	at := st.nextAt
	if at < now {
		at = now
	}
	st.nextAt = at + a.rebuildInterval(c)
	if at > now {
		a.sim.At(at, func() { a.startChunk(st, c) })
		return
	}
	a.startChunk(st, c)
}

// startChunk serializes the chunk's reconstruction against foreground
// writes via the per-chunk write gate, then kicks off the source read.
func (a *Array) startChunk(st *rebuildState, c int64) {
	if st.cancelled {
		return
	}
	// Rebuild pacing yields to a saturated foreground: chunk starts wait
	// out the overload (rechecking every throttleRecheck) so reconstruction
	// bandwidth is spent only when the array has headroom.
	if a.overloaded() {
		a.sim.At(a.sim.Now()+throttleRecheck, func() { a.startChunk(st, c) })
		return
	}
	if waiting, gated := a.writeGate[c]; gated {
		a.writeGate[c] = append(waiting, gateWaiter{run: func() {
			// Fired by releaseWriteGate: in delayed mode this continuation
			// now owns the gate and must release it if the rebuild died
			// while it waited.
			if st.cancelled {
				if _, still := a.writeGate[c]; still {
					a.releaseWriteGate(c)
				}
				return
			}
			st.activeChunk, st.gateHeld = c, true
			a.reconstructChunk(st, c)
		}})
		return
	}
	a.writeGate[c] = nil
	st.activeChunk, st.gateHeld = c, true
	a.reconstructChunk(st, c)
}

// reconstructChunk resolves the chunk's layout and reads it from a
// surviving mirror.
func (a *Array) reconstructChunk(st *rebuildState, c int64) {
	unit := int64(a.lay.StripeUnit())
	off := c * unit
	count := unit
	if rest := a.lay.DataSectors() - off; rest < count {
		count = rest
	}
	pieces, err := a.lay.Resolve(off, int(count))
	if err != nil || len(pieces) != 1 {
		panic(fmt.Sprintf("core: rebuild chunk %d resolved to %d pieces: %v", c, len(pieces), err))
	}
	a.readForRebuild(st, c, &pieces[0])
}

// readForRebuild issues a background read of the chunk on the
// lowest-numbered surviving mirror with a fresh copy. A source that fails
// or faults out mid-read re-enters here and the next survivor takes over;
// with no survivor the chunk is lost.
func (a *Array) readForRebuild(st *rebuildState, c int64, p *layout.Piece) {
	var src *drive
	for _, id := range p.Mirrors {
		if id == st.slot {
			continue
		}
		d := a.drives[id]
		if d.failed || d.unreadable(c) {
			continue
		}
		if m := a.readMask(d, c); m != nil && !anyTrue(m) {
			continue
		}
		src = d
		break
	}
	if src == nil {
		if a.chunkRestorable(st, c, p) {
			// No readable source right now, but one is on the way back: a
			// pending propagation will refresh a stale replica, or a
			// condemned copy's repair (queued, in flight, or about to be
			// re-queued by the recovery scan) will land. Wait for it instead
			// of recording the chunk lost — the data still exists.
			a.sim.At(a.sim.Now()+throttleRecheck, func() {
				if st.cancelled {
					return
				}
				a.readForRebuild(st, c, p)
			})
			return
		}
		a.chunkLost(st, c)
		return
	}
	req := &sched.Request{
		ID:         a.nextID(),
		Arrive:     a.sim.Now(),
		Background: true,
		Replicas:   replicasOf(p),
		// Live mask: a propagation completing while this read queues can
		// change which replicas are fresh (and a verify check can condemn
		// one).
		AllowedFn: func(j int) bool {
			m := a.readMask(src, c)
			return m == nil || m[j]
		},
	}
	req.Tag = &reqTag{
		onDone: func(last bus.Completion, chosen int) {
			if st.cancelled {
				return
			}
			// A verified rebuild refuses a corrupt source: condemn the copy
			// (queueing its repair) and re-pick — the mask now excludes it.
			// Unverified, the reconstruction faithfully copies the garbage
			// and the rebuilt replicas inherit the poison.
			bad := a.integrity && a.checkPieceRead(src, p, chosen, last)
			if bad && a.opts.VerifyReads {
				a.noteDetected(src, p, chosen)
				a.readForRebuild(st, c, p)
				return
			}
			a.writeRebuildCopies(st, c, p, bad)
		},
		onFail: func() {
			if st.cancelled {
				return
			}
			a.readForRebuild(st, c, p)
		},
	}
	a.enqueue(src, req)
}

// chunkRestorable reports whether some mirror copy of the chunk is only
// temporarily unusable and will come back without the rebuild's help:
// a stale replica with its propagation still pending, or a known-corrupt
// copy whose repair has a clean source left (the repair is queued, in
// flight, or about to be re-queued by the recovery scan). Two mirrors
// condemned against each other never qualify — hasRepairSource skips
// known-bad and unreadable copies, so mutual hopelessness stays lost.
func (a *Array) chunkRestorable(st *rebuildState, c int64, p *layout.Piece) bool {
	for _, id := range p.Mirrors {
		if id == st.slot {
			continue
		}
		d := a.drives[id]
		if d.failed || d.unreadable(c) {
			continue
		}
		if cs := d.stale[c]; cs != nil && !cs.allZero() {
			return true
		}
		stc := d.integ[c]
		if stc == nil {
			continue
		}
		for j := 0; j < a.opts.Config.Dr; j++ {
			if stc.bad[j] == badKnown && (a.repairPending(d, c, j) || a.hasRepairSource(d, c, j)) {
				return true
			}
		}
	}
	return false
}

// writeRebuildCopies queues the chunk's Dr replica writes onto the spare
// through the delayed-write machinery; the shared entry's completion
// finishes the chunk. poison marks copies reconstructed from a corrupt
// source (they land as garbage). The write gate is held for the whole
// chunk, so the committed version cannot advance under these copies.
func (a *Array) writeRebuildCopies(st *rebuildState, c int64, p *layout.Piece, poison bool) {
	spare := a.drives[st.slot]
	entry := &propEntry{onAllDone: func() {
		if st.cancelled {
			return
		}
		a.finishChunk(st, c)
	}}
	ver := a.committed[c]
	for j := 0; j < a.opts.Config.Dr; j++ {
		spare.delayed = append(spare.delayed, &delayedCopy{
			entry: entry, replica: j, extents: p.Replicas[j],
			chunk: c, off: p.Off, count: p.Count, rebuild: true,
			poison: poison, ver: ver,
		})
		entry.remaining++
	}
	a.kick(spare)
}

// finishChunk marks the chunk readable on the spare, releases its write
// gate (flushing writes that queued during reconstruction), and advances
// the pump.
func (a *Array) finishChunk(st *rebuildState, c int64) {
	spare := a.drives[st.slot]
	delete(spare.missing, c)
	st.done++
	if a.obsRec != nil {
		a.obsRec.RebuildChunkDone()
	}
	st.activeChunk, st.gateHeld = -1, false
	a.releaseWriteGate(c)
	a.scheduleNextChunk(st)
}

// chunkLost records a chunk with no surviving source: permanently gone.
func (a *Array) chunkLost(st *rebuildState, c int64) {
	st.lost++
	a.faults.LostChunks++
	a.lostChunks[c] = true
	if a.obsRec != nil {
		a.obsRec.RebuildChunkLost()
	}
	st.activeChunk, st.gateHeld = -1, false
	a.releaseWriteGate(c)
	a.scheduleNextChunk(st)
}

// finishRebuild retires the state and starts the next rebuild if another
// slot failed while this one ran.
func (a *Array) finishRebuild(st *rebuildState) {
	a.rebuild = nil
	a.faults.RebuildsDone++
	spare := a.drives[st.slot]
	if len(spare.missing) == 0 {
		spare.missing = nil
	}
	a.maybeStartRebuild()
}
