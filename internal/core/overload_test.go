package core

import (
	"errors"
	"testing"

	"repro/internal/des"
	"repro/internal/layout"
)

// TestShedBurstAllocs pins the overload shed path at zero allocations per
// rejection: during a burst the reject path is the hottest code in the
// array, and building a wrapped error per shed (the old
// fmt.Errorf("%w: chunk %d", ...)) allocated exactly when allocation hurt
// most.
func TestShedBurstAllocs(t *testing.T) {
	_, a := newArray(t, layout.Config{Ds: 1, Dr: 1, Dm: 1}, "fcfs", func(o *Options) {
		o.DataSectors = 1 << 15
		o.MaxQueueDepth = 2
	})
	onDone := func(Result) {}
	// Fill the single drive to depth without stepping the simulation: the
	// queue never drains, so every further submit must shed.
	for {
		err := a.Submit(Read, 0, 8, false, onDone)
		if errors.Is(err, ErrOverload) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	// Warm the resolve arena before measuring.
	for i := 0; i < 64; i++ {
		if err := a.Submit(Read, int64(i%32)*64, 8, false, onDone); !errors.Is(err, ErrOverload) {
			t.Fatalf("warmup submit %d: %v, want ErrOverload", i, err)
		}
	}
	shedsBefore := a.Sheds().Overload
	const burst = 512
	avg := testing.AllocsPerRun(4, func() {
		for i := 0; i < burst; i++ {
			if err := a.Submit(Read, int64(i%32)*64, 8, false, onDone); !errors.Is(err, ErrOverload) {
				t.Fatalf("burst submit %d: %v, want ErrOverload", i, err)
			}
		}
	})
	if perOp := avg / burst; perOp > 0.01 {
		t.Fatalf("shed path allocates %.3f allocs/op, want 0", perOp)
	}
	if got := a.Sheds().Overload; got <= shedsBefore {
		t.Fatal("measured burst shed nothing")
	}
}

// TestBackgroundThrottleBoundary tables the background-throttle predicate
// across MaxQueueDepth 1–4. After k accepted submits on a one-drive array
// the state is one command in flight plus k-1 queued, so each row pins the
// predicate at an exact occupancy. The depth-1 rows are the regression for
// the off-by-one where "half" equalled the shed threshold and background
// work was never deprioritized ahead of foreground rejection.
func TestBackgroundThrottleBoundary(t *testing.T) {
	cases := []struct {
		depth   int
		submits int
		want    bool
	}{
		// depth 1: any foreground activity — a command on the bus or a
		// queued request — throttles background work; idle does not.
		{1, 0, false},
		{1, 1, true}, // in flight, queue empty: the old half-depth predicate said false
		{1, 2, true},
		// depth 2: half = 1 — throttle once a request queues behind the
		// in-flight one, strictly before the shed threshold.
		{2, 0, false},
		{2, 1, false},
		{2, 2, true},
		{2, 3, true},
		// depth 3: half = 2.
		{3, 2, false},
		{3, 3, true},
		// depth 4: half = 2 — the throttle band [2, 4) sits below the shed
		// depth.
		{4, 2, false},
		{4, 3, true},
		{4, 4, true},
	}
	for _, c := range cases {
		sim, a := newArray(t, layout.Config{Ds: 1, Dr: 1, Dm: 1}, "fcfs", func(o *Options) {
			o.DataSectors = 1 << 15
			o.MaxQueueDepth = c.depth
		})
		done := 0
		for i := 0; i < c.submits; i++ {
			if err := a.Submit(Read, int64(i)*64, 8, false, func(Result) { done++ }); err != nil {
				t.Fatalf("depth %d: submit %d: %v", c.depth, i, err)
			}
		}
		if got := a.overloaded(); got != c.want {
			t.Errorf("depth %d after %d submits: overloaded() = %v, want %v",
				c.depth, c.submits, got, c.want)
		}
		for done < c.submits {
			if !sim.Step() {
				t.Fatalf("depth %d: stalled at %d/%d", c.depth, done, c.submits)
			}
		}
		if !a.Drain(des.Hour) {
			t.Fatalf("depth %d: drain failed", c.depth)
		}
		if a.overloaded() {
			t.Errorf("depth %d: overloaded() true on an idle array", c.depth)
		}
	}
}
