package core

import (
	"fmt"
	"sort"

	"repro/internal/bus"
	"repro/internal/des"
	"repro/internal/sched"
)

// Whole-array power failure. The paper acknowledges delayed-mode writes out
// of NVRAM and hand-waves crash recovery onto the battery backing of that
// table; this file models the crash itself so the recovery pipeline
// (recovery.go) has something honest to recover from. A crash tears the
// in-flight bus transfer on every drive (a torn write leaves garbage under
// a completion that never arrives), abandons every queued request with
// ErrCrashed, drops all pending delayed propagation, and — depending on the
// durability mode — preserves or loses the NVRAM metadata table. Background
// machinery (rebuild, scrub) is interrupted and resumed by Recover.
//
// The model is default-off: a zero CrashModel adds no state, no events, and
// no hot-path work beyond the single a.crashed bool check in Submit/kick.

// NVRAMDurability selects what a power failure does to the delayed-write
// metadata table.
type NVRAMDurability uint8

const (
	// Volatile NVRAM loses the table with the power: every pending delayed
	// copy is lost and the replicas it would have refreshed stay divergent
	// until the recovery scan finds them.
	Volatile NVRAMDurability = iota
	// BatteryBacked NVRAM holds the table across the outage (within
	// CrashModel.BatteryHorizon): recovery adopts the surviving entries and
	// reissues each still-owed copy as a foreground write.
	BatteryBacked
)

func (d NVRAMDurability) String() string {
	if d == BatteryBacked {
		return "battery-backed"
	}
	return "volatile"
}

// DefaultRecoveryScanMBps paces the post-crash divergence scan when
// CrashModel.ScanMBps is zero. The scan reads metadata (content versions /
// checksum summaries), not data, so it runs well above scrub rates.
const DefaultRecoveryScanMBps = 32.0

// CrashModel configures whole-array power-failure injection. The zero
// value disables the model entirely.
type CrashModel struct {
	// Enabled turns the model on: Crash/Recover become callable, the
	// integrity oracle is kept (the recovery scan needs content versions),
	// and — when At is set — a crash is scheduled at construction.
	Enabled bool
	// At, when positive, power-fails the array at that simulated instant.
	// Zero leaves crashes to explicit Crash() calls.
	At des.Time
	// RecoverAfter, when positive, schedules Recover that long after the
	// scheduled crash (the outage duration). Zero leaves recovery to an
	// explicit Recover() call.
	RecoverAfter des.Time
	// Durability selects what the crash does to the NVRAM table.
	Durability NVRAMDurability
	// BatteryHorizon bounds how long BatteryBacked NVRAM holds its charge:
	// a recovery later than crash time plus the horizon finds the table
	// drained and adopts nothing. Zero means indefinite.
	BatteryHorizon des.Time
	// ScanMBps paces the recovery scan; 0 means DefaultRecoveryScanMBps.
	ScanMBps float64
}

// Validate checks the model. A disabled model is valid regardless of the
// other fields (they are ignored).
func (m CrashModel) Validate() error {
	if !m.Enabled {
		return nil
	}
	if m.At < 0 {
		return fmt.Errorf("core: negative crash time %v", m.At)
	}
	if m.RecoverAfter < 0 {
		return fmt.Errorf("core: negative crash recovery delay %v", m.RecoverAfter)
	}
	if m.RecoverAfter > 0 && m.At == 0 {
		return fmt.Errorf("core: CrashModel.RecoverAfter without CrashModel.At")
	}
	if m.BatteryHorizon < 0 {
		return fmt.Errorf("core: negative battery horizon %v", m.BatteryHorizon)
	}
	if m.Durability > BatteryBacked {
		return fmt.Errorf("core: unknown NVRAM durability %d", m.Durability)
	}
	if m.ScanMBps < 0 {
		return fmt.Errorf("core: negative recovery scan bandwidth %v", m.ScanMBps)
	}
	return nil
}

// scheduleCrash arms the construction-time crash (and optional recovery)
// events. Prototype-mode construction advances the clock past calibration,
// so an At inside that window fires immediately rather than in the past.
func (a *Array) scheduleCrash(at, recoverAfter des.Time) {
	if now := a.sim.Now(); at < now {
		at = now
	}
	a.sim.At(at, func() {
		if a.crashed {
			return
		}
		if err := a.Crash(); err != nil {
			panic(fmt.Sprintf("core: scheduled crash failed: %v", err))
		}
		if recoverAfter > 0 {
			a.sim.At(a.sim.Now()+recoverAfter, func() {
				if !a.crashed {
					return
				}
				if err := a.Recover(); err != nil {
					panic(fmt.Sprintf("core: scheduled recovery failed: %v", err))
				}
			})
		}
	})
}

// Crashed reports whether the array is in the power-failed window between
// Crash and Recover.
func (a *Array) Crashed() bool { return a.crashed }

// Crash power-fails the whole array at the current instant:
//
//   - the command on each drive's mechanism is torn — for a write, garbage
//     lands under a completion that never arrives (the PR's torn-write
//     poison), and the oracle records it;
//   - every queued and in-flight logical request fails with ErrCrashed;
//   - all pending delayed propagation, repairs, and reconstruction copies
//     are dropped (with BatteryBacked durability the NVRAM table is
//     snapshotted first, so the still-owed propagations survive as table
//     entries);
//   - an active rebuild or scrub pass is interrupted, to be resumed by
//     Recover;
//   - until Recover, Submit rejects everything with ErrCrashed.
//
// Requires the crash model to be enabled (the recovery scan needs the
// integrity oracle that Options.Crash.Enabled keeps on).
func (a *Array) Crash() error {
	if !a.opts.Crash.Enabled {
		return fmt.Errorf("core: crash model disabled (set Options.Crash.Enabled)")
	}
	if a.crashed {
		return fmt.Errorf("core: array already crashed")
	}
	// Snapshot the NVRAM table while the delayed queues still hold it; the
	// battery keeps exactly what SnapshotNVRAM keeps (propagation entries,
	// not rebuild or repair intents).
	a.crashSnap = nil
	if a.opts.Crash.Durability == BatteryBacked {
		snap, err := a.SnapshotNVRAM()
		if err != nil {
			return err
		}
		a.crashSnap = snap
	}
	a.crashed = true
	a.crashAt = a.sim.Now()
	a.recCtr.Crashes++
	if a.obsRec != nil {
		a.obsRec.Crashes++
	}
	// Interrupt background machinery before sweeping the queues so their
	// per-event guards (st.cancelled, s != a.scrub) neutralize every timer
	// and completion still in flight.
	a.crashScrubActive = a.scrub != nil && !a.scrub.done
	if a.crashScrubActive {
		a.crashScrubOpts = a.scrub.opts
	}
	a.scrub = nil
	if st := a.rebuild; st != nil {
		// Not cancelRebuild: that releases the held write gate and runs its
		// waiters, which must instead fail with the crash (crashGates).
		st.cancelled = true
		st.gateHeld = false
		a.rebuild = nil
	}
	if s := a.recScan; s != nil {
		// A crash during a still-running recovery scan abandons it; the
		// next Recover starts a fresh one.
		s.done = true
		a.recScan = nil
	}
	for _, d := range a.drives {
		a.crashDrive(d)
	}
	a.crashGates()
	return nil
}

// crashDrive tears down one drive: the bus (in-flight and TCQ-queued
// commands), the foreground queue, and the delayed queue.
func (a *Array) crashDrive(d *drive) {
	d.bus.PowerFail(func(_ bus.Command, h bus.CompletionHandler, _ uint64, inFlight bool) {
		r, ok := h.(*extentRun)
		if !ok {
			return
		}
		a.crashRun(r, inFlight)
	})
	queue := d.queue
	d.queue = nil
	for _, req := range queue {
		a.crashQueued(d, req)
	}
	// Pending delayed copies die with the power (the battery-backed table
	// was snapshotted before the sweep). Propagation copies are counted so
	// recovery can reconcile adopted versus lost.
	for _, c := range d.delayed {
		if !c.rebuild && !c.repair {
			a.crashDelayed++
		}
		a.finishCopy(d, c, false, bus.Completion{})
		a.putCopy(c)
	}
	d.delayed = nil
	d.refInFlight = false
}

// crashRun resolves an extent run caught on the bus: a write on the
// mechanism at the instant of the failure is torn (garbage under a
// completion that never arrives — the oracle poisons the target copy);
// TCQ-queued commands simply vanish.
func (a *Array) crashRun(r *extentRun, inFlight bool) {
	d := r.d
	torn := inFlight && r.op == bus.OpWrite && a.integrity
	kind, choice, dc, pr, req := r.kind, r.choice, r.dc, r.pr, r.req
	a.putRun(r)
	if kind == runDelayed {
		if torn {
			a.poisonCopy(d, dc.chunk, dc.replica)
		}
		a.finishCopy(d, dc, false, bus.Completion{})
		a.putCopy(dc)
		a.putReq(pr)
		return
	}
	tag := req.Tag.(*reqTag)
	tag.offQueue = true
	switch tag.kind {
	case tagClosure:
		// Hedge duplicates crash their controller and reference reads clear
		// their latch; scrub/rebuild reads and NVRAM-adoption writes are
		// dropped outright — their owners were torn down and restart from
		// scratch at recovery.
		if tag.hedgeOf != nil {
			tag.hedgeOf.crash()
		}
		if tag.ref {
			d.refInFlight = false
		}
	case tagRead:
		if tag.hc != nil {
			tag.hc.crash()
		} else {
			tag.ur.pieceFailed(ErrCrashed)
		}
	case tagFGWrite:
		if torn {
			a.poisonCopy(tag.d, tag.fg.chunk, tag.rep)
		}
		a.crashFG(tag.fg)
	case tagFirstWrite:
		if torn {
			a.poisonCopy(d, tag.p.Chunk, choice.Replica)
		}
		tag.ur.pieceFailed(ErrCrashed)
	case tagPromote:
		if torn {
			a.poisonCopy(d, tag.dc.chunk, tag.dc.replica)
		}
		a.finishCopy(d, tag.dc, false, bus.Completion{})
		a.putCopy(tag.dc)
	}
	if tag.pr != nil {
		a.putReq(tag.pr)
	}
}

// crashQueued resolves one request still in a drive's foreground queue:
// it never reached the media, so it fails with ErrCrashed (once per
// logical piece — duplicate groups resolve on their first-visited member).
func (a *Array) crashQueued(d *drive, req *sched.Request) {
	tag := req.Tag.(*reqTag)
	tag.offQueue = true
	if tag.ref {
		d.refInFlight = false
		if tag.pr != nil {
			a.putReq(tag.pr)
		}
		return
	}
	if g := tag.group; g != nil && !g.claimed {
		// First member visited resolves the piece; the rest are removed from
		// their (still-live) queues so later drive sweeps never see them.
		g.claimed = true
		for _, m := range g.members {
			if m.req == req {
				continue
			}
			mt := m.req.Tag.(*reqTag)
			mt.offQueue = true
			removeFromQueue(m.d, m.req)
			if mt.pr != nil {
				a.putReq(mt.pr)
			}
		}
		g.members = nil
	}
	switch tag.kind {
	case tagClosure:
		if tag.hedgeOf != nil {
			tag.hedgeOf.crash()
		}
	case tagRead:
		if tag.hc != nil {
			tag.hc.crash()
		} else {
			tag.ur.pieceFailed(ErrCrashed)
		}
	case tagFGWrite:
		a.crashFG(tag.fg)
	case tagFirstWrite:
		tag.ur.pieceFailed(ErrCrashed)
	case tagPromote:
		a.finishCopy(d, tag.dc, false, bus.Completion{})
		a.putCopy(tag.dc)
	}
	if tag.pr != nil {
		a.putReq(tag.pr)
	}
}

// crashFG counts one copy of a foreground-mode write down at the crash.
// The last copy fails the piece with ErrCrashed and never commits the
// version: the write was not acknowledged, and any copies that did land
// carry uncommitted versions (harmless — divergence is version-lag below
// the committed version, never above).
func (a *Array) crashFG(f *fgWrite) {
	f.left--
	if f.left != 0 {
		return
	}
	ur := f.ur
	a.putFG(f)
	ur.pieceFailed(ErrCrashed)
}

// crashGates fails every write parked behind a chunk's write gate (the
// gate holders themselves were failed by the queue sweeps) and clears all
// gates. Chunk order, not map order, so the Done callbacks fire
// deterministically.
func (a *Array) crashGates() {
	if len(a.writeGate) == 0 {
		return
	}
	chunks := make([]int64, 0, len(a.writeGate))
	for c := range a.writeGate {
		chunks = append(chunks, c)
	}
	sort.Slice(chunks, func(i, j int) bool { return chunks[i] < chunks[j] })
	for _, c := range chunks {
		for _, w := range a.writeGate[c] {
			if w.ur != nil {
				w.ur.pieceFailed(ErrCrashed)
			}
		}
		delete(a.writeGate, c)
	}
}
