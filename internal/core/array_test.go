package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/des"
	"repro/internal/layout"
)

// smallVolume keeps tests fast: 1 GB of data.
const smallVolume = int64(1 << 21)

func newArray(t testing.TB, cfg layout.Config, policy string, opts func(*Options)) (*des.Sim, *Array) {
	t.Helper()
	sim := des.New()
	o := Options{Config: cfg, Policy: policy, DataSectors: smallVolume, Seed: 42}
	if opts != nil {
		opts(&o)
	}
	a, err := New(sim, o)
	if err != nil {
		t.Fatal(err)
	}
	return sim, a
}

// runRandomReads issues n uniform random single-chunk reads sequentially
// (closed loop, one outstanding) and returns the mean latency.
func runRandomReads(t testing.TB, sim *des.Sim, a *Array, n, sectors int, seed int64) des.Time {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var total des.Time
	for i := 0; i < n; i++ {
		off := rng.Int63n(a.DataSectors() - int64(sectors))
		done := false
		var lat des.Time
		if err := a.Submit(Read, off, sectors, false, func(r Result) {
			lat = r.Latency()
			done = true
		}); err != nil {
			t.Fatal(err)
		}
		for !done {
			if !sim.Step() {
				t.Fatal("simulation stalled mid-read")
			}
		}
		total += lat
	}
	return total / des.Time(n)
}

func TestSingleReadCompletes(t *testing.T) {
	sim, a := newArray(t, layout.Striping(2), "satf", nil)
	lat := runRandomReads(t, sim, a, 1, 8, 1)
	if lat < 100 || lat > 30000 {
		t.Fatalf("single read latency %v, implausible", lat)
	}
}

func TestMeanReadLatencyPlausible(t *testing.T) {
	sim, a := newArray(t, layout.Striping(1), "fcfs", nil)
	mean := runRandomReads(t, sim, a, 300, 1, 2)
	// One disk, FCFS, random reads: ~ overhead + avgseek/L + R/2. The small
	// volume raises locality; expect 3–10 ms.
	if mean < 3000 || mean > 10000 {
		t.Fatalf("mean random-read latency %v, want 3-10ms", mean)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() des.Time {
		sim, a := newArray(t, layout.SRArray(2, 3), "rsatf", nil)
		return runRandomReads(t, sim, a, 200, 8, 7)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed produced different results: %v vs %v", a, b)
	}
}

// The headline shape: at equal disk budget, a 2x3 SR-Array beats 6-way
// striping on random single-sector reads at low load, because striping
// cannot reduce rotational delay.
func TestSRArrayBeatsStripingAtLowLoad(t *testing.T) {
	simS, aS := newArray(t, layout.Striping(6), "satf", nil)
	stripe := runRandomReads(t, simS, aS, 400, 1, 3)
	simR, aR := newArray(t, layout.SRArray(2, 3), "rsatf", nil)
	sr := runRandomReads(t, simR, aR, 400, 1, 3)
	if sr >= stripe {
		t.Fatalf("SR-Array mean %v not better than striping %v", sr, stripe)
	}
}

// Rotational replication cuts the rotational term: 1x6 should roughly
// halve latency versus 1x2 on a single position at low load.
func TestMoreReplicasLowerLatency(t *testing.T) {
	sim2, a2 := newArray(t, layout.SRArray(1, 2), "rsatf", nil)
	two := runRandomReads(t, sim2, a2, 400, 1, 5)
	sim6, a6 := newArray(t, layout.SRArray(1, 6), "rsatf", nil)
	six := runRandomReads(t, sim6, a6, 400, 1, 5)
	if six >= two {
		t.Fatalf("Dr=6 mean %v not better than Dr=2 %v", six, two)
	}
}

func TestMirrorReadsServiceOnce(t *testing.T) {
	_, a := newArray(t, layout.Mirror(3), "satf", nil)
	count := 0
	rng := rand.New(rand.NewSource(1))
	// Saturate with concurrent reads so duplication paths trigger. Keep
	// each read inside one stripe chunk so it is exactly one piece.
	unit := int64(a.Layout().StripeUnit())
	for i := 0; i < 50; i++ {
		off := rng.Int63n(a.DataSectors()/unit)*unit + rng.Int63n(unit-8)
		if err := a.Submit(Read, off, 8, false, func(Result) { count++ }); err != nil {
			t.Fatal(err)
		}
	}
	if !a.Drain(des.Hour) {
		t.Fatal("array did not drain")
	}
	if count != 50 {
		t.Fatalf("%d completions for 50 reads", count)
	}
	// Each read serviced exactly once: dispatches = completions (reads
	// only, no writes pending).
	if a.Dispatches != 50 {
		t.Fatalf("%d dispatches for 50 reads (duplicates not cancelled?)", a.Dispatches)
	}
}

func TestDelayedWriteLatencyAndPropagation(t *testing.T) {
	sim, a := newArray(t, layout.SRArray(2, 3), "rsatf", nil)
	var wLat des.Time
	done := false
	off := int64(1000)
	if err := a.Submit(Write, off, 8, false, func(r Result) {
		wLat = r.Latency()
		done = true
	}); err != nil {
		t.Fatal(err)
	}
	for !done {
		sim.Step()
	}
	// Write completed after ONE copy; the other two replicas are pending.
	if a.NVRAMUsed() != 1 {
		t.Fatalf("NVRAM entries = %d, want 1", a.NVRAMUsed())
	}
	if wLat > 20000 {
		t.Fatalf("delayed write latency %v — looks like it waited for all copies", wLat)
	}
	// While propagation is pending, the piece's chunk is stale on some
	// replicas.
	pieces, err := a.Layout().Resolve(off, 8)
	if err != nil {
		t.Fatal(err)
	}
	d := a.drives[pieces[0].Mirrors[0]]
	mask := a.freshMask(d, pieces[0].Chunk)
	if mask == nil {
		t.Fatal("no staleness recorded after first write copy")
	}
	fresh := 0
	for _, ok := range mask {
		if ok {
			fresh++
		}
	}
	if fresh != 1 {
		t.Fatalf("%d fresh replicas right after first copy, want exactly 1", fresh)
	}
	// Idle time propagates the rest.
	if !a.Drain(des.Hour) {
		t.Fatal("propagation did not drain")
	}
	if a.NVRAMUsed() != 0 {
		t.Fatalf("NVRAM entries = %d after drain, want 0", a.NVRAMUsed())
	}
	if m := a.freshMask(d, pieces[0].Chunk); m != nil {
		t.Fatalf("staleness survived propagation: %v", m)
	}
}

func TestReadAfterWriteUsesFreshReplica(t *testing.T) {
	sim, a := newArray(t, layout.SRArray(1, 3), "rsatf", nil)
	off := int64(5000)
	wDone := false
	a.Submit(Write, off, 8, false, func(Result) { wDone = true })
	for !wDone {
		sim.Step()
	}
	// Immediately read the same block: must complete using the one fresh
	// replica even though two replicas are still stale.
	rDone := false
	a.Submit(Read, off, 8, false, func(Result) { rDone = true })
	for !rDone {
		if !sim.Step() {
			t.Fatal("read stalled")
		}
	}
	if !a.Drain(des.Hour) {
		t.Fatal("drain failed")
	}
}

func TestForegroundWritesWaitForAllCopies(t *testing.T) {
	simD, aD := newArray(t, layout.SRArray(2, 3), "rsatf", nil)
	simF, aF := newArray(t, layout.SRArray(2, 3), "rsatf", func(o *Options) { o.ForegroundWrites = true })
	measure := func(sim *des.Sim, a *Array) des.Time {
		rng := rand.New(rand.NewSource(9))
		var total des.Time
		const n = 150
		for i := 0; i < n; i++ {
			off := rng.Int63n(a.DataSectors() - 8)
			done := false
			var lat des.Time
			a.Submit(Write, off, 8, false, func(r Result) { lat, done = r.Latency(), true })
			for !done {
				sim.Step()
			}
			a.Drain(des.Hour) // keep comparisons clean of queued propagation
			total += lat
		}
		return total / n
	}
	delayed := measure(simD, aD)
	fg := measure(simF, aF)
	if fg <= delayed {
		t.Fatalf("foreground write latency %v not worse than delayed %v", fg, delayed)
	}
	// Foreground Dr=3 costs roughly seek + (R - R/6); delayed costs about
	// seek + R/6. The gap should be several milliseconds.
	if fg-delayed < 2000 {
		t.Fatalf("foreground-delayed gap %v, want > 2ms", fg-delayed)
	}
}

func TestNVRAMCapForcesWrites(t *testing.T) {
	_, a := newArray(t, layout.SRArray(1, 2), "rsatf", func(o *Options) { o.NVRAMEntries = 16 })
	rng := rand.New(rand.NewSource(3))
	// Writes arrive back-to-back with no idle time to propagate.
	pending := 0
	for i := 0; i < 200; i++ {
		off := rng.Int63n(a.DataSectors() - 8)
		pending++
		a.Submit(Write, off, 8, false, func(Result) { pending-- })
	}
	if !a.Drain(des.Hour) {
		t.Fatal("did not drain")
	}
	if pending != 0 {
		t.Fatalf("%d writes unaccounted", pending)
	}
	if a.ForcedDelayed == 0 {
		t.Fatal("NVRAM cap of 16 never forced a delayed write during a 200-write burst")
	}
	if a.NVRAMUsed() != 0 {
		t.Fatalf("NVRAM = %d after drain", a.NVRAMUsed())
	}
}

func TestWriteCoalescing(t *testing.T) {
	_, a := newArray(t, layout.SRArray(1, 3), "rsatf", nil)
	off := int64(4096)
	// Two back-to-back writes of the same block: the second supersedes the
	// first's pending propagation.
	done := 0
	a.Submit(Write, off, 8, false, func(Result) { done++ })
	a.Submit(Write, off, 8, false, func(Result) { done++ })
	if !a.Drain(des.Hour) {
		t.Fatal("drain failed")
	}
	if done != 2 {
		t.Fatalf("%d completions", done)
	}
	// 2 user writes on Dr=3: without coalescing 2 first-copies + 4
	// propagations = 6 media writes; coalescing should have cancelled at
	// least one pending copy. Dispatches counts foreground work only, so
	// count total commands on the buses instead.
	var cmds int64
	for _, d := range a.drives {
		cmds += d.bus.Commands
	}
	if cmds >= 6 {
		t.Fatalf("%d media writes for two overlapping user writes, want < 6 (coalescing)", cmds)
	}
	if a.NVRAMUsed() != 0 {
		t.Fatalf("NVRAM = %d", a.NVRAMUsed())
	}
}

func TestRecoverDelayed(t *testing.T) {
	sim, a := newArray(t, layout.SRArray(1, 3), "rsatf", nil)
	rng := rand.New(rand.NewSource(8))
	writes := 0
	for i := 0; i < 20; i++ {
		off := rng.Int63n(a.DataSectors() - 8)
		writes++
		a.Submit(Write, off, 8, false, func(Result) { writes-- })
	}
	// Let first copies land but interrupt before propagation finishes.
	for writes > 0 {
		sim.Step()
	}
	if a.NVRAMUsed() == 0 {
		t.Skip("all propagation finished before the crash point; nothing to recover")
	}
	n := a.RecoverDelayed()
	if n == 0 {
		t.Fatal("recovery reissued nothing despite pending entries")
	}
	if !a.Drain(des.Hour) {
		t.Fatal("recovery did not drain")
	}
	if a.NVRAMUsed() != 0 {
		t.Fatalf("NVRAM = %d after recovery", a.NVRAMUsed())
	}
}

func TestSATFBeatsFCFSUnderLoad(t *testing.T) {
	measure := func(policy string) des.Time {
		sim, a := newArray(t, layout.Striping(1), policy, nil)
		rng := rand.New(rand.NewSource(11))
		const n = 400
		var total des.Time
		finished := 0
		// Keep 16 outstanding.
		var issue func()
		issued := 0
		issue = func() {
			if issued >= n {
				return
			}
			issued++
			off := rng.Int63n(a.DataSectors() - 1)
			submit := sim.Now()
			a.Submit(Read, off, 1, false, func(r Result) {
				total += r.Done - submit
				finished++
				issue()
			})
		}
		for i := 0; i < 16; i++ {
			issue()
		}
		for finished < n {
			if !sim.Step() {
				t.Fatal("stalled")
			}
		}
		return total / des.Time(n)
	}
	fcfs := measure("fcfs")
	satf := measure("satf")
	look := measure("look")
	if satf >= fcfs {
		t.Fatalf("SATF %v not better than FCFS %v at queue 16", satf, fcfs)
	}
	if look >= fcfs {
		t.Fatalf("LOOK %v not better than FCFS %v at queue 16", look, fcfs)
	}
	if satf >= look {
		t.Fatalf("SATF %v not better than LOOK %v at queue 16", satf, look)
	}
}

func TestPrototypeModeEndToEnd(t *testing.T) {
	sim, a := newArray(t, layout.SRArray(2, 3), "rsatf", func(o *Options) {
		o.Prototype = true
	})
	if a.RefReads == 0 {
		t.Fatal("no calibration reads at construction")
	}
	mean := runRandomReads(t, sim, a, 300, 1, 13)
	if mean < 1000 || mean > 15000 {
		t.Fatalf("prototype mean latency %v, implausible", mean)
	}
	acc := a.Accuracy()
	if acc.N() < 250 {
		t.Fatalf("only %d accuracy records", acc.N())
	}
	missRate, _, _, meanAccess, _ := acc.Report(a.RotationPeriod())
	if missRate > 0.05 {
		t.Fatalf("rotation miss rate %.3f, want < 0.05", missRate)
	}
	if meanAccess <= 0 {
		t.Fatal("non-positive mean access")
	}
}

// Prototype and simulator modes should agree closely on throughput — the
// validation claim of paper Figure 5 (within a few percent).
func TestPrototypeMatchesSimulator(t *testing.T) {
	measure := func(proto bool) float64 {
		sim, a := newArray(t, layout.SRArray(2, 3), "rsatf", func(o *Options) {
			o.Prototype = proto
		})
		rng := rand.New(rand.NewSource(17))
		const n = 1500
		finished, issued := 0, 0
		start := sim.Now()
		var issue func()
		issue = func() {
			if issued >= n {
				return
			}
			issued++
			off := rng.Int63n(a.DataSectors() - 1)
			a.Submit(Read, off, 1, false, func(Result) {
				finished++
				issue()
			})
		}
		for i := 0; i < 8; i++ {
			issue()
		}
		for finished < n {
			if !sim.Step() {
				t.Fatal("stalled")
			}
		}
		return float64(n) / float64(sim.Now()-start) * 1e6 // IOPS
	}
	simIOPS := measure(false)
	protoIOPS := measure(true)
	gap := math.Abs(simIOPS-protoIOPS) / simIOPS
	if gap > 0.08 {
		t.Fatalf("prototype %0.f IOPS vs simulator %.0f IOPS: %.1f%% gap, want within 8%%", protoIOPS, simIOPS, gap*100)
	}
}

func TestOptionsValidation(t *testing.T) {
	sim := des.New()
	if _, err := New(sim, Options{Config: layout.Config{Ds: 1, Dr: 5, Dm: 1}}); err == nil {
		t.Fatal("invalid Dr accepted")
	}
	if _, err := New(sim, Options{Config: layout.Striping(2), Policy: "elevator-of-doom"}); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestSubmitValidatesRange(t *testing.T) {
	_, a := newArray(t, layout.Striping(2), "satf", nil)
	if err := a.Submit(Read, -5, 8, false, nil); err == nil {
		t.Fatal("negative offset accepted")
	}
	if err := a.Submit(Read, a.DataSectors(), 1, false, nil); err == nil {
		t.Fatal("offset past end accepted")
	}
}

func TestMultiChunkRequestSpansDisks(t *testing.T) {
	_, a := newArray(t, layout.Striping(4), "satf", nil)
	unit := int64(a.Layout().StripeUnit())
	// A request spanning three chunks touches multiple disks and completes
	// once.
	count := 0
	off := unit - 16
	a.Submit(Read, off, int(unit*2), false, func(Result) { count++ })
	if !a.Drain(des.Hour) {
		t.Fatal("drain failed")
	}
	if count != 1 {
		t.Fatalf("%d completions", count)
	}
	if a.Dispatches < 3 {
		t.Fatalf("%d dispatches, expected at least 3 pieces", a.Dispatches)
	}
}

// Two writes to the same chunk in quick succession, while the first is
// still propagating, must keep at least one fresh replica at all times:
// the second first-copy is steered (live mask) onto the replica the first
// write freshened, and reads in between always have somewhere to go.
func TestOverlappingWritesKeepFreshReplica(t *testing.T) {
	_, a := newArray(t, layout.SRArray(1, 3), "rsatf", nil)
	off := int64(2048)
	done := 0
	for i := 0; i < 6; i++ {
		if err := a.Submit(Write, off, 8, false, func(Result) { done++ }); err != nil {
			t.Fatal(err)
		}
		// Interleave reads of the same block.
		if err := a.Submit(Read, off, 8, false, func(Result) { done++ }); err != nil {
			t.Fatal(err)
		}
	}
	if !a.Drain(des.Hour) {
		t.Fatal("drain failed")
	}
	if done != 12 {
		t.Fatalf("%d of 12 requests completed", done)
	}
	if a.NVRAMUsed() != 0 {
		t.Fatalf("NVRAM = %d after drain", a.NVRAMUsed())
	}
}

// The same stress with mirrors: rapid overlapping writes and reads across
// a 2x2x2 SR-Mirror.
func TestOverlappingWritesMirrored(t *testing.T) {
	_, a := newArray(t, layout.Config{Ds: 2, Dr: 2, Dm: 2}, "rsatf", nil)
	rng := rand.New(rand.NewSource(5))
	done := 0
	want := 0
	for i := 0; i < 150; i++ {
		off := rng.Int63n(16) * 128 // hammer 16 chunks
		op := Write
		if i%3 == 0 {
			op = Read
		}
		want++
		if err := a.Submit(op, off, 8, false, func(Result) { done++ }); err != nil {
			t.Fatal(err)
		}
	}
	if !a.Drain(des.Hour) {
		t.Fatal("drain failed")
	}
	if done != want {
		t.Fatalf("%d of %d requests completed", done, want)
	}
	if a.NVRAMUsed() != 0 {
		t.Fatalf("NVRAM = %d after drain", a.NVRAMUsed())
	}
}

func TestTCQValidation(t *testing.T) {
	sim := des.New()
	if _, err := New(sim, Options{Config: layout.Striping(2), Policy: "rsatf", TCQDepth: 8}); err == nil {
		t.Fatal("TCQ with a reordering host policy accepted")
	}
}

func TestTCQCompletesAllRequests(t *testing.T) {
	_, a := newArray(t, layout.SRArray(2, 3), "rfcfs", func(o *Options) { o.TCQDepth = 4 })
	rng := rand.New(rand.NewSource(6))
	done := 0
	for i := 0; i < 80; i++ {
		off := rng.Int63n(a.DataSectors() - 8)
		op := Read
		if i%4 == 0 {
			op = Write
		}
		if err := a.Submit(op, off, 8, false, func(Result) { done++ }); err != nil {
			t.Fatal(err)
		}
	}
	if !a.Drain(des.Hour) {
		t.Fatal("TCQ array did not drain")
	}
	if done != 80 {
		t.Fatalf("%d of 80 completed under TCQ", done)
	}
}

// With a deep host queue, the drive's internal SATF beats strict FCFS
// forwarding to an unqueued drive.
func TestTCQBeatsUnqueuedFCFS(t *testing.T) {
	measure := func(depth int) des.Time {
		sim, a := newArray(t, layout.Striping(1), "fcfs", func(o *Options) { o.TCQDepth = depth })
		rng := rand.New(rand.NewSource(12))
		var total des.Time
		finished, issued := 0, 0
		const n = 400
		var issue func()
		issue = func() {
			if issued >= n {
				return
			}
			issued++
			a.Submit(Read, rng.Int63n(a.DataSectors()-1), 1, false, func(r Result) {
				total += r.Latency()
				finished++
				issue()
			})
		}
		for i := 0; i < 16; i++ {
			issue()
		}
		for finished < n {
			if !sim.Step() {
				t.Fatal("stalled")
			}
		}
		return total / n
	}
	plain := measure(0)
	tcq := measure(8)
	if tcq >= plain {
		t.Fatalf("TCQ mean %v not below unqueued FCFS %v", tcq, plain)
	}
}

// A large sequential read coalesces each position's chunks into one long
// physically contiguous command per replica.
func TestMergeReadPieces(t *testing.T) {
	_, a := newArray(t, layout.Config{Ds: 1, Dr: 2, Dm: 1}, "rsatf", func(o *Options) {
		o.DataSectors = 1 << 22
	})
	pieces, err := a.Layout().Resolve(0, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if len(pieces) != 16 {
		t.Fatalf("raw pieces = %d, want 16 chunks", len(pieces))
	}
	merged := a.mergeReadPieces(a.getUR(), pieces)
	if len(merged) != 2 {
		t.Fatalf("merged pieces = %d, want one per position", len(merged))
	}
	for _, p := range merged {
		if p.Count != 1024 {
			t.Fatalf("merged piece count = %d, want 1024", p.Count)
		}
		// The primary replica fuses into a single extent; the angle-shifted
		// replica cannot fuse across track boundaries.
		if len(p.Replicas[0]) != 1 {
			t.Fatalf("primary replica has %d extents, want 1", len(p.Replicas[0]))
		}
		if len(p.Replicas[1]) <= 1 {
			t.Fatalf("shifted replica unexpectedly fused into %d extent(s)", len(p.Replicas[1]))
		}
	}
}

// Head-tracking reference reads keep flowing under sustained load: the
// priority flag prevents the scan from starving them.
func TestRefReadsSurviveLoad(t *testing.T) {
	sim, a := newArray(t, layout.SRArray(1, 2), "rsatf", func(o *Options) {
		o.Prototype = true
		o.RecalibrateEvery = 2 * des.Second
	})
	boot := a.RefReads
	// Closed loop for 30 simulated seconds.
	rng := rand.New(rand.NewSource(3))
	stop := sim.Now() + 30*des.Second
	var issue func()
	issue = func() {
		if sim.Now() >= stop {
			return
		}
		a.Submit(Read, rng.Int63n(a.DataSectors()-1), 1, false, func(Result) { issue() })
	}
	for i := 0; i < 4; i++ {
		issue()
	}
	sim.RunUntil(stop)
	a.Drain(des.Hour)
	got := a.RefReads - boot
	if got < 10 {
		t.Fatalf("only %d reference reads in 30s of load at a 2s cadence", got)
	}
}

func TestTCQWithMirrors(t *testing.T) {
	_, a := newArray(t, layout.Config{Ds: 1, Dr: 2, Dm: 2}, "rfcfs", func(o *Options) {
		o.TCQDepth = 4
	})
	rng := rand.New(rand.NewSource(21))
	done := 0
	for i := 0; i < 60; i++ {
		op := Read
		if i%3 == 0 {
			op = Write
		}
		if err := a.Submit(op, rng.Int63n(a.DataSectors()-8), 8, false, func(Result) { done++ }); err != nil {
			t.Fatal(err)
		}
	}
	if !a.Drain(des.Hour) {
		t.Fatal("TCQ mirror array did not drain")
	}
	if done != 60 {
		t.Fatalf("%d of 60 completed", done)
	}
}
