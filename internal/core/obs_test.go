package core

import (
	"math/rand"
	"testing"

	"repro/internal/des"
	"repro/internal/disk"
	"repro/internal/layout"
	"repro/internal/obs"
)

// sumDrive collects the totals the reconciliation assertions need from
// one drive's metrics.
type driveTotals struct {
	dispatches, faulted, failovers, retries, transients, timeouts int64
	hist                                                          int64 // clean service samples, all classes/ops
	cleanBGReads, cleanDelayedWrites, cleanFGReads                int64
}

func totalsOf(rec *obs.Recorder) driveTotals {
	var s driveTotals
	for i := 0; i < rec.Drives(); i++ {
		d := rec.Drive(i)
		s.dispatches += d.Dispatches
		s.faulted += d.Faulted
		s.failovers += d.Failovers
		s.retries += d.Retries
		s.transients += d.Transients
		s.timeouts += d.Timeouts
		for c := 0; c < int(obs.NumClasses); c++ {
			for op := 0; op < int(obs.NumOps); op++ {
				s.hist += d.Service[c][op].Count
			}
		}
		s.cleanBGReads += d.Service[obs.Background][obs.OpRead].Count
		s.cleanDelayedWrites += d.Service[obs.Delayed][obs.OpWrite].Count
		s.cleanFGReads += d.Service[obs.Foreground][obs.OpRead].Count
	}
	return s
}

// TestObsReconciliation is the acceptance check: a fault-injected
// degraded-plus-rebuild run must produce per-drive histograms whose
// totals reconcile exactly with Array.Faults() and the completed-I/O
// counts — no dispatch double-counted, none dropped.
func TestObsReconciliation(t *testing.T) {
	reg := &obs.Registry{TraceCap: 128}
	cfg := layout.Config{Ds: 1, Dr: 2, Dm: 2} // Dr > 1 so rebuild writes Dr copies per chunk
	sim, a := newArray(t, cfg, "rsatf", func(o *Options) {
		o.DataSectors = 1 << 15
		o.Spares = 1
		o.RebuildMBps = 100
		o.Faults = disk.FaultModel{TransientRate: 0.1, TimeoutRate: 0.05, TimeoutDelay: des.Millisecond}
		o.Obs = reg
		o.ObsLabel = "reconcile"
	})
	if err := a.FailDrive(1); err != nil {
		t.Fatal(err)
	}
	// A closed loop of reads over the degraded array while the rebuild
	// runs underneath.
	// Offsets are 8-aligned so no request straddles a stripe unit: each
	// read is exactly one piece, keeping pieces == user I/Os for the
	// completed-count reconciliation below.
	const ios = 400
	rng := rand.New(rand.NewSource(7))
	served := 0
	for i := 0; i < ios; i++ {
		off := rng.Int63n(a.DataSectors()/8-1) * 8
		var got Result
		if err := a.Submit(Read, off, 8, false, func(r Result) { got = r }); err != nil {
			t.Fatal(err)
		}
		for got.Done == 0 {
			if !sim.Step() {
				t.Fatalf("stalled at read %d", i)
			}
		}
		if !got.Failed {
			served++
		}
	}
	if !a.Drain(des.Hour) {
		t.Fatal("drain failed")
	}
	fc := a.Faults()
	if fc.RebuildsDone != 1 || fc.LostChunks != 0 {
		t.Fatalf("rebuild counters %+v", fc)
	}
	if fc.Transients == 0 || fc.Timeouts == 0 || fc.Retries == 0 {
		t.Fatalf("fault injection produced no faults: %+v", fc)
	}
	if served != ios {
		t.Fatalf("served %d of %d reads", served, ios)
	}

	rec := a.Obs()
	if rec == nil || rec.Label() != "reconcile" {
		t.Fatalf("recorder not attached: %v", rec)
	}
	s := totalsOf(rec)

	// Histograms hold exactly the clean dispatches (satellite exclusion
	// rule: faulted/timed-out runs contribute no timings).
	if s.hist != s.dispatches-s.faulted {
		t.Fatalf("histogram samples %d != dispatches %d - faulted %d", s.hist, s.dispatches, s.faulted)
	}
	// Per-drive fault counters roll up to exactly the array's counters.
	if s.failovers != fc.Failovers {
		t.Fatalf("recorder failovers %d != array %d", s.failovers, fc.Failovers)
	}
	if s.retries != fc.Retries {
		t.Fatalf("recorder retries %d != array %d", s.retries, fc.Retries)
	}
	if s.transients != fc.Transients || s.timeouts != fc.Timeouts {
		t.Fatalf("recorder faults %d/%d != array %d/%d", s.transients, s.timeouts, fc.Transients, fc.Timeouts)
	}
	// Every served read produced exactly one clean foreground dispatch
	// (duplicates cancel; failovers re-dispatch until one run is clean).
	if s.cleanFGReads != int64(served) {
		t.Fatalf("clean foreground reads %d != served %d", s.cleanFGReads, served)
	}
	// The rebuild read each reconstructed chunk once cleanly and wrote Dr
	// delayed copies of it onto the spare.
	if rec.ChunksDone == 0 || rec.ChunksLost != fc.LostChunks {
		t.Fatalf("chunks done/lost = %d/%d (array lost %d)", rec.ChunksDone, rec.ChunksLost, fc.LostChunks)
	}
	if s.cleanBGReads != rec.ChunksDone {
		t.Fatalf("clean background reads %d != chunks done %d", s.cleanBGReads, rec.ChunksDone)
	}
	if want := rec.ChunksDone * int64(cfg.Dr); s.cleanDelayedWrites != want {
		t.Fatalf("clean delayed writes %d != Dr*chunks %d", s.cleanDelayedWrites, want)
	}
}

// TestObsHistogramExcludesFaultedRuns pins the exclusion rule on a plain
// degraded mirror (no rebuild): histogram counts equal successful
// completions only, while faulted runs still count as dispatches.
func TestObsHistogramExcludesFaultedRuns(t *testing.T) {
	reg := &obs.Registry{}
	sim, a := newArray(t, layout.RAID10(4), "satf", func(o *Options) {
		o.DataSectors = 1 << 15
		o.Faults = disk.FaultModel{TransientRate: 0.25, TimeoutRate: 0.1, TimeoutDelay: des.Millisecond}
		o.Obs = reg
	})
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		off := rng.Int63n(a.DataSectors() - 8)
		done := false
		if err := a.Submit(Read, off, 8, false, func(Result) { done = true }); err != nil {
			t.Fatal(err)
		}
		for !done {
			if !sim.Step() {
				t.Fatalf("stalled at read %d", i)
			}
		}
	}
	s := totalsOf(a.Obs())
	if s.faulted == 0 {
		t.Fatal("fault rates produced no faulted runs; test is vacuous")
	}
	if s.hist != s.dispatches-s.faulted {
		t.Fatalf("histogram samples %d != clean dispatches %d", s.hist, s.dispatches-s.faulted)
	}
}

// TestObsDelayedWritesAndNVRAMGauge covers the write path: delayed
// propagation records Delayed-class service times and samples the NVRAM
// table occupancy.
func TestObsDelayedWritesAndNVRAMGauge(t *testing.T) {
	reg := &obs.Registry{}
	sim, a := newArray(t, layout.SRArray(2, 2), "rsatf", func(o *Options) {
		o.DataSectors = 1 << 15
		o.Obs = reg
	})
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 50; i++ {
		// 8-aligned: one piece (and thus Dr-1 delayed copies) per write.
		off := rng.Int63n(a.DataSectors()/8-1) * 8
		done := false
		if err := a.Submit(Write, off, 8, false, func(Result) { done = true }); err != nil {
			t.Fatal(err)
		}
		for !done {
			if !sim.Step() {
				t.Fatal("stalled")
			}
		}
	}
	if !a.Drain(des.Hour) {
		t.Fatal("drain failed")
	}
	rec := a.Obs()
	s := totalsOf(rec)
	// Each write lands one foreground copy and Dr-1 delayed propagations.
	if s.cleanDelayedWrites != 50*int64(2-1) {
		t.Fatalf("delayed writes %d, want 50", s.cleanDelayedWrites)
	}
	if rec.NVRAM.Samples == 0 || rec.NVRAM.Max < 1 {
		t.Fatalf("NVRAM gauge never sampled: %+v", rec.NVRAM)
	}
	if rec.NVRAM.Cur != 0 {
		t.Fatalf("NVRAM gauge should drain to 0, at %d", rec.NVRAM.Cur)
	}
	// Scheduler observation rode along.
	var picks int64
	for i := 0; i < rec.Drives(); i++ {
		picks += rec.Drive(i).Picks
	}
	if picks == 0 {
		t.Fatal("no scheduling decisions observed")
	}
}

// TestObsDisabledLeavesArrayUntouched: no registry, no recorder — and the
// run still works (the nil-guard path).
func TestObsDisabledLeavesArrayUntouched(t *testing.T) {
	sim, a := newArray(t, layout.SRArray(2, 2), "rsatf", nil)
	done := false
	if err := a.Submit(Read, 0, 8, false, func(Result) { done = true }); err != nil {
		t.Fatal(err)
	}
	for !done {
		if !sim.Step() {
			t.Fatal("stalled")
		}
	}
	if a.Obs() != nil {
		t.Fatal("recorder attached without a registry")
	}
}
