package core

import "errors"

// Typed errors for the recoverable failure paths. True layout invariants
// still panic; anything a drive failure can cause at runtime surfaces as a
// Failed result carrying one of these (wrapped with context), so callers
// can distinguish data loss from caller bugs with errors.Is.
var (
	// ErrDriveIndex reports a drive index outside [0, Disks()).
	ErrDriveIndex = errors.New("core: drive index out of range")
	// ErrDataLost reports that every copy of the requested data is on a
	// failed drive or was lost before a rebuild could reconstruct it.
	ErrDataLost = errors.New("core: data unreachable, all copies failed or lost")
	// ErrNoFreshReplica reports a read that found every surviving replica
	// stale — reachable only through a staleness-tracking bug, surfaced as
	// a failed read rather than a panic so a long simulation degrades
	// instead of dying.
	ErrNoFreshReplica = errors.New("core: no fresh replica available")
	// ErrOverload reports a request rejected at Submit by admission
	// control: every drive that could serve some piece already holds
	// Options.MaxQueueDepth foreground requests.
	ErrOverload = errors.New("core: array overloaded, request shed")
	// ErrDeadlineExceeded reports a read piece that waited out
	// Options.ReadDeadline in a drive queue without being dispatched and
	// was shed instead.
	ErrDeadlineExceeded = errors.New("core: read deadline exceeded in queue")
	// ErrCorruptData reports a verified read that found every reachable
	// replica known-corrupt: detection worked, but no clean copy remains to
	// fail over to (repair, if possible, has been queued).
	ErrCorruptData = errors.New("core: all replicas corrupt")
	// ErrCrashed reports a request caught by a whole-array power failure:
	// queued and in-flight work is abandoned, and submissions while the
	// array is down are rejected. The request may or may not have reached
	// the media; crash recovery resolves what actually survived.
	ErrCrashed = errors.New("core: array crashed, request lost")
)
