package core

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/calib"
	"repro/internal/des"
	"repro/internal/disk"
	"repro/internal/layout"
	"repro/internal/obs"
	"repro/internal/sched"
)

// classOf maps a request to its observability class.
func classOf(req *sched.Request) obs.Class {
	switch {
	case req.Priority:
		return obs.Priority
	case req.Background:
		return obs.Background
	case req.Hedged:
		return obs.Hedge
	default:
		return obs.Foreground
	}
}

// opOf maps a request to its observability op.
func opOf(req *sched.Request) obs.Op {
	if req.Write {
		return obs.OpWrite
	}
	return obs.OpRead
}

// reqTag is the array-layer bookkeeping riding on each sched.Request. Hot
// paths set kind plus the context fields below and dispatch through
// Array.tagDone/failTag; cold paths keep the zero kind (tagClosure) with
// per-request closures.
type reqTag struct {
	// kind selects the completion/failure continuation (see pool.go).
	kind  tagKind
	group *dupGroup
	// onDone runs when the dispatched request fully completes (all extents
	// transferred). chosenReplica is the replica the scheduler picked.
	// Only consulted under tagClosure.
	onDone func(last bus.Completion, chosenReplica int)
	// onFail runs when a drive failure leaves the request with no copy to
	// read or write; nil means the failure is silently absorbed (delayed
	// propagation copies). Only consulted under tagClosure.
	onFail func()
	// ref marks head-tracking reference reads.
	ref bool
	// hc, when non-nil, is the hedge controller of this foreground read:
	// dispatching the request arms the hedge timer.
	hc *hedgeCtl
	// hedgeOf marks this request as the hedge duplicate of a controller
	// (so dispatching it closes the cancellation window).
	hedgeOf *hedgeCtl
	// offQueue records that the request has left its drive queue (by
	// dispatch or drive failure), so an expired ReadDeadline is a no-op.
	offQueue bool

	// pr points back to the pooled request this tag is embedded in; nil for
	// heap-allocated (cold path) requests, which are never recycled.
	pr *pooledReq
	// gen counts the pooled request's lives. A deadline event captures the
	// generation it was armed against and becomes a no-op once the request
	// is recycled.
	gen uint64
	// Context for the kind-dispatched continuations.
	ur  *userRequest
	p   *layout.Piece
	d   *drive
	rep int
	fg  *fgWrite
	dc  *delayedCopy
}

// dupGroup links duplicate copies of one read enqueued on several mirror
// disks (Section 3.3): as soon as one copy is scheduled, the rest are
// removed from their queues.
type dupGroup struct {
	claimed bool
	members []dupMember
}

type dupMember struct {
	d   *drive
	req *sched.Request
}

// enqueue inserts a request into a drive's foreground queue and tries to
// start the drive.
func (a *Array) enqueue(d *drive, req *sched.Request) {
	d.queue = append(d.queue, req)
	a.kick(d)
}

// removeFromQueue deletes a request from a drive's queue (it is an
// invariant violation if absent).
func removeFromQueue(d *drive, req *sched.Request) {
	for i, r := range d.queue {
		if r == req {
			d.queue = append(d.queue[:i], d.queue[i+1:]...)
			return
		}
	}
	panic("core: request missing from drive queue")
}

// kick starts work on a drive if it is idle: first overdue head-tracking
// reads, then the foreground queue under the configured policy, then
// delayed write propagation (which runs only when the foreground queue is
// empty, per Section 3.4).
func (a *Array) kick(d *drive) {
	if a.deferKicks {
		// SubmitBatch in progress: record the drive once and kick it at the
		// flush, after the whole batch has been routed into the queues.
		if !d.kickPending {
			d.kickPending = true
			a.pendingKicks = append(a.pendingKicks, d)
		}
		return
	}
	if a.crashed || d.failed || d.bus.Free() == 0 {
		return
	}
	now := a.sim.Now()
	if d.trk != nil && !d.refInFlight && d.trk.Due(now) {
		a.enqueueRef(d)
	}
	// Fill every free tag slot (one, without TCQ).
	dispatched := false
	for d.bus.Free() > 0 {
		choice, ok := d.sched.Pick(now, d.bus.ArmState(), d.queue, d.est)
		if !ok {
			break
		}
		d.lastActive = now
		a.dispatch(d, choice)
		dispatched = true
	}
	if dispatched || len(d.delayed) == 0 {
		return
	}
	if !d.bus.Idle() {
		return // tags still working; background waits for full idleness
	}
	// Background propagation waits out a short idle window so it does not
	// start a multi-millisecond write in front of the next request of an
	// in-progress burst.
	if wait := d.lastActive + a.opts.IdleDelay - now; wait > 0 {
		at := now + wait
		if d.recheckAt < at {
			d.recheckAt = at
			a.sim.At(at, d.kickFn)
		}
		return
	}
	// While foreground queues are saturated elsewhere in the array,
	// background propagation steps aside (admission control's other half:
	// shed new load, and keep what remains off the background's plate). A
	// recheck timer guarantees the delayed work still drains once the
	// overload clears even if no completion kicks this drive again.
	if a.overloaded() {
		at := now + throttleRecheck
		if d.recheckAt < at {
			d.recheckAt = at
			a.sim.At(at, d.kickFn)
		}
		return
	}
	a.dispatchDelayed(d)
}

// enqueueRef queues a priority read of the reference sector for the head
// tracker. Priority requests are picked ahead of the scan by every policy,
// so tracking cannot starve under load.
func (a *Array) enqueueRef(d *drive) {
	d.refInFlight = true
	a.RefReads++
	cmd := d.trk.RefCommand()
	p, err := d.dsk.Geom.LBAToPhys(cmd.LBA)
	if err != nil {
		panic(fmt.Sprintf("core: reference sector unmappable: %v", err))
	}
	req := &sched.Request{
		ID:       a.nextID(),
		Arrive:   a.sim.Now(),
		Priority: true,
		Replicas: []sched.Replica{{Extents: []disk.Extent{{Start: p, Count: cmd.Count}}}},
		Tag: &reqTag{
			ref: true,
			onDone: func(last bus.Completion, _ int) {
				d.trk.Observe(last)
				d.refInFlight = false
			},
			// A faulted reference read is simply dropped — the tracker
			// retries at the next due time — but the in-flight latch must
			// clear or head tracking stops forever.
			onFail: func() { d.refInFlight = false },
		},
	}
	d.queue = append(d.queue, req)
}

// dispatch removes the chosen request from the queue, claims its duplicate
// group, and runs its extents on the drive.
func (a *Array) dispatch(d *drive, choice sched.Choice) {
	req := d.queue[choice.Index]
	removeFromQueue(d, req)
	tag := req.Tag.(*reqTag)
	tag.offQueue = true
	if g := tag.group; g != nil {
		if g.claimed {
			panic("core: dispatching an already-claimed duplicate")
		}
		g.claimed = true
		for _, m := range g.members {
			if m.req != req {
				removeFromQueue(m.d, m.req)
				// The cancelled loser can never be referenced again (the
				// deadline event checks g.claimed before touching members).
				if mt := m.req.Tag.(*reqTag); mt.pr != nil {
					a.putReq(mt.pr)
				}
			}
		}
		g.members = nil
	}
	if hc := tag.hedgeOf; hc != nil {
		hc.hedgeReq = nil // on the wire now; past cancellation
	}
	if hc := tag.hc; hc != nil {
		a.armHedge(hc, d)
	}
	a.Dispatches++
	r := a.startRun(d, req, req.Replicas[choice.Replica].Extents)
	r.kind = runDispatch
	r.choice = choice
	r.start = a.sim.Now()
	a.submitExtent(r)
}

// submitExtent issues the run's current extent on the bus. A faulted
// command is retried once in-drive (the SCSI-driver policy: one immediate
// reissue before escalating); a second fault on the same extent abandons
// the run with clean=false and the tag's failure path takes over. Timing of
// a faulted run must not feed calibration, breakdown, or histogram
// accounting.
func (a *Array) submitExtent(r *extentRun) {
	e := r.extents[r.idx]
	lba, err := r.d.dsk.Geom.PhysToLBA(e.Start)
	if err != nil {
		panic(fmt.Sprintf("core: layout produced unmappable extent %v: %v", e.Start, err))
	}
	r.d.bus.SubmitHandled(bus.Command{Op: r.op, LBA: lba, Count: e.Count}, r, 0)
}

// stepRun advances an extent run on each bus completion: retry the extent,
// move to the next one, or finish the run.
func (a *Array) stepRun(r *extentRun, comp bus.Completion) {
	d := r.d
	if comp.SlowBy > 0 {
		a.noteSlow(d, comp)
	}
	if comp.Latent || comp.Corrupt || comp.Torn {
		a.noteCorruption(d, comp)
		r.latent = r.latent || comp.Latent
		r.corrupt = r.corrupt || comp.Corrupt
		r.torn = r.torn || comp.Torn
	}
	if !comp.OK() {
		a.noteFault(d, comp.Fault)
		if !r.retried && !d.failed {
			a.faults.Retries++
			r.retries++
			if d.rec != nil {
				d.rec.Retry()
			}
			r.retried = true
			a.submitExtent(r)
			return
		}
		a.finishRun(r, comp, false)
		return
	}
	if r.idx+1 < len(r.extents) {
		r.idx++
		r.retried = false
		a.submitExtent(r)
		return
	}
	comp.Latent, comp.Corrupt, comp.Torn = r.latent, r.corrupt, r.torn
	a.finishRun(r, comp, true)
}

// finishRun retires an extent run and executes its continuation — the
// bodies of the old dispatch/dispatchDelayed completion closures. The run
// is released before the continuation so a synchronous resubmission
// (closed-loop workloads complete and reissue in the same event) reuses it
// immediately.
func (a *Array) finishRun(r *extentRun, last bus.Completion, clean bool) {
	kind, d, req, retries := r.kind, r.d, r.req, r.retries
	choice, start, c, pr := r.choice, r.start, r.dc, r.pr
	extents := r.extents
	a.putRun(r)
	switch kind {
	case runDispatch:
		tag := req.Tag.(*reqTag)
		d.lastActive = a.sim.Now()
		if !clean {
			// The in-drive retry also faulted (or the drive fail-stopped):
			// give up on this dispatch and reroute through the failure path
			// — for reads and first-copy writes that resubmits against the
			// surviving mirrors.
			a.faults.Failovers++
			if d.rec != nil {
				d.rec.FaultedRun(obs.Dispatch{
					Req: req.ID, Class: classOf(req), Op: opOf(req),
					Arrive: req.Arrive, Start: start, Retries: retries,
					Failover: true, Rebuild: req.Background,
				}, last.Fault, last.Observed)
			}
			reused := a.failTag(tag)
			a.kick(d)
			if !reused && tag.pr != nil {
				a.putReq(tag.pr)
			}
			return
		}
		if d.rec != nil {
			d.rec.Done(obs.Dispatch{
				Req: req.ID, Class: classOf(req), Op: opOf(req),
				Arrive: req.Arrive, Start: start, Retries: retries,
				Rebuild: req.Background,
			}, last.Timing, last.Observed)
		}
		a.account(d, req, choice, extents, start, last)
		if !req.Priority && !req.Background {
			if a.opts.Health.Enabled {
				a.observeHealth(d, last.Observed-start)
			}
			if a.opts.Hedge && a.opts.HedgeAfter == 0 && !req.Write && !req.Hedged {
				a.hedgeLat.observe(last.Observed - start)
			}
		}
		if !req.Priority && !req.Background && !req.Hedged {
			b := &a.breakdown
			b.N++
			b.Queue += start - req.Arrive
			b.Seek += last.Timing.Seek
			b.Rotate += last.Timing.Rotate
			b.Transfer += last.Timing.Transfer
			b.Overhead += (last.Observed - start) - last.Timing.Total()
		}
		a.tagDone(tag, last, choice.Replica)
		a.kick(d)
		if tag.pr != nil {
			a.putReq(tag.pr)
		}
	case runDelayed:
		if d.rec != nil {
			// Propagation bypasses the foreground queue, so its queue delay
			// is definitionally zero (Arrive == Start at dispatch).
			rec := obs.Dispatch{
				Req: req.ID, Class: obs.Delayed, Op: obs.OpWrite,
				Arrive: start, Start: start, Retries: retries, Rebuild: c.rebuild,
			}
			if clean {
				d.rec.Done(rec, last.Timing, last.Observed)
			} else {
				d.rec.FaultedRun(rec, last.Fault, last.Observed)
			}
		}
		switch {
		case clean:
			a.finishCopy(d, c, true, last)
			a.putCopy(c)
		case d.failed:
			// The copy dies with the drive; resolve its table entry.
			a.finishCopy(d, c, false, last)
			a.putCopy(c)
		default:
			// Double fault with the drive alive: the copy must still land.
			// Put it back at the front and let the next idle window retry.
			d.delayed = append([]*delayedCopy{c}, d.delayed...)
		}
		a.kick(d)
		if pr != nil {
			a.putReq(pr)
		}
	}
}

// account feeds prediction accuracy and the slack feedback loop (prototype
// mode), and optionally the opportunistic phase update.
func (a *Array) account(d *drive, req *sched.Request, choice sched.Choice, extents []disk.Extent, start des.Time, last bus.Completion) {
	if d.trk == nil {
		return
	}
	if len(extents) == 1 && !req.Priority && !req.Background && a.opts.TCQDepth == 0 {
		// (Under TCQ the measured time includes the drive's internal
		// queueing, which the host prediction cannot see; accuracy
		// accounting only makes sense for host-scheduled commands.)
		measured := last.Observed - start
		rec := calib.PredictionRecord{Predicted: choice.Predicted, Measured: measured}
		d.acc.Add(rec)
		miss := rec.IsRotationMiss(d.est.RotationPeriod())
		if miss {
			a.RotationMisses++
		}
		d.slack.Record(miss)
	}
	if a.opts.OpportunisticTracking && !req.Priority {
		e := extents[len(extents)-1]
		endSector := e.Start
		endSector.Sector += e.Count - 1
		spt := d.dsk.Geom.SPTOf(endSector.Cyl)
		if endSector.Sector < spt { // stay on the same track for the angle
			d.trk.OpportunisticObserve(last, endSector)
		}
	}
}

// readCand is one mirror drive able to serve a read piece. tainted means
// the drive's copy of the chunk has stale or known-corrupt replicas (the
// request will carry an AllowedReplicas mask).
type readCand struct {
	d       *drive
	tainted bool
}

// submitRead routes one read piece: to an idle mirror disk directly, or
// duplicated into every candidate's queue (the paper's mirror heuristic).
func (a *Array) submitRead(ur *userRequest, p *layout.Piece) {
	var candArr [maxPoolReplicas]readCand
	cands := candArr[:0]
	anyUnreachable := false
	anyCorrupt := false
	for _, id := range p.Mirrors {
		d := a.drives[id]
		if d.failed || d.unreadable(p.Chunk) {
			// Gone outright, or a rebuilding spare that has not
			// reconstructed this chunk yet.
			anyUnreachable = true
			continue
		}
		if a.anyKnownBad(d, p.Chunk) {
			anyCorrupt = true
		}
		tainted := a.chunkTainted(d, p.Chunk)
		if tainted && !a.anyUsable(d, p.Chunk) {
			continue // every replica here is stale or known-corrupt
		}
		cands = append(cands, readCand{d, tainted})
	}
	if len(cands) == 0 {
		// Degraded-mode reads fail here with ErrDataLost: every copy is on
		// a failed drive or was lost before rebuild reached it. When a
		// verify check condemned the last reachable copy the failure is
		// ErrCorruptData instead (detection worked; nothing clean remains).
		// The all-drives-alive case should be unreachable (the most recent
		// first-written copy is fresh by construction) but surfaces as a
		// failed read with ErrNoFreshReplica rather than killing a long
		// simulation — a staleness-tracking bug degrades, it does not
		// panic.
		switch {
		case anyUnreachable:
			ur.pieceFailed(fmt.Errorf("%w: chunk %d", ErrDataLost, p.Chunk))
		case anyCorrupt:
			ur.pieceFailed(fmt.Errorf("%w: chunk %d", ErrCorruptData, p.Chunk))
		default:
			ur.pieceFailed(fmt.Errorf("%w: chunk %d", ErrNoFreshReplica, p.Chunk))
		}
		return
	}
	// One hedge controller per routed piece: the dispatch of whichever copy
	// wins the queue race arms the hedge timer (see hedge.go). A failover
	// resubmission builds a fresh controller.
	var hc *hedgeCtl
	if a.opts.Hedge {
		hc = &hedgeCtl{a: a, ur: ur, p: p}
	}
	// Idle-disk fast path: send to the idle head closest to a copy,
	// preferring healthy drives over Suspect ones.
	var bestIdle *readCand
	var bestT des.Time
	bestRank := 0
	for i := range cands {
		c := &cands[i]
		if c.d.bus.Busy() || len(c.d.queue) > 0 {
			continue
		}
		rank := 0
		if a.suspectDrive(c.d) {
			rank = 1
		}
		t := a.bestAccess(c.d, p, c.tainted)
		if bestIdle == nil || rank < bestRank || (rank == bestRank && t < bestT) {
			bestIdle, bestRank, bestT = c, rank, t
		}
	}
	if bestIdle != nil {
		req := a.mkReadReq(ur, p, *bestIdle, nil, hc)
		a.enqueue(bestIdle.d, req)
		if a.opts.ReadDeadline > 0 {
			a.armDeadline(ur, p, nil, bestIdle.d, req)
		}
		return
	}
	if len(cands) == 1 {
		req := a.mkReadReq(ur, p, cands[0], nil, hc)
		a.enqueue(cands[0].d, req)
		if a.opts.ReadDeadline > 0 {
			a.armDeadline(ur, p, nil, cands[0].d, req)
		}
		return
	}
	if a.opts.DisableDupRequests {
		// Ablation: statically pick the mirror whose head currently looks
		// nearest (healthy drives first), without the cancel-on-claim
		// machinery.
		best := 0
		bestRank := 0
		if a.suspectDrive(cands[0].d) {
			bestRank = 1
		}
		bestT := a.bestAccess(cands[0].d, p, cands[0].tainted)
		for i := 1; i < len(cands); i++ {
			rank := 0
			if a.suspectDrive(cands[i].d) {
				rank = 1
			}
			t := a.bestAccess(cands[i].d, p, cands[i].tainted)
			if rank < bestRank || (rank == bestRank && t < bestT) {
				best, bestRank, bestT = i, rank, t
			}
		}
		req := a.mkReadReq(ur, p, cands[best], nil, hc)
		a.enqueue(cands[best].d, req)
		if a.opts.ReadDeadline > 0 {
			a.armDeadline(ur, p, nil, cands[best].d, req)
		}
		return
	}
	g := &dupGroup{}
	for _, c := range cands {
		req := a.mkReadReq(ur, p, c, g, hc)
		g.members = append(g.members, dupMember{c.d, req})
	}
	for _, m := range g.members {
		m.d.queue = append(m.d.queue, m.req)
	}
	if a.opts.ReadDeadline > 0 {
		a.armDeadline(ur, p, g, nil, nil)
	}
	for _, m := range g.members {
		if g.claimed {
			break
		}
		a.kick(m.d)
	}
}

// mkReadReq builds one pooled read copy for a candidate drive. Completion
// and failure route through tagRead in pool.go — the same continuations the
// old per-request closures carried.
func (a *Array) mkReadReq(ur *userRequest, p *layout.Piece, c readCand, g *dupGroup, hc *hedgeCtl) *sched.Request {
	pr := a.getReq()
	req := &pr.req
	req.ID = a.nextID()
	req.Arrive = a.sim.Now()
	req.Replicas = fillReplicas(pr, p)
	if c.tainted {
		req.AllowedReplicas = a.readMaskInto(c.d, p.Chunk, pr.mask[:0])
	}
	// A copy queued on a Suspect drive is handicapped so a healthy
	// mirror's scan claims the shared duplicate first (see health.go).
	if a.suspectDrive(c.d) {
		req.Penalty = SuspectPenalty
	}
	t := &pr.tag
	t.kind = tagRead
	t.group = g
	t.hc = hc
	t.d = c.d
	t.ur = ur
	t.p = p
	return req
}

// bestAccess estimates the cheapest usable replica access for a piece on a
// drive (tainted consults the per-replica usability that readMask would
// materialize).
func (a *Array) bestAccess(d *drive, p *layout.Piece, tainted bool) des.Time {
	best := des.Time(0)
	first := true
	for j, rep := range p.Replicas {
		if tainted && !a.replicaUsable(d, p.Chunk, j) {
			continue
		}
		e := rep[0]
		t := d.est.Access(d.bus.ArmState(), disk.Request{Start: e.Start, Count: e.Count}, a.sim.Now())
		if first || t < best {
			best, first = t, false
		}
	}
	return best
}

// replicasOf converts a layout piece to scheduler replicas.
func replicasOf(p *layout.Piece) []sched.Replica {
	out := make([]sched.Replica, len(p.Replicas))
	for j, exts := range p.Replicas {
		out[j] = sched.Replica{Extents: exts}
	}
	return out
}

func anyTrue(mask []bool) bool {
	for _, b := range mask {
		if b {
			return true
		}
	}
	return false
}
