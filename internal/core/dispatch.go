package core

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/calib"
	"repro/internal/des"
	"repro/internal/disk"
	"repro/internal/layout"
	"repro/internal/obs"
	"repro/internal/sched"
)

// classOf maps a request to its observability class.
func classOf(req *sched.Request) obs.Class {
	switch {
	case req.Priority:
		return obs.Priority
	case req.Background:
		return obs.Background
	case req.Hedged:
		return obs.Hedge
	default:
		return obs.Foreground
	}
}

// opOf maps a request to its observability op.
func opOf(req *sched.Request) obs.Op {
	if req.Write {
		return obs.OpWrite
	}
	return obs.OpRead
}

// reqTag is the array-layer bookkeeping riding on each sched.Request.
type reqTag struct {
	group *dupGroup
	// onDone runs when the dispatched request fully completes (all extents
	// transferred). chosenReplica is the replica the scheduler picked.
	onDone func(last bus.Completion, chosenReplica int)
	// onFail runs when a drive failure leaves the request with no copy to
	// read or write; nil means the failure is silently absorbed (delayed
	// propagation copies).
	onFail func()
	// ref marks head-tracking reference reads.
	ref bool
	// hc, when non-nil, is the hedge controller of this foreground read:
	// dispatching the request arms the hedge timer.
	hc *hedgeCtl
	// hedgeOf marks this request as the hedge duplicate of a controller
	// (so dispatching it closes the cancellation window).
	hedgeOf *hedgeCtl
	// offQueue records that the request has left its drive queue (by
	// dispatch or drive failure), so an expired ReadDeadline is a no-op.
	offQueue bool
}

// fail invokes the failure path.
func (t *reqTag) fail() {
	if t.onFail != nil {
		t.onFail()
	}
}

// dupGroup links duplicate copies of one read enqueued on several mirror
// disks (Section 3.3): as soon as one copy is scheduled, the rest are
// removed from their queues.
type dupGroup struct {
	claimed bool
	members []dupMember
}

type dupMember struct {
	d   *drive
	req *sched.Request
}

// enqueue inserts a request into a drive's foreground queue and tries to
// start the drive.
func (a *Array) enqueue(d *drive, req *sched.Request) {
	d.queue = append(d.queue, req)
	a.kick(d)
}

// removeFromQueue deletes a request from a drive's queue (it is an
// invariant violation if absent).
func removeFromQueue(d *drive, req *sched.Request) {
	for i, r := range d.queue {
		if r == req {
			d.queue = append(d.queue[:i], d.queue[i+1:]...)
			return
		}
	}
	panic("core: request missing from drive queue")
}

// kick starts work on a drive if it is idle: first overdue head-tracking
// reads, then the foreground queue under the configured policy, then
// delayed write propagation (which runs only when the foreground queue is
// empty, per Section 3.4).
func (a *Array) kick(d *drive) {
	if d.failed || d.bus.Free() == 0 {
		return
	}
	now := a.sim.Now()
	if d.trk != nil && !d.refInFlight && d.trk.Due(now) {
		a.enqueueRef(d)
	}
	// Fill every free tag slot (one, without TCQ).
	dispatched := false
	for d.bus.Free() > 0 {
		choice, ok := d.sched.Pick(now, d.bus.ArmState(), d.queue, d.est)
		if !ok {
			break
		}
		d.lastActive = now
		a.dispatch(d, choice)
		dispatched = true
	}
	if dispatched || len(d.delayed) == 0 {
		return
	}
	if !d.bus.Idle() {
		return // tags still working; background waits for full idleness
	}
	// Background propagation waits out a short idle window so it does not
	// start a multi-millisecond write in front of the next request of an
	// in-progress burst.
	if wait := d.lastActive + a.opts.IdleDelay - now; wait > 0 {
		at := now + wait
		if d.recheckAt < at {
			d.recheckAt = at
			a.sim.At(at, func() { a.kick(d) })
		}
		return
	}
	// While foreground queues are saturated elsewhere in the array,
	// background propagation steps aside (admission control's other half:
	// shed new load, and keep what remains off the background's plate). A
	// recheck timer guarantees the delayed work still drains once the
	// overload clears even if no completion kicks this drive again.
	if a.overloaded() {
		at := now + throttleRecheck
		if d.recheckAt < at {
			d.recheckAt = at
			a.sim.At(at, func() { a.kick(d) })
		}
		return
	}
	a.dispatchDelayed(d)
}

// enqueueRef queues a priority read of the reference sector for the head
// tracker. Priority requests are picked ahead of the scan by every policy,
// so tracking cannot starve under load.
func (a *Array) enqueueRef(d *drive) {
	d.refInFlight = true
	a.RefReads++
	cmd := d.trk.RefCommand()
	p, err := d.dsk.Geom.LBAToPhys(cmd.LBA)
	if err != nil {
		panic(fmt.Sprintf("core: reference sector unmappable: %v", err))
	}
	req := &sched.Request{
		ID:       a.nextID(),
		Arrive:   a.sim.Now(),
		Priority: true,
		Replicas: []sched.Replica{{Extents: []disk.Extent{{Start: p, Count: cmd.Count}}}},
		Tag: &reqTag{
			ref: true,
			onDone: func(last bus.Completion, _ int) {
				d.trk.Observe(last)
				d.refInFlight = false
			},
			// A faulted reference read is simply dropped — the tracker
			// retries at the next due time — but the in-flight latch must
			// clear or head tracking stops forever.
			onFail: func() { d.refInFlight = false },
		},
	}
	d.queue = append(d.queue, req)
}

// dispatch removes the chosen request from the queue, claims its duplicate
// group, and runs its extents on the drive.
func (a *Array) dispatch(d *drive, choice sched.Choice) {
	req := d.queue[choice.Index]
	removeFromQueue(d, req)
	tag := req.Tag.(*reqTag)
	tag.offQueue = true
	if g := tag.group; g != nil {
		if g.claimed {
			panic("core: dispatching an already-claimed duplicate")
		}
		g.claimed = true
		for _, m := range g.members {
			if m.req != req {
				removeFromQueue(m.d, m.req)
			}
		}
	}
	if hc := tag.hedgeOf; hc != nil {
		hc.hedgeReq = nil // on the wire now; past cancellation
	}
	if hc := tag.hc; hc != nil {
		a.armHedge(hc, d)
	}
	a.Dispatches++
	extents := req.Replicas[choice.Replica].Extents
	start := a.sim.Now()
	a.runExtents(d, req, extents, func(last bus.Completion, clean bool, retries int) {
		d.lastActive = a.sim.Now()
		if !clean {
			// The in-drive retry also faulted (or the drive fail-stopped):
			// give up on this dispatch and reroute through the failure path
			// — for reads and first-copy writes that resubmits against the
			// surviving mirrors.
			a.faults.Failovers++
			if d.rec != nil {
				d.rec.FaultedRun(obs.Dispatch{
					Req: req.ID, Class: classOf(req), Op: opOf(req),
					Arrive: req.Arrive, Start: start, Retries: retries,
					Failover: true, Rebuild: req.Background,
				}, last.Fault, last.Observed)
			}
			tag.fail()
			a.kick(d)
			return
		}
		if d.rec != nil {
			d.rec.Done(obs.Dispatch{
				Req: req.ID, Class: classOf(req), Op: opOf(req),
				Arrive: req.Arrive, Start: start, Retries: retries,
				Rebuild: req.Background,
			}, last.Timing, last.Observed)
		}
		a.account(d, req, choice, extents, start, last)
		if !req.Priority && !req.Background {
			if a.opts.Health.Enabled {
				a.observeHealth(d, last.Observed-start)
			}
			if a.opts.Hedge && a.opts.HedgeAfter == 0 && !req.Write && !req.Hedged {
				a.hedgeLat.observe(last.Observed - start)
			}
		}
		if !req.Priority && !req.Background && !req.Hedged {
			b := &a.breakdown
			b.N++
			b.Queue += start - req.Arrive
			b.Seek += last.Timing.Seek
			b.Rotate += last.Timing.Rotate
			b.Transfer += last.Timing.Transfer
			b.Overhead += (last.Observed - start) - last.Timing.Total()
		}
		tag.onDone(last, choice.Replica)
		a.kick(d)
	})
}

// runExtents submits a replica's extents back-to-back and calls done with
// the final completion, whether the run stayed clean, and how many
// in-drive retries it needed. A faulted command is retried once in-drive
// (the SCSI-driver policy: one immediate reissue before escalating); a
// second fault on the same extent abandons the run with clean=false and
// the caller's failure path takes over. Timing of a faulted run must not
// feed calibration, breakdown, or histogram accounting.
func (a *Array) runExtents(d *drive, req *sched.Request, extents []disk.Extent, done func(last bus.Completion, clean bool, retries int)) {
	op := bus.OpRead
	if req.Write {
		op = bus.OpWrite
	}
	retries := 0
	// Corruption flags accumulate across the run's extents so the final
	// completion handed to done carries every silent draw, not just the
	// last extent's.
	var latent, corrupt, torn bool
	var run func(i int, retried bool)
	run = func(i int, retried bool) {
		e := extents[i]
		lba, err := d.dsk.Geom.PhysToLBA(e.Start)
		if err != nil {
			panic(fmt.Sprintf("core: layout produced unmappable extent %v: %v", e.Start, err))
		}
		d.bus.Submit(bus.Command{Op: op, LBA: lba, Count: e.Count}, func(comp bus.Completion) {
			if comp.SlowBy > 0 {
				a.noteSlow(d, comp)
			}
			if comp.Latent || comp.Corrupt || comp.Torn {
				a.noteCorruption(d, comp)
				latent = latent || comp.Latent
				corrupt = corrupt || comp.Corrupt
				torn = torn || comp.Torn
			}
			if !comp.OK() {
				a.noteFault(d, comp.Fault)
				if !retried && !d.failed {
					a.faults.Retries++
					retries++
					if d.rec != nil {
						d.rec.Retry()
					}
					run(i, true)
					return
				}
				done(comp, false, retries)
				return
			}
			if i+1 < len(extents) {
				run(i+1, false)
				return
			}
			comp.Latent, comp.Corrupt, comp.Torn = latent, corrupt, torn
			done(comp, true, retries)
		})
	}
	run(0, false)
}

// account feeds prediction accuracy and the slack feedback loop (prototype
// mode), and optionally the opportunistic phase update.
func (a *Array) account(d *drive, req *sched.Request, choice sched.Choice, extents []disk.Extent, start des.Time, last bus.Completion) {
	if d.trk == nil {
		return
	}
	if len(extents) == 1 && !req.Priority && !req.Background && a.opts.TCQDepth == 0 {
		// (Under TCQ the measured time includes the drive's internal
		// queueing, which the host prediction cannot see; accuracy
		// accounting only makes sense for host-scheduled commands.)
		measured := last.Observed - start
		rec := calib.PredictionRecord{Predicted: choice.Predicted, Measured: measured}
		d.acc.Add(rec)
		miss := rec.IsRotationMiss(d.est.RotationPeriod())
		if miss {
			a.RotationMisses++
		}
		d.slack.Record(miss)
	}
	if a.opts.OpportunisticTracking && !req.Priority {
		e := extents[len(extents)-1]
		endSector := e.Start
		endSector.Sector += e.Count - 1
		spt := d.dsk.Geom.SPTOf(endSector.Cyl)
		if endSector.Sector < spt { // stay on the same track for the angle
			d.trk.OpportunisticObserve(last, endSector)
		}
	}
}

// submitRead routes one read piece: to an idle mirror disk directly, or
// duplicated into every candidate's queue (the paper's mirror heuristic).
func (a *Array) submitRead(ur *userRequest, p *layout.Piece) {
	type cand struct {
		d    *drive
		mask []bool
	}
	var cands []cand
	anyUnreachable := false
	anyCorrupt := false
	for _, id := range p.Mirrors {
		d := a.drives[id]
		if d.failed || d.unreadable(p.Chunk) {
			// Gone outright, or a rebuilding spare that has not
			// reconstructed this chunk yet.
			anyUnreachable = true
			continue
		}
		if a.anyKnownBad(d, p.Chunk) {
			anyCorrupt = true
		}
		mask := a.readMask(d, p.Chunk)
		if mask != nil && !anyTrue(mask) {
			continue // every replica here is stale or known-corrupt
		}
		cands = append(cands, cand{d, mask})
	}
	if len(cands) == 0 {
		// Degraded-mode reads fail here with ErrDataLost: every copy is on
		// a failed drive or was lost before rebuild reached it. When a
		// verify check condemned the last reachable copy the failure is
		// ErrCorruptData instead (detection worked; nothing clean remains).
		// The all-drives-alive case should be unreachable (the most recent
		// first-written copy is fresh by construction) but surfaces as a
		// failed read with ErrNoFreshReplica rather than killing a long
		// simulation — a staleness-tracking bug degrades, it does not
		// panic.
		switch {
		case anyUnreachable:
			ur.pieceFailed(fmt.Errorf("%w: chunk %d", ErrDataLost, p.Chunk))
		case anyCorrupt:
			ur.pieceFailed(fmt.Errorf("%w: chunk %d", ErrCorruptData, p.Chunk))
		default:
			ur.pieceFailed(fmt.Errorf("%w: chunk %d", ErrNoFreshReplica, p.Chunk))
		}
		return
	}
	// One hedge controller per routed piece: the dispatch of whichever copy
	// wins the queue race arms the hedge timer (see hedge.go). A failover
	// resubmission builds a fresh controller.
	var hc *hedgeCtl
	if a.opts.Hedge {
		hc = &hedgeCtl{a: a, ur: ur, p: p}
	}
	mkReq := func(c cand, g *dupGroup) *sched.Request {
		req := &sched.Request{
			ID:              a.nextID(),
			Arrive:          a.sim.Now(),
			Replicas:        replicasOf(p),
			AllowedReplicas: c.mask,
		}
		// A copy queued on a Suspect drive is handicapped so a healthy
		// mirror's scan claims the shared duplicate first (see health.go).
		if a.suspectDrive(c.d) {
			req.Penalty = SuspectPenalty
		}
		req.Tag = &reqTag{
			group: g,
			hc:    hc,
			onDone: func(last bus.Completion, chosen int) {
				// Verify-on-read: consult the oracle where a real array
				// would check the extent checksums. A hit fails over to the
				// remaining clean replicas (queueing an in-place repair);
				// with verification off the corrupt read flows to the
				// caller and is only counted.
				bad := a.integrity && a.checkPieceRead(c.d, p, chosen, last)
				if bad && a.opts.VerifyReads {
					a.noteDetected(c.d, p, chosen)
					if hc != nil {
						hc.primaryFail()
						return
					}
					a.submitRead(ur, p)
					return
				}
				if hc != nil {
					hc.primaryDone(bad)
					return
				}
				if bad {
					a.noteSilent()
				}
				ur.pieceDone()
			},
			// A failure with no surviving duplicate retries against
			// the remaining mirrors (and fails there if none remain).
			onFail: func() {
				if hc != nil {
					hc.primaryFail()
					return
				}
				a.submitRead(ur, p)
			},
		}
		return req
	}
	// Idle-disk fast path: send to the idle head closest to a copy,
	// preferring healthy drives over Suspect ones.
	var bestIdle *cand
	var bestT des.Time
	bestRank := 0
	for i := range cands {
		c := &cands[i]
		if c.d.bus.Busy() || len(c.d.queue) > 0 {
			continue
		}
		rank := 0
		if a.suspectDrive(c.d) {
			rank = 1
		}
		t := a.bestAccess(c.d, p, c.mask)
		if bestIdle == nil || rank < bestRank || (rank == bestRank && t < bestT) {
			bestIdle, bestRank, bestT = c, rank, t
		}
	}
	if bestIdle != nil {
		req := mkReq(*bestIdle, nil)
		a.enqueue(bestIdle.d, req)
		if a.opts.ReadDeadline > 0 {
			a.armDeadline(ur, p, nil, bestIdle.d, req)
		}
		return
	}
	if len(cands) == 1 {
		req := mkReq(cands[0], nil)
		a.enqueue(cands[0].d, req)
		if a.opts.ReadDeadline > 0 {
			a.armDeadline(ur, p, nil, cands[0].d, req)
		}
		return
	}
	if a.opts.DisableDupRequests {
		// Ablation: statically pick the mirror whose head currently looks
		// nearest (healthy drives first), without the cancel-on-claim
		// machinery.
		best := 0
		bestRank := 0
		if a.suspectDrive(cands[0].d) {
			bestRank = 1
		}
		bestT := a.bestAccess(cands[0].d, p, cands[0].mask)
		for i := 1; i < len(cands); i++ {
			rank := 0
			if a.suspectDrive(cands[i].d) {
				rank = 1
			}
			t := a.bestAccess(cands[i].d, p, cands[i].mask)
			if rank < bestRank || (rank == bestRank && t < bestT) {
				best, bestRank, bestT = i, rank, t
			}
		}
		req := mkReq(cands[best], nil)
		a.enqueue(cands[best].d, req)
		if a.opts.ReadDeadline > 0 {
			a.armDeadline(ur, p, nil, cands[best].d, req)
		}
		return
	}
	g := &dupGroup{}
	for _, c := range cands {
		req := mkReq(c, g)
		g.members = append(g.members, dupMember{c.d, req})
	}
	for _, m := range g.members {
		m.d.queue = append(m.d.queue, m.req)
	}
	if a.opts.ReadDeadline > 0 {
		a.armDeadline(ur, p, g, nil, nil)
	}
	for _, m := range g.members {
		if g.claimed {
			break
		}
		a.kick(m.d)
	}
}

// bestAccess estimates the cheapest allowed replica access for a piece on
// a drive.
func (a *Array) bestAccess(d *drive, p *layout.Piece, mask []bool) des.Time {
	best := des.Time(0)
	first := true
	for j, rep := range p.Replicas {
		if mask != nil && !mask[j] {
			continue
		}
		e := rep[0]
		t := d.est.Access(d.bus.ArmState(), disk.Request{Start: e.Start, Count: e.Count}, a.sim.Now())
		if first || t < best {
			best, first = t, false
		}
	}
	return best
}

// replicasOf converts a layout piece to scheduler replicas.
func replicasOf(p *layout.Piece) []sched.Replica {
	out := make([]sched.Replica, len(p.Replicas))
	for j, exts := range p.Replicas {
		out[j] = sched.Replica{Extents: exts}
	}
	return out
}

func anyTrue(mask []bool) bool {
	for _, b := range mask {
		if b {
			return true
		}
	}
	return false
}
