package core

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/des"
	"repro/internal/disk"
	"repro/internal/layout"
)

// --- Bounds and typed-error satellites ---

func TestFailDriveBoundsChecked(t *testing.T) {
	_, a := newArray(t, layout.Mirror(2), "satf", nil)
	for _, i := range []int{-1, 2, 100} {
		if err := a.FailDrive(i); !errors.Is(err, ErrDriveIndex) {
			t.Errorf("FailDrive(%d) = %v, want ErrDriveIndex", i, err)
		}
		if a.Alive(i) {
			t.Errorf("Alive(%d) true for out-of-range index", i)
		}
	}
	if err := a.FailDrive(0); err != nil {
		t.Fatalf("FailDrive(0): %v", err)
	}
	if err := a.FailDrive(0); err != nil {
		t.Fatalf("second FailDrive(0): %v", err)
	}
}

func TestAllStaleReadFailsInsteadOfPanicking(t *testing.T) {
	// Manufacture the "staleness bug" state directly: every replica of a
	// chunk stale with all drives alive. The read must come back Failed
	// with ErrNoFreshReplica, not kill the process.
	_, a := newArray(t, layout.SRArray(1, 2), "rsatf", nil)
	d := a.drives[0]
	a.markStale(d, 0, 0)
	a.markStale(d, 0, 1)
	var res Result
	got := false
	if err := a.Submit(Read, 0, 8, false, func(r Result) { res, got = r, true }); err != nil {
		t.Fatal(err)
	}
	if !a.Drain(des.Hour) || !got {
		t.Fatal("read never completed")
	}
	if !res.Failed || !errors.Is(res.Err, ErrNoFreshReplica) {
		t.Fatalf("Failed=%v Err=%v, want ErrNoFreshReplica", res.Failed, res.Err)
	}
	if a.Faults().FailedReads != 1 {
		t.Fatalf("FailedReads = %d, want 1", a.Faults().FailedReads)
	}
}

func TestDegradedReadReportsDataLost(t *testing.T) {
	_, a := newArray(t, layout.Striping(2), "satf", nil)
	if err := a.FailDrive(0); err != nil {
		t.Fatal(err)
	}
	var res Result
	if err := a.Submit(Read, 0, 8, false, func(r Result) { res = r }); err != nil {
		t.Fatal(err)
	}
	if !a.Drain(des.Hour) {
		t.Fatal("drain failed")
	}
	if !res.Failed || !errors.Is(res.Err, ErrDataLost) {
		t.Fatalf("Failed=%v Err=%v, want ErrDataLost", res.Failed, res.Err)
	}
}

// --- Delayed-queue failure satellites ---

// writeAndCatchPropagation performs one delayed-mode write and returns the
// drive indexes holding the first copy (source) and a pending delayed copy
// (destination). Skips if propagation already drained.
func writeAndCatchPropagation(t *testing.T, sim *des.Sim, a *Array) (src, dst int) {
	t.Helper()
	wrote := false
	if err := a.Submit(Write, 4096, 8, false, func(Result) { wrote = true }); err != nil {
		t.Fatal(err)
	}
	for !wrote {
		sim.Step()
	}
	if a.NVRAMUsed() == 0 {
		t.Skip("propagation finished before the failure point")
	}
	src, dst = -1, -1
	for i := 0; i < a.Disks(); i++ {
		if a.DelayedLen(i) > 0 {
			dst = i
		} else {
			src = i
		}
	}
	if src < 0 || dst < 0 {
		t.Skip("no split between first copy and pending propagation")
	}
	return src, dst
}

// Failing the SOURCE drive (the one that took the first copy) while the
// propagation to the mirror is still queued: the pending copy must still
// land, after which the mirror is fresh and the data readable.
func TestFailSourceWithPropagationMidQueue(t *testing.T) {
	sim, a := newArray(t, layout.RAID10(2), "satf", nil)
	src, _ := writeAndCatchPropagation(t, sim, a)
	if err := a.FailDrive(src); err != nil {
		t.Fatal(err)
	}
	if !a.Drain(des.Hour) {
		t.Fatal("drain failed")
	}
	if a.NVRAMUsed() != 0 {
		t.Fatalf("NVRAM = %d after drain", a.NVRAMUsed())
	}
	var res Result
	got := false
	a.Submit(Read, 4096, 8, false, func(r Result) { res, got = r, true })
	if !a.Drain(des.Hour) || !got {
		t.Fatal("read never completed")
	}
	if res.Failed {
		t.Fatalf("read failed (%v) though the propagated copy landed", res.Err)
	}
}

// Failing the DESTINATION drive (holding the queued propagation) drops the
// copy, resolves its table entry, and leaves the source serving reads.
func TestFailDestinationWithPropagationMidQueue(t *testing.T) {
	sim, a := newArray(t, layout.RAID10(2), "satf", nil)
	_, dst := writeAndCatchPropagation(t, sim, a)
	if err := a.FailDrive(dst); err != nil {
		t.Fatal(err)
	}
	if !a.Drain(des.Hour) {
		t.Fatal("drain failed")
	}
	if a.NVRAMUsed() != 0 {
		t.Fatalf("NVRAM = %d after drain", a.NVRAMUsed())
	}
	var res Result
	got := false
	a.Submit(Read, 4096, 8, false, func(r Result) { res, got = r, true })
	if !a.Drain(des.Hour) || !got {
		t.Fatal("read never completed")
	}
	if res.Failed {
		t.Fatalf("read failed (%v) though the first copy survives", res.Err)
	}
}

// Double failure of an SR-Mirror pair: both mirrors of position 0 die.
// Chunks of that position are lost (ErrDataLost); the other position keeps
// serving.
func TestSRMirrorPairDoubleFailure(t *testing.T) {
	cfg := layout.Config{Ds: 1, Dr: 2, Dm: 2} // G=2: position 0 on drives 0 and 2
	_, a := newArray(t, cfg, "rsatf", nil)
	if err := a.FailDrive(0); err != nil {
		t.Fatal(err)
	}
	if err := a.FailDrive(2); err != nil {
		t.Fatal(err)
	}
	unit := int64(a.Layout().StripeUnit())
	type outcome struct {
		failed bool
		err    error
	}
	results := map[int64]outcome{}
	for chunk := int64(0); chunk < 8; chunk++ {
		chunk := chunk
		if err := a.Submit(Read, chunk*unit, 8, false, func(r Result) {
			results[chunk] = outcome{r.Failed, r.Err}
		}); err != nil {
			t.Fatal(err)
		}
	}
	if !a.Drain(des.Hour) {
		t.Fatal("drain failed")
	}
	for chunk, got := range results {
		lost := chunk%2 == 0
		if got.failed != lost {
			t.Errorf("chunk %d: failed=%v, want %v", chunk, got.failed, lost)
		}
		if lost && !errors.Is(got.err, ErrDataLost) {
			t.Errorf("chunk %d: err=%v, want ErrDataLost", chunk, got.err)
		}
	}
}

// --- Fault injection: retry and failover ---

func TestTransientFaultsRetryToCompletion(t *testing.T) {
	_, a := newArray(t, layout.Striping(1), "satf", func(o *Options) {
		o.Faults = disk.FaultModel{TransientRate: 0.3}
	})
	rng := rand.New(rand.NewSource(3))
	ok, failed := 0, 0
	for i := 0; i < 100; i++ {
		off := rng.Int63n(a.DataSectors() - 8)
		if err := a.Submit(Read, off, 8, false, func(r Result) {
			if r.Failed {
				failed++
			} else {
				ok++
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	if !a.Drain(des.Hour) {
		t.Fatal("drain failed")
	}
	if ok != 100 || failed != 0 {
		t.Fatalf("ok=%d failed=%d, want all 100 served through retries", ok, failed)
	}
	fc := a.Faults()
	if fc.Transients == 0 || fc.Retries == 0 {
		t.Fatalf("counters %+v: expected transients and retries at rate 0.3", fc)
	}
}

func TestTimeoutFaultsFailOverOnMirror(t *testing.T) {
	_, a := newArray(t, layout.Mirror(2), "satf", func(o *Options) {
		o.Faults = disk.FaultModel{TimeoutRate: 0.4, TimeoutDelay: 5 * des.Millisecond}
	})
	rng := rand.New(rand.NewSource(4))
	ok := 0
	for i := 0; i < 150; i++ {
		off := rng.Int63n(a.DataSectors() - 8)
		if err := a.Submit(Read, off, 8, false, func(r Result) {
			if !r.Failed {
				ok++
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	if !a.Drain(des.Hour) {
		t.Fatal("drain failed")
	}
	if ok != 150 {
		t.Fatalf("%d of 150 reads served", ok)
	}
	fc := a.Faults()
	if fc.Timeouts == 0 {
		t.Fatal("no timeouts observed at rate 0.4")
	}
	if fc.Failovers == 0 {
		t.Fatal("no failovers: double faults should have exhausted the in-drive retry")
	}
}

func TestFaultInjectionDeterministic(t *testing.T) {
	run := func() (des.Time, FaultCounters) {
		sim, a := newArray(t, layout.RAID10(4), "satf", func(o *Options) {
			o.Faults = disk.FaultModel{TransientRate: 0.1, TimeoutRate: 0.05}
		})
		mean := runRandomReads(t, sim, a, 120, 8, 9)
		return mean, a.Faults()
	}
	m1, f1 := run()
	m2, f2 := run()
	if m1 != m2 || f1 != f2 {
		t.Fatalf("identical seeds diverged: %v/%v %+v/%+v", m1, m2, f1, f2)
	}
}

func TestZeroFaultModelUnchangedFromSeedBehavior(t *testing.T) {
	// A zero fault model must not perturb the simulation: same mean as an
	// array built without the field ever set (they are the same code path,
	// but this pins the no-draw guarantee).
	run := func(withField bool) des.Time {
		sim, a := newArray(t, layout.SRArray(2, 2), "rsatf", func(o *Options) {
			if withField {
				o.Faults = disk.FaultModel{}
			}
		})
		return runRandomReads(t, sim, a, 60, 8, 11)
	}
	if a, b := run(false), run(true); a != b {
		t.Fatalf("zero fault model changed timing: %v vs %v", a, b)
	}
}

// --- Hot-spare rebuild ---

// The acceptance scenario: a seeded RAID-10 run with one spare fails a
// drive mid-stream. Every read completes (zero lost), the rebuild finishes
// during the drain, and the array is fully restored and healthy. The whole
// run is deterministic.
func TestSpareRebuildRestoresRedundancy(t *testing.T) {
	run := func() (des.Time, FaultCounters) {
		sim := des.New()
		a, err := New(sim, Options{
			Config:      layout.RAID10(4),
			Policy:      "satf",
			DataSectors: 1 << 15, // 16 MB -> 256 chunks, 128 on the failed slot
			Seed:        42,
			Spares:      1,
			RebuildMBps: 100,
		})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))
		var total des.Time
		served, lost := 0, 0
		doIO := func(i int) {
			off := rng.Int63n(a.DataSectors() - 8)
			op := Read
			if i%4 == 3 {
				op = Write
			}
			done := false
			if err := a.Submit(op, off, 8, false, func(r Result) {
				done = true
				if r.Failed {
					lost++
				} else {
					served++
					total += r.Latency()
				}
			}); err != nil {
				t.Fatal(err)
			}
			for !done {
				if !sim.Step() {
					t.Fatal("simulation stalled")
				}
			}
		}
		for i := 0; i < 50; i++ {
			doIO(i)
		}
		if err := a.FailDrive(0); err != nil {
			t.Fatal(err)
		}
		if a.Spares() != 0 {
			t.Fatal("spare not consumed")
		}
		if st := a.DriveState(0); st != DriveRebuilding {
			t.Fatalf("DriveState(0) = %v mid-rebuild", st)
		}
		for i := 50; i < 300; i++ {
			doIO(i)
		}
		if !a.Drain(des.Hour) {
			t.Fatal("drain (incl. rebuild) did not finish")
		}
		if lost != 0 {
			t.Fatalf("%d of %d I/Os lost with a spare configured", lost, lost+served)
		}
		if !a.Alive(0) {
			t.Fatal("slot 0 not alive after rebuild")
		}
		if st := a.DriveState(0); st != DriveHealthy {
			t.Fatalf("DriveState(0) = %v after rebuild", st)
		}
		if p := a.RebuildProgress(); p.Active {
			t.Fatalf("rebuild still active after drain: %+v", p)
		}
		fc := a.Faults()
		if fc.RebuildsStarted != 1 || fc.RebuildsDone != 1 || fc.LostChunks != 0 {
			t.Fatalf("rebuild counters %+v", fc)
		}
		// Redundancy truly restored: the other mirror can now die and every
		// chunk still reads.
		if err := a.FailDrive(2); err != nil {
			t.Fatal(err)
		}
		unit := int64(a.Layout().StripeUnit())
		failedReads := 0
		for chunk := int64(0); chunk < 16; chunk += 2 { // position 0 chunks
			if err := a.Submit(Read, chunk*unit, 8, false, func(r Result) {
				if r.Failed {
					failedReads++
				}
			}); err != nil {
				t.Fatal(err)
			}
		}
		if !a.Drain(des.Hour) {
			t.Fatal("post-rebuild drain failed")
		}
		if failedReads != 0 {
			t.Fatalf("%d reads failed from the rebuilt copy", failedReads)
		}
		return total, fc
	}
	t1, f1 := run()
	t2, f2 := run()
	if t1 != t2 || f1 != f2 {
		t.Fatalf("rebuild run not deterministic: %v/%v %+v/%+v", t1, t2, f1, f2)
	}
}

// Rebuild progress is observable and ETA shrinks as chunks land.
func TestRebuildProgressReporting(t *testing.T) {
	sim, a := newArray(t, layout.RAID10(4), "satf", func(o *Options) {
		o.DataSectors = 1 << 15
		o.Spares = 1
		o.RebuildMBps = 100
	})
	if err := a.FailDrive(1); err != nil {
		t.Fatal(err)
	}
	p0 := a.RebuildProgress()
	if !p0.Active || p0.Slot != 1 || p0.Total == 0 || p0.Done != 0 {
		t.Fatalf("initial progress %+v", p0)
	}
	eta0 := p0.ETA
	// Let part of the rebuild run.
	deadline := sim.Now() + 50*des.Millisecond
	for sim.Now() < deadline && sim.Step() {
	}
	p1 := a.RebuildProgress()
	if p1.Active && (p1.Done == 0 || p1.ETA >= eta0) {
		t.Fatalf("no progress after 50 ms: %+v (eta0 %v)", p1, eta0)
	}
	if !a.Drain(des.Hour) {
		t.Fatal("drain failed")
	}
	if a.RebuildProgress().Active || a.DriveState(1) != DriveHealthy {
		t.Fatal("rebuild did not complete")
	}
}

// Without a spare (or without mirror redundancy) no rebuild starts.
func TestNoRebuildWithoutSpareOrRedundancy(t *testing.T) {
	_, a := newArray(t, layout.RAID10(4), "satf", nil) // no spares
	a.FailDrive(0)
	if a.RebuildProgress().Active || a.Faults().RebuildsStarted != 0 {
		t.Fatal("rebuild started without a spare")
	}
	_, b := newArray(t, layout.SRArray(2, 2), "rsatf", func(o *Options) { o.Spares = 1 })
	b.FailDrive(0)
	if b.RebuildProgress().Active || b.Faults().RebuildsStarted != 0 {
		t.Fatal("rebuild started without mirror redundancy to copy from")
	}
	if b.Spares() != 1 {
		t.Fatal("spare consumed with nothing to rebuild")
	}
}

// The spare itself failing mid-rebuild cancels cleanly; a second spare
// picks the slot back up and finishes.
func TestSpareFailureMidRebuildFallsBackToSecondSpare(t *testing.T) {
	sim, a := newArray(t, layout.RAID10(4), "satf", func(o *Options) {
		o.DataSectors = 1 << 15
		o.Spares = 2
		o.RebuildMBps = 100
	})
	if err := a.FailDrive(0); err != nil {
		t.Fatal(err)
	}
	// Let the first rebuild get partway, then kill the spare in the slot.
	deadline := sim.Now() + 30*des.Millisecond
	for sim.Now() < deadline && sim.Step() {
	}
	if err := a.FailDrive(0); err != nil {
		t.Fatal(err)
	}
	if a.Spares() != 0 {
		t.Fatalf("Spares() = %d, want both consumed", a.Spares())
	}
	if !a.Drain(des.Hour) {
		t.Fatal("drain failed")
	}
	fc := a.Faults()
	if fc.RebuildsStarted != 2 || fc.RebuildsDone != 1 {
		t.Fatalf("rebuild counters %+v, want two starts and one completion", fc)
	}
	if a.DriveState(0) != DriveHealthy || fc.LostChunks != 0 {
		t.Fatalf("slot 0 state %v, lost %d", a.DriveState(0), fc.LostChunks)
	}
}

// Rebuild under foreground-write mode exercises the gate-flush path: the
// rebuild serializes against writes via the write gate even though
// foreground writes never hold it themselves.
func TestRebuildUnderForegroundWrites(t *testing.T) {
	sim, a := newArray(t, layout.RAID10(4), "satf", func(o *Options) {
		o.DataSectors = 1 << 15
		o.Spares = 1
		o.RebuildMBps = 100
		o.ForegroundWrites = true
	})
	if err := a.FailDrive(0); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	lost := 0
	for i := 0; i < 150; i++ {
		off := rng.Int63n(a.DataSectors() - 8)
		op := Read
		if i%2 == 0 {
			op = Write
		}
		done := false
		if err := a.Submit(op, off, 8, false, func(r Result) {
			done = true
			if r.Failed {
				lost++
			}
		}); err != nil {
			t.Fatal(err)
		}
		for !done {
			if !sim.Step() {
				t.Fatal("stalled")
			}
		}
	}
	if !a.Drain(des.Hour) {
		t.Fatal("drain failed")
	}
	if lost != 0 {
		t.Fatalf("%d I/Os lost during foreground-write rebuild", lost)
	}
	if a.DriveState(0) != DriveHealthy {
		t.Fatalf("slot 0 = %v after drain", a.DriveState(0))
	}
}

// Rebuild with injected faults on top: reconstruction reads retry and
// fail over like any other request, and the rebuild still completes.
func TestRebuildWithFaultInjection(t *testing.T) {
	sim, a := newArray(t, layout.RAID10(4), "satf", func(o *Options) {
		o.DataSectors = 1 << 15
		o.Spares = 1
		o.RebuildMBps = 100
		o.Faults = disk.FaultModel{TransientRate: 0.2, TimeoutRate: 0.05, TimeoutDelay: des.Millisecond}
	})
	if err := a.FailDrive(3); err != nil {
		t.Fatal(err)
	}
	_ = sim
	if !a.Drain(des.Hour) {
		t.Fatal("drain failed")
	}
	fc := a.Faults()
	if fc.RebuildsDone != 1 || fc.LostChunks != 0 {
		t.Fatalf("faulty rebuild counters %+v", fc)
	}
	if a.DriveState(3) != DriveHealthy {
		t.Fatalf("slot 3 = %v", a.DriveState(3))
	}
}
