package core

// Free-list pools backing the zero-allocation submit/dispatch path. The
// steady state of a closed-loop workload churns four object kinds per
// logical I/O — the sched.Request (with its reqTag and replica slice), the
// extent-run driving the bus commands, the userRequest holding the resolved
// layout pieces, and for delayed writes the propagation bookkeeping
// (delayedCopy / propEntry / chunkState). Each kind recycles through an
// intrusive free list on the Array: the array is single-goroutine by
// construction (everything runs on its Sim), so the lists need no locking.
//
// Lifetime rules (the part that makes pooling safe):
//
//   - A pooled request is released exactly once, at a point where nothing
//     can reference it again: the dispatch completion after its tag
//     continuation ran (unless the continuation re-enqueued the same
//     request — the foreground-write transient-retry path), the duplicate-
//     group claim that cancels the losers, the deadline expiry that removed
//     it from its queue, or the drive-failure sweep.
//   - Late events that captured a request before recycling (ReadDeadline
//     expiry) revalidate through the tag's generation counter: getReq bumps
//     tag.gen, so a deadline armed against a previous life never touches
//     the queue.
//   - A pooled userRequest recycles when its last piece completes, unless
//     its resolved extents outlive it (delayed-mode writes park arena
//     extents in delayedCopies; hedged reads can leave a duplicate in
//     flight past completion; the integrity oracle's repair machinery
//     resolves chunks independently but stays conservative) — those cases
//     set noRecycle and fall back to the garbage collector.
//   - Double releases panic via the free flag rather than corrupting the
//     list.
//
// SetPoolPoisoning scrambles every recycled object so that any stale
// reference — a completion, deadline, or queue entry still holding a
// previous life — either panics (nil derefs, negative event times) or
// diverges the simulation where the regression tests compare byte-identical
// figure output.

import (
	"repro/internal/bus"
	"repro/internal/des"
	"repro/internal/disk"
	"repro/internal/layout"
	"repro/internal/sched"
)

// poisonPools, when set, scrambles recycled pool objects (see
// SetPoolPoisoning).
var poisonPools bool

// SetPoolPoisoning toggles poisoning of recycled pool objects and returns
// the previous setting. Tests flip it on and assert that poisoned and
// unpoisoned runs produce byte-identical results — any divergence means a
// stale reference to a recycled object survived somewhere. Not safe to
// change while simulations are running.
func SetPoolPoisoning(on bool) bool {
	prev := poisonPools
	poisonPools = on
	return prev
}

// maxPoolReplicas sizes the inline replica and mask backing of a pooled
// request. Dr beyond it (a 12-head drive fully rotationally replicated)
// falls back to heap slices; correctness is unaffected.
const maxPoolReplicas = 8

// tagKind selects a dispatched request's completion continuation. The zero
// value keeps the legacy closure form (onDone/onFail), which the cold paths
// — reference reads, hedge duplicates, rebuild, scrub, NVRAM recovery —
// still use; the hot paths carry a kind plus context fields so that
// submitting a request allocates no closures.
type tagKind uint8

const (
	tagClosure tagKind = iota
	// tagRead is a foreground read copy (submitRead).
	tagRead
	// tagFGWrite is one copy of a foreground-mode write, counting down its
	// fgWrite.
	tagFGWrite
	// tagFirstWrite is the delayed-mode first copy; completion registers
	// the propagation and releases the chunk's write gate.
	tagFirstWrite
	// tagPromote is a delayed copy promoted to the foreground queue
	// (forceDelayed / RecoverDelayed).
	tagPromote
)

// pooledReq bundles a sched.Request with its reqTag and the inline backing
// for replicas and the allowed-replica mask, so issuing one request touches
// exactly one pooled object.
type pooledReq struct {
	req  sched.Request
	tag  reqTag
	reps [maxPoolReplicas]sched.Replica
	mask [maxPoolReplicas]bool
	// allowedFn is tag.allowedFresh bound once at first construction (the
	// receiver &tag is stable for the object's lifetime), so delayed-mode
	// first writes can install an AllowedFn without a per-request closure.
	allowedFn func(int) bool
	free      bool
	next      *pooledReq
}

// getReq returns a reset pooled request. The tag's generation counter
// survives recycling (monotonically increasing per object), invalidating
// deadline events armed against previous lives.
func (a *Array) getReq() *pooledReq {
	pr := a.freeReqs
	if pr == nil {
		pr = &pooledReq{}
		pr.allowedFn = pr.tag.allowedFresh
	} else {
		a.freeReqs = pr.next
		pr.next = nil
	}
	pr.free = false
	gen := pr.tag.gen
	pr.req = sched.Request{}
	pr.tag = reqTag{pr: pr, gen: gen + 1}
	pr.req.Tag = &pr.tag
	return pr
}

// putReq releases a pooled request. Releasing twice panics.
func (a *Array) putReq(pr *pooledReq) {
	if pr == nil {
		return
	}
	if pr.free {
		panic("core: pooled request released twice")
	}
	pr.free = true
	if poisonPools {
		pr.req = sched.Request{
			ID:     ^uint64(0),
			Arrive: des.Time(-1e18), // scheduling off a stale Arrive panics in des
			Tag:    &pr.tag,
		}
		t := &pr.tag
		t.kind = ^tagKind(0) // unknown kind: tagDone/failTag panic
		t.group, t.onDone, t.onFail = nil, nil, nil
		t.hc, t.hedgeOf = nil, nil
		t.ur, t.p, t.d, t.fg, t.dc = nil, nil, nil, nil, nil
		for i := range pr.reps {
			pr.reps[i] = sched.Replica{}
		}
		for i := range pr.mask {
			pr.mask[i] = false
		}
	}
	pr.next = a.freeReqs
	a.freeReqs = pr
}

// fillReplicas builds the request's replica slice from the piece, backed by
// the pooled inline array when it fits.
func fillReplicas(pr *pooledReq, p *layout.Piece) []sched.Replica {
	n := len(p.Replicas)
	var out []sched.Replica
	if n <= len(pr.reps) {
		out = pr.reps[:n]
	} else {
		out = make([]sched.Replica, n)
	}
	for j, exts := range p.Replicas {
		out[j] = sched.Replica{Extents: exts}
	}
	return out
}

// fillReplicas1 builds a single-replica slice (foreground write copies,
// promoted delayed copies) from the pooled backing.
func fillReplicas1(pr *pooledReq, exts []disk.Extent) []sched.Replica {
	pr.reps[0] = sched.Replica{Extents: exts}
	return pr.reps[:1]
}

// fgWrite counts down the copies of one foreground-mode write piece.
type fgWrite struct {
	ur     *userRequest
	chunk  int64
	ver    uint64
	covers bool
	left   int
	free   bool
	next   *fgWrite
}

func (a *Array) getFG() *fgWrite {
	f := a.freeFGs
	if f == nil {
		return &fgWrite{}
	}
	a.freeFGs = f.next
	*f = fgWrite{}
	return f
}

func (a *Array) putFG(f *fgWrite) {
	if f.free {
		panic("core: fgWrite released twice")
	}
	f.free = true
	if poisonPools {
		f.ur = nil
		f.chunk, f.ver = -1, ^uint64(0)
		f.left = -1 << 30
	}
	f.next = a.freeFGs
	a.freeFGs = f
}

// fgDone counts one copy of a foreground write down; the last copy commits
// the version (oracle on) and completes the piece.
func (a *Array) fgDone(f *fgWrite) {
	f.left--
	if f.left != 0 {
		return
	}
	if a.integrity {
		a.commitVersion(f.chunk, f.ver)
	}
	ur := f.ur
	a.putFG(f)
	ur.pieceDone()
}

// runKind selects an extentRun's completion continuation.
type runKind uint8

const (
	// runDispatch is a scheduled foreground/background dispatch (the old
	// dispatch closure).
	runDispatch runKind = iota
	// runDelayed is a background propagation write (the old
	// dispatchDelayed closure).
	runDelayed
)

// extentRun drives one replica's extents back-to-back over the bus,
// replacing the per-dispatch closure chain of the old runExtents. It is the
// bus.CompletionHandler for its own commands.
type extentRun struct {
	a       *Array
	d       *drive
	req     *sched.Request
	extents []disk.Extent
	op      bus.Op
	idx     int
	retried bool
	retries int
	// Corruption flags accumulate across the run's extents so the final
	// completion carries every silent draw, not just the last extent's.
	latent, corrupt, torn bool

	kind runKind
	// runDispatch context.
	choice sched.Choice
	start  des.Time
	// runDelayed context (dc is the copy being landed; pr the pooled
	// request lending its identity).
	dc *delayedCopy
	pr *pooledReq

	free bool
	next *extentRun
}

// OnCompletion implements bus.CompletionHandler.
func (r *extentRun) OnCompletion(_ uint64, comp bus.Completion) {
	r.a.stepRun(r, comp)
}

// startRun returns a reset extentRun positioned at the first extent; the
// caller fills the kind context and calls submitExtent.
func (a *Array) startRun(d *drive, req *sched.Request, extents []disk.Extent) *extentRun {
	r := a.freeRuns
	if r == nil {
		r = &extentRun{a: a}
	} else {
		a.freeRuns = r.next
		r.next = nil
	}
	r.free = false
	r.d = d
	r.req = req
	r.extents = extents
	r.op = bus.OpRead
	if req.Write {
		r.op = bus.OpWrite
	}
	r.idx = 0
	r.retried = false
	r.retries = 0
	r.latent, r.corrupt, r.torn = false, false, false
	r.choice = sched.Choice{}
	r.start = 0
	r.dc, r.pr = nil, nil
	return r
}

func (a *Array) putRun(r *extentRun) {
	if r.free {
		panic("core: extent run released twice")
	}
	r.free = true
	if poisonPools {
		r.d, r.req, r.extents = nil, nil, nil
		r.idx = -1 << 30
		r.dc, r.pr = nil, nil
	}
	r.next = a.freeRuns
	a.freeRuns = r
}

// getUR returns a reset pooled userRequest (its arena and merge buffers
// keep their backing).
func (a *Array) getUR() *userRequest {
	ur := a.freeURs
	if ur == nil {
		return &userRequest{a: a, pooled: true}
	}
	a.freeURs = ur.next
	ur.next = nil
	ur.free = false
	ur.failed = false
	ur.err = nil
	ur.noRecycle = false
	ur.submitting = false
	return ur
}

func (a *Array) putUR(ur *userRequest) {
	if ur.free {
		panic("core: userRequest released twice")
	}
	ur.free = true
	if poisonPools {
		ur.off, ur.count = -1, -1
		ur.submit = des.Time(-1e18)
		ur.remaining = -1 << 30
		ur.done = nil
	}
	ur.next = a.freeURs
	a.freeURs = ur
}

// getCopy returns a reset delayedCopy. All flag fields start false — the
// zero value is a plain propagation copy.
func (a *Array) getCopy() *delayedCopy {
	c := a.freeCopies
	if c == nil {
		return &delayedCopy{}
	}
	a.freeCopies = c.next
	c.next = nil
	*c = delayedCopy{}
	return c
}

func (a *Array) putCopy(c *delayedCopy) {
	if c.free {
		panic("core: delayed copy released twice")
	}
	c.free = true
	if poisonPools {
		c.entry = nil
		c.extents = nil
		c.chunk, c.off = -1, -1
	}
	c.next = a.freeCopies
	a.freeCopies = c
}

// getEntry returns a reset propEntry.
func (a *Array) getEntry() *propEntry {
	e := a.freeEntries
	if e == nil {
		return &propEntry{}
	}
	a.freeEntries = e.next
	e.next = nil
	*e = propEntry{}
	return e
}

func (a *Array) putEntry(e *propEntry) {
	if e.free {
		panic("core: propagation entry released twice")
	}
	e.free = true
	if poisonPools {
		e.remaining = -1 << 30
		e.onAllDone = nil
	}
	e.next = a.freeEntries
	a.freeEntries = e
}

// getChunkState returns a chunkState with a zeroed staleCount sized to the
// configuration's Dr.
func (a *Array) getChunkState() *chunkState {
	dr := a.opts.Config.Dr
	cs := a.freeChunkStates
	if cs == nil {
		return &chunkState{staleCount: make([]int, dr)}
	}
	a.freeChunkStates = cs.next
	cs.next = nil
	if cap(cs.staleCount) < dr {
		cs.staleCount = make([]int, dr)
	} else {
		cs.staleCount = cs.staleCount[:dr]
		for i := range cs.staleCount {
			cs.staleCount[i] = 0
		}
	}
	return cs
}

func (a *Array) putChunkState(cs *chunkState) {
	cs.next = a.freeChunkStates
	a.freeChunkStates = cs
}

// tagDone runs a completed request's continuation: the kind-dispatched
// equivalent of the old per-request onDone closures (cold paths keep the
// closures under tagClosure).
func (a *Array) tagDone(t *reqTag, last bus.Completion, chosen int) {
	switch t.kind {
	case tagClosure:
		t.onDone(last, chosen)
	case tagRead:
		// Verify-on-read: consult the oracle where a real array would check
		// the extent checksums. A hit fails over to the remaining clean
		// replicas (queueing an in-place repair); with verification off the
		// corrupt read flows to the caller and is only counted.
		bad := a.integrity && a.checkPieceRead(t.d, t.p, chosen, last)
		if bad && a.opts.VerifyReads {
			a.noteDetected(t.d, t.p, chosen)
			if t.hc != nil {
				t.hc.primaryFail()
				return
			}
			a.submitRead(t.ur, t.p)
			return
		}
		if t.hc != nil {
			t.hc.primaryDone(bad)
			return
		}
		if bad {
			a.noteSilent()
		}
		t.ur.pieceDone()
	case tagFGWrite:
		a.noteCopyWritten(t.d, t.fg.chunk, t.rep, t.fg.ver, t.fg.covers, last)
		a.fgDone(t.fg)
	case tagFirstWrite:
		ur, p := t.ur, t.p
		ur.pieceDone()
		a.registerPropagation(p, t.d, chosen, last)
		a.releaseWriteGate(p.Chunk)
	case tagPromote:
		dc := t.dc
		a.finishCopy(t.d, dc, true, last)
		a.putCopy(dc)
	default:
		panic("core: completion on a recycled request tag")
	}
}

// failTag runs a request's failure continuation (drive failure or faulted-
// out dispatch). It reports whether the continuation re-enqueued the same
// pooled request (the foreground-write transient-retry path), in which case
// the caller must not release it.
func (a *Array) failTag(t *reqTag) (reused bool) {
	switch t.kind {
	case tagClosure:
		if t.onFail != nil {
			t.onFail()
		}
	case tagRead:
		// A failure with no surviving duplicate retries against the
		// remaining mirrors (and fails there if none remain).
		if t.hc != nil {
			t.hc.primaryFail()
			return false
		}
		a.submitRead(t.ur, t.p)
	case tagFGWrite:
		// A copy lost to a drive failure mid-queue still counts toward
		// completion: the write survives on the remaining copies. A
		// transient double-fault with the drive alive must land eventually —
		// the copy is what keeps this mirror fresh.
		if !t.d.failed {
			t.pr.req.Arrive = a.sim.Now()
			a.enqueue(t.d, &t.pr.req)
			return true
		}
		a.fgDone(t.fg)
	case tagFirstWrite:
		// All duplicates gone: retry against the survivors (the gate is
		// still held by this write).
		a.submitWriteGated(t.ur, t.p)
	case tagPromote:
		// Keep trying while the drive lives (the copy holds a staleness
		// mark that must resolve); with the drive gone the copy is lost but
		// the entry still resolves.
		if !t.d.failed {
			a.promoteCopy(t.d, t.dc)
			return false
		}
		dc := t.dc
		a.finishCopy(t.d, dc, false, bus.Completion{})
		a.putCopy(dc)
	default:
		panic("core: failure on a recycled request tag")
	}
	return false
}

// allowedFresh is the live scheduling predicate of a delayed-mode first
// write: while an earlier write to this chunk is still propagating, only
// its fresh replica may take the new data, or the chunk could end up with
// no up-to-date copy at all. Semantically identical to consulting
// freshMask, without materializing the mask at every scheduler evaluation.
func (t *reqTag) allowedFresh(j int) bool {
	cs := t.d.stale[t.p.Chunk]
	if cs == nil {
		return true
	}
	return cs.staleCount[j] == 0
}
