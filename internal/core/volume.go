package core

import "repro/internal/des"

// Volume is the surface a storage front-end needs from an array: submit
// I/O, observe backpressure and fault accounting, and drive the
// crash/recovery cycle. It is exactly the slice of *Array the service
// layer consumes — extracting it keeps `internal/service` (and any future
// multi-brick router) from reaching into array internals, and lets tests
// and shims stand in for a real array.
//
// Every method must be called from the goroutine that owns the volume's
// Sim (the simulation is single-threaded); the service layer's
// virtual-time gateway enforces that discipline.
type Volume interface {
	// Submit queues one logical request; done (optional) runs at
	// completion, through the simulator. Synchronous errors (ErrOverload,
	// ErrCrashed, out-of-range) mean the request was never queued and done
	// will not run.
	Submit(op Op, off int64, count int, async bool, done func(Result)) error
	// SubmitBatch submits ops in order with amortized dispatch, stopping
	// at the first error; SubmitBatchErrs attempts every op and returns
	// index-aligned per-op errors.
	SubmitBatch(ops []BatchOp) (int, error)
	SubmitBatchErrs(ops []BatchOp) ([]error, int)

	// Sim is the discrete-event clock the volume lives on.
	Sim() *des.Sim
	// DataSectors is the logical capacity in sectors.
	DataSectors() int64
	// Disks is the number of drives (spares included).
	Disks() int
	// Idle reports no queued, in-flight, or background work.
	Idle() bool
	// Drain runs the simulation until Idle, bounded by maxTime.
	Drain(maxTime des.Time) bool

	// Faults, Hedges, and Sheds expose the fault/hedge/admission
	// accounting a front-end surfaces as service metrics.
	Faults() FaultCounters
	Hedges() HedgeCounters
	Sheds() ShedCounters

	// Tuning and SetTuning expose the runtime actuators (hedge delay,
	// admission depth, background pacing) an SLO control plane steps while
	// the volume serves traffic.
	Tuning() Tuning
	SetTuning(Tuning) error

	// Crashed/Crash/Recover/Recovery drive the power-fail cycle
	// (Options.Crash must be enabled for Crash to succeed).
	Crashed() bool
	Crash() error
	Recover() error
	Recovery() RecoveryCounters
}

// Array implements Volume.
var _ Volume = (*Array)(nil)
