package core

import (
	"testing"

	"repro/internal/des"
	"repro/internal/layout"
)

// FuzzAdoptNVRAM feeds arbitrary bytes to the crash-recovery adopt path.
// The contract under fuzzing: AdoptNVRAM never panics, never reports a
// negative reissue count, and whatever it accepted (even before an error
// cut the replay short) must drain cleanly — a hostile or truncated
// snapshot may be rejected but must not wedge the adopting array.
func FuzzAdoptNVRAM(f *testing.F) {
	// Seed corpus: a genuine snapshot with pending propagations (the happy
	// path the fuzzer mutates from), an empty table, a hand-crafted valid
	// entry, known-bad entries, and raw garbage.
	sim, a := newArray(f, layout.SRArray(1, 3), "rsatf", nil)
	pendingWrites(f, sim, a, 15, 13)
	snap, err := a.SnapshotNVRAM()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(snap)
	f.Add(encodeEntries(f, nil))
	f.Add(encodeEntries(f, []nvramEntry{{Off: 0, Count: 8, Disk: 0, Replica: 0}}))
	f.Add(encodeEntries(f, []nvramEntry{{Off: -8, Count: 8, Disk: 0, Replica: 0}}))
	f.Add(encodeEntries(f, []nvramEntry{{Off: 0, Count: 8, Disk: 0, Replica: -1}}))
	f.Add(encodeEntries(f, []nvramEntry{{Off: 0, Count: 8, Disk: 99, Replica: 0}}))
	f.Add([]byte("not a gob stream"))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			t.Skip("snapshot larger than any real table")
		}
		_, b := newArray(t, layout.SRArray(1, 3), "rsatf", nil)
		n, err := b.AdoptNVRAM(data)
		if n < 0 {
			t.Fatalf("negative reissue count %d (err=%v)", n, err)
		}
		// Partial progress before an error must still be drainable.
		if !b.Drain(des.Hour) {
			t.Fatalf("array wedged after adopt (n=%d, err=%v)", n, err)
		}
		if b.NVRAMUsed() != 0 {
			t.Fatalf("table holds %d entries after drain", b.NVRAMUsed())
		}
	})
}

// FuzzRecoveryScan crashes a loaded array at an arbitrary instant in
// either NVRAM durability mode and recovers it. The contract: the recovery
// scan never reports a divergent chunk as clean — after the scan and its
// repairs drain, the oracle finds zero divergent copies, the counters
// reconcile, and (with every drive alive) nothing is unrepairable.
func FuzzRecoveryScan(f *testing.F) {
	f.Add(int64(1), uint8(0), uint16(0))
	f.Add(int64(2), uint8(1), uint16(500))
	f.Add(int64(3), uint8(0), uint16(5000))
	f.Add(int64(4), uint8(1), uint16(65535))

	f.Fuzz(func(t *testing.T, seed int64, mode uint8, crashAfter uint16) {
		sim, a := newArray(t, layout.RAID10(4), "rsatf", func(o *Options) {
			o.DataSectors = 1 << 15
			o.Crash = CrashModel{Enabled: true, Durability: NVRAMDurability(mode % 2)}
		})
		pendingWrites(t, sim, a, 30, seed)
		// Step to an arbitrary crash point: anywhere from "propagation all
		// pending" to "fully drained".
		deadline := sim.Now() + des.Time(crashAfter)*des.Microsecond/8
		for sim.Now() < deadline {
			if !sim.Step() {
				break
			}
		}
		if err := a.Crash(); err != nil {
			t.Fatal(err)
		}
		if err := a.Recover(); err != nil {
			t.Fatal(err)
		}
		if !a.Drain(des.Hour) {
			t.Fatal("array wedged after recovery")
		}
		rec := a.Recovery()
		if got := a.DivergentCopies(); got != 0 {
			t.Fatalf("%d divergent copies reported clean after recovery (%+v)", got, rec)
		}
		if rec.DivergentFound != rec.RepairsQueued+rec.Unrepairable {
			t.Fatalf("divergence accounting: %+v", rec)
		}
		if rec.RepairsQueued != rec.Repaired+rec.RepairsDropped {
			t.Fatalf("repair accounting: %+v", rec)
		}
		if rec.Unrepairable != 0 || rec.RepairsDropped != 0 {
			t.Fatalf("unrepairable/dropped with every drive alive: %+v", rec)
		}
		if NVRAMDurability(mode%2) == BatteryBacked && rec.LostDelayed != 0 {
			t.Fatalf("battery-backed NVRAM lost %d copies", rec.LostDelayed)
		}
		if a.NVRAMUsed() != 0 {
			t.Fatalf("table holds %d entries after drain", a.NVRAMUsed())
		}
	})
}
