package core

import (
	"testing"

	"repro/internal/des"
	"repro/internal/layout"
)

// FuzzAdoptNVRAM feeds arbitrary bytes to the crash-recovery adopt path.
// The contract under fuzzing: AdoptNVRAM never panics, never reports a
// negative reissue count, and whatever it accepted (even before an error
// cut the replay short) must drain cleanly — a hostile or truncated
// snapshot may be rejected but must not wedge the adopting array.
func FuzzAdoptNVRAM(f *testing.F) {
	// Seed corpus: a genuine snapshot with pending propagations (the happy
	// path the fuzzer mutates from), an empty table, a hand-crafted valid
	// entry, known-bad entries, and raw garbage.
	sim, a := newArray(f, layout.SRArray(1, 3), "rsatf", nil)
	pendingWrites(f, sim, a, 15, 13)
	snap, err := a.SnapshotNVRAM()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(snap)
	f.Add(encodeEntries(f, nil))
	f.Add(encodeEntries(f, []nvramEntry{{Off: 0, Count: 8, Disk: 0, Replica: 0}}))
	f.Add(encodeEntries(f, []nvramEntry{{Off: -8, Count: 8, Disk: 0, Replica: 0}}))
	f.Add(encodeEntries(f, []nvramEntry{{Off: 0, Count: 8, Disk: 0, Replica: -1}}))
	f.Add(encodeEntries(f, []nvramEntry{{Off: 0, Count: 8, Disk: 99, Replica: 0}}))
	f.Add([]byte("not a gob stream"))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			t.Skip("snapshot larger than any real table")
		}
		_, b := newArray(t, layout.SRArray(1, 3), "rsatf", nil)
		n, err := b.AdoptNVRAM(data)
		if n < 0 {
			t.Fatalf("negative reissue count %d (err=%v)", n, err)
		}
		// Partial progress before an error must still be drainable.
		if !b.Drain(des.Hour) {
			t.Fatalf("array wedged after adopt (n=%d, err=%v)", n, err)
		}
		if b.NVRAMUsed() != 0 {
			t.Fatalf("table holds %d entries after drain", b.NVRAMUsed())
		}
	})
}
