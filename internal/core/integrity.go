package core

import (
	"fmt"
	"math/rand"

	"repro/internal/bus"
	"repro/internal/layout"
)

// Silent-corruption tolerance rests on an integrity oracle: the simulator
// moves no actual data, so it tracks per copy (drive x chunk x rotational
// replica) a content version and a corruption state as ground truth. A
// write stamps a fresh version; commit points mirror when the array
// considers the data durable. A read is wrong when its copy is poisoned
// (latent error, torn write, or a corrupt source faithfully copied by an
// unverified rebuild), when the transfer itself was garbled, or when the
// copy's version lags the chunk's committed version. The verify-on-read
// check (Options.VerifyReads) stands in for a per-extent checksum: it
// consults the oracle exactly where a real array would compare checksums,
// fails the read over to a clean replica, and queues an in-place repair.
//
// The oracle is maintained only when something can consult it (corruption
// injection, verification, or scrubbing is on), so disabled runs stay
// byte-identical and allocation-free.

// Copy corruption states.
const (
	// badNone: the copy holds what its version says.
	badNone uint8 = iota
	// badSilent: the copy is garbage and the array does not know (a latent
	// error or torn write that no verified read has touched yet).
	badSilent
	// badKnown: a verify check caught the copy; it is excluded from reads
	// and a repair has been queued if a clean source existed.
	badKnown
)

// integState is the oracle's ground truth for one chunk's copies on one
// drive, indexed by rotational replica.
type integState struct {
	ver []uint64
	bad []uint8
}

// integOf returns (creating if needed) the oracle state of a chunk on a
// drive.
func (a *Array) integOf(d *drive, chunk int64) *integState {
	if d.integ == nil {
		d.integ = make(map[int64]*integState)
	}
	st := d.integ[chunk]
	if st == nil {
		dr := a.opts.Config.Dr
		st = &integState{ver: make([]uint64, dr), bad: make([]uint8, dr)}
		d.integ[chunk] = st
	}
	return st
}

// nextVersion stamps one logical write.
func (a *Array) nextVersion() uint64 {
	a.verSeq++
	return a.verSeq
}

// commitVersion records that version v of the chunk is durably on some
// copy — the point after which a lagging copy counts as stale data.
func (a *Array) commitVersion(chunk int64, v uint64) {
	if a.committed[chunk] < v {
		a.committed[chunk] = v
	}
}

// coversChunk reports whether the logical range [off, off+count) covers
// the chunk entirely — only a covering write can clear a poisoned copy
// (chunk-granular state must not be cleared by a partial overwrite whose
// garbage may live elsewhere in the chunk).
func (a *Array) coversChunk(chunk, off int64, count int) bool {
	unit := int64(a.lay.StripeUnit())
	start := chunk * unit
	end := start + unit
	if ds := a.lay.DataSectors(); end > ds {
		end = ds
	}
	return off <= start && off+int64(count) >= end
}

// noteCopyWritten updates the oracle after a write of version v landed on
// (d, chunk, replica). A torn completion reported success onto garbage:
// the version does not advance and the copy is silently poisoned.
func (a *Array) noteCopyWritten(d *drive, chunk int64, replica int, v uint64, covers bool, comp bus.Completion) {
	if !a.integrity {
		return
	}
	st := a.integOf(d, chunk)
	if comp.Torn {
		if st.bad[replica] == badNone {
			st.bad[replica] = badSilent
		}
		return
	}
	if v > st.ver[replica] {
		st.ver[replica] = v
	}
	if covers {
		st.bad[replica] = badNone
	}
}

// poisonCopy marks a copy silently bad unless a verify check already
// knows about it.
func (a *Array) poisonCopy(d *drive, chunk int64, replica int) {
	st := a.integOf(d, chunk)
	if st.bad[replica] == badNone {
		st.bad[replica] = badSilent
	}
}

// forEachChunk visits every chunk a (possibly merged) read piece spans.
// Merged pieces fuse consecutive chunks of one position, so successive
// chunks are Positions() apart.
func (a *Array) forEachChunk(p *layout.Piece, fn func(chunk int64)) {
	unit := int64(a.lay.StripeUnit())
	within := p.Off - p.Chunk*unit
	n := (within + int64(p.Count) + unit - 1) / unit
	g := int64(a.opts.Config.Positions())
	for k := int64(0); k < n; k++ {
		fn(p.Chunk + k*g)
	}
}

// checkPieceRead consults the oracle for a clean read completion of piece
// p, replica rep, served by drive d: it reports whether the returned data
// was corrupt or stale, and applies the persistent media poison a latent
// draw implies. This is the array's stand-in for verifying a per-extent
// checksum against the data just read.
func (a *Array) checkPieceRead(d *drive, p *layout.Piece, rep int, comp bus.Completion) bool {
	if !a.integrity {
		return false
	}
	if comp.Latent {
		// The media under the read has rotted; the poison outlives this
		// command. Merged pieces attribute the draw to their first chunk.
		a.poisonCopy(d, p.Chunk, rep)
	}
	bad := comp.Corrupt
	a.forEachChunk(p, func(chunk int64) {
		if st := d.integ[chunk]; st != nil {
			if st.bad[rep] != badNone {
				bad = true
			}
			if st.ver[rep] < a.committed[chunk] {
				bad = true
			}
		} else if a.committed[chunk] > 0 {
			bad = true
		}
	})
	return bad
}

// noteSilent counts one read that returned corrupt data to the caller
// with verification off.
func (a *Array) noteSilent() {
	a.faults.SilentReads++
	if a.obsRec != nil {
		a.obsRec.SilentReads++
	}
}

// repairOrigin identifies which detector condemned a copy, so the repair
// lifecycle counters reconcile per-detector: verify-on-read, the background
// scrubber, or the post-crash recovery scan.
type repairOrigin uint8

const (
	originRead repairOrigin = iota
	originScrub
	originRecovery
)

// noteDetected handles a verify-on-read hit on (d, piece, rep): every
// persistently wrong chunk copy under the read is marked known-bad
// (excluding it from future reads) and an in-place repair is queued from
// a clean source. Transient path corruption marks nothing — the media is
// fine and the caller's failover retry will read clean data.
func (a *Array) noteDetected(d *drive, p *layout.Piece, rep int) {
	a.faults.VerifyDetected++
	if a.obsRec != nil {
		a.obsRec.VerifyDetected++
	}
	a.forEachChunk(p, func(chunk int64) {
		a.condemnWrong(d, chunk, rep, originRead)
	})
}

// condemnWrong marks the copy known-bad and queues its repair if it is
// persistently wrong (poisoned media or a stale version — not a one-off
// transfer garbling). Reports whether it condemned anything.
func (a *Array) condemnWrong(d *drive, chunk int64, rep int, origin repairOrigin) bool {
	st := d.integ[chunk]
	wrong := st == nil && a.committed[chunk] > 0
	if st != nil && (st.bad[rep] != badNone || st.ver[rep] < a.committed[chunk]) {
		wrong = true
	}
	if !wrong {
		return false
	}
	stc := a.integOf(d, chunk)
	if stc.bad[rep] == badKnown {
		return false // already detected; its repair is pending
	}
	stc.bad[rep] = badKnown
	a.queueRepair(d, chunk, rep, origin)
	return true
}

// ensureIntegrity turns the oracle on after construction (InjectCorruption
// or a late StartScrub on an array built without corruption options).
func (a *Array) ensureIntegrity() {
	a.integrity = true
	if a.committed == nil {
		a.committed = make(map[int64]uint64)
	}
}

// readMask returns the per-replica usable mask for reads of a chunk on a
// drive: fresh (no pending propagation) and not known-corrupt. Nil when
// every replica is usable — the allocation-free common case.
func (a *Array) readMask(d *drive, chunk int64) []bool {
	mask := a.freshMask(d, chunk)
	if !a.integrity {
		return mask
	}
	st := d.integ[chunk]
	if st == nil {
		return mask
	}
	for j, b := range st.bad {
		if b != badKnown {
			continue
		}
		if mask == nil {
			mask = make([]bool, a.opts.Config.Dr)
			for k := range mask {
				mask[k] = true
			}
		}
		mask[j] = false
	}
	return mask
}

// chunkTainted reports whether readMask would be non-nil for the chunk on
// this drive — some replica stale or known-corrupt — without allocating
// the mask.
func (a *Array) chunkTainted(d *drive, chunk int64) bool {
	if d.stale[chunk] != nil {
		return true
	}
	if !a.integrity {
		return false
	}
	st := d.integ[chunk]
	if st == nil {
		return false
	}
	for _, b := range st.bad {
		if b == badKnown {
			return true
		}
	}
	return false
}

// replicaUsable reports what readMask's mask[j] would be, without
// materializing the mask: fresh (no pending propagation) and not
// known-corrupt.
func (a *Array) replicaUsable(d *drive, chunk int64, j int) bool {
	if cs := d.stale[chunk]; cs != nil && cs.staleCount[j] != 0 {
		return false
	}
	if a.integrity {
		if st := d.integ[chunk]; st != nil && st.bad[j] == badKnown {
			return false
		}
	}
	return true
}

// anyUsable reports whether at least one replica of the chunk on this
// drive is usable for reads (the non-nil-mask analogue of anyTrue).
func (a *Array) anyUsable(d *drive, chunk int64) bool {
	for j := 0; j < a.opts.Config.Dr; j++ {
		if a.replicaUsable(d, chunk, j) {
			return true
		}
	}
	return false
}

// readMaskInto fills buf (growing it if Dr exceeds its capacity) with the
// same values readMask would allocate; nil when every replica is usable.
// Hot read submission uses it with the pooled request's inline backing.
func (a *Array) readMaskInto(d *drive, chunk int64, buf []bool) []bool {
	if !a.chunkTainted(d, chunk) {
		return nil
	}
	dr := a.opts.Config.Dr
	mask := buf
	if cap(mask) < dr {
		mask = make([]bool, dr)
	} else {
		mask = mask[:dr]
	}
	for j := 0; j < dr; j++ {
		mask[j] = a.replicaUsable(d, chunk, j)
	}
	return mask
}

// anyKnownBad reports whether any replica of the chunk on this drive has
// been detected corrupt (and is awaiting repair).
func (a *Array) anyKnownBad(d *drive, chunk int64) bool {
	if !a.integrity {
		return false
	}
	st := d.integ[chunk]
	if st == nil {
		return false
	}
	for _, b := range st.bad {
		if b == badKnown {
			return true
		}
	}
	return false
}

// hasRepairSource reports whether some other usable copy of the chunk
// exists to repair (d, replica) from.
func (a *Array) hasRepairSource(d *drive, chunk int64, replica int) bool {
	p := a.chunkPiece(chunk)
	for _, id := range p.Mirrors {
		q := a.drives[id]
		if q.failed || q.unreadable(chunk) {
			continue
		}
		mask := a.readMask(q, chunk)
		for j := 0; j < a.opts.Config.Dr; j++ {
			if q == d && j == replica {
				continue
			}
			if mask != nil && !mask[j] {
				continue
			}
			if st := q.integ[chunk]; st != nil && st.bad[j] != badNone {
				continue
			}
			return true
		}
	}
	return false
}

// chunkPiece resolves one whole chunk to its layout piece.
func (a *Array) chunkPiece(chunk int64) *layout.Piece {
	unit := int64(a.lay.StripeUnit())
	off := chunk * unit
	count := unit
	if rest := a.lay.DataSectors() - off; rest < count {
		count = rest
	}
	pieces, err := a.lay.Resolve(off, int(count))
	if err != nil || len(pieces) != 1 {
		panic(fmt.Sprintf("core: chunk %d resolved to %d pieces: %v", chunk, len(pieces), err))
	}
	return &pieces[0]
}

// queueRepair enqueues an in-place rewrite of a detected-corrupt copy
// through the delayed-write machinery, carrying the chunk's committed
// content (the detecting read's failover — or the scrubber's source read
// — supplies the data). Repair copies hold no NVRAM slot and no staleness
// marks: a crash simply loses the intent, and the next verified read or
// scrub pass re-detects the copy.
func (a *Array) queueRepair(d *drive, chunk int64, replica int, origin repairOrigin) {
	if d.failed || d.unreadable(chunk) || !a.hasRepairSource(d, chunk, replica) {
		switch origin {
		case originScrub:
			a.scrubCtr.Unrepairable++
		case originRecovery:
			a.recCtr.Unrepairable++
		default:
			a.faults.Unrepairable++
		}
		return
	}
	switch origin {
	case originScrub:
		a.scrubCtr.RepairsQueued++
	case originRecovery:
		a.recCtr.RepairsQueued++
	default:
		a.faults.RepairsQueued++
	}
	p := a.chunkPiece(chunk)
	entry := &propEntry{remaining: 1}
	d.delayed = append(d.delayed, &delayedCopy{
		entry: entry, replica: replica, extents: p.Replicas[replica],
		chunk: chunk, off: p.Off, count: p.Count,
		repair: true, origin: origin, ver: a.committed[chunk],
	})
	a.kick(d)
}

// noteRepairEnd resolves one queued repair: done (the copy was rewritten
// clean) or dropped (the copy died with its drive, lost to a crash, or no
// clean source remained).
func (a *Array) noteRepairEnd(origin repairOrigin, done bool) {
	switch origin {
	case originScrub:
		if done {
			a.scrubCtr.Repaired++
			if a.obsRec != nil {
				a.obsRec.ScrubRepaired++
			}
		} else {
			a.scrubCtr.RepairsDropped++
		}
	case originRecovery:
		if done {
			a.recCtr.Repaired++
			if a.obsRec != nil {
				a.obsRec.RecoveryRepaired++
			}
		} else {
			a.recCtr.RepairsDropped++
		}
	default:
		if done {
			a.faults.RepairsDone++
			if a.obsRec != nil {
				a.obsRec.ReadRepairs++
			}
		} else {
			a.faults.RepairsDropped++
		}
	}
}

// InjectCorruption silently poisons up to n distinct live copies, chosen
// uniformly from a stream seeded by seed — the deterministic way for
// experiments and tests to create a latent-error population without
// waiting for the per-command streams to draw one. It enables the
// integrity oracle if nothing else had, and returns how many copies were
// actually poisoned.
func (a *Array) InjectCorruption(n int, seed int64) int {
	a.ensureIntegrity()
	rng := rand.New(rand.NewSource(seed))
	g := int64(a.opts.Config.Positions())
	unit := int64(a.lay.StripeUnit())
	numChunks := (a.lay.DataSectors() + unit - 1) / unit
	injected := 0
	for attempts := 0; injected < n && attempts < 64*(n+1); attempts++ {
		slot := rng.Intn(len(a.drives))
		first := int64(slot) % g
		slotChunks := (numChunks - first + g - 1) / g
		if slotChunks <= 0 {
			continue
		}
		chunk := first + rng.Int63n(slotChunks)*g
		rep := rng.Intn(a.opts.Config.Dr)
		d := a.drives[slot]
		if d.failed || d.unreadable(chunk) {
			continue
		}
		if st := d.integ[chunk]; st != nil && st.bad[rep] != badNone {
			continue
		}
		a.integOf(d, chunk).bad[rep] = badSilent
		a.faults.LatentErrors++
		injected++
	}
	return injected
}

// CorruptCopies counts copies the oracle knows to be garbage on live
// drives — the experiment's measure of how much poison remains after a
// scrub pass.
func (a *Array) CorruptCopies() int {
	n := 0
	for _, d := range a.drives {
		if d.failed {
			continue
		}
		for chunk, st := range d.integ {
			if d.unreadable(chunk) {
				continue
			}
			for _, b := range st.bad {
				if b != badNone {
					n++
				}
			}
		}
	}
	return n
}

// DivergentCopies counts copies on live readable chunks that do not hold
// the chunk's committed content: poisoned (silently or known) or lagging
// the committed version — exactly the set the recovery scan must find
// after a crash. Zero means every reachable replica is faithful. Not a hot
// path: experiments and tests call it between runs.
func (a *Array) DivergentCopies() int {
	n := 0
	for _, d := range a.drives {
		if d.failed {
			continue
		}
		for chunk, st := range d.integ {
			if d.unreadable(chunk) {
				continue
			}
			cv := a.committed[chunk]
			for j := range st.bad {
				if st.bad[j] != badNone || st.ver[j] < cv {
					n++
				}
			}
		}
	}
	// A mirror with committed content but no oracle state at all never took
	// any write of the chunk (its propagation copies were all lost): every
	// replica there lags the committed version.
	for chunk, cv := range a.committed {
		if cv == 0 {
			continue
		}
		p := a.chunkPiece(chunk)
		for _, id := range p.Mirrors {
			d := a.drives[id]
			if d.failed || d.unreadable(chunk) || d.integ[chunk] != nil {
				continue
			}
			n += a.opts.Config.Dr
		}
	}
	return n
}
