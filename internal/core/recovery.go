package core

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/disk"
)

// Crash recovery. Restart after a power failure has three jobs, in order:
// adopt whatever the NVRAM battery preserved (each surviving table entry is
// reissued as a foreground write, exactly the prototype's recovery), resume
// the background machinery the crash interrupted (rebuild from the
// missing-chunk set, scrub from a fresh pass), and find the divergence the
// crash created — replicas whose delayed propagation was lost, copies torn
// on the mechanism — with a paced scan over the integrity oracle's content
// versions. The scan models a metadata walk (per-chunk checksum/version
// summaries), not a data scrub: it issues no reads of its own, only the
// in-place repairs of what it condemns, which ride the same Background-
// paced delayed-write machinery as rebuild and scrub repairs.
//
// The recovery invariants, which FuzzRecoveryScan exercises:
//
//   - no silent loss: every replica whose content diverges from its
//     chunk's committed version is condemned by the scan (or was already
//     condemned and gets its lost repair re-queued) — a divergent chunk is
//     never reported clean;
//   - battery-backed NVRAM within its horizon loses nothing: every pending
//     propagation is adopted and the array converges to zero divergent
//     copies without scan repairs;
//   - acknowledged data is never rolled back: adopted writes and repairs
//     only move content versions forward.

// RecoveryCounters reports crash/recovery activity, cumulative across
// crash cycles. DivergentFound == RepairsQueued + Unrepairable, and every
// queued repair ends in Repaired or RepairsDropped.
type RecoveryCounters struct {
	// Crashes and Recoveries count Crash()/Recover() transitions.
	Crashes    int64
	Recoveries int64
	// LostDelayed counts pending propagation copies the crash destroyed
	// (volatile NVRAM, or a drained battery); Adopted counts the ones the
	// battery preserved and recovery reissued.
	LostDelayed int64
	Adopted     int64
	// Scanned counts chunk copies the recovery scan examined.
	Scanned int64
	// DivergentFound counts copies the scan condemned (version lag or
	// poison), including pre-crash condemnations whose queued repair the
	// crash destroyed.
	DivergentFound int64
	// RepairsQueued/Repaired/RepairsDropped/Unrepairable track the scan's
	// in-place repairs, exactly as ScrubCounters tracks the scrubber's.
	RepairsQueued  int64
	Repaired       int64
	RepairsDropped int64
	Unrepairable   int64
	// RecoveryTime accumulates the span from each Recover() to its scan's
	// completion.
	RecoveryTime des.Time
}

// Recovery returns a snapshot of the crash/recovery counters.
func (a *Array) Recovery() RecoveryCounters { return a.recCtr }

// Recover restores a crashed array: power returns, NVRAM is adopted if the
// battery held, interrupted rebuild/scrub resume, and the recovery scan
// starts. Submissions are accepted again from this instant (concurrently
// with the scan — recovery is online, not offline).
func (a *Array) Recover() error {
	if !a.crashed {
		return fmt.Errorf("core: Recover on an array that is not crashed")
	}
	a.crashed = false
	a.recCtr.Recoveries++
	if a.obsRec != nil {
		a.obsRec.Recoveries++
	}
	now := a.sim.Now()
	// NVRAM adoption: within the battery horizon every surviving table
	// entry is reissued as a foreground write (AdoptNVRAM); a drained
	// battery or volatile NVRAM loses the whole table.
	adopted := 0
	if snap := a.crashSnap; snap != nil {
		horizon := a.opts.Crash.BatteryHorizon
		if horizon == 0 || now <= a.crashAt+horizon {
			n, err := a.AdoptNVRAM(snap)
			adopted = n
			if err != nil {
				return err
			}
		}
	}
	a.crashSnap = nil
	a.recCtr.Adopted += int64(adopted)
	a.recCtr.LostDelayed += a.crashDelayed - int64(adopted)
	a.crashDelayed = 0
	// Resume an interrupted rebuild from the spare's missing-chunk set,
	// then let any drive that failed during the outage claim a spare.
	a.resumeRebuild()
	a.maybeStartRebuild()
	// An interrupted scrub pass restarts from scratch: the crash loses the
	// cursor, and a fresh pass re-covers what the old one had verified.
	if a.crashScrubActive {
		a.crashScrubActive = false
		if err := a.StartScrub(a.crashScrubOpts); err != nil {
			return err
		}
	}
	a.startRecoveryScan()
	return nil
}

// resumeRebuild restarts reconstruction of a drive the crash caught
// mid-rebuild: its unreconstructed chunks are still marked missing, and
// chunks already recorded lost stay lost. Chunk enumeration is arithmetic
// (slot position stepping by Positions()), never map order, so resumed
// rebuilds are deterministic.
func (a *Array) resumeRebuild() {
	if a.rebuild != nil {
		return
	}
	for slot, d := range a.drives {
		if d.failed || len(d.missing) == 0 {
			continue
		}
		g := int64(a.opts.Config.Positions())
		unit := int64(a.lay.StripeUnit())
		numChunks := (a.lay.DataSectors() + unit - 1) / unit
		var pending []int64
		for c := int64(slot % a.opts.Config.Positions()); c < numChunks; c += g {
			if d.missing[c] && !a.lostChunks[c] {
				pending = append(pending, c)
			}
		}
		if len(pending) == 0 {
			continue // degraded for good: everything missing is lost
		}
		st := &rebuildState{
			slot: slot, pending: pending, total: len(pending),
			started: a.sim.Now(), activeChunk: -1, nextAt: a.sim.Now(),
		}
		a.rebuild = st
		a.faults.RebuildsStarted++
		a.scheduleNextChunk(st)
		return
	}
}

// recoveryScanBatch is how many chunk copies one scan event examines: the
// walk is pure metadata (no I/O per copy), so batching keeps the event
// count proportional to volume size over batch, not volume size.
const recoveryScanBatch = 32

// recoveryScan is one post-crash divergence walk over every (slot, chunk,
// replica), paced like the scrubber's cursors.
type recoveryScan struct {
	cur     []scrubCursor
	slot    int
	done    bool
	started des.Time
	nextAt  des.Time
	mbps    float64
}

// startRecoveryScan begins the divergence walk (always — both durability
// modes scan; battery-backed recovery normally finds nothing, which is the
// reconciliation the experiment asserts).
func (a *Array) startRecoveryScan() {
	mbps := a.opts.Crash.ScanMBps
	if mbps == 0 {
		mbps = DefaultRecoveryScanMBps
	}
	s := &recoveryScan{
		cur:     make([]scrubCursor, len(a.drives)),
		started: a.sim.Now(),
		nextAt:  a.sim.Now(),
		mbps:    mbps,
	}
	a.recScan = s
	a.recScanNext(s)
}

func (a *Array) recScanNext(s *recoveryScan) {
	at := s.nextAt
	if now := a.sim.Now(); at < now {
		at = now
	}
	a.sim.At(at, func() { a.recScanTick(s) })
}

func (a *Array) recScanTick(s *recoveryScan) {
	if s.done || s != a.recScan || a.crashed {
		return
	}
	for i := 0; i < recoveryScanBatch; i++ {
		if !a.recScanStep(s) {
			s.done = true
			a.recCtr.RecoveryTime += a.sim.Now() - s.started
			return
		}
	}
	a.recScanNext(s)
}

// recScanStep examines one chunk copy; false when every cursor is
// exhausted.
func (a *Array) recScanStep(s *recoveryScan) bool {
	slot := -1
	for i := 0; i < len(s.cur); i++ {
		cand := (s.slot + i) % len(s.cur)
		if s.cur[cand].n < a.slotChunks(cand) {
			slot = cand
			break
		}
	}
	if slot < 0 {
		return false
	}
	cur := &s.cur[slot]
	g := int64(a.opts.Config.Positions())
	chunk := int64(slot%a.opts.Config.Positions()) + cur.n*g
	rep := cur.rep
	cur.rep++
	if cur.rep >= a.opts.Config.Dr {
		cur.rep = 0
		cur.n++
	}
	s.slot = (slot + 1) % len(s.cur)
	s.nextAt += a.recScanInterval(chunk)
	d := a.drives[slot]
	if d.failed || d.unreadable(chunk) {
		return true // gone or awaiting rebuild; nothing to reconcile here
	}
	a.recCtr.Scanned++
	if a.condemnWrong(d, chunk, rep, originRecovery) {
		a.recCtr.DivergentFound++
		if a.obsRec != nil {
			a.obsRec.RecoveryDivergent++
		}
		return true
	}
	// A copy condemned before the crash lost its queued repair with the
	// power: re-queue it, or it would wait for a verified read to stumble
	// over it again.
	if st := d.integ[chunk]; st != nil && st.bad[rep] == badKnown && !a.repairPending(d, chunk, rep) {
		a.recCtr.DivergentFound++
		if a.obsRec != nil {
			a.obsRec.RecoveryDivergent++
		}
		a.queueRepair(d, chunk, rep, originRecovery)
	}
	return true
}

// recScanInterval is the pacing one chunk's metadata visit earns at the
// scan bandwidth.
func (a *Array) recScanInterval(c int64) des.Time {
	unit := int64(a.lay.StripeUnit())
	count := unit
	if rest := a.lay.DataSectors() - c*unit; rest < count {
		count = rest
	}
	return des.Time(float64(count*disk.SectorSize) / a.recScan.mbps)
}

// repairPending reports whether an in-place repair of (d, chunk, replica)
// is already queued in the drive's delayed queue.
func (a *Array) repairPending(d *drive, chunk int64, replica int) bool {
	for _, c := range d.delayed {
		if c.repair && c.chunk == chunk && c.replica == replica {
			return true
		}
	}
	return false
}

// RecoveryScanActive reports whether a post-crash divergence scan is still
// running.
func (a *Array) RecoveryScanActive() bool {
	return a.recScan != nil && !a.recScan.done
}
