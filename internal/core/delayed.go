package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"

	"repro/internal/bus"
	"repro/internal/des"
	"repro/internal/disk"
	"repro/internal/layout"
	"repro/internal/sched"
)

// chunkState tracks, per (drive, chunk), how many pending propagations
// leave each rotational replica stale. Reads may only use replicas with a
// zero stale count.
type chunkState struct {
	staleCount []int
	next       *chunkState // free list (see pool.go)
}

func (cs *chunkState) allZero() bool {
	for _, c := range cs.staleCount {
		if c != 0 {
			return false
		}
	}
	return true
}

// freshMask returns the per-replica freshness of a chunk on a drive, or
// nil when everything is fresh (the common case, avoiding allocation).
func (a *Array) freshMask(d *drive, chunk int64) []bool {
	cs := d.stale[chunk]
	if cs == nil {
		return nil
	}
	mask := make([]bool, a.opts.Config.Dr)
	for j := range mask {
		mask[j] = cs.staleCount[j] == 0
	}
	return mask
}

func (a *Array) markStale(d *drive, chunk int64, replica int) {
	cs := d.stale[chunk]
	if cs == nil {
		cs = a.getChunkState()
		d.stale[chunk] = cs
	}
	cs.staleCount[replica]++
}

func (a *Array) clearStale(d *drive, chunk int64, replica int) {
	cs := d.stale[chunk]
	if cs == nil {
		panic("core: clearing staleness that was never set")
	}
	cs.staleCount[replica]--
	if cs.staleCount[replica] < 0 {
		panic("core: negative stale count")
	}
	if cs.allZero() {
		delete(d.stale, chunk)
		a.putChunkState(cs)
	}
}

// propEntry is one NVRAM metadata-table entry: a completed first write
// whose remaining copies are still propagating. Only the location of the
// first write needs to persist (Section 3.4), so entries are tiny.
type propEntry struct {
	remaining int
	// tracked entries occupy NVRAM table space; rebuild reconstruction
	// entries do not (their state is recomputable from the chunk list).
	tracked bool
	// onAllDone fires when the last copy resolves (rebuild uses it to
	// advance to the next chunk).
	onAllDone func()

	free bool       // on the free list (see pool.go)
	next *propEntry //
}

// delayedCopy is one pending replica propagation on one drive.
type delayedCopy struct {
	entry   *propEntry
	replica int
	extents []disk.Extent
	chunk   int64
	off     int64
	count   int
	// rebuild marks reconstruction writes onto a spare: they carry no
	// staleness marks (the chunk is missing outright, a stronger state
	// tracked by drive.missing).
	rebuild bool
	// repair marks an in-place rewrite of a detected-corrupt copy (queued
	// by verify-on-read, the scrubber, or the recovery scan — origin tells
	// them apart for counting). Repairs carry no staleness marks and no
	// NVRAM slot: a crash just loses the intent and the copy is re-detected
	// later.
	repair bool
	origin repairOrigin
	// poison marks a copy whose write content is garbage (an unverified
	// rebuild faithfully copying a corrupt source): landing it poisons the
	// destination instead of refreshing it.
	poison bool
	// ver is the content version the copy carries (0 when the integrity
	// oracle is off).
	ver uint64

	free bool         // on the free list (see pool.go)
	next *delayedCopy //
}

// gateWaiter is one deferred write parked behind a chunk's write gate. ur
// is non-nil for user writes, so a crash can fail the waiter with
// ErrCrashed instead of running it; rebuild's chunk-start waiters leave it
// nil (the crash teardown cancels the rebuild separately).
type gateWaiter struct {
	run func()
	ur  *userRequest
}

// submitWrite routes one write piece. In foreground mode every copy is a
// foreground request and the write completes when all are done (Eq. 7's
// worst case). In delayed mode the first copy is scheduled like a read
// (duplicated across mirrors, any replica) and the rest are set aside in
// per-drive delayed queues.
func (a *Array) submitWrite(ur *userRequest, p *layout.Piece) {
	// One first copy per chunk at a time (see Array.writeGate). In
	// foreground mode only a rebuild ever holds the gate (reconstruction
	// must not interleave with a write of the same chunk); foreground
	// writes queue behind it but never acquire it themselves.
	if waiting, gated := a.writeGate[p.Chunk]; gated {
		a.writeGate[p.Chunk] = append(waiting, gateWaiter{
			run: func() { a.submitWriteGated(ur, p) },
			ur:  ur,
		})
		return
	}
	if !a.opts.ForegroundWrites {
		a.writeGate[p.Chunk] = nil
	}
	a.submitWriteGated(ur, p)
}

// releaseWriteGate runs the next deferred write of the chunk, or closes
// the gate.
func (a *Array) releaseWriteGate(chunk int64) {
	waiting, gated := a.writeGate[chunk]
	if !gated {
		panic("core: releasing an open write gate")
	}
	if a.opts.ForegroundWrites {
		// Only rebuild holds gates in this mode and foreground writes do
		// not re-acquire, so flush every waiter at once.
		delete(a.writeGate, chunk)
		for _, w := range waiting {
			w.run()
		}
		return
	}
	if len(waiting) == 0 {
		delete(a.writeGate, chunk)
		return
	}
	next := waiting[0]
	a.writeGate[chunk] = waiting[1:]
	next.run()
}

func (a *Array) submitWriteGated(ur *userRequest, p *layout.Piece) {
	live := p.Mirrors[:0:0]
	for _, id := range p.Mirrors {
		d := a.drives[id]
		// A rebuilding spare takes no writes for chunks it has not
		// reconstructed: a partial write into a missing chunk would leave
		// it half-built. The reconstruction copies the surviving mirror —
		// including this write — when it reaches the chunk.
		if !d.failed && !d.unreadable(p.Chunk) {
			live = append(live, id)
		}
	}
	if len(live) == 0 {
		// No surviving copy can take the data.
		if _, gated := a.writeGate[p.Chunk]; gated && !a.opts.ForegroundWrites {
			a.releaseWriteGate(p.Chunk)
		}
		ur.pieceFailed(fmt.Errorf("%w: write of chunk %d", ErrDataLost, p.Chunk))
		return
	}
	if a.opts.ForegroundWrites {
		fg := a.getFG()
		if a.integrity {
			fg.ver = a.nextVersion()
		}
		fg.ur = ur
		fg.chunk = p.Chunk
		fg.covers = a.coversChunk(p.Chunk, p.Off, p.Count)
		fg.left = len(live) * a.opts.Config.Dr
		for _, id := range live {
			d := a.drives[id]
			for j := 0; j < a.opts.Config.Dr; j++ {
				pr := a.getReq()
				req := &pr.req
				req.ID = a.nextID()
				req.Write = true
				req.Arrive = a.sim.Now()
				req.Replicas = fillReplicas1(pr, p.Replicas[j])
				pr.tag.kind = tagFGWrite
				pr.tag.d = d
				pr.tag.rep = j
				pr.tag.fg = fg
				a.enqueue(d, req)
			}
		}
		return
	}

	// Delayed mode: first write duplicated across mirror disks; the
	// scheduler on whichever drive claims it picks the cheapest replica.
	g := &dupGroup{}
	if len(live) == 1 {
		g = nil
	}
	for _, id := range live {
		d := a.drives[id]
		pr := a.getReq()
		req := &pr.req
		req.ID = a.nextID()
		req.Write = true
		req.Arrive = a.sim.Now()
		req.Replicas = fillReplicas(pr, p)
		// Evaluated live at scheduling time (see reqTag.allowedFresh).
		req.AllowedFn = pr.allowedFn
		pr.tag.kind = tagFirstWrite
		pr.tag.group = g
		pr.tag.d = d
		pr.tag.ur = ur
		pr.tag.p = p
		if g != nil {
			g.members = append(g.members, dupMember{d, req})
		} else {
			a.enqueue(d, req)
		}
	}
	if g != nil {
		for _, m := range g.members {
			m.d.queue = append(m.d.queue, m.req)
		}
		for _, m := range g.members {
			if g.claimed {
				break
			}
			a.kick(m.d)
		}
	}
}

// registerPropagation records the copies still owed after the first write
// of a piece landed on drive first at replica chosen, coalescing against
// still-pending updates of the same range (data that dies young never hits
// the platter twice).
func (a *Array) registerPropagation(p *layout.Piece, first *drive, chosen int, last bus.Completion) {
	if first.failed {
		// The first copy landed on a drive that fail-stopped before its
		// completion was processed: the new data is gone. Leave the
		// surviving copies fresh with the pre-write contents rather than
		// marking them stale against an unreadable source.
		return
	}
	var ver uint64
	if a.integrity {
		ver = a.nextVersion()
		a.noteCopyWritten(first, p.Chunk, chosen, ver, a.coversChunk(p.Chunk, p.Off, p.Count), last)
	}
	entry := a.getEntry()
	entry.tracked = true
	touched := a.touched[:0]
	for _, id := range p.Mirrors {
		d := a.drives[id]
		if d.failed || d.unreadable(p.Chunk) {
			// No propagation into a missing chunk: rebuild will copy the
			// whole chunk (including this write) from a fresh mirror.
			continue
		}
		for j := 0; j < a.opts.Config.Dr; j++ {
			if d == first && j == chosen {
				continue
			}
			if !a.opts.DisableCoalescing {
				a.coalesce(d, p.Chunk, p.Off, p.Count, j)
			}
			c := a.getCopy()
			c.entry = entry
			c.replica = j
			c.extents = p.Replicas[j]
			c.chunk = p.Chunk
			c.off = p.Off
			c.count = p.Count
			c.ver = ver
			d.delayed = append(d.delayed, c)
			a.markStale(d, p.Chunk, j)
			entry.remaining++
		}
		touched = append(touched, d)
	}
	a.touched = touched
	// Delayed-mode writes acknowledge after the first copy: that is the
	// commit point, and every pending copy above (stale until it lands)
	// carries the committed version it will refresh to.
	if a.integrity {
		a.commitVersion(p.Chunk, ver)
	}
	if entry.remaining > 0 {
		a.nvramUsed++
		if a.obsRec != nil {
			a.obsRec.NVRAM.Set(int64(a.nvramUsed))
		}
	} else {
		// Every mirror was failed or missing: nothing to propagate.
		a.putEntry(entry)
	}
	if a.nvramUsed >= a.nvramCap {
		a.forceDelayed(a.nvramCap / 10)
	}
	for _, d := range touched {
		a.kick(d)
	}
}

// coalesce discards still-queued propagations the new write fully covers:
// data that dies young never reaches the platter twice (Section 3.4).
func (a *Array) coalesce(d *drive, chunk, off int64, count, replica int) {
	kept := d.delayed[:0]
	for _, c := range d.delayed {
		// Rebuild and repair copies are not propagations: they hold no
		// staleness mark and must land regardless of newer writes (a repair
		// landing after a newer write is harmless — versions only move
		// forward).
		if !c.rebuild && !c.repair && c.chunk == chunk && c.replica == replica &&
			off <= c.off && off+int64(count) >= c.off+int64(c.count) {
			a.clearStale(d, chunk, replica)
			a.copyEntryDone(c.entry)
			a.putCopy(c)
			continue
		}
		kept = append(kept, c)
	}
	d.delayed = kept
}

func (a *Array) copyEntryDone(e *propEntry) {
	e.remaining--
	if e.remaining < 0 {
		panic("core: propagation entry over-completed")
	}
	if e.remaining == 0 {
		if e.tracked {
			a.nvramUsed--
			if a.obsRec != nil {
				a.obsRec.NVRAM.Set(int64(a.nvramUsed))
			}
		}
		if e.onAllDone != nil {
			e.onAllDone()
		}
		a.putEntry(e)
	}
}

// dispatchDelayed services the cheapest of the oldest pending copies when
// the drive has no foreground work.
func (a *Array) dispatchDelayed(d *drive) {
	window := len(d.delayed)
	if window > 8 {
		window = 8
	}
	bestI := -1
	bestT := des.Time(math.Inf(1))
	for i := 0; i < window; i++ {
		c := d.delayed[i]
		e := c.extents[0]
		t := d.est.Access(d.bus.ArmState(), disk.Request{Start: e.Start, Count: e.Count, Write: true}, a.sim.Now())
		if t < bestT {
			bestI, bestT = i, t
		}
	}
	c := d.delayed[bestI]
	d.delayed = append(d.delayed[:bestI], d.delayed[bestI+1:]...)
	pr := a.getReq()
	req := &pr.req
	req.ID = a.nextID()
	req.Write = true
	req.Arrive = a.sim.Now()
	r := a.startRun(d, req, c.extents)
	r.kind = runDelayed
	r.dc = c
	r.pr = pr
	r.start = a.sim.Now()
	a.submitExtent(r)
}

// finishCopy resolves one delayed copy: clean means the write landed on a
// drive that is still alive. Propagation copies release their staleness
// mark; repair copies resolve their counters; and when the oracle is on, a
// landed copy refreshes (or, carrying poisoned content, corrupts) its
// ground truth.
func (a *Array) finishCopy(d *drive, c *delayedCopy, clean bool, last bus.Completion) {
	switch {
	case c.repair:
		a.noteRepairEnd(c.origin, clean && !d.failed)
	case c.rebuild:
		// Reconstruction copies never marked staleness.
	default:
		a.clearStale(d, c.chunk, c.replica)
	}
	if clean && a.integrity {
		if c.poison {
			a.poisonCopy(d, c.chunk, c.replica)
		} else {
			a.noteCopyWritten(d, c.chunk, c.replica, c.ver, a.coversChunk(c.chunk, c.off, c.count), last)
		}
	}
	a.copyEntryDone(c.entry)
}

// forceDelayed moves up to n pending copies (oldest first, spread over all
// drives) into the foreground queues — the paper's response to a filling
// metadata table.
func (a *Array) forceDelayed(n int) {
	if n < 1 {
		n = 1
	}
	moved := 0
	for moved < n {
		progress := false
		for _, d := range a.drives {
			if len(d.delayed) == 0 {
				continue
			}
			c := d.delayed[0]
			d.delayed = d.delayed[1:]
			a.promoteCopy(d, c)
			moved++
			progress = true
			if moved >= n {
				break
			}
		}
		if !progress {
			break
		}
	}
	a.ForcedDelayed += int64(moved)
}

// promoteCopy turns a delayed copy into a foreground write request.
func (a *Array) promoteCopy(d *drive, c *delayedCopy) {
	pr := a.getReq()
	req := &pr.req
	req.ID = a.nextID()
	req.Write = true
	req.Arrive = a.sim.Now()
	req.Replicas = fillReplicas1(pr, c.extents)
	pr.tag.kind = tagPromote
	pr.tag.d = d
	pr.tag.dc = c
	a.enqueue(d, req)
}

// RecoverDelayed replays the metadata table after a simulated crash: every
// pending copy is reissued as a foreground write, exactly what the
// prototype's NVRAM recovery did. It returns the number of copies
// reissued.
func (a *Array) RecoverDelayed() int {
	total := 0
	for _, d := range a.drives {
		pending := d.delayed
		d.delayed = nil
		for _, c := range pending {
			a.promoteCopy(d, c)
			total++
		}
	}
	return total
}

// Idle reports whether the array has no queued, in-flight, or delayed
// work. An active rebuild counts as work even between paced chunks, and so
// does a running scrub pass, so Drain waits for both to finish.
func (a *Array) Idle() bool {
	if a.crashed {
		// A powered-off array is waiting for recovery, not idle: Drain must
		// run through a scheduled Recover rather than stopping at the outage.
		return false
	}
	if a.rebuild != nil {
		return false
	}
	if a.scrub != nil && !a.scrub.done {
		return false
	}
	if a.recScan != nil && !a.recScan.done {
		return false
	}
	for _, d := range a.drives {
		if d.bus.Busy() || len(d.queue) > 0 || len(d.delayed) > 0 {
			return false
		}
	}
	return true
}

// Drain runs the simulation until the array is idle (bounded by maxTime to
// catch livelock in tests).
func (a *Array) Drain(maxTime des.Time) bool {
	deadline := a.sim.Now() + maxTime
	for !a.Idle() {
		if !a.sim.Step() || a.sim.Now() > deadline {
			return a.Idle()
		}
	}
	return true
}

// nvramEntry is the serialized form of one pending replica propagation:
// the logical range plus the copy it still owes. The paper's NVRAM table
// holds just enough to finish propagation after a crash ("it is not
// necessary to store a copy of the data itself... the physical location
// of the first write is sufficient"), so entries are a few words each.
type nvramEntry struct {
	Off     int64
	Count   int32
	Disk    int32
	Replica int32
}

// SnapshotNVRAM serializes the delayed-write metadata table, as the
// prototype's battery-backed RAM would preserve it across a crash.
func (a *Array) SnapshotNVRAM() ([]byte, error) {
	var entries []nvramEntry
	for _, d := range a.drives {
		for _, c := range d.delayed {
			if c.rebuild || c.repair {
				// Reconstruction copies are not table entries (a restarted
				// array recomputes them from the missing-chunk set), and
				// repairs hold no NVRAM slot — a crash loses the intent and
				// the corrupt copy is re-detected later.
				continue
			}
			entries = append(entries, nvramEntry{
				Off: c.off, Count: int32(c.count), Disk: int32(d.id), Replica: int32(c.replica),
			})
		}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(entries); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// AdoptNVRAM replays a snapshot taken from a crashed instance of the same
// configuration: every still-owed copy is reissued as a foreground write.
// It returns the number of copies reissued.
func (a *Array) AdoptNVRAM(snapshot []byte) (int, error) {
	var entries []nvramEntry
	if err := gob.NewDecoder(bytes.NewReader(snapshot)).Decode(&entries); err != nil {
		return 0, err
	}
	n := 0
	for _, e := range entries {
		pieces, err := a.lay.Resolve(e.Off, int(e.Count))
		if err != nil {
			return n, fmt.Errorf("core: corrupt NVRAM entry %+v: %v", e, err)
		}
		for i := range pieces {
			p := &pieces[i]
			owed := false
			for _, id := range p.Mirrors {
				if id == int(e.Disk) {
					owed = true
				}
			}
			if !owed || e.Replica < 0 || int(e.Replica) >= len(p.Replicas) {
				return n, fmt.Errorf("core: NVRAM entry %+v does not match this layout", e)
			}
			d := a.drives[e.Disk]
			if d.failed {
				continue
			}
			rep := int(e.Replica)
			var ver uint64
			if a.integrity {
				ver = a.nextVersion()
			}
			covers := a.coversChunk(p.Chunk, p.Off, p.Count)
			req := &sched.Request{
				ID:       a.nextID(),
				Write:    true,
				Arrive:   a.sim.Now(),
				Replicas: []sched.Replica{{Extents: p.Replicas[rep]}},
			}
			req.Tag = &reqTag{
				onDone: func(last bus.Completion, _ int) {
					a.noteCopyWritten(d, p.Chunk, rep, ver, covers, last)
				},
				onFail: func() {
					// Recovery writes must land while the drive lives.
					if !d.failed {
						req.Arrive = a.sim.Now()
						a.enqueue(d, req)
					}
				},
			}
			a.enqueue(d, req)
			n++
		}
	}
	return n, nil
}
