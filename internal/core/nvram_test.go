package core

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/des"
	"repro/internal/disk"
	"repro/internal/layout"
)

// pendingWrites fills the delayed-write table and returns once every
// submitted write has completed (propagations still pending).
func pendingWrites(t testing.TB, sim *des.Sim, a *Array, n int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	wrote := 0
	for i := 0; i < n; i++ {
		off := rng.Int63n(a.DataSectors() - 8)
		wrote++
		if err := a.Submit(Write, off, 8, false, func(Result) { wrote-- }); err != nil {
			t.Fatal(err)
		}
	}
	for wrote > 0 {
		if !sim.Step() {
			t.Fatal("stalled")
		}
	}
}

// TestNVRAMSmallCapStaysBounded is the regression test for the
// pressure-eviction clamp: with a table smaller than ten entries the
// original eviction batch (cap/10) rounded to zero, so the table filled
// without ever evicting. The clamp moves at least one entry per pressure
// event, keeping the table pinned near its capacity.
func TestNVRAMSmallCapStaysBounded(t *testing.T) {
	sim, a := newArray(t, layout.SRArray(1, 3), "rsatf", func(o *Options) {
		o.NVRAMEntries = 4
	})
	rng := rand.New(rand.NewSource(17))
	maxUsed := 0
	// One write at a time: with eviction keeping pace, the table tracks
	// the cap. (A burst can still overshoot transiently — promoted copies
	// take time to land — so the steady-state loop is what pins the bug:
	// without the clamp, used never decreases and ends at the write count.)
	for i := 0; i < 120; i++ {
		off := rng.Int63n(a.DataSectors() - 8)
		done := false
		if err := a.Submit(Write, off, 8, false, func(Result) { done = true }); err != nil {
			t.Fatal(err)
		}
		for !done {
			if !sim.Step() {
				t.Fatal("stalled")
			}
			if u := a.NVRAMUsed(); u > maxUsed {
				maxUsed = u
			}
		}
	}
	// The direct regression signal: with the old cap/10 batch size this
	// stayed zero forever at caps below ten.
	if a.ForcedDelayed == 0 {
		t.Fatal("pressure eviction never fired at cap 4")
	}
	// Entries resolve only when every owed copy lands, so the table runs
	// a few entries over cap under steady pressure — but far below the
	// 120 writes it would reach with eviction broken.
	if maxUsed > 20 {
		t.Fatalf("NVRAM table reached %d entries with cap 4", maxUsed)
	}
	if !a.Drain(des.Hour) {
		t.Fatal("drain failed")
	}
	if a.NVRAMUsed() != 0 {
		t.Fatalf("table holds %d entries after drain", a.NVRAMUsed())
	}
}

// encodeEntries builds a snapshot from hand-crafted table entries.
func encodeEntries(t testing.TB, entries []nvramEntry) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(entries); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestAdoptNVRAMErrorPaths: corrupt bytes, entries that resolve outside
// the volume, and entries that contradict the adopting layout are all
// rejected with the partial reissue count.
func TestAdoptNVRAMErrorPaths(t *testing.T) {
	_, a := newArray(t, layout.RAID10(4), "satf", nil)

	// Truncated/corrupt gob stream.
	if _, err := a.AdoptNVRAM([]byte{0x42, 0x00, 0x13}); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}

	// An entry beyond the volume fails Resolve.
	snap := encodeEntries(t, []nvramEntry{{Off: a.DataSectors() + 512, Count: 8, Disk: 0, Replica: 0}})
	if _, err := a.AdoptNVRAM(snap); err == nil || !strings.Contains(err.Error(), "corrupt NVRAM entry") {
		t.Fatalf("out-of-volume entry: err = %v", err)
	}

	// A drive that does not mirror the range (layout mismatch — snapshot
	// from a different configuration).
	snap = encodeEntries(t, []nvramEntry{{Off: 0, Count: 8, Disk: 3, Replica: 0}})
	if _, err := a.AdoptNVRAM(snap); err == nil || !strings.Contains(err.Error(), "does not match this layout") {
		t.Fatalf("wrong-drive entry: err = %v", err)
	}

	// A replica index beyond the configuration's Dr.
	snap = encodeEntries(t, []nvramEntry{{Off: 0, Count: 8, Disk: 0, Replica: 7}})
	if _, err := a.AdoptNVRAM(snap); err == nil || !strings.Contains(err.Error(), "does not match this layout") {
		t.Fatalf("out-of-range replica: err = %v", err)
	}

	// Partial progress: one good entry before the bad one is reissued and
	// reported even though the adopt errors.
	good := nvramEntry{Off: 0, Count: 8, Disk: 0, Replica: 0}
	bad := nvramEntry{Off: 0, Count: 8, Disk: 3, Replica: 0}
	n, err := a.AdoptNVRAM(encodeEntries(t, []nvramEntry{good, bad}))
	if err == nil {
		t.Fatal("bad entry accepted")
	}
	if n != 1 {
		t.Fatalf("partial adopt reissued %d, want 1", n)
	}
}

// TestAdoptNVRAMSkipsFailedDrives: entries owed to a drive that is already
// fail-stopped in the adopting array are dropped (their data is
// unreachable anyway), and the rest replay.
func TestAdoptNVRAMSkipsFailedDrives(t *testing.T) {
	sim, a := newArray(t, layout.SRArray(1, 3), "rsatf", nil)
	pendingWrites(t, sim, a, 15, 13)
	if a.NVRAMUsed() == 0 {
		t.Skip("propagation outran the crash point")
	}
	snap, err := a.SnapshotNVRAM()
	if err != nil {
		t.Fatal(err)
	}
	var entries []nvramEntry
	if err := gob.NewDecoder(bytes.NewReader(snap)).Decode(&entries); err != nil {
		t.Fatal(err)
	}

	_, b := newArray(t, layout.SRArray(1, 3), "rsatf", nil)
	if err := b.FailDrive(0); err != nil {
		t.Fatal(err)
	}
	onFailed := 0
	for _, e := range entries {
		if e.Disk == 0 {
			onFailed++
		}
	}
	n, err := b.AdoptNVRAM(snap)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(entries)-onFailed {
		t.Fatalf("adopted %d of %d entries with %d on the failed drive", n, len(entries), onFailed)
	}
	if !b.Drain(des.Hour) {
		t.Fatal("drain failed")
	}
}

// TestNVRAMRoundTripUnderFaults: the full crash story with fault injection
// active on both sides — fill the table under transient faults and
// timeouts, snapshot, adopt into a reboot of the same configuration (same
// fault model), replay, and drain clean. RecoverDelayed on the crashed
// array reissues exactly the copies the snapshot recorded.
func TestNVRAMRoundTripUnderFaults(t *testing.T) {
	faults := disk.FaultModel{TransientRate: 0.2, TimeoutRate: 0.05, TimeoutDelay: des.Millisecond}
	mkArray := func() (*des.Sim, *Array) {
		return newArray(t, layout.SRArray(1, 3), "rsatf", func(o *Options) {
			o.Faults = faults
		})
	}
	sim, a := mkArray()
	pendingWrites(t, sim, a, 20, 23)
	if a.NVRAMUsed() == 0 {
		t.Skip("propagation outran the crash point")
	}
	snap, err := a.SnapshotNVRAM()
	if err != nil {
		t.Fatal(err)
	}
	var entries []nvramEntry
	if err := gob.NewDecoder(bytes.NewReader(snap)).Decode(&entries); err != nil {
		t.Fatal(err)
	}

	// The crashed instance itself can also replay its table in place.
	if got := a.RecoverDelayed(); got != len(entries) {
		t.Fatalf("RecoverDelayed reissued %d, snapshot recorded %d", got, len(entries))
	}
	if !a.Drain(des.Hour) {
		t.Fatal("crashed instance failed to drain after recovery")
	}

	// "Reboot": adopt into a fresh array with the same fault model.
	_, b := mkArray()
	n, err := b.AdoptNVRAM(snap)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(entries) {
		t.Fatalf("adopted %d of %d entries", n, len(entries))
	}
	if !b.Drain(des.Hour) {
		t.Fatal("rebooted array failed to drain; recovery writes must retry through faults")
	}
	if b.Faults().Transients == 0 && b.Faults().Timeouts == 0 {
		t.Log("note: no faults hit the recovery writes (rates are probabilistic)")
	}
	var cmds int64
	for i := 0; i < b.Disks(); i++ {
		cmds += b.Commands(i)
	}
	if cmds < int64(n) {
		t.Fatalf("rebooted array executed %d commands for %d owed copies", cmds, n)
	}
}
