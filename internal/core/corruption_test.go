package core

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"testing"

	"repro/internal/des"
	"repro/internal/disk"
	"repro/internal/layout"
	"repro/internal/obs"
)

// scrubCopies returns how many chunk copies one full scrub pass visits.
func scrubCopies(a *Array) int64 {
	var total int64
	for slot := range a.drives {
		total += a.slotChunks(slot) * int64(a.opts.Config.Dr)
	}
	return total
}

// TestScrubRepairsInjected: a single scrub pass over a pre-poisoned array
// visits every chunk copy, condemns exactly the poisoned ones, and repairs
// them all in place. Step accounting must be exact: every cursor step ends
// in exactly one of Verified/Corrupt/Skipped/Faulted, with source-read
// detections as the only extras.
func TestScrubRepairsInjected(t *testing.T) {
	sim, a := newArray(t, layout.RAID10(4), "rsatf", func(o *Options) {
		o.DataSectors = 1 << 16
	})
	injected := a.InjectCorruption(24, 5)
	if injected != 24 {
		t.Fatalf("injected %d of 24", injected)
	}
	if got := a.CorruptCopies(); got != injected {
		t.Fatalf("oracle holds %d corrupt copies after injecting %d", got, injected)
	}
	if err := a.StartScrub(ScrubOptions{MBps: 64}); err != nil {
		t.Fatal(err)
	}
	if p := a.ScrubProgress(); !p.Active || p.Pass != 1 {
		t.Fatalf("progress %+v after start", p)
	}
	_ = sim
	if !a.Drain(des.Hour) {
		t.Fatal("drain failed")
	}
	sc := a.ScrubCounters()
	if sc.Passes != 1 {
		t.Fatalf("passes = %d, want 1", sc.Passes)
	}
	if a.ScrubProgress().Active {
		t.Fatal("progress still active after the pass retired")
	}
	steps := scrubCopies(a)
	if sum := sc.Verified + sc.Corrupt + sc.Skipped + sc.Faulted; sum < steps {
		t.Fatalf("step accounting lost ground: %d of %d steps accounted (%+v)", sum, steps, sc)
	}
	if sc.Verified+sc.Skipped > steps {
		t.Fatalf("more clean steps than steps exist: %+v over %d", sc, steps)
	}
	if sc.Corrupt < int64(injected) {
		t.Fatalf("scrub condemned %d of %d injected copies", sc.Corrupt, injected)
	}
	if sc.RepairsQueued != sc.Repaired+sc.RepairsDropped {
		t.Fatalf("repairs do not reconcile after drain: %+v", sc)
	}
	if sc.Unrepairable != 0 {
		t.Fatalf("unrepairable = %d with clean mirrors present", sc.Unrepairable)
	}
	if got := a.CorruptCopies(); got != 0 {
		t.Fatalf("%d corrupt copies survive a full scrub pass", got)
	}
	// A second run may start once the first retired.
	if err := a.StartScrub(ScrubOptions{MBps: 64}); err != nil {
		t.Fatalf("restart after retire: %v", err)
	}
	if !a.Drain(des.Hour) {
		t.Fatal("second pass failed to drain")
	}
	if got := a.ScrubCounters().Passes; got != 2 {
		t.Fatalf("cumulative passes = %d, want 2", got)
	}
}

// TestSilentVsVerifiedExposure: with every copy of the volume poisoned, an
// unverified read hands garbage to the caller and only SilentReads notices;
// a verified read refuses — it condemns copy after copy and fails with
// ErrCorruptData instead of returning wrong data.
func TestSilentVsVerifiedExposure(t *testing.T) {
	run := func(verify bool) (*Array, Result) {
		sim, a := newArray(t, layout.Mirror(2), "satf", func(o *Options) {
			o.DataSectors = 1 << 12
			o.VerifyReads = verify
		})
		// Poison everything: 2 drives x chunks x 1 replica.
		want := int(scrubCopies(a))
		if got := a.InjectCorruption(want, 9); got != want {
			t.Fatalf("poisoned %d of %d copies", got, want)
		}
		var res Result
		done := false
		if err := a.Submit(Read, 0, 8, false, func(r Result) { res = r; done = true }); err != nil {
			t.Fatal(err)
		}
		for !done {
			if !sim.Step() {
				t.Fatal("stalled")
			}
		}
		if !a.Drain(des.Hour) {
			t.Fatal("drain failed")
		}
		return a, res
	}

	a, res := run(false)
	if res.Failed {
		t.Fatalf("unverified read failed: %v", res.Err)
	}
	if got := a.Faults().SilentReads; got == 0 {
		t.Fatal("corrupt data reached the caller without a SilentReads count")
	}
	if a.Faults().VerifyDetected != 0 {
		t.Fatal("verification fired with VerifyReads off")
	}

	a, res = run(true)
	if !res.Failed || !errors.Is(res.Err, ErrCorruptData) {
		t.Fatalf("verified read of an all-poisoned chunk: failed=%v err=%v", res.Failed, res.Err)
	}
	fc := a.Faults()
	if fc.SilentReads != 0 {
		t.Fatalf("SilentReads = %d with verification on", fc.SilentReads)
	}
	if fc.VerifyDetected == 0 {
		t.Fatal("verification never fired")
	}
	if fc.Unrepairable == 0 {
		t.Fatal("condemning the last copy was not counted unrepairable")
	}
}

// TestLatentRateStreamEndToEnd: latent errors drawn from the per-drive
// corruption stream are poisoned, detected by verify-on-read, failed over,
// and repaired in place — no corrupt data reaches the caller and the
// oracle ends clean.
func TestLatentRateStreamEndToEnd(t *testing.T) {
	sim, a := newArray(t, layout.RAID10(4), "rsatf", func(o *Options) {
		o.DataSectors = 1 << 15
		o.Faults = disk.FaultModel{LatentRate: 0.03}
		o.VerifyReads = true
	})
	served, failed := closedLoopReads(t, sim, a, 600, 4, 21)
	if failed != 0 || served != 600 {
		t.Fatalf("served %d failed %d; mirrored reads must fail over around latent errors", served, failed)
	}
	if !a.Drain(des.Hour) {
		t.Fatal("drain failed")
	}
	fc := a.Faults()
	if fc.LatentErrors == 0 {
		t.Fatal("latent stream never drew at 3%")
	}
	if fc.VerifyDetected == 0 {
		t.Fatal("verification never fired")
	}
	if fc.SilentReads != 0 {
		t.Fatalf("SilentReads = %d with verification on", fc.SilentReads)
	}
	if fc.RepairsQueued == 0 || fc.RepairsQueued != fc.RepairsDone+fc.RepairsDropped {
		t.Fatalf("read repairs do not reconcile: %+v", fc)
	}
	if got := a.CorruptCopies(); got != 0 {
		t.Fatalf("%d poisoned copies left after verified reads repaired them", got)
	}
}

// TestTornWritesPoisonAndScrubCleans: torn-write draws report success onto
// garbage; the oracle records the poison, and a scrub pass afterwards
// finds and repairs it from the clean mirror copies.
func TestTornWritesPoisonAndScrubCleans(t *testing.T) {
	sim, a := newArray(t, layout.Mirror(2), "satf", func(o *Options) {
		o.DataSectors = 1 << 14
		o.Faults = disk.FaultModel{TornRate: 0.05}
		o.ForegroundWrites = true
	})
	pendingWrites(t, sim, a, 120, 31)
	if !a.Drain(des.Hour) {
		t.Fatal("drain failed")
	}
	fc := a.Faults()
	if fc.TornWrites == 0 {
		t.Fatal("torn stream never drew at 5%")
	}
	poisoned := a.CorruptCopies()
	if poisoned == 0 {
		t.Fatal("torn writes left no poison in the oracle")
	}
	if err := a.StartScrub(ScrubOptions{MBps: 64}); err != nil {
		t.Fatal(err)
	}
	if !a.Drain(des.Hour) {
		t.Fatal("scrub failed to drain")
	}
	sc := a.ScrubCounters()
	if sc.Corrupt == 0 {
		t.Fatal("scrub found none of the torn copies")
	}
	if sc.Repaired == 0 {
		t.Fatalf("scrub repaired none of the torn copies: %+v", sc)
	}
	// Repair writes draw from the same torn stream, so a repair can itself
	// tear and re-poison — the pass must still strictly shrink the
	// population.
	if got := a.CorruptCopies(); got >= poisoned {
		t.Fatalf("%d poisoned copies after the pass, started with %d", got, poisoned)
	}
}

// TestHedgeFaultReconcile is the hedge x fault-injection regression: with
// hedged reads racing over a fail-slow drive while transient faults and
// timeouts fire on every drive, the hedge lifecycle must still reconcile
// exactly (Issued == Won + Lost + Cancelled), the obs recorder must mirror
// the array counters, per-drive fault attribution must sum to the global
// FaultCounters, and every dispatched hedge must appear in the trace
// stream exactly once — as a clean completion or a faulted run.
func TestHedgeFaultReconcile(t *testing.T) {
	reg := &obs.Registry{TraceCap: 1 << 16}
	sim, a := newArray(t, layout.RAID10(4), "rsatf", func(o *Options) {
		o.DataSectors = 1 << 15
		o.Faults = disk.FaultModel{
			TransientRate: 0.08,
			TimeoutRate:   0.04,
			TimeoutDelay:  des.Millisecond,
			Slow:          map[int]disk.SlowProfile{0: {Factor: 8}},
		}
		o.Hedge = true
		o.HedgeAfter = 10 * des.Millisecond
		o.Obs = reg
		o.ObsLabel = "hedge-fault-reconcile"
	})
	served, failed := closedLoopReads(t, sim, a, 800, 4, 11)
	if failed != 0 || served != 800 {
		t.Fatalf("served %d failed %d; mirrored reads must survive transient faults", served, failed)
	}
	if !a.Drain(des.Hour) {
		t.Fatal("drain failed")
	}

	h := a.Hedges()
	fc := a.Faults()
	if h.Issued == 0 || h.Won == 0 {
		t.Fatalf("hedging did not engage: %+v", h)
	}
	if fc.Transients == 0 || fc.Timeouts == 0 {
		t.Fatalf("fault injection did not engage: %+v", fc)
	}
	if h.Issued != h.Won+h.Lost+h.Cancelled {
		t.Fatalf("hedge counters do not reconcile: %+v", h)
	}
	rec := a.Obs()
	if rec.HedgesIssued != h.Issued || rec.HedgesWon != h.Won ||
		rec.HedgesLost != h.Lost || rec.HedgesCancelled != h.Cancelled {
		t.Fatalf("obs hedge counters %d/%d/%d/%d != array %+v",
			rec.HedgesIssued, rec.HedgesWon, rec.HedgesLost, rec.HedgesCancelled, h)
	}

	// Per-drive fault attribution sums back to the global counters.
	var transients, timeouts, retries, failovers, cleanHedge int64
	for i := 0; i < rec.Drives(); i++ {
		d := rec.Drive(i)
		transients += d.Transients
		timeouts += d.Timeouts
		retries += d.Retries
		failovers += d.Failovers
		cleanHedge += d.Service[obs.Hedge][obs.OpRead].Count
	}
	if transients != fc.Transients || timeouts != fc.Timeouts ||
		retries != fc.Retries || failovers != fc.Failovers {
		t.Fatalf("per-drive faults %d/%d/%d/%d != global %+v",
			transients, timeouts, retries, failovers, fc)
	}

	// Every dispatched hedge (Issued - Cancelled = Won + Lost) terminates
	// in exactly one trace record: clean Done or FaultedRun.
	var buf bytes.Buffer
	if err := reg.WriteTraceJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	var hedgeClean, hedgeFaulted int64
	scan := bufio.NewScanner(&buf)
	scan.Buffer(make([]byte, 1<<20), 1<<20)
	for scan.Scan() {
		var tr obs.TraceRecord
		if err := json.Unmarshal(scan.Bytes(), &tr); err != nil {
			t.Fatal(err)
		}
		if tr.Class != "hedge" {
			continue
		}
		if tr.Fault != "" {
			hedgeFaulted++
		} else {
			hedgeClean++
		}
	}
	if err := scan.Err(); err != nil {
		t.Fatal(err)
	}
	if hedgeClean != cleanHedge {
		t.Fatalf("clean hedge traces %d != hedge-class histogram count %d", hedgeClean, cleanHedge)
	}
	if hedgeClean+hedgeFaulted != h.Won+h.Lost {
		t.Fatalf("hedge dispatches in trace %d+%d != won %d + lost %d",
			hedgeClean, hedgeFaulted, h.Won, h.Lost)
	}
}

// TestScrubRebuildEvictionCompose is the three-subsystem composition
// regression: a scrub is mid-pass over a pre-poisoned array when the
// health tracker evicts the fail-slow drive into a hot spare. The scrub
// must neither strand its cursors (both passes finish, every step
// accounted) nor double-count, the rebuild must complete, and the poison
// that survives on live drives must end repaired.
func TestScrubRebuildEvictionCompose(t *testing.T) {
	sim, a := newArray(t, layout.RAID10(4), "rsatf", func(o *Options) {
		o.DataSectors = 1 << 16
		o.Spares = 1
		o.RebuildMBps = 100
		o.Faults = slowDrive0()
		o.Health = HealthOptions{Enabled: true, MinSamples: 16, Alpha: 0.25, EvictRatio: 2.5, EvictFaults: -1}
		o.VerifyReads = true
	})
	injected := a.InjectCorruption(24, 7)
	if injected != 24 {
		t.Fatalf("injected %d of 24", injected)
	}
	if err := a.StartScrub(ScrubOptions{MBps: 8, Passes: 2}); err != nil {
		t.Fatal(err)
	}
	served, failed := closedLoopReads(t, sim, a, 600, 4, 9)
	if served+failed != 600 {
		t.Fatalf("served %d failed %d of 600", served, failed)
	}
	// A handful of failures is the contract working: mid-rebuild, a
	// poisoned survivor whose mirror has not reached the spare yet has no
	// clean copy, and a verified read must fail rather than return garbage.
	if failed > 10 {
		t.Fatalf("%d of 600 reads failed; expected only the brief rebuild window to refuse", failed)
	}
	if fc := a.Faults(); fc.Evictions != 1 {
		t.Fatalf("evictions = %d; the composition needs the eviction mid-scrub", fc.Evictions)
	}
	if !a.Drain(des.Hour) {
		t.Fatal("drain failed")
	}

	fc := a.Faults()
	if fc.RebuildsDone != 1 {
		t.Fatalf("rebuild did not complete: %+v", fc)
	}
	// Some loss is inherent to this composition: a poisoned copy whose
	// only mirror sat on the evicted drive has no clean source left. The
	// invariant is that the loss is *detected* — counted in LostChunks,
	// never served silently — and bounded by the injected population.
	if fc.LostChunks > int64(injected) {
		t.Fatalf("lost %d chunks from %d injections: %+v", fc.LostChunks, injected, fc)
	}
	sc := a.ScrubCounters()
	if sc.Passes != 2 {
		t.Fatalf("passes = %d, want 2; eviction stranded the scan", sc.Passes)
	}
	if a.ScrubProgress().Active {
		t.Fatal("scrub still active after drain")
	}
	steps := 2 * scrubCopies(a)
	if sum := sc.Verified + sc.Corrupt + sc.Skipped + sc.Faulted; sum < steps {
		t.Fatalf("step accounting lost ground across the eviction: %d of %d (%+v)", sum, steps, sc)
	}
	if sc.Verified+sc.Skipped > steps {
		t.Fatalf("double-counted steps: %+v over %d", sc, steps)
	}
	if sc.RepairsQueued != sc.Repaired+sc.RepairsDropped {
		t.Fatalf("scrub repairs do not reconcile: %+v", sc)
	}
	if fc.RepairsQueued != fc.RepairsDone+fc.RepairsDropped {
		t.Fatalf("read repairs do not reconcile: %+v", fc)
	}
	if fc.SilentReads != 0 {
		t.Fatalf("SilentReads = %d with verification on", fc.SilentReads)
	}
	// What poison remains is exactly the condemned-unrepairable residue;
	// every repairable copy was cleaned and nothing silent survives the
	// final scrub pass.
	remaining := a.CorruptCopies()
	if remaining >= injected {
		t.Fatalf("%d of %d poisoned copies survive scrub + rebuild + repair", remaining, injected)
	}
	if remaining > int(fc.Unrepairable) {
		t.Fatalf("%d corrupt copies remain but only %d were condemned unrepairable", remaining, fc.Unrepairable)
	}
}

// TestCorruptionDisabledStaysOff: with no corruption configured the
// integrity oracle never engages — a mixed workload leaves every
// corruption counter zero and allocates no oracle state.
func TestCorruptionDisabledStaysOff(t *testing.T) {
	sim, a := newArray(t, layout.SRArray(2, 3), "rsatf", nil)
	pendingWrites(t, sim, a, 40, 3)
	closedLoopReads(t, sim, a, 200, 4, 3)
	if !a.Drain(des.Hour) {
		t.Fatal("drain failed")
	}
	if a.integrity {
		t.Fatal("integrity oracle engaged with nothing to consult it")
	}
	fc := a.Faults()
	if fc.LatentErrors != 0 || fc.TornWrites != 0 || fc.CorruptReads != 0 ||
		fc.SilentReads != 0 || fc.VerifyDetected != 0 || fc.RepairsQueued != 0 {
		t.Fatalf("corruption counters moved while disabled: %+v", fc)
	}
	if a.ScrubCounters() != (ScrubCounters{}) {
		t.Fatalf("scrub counters moved while disabled: %+v", a.ScrubCounters())
	}
	for _, d := range a.drives {
		if d.integ != nil {
			t.Fatal("oracle state allocated while disabled")
		}
	}
}

// TestCorruptionOptionValidation: the new knobs reject nonsense at
// construction, and StartScrub refuses to double-start.
func TestCorruptionOptionValidation(t *testing.T) {
	bad := []func(*Options){
		func(o *Options) { o.Faults = disk.FaultModel{LatentRate: -0.1} },
		func(o *Options) { o.Faults = disk.FaultModel{CorruptRate: 0.6} },
		func(o *Options) { o.Faults = disk.FaultModel{TornRate: 2} },
		func(o *Options) { o.Faults = disk.FaultModel{LatentRate: 0.5, CorruptRate: 0.45} },
		func(o *Options) { o.Scrub = ScrubOptions{Enabled: true, MBps: -1} },
		func(o *Options) { o.Scrub = ScrubOptions{Enabled: true, Passes: -1} },
	}
	for i, mod := range bad {
		o := Options{Config: layout.RAID10(4), DataSectors: 1 << 15}
		mod(&o)
		if _, err := New(des.New(), o); err == nil {
			t.Errorf("case %d: invalid options accepted", i)
		}
	}
	_, a := newArray(t, layout.RAID10(4), "rsatf", nil)
	if err := a.StartScrub(ScrubOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := a.StartScrub(ScrubOptions{}); err == nil {
		t.Fatal("second concurrent scrub accepted")
	}
}
