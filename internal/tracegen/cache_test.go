package tracegen

import (
	"sync"
	"testing"

	"repro/internal/des"
)

func shortParams(seed int64) Params {
	p := CelloBase(seed)
	p.Duration = 200 * des.Second
	return p
}

func TestGenerateCachedReturnsSameTrace(t *testing.T) {
	ResetCache()
	defer ResetCache()
	p := shortParams(1)
	a := GenerateCached(p)
	b := GenerateCached(p)
	if a != b {
		t.Fatal("identical Params produced distinct cached traces")
	}
	if c := GenerateCached(shortParams(2)); c == a {
		t.Fatal("different seed hit the same cache entry")
	}
}

func TestGenerateCachedMatchesGenerate(t *testing.T) {
	ResetCache()
	defer ResetCache()
	p := shortParams(3)
	got := GenerateCached(p)
	want := Generate(p)
	if len(got.Records) != len(want.Records) {
		t.Fatalf("cached trace has %d records, direct has %d", len(got.Records), len(want.Records))
	}
	for i := range want.Records {
		if got.Records[i] != want.Records[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, got.Records[i], want.Records[i])
		}
	}
}

func TestGenerateCachedSingleFlight(t *testing.T) {
	ResetCache()
	defer ResetCache()
	p := shortParams(4)
	const n = 8
	results := make([]interface{}, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		i := i
		go func() {
			defer wg.Done()
			results[i] = GenerateCached(p)
		}()
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if results[i] != results[0] {
			t.Fatal("concurrent GenerateCached returned distinct traces")
		}
	}
}
