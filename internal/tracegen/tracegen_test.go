package tracegen

import (
	"math"
	"testing"

	"repro/internal/des"
	"repro/internal/trace"
)

// genStats generates a shortened trace and returns its measured
// statistics.
func genStats(t *testing.T, p Params, d des.Time) (Params, trace.Stats) {
	t.Helper()
	p = p.WithDuration(d)
	tr := Generate(p)
	if len(tr.Records) == 0 {
		t.Fatal("empty trace")
	}
	return p, tr.ComputeStats()
}

func relClose(got, want, tol float64) bool {
	if want == 0 {
		return math.Abs(got) < tol
	}
	return math.Abs(got-want)/want <= tol
}

func checkTable3(t *testing.T, name string, p Params, s trace.Stats) {
	t.Helper()
	if !relClose(s.AvgIOPS, p.MeanIOPS, 0.25) {
		t.Errorf("%s: IOPS %.2f, target %.2f", name, s.AvgIOPS, p.MeanIOPS)
	}
	if !relClose(s.ReadFrac, p.ReadFrac, 0.10) {
		t.Errorf("%s: read fraction %.3f, target %.3f", name, s.ReadFrac, p.ReadFrac)
	}
	if p.AsyncFrac > 0 && !relClose(s.AsyncFrac, p.AsyncFrac, 0.20) {
		t.Errorf("%s: async fraction %.3f, target %.3f", name, s.AsyncFrac, p.AsyncFrac)
	}
	if !relClose(s.SeekLocality, p.Locality, 0.30) {
		t.Errorf("%s: seek locality %.2f, target %.2f", name, s.SeekLocality, p.Locality)
	}
	if p.RAWFrac > 0 && !relClose(s.RAWFrac, p.RAWFrac, 0.40) {
		t.Errorf("%s: RAW fraction %.4f, target %.4f", name, s.RAWFrac, p.RAWFrac)
	}
}

func TestCelloBaseMatchesTable3(t *testing.T) {
	p, s := genStats(t, CelloBase(1), 8*des.Hour)
	checkTable3(t, "cello-base", p, s)
}

func TestCelloDisk6MatchesTable3(t *testing.T) {
	p, s := genStats(t, CelloDisk6(2), 8*des.Hour)
	checkTable3(t, "cello-disk6", p, s)
}

func TestTPCCMatchesTable3(t *testing.T) {
	p, s := genStats(t, TPCC(3), 5*des.Minute)
	checkTable3(t, "tpcc", p, s)
}

func TestDeterministicGeneration(t *testing.T) {
	a := Generate(CelloBase(7).WithDuration(des.Hour))
	b := Generate(CelloBase(7).WithDuration(des.Hour))
	if len(a.Records) != len(b.Records) {
		t.Fatal("same seed, different record count")
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("same seed, record %d differs", i)
		}
	}
	c := Generate(CelloBase(8).WithDuration(des.Hour))
	if len(a.Records) == len(c.Records) {
		same := true
		for i := range a.Records {
			if a.Records[i] != c.Records[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traces")
		}
	}
}

func TestRecordsInBoundsAndOrdered(t *testing.T) {
	for _, p := range []Params{CelloBase(4), CelloDisk6(5), TPCC(6)} {
		tr := Generate(p.WithDuration(20 * des.Minute))
		prev := des.Time(-1)
		for i, r := range tr.Records {
			if r.At < prev {
				t.Fatalf("%s: record %d out of order", p.Name, i)
			}
			prev = r.At
			if r.Off < 0 || r.Off+int64(r.Count) > tr.DataSectors {
				t.Fatalf("%s: record %d out of bounds: off=%d count=%d", p.Name, i, r.Off, r.Count)
			}
			if r.Count < 1 {
				t.Fatalf("%s: record %d empty", p.Name, i)
			}
			if r.Async && !r.Write {
				t.Fatalf("%s: async read at %d", p.Name, i)
			}
		}
	}
}

func TestTPCCHasNoAsyncWrites(t *testing.T) {
	tr := Generate(TPCC(9).WithDuration(des.Minute))
	for _, r := range tr.Records {
		if r.Async {
			t.Fatal("TPC-C trace contains an async write")
		}
	}
}

func TestVolumeSizesMatchPaper(t *testing.T) {
	if got := CelloBase(0).DataSectors * 512; got < int64(8.3e9) || got > int64(8.5e9) {
		t.Errorf("cello-base volume %d bytes, want ~8.4GB", got)
	}
	if got := CelloDisk6(0).DataSectors * 512; got < int64(1.25e9) || got > int64(1.35e9) {
		t.Errorf("cello-disk6 volume %d bytes, want ~1.3GB", got)
	}
	if got := TPCC(0).DataSectors * 512; got < int64(8.9e9) || got > int64(9.1e9) {
		t.Errorf("tpcc volume %d bytes, want ~9.0GB", got)
	}
}
