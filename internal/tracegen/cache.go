package tracegen

import (
	"fmt"
	"sync"

	"repro/internal/trace"
)

// The experiments regenerate identical traces many times: every figure that
// replays Cello calls Generate with the same Params, and the fixed-point
// retune inside Generate makes each synthesis cost several full trace
// passes. Traces are immutable after generation (replay and statistics only
// read them; Scale copies), so one synthesis can safely be shared across
// experiments and across worker goroutines.

type cacheEntry struct {
	once sync.Once
	tr   *trace.Trace
}

var (
	cacheMu sync.Mutex
	cache   = map[string]*cacheEntry{}
)

// cacheKey derives a deterministic key from the full parameter set. Params
// contains a slice (Sizes), so it is not directly comparable; the rendered
// form covers every field, including the seed.
func cacheKey(p Params) string { return fmt.Sprintf("%+v", p) }

// GenerateCached returns the trace for p, synthesizing it at most once per
// process. Concurrent callers with the same Params block until the single
// synthesis finishes (per-entry sync.Once), so a parallel sweep does not
// duplicate work. The returned trace is shared: callers must not mutate it
// — use Scale or copy first, as the experiments already do.
func GenerateCached(p Params) *trace.Trace {
	key := cacheKey(p)
	cacheMu.Lock()
	e, ok := cache[key]
	if !ok {
		e = &cacheEntry{}
		cache[key] = e
	}
	cacheMu.Unlock()
	e.once.Do(func() { e.tr = Generate(p) })
	return e.tr
}

// ResetCache drops all cached traces (tests and long-lived processes that
// sweep many distinct parameter sets).
func ResetCache() {
	cacheMu.Lock()
	cache = map[string]*cacheEntry{}
	cacheMu.Unlock()
}
