// Package tracegen synthesizes block-level traces with the statistical
// profile of the paper's workloads (Table 3). The original HP Cello trace
// (5/30/92–6/6/92) and the TPC-C disk trace are not redistributable, so
// the experiments run on synthetic equivalents matched on the parameters
// the paper's models actually consume: arrival rate, read and async-write
// fractions, seek locality L, read-after-write fraction, and data-set
// size. trace.ComputeStats verifies the match (see tests and the Table 3
// experiment).
package tracegen

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/des"
	"repro/internal/disk"
	"repro/internal/trace"
)

// SizePoint is one entry of a request-size mixture.
type SizePoint struct {
	Sectors int
	Weight  float64
}

// Params configures a synthetic trace.
type Params struct {
	Name        string
	DataSectors int64
	Duration    des.Time
	MeanIOPS    float64
	ReadFrac    float64 // reads / all I/Os
	AsyncFrac   float64 // async writes / all I/Os
	Locality    float64 // target seek-locality index L (>= 1)
	RAWFrac     float64 // target read-after-write fraction of all I/Os
	Sizes       []SizePoint
	// BurstCycle modulates the arrival rate sinusoidally (day/night or
	// busy/quiet cycles); 0 disables.
	BurstCycle des.Time
	// BurstAmp is the modulation depth in [0,1).
	BurstAmp float64
	// SyncPeriod clusters async writes at fixed ticks (the file system
	// sync daemon's 30 s cadence); 0 disables.
	SyncPeriod des.Time
	// BurstMean is the mean number of requests per arrival burst (file
	// system operations touch several blocks at once and the sync daemon
	// flushes batches, so real traces arrive in clumps). 1 disables
	// clustering; the long-run rate is preserved either way.
	BurstMean float64
	// BurstGap is the mean intra-burst inter-arrival time.
	BurstGap des.Time
	// TemporalReuse is the probability that a read revisits the block of
	// a recent I/O (file-system working sets re-reference; this is what a
	// block cache exploits in the paper's Figure 11 comparison).
	TemporalReuse float64
	Seed          int64
}

// CelloBase parameterizes the merged Cello trace minus disk 6: 8.4 GB,
// 2.84 I/Os per second, 55.2% reads, 18.9% async writes, L = 4.14, 4.15%
// read-after-write (Table 3). Duration defaults to the paper's one week;
// callers typically shorten it.
func CelloBase(seed int64) Params {
	return Params{
		Name:        "cello-base",
		DataSectors: int64(8.4e9 / disk.SectorSize),
		Duration:    7 * 24 * des.Hour,
		MeanIOPS:    2.84,
		ReadFrac:    0.552,
		AsyncFrac:   0.189,
		Locality:    4.14,
		RAWFrac:     0.0415,
		Sizes: []SizePoint{
			{2, 0.10}, {4, 0.25}, {8, 0.35}, {16, 0.20}, {32, 0.07}, {64, 0.03},
		},
		BurstCycle:    24 * des.Hour,
		BurstAmp:      0.6,
		SyncPeriod:    30 * des.Second,
		BurstMean:     5,
		BurstGap:      3 * des.Millisecond,
		TemporalReuse: 0.35,
		Seed:          seed,
	}
}

// CelloDisk6 parameterizes the news-spool disk: 1.3 GB, 2.56 I/Os per
// second, 35.8% reads, 16.1% async writes, L = 16.67, 3.8%
// read-after-write.
func CelloDisk6(seed int64) Params {
	return Params{
		Name:        "cello-disk6",
		DataSectors: int64(1.3e9) / disk.SectorSize,
		Duration:    7 * 24 * des.Hour,
		MeanIOPS:    2.56,
		ReadFrac:    0.358,
		AsyncFrac:   0.161,
		Locality:    16.67,
		RAWFrac:     0.038,
		Sizes: []SizePoint{
			{2, 0.15}, {4, 0.30}, {8, 0.35}, {16, 0.15}, {32, 0.05},
		},
		BurstCycle:    24 * des.Hour,
		BurstAmp:      0.5,
		SyncPeriod:    30 * des.Second,
		BurstMean:     8,
		BurstGap:      2 * des.Millisecond,
		TemporalReuse: 0.4,
		Seed:          seed,
	}
}

// TPCC parameterizes the TPC-C disk trace: 9.0 GB, ~500 I/Os per second,
// 54.8% reads, no async writes, essentially random access (L = 1.04),
// 14.8% read-after-write.
func TPCC(seed int64) Params {
	return Params{
		Name:          "tpcc",
		DataSectors:   int64(9.0e9 / disk.SectorSize),
		Duration:      2 * des.Hour,
		MeanIOPS:      500,
		ReadFrac:      0.548,
		AsyncFrac:     0,
		Locality:      1.04,
		RAWFrac:       0.148,
		Sizes:         []SizePoint{{4, 1}}, // 2 KB database pages
		BurstMean:     2,
		BurstGap:      5 * des.Millisecond,
		TemporalReuse: 0.05,
		Seed:          seed,
	}
}

// WithDuration returns p clipped to a shorter duration (keeping the rate).
func (p Params) WithDuration(d des.Time) Params {
	p.Duration = d
	return p
}

type recentWrite struct {
	off int64
	cnt int
	at  des.Time
}

// Generate synthesizes the trace. The locality and read-after-write knobs
// interact (a RAW read is also a jump; local re-reads create incidental
// RAW hits), so generation runs a short fixed-point loop: synthesize,
// measure with trace.ComputeStats, and retune until the measured L and
// RAW fractions land on target.
func Generate(p Params) *trace.Trace {
	if p.Locality < 1 {
		p.Locality = 1
	}
	// Initial knobs: the uniform-jump fraction sets the mean seek to
	// DataSectors/(3 L), counting RAW jumps as uniform-like.
	punif := 1/p.Locality - p.RAWFrac
	if punif < 0.0005 {
		punif = 0.0005
	}
	pRaw := 0.0
	if p.ReadFrac > 0 {
		pRaw = p.RAWFrac / p.ReadFrac
	}
	var tr *trace.Trace
	var best *trace.Trace
	bestErr := 1e9
	wDiv := 256.0
	// The mean seek is approximately linear in punif (uniform jumps) on
	// top of a floor contributed by reuse jumps, flush bursts, and
	// working-set drift; a secant step on that line converges where a
	// plain multiplicative update oscillates.
	meanStar := float64(p.DataSectors) / (3 * p.Locality)
	prevP, prevM := -1.0, 0.0
	for iter := 0; iter < 12; iter++ {
		tr = generateOnce(p, 1-punif, pRaw, wDiv)
		s := tr.ComputeStats()
		okL := s.SeekLocality == 0 || relWithin(s.SeekLocality, p.Locality, 0.10)
		okRaw := p.RAWFrac == 0 || relWithin(s.RAWFrac, p.RAWFrac, 0.15)
		// Working-set drift makes the measured statistics noisy at small
		// knob values; remember the best candidate rather than trusting
		// the last iteration.
		err := 0.0
		if p.Locality > 1 && s.SeekLocality > 0 {
			err = relDev(s.SeekLocality, p.Locality)
		}
		if p.RAWFrac > 0 {
			if e := relDev(s.RAWFrac, p.RAWFrac); e > err {
				err = e
			}
		}
		if err < bestErr {
			bestErr, best = err, tr
		}
		if okL && okRaw {
			break
		}
		if s.SeekLocality > 0 {
			mean := float64(p.DataSectors) / (3 * s.SeekLocality)
			next := punif * meanStar / mean // proportional fallback
			if prevP >= 0 && punif != prevP {
				if slope := (mean - prevM) / (punif - prevP); slope > 1e-9 {
					next = punif + (meanStar-mean)/slope
				}
			}
			prevP, prevM = punif, mean
			punif = clampF(next, 0.0005, 1)
			if mean > meanStar && punif <= 0.002 && wDiv < 4096 {
				// The uniform-jump knob has bottomed out; the residual
				// seek comes from local hops and working-set drift, so
				// tighten the window (which invalidates the secant
				// history).
				wDiv *= 1.5
				prevP = -1
			}
		}
		if p.RAWFrac > 0 && s.RAWFrac > 0 {
			ratio := p.RAWFrac / s.RAWFrac
			pRaw = clampF(pRaw*ratio, 0, 1)
			if ratio < 0.8 && pRaw < 0.01 {
				// Incidental overlap alone overshoots the target; trade
				// temporal re-reference away until it fits.
				p.TemporalReuse = clampF(p.TemporalReuse*ratio, 0, 1)
			}
		}
	}
	if best != nil {
		return best
	}
	return tr
}

// relDev is the relative deviation |got-want|/want.
func relDev(got, want float64) float64 {
	if want == 0 {
		return got
	}
	d := got/want - 1
	if d < 0 {
		d = -d
	}
	return d
}

func relWithin(got, want, tol float64) bool {
	if want == 0 {
		return got == 0
	}
	d := got/want - 1
	if d < 0 {
		d = -d
	}
	return d <= tol
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// generateOnce is a single synthesis pass with explicit locality, RAW,
// and window knobs.
func generateOnce(p Params, pl, pRaw, wDiv float64) *trace.Trace {
	rng := rand.New(rand.NewSource(p.Seed))
	t := &trace.Trace{Name: p.Name, DataSectors: p.DataSectors}
	n := float64(p.DataSectors)
	w := n / wDiv

	var recents []recentWrite
	// writeBuckets tracks when each RAW-granularity bucket was last
	// written (at its disk-visible flush time). The generator uses it to
	// model the file-system buffer cache: a read of a freshly written
	// block is a cache hit and never reaches the disk, which is why real
	// below-cache traces show only a few percent read-after-write despite
	// heavy write locality.
	writeBuckets := make(map[int64]des.Time)
	const rawGrain = 16
	noteWrite := func(off int64, cnt int, at des.Time) {
		for b := off / rawGrain; b <= (off+int64(cnt)-1)/rawGrain; b++ {
			writeBuckets[b] = at
		}
	}
	recentlyWritten := func(off, size int64, now des.Time) bool {
		for b := off / rawGrain; b <= (off+size-1)/rawGrain; b++ {
			if t, ok := writeBuckets[b]; ok && now-t <= trace.RAWWindow {
				return true
			}
		}
		return false
	}
	var recentIO []int64
	recentIONext := 0
	noteIO := func(off int64) {
		if len(recentIO) < 32768 {
			recentIO = append(recentIO, off)
			return
		}
		recentIO[recentIONext] = off
		recentIONext = (recentIONext + 1) % len(recentIO)
	}
	cur := rng.Int63n(p.DataSectors)
	now := des.Time(0)
	maxSize := 1
	for _, s := range p.Sizes {
		if s.Sectors > maxSize {
			maxSize = s.Sectors
		}
	}
	burstMean := p.BurstMean
	if burstMean < 1 {
		burstMean = 1
	}
	burstGap := p.BurstGap
	if burstGap <= 0 {
		burstGap = 10 * des.Millisecond
	}
	burstLeft := 0
	var epoch, burstAt des.Time
	// Async writes accumulate and flush as their own bursts on the sync
	// daemon's cadence ("most of the asynchronous writes are generated by
	// the file system sync daemon at 30 second intervals"), so they do not
	// interleave with foreground bursts.
	var flushBuf []trace.Record
	nextFlush := p.SyncPeriod
	emitFlushes := func(upto des.Time) {
		if p.SyncPeriod <= 0 {
			return
		}
		for nextFlush <= upto {
			at := nextFlush
			for _, fr := range flushBuf {
				fr.At = at
				t.Records = append(t.Records, fr)
				at += 200 // tight daemon burst
			}
			flushBuf = flushBuf[:0]
			nextFlush += p.SyncPeriod
		}
	}
	for {
		if burstLeft > 0 {
			// Continue the current burst at short gaps.
			burstLeft--
			burstAt += des.Time(rng.ExpFloat64() * float64(burstGap))
			now = burstAt
		} else {
			// Next burst epoch: Poisson at rate/burstMean (thinned under
			// the slow modulation) so the long-run request rate stays
			// MeanIOPS. The epoch clock advances independently of how long
			// the previous burst ran.
			rate := p.MeanIOPS / 1e6 // per microsecond
			epoch += des.Time(rng.ExpFloat64() / rate * burstMean)
			if epoch >= p.Duration {
				break
			}
			if p.BurstCycle > 0 {
				mod := 1 + p.BurstAmp*math.Sin(2*math.Pi*float64(epoch)/float64(p.BurstCycle))
				if rng.Float64() > mod/(1+p.BurstAmp) {
					continue
				}
			}
			// Burst length is geometric with the configured mean.
			burstLeft = 0
			for burstMean > 1 && rng.Float64() < 1-1/burstMean {
				burstLeft++
			}
			// A long burst can outlive the next epoch; never go backwards.
			if epoch > burstAt {
				burstAt = epoch
			}
			now = burstAt
		}
		if now >= p.Duration {
			break
		}
		emitFlushes(now)
		size := pickSize(rng, p.Sizes)
		rec := trace.Record{At: now, Count: size}
		isRead := rng.Float64() < p.ReadFrac
		if isRead && len(recentIO) > 0 && rng.Float64() < p.TemporalReuse {
			// Working-set re-reference: reread a recently *read* block,
			// skipping candidates that overlap a recent write so the
			// explicitly calibrated RAW knob stays in control.
			if off, ok := pickReuse(rng, recentIO, recentlyWritten, int64(size), p.DataSectors, now); ok {
				rec.Off = off
				t.Records = append(t.Records, rec)
				cur = rec.Off
				continue
			}
		}
		if isRead && pRaw > 0 && len(recents) > 0 && rng.Float64() < pRaw {
			// Read-after-write: revisit a write from the last hour.
			pruneRecents(&recents, now)
			if len(recents) > 0 {
				rw := recents[rng.Intn(len(recents))]
				rec.Off = rw.off
				if rec.Count > rw.cnt {
					rec.Count = rw.cnt
				}
				t.Records = append(t.Records, rec)
				cur = rec.Off
				continue
			}
		}
		// Position: local hop or uniform jump along a single chain. Writes
		// target a band a few windows above the read band (file systems
		// allocate fresh blocks near, but not on top of, what is being
		// read), and reads re-roll away from freshly written blocks (those
		// would be buffer-cache hits and never reach the disk); the
		// explicit RAW branch above is the calibrated exception. Rejected
		// candidates do not advance the chain.
		writeShift := int64(4 * w)
		for try := 0; ; try++ {
			cand := cur + int64((rng.Float64()-0.5)*w)
			if rng.Float64() >= pl {
				cand = rng.Int63n(p.DataSectors)
			}
			pos := cand
			if !isRead {
				pos += writeShift
			}
			if pos < 0 {
				pos = -pos
			}
			if pos > p.DataSectors-int64(maxSize) {
				pos = p.DataSectors - int64(maxSize)
			}
			if !isRead || try >= 4 || !recentlyWritten(pos, int64(size), now) {
				cur = cand
				if cur < 0 {
					cur = -cur
				}
				if cur > p.DataSectors-int64(maxSize) {
					cur = p.DataSectors - int64(maxSize)
				}
				rec.Off = pos
				break
			}
		}
		if !isRead {
			rec.Write = true
			if rng.Float64() < p.AsyncFrac/(1-p.ReadFrac) {
				rec.Async = true
			}
			recents = append(recents, recentWrite{off: rec.Off, cnt: rec.Count, at: rec.At})
			if len(recents) > 16384 {
				pruneRecents(&recents, now)
				if len(recents) > 16384 {
					recents = recents[len(recents)-16384:]
				}
			}
			if rec.Async && p.SyncPeriod > 0 {
				// Dirtied now, flushed by the daemon later. The flush
				// target keeps the chain position it was dirtied at, so
				// the daemon's bursts stay as local as the foreground
				// stream.
				noteWrite(rec.Off, rec.Count, nextFlush)
				flushBuf = append(flushBuf, rec)
				continue
			}
			noteWrite(rec.Off, rec.Count, rec.At)
		}
		t.Records = append(t.Records, rec)
		if isRead {
			// Only read offsets join the re-reference pool: rereading a
			// recently written block is the separately calibrated
			// read-after-write behavior.
			noteIO(rec.Off)
		}
	}
	emitFlushes(p.Duration)
	// Daemon flush bursts can overlap the foreground stream in time;
	// restore global time order.
	sort.SliceStable(t.Records, func(i, j int) bool { return t.Records[i].At < t.Records[j].At })
	return t
}

func pickSize(rng *rand.Rand, sizes []SizePoint) int {
	if len(sizes) == 0 {
		return 8
	}
	var total float64
	for _, s := range sizes {
		total += s.Weight
	}
	x := rng.Float64() * total
	for _, s := range sizes {
		x -= s.Weight
		if x <= 0 {
			return s.Sectors
		}
	}
	return sizes[len(sizes)-1].Sectors
}

func pruneRecents(rs *[]recentWrite, now des.Time) {
	keep := (*rs)[:0]
	for _, r := range *rs {
		if now-r.at <= trace.RAWWindow {
			keep = append(keep, r)
		}
	}
	*rs = keep
}

// pickReuse draws a reusable read offset that does not overlap any
// still-recent write (a few retries, then give up).
func pickReuse(rng *rand.Rand, pool []int64, written func(off, size int64, now des.Time) bool, size, volume int64, now des.Time) (int64, bool) {
	// Re-reference distances follow a heavy-tailed, recency-weighted
	// distribution (an LRU stack-depth curve): most rereads are of very
	// recent blocks, but a tail reaches deep into history — which is what
	// gives a block cache a capacity-dependent hit rate.
	for try := 0; try < 4; try++ {
		u := rng.Float64()
		age := int(u * u * u * float64(len(pool)))
		if age >= len(pool) {
			age = len(pool) - 1
		}
		off := pool[len(pool)-1-age]
		if off > volume-size {
			off = volume - size
		}
		if !written(off, size, now) {
			return off, true
		}
	}
	return 0, false
}
