// Package advisor implements the paper's stated future work: "Ivy
// dynamically chose the candidate and the degree of replication by
// observing access patterns... We are currently researching a wide range
// of access patterns that can be used to dynamically tune the array
// configuration" (Section 5).
//
// A Monitor ingests the live request stream and maintains online
// estimates of the model parameters of Section 2 — the
// foreground-propagation ratio p, the per-disk queue length q, and the
// seek-locality index L — using exponentially weighted moving averages,
// so the estimates track workload phase changes. Recommend runs the
// paper's aspect-ratio optimizer on the current estimates, and Drift
// quantifies how far the running configuration is from the recommended
// one in model-predicted latency.
package advisor

import (
	"fmt"
	"math"

	"repro/internal/des"
	"repro/internal/disk"
	"repro/internal/layout"
	"repro/internal/model"
)

// ewma is a bias-corrected exponentially weighted moving average (the
// zero initialization would otherwise drag estimates toward zero for the
// first half-life's worth of samples).
type ewma struct {
	alpha float64
	raw   float64
	decay float64 // (1-alpha)^n
}

func newEWMA(halfLife float64) ewma {
	return ewma{alpha: 1 - math.Exp(-math.Ln2/halfLife), decay: 1}
}

func (e *ewma) add(sample float64) {
	e.raw = (1-e.alpha)*e.raw + e.alpha*sample
	e.decay *= 1 - e.alpha
}

func (e *ewma) value() float64 {
	if e.decay >= 1 {
		return 0
	}
	return e.raw / (1 - e.decay)
}

// Monitor estimates workload parameters online.
type Monitor struct {
	dataSectors int64
	n           int64

	meanDelta  ewma // |Δoffset| in sectors
	readFrac   ewma // reads per I/O
	asyncFrac  ewma // async writes per I/O
	forcedFrac ewma // foreground-forced propagation per write
	queue      ewma // observed per-disk queue depth

	prevOff int64
	hasPrev bool
}

// halfLife is the observation count at which an old sample's weight has
// decayed to one half.
const halfLife = 2000

// NewMonitor builds a monitor for a volume of dataSectors sectors.
func NewMonitor(dataSectors int64) *Monitor {
	return &Monitor{
		dataSectors: dataSectors,
		meanDelta:   newEWMA(halfLife),
		readFrac:    newEWMA(halfLife),
		asyncFrac:   newEWMA(halfLife),
		forcedFrac:  newEWMA(halfLife),
		queue:       newEWMA(halfLife),
	}
}

// Observation is one request as seen by the array.
type Observation struct {
	Off   int64
	Count int
	Write bool
	Async bool
	// QueueDepth is the per-disk foreground queue length at submit.
	QueueDepth int
	// Forced reports that this write's replica propagation had to run in
	// the foreground (no idle time) — the (1-p) event of Eq. 8.
	Forced bool
}

// Observe ingests one request.
func (m *Monitor) Observe(o Observation) {
	m.n++
	if m.hasPrev {
		d := float64(o.Off - m.prevOff)
		if d < 0 {
			d = -d
		}
		m.meanDelta.add(d)
	}
	m.prevOff, m.hasPrev = o.Off, true

	b := 0.0
	if !o.Write {
		b = 1
	}
	m.readFrac.add(b)
	b = 0
	if o.Write && o.Async {
		b = 1
	}
	m.asyncFrac.add(b)
	if o.Write {
		b = 0
		if o.Forced {
			b = 1
		}
		m.forcedFrac.add(b)
	}
	m.queue.add(float64(o.QueueDepth))
}

// N returns the number of observations ingested.
func (m *Monitor) N() int64 { return m.n }

// Ready reports whether enough observations exist for stable estimates.
func (m *Monitor) Ready() bool { return m.n >= 200 }

// P estimates Eq. 8's ratio: the fraction of I/Os that do not force
// foreground replica propagation. Reads and background-propagated writes
// count toward p; only foreground-forced writes count against it.
func (m *Monitor) P() float64 {
	writeFrac := 1 - m.readFrac.value()
	return 1 - writeFrac*m.forcedFrac.value()
}

// Q estimates the per-disk queue length (busyness).
func (m *Monitor) Q() float64 {
	if q := m.queue.value(); q > 1 {
		return q
	}
	return 1
}

// L estimates the seek-locality index: average random seek distance over
// average observed seek distance.
func (m *Monitor) L() float64 {
	d := m.meanDelta.value()
	if d <= 0 {
		return 1
	}
	l := float64(m.dataSectors) / 3 / d
	if l < 1 {
		return 1
	}
	return l
}

// Recommend runs the paper's optimizer on the live estimates for a budget
// of d disks of the given spec.
func (m *Monitor) Recommend(spec disk.Spec, d int) (layout.Config, error) {
	if !m.Ready() {
		return layout.Config{}, fmt.Errorf("advisor: only %d observations, need 200", m.n)
	}
	md := model.Disk{S: spec.MaxSeek, R: des.Time(60e6 / spec.RPM)}
	ds, dr, err := model.Optimize(md, d, m.P(), m.Q(), m.L(), func(dr int) bool {
		return spec.Heads%dr == 0
	})
	if err != nil {
		return layout.Config{}, err
	}
	return layout.SRArray(ds, dr), nil
}

// Drift returns the model-predicted latency of the current configuration
// divided by that of the recommended one — 1.0 means the array is running
// the recommendation, 1.3 means a reconfiguration would be worth ~23% of
// response time. Because the paper's integer rounding rule ("largest
// factor below the real-valued optimum") is a heuristic, drift can dip
// slightly below 1 for neighboring aspect ratios; treat values inside
// roughly ±15% as in tune and reconfigure only on larger drift.
func (m *Monitor) Drift(spec disk.Spec, current layout.Config) (float64, error) {
	rec, err := m.Recommend(spec, current.Disks())
	if err != nil {
		return 0, err
	}
	md := model.Disk{S: spec.MaxSeek, R: des.Time(60e6 / spec.RPM)}
	curLat := model.LatencyInt(md, current.Ds, current.Dr*current.Dm, m.P(), m.Q(), m.L())
	recLat := model.LatencyInt(md, rec.Ds, rec.Dr*rec.Dm, m.P(), m.Q(), m.L())
	if recLat <= 0 {
		return 0, fmt.Errorf("advisor: degenerate model latency")
	}
	return float64(curLat) / float64(recLat), nil
}
