package advisor

import (
	"math"
	"testing"

	"repro/internal/des"
	"repro/internal/disk"
	"repro/internal/layout"
	"repro/internal/tracegen"
)

func feedTrace(m *Monitor, p tracegen.Params, ios int) {
	d := des.Time(float64(ios) / p.MeanIOPS * 1e6)
	tr := tracegen.Generate(p.WithDuration(d))
	for _, r := range tr.Records {
		m.Observe(Observation{Off: r.Off, Count: r.Count, Write: r.Write, Async: r.Async})
	}
}

func TestNotReadyWithoutObservations(t *testing.T) {
	m := NewMonitor(1 << 24)
	if m.Ready() {
		t.Fatal("ready with zero observations")
	}
	if _, err := m.Recommend(disk.ST39133LWV(), 6); err == nil {
		t.Fatal("Recommend succeeded before ready")
	}
}

func TestEstimatesMatchTraceStatistics(t *testing.T) {
	p := tracegen.CelloBase(1)
	m := NewMonitor(p.DataSectors)
	feedTrace(m, p, 6000)
	if !m.Ready() {
		t.Fatal("not ready after 6000 observations")
	}
	if got := m.L(); math.Abs(got-p.Locality)/p.Locality > 0.4 {
		t.Errorf("online L = %.2f, trace target %.2f", got, p.Locality)
	}
	// No forced propagation observed: p should be ~1.
	if got := m.P(); got < 0.99 {
		t.Errorf("online p = %.3f, want ~1 with no forced writes", got)
	}
}

func TestRecommendMatchesOfflineOptimum(t *testing.T) {
	spec := disk.ST39133LWV()
	// Cello-profile stream on 6 disks: the paper's 2x3.
	m := NewMonitor(tracegen.CelloBase(2).DataSectors)
	feedTrace(m, tracegen.CelloBase(2), 6000)
	cfg, err := m.Recommend(spec, 6)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Ds != 2 || cfg.Dr != 3 {
		t.Errorf("Cello recommendation %v, want 2x3x1", cfg)
	}
	// TPC-C-profile stream on 36 disks: the paper's 9x4.
	m2 := NewMonitor(tracegen.TPCC(3).DataSectors)
	feedTrace(m2, tracegen.TPCC(3), 6000)
	cfg2, err := m2.Recommend(spec, 36)
	if err != nil {
		t.Fatal(err)
	}
	if cfg2.Ds != 9 || cfg2.Dr != 4 {
		t.Errorf("TPC-C recommendation %v, want 9x4x1", cfg2)
	}
}

func TestForcedWritesLowerP(t *testing.T) {
	m := NewMonitor(1 << 24)
	// 60% writes, all forced: p = 1 - 0.6 = 0.4 → optimizer must refuse
	// replication.
	for i := 0; i < 5000; i++ {
		write := i%5 < 3
		m.Observe(Observation{Off: int64(i * 1000 % (1 << 24)), Count: 8, Write: write, Forced: write})
	}
	if got := m.P(); math.Abs(got-0.4) > 0.05 {
		t.Fatalf("p = %.3f, want ~0.4", got)
	}
	cfg, err := m.Recommend(disk.ST39133LWV(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Dr != 1 {
		t.Errorf("recommendation %v under write-dominated load, want pure striping", cfg)
	}
}

func TestEstimatesTrackPhaseChanges(t *testing.T) {
	m := NewMonitor(1 << 24)
	// Phase 1: sequential-ish (high locality).
	off := int64(0)
	for i := 0; i < 4000; i++ {
		off = (off + 64) % (1 << 24)
		m.Observe(Observation{Off: off, Count: 8})
	}
	l1 := m.L()
	// Phase 2: uniform random.
	for i := 0; i < 8000; i++ {
		m.Observe(Observation{Off: int64(i*2654435761) % (1 << 24), Count: 8})
	}
	l2 := m.L()
	if l2 >= l1/4 {
		t.Errorf("locality estimate did not track phase change: %.1f -> %.1f", l1, l2)
	}
	if l2 < 0.5 || l2 > 2 {
		t.Errorf("uniform phase L = %.2f, want ~1", l2)
	}
}

func TestDriftDetectsMisconfiguration(t *testing.T) {
	spec := disk.ST39133LWV()
	m := NewMonitor(tracegen.CelloBase(4).DataSectors)
	feedTrace(m, tracegen.CelloBase(4), 6000)
	// Running the recommended config: drift ~1.
	rec, err := m.Recommend(spec, 6)
	if err != nil {
		t.Fatal(err)
	}
	d0, err := m.Drift(spec, rec)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d0-1) > 1e-9 {
		t.Errorf("drift of recommended config = %.3f, want 1", d0)
	}
	// Running plain striping under this read-mostly local load: the model
	// says a reconfiguration wins meaningfully.
	d1, err := m.Drift(spec, layout.Striping(6))
	if err != nil {
		t.Fatal(err)
	}
	if d1 < 1.3 {
		t.Errorf("drift of striping = %.2f, want > 1.3 (reconfiguration clearly worthwhile)", d1)
	}
	// Neighboring aspect ratios sit near 1 (the paper's integer rounding
	// is a heuristic, so slightly-below-1 is possible); nothing admissible
	// should look dramatically better than the recommendation.
	for _, cfg := range []layout.Config{layout.SRArray(3, 2), layout.SRArray(1, 6), layout.SRArray(6, 1)} {
		d, err := m.Drift(spec, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if d < 0.8 {
			t.Errorf("drift of %v = %.3f — far below the recommendation, optimizer rule badly off", cfg, d)
		}
	}
}

func TestQueueEstimate(t *testing.T) {
	m := NewMonitor(1 << 24)
	for i := 0; i < 1000; i++ {
		m.Observe(Observation{Off: int64(i), Count: 1, QueueDepth: 7})
	}
	if q := m.Q(); math.Abs(q-7) > 0.5 {
		t.Errorf("q = %.2f, want ~7", q)
	}
	// Q floors at 1 for idle systems.
	m2 := NewMonitor(1 << 24)
	m2.Observe(Observation{Off: 1, Count: 1, QueueDepth: 0})
	if m2.Q() != 1 {
		t.Errorf("idle q = %v, want 1", m2.Q())
	}
}
