package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Registry is the process-wide hub recorders hang off. The zero value is
// ready to use. It is safe for concurrent use: the parallel experiment
// runner creates arrays (and hence recorders) from many worker goroutines
// at once, but each recorder is then written by exactly one goroutine, so
// the registry's lock covers only creation and export.
type Registry struct {
	// TraceCap, when positive, enables per-drive trace rings of that many
	// records each. Zero disables tracing (metrics only).
	TraceCap int

	mu   sync.Mutex
	recs []*Recorder
}

// NewRecorder creates and registers a recorder for one array with the
// given number of drive slots (spares included).
func (g *Registry) NewRecorder(label string, drives int) *Recorder {
	r := &Recorder{label: label, drives: make([]DriveMetrics, drives)}
	for i := range r.drives {
		r.drives[i].drive = i
		if g.TraceCap > 0 {
			r.drives[i].trace = newRing(g.TraceCap)
		}
	}
	g.mu.Lock()
	g.recs = append(g.recs, r)
	g.mu.Unlock()
	return r
}

// Recorders returns the registered recorders (creation order; not
// deterministic under a parallel runner — exports sort).
func (g *Registry) Recorders() []*Recorder {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]*Recorder(nil), g.recs...)
}

// snapshot structures: the JSON shape of Snapshot.

type histJSON struct {
	Count   int64   `json:"count"`
	SumUS   int64   `json:"sum_us"`
	MeanUS  float64 `json:"mean_us"`
	Buckets []int64 `json:"buckets,omitempty"` // trailing zeros trimmed
}

func histOut(h *Hist) *histJSON {
	if h.Count == 0 {
		return nil
	}
	last := 0
	for i, b := range h.Buckets {
		if b != 0 {
			last = i + 1
		}
	}
	return &histJSON{
		Count:   h.Count,
		SumUS:   h.SumUS,
		MeanUS:  h.MeanUS(),
		Buckets: append([]int64(nil), h.Buckets[:last]...),
	}
}

type gaugeJSON struct {
	Max     int64   `json:"max"`
	Mean    float64 `json:"mean"`
	Samples int64   `json:"samples"`
}

func gaugeOut(g *Gauge) *gaugeJSON {
	if g.Samples == 0 {
		return nil
	}
	return &gaugeJSON{Max: g.Max, Mean: float64(g.Sum) / float64(g.Samples), Samples: g.Samples}
}

type classOpJSON struct {
	Class   string    `json:"class"`
	Op      string    `json:"op"`
	Service *histJSON `json:"service,omitempty"`
	Wait    *histJSON `json:"wait,omitempty"`
}

type driveJSON struct {
	Drive       int           `json:"drive"`
	Dispatches  int64         `json:"dispatches"`
	Faulted     int64         `json:"faulted,omitempty"`
	Failovers   int64         `json:"failovers,omitempty"`
	Retries     int64         `json:"retries,omitempty"`
	Transients  int64         `json:"transients,omitempty"`
	Timeouts    int64         `json:"timeouts,omitempty"`
	SlowUS      int64         `json:"slow_us,omitempty"`
	Stutters    int64         `json:"stutters,omitempty"`
	Latent      int64         `json:"latent_errors,omitempty"`
	Corrupt     int64         `json:"corrupt_reads,omitempty"`
	Torn        int64         `json:"torn_writes,omitempty"`
	Health      *gaugeJSON    `json:"health,omitempty"`
	Picks       int64         `json:"picks,omitempty"`
	PredictedUS int64         `json:"predicted_us,omitempty"`
	QueueDepth  *gaugeJSON    `json:"queue_depth,omitempty"`
	Hists       []classOpJSON `json:"hists,omitempty"`
	Dropped     int64         `json:"trace_dropped,omitempty"`
}

type recorderJSON struct {
	Label           string      `json:"label"`
	ChunksDone      int64       `json:"rebuild_chunks_done,omitempty"`
	ChunksLost      int64       `json:"rebuild_chunks_lost,omitempty"`
	NVRAM           *gaugeJSON  `json:"nvram,omitempty"`
	HedgesIssued    int64       `json:"hedges_issued,omitempty"`
	HedgesWon       int64       `json:"hedges_won,omitempty"`
	HedgesLost      int64       `json:"hedges_lost,omitempty"`
	HedgesCancelled int64       `json:"hedges_cancelled,omitempty"`
	ShedOverload    int64       `json:"shed_overload,omitempty"`
	ShedDeadline    int64       `json:"shed_deadline,omitempty"`
	Evictions       int64       `json:"evictions,omitempty"`
	SilentReads     int64       `json:"silent_reads,omitempty"`
	VerifyDetected  int64       `json:"verify_detected,omitempty"`
	ReadRepairs     int64       `json:"read_repairs,omitempty"`
	ScrubVerified   int64       `json:"scrub_verified,omitempty"`
	ScrubCorrupt    int64       `json:"scrub_corrupt,omitempty"`
	ScrubRepaired   int64       `json:"scrub_repaired,omitempty"`
	ScrubPasses     int64       `json:"scrub_passes,omitempty"`
	Crashes         int64       `json:"crashes,omitempty"`
	Recoveries      int64       `json:"recoveries,omitempty"`
	RecoveryDiv     int64       `json:"recovery_divergent,omitempty"`
	RecoveryRep     int64       `json:"recovery_repaired,omitempty"`
	Drives          []driveJSON `json:"drives"`
}

// Snapshot exports every recorder's metrics as indented JSON. Recorders
// sharing a label (the same logical experiment point run again, or across
// parallel workers) are merged by summing their integer counters, and the
// output is sorted by label, then drive, then class, then op — so the
// bytes are identical whatever order the runs executed in.
func (g *Registry) Snapshot() ([]byte, error) {
	g.mu.Lock()
	recs := append([]*Recorder(nil), g.recs...)
	g.mu.Unlock()

	byLabel := map[string]*Recorder{}
	for _, r := range recs {
		m, ok := byLabel[r.label]
		if !ok {
			m = &Recorder{label: r.label}
			byLabel[r.label] = m
		}
		m.merge(r)
	}
	labels := make([]string, 0, len(byLabel))
	for l := range byLabel {
		labels = append(labels, l)
	}
	sort.Strings(labels)

	out := make([]recorderJSON, 0, len(labels))
	for _, l := range labels {
		r := byLabel[l]
		rj := recorderJSON{
			Label:           l,
			ChunksDone:      r.ChunksDone,
			ChunksLost:      r.ChunksLost,
			NVRAM:           gaugeOut(&r.NVRAM),
			HedgesIssued:    r.HedgesIssued,
			HedgesWon:       r.HedgesWon,
			HedgesLost:      r.HedgesLost,
			HedgesCancelled: r.HedgesCancelled,
			ShedOverload:    r.ShedOverload,
			ShedDeadline:    r.ShedDeadline,
			Evictions:       r.Evictions,
			SilentReads:     r.SilentReads,
			VerifyDetected:  r.VerifyDetected,
			ReadRepairs:     r.ReadRepairs,
			ScrubVerified:   r.ScrubVerified,
			ScrubCorrupt:    r.ScrubCorrupt,
			ScrubRepaired:   r.ScrubRepaired,
			ScrubPasses:     r.ScrubPasses,
			Crashes:         r.Crashes,
			Recoveries:      r.Recoveries,
			RecoveryDiv:     r.RecoveryDivergent,
			RecoveryRep:     r.RecoveryRepaired,
		}
		for i := range r.drives {
			d := &r.drives[i]
			dj := driveJSON{
				Drive:       i,
				Dispatches:  d.Dispatches,
				Faulted:     d.Faulted,
				Failovers:   d.Failovers,
				Retries:     d.Retries,
				Transients:  d.Transients,
				Timeouts:    d.Timeouts,
				SlowUS:      d.SlowUS,
				Stutters:    d.Stutters,
				Latent:      d.LatentErrors,
				Corrupt:     d.CorruptReads,
				Torn:        d.TornWrites,
				Health:      gaugeOut(&d.Health),
				Picks:       d.Picks,
				PredictedUS: d.PredictedUS,
				QueueDepth:  gaugeOut(&d.QueueDepth),
			}
			for c := 0; c < int(NumClasses); c++ {
				for op := 0; op < int(NumOps); op++ {
					s := histOut(&d.Service[c][op])
					w := histOut(&d.Wait[c][op])
					if s == nil && w == nil {
						continue
					}
					dj.Hists = append(dj.Hists, classOpJSON{
						Class: Class(c).String(), Op: Op(op).String(), Service: s, Wait: w,
					})
				}
			}
			if d.trace != nil {
				dj.Dropped = d.trace.dropped
			}
			rj.Drives = append(rj.Drives, dj)
		}
		out = append(out, rj)
	}
	return json.MarshalIndent(struct {
		Recorders []recorderJSON `json:"recorders"`
	}{out}, "", "  ")
}

// WriteTraceJSONL writes every live trace record as one JSON line,
// labelled with its recorder. Lines are sorted lexicographically by their
// full serialized content, which makes the output deterministic under a
// parallel runner: the same set of records is emitted whatever order the
// recorders were registered in, and identical records tie harmlessly.
func (g *Registry) WriteTraceJSONL(w io.Writer) error {
	g.mu.Lock()
	recs := append([]*Recorder(nil), g.recs...)
	g.mu.Unlock()

	var lines []string
	for _, r := range recs {
		for i := range r.drives {
			ring := r.drives[i].trace
			if ring == nil {
				continue
			}
			for _, t := range ring.records() {
				t.Label = r.label
				b, err := json.Marshal(t)
				if err != nil {
					return fmt.Errorf("obs: marshal trace record: %w", err)
				}
				lines = append(lines, string(b))
			}
		}
	}
	sort.Strings(lines)
	bw := bufio.NewWriter(w)
	for _, l := range lines {
		bw.WriteString(l)
		bw.WriteByte('\n')
	}
	return bw.Flush()
}
