package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/des"
	"repro/internal/disk"
	"repro/internal/sched"
)

func TestHistBuckets(t *testing.T) {
	var h Hist
	cases := []struct {
		v      des.Time
		bucket int
	}{
		{0, 0},
		{1, 1},
		{2, 2},
		{3, 2},
		{4, 3},
		{1023, 10},
		{1024, 11},
		{des.Hour, NumBuckets - 1}, // overflow absorbed by the last bucket
	}
	for _, c := range cases {
		before := h.Buckets[c.bucket]
		h.Observe(c.v)
		if h.Buckets[c.bucket] != before+1 {
			t.Fatalf("Observe(%v) did not land in bucket %d", c.v, c.bucket)
		}
	}
	if h.Count != int64(len(cases)) {
		t.Fatalf("Count = %d, want %d", h.Count, len(cases))
	}
	// Negative durations (clock skew in a caller) clamp to bucket 0 rather
	// than indexing out of range.
	h.Observe(-5)
	if h.Buckets[0] != 2 {
		t.Fatalf("negative duration not clamped: bucket0 = %d", h.Buckets[0])
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	for _, v := range []int64{3, 7, 2} {
		g.Set(v)
	}
	if g.Cur != 2 || g.Max != 7 || g.Samples != 3 || g.Sum != 12 {
		t.Fatalf("gauge state = %+v", g)
	}
}

func TestRingWraps(t *testing.T) {
	r := newRing(3)
	for i := 0; i < 5; i++ {
		r.add(TraceRecord{Req: uint64(i)})
	}
	recs := r.records()
	if len(recs) != 3 {
		t.Fatalf("ring kept %d records, want 3", len(recs))
	}
	seen := map[uint64]bool{}
	for _, rec := range recs {
		seen[rec.Req] = true
	}
	// Newest three survive.
	for _, want := range []uint64{2, 3, 4} {
		if !seen[want] {
			t.Fatalf("ring lost record %d; kept %v", want, seen)
		}
	}
	if r.dropped != 2 {
		t.Fatalf("dropped = %d, want 2", r.dropped)
	}
}

// fill records a deterministic workload into a recorder.
func fill(rec *Recorder, base int64) {
	d := rec.Drive(0)
	for i := int64(0); i < 10; i++ {
		d.ObservePick(3, sched.Choice{Predicted: des.Time(100 + i)}, true)
		d.Done(Dispatch{
			Req: uint64(base + i), Class: Foreground, Op: OpRead,
			Arrive: des.Time(i * 100), Start: des.Time(i*100 + 50),
		}, disk.Timing{Seek: 10, Rotate: 20, Transfer: 5}, des.Time(i*100+90))
	}
	d.Retry()
	d.Fault(disk.FaultTransient)
	d.FaultedRun(Dispatch{Req: uint64(base + 99), Class: Foreground, Op: OpWrite, Failover: true},
		disk.FaultTimeout, 1234)
	rec.RebuildChunkDone()
	rec.NVRAM.Set(4)
}

// TestSnapshotMergeOrderIndependent is the determinism contract: the same
// per-label content registered in any order must snapshot to identical
// bytes, and recorders sharing a label must merge by summation.
func TestSnapshotMergeOrderIndependent(t *testing.T) {
	mk := func(order []string) []byte {
		reg := &Registry{}
		for _, label := range order {
			fill(reg.NewRecorder(label, 2), 0)
		}
		b, err := reg.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a := mk([]string{"x", "y", "y"})
	b := mk([]string{"y", "x", "y"})
	if !bytes.Equal(a, b) {
		t.Fatalf("snapshot depends on registration order:\n%s\nvs\n%s", a, b)
	}
	// The duplicated label must carry doubled counts.
	var snap struct {
		Recorders []struct {
			Label  string `json:"label"`
			Drives []struct {
				Dispatches int64 `json:"dispatches"`
			} `json:"drives"`
		} `json:"recorders"`
	}
	if err := json.Unmarshal(a, &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Recorders) != 2 {
		t.Fatalf("got %d recorders, want 2 (merged by label)", len(snap.Recorders))
	}
	for _, r := range snap.Recorders {
		want := int64(11) // 10 clean + 1 faulted per fill
		if r.Label == "y" {
			want = 22
		}
		if r.Drives[0].Dispatches != want {
			t.Fatalf("label %s drive0 dispatches = %d, want %d", r.Label, r.Drives[0].Dispatches, want)
		}
	}
}

func TestTraceJSONLDeterministicAndValid(t *testing.T) {
	mk := func(order []int64) string {
		reg := &Registry{TraceCap: 64}
		for _, base := range order {
			fill(reg.NewRecorder("lbl", 1), base)
		}
		var buf bytes.Buffer
		if err := reg.WriteTraceJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a := mk([]int64{0, 1000})
	b := mk([]int64{1000, 0})
	if a != b {
		t.Fatal("trace JSONL depends on recorder registration order")
	}
	lines := strings.Split(strings.TrimSuffix(a, "\n"), "\n")
	if len(lines) != 22 {
		t.Fatalf("got %d trace lines, want 22", len(lines))
	}
	for _, l := range lines {
		var rec TraceRecord
		if err := json.Unmarshal([]byte(l), &rec); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", l, err)
		}
		if rec.Label != "lbl" {
			t.Fatalf("line missing label: %q", l)
		}
	}
}

// TestFaultedRunFeedsNoHistogram pins the exclusion rule at the package
// level: faulted runs count as dispatches but never contribute latency.
func TestFaultedRunFeedsNoHistogram(t *testing.T) {
	reg := &Registry{}
	rec := reg.NewRecorder("x", 1)
	d := rec.Drive(0)
	d.FaultedRun(Dispatch{Class: Foreground, Op: OpRead}, disk.FaultTransient, 500)
	var total int64
	for c := 0; c < int(NumClasses); c++ {
		for op := 0; op < int(NumOps); op++ {
			total += d.Service[c][op].Count + d.Wait[c][op].Count
		}
	}
	if total != 0 {
		t.Fatalf("faulted run fed %d histogram samples", total)
	}
	if d.Dispatches != 1 || d.Faulted != 1 || d.Failovers != 0 {
		t.Fatalf("counters = %d/%d/%d", d.Dispatches, d.Faulted, d.Failovers)
	}
}

func TestHistQuantileUS(t *testing.T) {
	var h Hist
	if got := h.QuantileUS(0.99); got != 0 {
		t.Fatalf("empty quantile = %d, want 0", got)
	}
	// 99 fast samples and one slow one: p50 stays in the fast bucket,
	// p99+ reaches the slow one, and the estimate never under-reports.
	for i := 0; i < 99; i++ {
		h.Observe(100) // bucket 7: [64,127]
	}
	h.Observe(100000) // bucket 17
	if got := h.QuantileUS(0.5); got != 127 {
		t.Fatalf("p50 = %d, want 127 (bucket upper bound)", got)
	}
	if got := h.QuantileUS(1.0); got != (1<<17)-1 {
		t.Fatalf("p100 = %d, want %d", got, (1<<17)-1)
	}
	if got := h.QuantileUS(0.99); got != 127 {
		t.Fatalf("p99 = %d, want 127 (rank 99 of 100)", got)
	}
	// All-zero samples sit in bucket 0.
	var z Hist
	z.Observe(0)
	if got := z.QuantileUS(0.99); got != 0 {
		t.Fatalf("zero-only p99 = %d", got)
	}
}
