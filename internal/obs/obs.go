// Package obs is the simulator's observability layer: a metrics registry
// (counters, gauges, and fixed-bucket latency histograms keyed by drive x
// request class x op), optional per-request trace rings, and deterministic
// machine-readable snapshots.
//
// The design splits responsibility so the DES hot path stays allocation-
// and lock-free:
//
//   - A Recorder belongs to one Array and is only ever touched by the one
//     goroutine running that simulation. Recording is plain field
//     arithmetic on preallocated fixed-size structures — no locks, no maps,
//     no allocation.
//   - The Registry is the concurrency-safe hub shared by many arrays (the
//     parallel experiment runner builds arrays from worker goroutines). Its
//     mutex is taken only when a Recorder is created and when a snapshot is
//     exported, never per-I/O.
//   - Snapshots aggregate integer counters, so the result is byte-identical
//     whatever order parallel workers registered their recorders in; trace
//     export sorts records by content for the same reason. All durations
//     are rounded to integer microseconds at record time precisely so that
//     merge order cannot perturb a sum.
package obs

import (
	"math"
	"math/bits"

	"repro/internal/des"
	"repro/internal/disk"
	"repro/internal/sched"
)

// Class is the request class dimension of the metrics key space: who asked
// for the I/O and with what urgency.
type Class uint8

const (
	// Foreground is ordinary user traffic (reads and first-copy writes).
	Foreground Class = iota
	// Priority is head-tracking reference reads.
	Priority
	// Background is rebuild reconstruction reads.
	Background
	// Delayed is replica-propagation and rebuild-copy writes issued from
	// the delayed queues.
	Delayed
	// Hedge is post-dispatch hedge duplicates of in-flight foreground
	// reads (the fail-slow mitigation path).
	Hedge
	// NumClasses sizes per-class arrays.
	NumClasses
)

func (c Class) String() string {
	switch c {
	case Foreground:
		return "foreground"
	case Priority:
		return "priority"
	case Background:
		return "background"
	case Delayed:
		return "delayed"
	case Hedge:
		return "hedge"
	}
	return "unknown"
}

// Op is the operation dimension of the metrics key space.
type Op uint8

const (
	OpRead Op = iota
	OpWrite
	// NumOps sizes per-op arrays.
	NumOps
)

func (o Op) String() string {
	if o == OpWrite {
		return "write"
	}
	return "read"
}

// NumBuckets is the histogram resolution: bucket k counts samples in
// [2^(k-1), 2^k) microseconds (bucket 0 holds zero-duration samples), and
// the last bucket absorbs everything from ~4.2 s up. Log2 buckets cover
// the five decades between a command overhead and a saturated queue in a
// fixed-size array, which keeps Observe allocation-free.
const NumBuckets = 23

// Hist is a fixed-bucket latency histogram. Sums are integer microseconds
// so that merging histograms is order-independent — the property the
// deterministic parallel snapshot rests on.
type Hist struct {
	Count   int64
	SumUS   int64
	Buckets [NumBuckets]int64
}

// bucketOf maps a microsecond value to its log2 bucket.
func bucketOf(us int64) int {
	if us < 0 {
		us = 0
	}
	b := bits.Len64(uint64(us))
	if b >= NumBuckets {
		b = NumBuckets - 1
	}
	return b
}

// Observe records one duration.
func (h *Hist) Observe(t des.Time) {
	us := int64(math.Round(float64(t)))
	h.Count++
	h.SumUS += us
	h.Buckets[bucketOf(us)]++
}

// MeanUS is the mean in microseconds (0 when empty).
func (h *Hist) MeanUS() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.SumUS) / float64(h.Count)
}

// QuantileUS is a conservative estimate of the q-quantile in microseconds:
// the upper bound of the log2 bucket holding the nearest-rank sample (so
// the true quantile is never under-reported). 0 when empty.
func (h *Hist) QuantileUS(q float64) int64 {
	if h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(h.Count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for b, n := range h.Buckets {
		seen += n
		if seen >= rank {
			if b == 0 {
				return 0
			}
			return (int64(1) << uint(b)) - 1
		}
	}
	return (int64(1) << uint(NumBuckets-1)) - 1
}

func (h *Hist) merge(o *Hist) {
	h.Count += o.Count
	h.SumUS += o.SumUS
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
}

// Gauge tracks a sampled level: last value, high-water mark, and enough to
// report the mean level over samples.
type Gauge struct {
	Cur     int64
	Max     int64
	Sum     int64
	Samples int64
}

// Set records a new level.
func (g *Gauge) Set(v int64) {
	g.Cur = v
	if v > g.Max {
		g.Max = v
	}
	g.Sum += v
	g.Samples++
}

func (g *Gauge) merge(o *Gauge) {
	// Cur of a merged gauge is meaningless; keep the max as the headline.
	if o.Max > g.Max {
		g.Max = o.Max
	}
	g.Sum += o.Sum
	g.Samples += o.Samples
}

// Dispatch describes one dispatched command for recording: identity, key
// coordinates, and the queueing timeline the drive observed.
type Dispatch struct {
	Req    uint64
	Class  Class
	Op     Op
	Arrive des.Time // when the request entered the drive queue
	Start  des.Time // when the drive dispatched it
	// Retries is how many in-drive reissues this run needed (annotation
	// only; the Retries counter is bumped as each retry happens).
	Retries int
	// Failover marks an abandoned dispatch that will be rerouted to a
	// surviving replica.
	Failover bool
	// Rebuild marks reconstruction traffic (rebuild source reads and
	// rebuild copies onto a spare).
	Rebuild bool
}

// DriveMetrics is one drive's slice of the registry. It is written by the
// single simulation goroutine that owns the drive, so updates are plain
// stores; the Registry only reads it after the simulation has finished.
type DriveMetrics struct {
	drive int

	// Service histograms hold the host-visible dispatch-to-completion time
	// of clean runs only — faulted or timed-out commands never contribute,
	// mirroring how calibration and Breakdown exclude them. Wait holds the
	// arrival-to-dispatch queue delay of the same population.
	Service [NumClasses][NumOps]Hist
	Wait    [NumClasses][NumOps]Hist

	// QueueDepth samples the foreground queue length at each scheduling
	// decision.
	QueueDepth Gauge

	// Picks counts scheduling decisions; PredictedUS sums the scheduler's
	// predicted access times, so PredictedUS/Picks is the mean predicted
	// cost per decision.
	Picks       int64
	PredictedUS int64

	// Dispatches counts completed command runs, clean or not, across all
	// classes. Faulted counts the unclean ones (so clean = Dispatches -
	// Faulted = total histogram count). Failovers counts the subset of
	// faulted runs rerouted to another replica; Retries counts in-drive
	// reissues; Transients/Timeouts count injected faults surfaced by the
	// bus.
	Dispatches int64
	Faulted    int64
	Failovers  int64
	Retries    int64
	Transients int64
	Timeouts   int64

	// SlowUS sums the extra service time a fail-slow drive added to its
	// commands; Stutters counts the commands that fell inside a stutter
	// window. Both zero for healthy drives.
	SlowUS   int64
	Stutters int64
	// Silent-corruption injections surfaced on this drive's otherwise
	// clean completions: latent sector errors, transient path corruption,
	// and torn writes.
	LatentErrors int64
	CorruptReads int64
	TornWrites   int64
	// Health samples the drive's tracked health state (core's
	// Healthy=0 / Suspect=1 / Evicted=2) at each transition.
	Health Gauge

	trace *ring
}

// ObservePick implements sched.PickObserver: every scheduling decision
// lands here when the drive's scheduler is wrapped with sched.Observe.
func (m *DriveMetrics) ObservePick(queueLen int, c sched.Choice, ok bool) {
	if !ok {
		return
	}
	m.Picks++
	m.PredictedUS += int64(math.Round(float64(c.Predicted)))
	m.QueueDepth.Set(int64(queueLen))
}

// Done records a clean command run: histograms, counters, and (when
// tracing) a trace record carrying the mechanical decomposition.
func (m *DriveMetrics) Done(d Dispatch, t disk.Timing, observed des.Time) {
	m.Dispatches++
	m.Service[d.Class][d.Op].Observe(observed - d.Start)
	m.Wait[d.Class][d.Op].Observe(d.Start - d.Arrive)
	if m.trace == nil {
		return
	}
	service := us(observed - d.Start)
	rec := TraceRecord{
		Drive:      m.drive,
		Req:        d.Req,
		Class:      d.Class.String(),
		Op:         d.Op.String(),
		ArriveUS:   us(d.Arrive),
		StartUS:    us(d.Start),
		DoneUS:     us(observed),
		QueueUS:    us(d.Start - d.Arrive),
		SeekUS:     us(t.Seek),
		RotateUS:   us(t.Rotate),
		TransferUS: us(t.Transfer),
		Retries:    d.Retries,
		Rebuild:    d.Rebuild,
	}
	rec.OverheadUS = service - rec.SeekUS - rec.RotateUS - rec.TransferUS
	m.trace.add(rec)
}

// FaultedRun records a command run abandoned after a fault (the in-drive
// retry also faulted, or the drive fail-stopped). It deliberately feeds no
// latency histogram: a timed-out command's duration measures the fault
// injector, not the drive.
func (m *DriveMetrics) FaultedRun(d Dispatch, fault disk.FaultKind, observed des.Time) {
	m.Dispatches++
	m.Faulted++
	if d.Failover {
		m.Failovers++
	}
	if m.trace == nil {
		return
	}
	m.trace.add(TraceRecord{
		Drive:    m.drive,
		Req:      d.Req,
		Class:    d.Class.String(),
		Op:       d.Op.String(),
		ArriveUS: us(d.Arrive),
		StartUS:  us(d.Start),
		DoneUS:   us(observed),
		QueueUS:  us(d.Start - d.Arrive),
		Retries:  d.Retries,
		Fault:    fault.String(),
		Failover: d.Failover,
		Rebuild:  d.Rebuild,
	})
}

// Retry counts one in-drive reissue after a fault.
func (m *DriveMetrics) Retry() { m.Retries++ }

// Fault counts one injected fault surfaced by the bus.
func (m *DriveMetrics) Fault(k disk.FaultKind) {
	switch k {
	case disk.FaultTransient:
		m.Transients++
	case disk.FaultTimeout:
		m.Timeouts++
	}
}

// Slow attributes one fail-slow-inflated command to the drive.
func (m *DriveMetrics) Slow(by des.Time, stutter bool) {
	m.SlowUS += us(by)
	if stutter {
		m.Stutters++
	}
}

// Corruption attributes one clean command's silent-corruption draws to
// the drive.
func (m *DriveMetrics) Corruption(latent, corrupt, torn bool) {
	if latent {
		m.LatentErrors++
	}
	if corrupt {
		m.CorruptReads++
	}
	if torn {
		m.TornWrites++
	}
}

func (m *DriveMetrics) merge(o *DriveMetrics) {
	for c := 0; c < int(NumClasses); c++ {
		for op := 0; op < int(NumOps); op++ {
			m.Service[c][op].merge(&o.Service[c][op])
			m.Wait[c][op].merge(&o.Wait[c][op])
		}
	}
	m.QueueDepth.merge(&o.QueueDepth)
	m.Picks += o.Picks
	m.PredictedUS += o.PredictedUS
	m.Dispatches += o.Dispatches
	m.Faulted += o.Faulted
	m.Failovers += o.Failovers
	m.Retries += o.Retries
	m.Transients += o.Transients
	m.Timeouts += o.Timeouts
	m.SlowUS += o.SlowUS
	m.Stutters += o.Stutters
	m.LatentErrors += o.LatentErrors
	m.CorruptReads += o.CorruptReads
	m.TornWrites += o.TornWrites
	m.Health.merge(&o.Health)
}

// us rounds a simulated duration to integer microseconds.
func us(t des.Time) int64 { return int64(math.Round(float64(t))) }

// TraceRecord is one per-request trace line: the request's life on one
// drive from queue entry through the mechanical phases to completion, with
// the fault-path annotations (retry / failover / rebuild) when they apply.
type TraceRecord struct {
	Label      string `json:"label,omitempty"`
	Drive      int    `json:"drive"`
	Req        uint64 `json:"req"`
	Class      string `json:"class"`
	Op         string `json:"op"`
	ArriveUS   int64  `json:"arrive_us"`
	StartUS    int64  `json:"dispatch_us"`
	DoneUS     int64  `json:"done_us"`
	QueueUS    int64  `json:"queue_us"`
	SeekUS     int64  `json:"seek_us,omitempty"`
	RotateUS   int64  `json:"rotate_us,omitempty"`
	TransferUS int64  `json:"transfer_us,omitempty"`
	OverheadUS int64  `json:"overhead_us,omitempty"`
	Retries    int    `json:"retries,omitempty"`
	Fault      string `json:"fault,omitempty"`
	Failover   bool   `json:"failover,omitempty"`
	Rebuild    bool   `json:"rebuild,omitempty"`
}

// ring is a fixed-capacity trace buffer: the newest records win, so a long
// run keeps its tail without ever allocating past construction.
type ring struct {
	buf     []TraceRecord
	next    int
	full    bool
	dropped int64
}

func newRing(cap int) *ring { return &ring{buf: make([]TraceRecord, cap)} }

func (r *ring) add(t TraceRecord) {
	if r.full {
		r.dropped++
	}
	r.buf[r.next] = t
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// records returns the live records (order unspecified; export sorts).
func (r *ring) records() []TraceRecord {
	if r.full {
		return r.buf
	}
	return r.buf[:r.next]
}

// Recorder is one array's metrics surface: per-drive metrics plus the few
// array-level series (rebuild progress, NVRAM table occupancy). Like
// DriveMetrics it is single-goroutine on the write side.
type Recorder struct {
	label  string
	drives []DriveMetrics

	// ChunksDone and ChunksLost count rebuild reconstruction outcomes.
	ChunksDone int64
	ChunksLost int64
	// NVRAM samples the delayed-write metadata table occupancy.
	NVRAM Gauge

	// Hedge lifecycle counters (every issued hedge terminates exactly one
	// way, so HedgesIssued == HedgesWon + HedgesLost + HedgesCancelled).
	HedgesIssued    int64
	HedgesWon       int64
	HedgesLost      int64
	HedgesCancelled int64
	// Admission-control sheds and proactive health evictions.
	ShedOverload int64
	ShedDeadline int64
	Evictions    int64

	// Silent-corruption tolerance: SilentReads counts reads that returned
	// corrupt data with verification off, VerifyDetected the reads
	// verify-on-read failed over, ReadRepairs the in-place repairs those
	// detections completed. The Scrub* counters mirror the background
	// scrubber's chunk verifications, detections, repairs, and finished
	// passes.
	SilentReads    int64
	VerifyDetected int64
	ReadRepairs    int64
	ScrubVerified  int64
	ScrubCorrupt   int64
	ScrubRepaired  int64
	ScrubPasses    int64

	// Crash/power-fail tolerance: Crashes and Recoveries count array power
	// cycles; RecoveryDivergent counts the divergent copies the post-crash
	// scan condemned, RecoveryRepaired the scan repairs that completed.
	Crashes           int64
	Recoveries        int64
	RecoveryDivergent int64
	RecoveryRepaired  int64
}

// Label returns the recorder's registry label.
func (r *Recorder) Label() string { return r.label }

// Drive returns drive i's metrics slot.
func (r *Recorder) Drive(i int) *DriveMetrics { return &r.drives[i] }

// Drives returns the number of drive slots.
func (r *Recorder) Drives() int { return len(r.drives) }

// RebuildChunkDone counts one chunk reconstructed onto a spare.
func (r *Recorder) RebuildChunkDone() { r.ChunksDone++ }

// RebuildChunkLost counts one chunk no rebuild could reconstruct.
func (r *Recorder) RebuildChunkLost() { r.ChunksLost++ }

func (r *Recorder) merge(o *Recorder) {
	for len(r.drives) < len(o.drives) {
		r.drives = append(r.drives, DriveMetrics{drive: len(r.drives)})
	}
	for i := range o.drives {
		r.drives[i].merge(&o.drives[i])
	}
	r.ChunksDone += o.ChunksDone
	r.ChunksLost += o.ChunksLost
	r.NVRAM.merge(&o.NVRAM)
	r.HedgesIssued += o.HedgesIssued
	r.HedgesWon += o.HedgesWon
	r.HedgesLost += o.HedgesLost
	r.HedgesCancelled += o.HedgesCancelled
	r.ShedOverload += o.ShedOverload
	r.ShedDeadline += o.ShedDeadline
	r.Evictions += o.Evictions
	r.SilentReads += o.SilentReads
	r.VerifyDetected += o.VerifyDetected
	r.ReadRepairs += o.ReadRepairs
	r.ScrubVerified += o.ScrubVerified
	r.ScrubCorrupt += o.ScrubCorrupt
	r.ScrubRepaired += o.ScrubRepaired
	r.ScrubPasses += o.ScrubPasses
	r.Crashes += o.Crashes
	r.Recoveries += o.Recoveries
	r.RecoveryDivergent += o.RecoveryDivergent
	r.RecoveryRepaired += o.RecoveryRepaired
}
