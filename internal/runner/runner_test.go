package runner

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestMapOrdersResultsBySubmission(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		prev := SetParallelism(workers)
		got, err := Map(100, func(i int) (int, error) { return i * i, nil })
		SetParallelism(prev)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapReturnsLowestIndexError(t *testing.T) {
	prev := SetParallelism(4)
	defer SetParallelism(prev)
	errLow := errors.New("low")
	_, err := Map(50, func(i int) (int, error) {
		switch i {
		case 7:
			return 0, errLow
		case 31:
			return 0, errors.New("high")
		}
		return i, nil
	})
	if err != errLow {
		t.Fatalf("err = %v, want the lowest-index error", err)
	}
}

func TestMapRunsEveryJobExactlyOnce(t *testing.T) {
	prev := SetParallelism(8)
	defer SetParallelism(prev)
	var counts [1000]atomic.Int32
	_, err := Map(len(counts), func(i int) (struct{}, error) {
		counts[i].Add(1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("job %d ran %d times", i, c)
		}
	}
}

func TestMapZeroJobs(t *testing.T) {
	got, err := Map(0, func(i int) (int, error) { return 0, fmt.Errorf("never") })
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestSetParallelismClamps(t *testing.T) {
	prev := SetParallelism(-3)
	defer SetParallelism(prev)
	if Parallelism() != 1 {
		t.Fatalf("Parallelism() = %d, want 1", Parallelism())
	}
}

func TestMapNoErr(t *testing.T) {
	prev := SetParallelism(4)
	defer SetParallelism(prev)
	got := MapNoErr(10, func(i int) string { return fmt.Sprint(i) })
	for i, v := range got {
		if v != fmt.Sprint(i) {
			t.Fatalf("out[%d] = %q", i, v)
		}
	}
}
