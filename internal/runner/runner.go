// Package runner fans independent simulation jobs out over a worker pool.
//
// Every experiment in internal/experiments is a sweep of self-contained
// discrete-event simulations: each job builds its own *des.Sim, array,
// workload generator and seeded RNG, so jobs share no mutable state and can
// run on separate goroutines. The runner executes jobs on up to
// Parallelism() workers and returns results indexed by submission order, so
// a sweep assembled from the result slice is bit-identical to running the
// same jobs sequentially — parallelism changes wall time, never output.
//
// With Parallelism() == 1 (or a single job) Map runs everything inline on
// the calling goroutine: the sequential path is literally the same code.
package runner

import (
	"runtime"
	"sync"
	"sync/atomic"
)

var parallelism atomic.Int64

func init() {
	parallelism.Store(int64(runtime.GOMAXPROCS(0)))
}

// SetParallelism sets the process-wide worker count used by Map. Values
// below 1 are clamped to 1. It returns the previous setting so tests can
// restore it.
func SetParallelism(n int) int {
	if n < 1 {
		n = 1
	}
	return int(parallelism.Swap(int64(n)))
}

// Parallelism reports the current worker count (default GOMAXPROCS at
// startup).
func Parallelism() int {
	return int(parallelism.Load())
}

// Map runs fn(i) for i in [0, n) on up to Parallelism() goroutines and
// returns the results in index order. If any call returns an error, Map
// returns the error with the lowest index; all jobs still run to completion
// (simulation jobs are cheap to finish and cancellation would make the
// completed-work set timing-dependent).
func Map[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	errs := make([]error, n)
	workers := Parallelism()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			out[i], errs[i] = fn(i)
		}
		return out, firstError(errs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i], errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	return out, firstError(errs)
}

// MapNoErr is Map for job functions that cannot fail.
func MapNoErr[T any](n int, fn func(i int) T) []T {
	out, _ := Map(n, func(i int) (T, error) { return fn(i), nil })
	return out
}

func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
