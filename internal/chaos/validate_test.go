package chaos

import (
	"errors"
	"testing"

	"repro/internal/des"
)

// TestScenarioValidate: the regression for the silent-no-op arming bug. An
// event targeting a brick that does not exist arms nothing anywhere (Arm
// filters by brick), so Validate must reject it with the typed error.
func TestScenarioValidate(t *testing.T) {
	good, err := Generate(7, Options{
		Bricks: 3, DrivesPerBrick: 4, Horizon: des.Second,
		DriveFails: 2, SlowDrives: 1, BrickCrashes: 1, ScrubPasses: 1, LoadBursts: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := good.Validate(3, 4); err != nil {
		t.Fatalf("generated scenario rejected: %v", err)
	}

	bad := []struct {
		name string
		ev   Event
	}{
		{"brick beyond cluster", Event{Kind: BrickCrash, Brick: 3}},
		{"negative brick", Event{Kind: DriveFail, Brick: -2, Drive: 0}},
		{"client-targeted crash", Event{Kind: BrickCrash, Brick: ClientBrick}},
		{"drive beyond brick", Event{Kind: DriveFail, Brick: 1, Drive: 4}},
		{"negative drive", Event{Kind: SlowDrive, Brick: 1, Drive: -1, Factor: 4}},
		{"load burst on a brick", Event{Kind: LoadBurst, Brick: 2, Factor: 8}},
	}
	for _, tc := range bad {
		sc := Scenario{Seed: 1, Events: append(append([]Event{}, good.Events...), tc.ev)}
		err := sc.Validate(3, 4)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !errors.Is(err, ErrEventTarget) {
			t.Errorf("%s: error %v is not ErrEventTarget", tc.name, err)
		}
	}

	// The same events are fine in a cluster large enough to hold them.
	sc := Scenario{Seed: 1, Events: []Event{{Kind: BrickCrash, Brick: 3}, {Kind: DriveFail, Brick: 1, Drive: 4}}}
	if err := sc.Validate(4, 5); err != nil {
		t.Fatalf("in-range scenario rejected: %v", err)
	}
}

// TestArmMistargetedIsNoOp documents the behavior Validate guards against:
// arming an out-of-range event schedules nothing on any brick.
func TestArmMistargetedIsNoOp(t *testing.T) {
	sc := Scenario{Seed: 1, Events: []Event{{At: des.Millisecond, Kind: BrickCrash, Brick: 7}}}
	for b := 0; b < 3; b++ {
		sim := des.New()
		if n := Arm(sim, sc, b, func(Event) { t.Errorf("event applied on brick %d", b) }); n != 0 {
			t.Errorf("brick %d armed %d events", b, n)
		}
		sim.Run()
	}
	if err := sc.Validate(3, 1); !errors.Is(err, ErrEventTarget) {
		t.Fatalf("Validate let the no-op scenario through: %v", err)
	}
}
