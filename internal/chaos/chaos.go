// Package chaos generates and schedules deterministic fault-injection
// scenarios for simulated MimdRAID clusters. A Scenario is a canonical,
// time-sorted list of composite events — drive failures, fail-slow onsets,
// whole-brick power failures with recovery, scrub passes, client load
// bursts — produced as a pure function of a seed and the scenario shape.
// The package knows nothing about arrays: Arm schedules a brick's slice of
// the timeline onto that brick's simulator and hands each event to an
// apply callback, so the same scenario drives a single array, a lockstep
// co-simulation, or a des.Sharded epoch engine and yields byte-identical
// timelines under every driver.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/des"
)

// Kind enumerates the event types a scenario can carry.
type Kind uint8

const (
	// DriveFail permanently fails one drive of one brick.
	DriveFail Kind = iota
	// SlowDrive sets (Factor > 1) or clears (Factor <= 1) a persistent
	// fail-slow inflation on one drive of one brick.
	SlowDrive
	// BrickCrash power-fails one brick (its array must have the crash
	// model enabled).
	BrickCrash
	// BrickRecover powers a crashed brick back on and runs recovery.
	BrickRecover
	// ScrubPass starts one background scrub pass on one brick, paced at
	// Factor MB/s.
	ScrubPass
	// LoadBurst targets the workload client (Brick == ClientBrick): the
	// closed loop widens by Factor extra outstanding requests for
	// Duration, then narrows back.
	LoadBurst
)

// ClientBrick is the Brick value of events that target the workload
// client rather than an array brick (LoadBurst).
const ClientBrick = -1

// String names the kind for timelines and errors.
func (k Kind) String() string {
	switch k {
	case DriveFail:
		return "drive-fail"
	case SlowDrive:
		return "slow-drive"
	case BrickCrash:
		return "brick-crash"
	case BrickRecover:
		return "brick-recover"
	case ScrubPass:
		return "scrub-pass"
	case LoadBurst:
		return "load-burst"
	default:
		return fmt.Sprintf("chaos.Kind(%d)", uint8(k))
	}
}

// Event is one scheduled injection.
type Event struct {
	// At is the absolute simulated instant the event fires.
	At des.Time
	// Kind selects the injection.
	Kind Kind
	// Brick is the target brick index, or ClientBrick for client-side
	// events.
	Brick int
	// Drive is the drive index within the brick (DriveFail, SlowDrive).
	Drive int
	// Factor is the kind-specific magnitude: fail-slow inflation factor
	// (SlowDrive), scrub bandwidth in MB/s (ScrubPass), or extra
	// outstanding requests (LoadBurst).
	Factor float64
	// Duration is the kind-specific extent: outage length (BrickCrash,
	// informational — the paired BrickRecover carries the actual recovery
	// instant), slow-window length (SlowDrive, informational), or burst
	// length (LoadBurst).
	Duration des.Time
}

// String renders one timeline line; the format is part of the determinism
// contract (digests fold it in), so keep it stable.
func (e Event) String() string {
	return fmt.Sprintf("%.0f %s brick=%d drive=%d factor=%g dur=%.0f",
		float64(e.At), e.Kind, e.Brick, e.Drive, e.Factor, float64(e.Duration))
}

// Scenario is a canonical timeline: events sorted by (At, Kind, Brick,
// Drive), every field a pure function of the generating seed and options.
type Scenario struct {
	Seed   int64
	Events []Event
}

// Timeline renders the whole scenario one event per line — the canonical
// fingerprint cross-driver determinism checks compare.
func (s Scenario) Timeline() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d events=%d\n", s.Seed, len(s.Events))
	for _, e := range s.Events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Options shapes a generated scenario.
type Options struct {
	// Bricks is the cluster size; brick-targeted events draw targets from
	// [0, Bricks).
	Bricks int
	// DrivesPerBrick bounds the Drive field of drive-targeted events.
	DrivesPerBrick int
	// Start and Horizon bound event times: every event (including paired
	// recoveries) lands inside [Start, Start+Horizon].
	Start   des.Time
	Horizon des.Time
	// Per-kind event counts. BrickCrashes crash distinct bricks (each
	// paired with a BrickRecover); DriveFails fail at most one drive per
	// brick so a mirrored brick never loses both copies to the scenario
	// itself.
	DriveFails   int
	SlowDrives   int
	BrickCrashes int
	ScrubPasses  int
	LoadBursts   int
	// SlowFactor is the fail-slow inflation applied by SlowDrive events
	// (default 4). Each onset is paired with a clearing event (Factor 1)
	// inside the horizon.
	SlowFactor float64
	// OutageFrac bounds a brick outage to this fraction of the horizon
	// (default 1/8).
	OutageFrac float64
	// BurstExtra is the extra outstanding requests a LoadBurst adds
	// (default 16).
	BurstExtra int
	// ScrubMBps paces ScrubPass events (default 32).
	ScrubMBps float64
}

// Validate rejects shapes Generate cannot honor.
func (o Options) Validate() error {
	if o.Bricks < 1 {
		return fmt.Errorf("chaos: %d bricks (want >= 1)", o.Bricks)
	}
	if o.Horizon <= 0 {
		return fmt.Errorf("chaos: horizon %v (want > 0)", o.Horizon)
	}
	if o.Start < 0 {
		return fmt.Errorf("chaos: negative start %v", o.Start)
	}
	if o.DriveFails < 0 || o.SlowDrives < 0 || o.BrickCrashes < 0 || o.ScrubPasses < 0 || o.LoadBursts < 0 {
		return fmt.Errorf("chaos: negative event count")
	}
	if (o.DriveFails > 0 || o.SlowDrives > 0) && o.DrivesPerBrick < 1 {
		return fmt.Errorf("chaos: drive events need DrivesPerBrick >= 1, have %d", o.DrivesPerBrick)
	}
	if o.DriveFails > o.Bricks {
		return fmt.Errorf("chaos: %d drive failures over %d bricks (at most one per brick)", o.DriveFails, o.Bricks)
	}
	if o.BrickCrashes > o.Bricks {
		return fmt.Errorf("chaos: %d brick crashes over %d bricks (at most one per brick)", o.BrickCrashes, o.Bricks)
	}
	if o.SlowFactor != 0 && o.SlowFactor < 1 {
		return fmt.Errorf("chaos: slow factor %v (want 0 for default or >= 1)", o.SlowFactor)
	}
	if o.OutageFrac < 0 || o.OutageFrac > 1 {
		return fmt.Errorf("chaos: outage fraction %v (want 0..1)", o.OutageFrac)
	}
	return nil
}

// Generate produces the canonical scenario for (seed, o): the same inputs
// always yield the same timeline, and every draw comes from one seeded
// stream so adding an event kind changes the scenario but never the
// library's other outputs.
func Generate(seed int64, o Options) (Scenario, error) {
	if err := o.Validate(); err != nil {
		return Scenario{}, err
	}
	slowFactor := o.SlowFactor
	if slowFactor == 0 {
		slowFactor = 4
	}
	outageFrac := o.OutageFrac
	if outageFrac == 0 {
		outageFrac = 1.0 / 8
	}
	burstExtra := o.BurstExtra
	if burstExtra == 0 {
		burstExtra = 16
	}
	scrubMBps := o.ScrubMBps
	if scrubMBps == 0 {
		scrubMBps = 32
	}

	rng := rand.New(rand.NewSource(seed))
	at := func(margin des.Time) des.Time {
		span := float64(o.Horizon - margin)
		if span < 0 {
			span = 0
		}
		return o.Start + des.Time(rng.Float64()*span)
	}
	var ev []Event

	// Brick crashes first: they claim distinct bricks, and later drive
	// events avoid crashing bricks' outage windows only through apply-side
	// tolerance — the generator keeps them legal in time, not in target.
	crashed := rng.Perm(o.Bricks)[:o.BrickCrashes]
	sort.Ints(crashed) // Perm order is seed-stable, but sorted reads better
	for _, b := range crashed {
		outage := des.Time((rng.Float64()*0.75 + 0.25) * outageFrac * float64(o.Horizon))
		t := at(outage)
		ev = append(ev,
			Event{At: t, Kind: BrickCrash, Brick: b, Duration: outage},
			Event{At: t + outage, Kind: BrickRecover, Brick: b})
	}

	// Drive failures: distinct bricks, one drive each.
	failed := rng.Perm(o.Bricks)[:o.DriveFails]
	sort.Ints(failed)
	for _, b := range failed {
		ev = append(ev, Event{At: at(0), Kind: DriveFail, Brick: b, Drive: rng.Intn(o.DrivesPerBrick)})
	}

	// Fail-slow windows: onset plus clearing event inside the horizon.
	for i := 0; i < o.SlowDrives; i++ {
		window := des.Time((rng.Float64()*0.75 + 0.25) * outageFrac * float64(o.Horizon))
		t := at(window)
		b, d := rng.Intn(o.Bricks), rng.Intn(o.DrivesPerBrick)
		ev = append(ev,
			Event{At: t, Kind: SlowDrive, Brick: b, Drive: d, Factor: slowFactor, Duration: window},
			Event{At: t + window, Kind: SlowDrive, Brick: b, Drive: d, Factor: 1})
	}

	for i := 0; i < o.ScrubPasses; i++ {
		ev = append(ev, Event{At: at(0), Kind: ScrubPass, Brick: rng.Intn(o.Bricks), Factor: scrubMBps})
	}

	for i := 0; i < o.LoadBursts; i++ {
		burst := des.Time((rng.Float64()*0.75 + 0.25) * outageFrac * float64(o.Horizon))
		ev = append(ev, Event{
			At: at(burst), Kind: LoadBurst, Brick: ClientBrick,
			Factor: float64(burstExtra), Duration: burst,
		})
	}

	// Canonical order: time, then a full structural tie-break so the sort
	// is a total order whatever the draws produced.
	sort.Slice(ev, func(i, j int) bool {
		a, b := ev[i], ev[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Brick != b.Brick {
			return a.Brick < b.Brick
		}
		return a.Drive < b.Drive
	})
	return Scenario{Seed: seed, Events: ev}, nil
}

// Arm schedules every event of sc that targets brick onto sim, invoking
// apply from the simulator at each event's instant. It returns the number
// of events armed. Call it before the simulation starts (or from an event
// on sim's own shard): each apply runs as an ordinary event of that shard,
// so under a sharded engine the injections keep the epoch protocol's
// isolation for free.
func Arm(sim *des.Sim, sc Scenario, brick int, apply func(Event)) int {
	n := 0
	for _, e := range sc.Events {
		if e.Brick != brick {
			continue
		}
		e := e
		sim.At(e.At, func() { apply(e) })
		n++
	}
	return n
}
