package chaos

import (
	"errors"
	"fmt"
)

// ErrEventTarget marks a scenario event whose target does not exist in the
// cluster it is being armed against. Arm schedules only the events matching
// its brick argument, so a mistargeted event is otherwise a silent no-op:
// the scenario's timeline fingerprint includes the event, the cluster never
// sees it, and the drift surfaces (if ever) as an unexplainable digest
// mismatch. Validate turns that into a typed error at build time.
var ErrEventTarget = errors.New("chaos: event target out of range")

// Validate checks every event's target against a cluster shape: bricks
// arrays of drivesPerBrick drives each, plus the workload client. Generated
// scenarios are in range by construction; hand-built or edited scenarios
// should be validated before any Arm call.
func (s Scenario) Validate(bricks, drivesPerBrick int) error {
	for i, e := range s.Events {
		if e.Kind == LoadBurst {
			if e.Brick != ClientBrick {
				return fmt.Errorf("%w: event %d (%s) is a load burst but targets brick %d, not the client (%d)",
					ErrEventTarget, i, e, e.Brick, ClientBrick)
			}
			continue
		}
		if e.Brick == ClientBrick {
			return fmt.Errorf("%w: event %d (%s) targets the client but only load bursts may",
				ErrEventTarget, i, e)
		}
		if e.Brick < 0 || e.Brick >= bricks {
			return fmt.Errorf("%w: event %d (%s) targets brick %d of a %d-brick cluster",
				ErrEventTarget, i, e, e.Brick, bricks)
		}
		if e.Kind == DriveFail || e.Kind == SlowDrive {
			if e.Drive < 0 || e.Drive >= drivesPerBrick {
				return fmt.Errorf("%w: event %d (%s) targets drive %d of a %d-drive brick",
					ErrEventTarget, i, e, e.Drive, drivesPerBrick)
			}
		}
	}
	return nil
}
