package chaos

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/des"
)

func stdOptions() Options {
	return Options{
		Bricks: 4, DrivesPerBrick: 16,
		Horizon:    des.Second,
		DriveFails: 2, SlowDrives: 2, BrickCrashes: 2, ScrubPasses: 2, LoadBursts: 1,
	}
}

// The generator is a pure function of (seed, options): identical inputs
// must yield byte-identical timelines, different seeds different ones.
func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(7, stdOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(7, stdOptions())
	if err != nil {
		t.Fatal(err)
	}
	if a.Timeline() != b.Timeline() {
		t.Fatalf("same seed diverged:\n%s\nvs\n%s", a.Timeline(), b.Timeline())
	}
	c, err := Generate(8, stdOptions())
	if err != nil {
		t.Fatal(err)
	}
	if a.Timeline() == c.Timeline() {
		t.Fatal("different seeds produced identical timelines")
	}
}

// Structural invariants: events sorted, inside the horizon, crashes on
// distinct bricks each paired with a later recovery, drive failures on
// distinct bricks, slow onsets paired with clearing events.
func TestGenerateInvariants(t *testing.T) {
	o := stdOptions()
	o.Start = 100 * des.Millisecond
	sc, err := Generate(3, o)
	if err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(sc.Events, func(i, j int) bool { return sc.Events[i].At < sc.Events[j].At }) {
		t.Fatalf("events not time-sorted:\n%s", sc.Timeline())
	}
	crashAt := map[int]des.Time{}
	failBricks := map[int]bool{}
	slowOpen := map[[2]int]int{}
	for _, e := range sc.Events {
		if e.At < o.Start || e.At > o.Start+o.Horizon {
			t.Fatalf("event outside horizon: %s", e)
		}
		switch e.Kind {
		case BrickCrash:
			if _, dup := crashAt[e.Brick]; dup {
				t.Fatalf("brick %d crashed twice", e.Brick)
			}
			crashAt[e.Brick] = e.At
		case BrickRecover:
			at, ok := crashAt[e.Brick]
			if !ok || e.At <= at {
				t.Fatalf("recover without earlier crash: %s", e)
			}
		case DriveFail:
			if failBricks[e.Brick] {
				t.Fatalf("two drive failures in brick %d", e.Brick)
			}
			failBricks[e.Brick] = true
			if e.Drive < 0 || e.Drive >= o.DrivesPerBrick {
				t.Fatalf("drive out of range: %s", e)
			}
		case SlowDrive:
			k := [2]int{e.Brick, e.Drive}
			if e.Factor > 1 {
				slowOpen[k]++
			} else {
				slowOpen[k]--
			}
		case LoadBurst:
			if e.Brick != ClientBrick {
				t.Fatalf("load burst targeting brick %d", e.Brick)
			}
		}
	}
	if len(crashAt) != o.BrickCrashes {
		t.Fatalf("%d crashes, want %d", len(crashAt), o.BrickCrashes)
	}
	for k, n := range slowOpen {
		if n != 0 {
			t.Fatalf("unbalanced slow window on %v: %d", k, n)
		}
	}
	want := 2*o.BrickCrashes + o.DriveFails + 2*o.SlowDrives + o.ScrubPasses + o.LoadBursts
	if len(sc.Events) != want {
		t.Fatalf("%d events, want %d", len(sc.Events), want)
	}
}

func TestOptionsValidation(t *testing.T) {
	cases := []struct {
		name string
		mod  func(*Options)
	}{
		{"no bricks", func(o *Options) { o.Bricks = 0 }},
		{"zero horizon", func(o *Options) { o.Horizon = 0 }},
		{"negative start", func(o *Options) { o.Start = -1 }},
		{"negative count", func(o *Options) { o.ScrubPasses = -1 }},
		{"drive events without drives", func(o *Options) { o.DrivesPerBrick = 0 }},
		{"too many drive fails", func(o *Options) { o.DriveFails = o.Bricks + 1 }},
		{"too many crashes", func(o *Options) { o.BrickCrashes = o.Bricks + 1 }},
		{"sub-unity slow factor", func(o *Options) { o.SlowFactor = 0.5 }},
		{"outage fraction", func(o *Options) { o.OutageFrac = 1.5 }},
	}
	for _, c := range cases {
		o := stdOptions()
		c.mod(&o)
		if _, err := Generate(1, o); err == nil {
			t.Errorf("%s: Generate accepted invalid options", c.name)
		}
	}
}

// Arm must deliver exactly the target brick's events, at their timestamps,
// in timeline order, as ordinary simulator events.
func TestArmFiltersAndOrders(t *testing.T) {
	sc, err := Generate(11, stdOptions())
	if err != nil {
		t.Fatal(err)
	}
	var want []string
	perBrick := map[int]int{}
	for _, e := range sc.Events {
		perBrick[e.Brick]++
		if e.Brick == 1 {
			want = append(want, e.String())
		}
	}
	sim := des.New()
	var got []string
	n := Arm(sim, sc, 1, func(e Event) {
		if now := sim.Now(); now != e.At {
			t.Errorf("event fired at %v, scheduled %v", now, e.At)
		}
		got = append(got, e.String())
	})
	if n != perBrick[1] {
		t.Fatalf("armed %d events, brick 1 has %d", n, perBrick[1])
	}
	sim.Run()
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Fatalf("delivered:\n%s\nwant:\n%s", strings.Join(got, "\n"), strings.Join(want, "\n"))
	}
}

// Timelines embed every field, so two scenarios differing in any event
// render differently (the digest contract).
func TestTimelineCoversFields(t *testing.T) {
	sc, err := Generate(5, stdOptions())
	if err != nil {
		t.Fatal(err)
	}
	tl := sc.Timeline()
	if !strings.HasPrefix(tl, fmt.Sprintf("seed=%d events=%d\n", sc.Seed, len(sc.Events))) {
		t.Fatalf("timeline header missing: %q", tl)
	}
	for _, k := range []string{"brick-crash", "brick-recover", "drive-fail", "slow-drive", "scrub-pass", "load-burst"} {
		if !strings.Contains(tl, k) {
			t.Fatalf("timeline missing %s:\n%s", k, tl)
		}
	}
}
