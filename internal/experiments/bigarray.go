package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/layout"
)

// The big-array experiment scales the simulator past one brick: a front-end
// client stripes a closed-loop workload over many independent MimdRAID
// bricks (each its own array, drives, and buses) connected by an
// interconnect with a fixed link latency. Each brick is one shard of a
// des.Sharded engine; the link latency is the conservative lookahead — no
// request or completion can cross between client and brick faster than the
// link carries it, which is exactly the bound the epoch protocol needs.
//
// The same world also runs under a naive lockstep driver (globally pick the
// sim with the earliest event, step it, repeat) — the way a pre-sharding
// implementation co-simulates several sims. The digest of a run is
// driver- and worker-count-independent, and the events/sec benchmark uses
// the lockstep driver as the legacy baseline.

// bigLinkLat is the interconnect latency between the client and a brick —
// and therefore the sharded engine's lookahead window.
const bigLinkLat = 150 * des.Microsecond

// BigArraySpec sizes a multi-brick run.
type BigArraySpec struct {
	Bricks int
	Cfg    layout.Config
	// IOs is the total number of client requests.
	IOs int
	// Outstanding is the cluster-wide closed-loop window.
	Outstanding int
	Sectors     int
	ReadFrac    float64
	Seed        int64
	// Workers is the epoch worker count (0 = des.ShardWorkers()); ignored
	// by the lockstep driver.
	Workers int
	// Batch primes each brick's share of the initial window through one
	// SubmitBatch instead of one Submit per request.
	Batch bool
}

// BigArrayResult aggregates a multi-brick run.
type BigArrayResult struct {
	Drives    int
	Completed int
	// Events is the total simulator events executed across all shards.
	Events uint64
	// Elapsed is the simulated time of the last completion.
	Elapsed des.Time
	IOPS    float64
	MeanLat des.Time
	// Digest fingerprints the run: equal digests mean the same simulation
	// happened, whatever driver or worker count executed it. Latencies are
	// folded in as integer nanoseconds so the fingerprint is independent of
	// the order client-side completions were summed in.
	Digest string
}

// bigCluster wires the client and bricks onto a set of sims. The client's
// mutable state lives on sims[0] and is only touched by that shard's
// events; each array is only touched by its own shard's events — the
// isolation the epoch protocol requires.
type bigCluster struct {
	spec   BigArraySpec
	sims   []*des.Sim // sims[0] = client, sims[1+b] = brick b
	arrays []*core.Array
	send   func(from, to int, at des.Time, fn func())

	rng      *rand.Rand
	vol      int64
	issued   int
	finished int
	latNs    int64
	last     des.Time
	perBrick []int
}

// buildBigCluster constructs the arrays and the priming event. The sims and
// the send function come from the driver (epoch or lockstep).
func buildBigCluster(spec BigArraySpec, sims []*des.Sim, send func(int, int, des.Time, func())) (*bigCluster, error) {
	c := &bigCluster{
		spec: spec, sims: sims, send: send,
		rng:      rand.New(rand.NewSource(spec.Seed)),
		arrays:   make([]*core.Array, spec.Bricks),
		perBrick: make([]int, spec.Bricks),
	}
	for b := range c.arrays {
		a, err := core.New(sims[1+b], core.Options{
			Config: spec.Cfg, Policy: policyFor(spec.Cfg), Seed: spec.Seed + int64(b),
		})
		if err != nil {
			return nil, err
		}
		c.arrays[b] = a
	}
	c.vol = c.arrays[0].DataSectors() - int64(spec.Sectors)
	sims[0].At(0, c.prime)
	return c, nil
}

// draw picks the next request (brick, offset, op) from the client RNG.
func (c *bigCluster) draw() (int, int64, core.Op) {
	b := c.rng.Intn(c.spec.Bricks)
	off := c.rng.Int63n(c.vol)
	op := core.Read
	if c.rng.Float64() >= c.spec.ReadFrac {
		op = core.Write
	}
	return b, off, op
}

// submit routes one request to brick b over the link; the completion comes
// back over the link and re-enters the closed loop.
func (c *bigCluster) submit(b int, off int64, op core.Op, submitAt des.Time) {
	a := c.arrays[b]
	sim := c.sims[1+b]
	if err := a.Submit(op, off, c.spec.Sectors, false, func(core.Result) {
		c.send(1+b, 0, sim.Now()+bigLinkLat, func() { c.complete(b, submitAt) })
	}); err != nil {
		panic(err)
	}
}

// prime fills the closed-loop window. It runs as the client shard's first
// event so the cross-shard sends originate inside the epoch protocol.
func (c *bigCluster) prime() {
	window := c.spec.Outstanding
	if window > c.spec.IOs {
		window = c.spec.IOs
	}
	now := c.sims[0].Now()
	if c.spec.Batch {
		// Group the window by brick and deliver each group as one message
		// carrying one SubmitBatch: the brick validates, resolves, and
		// queues its whole share before its schedulers run once.
		batches := make([][]core.BatchOp, c.spec.Bricks)
		for i := 0; i < window; i++ {
			b, off, op := c.draw()
			submitAt := now
			batches[b] = append(batches[b], core.BatchOp{
				Op: op, Off: off, Count: c.spec.Sectors,
				Done: func(core.Result) {
					c.send(1+b, 0, c.sims[1+b].Now()+bigLinkLat, func() { c.complete(b, submitAt) })
				},
			})
		}
		c.issued = window
		for b, ops := range batches {
			if len(ops) == 0 {
				continue
			}
			b, ops := b, ops
			c.send(0, 1+b, now+bigLinkLat, func() {
				if _, err := c.arrays[b].SubmitBatch(ops); err != nil {
					panic(err)
				}
			})
		}
		return
	}
	for i := 0; i < window; i++ {
		c.issue()
	}
}

// issue sends one request over the link (closed-loop reissue path).
func (c *bigCluster) issue() {
	if c.issued >= c.spec.IOs {
		return
	}
	c.issued++
	b, off, op := c.draw()
	submitAt := c.sims[0].Now()
	c.send(0, 1+b, submitAt+bigLinkLat, func() { c.submit(b, off, op, submitAt) })
}

// complete records one finished request on the client shard and reissues.
func (c *bigCluster) complete(b int, submitAt des.Time) {
	now := c.sims[0].Now()
	c.latNs += int64(math.Round(float64(now-submitAt) * 1000))
	if now > c.last {
		c.last = now
	}
	c.finished++
	c.perBrick[b]++
	c.issue()
}

// result assembles the run summary from the client-side counters.
func (c *bigCluster) result(events uint64) *BigArrayResult {
	r := &BigArrayResult{
		Drives:    c.spec.Bricks * c.spec.Cfg.Disks(),
		Completed: c.finished,
		Events:    events,
		Elapsed:   c.last,
	}
	if c.last > 0 {
		r.IOPS = float64(c.finished) / (float64(c.last) / 1e6)
	}
	if c.finished > 0 {
		r.MeanLat = des.Time(float64(c.latNs) / float64(c.finished) / 1000)
	}
	r.Digest = fmt.Sprintf("issued=%d finished=%d latNs=%d last=%.6f perBrick=%v events=%d",
		c.issued, c.finished, c.latNs, float64(c.last), c.perBrick, events)
	return r
}

// RunBigArray executes the cluster on the sharded epoch engine.
func RunBigArray(spec BigArraySpec) (*BigArrayResult, error) {
	sh := des.NewSharded(spec.Bricks+1, bigLinkLat)
	if spec.Workers > 0 {
		if err := sh.SetWorkers(spec.Workers); err != nil {
			return nil, err
		}
	}
	sims := make([]*des.Sim, spec.Bricks+1)
	for i := range sims {
		sims[i] = sh.Shard(i)
	}
	c, err := buildBigCluster(spec, sims, sh.Send)
	if err != nil {
		return nil, err
	}
	sh.Run()
	if c.finished != c.spec.IOs {
		return nil, fmt.Errorf("experiments: big array drained at %d/%d completions", c.finished, c.spec.IOs)
	}
	return c.result(sh.Processed()), nil
}

// RunBigArrayLockstep executes the same cluster under the naive global
// min-clock driver: every event requires a scan over all sims to find the
// earliest, and cross-sim events are injected directly. This is the legacy
// way to co-simulate independent sims, and the baseline the events/sec
// benchmark compares the epoch engine against.
func RunBigArrayLockstep(spec BigArraySpec) (*BigArrayResult, error) {
	sims := make([]*des.Sim, spec.Bricks+1)
	for i := range sims {
		sims[i] = des.New()
	}
	send := func(from, to int, at des.Time, fn func()) {
		sims[to].At(at, fn)
	}
	c, err := buildBigCluster(spec, sims, send)
	if err != nil {
		return nil, err
	}
	for {
		best := -1
		var bt des.Time
		for i, s := range sims {
			if at, ok := s.NextAt(); ok && (best < 0 || at < bt) {
				best, bt = i, at
			}
		}
		if best < 0 {
			break
		}
		sims[best].Step()
	}
	if c.finished != c.spec.IOs {
		return nil, fmt.Errorf("experiments: big array drained at %d/%d completions", c.finished, c.spec.IOs)
	}
	var events uint64
	for _, s := range sims {
		events += s.Processed
	}
	return c.result(events), nil
}

// DefaultBigArraySpec is the 128-drive cluster the benchmark and the
// bigarray experiment run: 8 bricks of (Ds=4, Dr=2, Dm=2) = 16 drives each.
func DefaultBigArraySpec(c Config) BigArraySpec {
	return BigArraySpec{
		Bricks:      8,
		Cfg:         layout.Config{Ds: 4, Dr: 2, Dm: 2},
		IOs:         c.IometerIOs * 4,
		Outstanding: 128,
		Sectors:     8,
		ReadFrac:    0.67,
		Seed:        c.Seed,
		Batch:       true,
	}
}

// BigArray is the registry experiment: the 128-drive cluster at one, two,
// and four epoch workers, reporting throughput (identical by construction)
// and the run fingerprint as metrics.
func BigArray(c Config) (*Figure, error) {
	fig := &Figure{
		Name: "bigarray", Title: "128-drive multi-brick cluster (sharded event loop)",
		XLabel: "epoch workers", YLabel: "IOPS",
	}
	var iops Series
	iops.Label = "cluster-iops"
	var first *BigArrayResult
	for _, w := range []int{1, 2, 4} {
		spec := DefaultBigArraySpec(c)
		spec.Workers = w
		r, err := RunBigArray(spec)
		if err != nil {
			return nil, err
		}
		if first == nil {
			first = r
		} else if r.Digest != first.Digest {
			return nil, fmt.Errorf("experiments: worker count changed the simulation: %q vs %q", r.Digest, first.Digest)
		}
		iops.Add(float64(w), r.IOPS)
	}
	fig.Series = append(fig.Series, iops)
	fig.Metric("drives", float64(first.Drives))
	fig.Metric("events", float64(first.Events))
	fig.Metric("mean-latency-us", float64(first.MeanLat))
	fig.Metric("completed", float64(first.Completed))
	return fig, nil
}
