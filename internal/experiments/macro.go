package experiments

import (
	"fmt"
	"math"

	"repro/internal/blockcache"
	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/layout"
	"repro/internal/model"
	"repro/internal/trace"
	"repro/internal/tracegen"
	"repro/internal/workload"
)

// srChoice picks the SR-Array aspect ratio the paper's models recommend
// for D disks under workload statistics s (p=1: replica propagation is
// masked at original trace speed).
func srChoice(D int, locality float64) layout.Config {
	ds, dr, err := model.Optimize(paperDisk(), D, 1, 1, locality, func(dr int) bool {
		return refHeads%dr == 0
	})
	if err != nil {
		panic(err)
	}
	return layout.SRArray(ds, dr)
}

// Figure6 compares average response time versus number of disks for
// striping, RAID-10, D-way mirroring, and the model-chosen SR-Array under
// the Cello workloads at original speed, plus the analytic latency model
// (paper Figure 6).
func Figure6(c Config, workloadName string) (*Figure, error) {
	var p tracegen.Params
	switch workloadName {
	case "cello-base":
		p = tracegen.CelloBase(c.Seed)
	case "cello-disk6":
		p = tracegen.CelloDisk6(c.Seed)
	default:
		return nil, fmt.Errorf("figure6: unknown workload %q", workloadName)
	}
	tr := genTrace(p, c.TraceIOs)
	st := tr.ComputeStats()
	f := &Figure{
		Name:   "Figure 6 (" + workloadName + ")",
		Title:  "average I/O response time vs number of disks, original trace speed",
		XLabel: "disks",
		YLabel: "mean response (us)",
	}
	ds := []int{1, 2, 3, 4, 6, 8, 12}

	stripe := Series{Label: "striping (SATF)"}
	raid10 := Series{Label: "RAID-10 (SATF)"}
	mirror := Series{Label: "Dm-way mirror (SATF)"}
	sr := Series{Label: "SR-Array (RSATF)"}
	mdl := Series{Label: "model (Eq. 5/6)"}
	dsk := paperDisk()
	type slot struct {
		series *Series
		x      float64
	}
	var jobs []replayJob
	var slots []slot
	add := func(s *Series, D int, cfg layout.Config) {
		jobs = append(jobs, replayJob{cfg: cfg, tr: tr})
		slots = append(slots, slot{s, float64(D)})
	}
	for _, D := range ds {
		add(&stripe, D, layout.Striping(D))
		if D%2 == 0 {
			add(&raid10, D, layout.RAID10(D))
		}
		if D > 1 {
			add(&mirror, D, layout.Mirror(D))
		}
		cfg := srChoice(D, st.SeekLocality)
		add(&sr, D, cfg)
		// The model curve evaluates Eq. (9) at the integer configuration
		// with p=1 and the workload's locality, plus the reporting pad.
		lat := model.Latency(dsk, cfg.Ds, cfg.Dr, 1, st.SeekLocality)
		mdl.Add(float64(D), float64(lat+ReportPad))
	}
	res, err := runReplayJobs(c.Seed, jobs)
	if err != nil {
		return nil, err
	}
	for i, r := range res {
		if r.ok {
			slots[i].series.Add(slots[i].x, float64(r.mean))
		}
	}
	f.Series = []Series{stripe, raid10, mirror, sr, mdl}
	return f, nil
}

func replayMeanChecked(cfg layout.Config, tr *trace.Trace, seed int64) (des.Time, bool, error) {
	return replayMean(cfg, policyFor(cfg), tr, seed, nil)
}

// Figure7 sweeps the SR-Array aspect ratio at fixed disk counts for a
// Cello workload, marking what the model recommends (paper Figure 7).
func Figure7(c Config, workloadName string) (*Figure, error) {
	var p tracegen.Params
	switch workloadName {
	case "cello-base":
		p = tracegen.CelloBase(c.Seed)
	case "cello-disk6":
		p = tracegen.CelloDisk6(c.Seed)
	default:
		return nil, fmt.Errorf("figure7: unknown workload %q", workloadName)
	}
	tr := genTrace(p, c.TraceIOs)
	st := tr.ComputeStats()
	f := &Figure{
		Name:   "Figure 7 (" + workloadName + ")",
		Title:  "SR-Array aspect ratio alternatives (Y at X=D for each Ds x Dr)",
		XLabel: "disks",
		YLabel: "mean response (us)",
	}
	recommended := Series{Label: "model-chosen"}
	type meta struct {
		label  string
		x      float64
		chosen bool
	}
	var jobs []replayJob
	var metas []meta
	for _, D := range []int{2, 4, 6, 12} {
		chosen := srChoice(D, st.SeekLocality)
		for dr := 1; dr <= D && dr <= model.MaxDr; dr++ {
			if D%dr != 0 || refHeads%dr != 0 {
				continue
			}
			cfg := layout.SRArray(D/dr, dr)
			jobs = append(jobs, replayJob{cfg: cfg, tr: tr})
			metas = append(metas, meta{
				label:  fmt.Sprintf("%dx%d", cfg.Ds, cfg.Dr),
				x:      float64(D),
				chosen: cfg.Ds == chosen.Ds && cfg.Dr == chosen.Dr,
			})
		}
	}
	res, err := runReplayJobs(c.Seed, jobs)
	if err != nil {
		return nil, err
	}
	for i, r := range res {
		if !r.ok {
			continue
		}
		s := Series{Label: metas[i].label}
		s.Add(metas[i].x, float64(r.mean))
		f.Series = append(f.Series, s)
		if metas[i].chosen {
			recommended.Add(metas[i].x, float64(r.mean))
		}
	}
	f.Series = append(f.Series, recommended)
	return f, nil
}

// Figure8 replays the TPC-C trace at original speed on striping, RAID-10,
// and SR-Array configurations from 12 to 36 disks (paper Figure 8(a)),
// plus the aspect-ratio alternatives at 36 disks (8(b), encoded as extra
// series with a single point).
func Figure8(c Config) (*Figure, error) {
	p := tracegen.TPCC(c.Seed)
	tr := genTrace(p, c.TraceIOs)
	st := tr.ComputeStats()
	f := &Figure{
		Name:   "Figure 8 (tpcc)",
		Title:  "TPC-C response time vs disks; single-point series are 36-disk alternatives",
		XLabel: "disks",
		YLabel: "mean response (us)",
	}
	stripe := Series{Label: "striping (SATF)"}
	raid10 := Series{Label: "RAID-10 (SATF)"}
	sr := Series{Label: "SR-Array (RSATF)"}
	type slot struct {
		series *Series // nil: a fresh single-point alternative series
		label  string
		x      float64
	}
	var jobs []replayJob
	var slots []slot
	for _, D := range []int{12, 18, 24, 36} {
		jobs = append(jobs, replayJob{cfg: layout.Striping(D), tr: tr})
		slots = append(slots, slot{series: &stripe, x: float64(D)})
		jobs = append(jobs, replayJob{cfg: layout.RAID10(D), tr: tr})
		slots = append(slots, slot{series: &raid10, x: float64(D)})
		jobs = append(jobs, replayJob{cfg: srChoice(D, st.SeekLocality), tr: tr})
		slots = append(slots, slot{series: &sr, x: float64(D)})
	}
	// 8(b): alternatives at D=36.
	for _, alt := range []layout.Config{
		layout.SRArray(36, 1), layout.SRArray(18, 2), layout.SRArray(12, 3),
		layout.SRArray(9, 4), layout.SRArray(6, 6),
	} {
		jobs = append(jobs, replayJob{cfg: alt, tr: tr})
		slots = append(slots, slot{label: fmt.Sprintf("36d %dx%d", alt.Ds, alt.Dr), x: 36})
	}
	res, err := runReplayJobs(c.Seed, jobs)
	if err != nil {
		return nil, err
	}
	var alts []Series
	for i, r := range res {
		if !r.ok {
			continue
		}
		if slots[i].series != nil {
			slots[i].series.Add(slots[i].x, float64(r.mean))
			continue
		}
		s := Series{Label: slots[i].label}
		s.Add(slots[i].x, float64(r.mean))
		alts = append(alts, s)
	}
	f.Series = append([]Series{stripe, raid10, sr}, alts...)
	return f, nil
}

// Figure9 compares local schedulers as the trace rate scales: LOOK vs
// SATF on striping and RLOOK vs RSATF on the SR-Array (paper Figure 9).
func Figure9(c Config, workloadName string) (*Figure, error) {
	var p tracegen.Params
	var stripeCfg, srCfg layout.Config
	var rates []float64
	switch workloadName {
	case "cello-base":
		p = tracegen.CelloBase(c.Seed)
		stripeCfg, srCfg = layout.Striping(6), layout.SRArray(2, 3)
		rates = []float64{1, 16, 48, 96, 192, 288}
	case "tpcc":
		p = tracegen.TPCC(c.Seed)
		stripeCfg, srCfg = layout.Striping(36), layout.SRArray(9, 4)
		rates = []float64{1, 2, 4, 8, 12, 16}
	default:
		return nil, fmt.Errorf("figure9: unknown workload %q", workloadName)
	}
	base := genTrace(p, c.TraceIOs)
	f := &Figure{
		Name:   "Figure 9 (" + workloadName + ")",
		Title:  "local scheduler comparison vs trace scale rate",
		XLabel: "scale rate",
		YLabel: "mean response (us)",
	}
	runs := []struct {
		label  string
		cfg    layout.Config
		policy string
	}{
		{"striping LOOK", stripeCfg, "look"},
		{"striping SATF", stripeCfg, "satf"},
		{"SR-Array RLOOK", srCfg, "rlook"},
		{"SR-Array RSATF", srCfg, "rsatf"},
	}
	// One scaled copy per rate, shared across runs (replay only reads it).
	scaled := make([]*trace.Trace, len(rates))
	for i, rate := range rates {
		scaled[i] = base.Scale(rate)
	}
	var jobs []replayJob
	for _, r := range runs {
		for _, tr := range scaled {
			jobs = append(jobs, replayJob{cfg: r.cfg, policy: r.policy, tr: tr})
		}
	}
	res, err := runReplayJobs(c.Seed, jobs)
	if err != nil {
		return nil, err
	}
	for ri, r := range runs {
		s := Series{Label: r.label}
		for xi, rate := range rates {
			p := res[ri*len(rates)+xi]
			if !p.ok {
				break // saturated; higher rates only get worse
			}
			s.Add(rate, float64(p.mean))
		}
		f.Series = append(f.Series, s)
	}
	return f, nil
}

// Figure10 compares response time across configurations as the trace rate
// scales, at fixed disk budgets (paper Figure 10): 6 disks for Cello base,
// 36 for TPC-C.
func Figure10(c Config, workloadName string) (*Figure, error) {
	var p tracegen.Params
	var configs []layout.Config
	var rates []float64
	switch workloadName {
	case "cello-base":
		p = tracegen.CelloBase(c.Seed)
		configs = []layout.Config{
			layout.Striping(6),   // 6x1x1
			layout.RAID10(6),     // 3x1x2
			layout.Mirror(6),     // 1x1x6
			layout.SRArray(1, 6), // 1x6x1
			layout.SRArray(2, 3), // 2x3x1
			layout.SRArray(3, 2), // 3x2x1
		}
		rates = []float64{1, 16, 48, 96, 160, 240, 320, 420}
	case "tpcc":
		p = tracegen.TPCC(c.Seed)
		configs = []layout.Config{
			layout.Striping(36),
			layout.SRArray(18, 2),
			layout.SRArray(12, 3),
			layout.SRArray(9, 4),
			layout.RAID10(36), // 18x1x2
		}
		rates = []float64{1, 2, 4, 8, 12, 16, 20}
	default:
		return nil, fmt.Errorf("figure10: unknown workload %q", workloadName)
	}
	base := genTrace(p, c.TraceIOs)
	f := &Figure{
		Name:   "Figure 10 (" + workloadName + ")",
		Title:  "response time vs trace scale rate at a fixed disk budget",
		XLabel: "scale rate",
		YLabel: "mean response (us)",
	}
	scaled := make([]*trace.Trace, len(rates))
	for i, rate := range rates {
		scaled[i] = base.Scale(rate)
	}
	var jobs []replayJob
	for _, cfg := range configs {
		for _, tr := range scaled {
			jobs = append(jobs, replayJob{cfg: cfg, tr: tr})
		}
	}
	res, err := runReplayJobs(c.Seed, jobs)
	if err != nil {
		return nil, err
	}
	for ci, cfg := range configs {
		s := Series{Label: cfg.String() + " " + policyFor(cfg)}
		for xi, rate := range rates {
			p := res[ci*len(rates)+xi]
			if !p.ok {
				break
			}
			s.Add(rate, float64(p.mean))
		}
		f.Series = append(f.Series, s)
	}
	return f, nil
}

// Figure11 compares adding disks against adding a volatile LRU memory
// cache (paper Figure 11). Disk series: model-chosen SR-Arrays at growing
// D. Memory series: the base configuration fronted by caches of growing
// size (expressed as a percent of the data set on the X axis of the
// returned memory series).
func Figure11(c Config, workloadName string) (*Figure, error) {
	var p tracegen.Params
	var baseDisks int
	var diskCounts []int
	switch workloadName {
	case "cello-base":
		p = tracegen.CelloBase(c.Seed)
		baseDisks = 1
		diskCounts = []int{1, 2, 4, 6, 8}
	case "tpcc":
		p = tracegen.TPCC(c.Seed)
		baseDisks = 12
		diskCounts = []int{12, 18, 24, 36}
	default:
		return nil, fmt.Errorf("figure11: unknown workload %q", workloadName)
	}
	base := genTrace(p, c.TraceIOs)
	st := base.ComputeStats()
	// Cache sizes straddle the trace's measured working set so the hit
	// rate is capacity-sensitive at any run scale (the paper swept percent
	// of the file system over a week-long trace; a shortened trace touches
	// proportionally less, so fixed percentages would all exceed it).
	ws := workingSetBytes(base)
	cacheSizes := []int64{ws / 8, ws / 4, ws / 2, ws}
	f := &Figure{
		Name:   "Figure 11 (" + workloadName + ")",
		Title:  "scaling disks vs adding memory cache (memory X axis = % of data set)",
		XLabel: "disks | cache %",
		YLabel: "mean response (us)",
	}
	type slot struct {
		si int // index into seriesList
		x  float64
	}
	var seriesList []Series
	var jobs []replayJob
	var slots []slot
	for _, rate := range []float64{1, 3} {
		tr := base.Scale(rate)
		di := len(seriesList)
		seriesList = append(seriesList, Series{Label: fmt.Sprintf("SR-Array x%g", rate)})
		for _, D := range diskCounts {
			jobs = append(jobs, replayJob{cfg: srChoice(D, st.SeekLocality), tr: tr})
			slots = append(slots, slot{di, float64(D)})
		}
		mi := len(seriesList)
		seriesList = append(seriesList, Series{Label: fmt.Sprintf("Memory x%g", rate)})
		for _, bytes := range cacheSizes {
			jobs = append(jobs, replayJob{cfg: srChoice(baseDisks, st.SeekLocality), tr: tr, cacheBytes: bytes})
			slots = append(slots, slot{mi, float64(bytes) / float64(tr.DataSectors*512) * 100})
		}
	}
	res, err := runReplayJobs(c.Seed, jobs)
	if err != nil {
		return nil, err
	}
	for i, r := range res {
		if r.ok {
			seriesList[slots[i].si].Add(slots[i].x, float64(r.mean))
		}
	}
	f.Series = seriesList
	return f, nil
}

// replayCached is replayMean through a blockcache.CachedArray.
func replayCached(cfg layout.Config, tr *trace.Trace, seed int64, cacheBytes int64) (des.Time, bool, error) {
	sim, a, err := buildArray(cfg, policyFor(cfg), tr.DataSectors, seed, nil)
	if err != nil {
		return 0, false, err
	}
	ca := blockcache.NewCachedArray(a, cacheBytes)
	// Inline open-loop replay through the cache.
	var sync stats64
	finished := 0
	saturated := false
	var arrive func(i int)
	arrive = func(i int) {
		if i >= len(tr.Records) || saturated {
			return
		}
		rec := tr.Records[i]
		at := rec.At
		if at < sim.Now() {
			at = sim.Now()
		}
		sim.At(at, func() {
			op := core.Read
			if rec.Write {
				op = core.Write
			}
			if err := ca.Submit(op, rec.Off, rec.Count, rec.Async, func(r core.Result) {
				if !r.Async {
					sync.add(float64(r.Latency()))
				}
				finished++
			}); err != nil {
				panic(err)
			}
			for d := 0; d < a.Disks(); d++ {
				if a.QueueLen(d) > workload.SaturationQueue {
					saturated = true
				}
			}
			arrive(i + 1)
		})
	}
	arrive(0)
	submitted := len(tr.Records)
	for finished < submitted {
		if !sim.Step() {
			if saturated {
				return 0, false, nil
			}
			return 0, false, fmt.Errorf("experiments: cached replay stalled")
		}
		if saturated {
			return 0, false, nil
		}
	}
	return des.Time(sync.mean()) + ReportPad, true, nil
}

// workingSetBytes counts the distinct 8KB blocks a trace touches.
func workingSetBytes(tr *trace.Trace) int64 {
	blocks := map[int64]bool{}
	for _, r := range tr.Records {
		for b := r.Off / 16; b <= (r.Off+int64(r.Count)-1)/16; b++ {
			blocks[b] = true
		}
	}
	return int64(len(blocks)) * 16 * 512
}

type stats64 struct {
	n   int
	sum float64
}

func (s *stats64) add(v float64) { s.n++; s.sum += v }
func (s *stats64) mean() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.sum / float64(s.n)
}
