package experiments

import "testing"

// TestService runs the front-end experiment at a small scale: the full
// thousand-tenant fleet, a fraction of the request budget. The experiment
// itself enforces the hard properties (deterministic digests, gateway 429
// accounting equal to the array's shed counter); the test checks the load
// actually flowed and both rejection layers fired.
func TestService(t *testing.T) {
	c := Default()
	c.IometerIOs = 25 // 10k requests; default 2500 drives the full 1M
	fig, err := Service(c)
	if err != nil {
		t.Fatalf("Service: %v", err)
	}
	m := fig.Metrics
	if m["load/tenants"] != 1000 {
		t.Fatalf("tenants = %v, want 1000", m["load/tenants"])
	}
	if m["load/issued"] < 10000 {
		t.Fatalf("issued = %v, want >= 10000", m["load/issued"])
	}
	if m["load/ok"] <= 0 || m["load/failed"] != 0 {
		t.Fatalf("ok=%v failed=%v", m["load/ok"], m["load/failed"])
	}
	if m["load/limited_429"] <= 0 {
		t.Fatalf("token-bucket 429 path never fired: %v", m)
	}
	if m["load/overloaded_429"] <= 0 {
		t.Fatalf("array admission-control 429 path never fired: %v", m)
	}
	if m["determinism/ok"] != 1 {
		t.Fatalf("determinism metric missing: %v", m)
	}
	if len(fig.Series) != 2 || len(fig.Series[0].Points) == 0 {
		t.Fatalf("figure series malformed: %+v", fig.Series)
	}
}
