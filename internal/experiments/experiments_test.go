package experiments

import (
	"math"
	"strings"
	"testing"
)

// The experiment tests assert the paper's qualitative shapes — who wins,
// on which side crossovers fall, how curves move — at the Default() run
// scale. Absolute microseconds are not asserted (the substrate is a
// simulator, not the authors' testbed).

func TestTable1Renders(t *testing.T) {
	s := Table1().String()
	for _, want := range []string{"ST39133LWV", "10000", "5.200ms"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 1 output missing %q:\n%s", want, s)
		}
	}
}

func TestTable2HeadPredictionAccuracy(t *testing.T) {
	r, err := Table2(Default())
	if err != nil {
		t.Fatal(err)
	}
	if r.Requests < 1000 {
		t.Fatalf("only %d requests sampled", r.Requests)
	}
	// Paper: 0.22% misses; accept anything under 1%.
	if r.MissRate > 0.01 {
		t.Errorf("miss rate %.4f, want < 0.01", r.MissRate)
	}
	// Mean access in the low milliseconds, as in Table 2.
	if r.AvgAccess < 1500 || r.AvgAccess > 9000 {
		t.Errorf("average access %v, want 1.5-9ms", r.AvgAccess)
	}
	// Demerit a small fraction of access time (paper 1.9%; our noise model
	// is heavier-tailed, accept < 12%).
	if r.DemeritOverAT > 0.12 {
		t.Errorf("demerit/access = %.3f, want < 0.12", r.DemeritOverAT)
	}
	if math.Abs(float64(r.MeanError)) > 120 {
		t.Errorf("mean prediction error %v, want within ±120us", r.MeanError)
	}
}

func TestTable3MatchesTargets(t *testing.T) {
	res := Table3(Default())
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, r := range res.Rows {
		m, want := r.Measured, r.Target
		if rel(m.ReadFrac, want.ReadFrac) > 0.12 {
			t.Errorf("%s: read frac %.3f vs %.3f", r.Name, m.ReadFrac, want.ReadFrac)
		}
		if rel(m.SeekLocality, want.Locality) > 0.35 {
			t.Errorf("%s: L %.2f vs %.2f", r.Name, m.SeekLocality, want.Locality)
		}
		if want.RAWFrac > 0 && rel(m.RAWFrac, want.RAWFrac) > 0.45 {
			t.Errorf("%s: RAW %.4f vs %.4f", r.Name, m.RAWFrac, want.RAWFrac)
		}
	}
}

func rel(a, b float64) float64 {
	if b == 0 {
		return math.Abs(a)
	}
	return math.Abs(a-b) / b
}

func TestFigure5SimulatorValidatesPrototype(t *testing.T) {
	f, err := Figure5(Default())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: <3% throughput discrepancy. Our prototype-mode noise is
	// synthetic; require agreement within 8% at every point.
	for _, mix := range []string{"reads", "50/50 r/w"} {
		for _, q := range []float64{2, 4, 8, 16, 32, 64} {
			sim := f.At(mix+" simulator", q)
			proto := f.At(mix+" prototype", q)
			if math.IsNaN(sim) || math.IsNaN(proto) {
				t.Fatalf("%s q=%v missing", mix, q)
			}
			if gap := math.Abs(sim-proto) / sim; gap > 0.08 {
				t.Errorf("%s q=%v: sim %.0f vs proto %.0f IOPS (%.1f%% gap)", mix, q, sim, proto, gap*100)
			}
		}
		// Throughput grows with queue depth.
		if f.At(mix+" simulator", 64) <= f.At(mix+" simulator", 2) {
			t.Errorf("%s: no throughput growth with queue depth", mix)
		}
	}
	// Writes with foreground propagation cost throughput.
	if f.At("50/50 r/w simulator", 32) >= f.At("reads simulator", 32) {
		t.Error("50/50 workload not slower than pure reads")
	}
}

func TestFigure6Shapes(t *testing.T) {
	f, err := Figure6(Default(), "cello-base")
	if err != nil {
		t.Fatal(err)
	}
	sr6 := f.At("SR-Array (RSATF)", 6)
	stripe6 := f.At("striping (SATF)", 6)
	raid6 := f.At("RAID-10 (SATF)", 6)
	single := f.At("SR-Array (RSATF)", 1)
	if math.IsNaN(sr6) || math.IsNaN(stripe6) || math.IsNaN(raid6) || math.IsNaN(single) {
		t.Fatalf("missing points: %v", f.Render())
	}
	// Paper at D=6: SR 1.42x faster than striping, 1.23x than RAID-10,
	// 1.94x than one disk. Require the orderings and meaningful margins.
	if !(sr6 < raid6 && raid6 < stripe6) {
		t.Errorf("ordering broken: SR %.0f, RAID-10 %.0f, striping %.0f", sr6, raid6, stripe6)
	}
	if single/sr6 < 1.5 {
		t.Errorf("six-disk SR-Array only %.2fx faster than single disk (paper: 1.94x)", single/sr6)
	}
	if stripe6/sr6 < 1.05 {
		t.Errorf("striping/SR ratio %.2f, want > 1.05 (paper: 1.42)", stripe6/sr6)
	}
	// More disks never hurt the SR-Array.
	for _, s := range f.Series {
		if s.Label != "SR-Array (RSATF)" {
			continue
		}
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].Y > s.Points[i-1].Y*1.05 {
				t.Errorf("SR-Array response rose from D=%v to D=%v", s.Points[i-1].X, s.Points[i].X)
			}
		}
	}
}

func TestFigure7ModelPicksNearBest(t *testing.T) {
	f, err := Figure7(Default(), "cello-base")
	if err != nil {
		t.Fatal(err)
	}
	// At D=6, the model-chosen aspect ratio should be within 10% of the
	// best alternative measured.
	best := math.Inf(1)
	for _, s := range f.Series {
		if s.Label == "model-chosen" {
			continue
		}
		for _, p := range s.Points {
			if p.X == 6 && p.Y < best {
				best = p.Y
			}
		}
	}
	chosen := f.At("model-chosen", 6)
	if math.IsNaN(chosen) || math.IsInf(best, 1) {
		t.Fatalf("missing D=6 points:\n%s", f.Render())
	}
	if chosen > best*1.10 {
		t.Errorf("model-chosen %.0fus vs best alternative %.0fus (>10%% off)", chosen, best)
	}
}

func TestFigure8TPCCOrdering(t *testing.T) {
	f, err := Figure8(Default())
	if err != nil {
		t.Fatal(err)
	}
	sr := f.At("SR-Array (RSATF)", 36)
	raid := f.At("RAID-10 (SATF)", 36)
	stripe := f.At("striping (SATF)", 36)
	if math.IsNaN(sr) || math.IsNaN(raid) || math.IsNaN(stripe) {
		t.Fatalf("missing 36-disk points:\n%s", f.Render())
	}
	// Paper: properly configured SR-Array faster than RAID-10, which is
	// faster than striping, even on this write-heavy workload.
	if !(sr < raid && raid < stripe) {
		t.Errorf("TPC-C ordering broken: SR %.0f RAID-10 %.0f striping %.0f", sr, raid, stripe)
	}
}

func TestFigure9SchedulerGaps(t *testing.T) {
	f, err := Figure9(Default(), "cello-base")
	if err != nil {
		t.Fatal(err)
	}
	// At an elevated rate: SATF beats LOOK on striping, and the
	// RLOOK-RSATF gap is smaller than the LOOK-SATF gap (both already
	// account for rotation).
	const rate = 16
	look := f.At("striping LOOK", rate)
	satf := f.At("striping SATF", rate)
	rlook := f.At("SR-Array RLOOK", rate)
	rsatf := f.At("SR-Array RSATF", rate)
	if math.IsNaN(look) || math.IsNaN(satf) || math.IsNaN(rlook) || math.IsNaN(rsatf) {
		t.Skipf("saturated before rate %v:\n%s", rate, f.Render())
	}
	if satf >= look {
		t.Errorf("SATF (%.0f) not better than LOOK (%.0f) at rate %v", satf, look, rate)
	}
	if (rlook - rsatf) >= (look - satf) {
		t.Errorf("RLOOK-RSATF gap %.0f not smaller than LOOK-SATF gap %.0f", rlook-rsatf, look-satf)
	}
	// The paper's stronger point: a mis-configured array under a better
	// scheduler loses to a well-configured one under a weaker scheduler.
	if rlook >= satf {
		t.Errorf("2x3 RLOOK (%.0f) not better than 6x1 SATF (%.0f)", rlook, satf)
	}
}

// sustainableRate returns the highest swept rate whose mean response is at
// most limit.
func sustainableRate(f *Figure, label string, limit float64) float64 {
	best := 0.0
	for _, s := range f.Series {
		if s.Label != label {
			continue
		}
		for _, p := range s.Points {
			if p.Y <= limit && p.X > best {
				best = p.X
			}
		}
	}
	return best
}

func TestFigure10CelloSustainableRates(t *testing.T) {
	f, err := Figure10(Default(), "cello-base")
	if err != nil {
		t.Fatal(err)
	}
	// Paper: at a 15 ms response bound, the 2x3 SR-Array sustains ~1.3x
	// the rate of RAID-10 and ~2.6x that of striping; the 1x6 and 6-way
	// mirror saturate first.
	const limit = 15000
	sr23 := sustainableRate(f, "2x3x1 rsatf", limit)
	stripe := sustainableRate(f, "6x1x1 satf", limit)
	raid := sustainableRate(f, "3x1x2 satf", limit)
	mirror := sustainableRate(f, "1x1x6 satf", limit)
	sr16 := sustainableRate(f, "1x6x1 rsatf", limit)
	if sr23 < stripe {
		t.Errorf("2x3 sustainable rate %.1f below striping %.1f", sr23, stripe)
	}
	if sr23 < raid {
		t.Errorf("2x3 sustainable rate %.1f below RAID-10 %.1f", sr23, raid)
	}
	if sr16 > sr23 || mirror > sr23 {
		t.Errorf("high-replication configs (1x6 %.1f, mirror %.1f) should saturate before 2x3 (%.1f)", sr16, mirror, sr23)
	}
}

func TestFigure10TPCCBestConfigShifts(t *testing.T) {
	f, err := Figure10(Default(), "tpcc")
	if err != nil {
		t.Fatal(err)
	}
	// At the original rate the 9x4 SR-Array wins; as the rate rises the
	// paper's succession of best configurations moves toward less
	// replication (9x4 -> 12x3 -> 18x2 -> ... -> 36x1). Our delayed-write
	// masking is more effective than the prototype's, so we assert the
	// direction of the succession rather than the full inversion: the
	// best configuration at the highest swept rate must use no more
	// rotational replication than the best at the original rate, and
	// 9x4's margin over striping must shrink.
	sr94at1 := f.At("9x4x1 rsatf", 1)
	stripeAt1 := f.At("36x1x1 satf", 1)
	if math.IsNaN(sr94at1) || math.IsNaN(stripeAt1) {
		t.Fatalf("missing rate-1 points:\n%s", f.Render())
	}
	if sr94at1 >= stripeAt1 {
		t.Errorf("9x4 (%.0f) not better than 36x1 (%.0f) at original rate", sr94at1, stripeAt1)
	}
	configs := map[string]int{ // label -> Dr
		"36x1x1 satf": 1, "18x2x1 rsatf": 2, "12x3x1 rsatf": 3, "9x4x1 rsatf": 4,
	}
	bestAt := func(rate float64) (string, float64) {
		label, best := "", math.Inf(1)
		for l := range configs {
			if v := f.At(l, rate); !math.IsNaN(v) && v < best {
				label, best = l, v
			}
		}
		return label, best
	}
	maxRate := 0.0
	for _, srs := range f.Series {
		for _, pt := range srs.Points {
			if pt.X > maxRate {
				maxRate = pt.X
			}
		}
	}
	lowBest, _ := bestAt(1)
	highBest, _ := bestAt(maxRate)
	if configs[highBest] > configs[lowBest] {
		t.Errorf("best config moved toward MORE replication under load: %s at 1x vs %s at %gx", lowBest, highBest, maxRate)
	}
	// And the replicated configuration's relative margin over striping
	// shrinks as the rate grows.
	marginLow := stripeAt1 / sr94at1
	marginHigh := f.At("36x1x1 satf", maxRate) / f.At("9x4x1 rsatf", maxRate)
	if marginHigh > marginLow*1.15 {
		t.Errorf("9x4's margin over striping grew under load (%.2fx -> %.2fx); propagation cost should erode it", marginLow, marginHigh)
	}
}

func TestFigure11MemoryVsDisks(t *testing.T) {
	f, err := Figure11(Default(), "cello-base")
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 4 {
		t.Fatalf("expected 4 series, got %d", len(f.Series))
	}
	for _, s := range f.Series {
		if len(s.Points) < 2 {
			t.Fatalf("series %q has %d points:\n%s", s.Label, len(s.Points), f.Render())
		}
	}
	// More cache never hurts (at original rate).
	for _, s := range f.Series {
		if s.Label != "Memory x1" {
			continue
		}
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].Y > s.Points[i-1].Y*1.03 {
				t.Errorf("memory curve rose at %.1f%%: %.0f -> %.0f", s.Points[i].X, s.Points[i-1].Y, s.Points[i].Y)
			}
		}
	}
	// More disks help too.
	for _, rate := range []string{"SR-Array x1", "SR-Array x3"} {
		first, last := math.NaN(), math.NaN()
		for _, s := range f.Series {
			if s.Label == rate && len(s.Points) > 1 {
				first, last = s.Points[0].Y, s.Points[len(s.Points)-1].Y
			}
		}
		if !(last < first) {
			t.Errorf("%s: adding disks did not reduce response (%.0f -> %.0f)", rate, first, last)
		}
	}
}

func TestFigure12ThroughputScaling(t *testing.T) {
	f, err := Figure12(Default())
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []int{8, 32} {
		sr := fmt12(f, q, "SR-Array RSATF")
		stripe := fmt12(f, q, "striping SATF")
		// SR-Array should scale at least as well as striping everywhere
		// and clearly better at larger D with the short queue.
		for _, D := range []float64{4, 6, 8, 12} {
			if sr(D) < stripe(D)*0.98 {
				t.Errorf("q%d D=%v: SR %.0f below striping %.0f", q, D, sr(D), stripe(D))
			}
		}
		if q == 8 && sr(12) < stripe(12)*1.1 {
			t.Errorf("q8 D=12: SR %.0f not >=1.1x striping %.0f (rotational replicas should matter at short queues)", sr(12), stripe(12))
		}
		// Model tracks the RLOOK measurement.
		rlook := fmt12(f, q, "SR-Array RLOOK")
		model := fmt12(f, q, "RLOOK model")
		for _, D := range []float64{2, 4, 6, 8, 12} {
			if rel(model(D), rlook(D)) > 0.35 {
				t.Errorf("q%d D=%v: model %.0f vs RLOOK %.0f (>35%% off)", q, D, model(D), rlook(D))
			}
		}
	}
	// Longer queues narrow the SR-vs-striping gap (SATF finds rotational
	// wins in a deep queue).
	gap8 := fmt12(f, 8, "SR-Array RSATF")(12) / fmt12(f, 8, "striping SATF")(12)
	gap32 := fmt12(f, 32, "SR-Array RSATF")(12) / fmt12(f, 32, "striping SATF")(12)
	if gap32 > gap8*1.02 {
		t.Errorf("SR advantage grew with queue depth (q8 %.2fx vs q32 %.2fx); SATF should close the gap", gap8, gap32)
	}
}

func fmt12(f *Figure, q int, suffix string) func(float64) float64 {
	label := fmtLabel(q, suffix)
	return func(d float64) float64 { return f.At(label, d) }
}

func fmtLabel(q int, suffix string) string {
	return "q" + itoa(q) + " " + suffix
}

func itoa(v int) string {
	if v == 8 {
		return "8"
	}
	return "32"
}

func TestFigure13WriteRatioCrossover(t *testing.T) {
	f, err := Figure13(Default())
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []int{8, 32} {
		sr := func(w float64) float64 { return f.At(fmtLabel(q, "3x2x1 RSATF"), w) }
		stripe := func(w float64) float64 { return f.At(fmtLabel(q, "6x1x1 SATF"), w) }
		raid := func(w float64) float64 { return f.At(fmtLabel(q, "3x1x2 SATF"), w) }
		// Read-only: SR wins. All-writes: striping wins (no replicas to
		// propagate) and RAID-10 is worst (two seeks per write).
		if sr(0) <= stripe(0) {
			t.Errorf("q%d: SR (%.0f) not above striping (%.0f) at 0%% writes", q, sr(0), stripe(0))
		}
		if stripe(100) <= sr(100) {
			t.Errorf("q%d: striping (%.0f) not above SR (%.0f) at 100%% writes", q, stripe(100), sr(100))
		}
		if raid(100) >= sr(100) || raid(100) >= stripe(100) {
			t.Errorf("q%d: RAID-10 (%.0f) not worst at 100%% writes (SR %.0f, striping %.0f)", q, raid(100), sr(100), stripe(100))
		}
		// The crossover falls at or below 50% writes (paper Section 4.2).
		cross := 101.0
		for _, w := range []float64{0, 10, 20, 30, 40, 50, 70, 100} {
			if stripe(w) >= sr(w) {
				continue
			}
			cross = w
			break
		}
		if cross > 50 {
			t.Errorf("q%d: striping never overtook the SR-Array at or below 50%% writes", q)
		}
	}
}

func TestRegistryRunsEverything(t *testing.T) {
	if testing.Short() {
		t.Skip("registry sweep is minutes of simulation")
	}
	// Tiny config: this is a does-it-run check, not a shape check.
	c := Config{TraceIOs: 300, IometerIOs: 200, Seed: 3}
	for _, name := range Names() {
		out, err := Run(name, c)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if len(out) == 0 {
			t.Errorf("%s: empty output", name)
		}
	}
	if _, err := Run("fig99", c); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestAblationReplicaPlacementMatchesModels(t *testing.T) {
	f := AblationReplicaPlacement(Default())
	for _, dr := range []float64{2, 3, 6} {
		even := f.At("evenly spaced", dr)
		random := f.At("randomly placed", dr)
		if even >= random {
			t.Errorf("Dr=%v: even placement (%.0f) not better than random (%.0f)", dr, even, random)
		}
		if rel(even, f.At("model R/2D", dr)) > 0.05 {
			t.Errorf("Dr=%v: even placement %.0f off model %.0f", dr, even, f.At("model R/2D", dr))
		}
		if rel(random, f.At("model R/(D+1)", dr)) > 0.05 {
			t.Errorf("Dr=%v: random placement %.0f off model %.0f", dr, random, f.At("model R/(D+1)", dr))
		}
	}
}

func TestAblationMirrorSched(t *testing.T) {
	f, err := AblationMirrorSched(Default())
	if err != nil {
		t.Fatal(err)
	}
	// The duplicate-request heuristic should not lose to the static
	// choice once queues form.
	for _, q := range []float64{16, 32} {
		dup := f.At("duplicate-request", q)
		static := f.At("static nearest", q)
		if dup > static*1.02 {
			t.Errorf("q=%v: duplicate-request latency %.0f above static %.0f", q, dup, static)
		}
	}
}

func TestAblationOpportunisticSavesRefReads(t *testing.T) {
	f, err := AblationOpportunistic(Default())
	if err != nil {
		t.Fatal(err)
	}
	offRefs := f.At("reference reads after bootstrap", 0)
	onRefs := f.At("reference reads after bootstrap", 1)
	if onRefs > offRefs/2 {
		t.Errorf("opportunistic tracking used %v ref reads vs %v without — expected a large saving", onRefs, offRefs)
	}
	offMiss := f.At("rotation miss %", 0)
	onMiss := f.At("rotation miss %", 1)
	if onMiss > offMiss+1 {
		t.Errorf("opportunistic miss rate %.2f%% vs baseline %.2f%% — accuracy should hold", onMiss, offMiss)
	}
}

func TestAblationCoalesceSavesMediaWrites(t *testing.T) {
	f, err := AblationCoalesce(Default())
	if err != nil {
		t.Fatal(err)
	}
	on := f.At("commands per write", 1)
	off := f.At("commands per write", 0)
	// Dr=3: without coalescing every write eventually costs ~3 media
	// writes; with it, superseded copies never hit the platter.
	if off < 2.5 {
		t.Errorf("without coalescing: %.2f commands/write, expected ~3", off)
	}
	if on > off*0.5 {
		t.Errorf("coalescing saved too little: %.2f vs %.2f commands/write", on, off)
	}
}

func TestAblationSlackTradeoff(t *testing.T) {
	f, err := AblationSlack(Default())
	if err != nil {
		t.Fatal(err)
	}
	k0 := f.At("rotation miss %", 0)
	adaptive := f.At("rotation miss %", 1)
	if adaptive > k0 && adaptive > 1 {
		t.Errorf("adaptive slack misses %.2f%% vs k=0 %.2f%% — feedback should not be worse than no slack", adaptive, k0)
	}
}

func TestAblationIntraTrackBandwidth(t *testing.T) {
	f, err := AblationIntraTrack(Default())
	if err != nil {
		t.Fatal(err)
	}
	intraBW := f.At("sequential bandwidth (MB/s)", 0)
	crossBW := f.At("sequential bandwidth (MB/s)", 1)
	// Section 2.2: intra-track replication "decreases the bandwidth of
	// large I/O"; cross-track placement avoids it.
	if crossBW < intraBW*1.3 {
		t.Errorf("cross-track bandwidth %.1f not clearly above intra-track %.1f", crossBW, intraBW)
	}
	// Small random reads are equivalent either way.
	intraLat := f.At("random 4KB read latency (us)", 0)
	crossLat := f.At("random 4KB read latency (us)", 1)
	if rel(intraLat, crossLat) > 0.10 {
		t.Errorf("random-read latency differs: intra %.0f vs cross %.0f", intraLat, crossLat)
	}
}

func TestSection25SRArrayVsStripedMirror(t *testing.T) {
	f, err := Section25(Default())
	if err != nil {
		t.Fatal(err)
	}
	// "The performance of our best effort implementation of a striped
	// mirror has failed to match that of an SR-Array counterpart."
	for _, q := range []float64{4, 16, 32} {
		sr := f.At("2x3x1 SR-Array (RSATF)", q)
		sm := f.At("2x1x3 striped mirror (SATF)", q)
		if sm > sr*1.02 {
			t.Errorf("q=%v: striped mirror %.0f IOPS beats SR-Array %.0f", q, sm, sr)
		}
	}
}

func TestSensitivityDirections(t *testing.T) {
	f, err := Sensitivity(Default())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range []string{"model-recommended Dr", "measured-best Dr"} {
		slow := f.At(row, 0) // 5400 rpm
		ref := f.At(row, 1)
		fast := f.At(row, 2) // 15000 rpm
		arm := f.At(row, 3)  // 2x seeks
		// Section 2.3: slow spindles demand more rotational replication;
		// slow arms demand more striping.
		if !(slow >= ref && ref >= fast) {
			t.Errorf("%s: spindle direction broken: 5400rpm=%v ref=%v 15k=%v", row, slow, ref, fast)
		}
		if arm > ref {
			t.Errorf("%s: slow arm wants MORE replicas (%v) than reference (%v)", row, arm, ref)
		}
		if slow <= arm {
			t.Errorf("%s: slow spindle (%v) should want strictly more replicas than slow arm (%v)", row, slow, arm)
		}
	}
}

func TestTCQHostSchedulingWins(t *testing.T) {
	f, err := TCQ(Default())
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []float64{8, 16, 32} {
		host := f.At("2x3 host RSATF", q)
		naive := f.At("2x3 TCQ drive SATF (naive host)", q)
		// The paper's architectural bet: host-based scheduling with
		// software head tracking beats delegating to a smart drive,
		// because only the host can exploit rotational replicas (and TCQ
		// commits to a tag before all options are known).
		if host < naive*1.15 {
			t.Errorf("q=%v: host RSATF %.0f not clearly above TCQ naive host %.0f", q, host, naive)
		}
		// On plain striping the gap is much smaller: drive scheduling
		// nearly recovers host SATF when no replicas are involved.
		hostS := f.At("6x1 host SATF", q)
		driveS := f.At("6x1 TCQ drive SATF", q)
		if driveS < hostS*0.85 {
			t.Errorf("q=%v: striping TCQ %.0f fell far below host SATF %.0f", q, driveS, hostS)
		}
	}
}

func TestAblationAgingBoundsTail(t *testing.T) {
	f, err := AblationAging(Default())
	if err != nil {
		t.Fatal(err)
	}
	// The aged variant trades a little mean latency for a much better
	// tail.
	if f.At("max", 1) > f.At("max", 0)*0.7 {
		t.Errorf("asatf max %.0f not well below satf max %.0f", f.At("max", 1), f.At("max", 0))
	}
	if f.At("mean", 1) > f.At("mean", 0)*1.25 {
		t.Errorf("asatf mean %.0f paid too much over satf %.0f", f.At("mean", 1), f.At("mean", 0))
	}
}

func TestSummaryAllClaimsHold(t *testing.T) {
	s, err := Summary(Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Claims) < 10 {
		t.Fatalf("only %d claims checked", len(s.Claims))
	}
	for _, c := range s.Claims {
		if !c.OK {
			t.Errorf("claim %s deviates: paper %q, measured %q", c.ID, c.Paper, c.Measured)
		}
	}
}

func TestBreakdownShowsTheTradeoff(t *testing.T) {
	f, err := Breakdown(Default())
	if err != nil {
		t.Fatal(err)
	}
	// Config indexes: 0=6x1x1 striping, 2=2x3x1 SR-Array.
	if srRot, stRot := f.At("rotation", 2), f.At("rotation", 0); srRot > stRot*0.55 {
		t.Errorf("SR-Array rotation %.0f not well below striping's %.0f", srRot, stRot)
	}
	if srSeek, stSeek := f.At("seek", 2), f.At("seek", 0); srSeek < stSeek {
		t.Errorf("SR-Array seek %.0f should exceed striping's %.0f (half the cylinders vs a sixth)", srSeek, stSeek)
	}
	// Every component positive everywhere.
	for _, s := range f.Series {
		for _, p := range s.Points {
			if p.Y <= 0 {
				t.Errorf("%s at %v is %v", s.Label, p.X, p.Y)
			}
		}
	}
}
