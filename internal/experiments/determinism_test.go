package experiments

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/tracegen"
)

// TestParallelMatchesSequential is the runner's contract check: the same
// experiment run with one worker and with many must render byte-identical
// output. Figure 6 covers the trace-replay path (including the shared
// cached trace) and Figure 12 the closed-loop iometer path. Run under
// -race this also shakes out any accidental sharing between jobs.
func TestParallelMatchesSequential(t *testing.T) {
	cfg := Config{TraceIOs: 600, IometerIOs: 300, Seed: 1}
	cases := []struct {
		name string
		run  func() (string, error)
	}{
		{"figure6", func() (string, error) {
			f, err := Figure6(cfg, "cello-base")
			if err != nil {
				return "", err
			}
			return f.Render(), nil
		}},
		{"figure12", func() (string, error) {
			f, err := Figure12(cfg)
			if err != nil {
				return "", err
			}
			return f.Render(), nil
		}},
		{"degraded-rebuild", func() (string, error) {
			f, err := DegradedRebuild(cfg)
			if err != nil {
				return "", err
			}
			return f.Render(), nil
		}},
		{"fail-slow", func() (string, error) {
			f, err := FailSlow(cfg)
			if err != nil {
				return "", err
			}
			return f.Render(), nil
		}},
		{"scrub", func() (string, error) {
			f, err := Scrub(cfg)
			if err != nil {
				return "", err
			}
			return f.Render(), nil
		}},
		{"chaos", func() (string, error) {
			f, err := Chaos(cfg)
			if err != nil {
				return "", err
			}
			return f.Render(), nil
		}},
		{"slo-chaos", func() (string, error) {
			f, err := SLOChaos(cfg)
			if err != nil {
				return "", err
			}
			return f.Render(), nil
		}},
		{"brick-loss", func() (string, error) {
			f, err := BrickLoss(cfg)
			if err != nil {
				return "", err
			}
			return f.Render(), nil
		}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			prev := runner.SetParallelism(1)
			defer runner.SetParallelism(prev)
			tracegen.ResetCache()
			seq, err := c.run()
			if err != nil {
				t.Fatal(err)
			}
			runner.SetParallelism(8)
			tracegen.ResetCache()
			par, err := c.run()
			if err != nil {
				t.Fatal(err)
			}
			if seq != par {
				t.Fatalf("parallel output differs from sequential:\n--- sequential ---\n%s--- parallel ---\n%s", seq, par)
			}
			// A cache hit must not change results either.
			again, err := c.run()
			if err != nil {
				t.Fatal(err)
			}
			if again != par {
				t.Fatal("second (trace-cached) run differs from the first")
			}
		})
	}
}

// TestObservabilityDeterministicAcrossParallelism extends the runner
// contract to the observability layer: the metrics snapshot, the JSONL
// trace export, and the JSON figure rendering must be byte-identical
// whether the degraded-rebuild jobs ran on one worker or eight, and the
// JSON figure must round-trip through encoding/json.
func TestObservabilityDeterministicAcrossParallelism(t *testing.T) {
	cfg := Config{TraceIOs: 600, IometerIOs: 300, Seed: 1}
	run := func(par int) (snap []byte, traces string, figJSON string) {
		prev := runner.SetParallelism(par)
		defer runner.SetParallelism(prev)
		reg := &obs.Registry{TraceCap: 256}
		Observe = reg
		defer func() { Observe = nil }()
		fig, err := DegradedRebuild(cfg)
		if err != nil {
			t.Fatal(err)
		}
		snap, err = reg.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := reg.WriteTraceJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		figJSON, err = fig.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return snap, buf.String(), figJSON
	}
	seqSnap, seqTrace, seqJSON := run(1)
	parSnap, parTrace, parJSON := run(8)
	if !bytes.Equal(seqSnap, parSnap) {
		t.Errorf("metrics snapshot differs between sequential and parallel runs")
	}
	if seqTrace != parTrace {
		t.Errorf("JSONL trace differs between sequential and parallel runs")
	}
	if seqJSON != parJSON {
		t.Errorf("figure JSON differs between sequential and parallel runs")
	}
	if len(seqTrace) == 0 {
		t.Error("trace export is empty; tracing did not engage")
	}
	// Round-trip: the figure JSON must parse and re-marshal to the same
	// semantic content.
	var doc map[string]interface{}
	if err := json.Unmarshal([]byte(seqJSON), &doc); err != nil {
		t.Fatalf("figure JSON does not parse: %v", err)
	}
	if doc["figure"] != "degraded-rebuild" {
		t.Fatalf("figure name %v", doc["figure"])
	}
	metrics, ok := doc["metrics"].(map[string]interface{})
	if !ok || len(metrics) == 0 {
		t.Fatal("figure JSON carries no metrics")
	}
	if _, ok := metrics["iops/SR-Array 2x3x1/healthy"]; !ok {
		t.Fatalf("expected iops metric missing; have %d keys", len(metrics))
	}
	reencoded, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	var doc2 map[string]interface{}
	if err := json.Unmarshal(reencoded, &doc2); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(doc, doc2) {
		t.Fatal("figure JSON does not round-trip through encoding/json")
	}
	// The snapshot parses as JSON too.
	var snapDoc map[string]interface{}
	if err := json.Unmarshal(seqSnap, &snapDoc); err != nil {
		t.Fatalf("snapshot does not parse: %v", err)
	}
}

// TestJSONFormatRunners: every registered experiment name renders valid
// JSON in json format (figures as documents, tables wrapped as text).
func TestJSONFormatRunners(t *testing.T) {
	prevFormat := Format
	Format = "json"
	defer func() { Format = prevFormat }()
	// A fast config: this test checks rendering, not physics.
	cfg := Config{TraceIOs: 200, IometerIOs: 120, Seed: 1}
	for _, name := range []string{"degraded-rebuild", "table1", "section2.5"} {
		out, err := Run(name, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var doc map[string]interface{}
		if err := json.Unmarshal([]byte(out), &doc); err != nil {
			t.Fatalf("%s: json format produced invalid JSON: %v", name, err)
		}
		if fig, _ := doc["figure"].(string); fig == "" {
			t.Fatalf("%s: figure field missing in %q", name, out)
		}
	}
}
