package experiments

import (
	"testing"

	"repro/internal/runner"
	"repro/internal/tracegen"
)

// TestParallelMatchesSequential is the runner's contract check: the same
// experiment run with one worker and with many must render byte-identical
// output. Figure 6 covers the trace-replay path (including the shared
// cached trace) and Figure 12 the closed-loop iometer path. Run under
// -race this also shakes out any accidental sharing between jobs.
func TestParallelMatchesSequential(t *testing.T) {
	cfg := Config{TraceIOs: 600, IometerIOs: 300, Seed: 1}
	cases := []struct {
		name string
		run  func() (string, error)
	}{
		{"figure6", func() (string, error) {
			f, err := Figure6(cfg, "cello-base")
			if err != nil {
				return "", err
			}
			return f.Render(), nil
		}},
		{"figure12", func() (string, error) {
			f, err := Figure12(cfg)
			if err != nil {
				return "", err
			}
			return f.Render(), nil
		}},
		{"degraded-rebuild", func() (string, error) {
			f, err := DegradedRebuild(cfg)
			if err != nil {
				return "", err
			}
			return f.Render(), nil
		}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			prev := runner.SetParallelism(1)
			defer runner.SetParallelism(prev)
			tracegen.ResetCache()
			seq, err := c.run()
			if err != nil {
				t.Fatal(err)
			}
			runner.SetParallelism(8)
			tracegen.ResetCache()
			par, err := c.run()
			if err != nil {
				t.Fatal(err)
			}
			if seq != par {
				t.Fatalf("parallel output differs from sequential:\n--- sequential ---\n%s--- parallel ---\n%s", seq, par)
			}
			// A cache hit must not change results either.
			again, err := c.run()
			if err != nil {
				t.Fatal(err)
			}
			if again != par {
				t.Fatal("second (trace-cached) run differs from the first")
			}
		})
	}
}
