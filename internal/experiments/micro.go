package experiments

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/layout"
	"repro/internal/model"
	"repro/internal/workload"
)

// microVolume is the logical volume the micro-benchmarks run over: one
// disk's worth of data, as in Section 2's models, aligned down to a chunk
// count divisible by every position count in use so all configurations
// hold it exactly.
func microVolume() int64 {
	const align = 128 * 72 // stripe unit x lcm of the position counts used
	return refGeomSectors / align * align
}

// runIometer builds an array and drives it with a closed loop.
func runIometer(cfg layout.Config, policy string, w workload.Iometer, total int, seed int64, mod func(*coreOptions)) (*workload.Result, error) {
	sim, a, err := buildArray(cfg, policy, microVolume(), seed, mod)
	if err != nil {
		return nil, err
	}
	return w.Run(sim, a, total)
}

// Figure5 validates the integrated simulator against the prototype mode:
// throughput of a 2x3 SR-Array under RSATF with 512-byte requests, for a
// read-only and a 50/50 read/write (foreground-propagated) workload,
// across outstanding-request counts (paper Figure 5: discrepancy under
// 3%).
func Figure5(c Config) (*Figure, error) {
	f := &Figure{
		Name:   "Figure 5",
		Title:  "prototype vs simulator throughput, 2x3 SR-Array, RSATF, 512B",
		XLabel: "outstanding requests",
		YLabel: "IOPS",
	}
	cfg := layout.SRArray(2, 3)
	type slot struct {
		si int
		x  float64
	}
	var seriesList []Series
	var jobs []iometerJob
	var slots []slot
	for _, mix := range []struct {
		label    string
		readFrac float64
	}{
		{"reads", 1},
		{"50/50 r/w", 0.5},
	} {
		si := len(seriesList)
		seriesList = append(seriesList,
			Series{Label: mix.label + " simulator"},
			Series{Label: mix.label + " prototype"})
		for _, q := range []int{2, 4, 8, 16, 32, 64} {
			w := workload.Iometer{ReadFrac: mix.readFrac, Sectors: 1, Outstanding: q, Locality: 1, Seed: c.Seed}
			for _, proto := range []bool{false, true} {
				proto := proto
				jobs = append(jobs, iometerJob{
					cfg: cfg, policy: "rsatf", w: w, total: c.IometerIOs,
					mod: func(o *coreOptions) {
						o.Prototype = proto
						o.ForegroundWrites = true
					},
				})
				idx := si
				if proto {
					idx = si + 1
				}
				slots = append(slots, slot{idx, float64(q)})
			}
		}
	}
	res, err := runIometerJobs(c.Seed, jobs)
	if err != nil {
		return nil, err
	}
	for i, r := range res {
		seriesList[slots[i].si].Add(slots[i].x, r.IOPS)
	}
	f.Series = seriesList
	return f, nil
}

// Figure12 measures random-read throughput versus the number of disks at
// queue lengths 8 and 32 with seek locality 3, for striping, RAID-10, and
// the SR-Array under RLOOK and RSATF, against the RLOOK throughput model
// of Eq. (16) (paper Figure 12).
func Figure12(c Config) (*Figure, error) {
	const locality = 3
	f := &Figure{
		Name:   "Figure 12",
		Title:  "random-read throughput vs disks (locality index 3)",
		XLabel: "disks",
		YLabel: "IOPS",
	}
	dsk := paperDisk()
	type slot struct {
		series *Series
		x      float64
	}
	var jobs []iometerJob
	var slots []slot
	var all []*[5]Series // per q: stripe, raid, srR, srL, mdl
	for _, q := range []int{8, 32} {
		group := &[5]Series{
			{Label: fmt.Sprintf("q%d striping SATF", q)},
			{Label: fmt.Sprintf("q%d RAID-10 SATF", q)},
			{Label: fmt.Sprintf("q%d SR-Array RSATF", q)},
			{Label: fmt.Sprintf("q%d SR-Array RLOOK", q)},
			{Label: fmt.Sprintf("q%d RLOOK model", q)},
		}
		all = append(all, group)
		for _, D := range []int{2, 4, 6, 8, 12} {
			w := workload.Iometer{ReadFrac: 1, Sectors: 1, Outstanding: q, Locality: locality, Seed: c.Seed}
			perDisk := float64(q) / float64(D)
			ds, dr, err := model.Optimize(dsk, D, 1, perDisk, locality, func(dr int) bool { return refHeads%dr == 0 })
			if err != nil {
				return nil, err
			}
			srCfg := layout.SRArray(ds, dr)
			type run struct {
				s      *Series
				cfg    layout.Config
				policy string
			}
			runs := []run{
				{&group[0], layout.Striping(D), "satf"},
				{&group[2], srCfg, "rsatf"},
				{&group[3], srCfg, "rlook"},
			}
			if D%2 == 0 {
				runs = append(runs, run{&group[1], layout.RAID10(D), "satf"})
			}
			for _, r := range runs {
				jobs = append(jobs, iometerJob{cfg: r.cfg, policy: r.policy, w: w, total: c.IometerIOs})
				slots = append(slots, slot{r.s, float64(D)})
			}
			// Eq. (13)-(16) with the seek term on the measured curve
			// (the linear-seek form badly overestimates stroke
			// amortization on a drive with acceleration-limited short
			// seeks; see model.MechParams).
			mech := model.MechParams{Seek: refDisk.Seek, R: refDisk.NominalR, UsedCyl: refDisk.Geom.LogicalCylinders() / ds}
			tBest := mech.QueuedLatencyMech(dr, 1, perDisk, locality)
			n1 := model.ThroughputSingle(deviceOverhead, tBest)
			group[4].Add(float64(D), model.ThroughputArray(D, q, n1)*1e6)
		}
	}
	res, err := runIometerJobs(c.Seed, jobs)
	if err != nil {
		return nil, err
	}
	for i, r := range res {
		slots[i].series.Add(slots[i].x, r.IOPS)
	}
	for _, group := range all {
		f.Series = append(f.Series, group[:]...)
	}
	return f, nil
}

// deviceOverhead is the per-command overhead of the simulated bus in
// simulator mode (fixed controller cost plus one-sector transfer), the To
// of Eq. (15).
const deviceOverhead = 160 * des.Microsecond

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Figure13 measures throughput versus the foreground-write ratio on six
// disks at queue lengths 8 and 32: the 3x2x1 SR-Array under RLOOK and
// RSATF, 6x1x1 striping under LOOK and SATF, and a 3x1x2 RAID-10 under
// SATF, with every replica propagated in the foreground, plus the RLOOK
// throughput model evaluated at the SR-Array configuration (paper Figure
// 13).
func Figure13(c Config) (*Figure, error) {
	const locality = 3
	f := &Figure{
		Name:   "Figure 13",
		Title:  "throughput vs foreground write ratio, 6 disks (locality index 3)",
		XLabel: "write ratio (%)",
		YLabel: "IOPS",
	}
	type slot struct {
		series *Series
		x      float64
	}
	var jobs []iometerJob
	var slots []slot
	var groups [][]Series
	fgWrites := func(o *coreOptions) { o.ForegroundWrites = true }
	for _, q := range []int{8, 32} {
		runs := []struct {
			label  string
			cfg    layout.Config
			policy string
		}{
			{fmt.Sprintf("q%d 3x2x1 RSATF", q), layout.SRArray(3, 2), "rsatf"},
			{fmt.Sprintf("q%d 3x2x1 RLOOK", q), layout.SRArray(3, 2), "rlook"},
			{fmt.Sprintf("q%d 6x1x1 SATF", q), layout.Striping(6), "satf"},
			{fmt.Sprintf("q%d 6x1x1 LOOK", q), layout.Striping(6), "look"},
			{fmt.Sprintf("q%d 3x1x2 SATF", q), layout.RAID10(6), "satf"},
		}
		series := make([]Series, len(runs)+1)
		for i, r := range runs {
			series[i] = Series{Label: r.label}
		}
		mdl := &series[len(runs)]
		*mdl = Series{Label: fmt.Sprintf("q%d 3x2x1 RLOOK model", q)}
		groups = append(groups, series)
		for _, writePct := range []int{0, 10, 20, 30, 40, 50, 70, 100} {
			readFrac := 1 - float64(writePct)/100
			w := workload.Iometer{ReadFrac: readFrac, Sectors: 1, Outstanding: q, Locality: locality, Seed: c.Seed}
			for i, r := range runs {
				jobs = append(jobs, iometerJob{cfg: r.cfg, policy: r.policy, w: w, total: c.IometerIOs, mod: fgWrites})
				slots = append(slots, slot{&series[i], float64(writePct)})
			}
			// Eq. (12) at the fixed 3x2 configuration with p = read
			// fraction (all writes propagate in the foreground), seek term
			// on the measured curve, through Eq. (15)/(16).
			perDisk := maxF(float64(q)/6, 1)
			mech := model.MechParams{Seek: refDisk.Seek, R: refDisk.NominalR, UsedCyl: refDisk.Geom.LogicalCylinders() / 3}
			tBest := mech.QueuedLatencyMech(2, readFrac, perDisk, locality)
			n1 := model.ThroughputSingle(deviceOverhead, tBest)
			mdl.Add(float64(writePct), model.ThroughputArray(6, q, n1)*1e6)
		}
	}
	res, err := runIometerJobs(c.Seed, jobs)
	if err != nil {
		return nil, err
	}
	for i, r := range res {
		slots[i].series.Add(slots[i].x, r.IOPS)
	}
	for _, g := range groups {
		f.Series = append(f.Series, g...)
	}
	return f, nil
}
