package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/disk"
	"repro/internal/layout"
	"repro/internal/runner"
)

// FailSlow measures the fail-slow tolerance stack on a RAID-10(6): read
// tail latency (p50/p99/p99.9) of an all-healthy array against one with a
// single fail-slow drive (persistent inflation plus stutter windows),
// under three mitigation levels — none, hedged reads, and hedged reads
// plus health-tracker eviction into a hot spare. The paper's arrays only
// fail-stop; this is the robustness companion: a drive that is merely slow
// defeats both the fail-stop detector and (after dispatch) the mirror
// duplicate-request heuristic, and the tail shows it.
func FailSlow(c Config) (*Figure, error) {
	type scen struct {
		x     float64
		name  string
		slow  bool
		hedge bool
		evict bool
	}
	scenarios := []scen{
		{0, "healthy", false, false, false},
		{1, "slow", true, false, false},
		{2, "slow+hedge", true, true, false},
		{3, "slow+hedge+evict", true, true, true},
	}
	res, err := runner.Map(len(scenarios), func(i int) (failSlowRes, error) {
		s := scenarios[i]
		return runFailSlow(s.slow, s.hedge, s.evict, c.IometerIOs, c.Seed)
	})
	if err != nil {
		return nil, err
	}

	fig := &Figure{
		Name:   "fail-slow",
		Title:  "Read tail latency with one fail-slow drive (RAID-10, six drives)",
		XLabel: "scenario (0 healthy, 1 slow, 2 slow+hedge, 3 slow+hedge+evict)",
		YLabel: "read latency percentile (ms)",
	}
	p50 := Series{Label: "p50"}
	p99 := Series{Label: "p99"}
	p999 := Series{Label: "p99.9"}
	for si, sc := range scenarios {
		r := res[si]
		p50.Add(sc.x, float64(r.p50)/float64(des.Millisecond))
		p99.Add(sc.x, float64(r.p99)/float64(des.Millisecond))
		p999.Add(sc.x, float64(r.p999)/float64(des.Millisecond))
		fig.Metric(fmt.Sprintf("served/%s", sc.name), float64(r.served))
		fig.Metric(fmt.Sprintf("iops/%s", sc.name), r.iops)
		fig.Metric(fmt.Sprintf("slow_commands/%s", sc.name), float64(r.slowCommands))
		fig.Metric(fmt.Sprintf("stutters/%s", sc.name), float64(r.stutters))
		if sc.hedge {
			fig.Metric(fmt.Sprintf("hedges_issued/%s", sc.name), float64(r.hedges.Issued))
			fig.Metric(fmt.Sprintf("hedges_won/%s", sc.name), float64(r.hedges.Won))
			fig.Metric(fmt.Sprintf("hedges_lost/%s", sc.name), float64(r.hedges.Lost))
			fig.Metric(fmt.Sprintf("hedges_cancelled/%s", sc.name), float64(r.hedges.Cancelled))
		}
		if sc.evict {
			fig.Metric(fmt.Sprintf("evictions/%s", sc.name), float64(r.evictions))
		}
	}
	fig.Series = append(fig.Series, p50, p99, p999)
	return fig, nil
}

// failSlowRes is one scenario's measurement.
type failSlowRes struct {
	p50, p99, p999 des.Time
	served         int
	iops           float64
	hedges         core.HedgeCounters
	evictions      int64
	slowCommands   int64
	stutters       int64
}

// failSlowProfile is the injected degradation: every command on the bad
// drive takes 8x its mechanical time, and roughly every quarter second the
// drive stutters for tens of milliseconds at a further 4x — the firmware-
// stall shape fail-slow studies report (degradations of 10-100x are
// common in the field).
func failSlowProfile() disk.SlowProfile {
	return disk.SlowProfile{
		Factor:        8,
		StutterEvery:  250 * des.Millisecond,
		StutterFor:    50 * des.Millisecond,
		StutterFactor: 4,
	}
}

// failSlowVolume matches degradedVolume: small enough that the eviction
// rebuild finishes inside the drain, large enough to spread load.
const failSlowVolume = int64(1 << 18) // 128 MB

// failSlowWarmupFrac drops the leading fraction of completions before the
// percentiles are taken: it covers the cold start, the adaptive hedge
// delay's sample-collection phase, and (in the eviction scenario) the
// detection window, so the reported tail is the mitigated steady state.
const failSlowWarmupFrac = 0.4

// runFailSlow builds a RAID-10(6), optionally makes drive 0 fail-slow, and
// measures a closed loop of uniform random reads. Hedging uses the
// adaptive (observed-p99) delay; the eviction scenario adds a hot spare
// and an eviction threshold so the tracker proactively fail-stops the slow
// drive mid-run and the tail recovers to near-healthy.
func runFailSlow(slow, hedge, evict bool, ios int, seed int64) (failSlowRes, error) {
	cfg := layout.RAID10(6)
	sim, a, err := buildArray(cfg, policyFor(cfg), failSlowVolume, seed, func(o *coreOptions) {
		o.ObsLabel = fmt.Sprintf("fail-slow/slow=%t/hedge=%t/evict=%t", slow, hedge, evict)
		if slow {
			o.Faults.Slow = map[int]disk.SlowProfile{0: failSlowProfile()}
		}
		if hedge {
			o.Hedge = true
			// Fast detection scaled to the run length; eviction stays off
			// unless the scenario asks for it (detection-only mode).
			o.Health = core.HealthOptions{
				Enabled:     true,
				MinSamples:  16,
				Alpha:       0.25,
				EvictRatio:  -1,
				EvictFaults: -1,
			}
		}
		if evict {
			o.Spares = 1
			o.RebuildMBps = 100
			o.Health.EvictRatio = 2.5
		}
	})
	if err != nil {
		return failSlowRes{}, err
	}

	const sectors = 8
	const outstanding = 4
	rng := rand.New(rand.NewSource(seed + 211))
	var res failSlowRes
	lats := make([]des.Time, 0, ios)
	start := sim.Now()
	finished := 0
	var issue func()
	issued := 0
	issue = func() {
		if issued >= ios {
			return
		}
		issued++
		off := rng.Int63n(a.DataSectors() - sectors)
		if err := a.Submit(core.Read, off, sectors, false, func(r coreResult) {
			finished++
			if !r.Failed {
				res.served++
				lats = append(lats, r.Latency())
			}
			issue()
		}); err != nil {
			panic(err)
		}
	}
	for i := 0; i < outstanding && i < ios; i++ {
		issue()
	}
	for finished < ios {
		if !sim.Step() {
			return failSlowRes{}, fmt.Errorf("experiments: fail-slow run stalled at %d/%d", finished, ios)
		}
	}
	res.iops = measuredRate(res.served, start, sim.Now(), 0)
	if !a.Drain(des.Hour) {
		return failSlowRes{}, fmt.Errorf("experiments: fail-slow run failed to drain")
	}

	// Percentiles over the steady-state window (completion order is
	// deterministic, so the trim is too).
	warm := lats[int(float64(len(lats))*failSlowWarmupFrac):]
	sort.Slice(warm, func(i, j int) bool { return warm[i] < warm[j] })
	res.p50 = pctile(warm, 0.50)
	res.p99 = pctile(warm, 0.99)
	res.p999 = pctile(warm, 0.999)

	res.hedges = a.Hedges()
	fc := a.Faults()
	res.evictions = fc.Evictions
	res.slowCommands = fc.SlowCommands
	res.stutters = fc.Stutters
	return res, nil
}

// pctile returns the q-quantile of a sorted sample (nearest-rank).
func pctile(sorted []des.Time, q float64) des.Time {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
