package experiments

import (
	"math/rand"

	"repro/internal/advisor"
	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/disk"
	"repro/internal/layout"
	"repro/internal/model"
	"repro/internal/runner"
	"repro/internal/trace"
	"repro/internal/tracegen"
	"repro/internal/workload"
)

// AblationReplicaPlacement quantifies Section 2.2's claim that evenly
// spaced rotational replicas (R/2D) beat randomly placed ones (R/(D+1)):
// it measures the mean rotational delay to the best of Dr replicas on the
// simulated drive under both placements.
func AblationReplicaPlacement(c Config) *Figure {
	f := &Figure{
		Name:   "Ablation: replica placement",
		Title:  "mean rotational delay to best replica, even vs random placement",
		XLabel: "replicas",
		YLabel: "mean rotational delay (us)",
	}
	d := disk.ST39133LWV().MustNew()
	rng := rand.New(rand.NewSource(c.Seed))
	even := Series{Label: "evenly spaced"}
	random := Series{Label: "randomly placed"}
	modelEven := Series{Label: "model R/2D"}
	modelRand := Series{Label: "model R/(D+1)"}
	const samples = 20000
	for _, dr := range []int{1, 2, 3, 4, 6} {
		var sumE, sumR float64
		for i := 0; i < samples; i++ {
			at := des.Time(rng.Float64() * 1e7)
			head := d.AngleAt(at)
			phase := rng.Float64()
			best := 1.0
			for j := 0; j < dr; j++ {
				a := phase + float64(j)/float64(dr)
				w := a - head
				w -= float64(int(w))
				if w < 0 {
					w++
				}
				if w < best {
					best = w
				}
			}
			sumE += best
			best = 1.0
			for j := 0; j < dr; j++ {
				w := rng.Float64() - head
				w -= float64(int(w))
				if w < 0 {
					w++
				}
				if w < best {
					best = w
				}
			}
			sumR += best
		}
		even.Add(float64(dr), sumE/samples*float64(d.R))
		random.Add(float64(dr), sumR/samples*float64(d.R))
		modelEven.Add(float64(dr), float64(d.R)/(2*float64(dr)))
		modelRand.Add(float64(dr), float64(d.R)/float64(dr+1))
	}
	f.Series = []Series{even, random, modelEven, modelRand}
	return f
}

// AblationSlack compares the slack-k feedback loop against fixed slack
// settings in prototype mode: rotational-miss rate and mean latency at
// k=0 (aggressive), k=24 (conservative), and adaptive.
func AblationSlack(c Config) (*Figure, error) {
	f := &Figure{
		Name:   "Ablation: rotational slack",
		Title:  "prototype 2x3 SR-Array random reads: slack policy vs miss rate and latency",
		XLabel: "policy (0=k0, 1=adaptive, 2=k24)",
		YLabel: "value",
	}
	misses := Series{Label: "rotation miss %"}
	lat := Series{Label: "mean latency (us)"}
	policies := []struct {
		fixed int
		set   bool
	}{
		{0, true}, {0, false}, {24, true},
	}
	type slackRes struct {
		miss float64
		mean des.Time
	}
	res, err := runner.Map(len(policies), func(i int) (slackRes, error) {
		pol := policies[i]
		sim, a, err := buildArray(layout.SRArray(2, 3), "rsatf", microVolume(), c.Seed, func(o *coreOptions) {
			o.Prototype = true
			o.FixedSlack = pol.fixed
			o.FixedSlackSet = pol.set
		})
		if err != nil {
			return slackRes{}, err
		}
		w := workload.Iometer{ReadFrac: 1, Sectors: 1, Outstanding: 4, Locality: 3, Seed: c.Seed}
		r, err := w.Run(sim, a, c.IometerIOs)
		if err != nil {
			return slackRes{}, err
		}
		missRate, _, _, _, _ := a.Accuracy().Report(a.RotationPeriod())
		return slackRes{missRate, r.Latency.Mean()}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, r := range res {
		misses.Add(float64(i), r.miss*100)
		lat.Add(float64(i), float64(r.mean))
	}
	f.Series = []Series{misses, lat}
	return f, nil
}

// AblationCoalesce measures the value of discarding superseded delayed
// writes: a hot set of blocks is rewritten continuously (the "data that
// die young" pattern of Section 3.4), and we count media commands per
// user write with coalescing on and off.
func AblationCoalesce(c Config) (*Figure, error) {
	f := &Figure{
		Name:   "Ablation: delayed-write coalescing",
		Title:  "hot-block rewrites on 1x3: media commands per user write",
		XLabel: "coalescing (1=on, 0=off)",
		YLabel: "media commands / user write",
	}
	s := Series{Label: "commands per write"}
	// 16 hot 4KB blocks rewritten round-robin at 500 writes/s: the three
	// drives of the 1x3 array never see the idle window propagation needs,
	// so pending copies are superseded by the next rewrite of the block.
	tr := &trace.Trace{Name: "hot-rewrites", DataSectors: 1 << 21}
	n := c.TraceIOs / 2
	for i := 0; i < n; i++ {
		tr.Records = append(tr.Records, trace.Record{
			At:    des.Time(i) * 2000, // 500/s
			Write: true,
			Off:   int64(i%16) * 1024,
			Count: 8,
		})
	}
	settings := []bool{true, false}
	cmds, err := runner.Map(len(settings), func(i int) (int64, error) {
		on := settings[i]
		sim, a, err := buildArray(layout.SRArray(1, 3), "rsatf", tr.DataSectors, c.Seed, func(o *coreOptions) {
			o.DisableCoalescing = !on
		})
		if err != nil {
			return 0, err
		}
		if _, err := workload.Replay(sim, a, tr); err != nil {
			return 0, err
		}
		a.Drain(des.Hour)
		var total int64
		for d := 0; d < a.Disks(); d++ {
			total += a.Commands(d)
		}
		return total, nil
	})
	if err != nil {
		return nil, err
	}
	for i, on := range settings {
		x := 0.0
		if on {
			x = 1
		}
		s.Add(x, float64(cmds[i])/float64(n))
	}
	f.Series = []Series{s}
	return f, nil
}

// AblationMirrorSched compares the paper's duplicate-request heuristic
// for mirrored reads against a static nearest-at-submit choice.
func AblationMirrorSched(c Config) (*Figure, error) {
	f := &Figure{
		Name:   "Ablation: mirror read scheduling",
		Title:  "6-way mirror random reads: duplicate-request heuristic vs static choice",
		XLabel: "outstanding requests",
		YLabel: "mean latency (us)",
	}
	dup := Series{Label: "duplicate-request"}
	static := Series{Label: "static nearest"}
	type slot struct {
		series *Series
		x      float64
	}
	var jobs []iometerJob
	var slots []slot
	for _, q := range []int{4, 8, 16, 32} {
		for _, disable := range []bool{false, true} {
			disable := disable
			w := workload.Iometer{ReadFrac: 1, Sectors: 1, Outstanding: q, Locality: 3, Seed: c.Seed}
			jobs = append(jobs, iometerJob{cfg: layout.Mirror(6), policy: "satf", w: w, total: c.IometerIOs,
				mod: func(o *coreOptions) { o.DisableDupRequests = disable }})
			s := &dup
			if disable {
				s = &static
			}
			slots = append(slots, slot{s, float64(q)})
		}
	}
	res, err := runIometerJobs(c.Seed, jobs)
	if err != nil {
		return nil, err
	}
	for i, r := range res {
		slots[i].series.Add(slots[i].x, float64(r.Latency.Mean()))
	}
	f.Series = []Series{dup, static}
	return f, nil
}

// AblationOpportunistic measures the paper's proposed-but-unimplemented
// optimization — refining the head position from ordinary request
// completions. A fresh per-request anchor substitutes for periodic
// reference reads, so over a long run the optimization eliminates nearly
// all calibration I/O while holding the rotation-miss rate.
func AblationOpportunistic(c Config) (*Figure, error) {
	f := &Figure{
		Name:   "Ablation: opportunistic head tracking",
		Title:  "prototype 2x3 over 30 simulated minutes, 2-minute recalibration cadence",
		XLabel: "opportunistic (1=on, 0=off)",
		YLabel: "value",
	}
	// A sparse open-loop read trace spread over 30 minutes.
	n := c.IometerIOs
	tr := &trace.Trace{Name: "sparse-reads", DataSectors: microVolume()}
	rng := rand.New(rand.NewSource(c.Seed))
	gap := 30 * des.Minute / des.Time(n)
	for i := 0; i < n; i++ {
		tr.Records = append(tr.Records, trace.Record{
			At:    des.Time(i) * gap,
			Off:   rng.Int63n(tr.DataSectors - 8),
			Count: 8,
		})
	}
	miss := Series{Label: "rotation miss %"}
	refs := Series{Label: "reference reads after bootstrap"}
	settings := []bool{false, true}
	type oppRes struct {
		miss float64
		refs int64
	}
	res, err := runner.Map(len(settings), func(i int) (oppRes, error) {
		on := settings[i]
		sim, a, err := buildArray(layout.SRArray(2, 3), "rsatf", microVolume(), c.Seed, func(o *coreOptions) {
			o.Prototype = true
			o.OpportunisticTracking = on
			o.FixedSlack = 2
			o.FixedSlackSet = true
		})
		if err != nil {
			return oppRes{}, err
		}
		bootRefs := a.RefReads
		if _, err := workload.Replay(sim, a, tr); err != nil {
			return oppRes{}, err
		}
		missRate, _, _, _, _ := a.Accuracy().Report(a.RotationPeriod())
		return oppRes{missRate, a.RefReads - bootRefs}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, on := range settings {
		x := 0.0
		if on {
			x = 1
		}
		miss.Add(x, res[i].miss*100)
		refs.Add(x, float64(res[i].refs))
	}
	f.Series = []Series{miss, refs}
	return f, nil
}

// AblationIntraTrack quantifies why the SR-Array places rotational
// replicas on different tracks: intra-track replication (Ng's scheme)
// halves the effective track length, so large sequential I/O pays extra
// track switches. Small random reads perform about the same either way.
func AblationIntraTrack(c Config) (*Figure, error) {
	f := &Figure{
		Name:   "Ablation: intra-track vs cross-track replicas",
		Title:  "1x2 replication: small random reads (us) and 1MB sequential reads (MB/s)",
		XLabel: "placement (0=intra-track, 1=cross-track)",
		YLabel: "value",
	}
	randLat := Series{Label: "random 4KB read latency (us)"}
	seqBW := Series{Label: "sequential bandwidth (MB/s)"}
	settings := []bool{false, true}
	type itRes struct {
		lat  des.Time
		mbps float64
	}
	res, err := runner.Map(len(settings), func(i int) (itRes, error) {
		cross := settings[i]
		cfg := layout.Config{Ds: 1, Dr: 2, Dm: 1, IntraTrack: !cross}
		sim, a, err := buildArray(cfg, "rsatf", microVolume()/2, c.Seed, nil)
		if err != nil {
			return itRes{}, err
		}
		// Small random reads.
		w := workload.Iometer{ReadFrac: 1, Sectors: 8, Outstanding: 1, Locality: 3, Seed: c.Seed}
		r, err := w.Run(sim, a, c.IometerIOs/4)
		if err != nil {
			return itRes{}, err
		}
		// Large sequential reads: 1 MB at a stride, measured end to end.
		const big = 2048 // sectors = 1 MB
		var seqTime des.Time
		reads := 24
		for k := 0; k < reads; k++ {
			off := int64(k) * big * 4
			done := false
			var lat des.Time
			if err := a.Submit(coreRead, off, big, false, func(r coreResult) {
				lat, done = r.Latency(), true
			}); err != nil {
				return itRes{}, err
			}
			for !done {
				sim.Step()
			}
			seqTime += lat
		}
		mbps := float64(reads) * float64(big) * 512 / 1e6 / (seqTime.Seconds())
		return itRes{r.Latency.Mean(), mbps}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, cross := range settings {
		x := 0.0
		if cross {
			x = 1
		}
		randLat.Add(x, float64(res[i].lat))
		seqBW.Add(x, res[i].mbps)
	}
	f.Series = []Series{randLat, seqBW}
	return f, nil
}

// Section25 reproduces the paper's Section 2.5 discussion: an SR-Array
// (replicas on one disk) versus a striped mirror (the same replica count
// spread across disks, chosen by rotational position). The paper's
// best-effort striped mirror could not match the SR-Array on throughput;
// statistically its pure read latency can be slightly better.
func Section25(c Config) (*Figure, error) {
	f := &Figure{
		Name:   "Section 2.5: SR-Array vs striped mirror",
		Title:  "2x3x1 SR-Array vs 2x1x3 striped mirror, random reads, 6 disks",
		XLabel: "outstanding requests",
		YLabel: "IOPS",
	}
	sr := Series{Label: "2x3x1 SR-Array (RSATF)"}
	sm := Series{Label: "2x1x3 striped mirror (SATF)"}
	srLat := Series{Label: "SR-Array mean latency (us)"}
	smLat := Series{Label: "striped mirror mean latency (us)"}
	qs := []int{1, 4, 16, 32}
	var jobs []iometerJob
	for _, q := range qs {
		w := workload.Iometer{ReadFrac: 1, Sectors: 1, Outstanding: q, Locality: 3, Seed: c.Seed}
		jobs = append(jobs,
			iometerJob{cfg: layout.SRArray(2, 3), policy: "rsatf", w: w, total: c.IometerIOs},
			iometerJob{cfg: layout.Config{Ds: 2, Dr: 1, Dm: 3}, policy: "satf", w: w, total: c.IometerIOs})
	}
	res, err := runIometerJobs(c.Seed, jobs)
	if err != nil {
		return nil, err
	}
	for i, q := range qs {
		resSR, resSM := res[2*i], res[2*i+1]
		sr.Add(float64(q), resSR.IOPS)
		sm.Add(float64(q), resSM.IOPS)
		srLat.Add(float64(q), float64(resSR.Latency.Mean()))
		smLat.Add(float64(q), float64(resSM.Latency.Mean()))
	}
	f.Series = []Series{sr, sm, srLat, smLat}
	return f, nil
}

// AdvisorDemo exercises the dynamic-configuration future work: the online
// monitor watches a workload that switches from a Cello-like phase to a
// TPC-C-like phase, and its recommendation follows — high rotational
// replication while the accesses are local and read-mostly, wider
// striping once they turn random.
func AdvisorDemo(c Config) (*Figure, error) {
	f := &Figure{
		Name:   "Advisor: dynamic configuration (future work)",
		Title:  "online recommendation for 12 disks across a workload phase change",
		XLabel: "window (1k observations; phase change at window 4)",
		YLabel: "value",
	}
	const volume = 1 << 24
	m := advisor.NewMonitor(volume)
	recDr := Series{Label: "recommended Dr"}
	drift := Series{Label: "drift of static 12x1 striping"}
	feed := func(p tracegen.Params, windows int, startWin int) error {
		p.DataSectors = volume
		// Generate ~30% extra: burst truncation at short durations can
		// leave the trace slightly under the nominal count.
		tr := tracegen.GenerateCached(*celloTrace(p, windows*1300))
		for i, r := range tr.Records {
			if i >= windows*1000 {
				break
			}
			m.Observe(advisor.Observation{Off: r.Off, Count: r.Count, Write: r.Write, Async: r.Async})
			if (i+1)%1000 == 0 {
				w := startWin + (i+1)/1000
				cfg, err := m.Recommend(disk.ST39133LWV(), 12)
				if err != nil {
					return err
				}
				d, err := m.Drift(disk.ST39133LWV(), layout.Striping(12))
				if err != nil {
					return err
				}
				recDr.Add(float64(w), float64(cfg.Dr))
				drift.Add(float64(w), d)
			}
		}
		return nil
	}
	if err := feed(tracegen.CelloDisk6(c.Seed), 4, 0); err != nil {
		return nil, err
	}
	if err := feed(tracegen.TPCC(c.Seed+1), 4, 4); err != nil {
		return nil, err
	}
	f.Series = []Series{recDr, drift}
	return f, nil
}

// Sensitivity validates Section 2.3's configuration guidance against
// changed disk characteristics (the integrated simulator's purpose:
// "exploring the impact of changing disk characteristics"): slow spindles
// demand a tall thin grid (more rotational replicas), slow arms a short
// fat one (more striping). For each drive variant it reports the
// model-recommended Dr at D=12 and the measured-best Dr from a sweep of
// the admissible aspect ratios.
func Sensitivity(c Config) (*Figure, error) {
	f := &Figure{
		Name:   "Sensitivity: disk characteristics vs best aspect ratio",
		Title:  "D=12, random reads q=8, locality 3; variants of the reference drive",
		XLabel: "variant (0=slow spindle 5400rpm, 1=reference, 2=fast spindle 15k, 3=slow arm 2x seeks)",
		YLabel: "Dr",
	}
	variants := []struct {
		name string
		mod  func(*disk.Spec)
	}{
		{"slow spindle", func(sp *disk.Spec) { sp.RPM = 5400 }},
		{"reference", func(*disk.Spec) {}},
		{"fast spindle", func(sp *disk.Spec) { sp.RPM = 15000 }},
		{"slow arm", func(sp *disk.Spec) {
			sp.MinSeek *= 2
			sp.AvgSeek *= 2
			sp.MaxSeek *= 2
		}},
	}
	const locality = 3
	recommended := Series{Label: "model-recommended Dr"}
	measured := Series{Label: "measured-best Dr"}
	type job struct {
		sp          disk.Spec
		dataSectors int64
		dr          int
	}
	var jobs []job
	var counts []int // sweep jobs per variant
	for vi, v := range variants {
		sp := disk.ST39133LWV()
		v.mod(&sp)
		d, err := sp.New()
		if err != nil {
			return nil, err
		}
		md := model.Disk{S: sp.MaxSeek, R: d.NominalR}
		_, drRec, err := model.Optimize(md, 12, 1, 8.0/12, locality, func(dr int) bool {
			return sp.Heads%dr == 0
		})
		if err != nil {
			return nil, err
		}
		recommended.Add(float64(vi), float64(drRec))

		n := 0
		for _, dr := range []int{1, 2, 3, 4, 6} {
			if 12%dr != 0 {
				continue
			}
			jobs = append(jobs, job{sp, d.Geom.TotalSectors() / (128 * 72) * (128 * 72), dr})
			n++
		}
		counts = append(counts, n)
	}
	iops, err := runner.Map(len(jobs), func(i int) (float64, error) {
		j := jobs[i]
		cfg := layout.SRArray(12/j.dr, j.dr)
		sim := des.New()
		a, err := core.New(sim, core.Options{
			Config: cfg, Policy: "rsatf", Spec: j.sp,
			DataSectors: j.dataSectors,
			Seed:        c.Seed,
		})
		if err != nil {
			return 0, err
		}
		w := workload.Iometer{ReadFrac: 1, Sectors: 1, Outstanding: 8, Locality: locality, Seed: c.Seed}
		res, err := w.Run(sim, a, c.IometerIOs/2)
		if err != nil {
			return 0, err
		}
		return res.IOPS, nil
	})
	if err != nil {
		return nil, err
	}
	idx := 0
	for vi := range variants {
		bestDr, bestIOPS := 0, 0.0
		for k := 0; k < counts[vi]; k++ {
			j := jobs[idx]
			if iops[idx] > bestIOPS {
				bestDr, bestIOPS = j.dr, iops[idx]
			}
			idx++
		}
		measured.Add(float64(vi), float64(bestDr))
	}
	f.Series = []Series{recommended, measured}
	return f, nil
}

// TCQ answers the paper's open question about drives with intelligent
// internal scheduling ("how we can adapt our algorithm for such drives"):
// tagged command queueing lets the firmware schedule with perfect
// self-knowledge, but only the host can choose among rotational replicas.
// Compared at equal load on a 2x3 SR-Array: host-side RSATF, a smart
// drive with a naive host (TCQ + FCFS, primary replicas only), and a
// smart drive with host-side replica choice (TCQ + RFCFS). Plain striping
// is the control: there, drive scheduling alone recovers host SATF.
func TCQ(c Config) (*Figure, error) {
	f := &Figure{
		Name:   "TCQ: host scheduling vs drive-internal scheduling",
		Title:  "random reads, locality 3, six disks, prototype mode; TCQ depth 8",
		XLabel: "outstanding requests",
		YLabel: "IOPS",
	}
	runs := []struct {
		label  string
		cfg    layout.Config
		policy string
		tcq    int
	}{
		{"2x3 host RSATF", layout.SRArray(2, 3), "rsatf", 0},
		{"2x3 TCQ drive SATF (naive host)", layout.SRArray(2, 3), "fcfs", 8},
		{"2x3 TCQ + host replica choice", layout.SRArray(2, 3), "rfcfs", 8},
		{"6x1 host SATF", layout.Striping(6), "satf", 0},
		{"6x1 TCQ drive SATF", layout.Striping(6), "fcfs", 8},
	}
	qs := []int{8, 16, 32}
	var jobs []iometerJob
	for _, r := range runs {
		tcq := r.tcq
		for _, q := range qs {
			w := workload.Iometer{ReadFrac: 1, Sectors: 1, Outstanding: q, Locality: 3, Seed: c.Seed}
			jobs = append(jobs, iometerJob{cfg: r.cfg, policy: r.policy, w: w, total: c.IometerIOs,
				mod: func(o *coreOptions) {
					o.TCQDepth = tcq
					// Prototype mode: the host predicts through noise while the
					// firmware knows its own mechanics exactly — the regime the
					// paper's question is about.
					o.Prototype = true
				}})
		}
	}
	res, err := runIometerJobs(c.Seed, jobs)
	if err != nil {
		return nil, err
	}
	for ri, r := range runs {
		s := Series{Label: r.label}
		for qi, q := range qs {
			s.Add(float64(q), res[ri*len(qs)+qi].IOPS)
		}
		f.Series = append(f.Series, s)
	}
	return f, nil
}

// AblationAging quantifies SATF's starvation problem and the aged
// variant's fix: under a sustained deep queue, greedy SATF can defer an
// inconveniently placed request almost indefinitely; ASATF spends a
// little mean latency to bound the tail.
func AblationAging(c Config) (*Figure, error) {
	f := &Figure{
		Name:   "Ablation: SATF aging",
		Title:  "single disk, 24 outstanding random reads: mean vs tail latency",
		XLabel: "policy (0=satf, 1=asatf)",
		YLabel: "latency (us)",
	}
	mean := Series{Label: "mean"}
	p99 := Series{Label: "p99"}
	maxS := Series{Label: "max"}
	var jobs []iometerJob
	for _, policy := range []string{"satf", "asatf"} {
		w := workload.Iometer{ReadFrac: 1, Sectors: 1, Outstanding: 24, Locality: 1, Seed: c.Seed}
		jobs = append(jobs, iometerJob{cfg: layout.Striping(1), policy: policy, w: w, total: c.IometerIOs})
	}
	res, err := runIometerJobs(c.Seed, jobs)
	if err != nil {
		return nil, err
	}
	for i, r := range res {
		mean.Add(float64(i), float64(r.Latency.Mean()))
		p99.Add(float64(i), float64(r.Latency.Percentile(99)))
		maxS.Add(float64(i), float64(r.Latency.Max()))
	}
	f.Series = []Series{mean, p99, maxS}
	return f, nil
}

// Breakdown decomposes the mean physical service time of each six-disk
// configuration under the Cello workload into queueing, overhead, seek,
// rotation, and transfer — making Section 2's argument visible: the
// SR-Array pays a little more seek (half the cylinders instead of a
// sixth) to remove most of the rotational delay.
func Breakdown(c Config) (*Figure, error) {
	tr := genTrace(tracegen.CelloBase(c.Seed), c.TraceIOs)
	f := &Figure{
		Name:   "Breakdown: where the time goes",
		Title:  "per-request mean components (us), Cello base on six disks; X = config index",
		XLabel: "config (0=6x1x1, 1=3x1x2, 2=2x3x1, 3=1x1x6)",
		YLabel: "mean time (us)",
	}
	configs := []layout.Config{
		layout.Striping(6),
		layout.RAID10(6),
		layout.SRArray(2, 3),
		layout.Mirror(6),
	}
	queue := Series{Label: "queue"}
	overhead := Series{Label: "overhead"}
	seek := Series{Label: "seek"}
	rotate := Series{Label: "rotation"}
	transfer := Series{Label: "transfer"}
	type bdRes struct{ q, o, s, r, x des.Time }
	res, err := runner.Map(len(configs), func(i int) (bdRes, error) {
		cfg := configs[i]
		sim, a, err := buildArray(cfg, policyFor(cfg), tr.DataSectors, c.Seed, nil)
		if err != nil {
			return bdRes{}, err
		}
		if _, err := workload.Replay(sim, a, tr); err != nil {
			return bdRes{}, err
		}
		q, o, s, r, x := a.BreakdownReport().Means()
		return bdRes{q, o, s, r, x}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, r := range res {
		queue.Add(float64(i), float64(r.q))
		overhead.Add(float64(i), float64(r.o))
		seek.Add(float64(i), float64(r.s))
		rotate.Add(float64(i), float64(r.r))
		transfer.Add(float64(i), float64(r.x))
	}
	f.Series = []Series{queue, overhead, seek, rotate, transfer}
	return f, nil
}
