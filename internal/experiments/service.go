package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/layout"
	"repro/internal/service"
)

// The service experiment pushes a large multi-tenant closed-loop load
// through the full storage-service front-end — HTTP client, wire format,
// gateway barrier, token buckets, array admission control — in the
// gateway's deterministic mode, and reports the windowed p99 and 429
// rate. At the default Config it drives IometerIOs×400 = one million
// HTTP requests from a thousand simulated tenants. A scaled-down double
// run then re-checks the tentpole property end to end: two runs of the
// same load produce byte-identical report digests.

// serviceTenants is the fleet size; the acceptance bar is one thousand.
const serviceTenants = 1000

// serviceSpec sizes one service load.
type serviceSpec struct {
	cfg     layout.Config
	depth   int
	total   int
	tenants int
	seed    int64
	think   des.Time
	rate    float64
	burst   float64
	retries int
	window  des.Time
}

// serviceRes is one run's outcome: the report, the gateway's counters,
// and the array's shed accounting.
type serviceRes struct {
	rep   *service.LoadReport
	stats service.Stats
	sheds core.ShedCounters
}

// runService stands up a fresh array and harness and drives the load.
func runService(s serviceSpec) (*serviceRes, error) {
	sim := des.New()
	o := core.Options{
		Config: s.cfg, Policy: policyFor(s.cfg), Seed: s.seed,
		MaxQueueDepth: s.depth,
	}
	if Observe != nil {
		o.Obs = Observe
	}
	a, err := core.New(sim, o)
	if err != nil {
		return nil, err
	}
	h := service.NewHarness(a, service.Config{
		Deterministic: true,
		Limits:        service.Limits{Default: service.TenantLimit{Rate: s.rate, Burst: s.burst}},
	})
	rep, err := h.RunLoad(service.LoadConfig{
		Tenants:    s.tenants,
		Requests:   s.total,
		Sectors:    a.DataSectors(),
		Seed:       s.seed,
		ThinkMean:  s.think,
		MaxRetries: s.retries,
		Window:     s.window,
	})
	if err != nil {
		_ = h.Close()
		return nil, err
	}
	res := &serviceRes{rep: rep, stats: h.GW.Stats(), sheds: a.Sheds()}
	if err := h.Close(); err != nil {
		return nil, fmt.Errorf("experiments: service harness close: %w", err)
	}
	if rep.Aborted != 0 {
		return nil, fmt.Errorf("experiments: %d tenants aborted on transport errors", rep.Aborted)
	}
	return res, nil
}

// defaultServiceSpec sizes the run from the config: IometerIOs×400
// logical operations (1M at the default 2500), a thousand tenants, and a
// completion window that yields a few dozen points regardless of scale.
func defaultServiceSpec(c Config) serviceSpec {
	total := c.IometerIOs * 400
	window := des.Time(float64(total) / 120000 * float64(des.Second))
	if window < 50*des.Millisecond {
		window = 50 * des.Millisecond
	}
	return serviceSpec{
		cfg:     layout.Config{Ds: 8, Dr: 2, Dm: 1},
		depth:   8,
		total:   total,
		tenants: serviceTenants,
		seed:    c.Seed,
		think:   200 * des.Millisecond,
		rate:    8,
		burst:   4,
		retries: 2,
		window:  window,
	}
}

// Service runs the front-end load experiment.
func Service(c Config) (*Figure, error) {
	spec := defaultServiceSpec(c)
	res, err := runService(spec)
	if err != nil {
		return nil, err
	}
	if res.sheds.Overload != res.stats.Overloaded {
		return nil, fmt.Errorf("experiments: array shed %d requests but the gateway returned %d overload 429s",
			res.sheds.Overload, res.stats.Overloaded)
	}

	// Determinism double-check at a twentieth of the scale: same spec,
	// fresh arrays, byte-identical digests required.
	dspec := spec
	dspec.total = spec.total / 20
	if dspec.total < 2000 {
		dspec.total = 2000
	}
	if dspec.total > 50000 {
		dspec.total = 50000
	}
	d1, err := runService(dspec)
	if err != nil {
		return nil, err
	}
	d2, err := runService(dspec)
	if err != nil {
		return nil, err
	}
	if d1.rep.Digest() != d2.rep.Digest() {
		return nil, fmt.Errorf("experiments: service load is nondeterministic: digests differ across identical runs")
	}

	fig := &Figure{
		Name:   "service",
		Title:  fmt.Sprintf("Storage service: %d tenants, %d HTTP requests over a %v SR-Array", spec.tenants, res.rep.Issued, spec.cfg),
		XLabel: "window end (s of simulated time)",
		YLabel: "p99 (ms) / 429 rate (%)",
	}
	var p99, rejRate Series
	p99.Label = "p99/service"
	rejRate.Label = "429%/service"
	for _, w := range res.rep.Windows {
		end := float64(w.Index+1) * float64(spec.window) / 1e6
		if w.OK > 0 {
			p99.Add(end, float64(w.P99)/1000)
		}
		if w.Count > 0 {
			rejRate.Add(end, 100*float64(w.Limited+w.Overloaded)/float64(w.Count))
		}
	}
	fig.Series = append(fig.Series, p99, rejRate)

	rep, st := res.rep, res.stats
	fig.Metric("load/tenants", float64(spec.tenants))
	fig.Metric("load/issued", float64(rep.Issued))
	fig.Metric("load/ok", float64(rep.OK))
	fig.Metric("load/limited_429", float64(rep.Limited))
	fig.Metric("load/overloaded_429", float64(rep.Overloaded))
	fig.Metric("load/failed", float64(rep.Failed))
	fig.Metric("load/retries", float64(rep.Retries))
	fig.Metric("gateway/requests", float64(st.Requests))
	fig.Metric("gateway/rate_limited", float64(st.RateLimited))
	fig.Metric("gateway/overloaded", float64(st.Overloaded))
	fig.Metric("gateway/sleeps", float64(st.Sleeps))
	fig.Metric("array/sheds_overload", float64(res.sheds.Overload))
	fig.Metric("determinism/requests", float64(d1.rep.Issued))
	fig.Metric("determinism/ok", 1)
	if n := len(rep.Windows); n > 0 {
		last := rep.Windows[n-1]
		virtual := float64(last.Index+1) * float64(spec.window) / 1e6
		fig.Metric("load/virtual_seconds", virtual)
		if virtual > 0 {
			fig.Metric("load/http_rps", float64(rep.Issued)/virtual)
		}
	}
	return fig, nil
}
