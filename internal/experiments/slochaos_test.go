package experiments

import (
	"testing"
)

// TestSLOChaosExperiment runs the full slo-chaos experiment at test
// scale and checks the control plane's contract: the controller buys
// premium SLO compliance back under chaos, sheds strictly in priority
// order (best-effort first, premium never), and fully recovers to
// Normal once the faults clear — while every digest-checked stage
// stayed deterministic (the experiment itself errors otherwise).
func TestSLOChaosExperiment(t *testing.T) {
	cfg := Config{TraceIOs: 600, IometerIOs: 300, Seed: 1}
	fig, err := SLOChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	get := func(name string) float64 {
		v, ok := fig.Metrics[name]
		if !ok {
			t.Fatalf("metric %q missing; have %d metrics", name, len(fig.Metrics))
		}
		return v
	}

	// The tentpole claim: controller-on recovers measurable premium
	// compliance versus the identical run with the control plane off.
	offC, onC := get("gateway/premium/compliance_off"), get("gateway/premium/compliance_on")
	if onC <= offC {
		t.Errorf("controller did not improve premium compliance: off=%.1f%% on=%.1f%%", offC, onC)
	}
	if gain := get("gateway/premium/compliance_gain"); gain < 2 {
		t.Errorf("premium compliance gain %.2f%% (want a measurable >= 2%%)", gain)
	}

	// Shedding is strictly priority-ordered: premium never, best-effort
	// before (and at least as much as) standard.
	if v := get("gateway/premium/sheds_on"); v != 0 {
		t.Errorf("premium was shed %v times; the ladder must never shed premium", v)
	}
	be, std := get("gateway/best-effort/sheds_on"), get("gateway/standard/sheds_on")
	if be <= 0 {
		t.Error("best-effort was never shed; the brownout ladder did not engage")
	}
	if be < std {
		t.Errorf("standard shed more than best-effort (%v vs %v); shed order inverted", std, be)
	}
	if v := get("gateway/shed_429_on"); v <= 0 {
		t.Error("gateway counted no shed 429s with the controller on")
	}
	if v := get("gateway/shed_429_off"); v != 0 {
		t.Errorf("gateway counted %v shed 429s with the controller off", v)
	}

	// The ladder moved and recovered: escalations matched by
	// de-escalations, ending back at Normal.
	if v := get("gateway/escalations_on"); v <= 0 {
		t.Error("controller never escalated under chaos")
	}
	if up, down := get("gateway/escalations_on"), get("gateway/deescalations_on"); up != down {
		t.Errorf("escalations %v != deescalations %v; brownout did not fully recover", up, down)
	}
	if v := get("gateway/level_index_end_on"); v != 0 {
		t.Errorf("controller ended the run at level index %v, not Normal", v)
	}

	// Cluster stage: same shed discipline per brick, and the controller
	// must not cost premium anything.
	if v := get("cluster/premium/shed_on"); v != 0 {
		t.Errorf("cluster shed premium %v times", v)
	}
	if v := get("cluster/best-effort/shed_on"); v <= 0 {
		t.Error("cluster never shed best-effort; brick controllers did not engage")
	}
	if off, on := get("cluster/premium/slo_pct_off"), get("cluster/premium/slo_pct_on"); on < off {
		t.Errorf("cluster premium compliance regressed with the controller on: off=%.1f%% on=%.1f%%", off, on)
	}
	if v := get("cluster/escalations_on"); v <= 0 {
		t.Error("no cluster controller ever escalated")
	}
	if v := get("determinism/ok"); v != 1 {
		t.Errorf("determinism/ok = %v", v)
	}

	// The figure carries the off/on p99 series.
	if len(fig.Series) != 2 {
		t.Fatalf("want 2 series (off/on), have %d", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Points) == 0 {
			t.Errorf("series %q is empty", s.Label)
		}
	}
}
