package experiments

import (
	"testing"

	"repro/internal/core"
	"repro/internal/layout"
)

func testBigSpec() BigArraySpec {
	return BigArraySpec{
		Bricks:      4,
		Cfg:         layout.Config{Ds: 4, Dr: 2, Dm: 2},
		IOs:         600,
		Outstanding: 64,
		Sectors:     8,
		ReadFrac:    0.67,
		Seed:        1,
	}
}

// TestShardedMatchesSequential is the sharded engine's contract check: the
// same cluster must produce an identical digest under the naive lockstep
// driver and under the epoch engine at one, two, and four workers, batched
// or not. Run under -race this also exercises the epoch window's isolation
// claim (no two workers touch the same shard's state inside a window).
func TestShardedMatchesSequential(t *testing.T) {
	for _, batch := range []bool{false, true} {
		spec := testBigSpec()
		spec.Batch = batch
		base, err := RunBigArrayLockstep(spec)
		if err != nil {
			t.Fatal(err)
		}
		if base.Completed != spec.IOs {
			t.Fatalf("lockstep completed %d/%d", base.Completed, spec.IOs)
		}
		for _, workers := range []int{1, 2, 4} {
			spec.Workers = workers
			r, err := RunBigArray(spec)
			if err != nil {
				t.Fatalf("workers=%d batch=%v: %v", workers, batch, err)
			}
			if r.Digest != base.Digest {
				t.Fatalf("workers=%d batch=%v digest diverged:\nepoch:    %s\nlockstep: %s",
					workers, batch, r.Digest, base.Digest)
			}
		}
	}
}

// TestBigArrayBatchPrimesSameLoad: batched priming is a different driver
// (drives schedule against the whole window at once), so digests may
// differ from unbatched — but the load must be conserved: same request
// count, all completions accounted for.
func TestBigArrayBatchPrimesSameLoad(t *testing.T) {
	spec := testBigSpec()
	spec.Batch = true
	r, err := RunBigArrayLockstep(spec)
	if err != nil {
		t.Fatal(err)
	}
	if r.Completed != spec.IOs {
		t.Fatalf("completed %d/%d", r.Completed, spec.IOs)
	}
	if r.Drives != spec.Bricks*spec.Cfg.Disks() {
		t.Fatalf("drives = %d, want %d", r.Drives, spec.Bricks*spec.Cfg.Disks())
	}
	if r.MeanLat <= 0 || r.IOPS <= 0 {
		t.Fatalf("degenerate result: lat=%v iops=%v", r.MeanLat, r.IOPS)
	}
}

// TestPoolPoisoningPreservesFigures runs a figure with pool poisoning on —
// every recycled request, extent-run, and copy object is scrambled at
// release — and requires byte-identical output to the unpoisoned run. Any
// read of a stale pooled object surfaces as a panic or a diverged figure.
func TestPoolPoisoningPreservesFigures(t *testing.T) {
	cfg := Config{TraceIOs: 600, IometerIOs: 300, Seed: 1}
	clean, err := Figure12(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer core.SetPoolPoisoning(core.SetPoolPoisoning(true))
	poisoned, err := Figure12(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Render() != poisoned.Render() {
		t.Fatalf("pool poisoning changed figure output:\n--- clean ---\n%s--- poisoned ---\n%s",
			clean.Render(), poisoned.Render())
	}
}
