package experiments

import (
	"fmt"
	"math"
	"strings"
)

// Claim is one headline result of the paper checked against a live run.
type Claim struct {
	ID       string
	Paper    string
	Measured string
	OK       bool
}

// SummaryResult is the live paper-versus-measured verification table —
// the machine-checked counterpart of EXPERIMENTS.md.
type SummaryResult struct {
	Claims []Claim
}

// OKCount returns how many claims hold.
func (s *SummaryResult) OKCount() int {
	n := 0
	for _, c := range s.Claims {
		if c.OK {
			n++
		}
	}
	return n
}

func (s *SummaryResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Paper-versus-measured summary: %d/%d headline claims hold\n\n", s.OKCount(), len(s.Claims))
	idW, paperW := 0, 0
	for _, c := range s.Claims {
		if len(c.ID) > idW {
			idW = len(c.ID)
		}
		if len(c.Paper) > paperW {
			paperW = len(c.Paper)
		}
	}
	for _, c := range s.Claims {
		mark := "ok  "
		if !c.OK {
			mark = "DEV "
		}
		fmt.Fprintf(&b, "  %s %-*s  paper: %-*s  measured: %s\n", mark, idW, c.ID, paperW, c.Paper, c.Measured)
	}
	return b.String()
}

// Summary runs the evaluation's headline experiments and checks each of
// the paper's key claims in one pass.
func Summary(c Config) (*SummaryResult, error) {
	out := &SummaryResult{}
	add := func(id, paper, measured string, ok bool) {
		out.Claims = append(out.Claims, Claim{ID: id, Paper: paper, Measured: measured, OK: ok})
	}

	// Table 2: head-prediction accuracy.
	t2, err := Table2(c)
	if err != nil {
		return nil, err
	}
	add("table2/misses", "0.22% rotation misses",
		fmt.Sprintf("%.2f%%", t2.MissRate*100), t2.MissRate < 0.01)

	// Figure 5: simulator-vs-prototype agreement.
	f5, err := Figure5(c)
	if err != nil {
		return nil, err
	}
	worst := 0.0
	for _, mix := range []string{"reads", "50/50 r/w"} {
		for _, q := range []float64{2, 4, 8, 16, 32, 64} {
			sim := f5.At(mix+" simulator", q)
			proto := f5.At(mix+" prototype", q)
			if g := math.Abs(sim-proto) / sim; g > worst {
				worst = g
			}
		}
	}
	add("fig5/validation", "throughput gap < 3%",
		fmt.Sprintf("worst gap %.1f%%", worst*100), worst < 0.08)

	// Figure 6: Cello orderings and factors at D=6.
	f6, err := Figure6(c, "cello-base")
	if err != nil {
		return nil, err
	}
	sr6 := f6.At("SR-Array (RSATF)", 6)
	st6 := f6.At("striping (SATF)", 6)
	rd6 := f6.At("RAID-10 (SATF)", 6)
	one := f6.At("SR-Array (RSATF)", 1)
	add("fig6/ordering", "SR < RAID-10 < striping at D=6",
		fmt.Sprintf("%.1f < %.1f < %.1f ms", sr6/1000, rd6/1000, st6/1000),
		sr6 < rd6 && rd6 < st6)
	add("fig6/vs-single", "6-disk SR-Array 1.94x one disk",
		fmt.Sprintf("%.2fx", one/sr6), one/sr6 > 1.5)
	add("fig6/vs-striping", "1.42x striping",
		fmt.Sprintf("%.2fx", st6/sr6), st6/sr6 > 1.05)

	// Figure 7: the model picks a good aspect ratio.
	f7, err := Figure7(c, "cello-base")
	if err != nil {
		return nil, err
	}
	best := math.Inf(1)
	for _, s := range f7.Series {
		if s.Label == "model-chosen" {
			continue
		}
		for _, p := range s.Points {
			if p.X == 6 && p.Y < best {
				best = p.Y
			}
		}
	}
	chosen := f7.At("model-chosen", 6)
	add("fig7/model-choice", "model finds a near-best Ds x Dr",
		fmt.Sprintf("chosen within %.1f%% of best", (chosen/best-1)*100), chosen <= best*1.10)

	// Figure 8: TPC-C ordering at 36 disks.
	f8, err := Figure8(c)
	if err != nil {
		return nil, err
	}
	add("fig8/tpcc", "SR < RAID-10 < striping at D=36",
		fmt.Sprintf("%.1f < %.1f < %.1f ms",
			f8.At("SR-Array (RSATF)", 36)/1000, f8.At("RAID-10 (SATF)", 36)/1000, f8.At("striping (SATF)", 36)/1000),
		f8.At("SR-Array (RSATF)", 36) < f8.At("RAID-10 (SATF)", 36) &&
			f8.At("RAID-10 (SATF)", 36) < f8.At("striping (SATF)", 36))

	// Figure 9: scheduler gap structure.
	f9, err := Figure9(c, "cello-base")
	if err != nil {
		return nil, err
	}
	const rate = 16
	look := f9.At("striping LOOK", rate)
	satf := f9.At("striping SATF", rate)
	rlook := f9.At("SR-Array RLOOK", rate)
	rsatf := f9.At("SR-Array RSATF", rate)
	add("fig9/gaps", "RLOOK-RSATF gap < LOOK-SATF gap; RLOOK beats mis-configured SATF",
		fmt.Sprintf("gaps %.0f vs %.0f us; RLOOK %.1f vs SATF %.1f ms", rlook-rsatf, look-satf, rlook/1000, satf/1000),
		(rlook-rsatf) < (look-satf) && rlook < satf)

	// Figure 13: read/write crossover side.
	f13, err := Figure13(c)
	if err != nil {
		return nil, err
	}
	cross := 101.0
	for _, w := range []float64{0, 10, 20, 30, 40, 50} {
		if f13.At("q8 6x1x1 SATF", w) < f13.At("q8 3x2x1 RSATF", w) {
			continue // SR-Array still ahead
		}
		cross = w
		break
	}
	add("fig13/crossover", "striping overtakes SR-Array left of 50% writes",
		fmt.Sprintf("crossover by %.0f%% writes", cross), cross <= 50)
	add("fig13/raid10", "RAID-10 worst at high write ratios",
		fmt.Sprintf("at 100%%: RAID-10 %.0f vs SR %.0f vs striping %.0f IOPS",
			f13.At("q8 3x1x2 SATF", 100), f13.At("q8 3x2x1 RSATF", 100), f13.At("q8 6x1x1 SATF", 100)),
		f13.At("q8 3x1x2 SATF", 100) < f13.At("q8 3x2x1 RSATF", 100) &&
			f13.At("q8 3x1x2 SATF", 100) < f13.At("q8 6x1x1 SATF", 100))

	// Section 2.2: replica placement models.
	ap := AblationReplicaPlacement(c)
	even3 := ap.At("evenly spaced", 3)
	rand3 := ap.At("randomly placed", 3)
	add("sec2.2/placement", "even replicas R/2D, random R/(D+1)",
		fmt.Sprintf("Dr=3: %.0f vs %.0f us (models 1000/1500)", even3, rand3),
		math.Abs(even3-1000) < 50 && math.Abs(rand3-1500) < 75)

	return out, nil
}
