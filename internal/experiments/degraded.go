package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/layout"
	"repro/internal/runner"
)

// DegradedRebuild is the fault-tolerance companion to the paper's healthy
// micro-benchmarks: read latency of equal-size (six data drive) SR-Array,
// RAID-10 and SR-Mirror configurations in three health states — healthy,
// degraded (one drive fail-stopped, no spare), and mid-rebuild (one drive
// fail-stopped with a hot spare reconstructing behind the measurement).
// Alongside latency it reports the fraction of reads lost outright: the
// SR-Array trades away exactly this axis, while the mirrored layouts serve
// every read from a surviving copy.
func DegradedRebuild(c Config) (*Figure, error) {
	type scen struct {
		x     float64
		name  string
		fail  bool
		spare bool
	}
	scenarios := []scen{
		{0, "healthy", false, false},
		{1, "degraded", true, false},
		{2, "rebuilding", true, true},
	}
	configs := []struct {
		label string
		cfg   layout.Config
	}{
		{"SR-Array 2x3x1", layout.SRArray(2, 3)},
		{"RAID-10 3x1x2", layout.RAID10(6)},
		{"SR-Mirror 1x3x2", layout.Config{Ds: 1, Dr: 3, Dm: 2}},
	}

	type job struct {
		cfg layout.Config
		sc  scen
	}
	var jobs []job
	for _, cc := range configs {
		for _, sc := range scenarios {
			jobs = append(jobs, job{cc.cfg, sc})
		}
	}
	res, err := runner.Map(len(jobs), func(i int) (degradedRes, error) {
		j := jobs[i]
		return runDegraded(j.cfg, j.sc.fail, j.sc.spare, c.IometerIOs, c.Seed)
	})
	if err != nil {
		return nil, err
	}

	fig := &Figure{
		Name:   "degraded-rebuild",
		Title:  "Read latency under failure and rebuild (six data drives)",
		XLabel: "scenario (0 healthy, 1 degraded, 2 rebuilding)",
		YLabel: "mean read latency (ms) / reads lost (%)",
	}
	for ci, cc := range configs {
		lat := Series{Label: cc.label}
		lost := Series{Label: cc.label + " lost"}
		for si, sc := range scenarios {
			r := res[ci*len(scenarios)+si]
			lat.Add(sc.x, float64(r.mean)/float64(des.Millisecond))
			lost.Add(sc.x, 100*float64(r.lost)/float64(r.lost+r.served))
			fig.Metric(fmt.Sprintf("served/%s/%s", cc.label, sc.name), float64(r.served))
			fig.Metric(fmt.Sprintf("lost/%s/%s", cc.label, sc.name), float64(r.lost))
			fig.Metric(fmt.Sprintf("iops/%s/%s", cc.label, sc.name), r.iops)
		}
		fig.Series = append(fig.Series, lat, lost)
	}
	return fig, nil
}

// degradedRes is one health-scenario measurement.
type degradedRes struct {
	mean   des.Time
	served int
	lost   int
	// iops is the warmup-trimmed completion rate.
	iops float64
}

// degradedWarmup excludes the loop's cold start (empty queues, idle arms)
// from the reported rate.
const degradedWarmup = 50 * des.Millisecond

// degradedVolume keeps the rebuild short enough for the registry smoke
// test while leaving hundreds of chunks per drive to reconstruct.
const degradedVolume = int64(1 << 18) // 128 MB

// degradedRebuildMBps throttles the background reconstruction so the
// measurement genuinely overlaps it.
const degradedRebuildMBps = 20

// runDegraded builds the array, optionally fail-stops drive 0 (with or
// without a hot spare), and measures a closed loop of uniform random reads.
// Failed reads (chunks with no surviving copy) are counted as lost and
// excluded from the latency mean. The drain at the end lets any rebuild
// finish so the simulation retires cleanly.
func runDegraded(cfg layout.Config, fail, spare bool, ios int, seed int64) (degradedRes, error) {
	sim, a, err := buildArray(cfg, policyFor(cfg), degradedVolume, seed, func(o *coreOptions) {
		o.ObsLabel = fmt.Sprintf("degraded-rebuild/%s/fail=%t/spare=%t", cfg, fail, spare)
		if spare {
			o.Spares = 1
			o.RebuildMBps = degradedRebuildMBps
		}
	})
	if err != nil {
		return degradedRes{}, err
	}
	if fail {
		if err := a.FailDrive(0); err != nil {
			return degradedRes{}, err
		}
	}

	const sectors = 8
	const outstanding = 4
	rng := rand.New(rand.NewSource(seed + 101))
	var res degradedRes
	var total des.Time
	start := sim.Now()
	measureFrom := start + degradedWarmup
	finished := 0
	measured := 0
	var issue func()
	issued := 0
	issue = func() {
		if issued >= ios {
			return
		}
		issued++
		off := rng.Int63n(a.DataSectors() - sectors)
		if err := a.Submit(core.Read, off, sectors, false, func(r coreResult) {
			finished++
			if r.Done >= measureFrom {
				measured++
			}
			if r.Failed {
				res.lost++
			} else {
				res.served++
				total += r.Latency()
			}
			issue()
		}); err != nil {
			panic(err)
		}
	}
	for i := 0; i < outstanding && i < ios; i++ {
		issue()
	}
	for finished < ios {
		if !sim.Step() {
			return degradedRes{}, fmt.Errorf("experiments: degraded run stalled at %d/%d", finished, ios)
		}
	}
	if res.served > 0 {
		res.mean = total / des.Time(res.served)
	}
	res.iops = measuredRate(measured, start, sim.Now(), degradedWarmup)
	if !a.Drain(des.Hour) {
		return degradedRes{}, fmt.Errorf("experiments: degraded run failed to drain")
	}
	return res, nil
}
