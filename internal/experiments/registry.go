package experiments

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Runner executes one named experiment and returns its rendered text.
type Runner func(Config) (string, error)

// Format selects the rendering used by figRunner: "table", "csv", or
// "json" (the machine-readable `{figure, series, points, metrics}` form).
var Format = "table"

// Registry maps experiment names (as used by `mimdraid -exp`) to runners.
var Registry = map[string]Runner{
	"table1": textRunner("table1", func(Config) (string, error) { return Table1().String(), nil }),
	"table2": textRunner("table2", func(c Config) (string, error) {
		r, err := Table2(c)
		if err != nil {
			return "", err
		}
		return r.String(), nil
	}),
	"table3": textRunner("table3", func(c Config) (string, error) { return Table3(c).String(), nil }),
	"summary": textRunner("summary", func(c Config) (string, error) {
		r, err := Summary(c)
		if err != nil {
			return "", err
		}
		return r.String(), nil
	}),
	"fig5":             figRunner(func(c Config) (*Figure, error) { return Figure5(c) }),
	"fig6-cello-base":  figRunner(func(c Config) (*Figure, error) { return Figure6(c, "cello-base") }),
	"fig6-cello-disk6": figRunner(func(c Config) (*Figure, error) { return Figure6(c, "cello-disk6") }),
	"fig7-cello-base":  figRunner(func(c Config) (*Figure, error) { return Figure7(c, "cello-base") }),
	"fig7-cello-disk6": figRunner(func(c Config) (*Figure, error) { return Figure7(c, "cello-disk6") }),
	"fig8":             figRunner(Figure8),
	"fig9-cello-base":  figRunner(func(c Config) (*Figure, error) { return Figure9(c, "cello-base") }),
	"fig9-tpcc":        figRunner(func(c Config) (*Figure, error) { return Figure9(c, "tpcc") }),
	"fig10-cello-base": figRunner(func(c Config) (*Figure, error) { return Figure10(c, "cello-base") }),
	"fig10-tpcc":       figRunner(func(c Config) (*Figure, error) { return Figure10(c, "tpcc") }),
	"fig11-cello-base": figRunner(func(c Config) (*Figure, error) { return Figure11(c, "cello-base") }),
	"fig11-tpcc":       figRunner(func(c Config) (*Figure, error) { return Figure11(c, "tpcc") }),
	"fig12":            figRunner(Figure12),
	"fig13":            figRunner(Figure13),
	"ablation-placement": figRunner(func(c Config) (*Figure, error) {
		return AblationReplicaPlacement(c), nil
	}),
	"ablation-slack":         figRunner(AblationSlack),
	"ablation-intratrack":    figRunner(AblationIntraTrack),
	"section2.5":             figRunner(Section25),
	"advisor":                figRunner(AdvisorDemo),
	"sensitivity":            figRunner(Sensitivity),
	"breakdown":              figRunner(Breakdown),
	"tcq":                    figRunner(TCQ),
	"ablation-aging":         figRunner(AblationAging),
	"ablation-coalesce":      figRunner(AblationCoalesce),
	"ablation-mirror":        figRunner(AblationMirrorSched),
	"ablation-opportunistic": figRunner(AblationOpportunistic),
	"bigarray":               figRunner(BigArray),
	"chaos":                  figRunner(Chaos),
	"degraded-rebuild":       figRunner(DegradedRebuild),
	"fail-slow":              figRunner(FailSlow),
	"scrub":                  figRunner(Scrub),
	"service":                figRunner(Service),
	"slo-chaos":              figRunner(SLOChaos),
	"brick-loss":             figRunner(BrickLoss),
}

func figRunner(f func(Config) (*Figure, error)) Runner {
	return func(c Config) (string, error) {
		fig, err := f(c)
		if err != nil {
			return "", err
		}
		switch Format {
		case "csv":
			return fig.CSV(), nil
		case "json":
			return fig.JSON()
		default:
			return fig.Render(), nil
		}
	}
}

// textRunner adapts a table-shaped experiment (no Figure) to the json
// format: the rendered text rides in a `{figure, text}` document so a
// machine consumer still gets one JSON value per experiment.
func textRunner(name string, f Runner) Runner {
	return func(c Config) (string, error) {
		out, err := f(c)
		if err != nil || Format != "json" {
			return out, err
		}
		b, err := json.MarshalIndent(struct {
			Figure string `json:"figure"`
			Text   string `json:"text"`
		}{name, out}, "", "  ")
		if err != nil {
			return "", err
		}
		return string(b) + "\n", nil
	}
}

// Names returns the registered experiment names, sorted.
func Names() []string {
	var out []string
	for k := range Registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by name.
func Run(name string, c Config) (string, error) {
	r, ok := Registry[name]
	if !ok {
		return "", fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	return r(c)
}
