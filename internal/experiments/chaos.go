package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/disk"
	"repro/internal/layout"
	"repro/internal/runner"
)

// The chaos experiment measures the crash/power-fail tolerance stack two
// ways. A recovery micro-benchmark power-fails a single array mid-load
// once per NVRAM durability mode and reconciles the recovery counters:
// battery-backed NVRAM must adopt every queued delayed copy (no loss),
// volatile NVRAM must lose them all and have the recovery scan detect and
// repair every resulting divergence (no silent loss). A cluster run then
// arms a seeded chaos scenario — drive failure, fail-slow window, two
// brick power-fail/recover cycles, a scrub pass, a client load burst —
// over a multi-brick sharded simulation and reports the windowed p99
// response time and SLO compliance while the events land. The cluster run
// executes at epoch worker counts 1, 2, and 4 and its digest (which folds
// in the scenario timeline, every completion, and every brick's recovery
// counters) must be byte-identical across them.

// chaosRetry is the client's backoff before retrying a request a crashed
// brick rejected at submit.
const chaosRetry = 2 * des.Millisecond

// chaosSLO is the response-time bound the compliance metric counts
// against (generous: it should hold except during outage windows).
const chaosSLO = 50 * des.Millisecond

// chaosSpec sizes one cluster chaos run.
type chaosSpec struct {
	bricks      int
	cfg         layout.Config
	ios         int
	outstanding int
	sectors     int
	readFrac    float64
	seed        int64
	workers     int
	durability  core.NVRAMDurability
	sc          chaos.Scenario
	window      des.Time
}

// chaosCluster is the client plus bricks of one run. Client state lives on
// shard 0; each array and its skipped-event counter are touched only by
// that brick's shard — the isolation the epoch protocol requires.
type chaosCluster struct {
	spec chaosSpec
	sims []*des.Sim // sims[0] = client, sims[1+b] = brick b
	arr  []*core.Array
	send func(from, to int, at des.Time, fn func())

	rng      *rand.Rand
	vol      int64
	issued   int
	finished int
	ok       int
	failed   int
	rejected int
	shrink   int
	latNs    int64
	last     des.Time
	perBrick []int
	sloOK    int
	wins     [][]int64 // per-window successful-completion latencies (ns)
	// skipped[b] counts scenario events brick b ignored because its state
	// made them inapplicable (e.g. a drive event landing inside an
	// outage); written only by shard 1+b.
	skipped []int
}

func buildChaosCluster(spec chaosSpec, sims []*des.Sim, send func(int, int, des.Time, func())) (*chaosCluster, error) {
	c := &chaosCluster{
		spec: spec, sims: sims, send: send,
		rng:      rand.New(rand.NewSource(spec.seed)),
		arr:      make([]*core.Array, spec.bricks),
		perBrick: make([]int, spec.bricks),
		skipped:  make([]int, spec.bricks),
	}
	for b := range c.arr {
		a, err := core.New(sims[1+b], core.Options{
			Config: spec.cfg, Policy: policyFor(spec.cfg), Seed: spec.seed + int64(b),
			Crash: core.CrashModel{Enabled: true, Durability: spec.durability},
		})
		if err != nil {
			return nil, err
		}
		c.arr[b] = a
		b := b
		chaos.Arm(sims[1+b], spec.sc, b, func(e chaos.Event) { c.applyBrick(b, e) })
	}
	chaos.Arm(sims[0], spec.sc, chaos.ClientBrick, c.applyClient)
	c.vol = c.arr[0].DataSectors() - int64(spec.sectors)
	sims[0].At(0, c.prime)
	return c, nil
}

// applyBrick lands one scenario event on brick b, from that brick's shard.
// Drive and scrub events that the brick's current state rejects (an outage
// in progress, a drive already gone) are counted and dropped — the
// generator keeps the timeline legal in time, not in target. Crash and
// recover events must always apply; an error there is a scenario bug.
func (c *chaosCluster) applyBrick(b int, e chaos.Event) {
	a := c.arr[b]
	switch e.Kind {
	case chaos.DriveFail:
		if a.Crashed() || a.FailDrive(e.Drive) != nil {
			c.skipped[b]++
		}
	case chaos.SlowDrive:
		if a.SetDriveSlow(e.Drive, disk.SlowProfile{Factor: e.Factor}) != nil {
			c.skipped[b]++
		}
	case chaos.ScrubPass:
		if a.StartScrub(core.ScrubOptions{MBps: e.Factor, Passes: 1}) != nil {
			c.skipped[b]++
		}
	case chaos.BrickCrash:
		if err := a.Crash(); err != nil {
			panic(fmt.Sprintf("chaos: brick %d crash: %v", b, err))
		}
	case chaos.BrickRecover:
		if err := a.Recover(); err != nil {
			panic(fmt.Sprintf("chaos: brick %d recover: %v", b, err))
		}
	}
}

// applyClient widens the closed loop by Factor extra requests for the
// burst's duration, then absorbs that many completions to narrow back.
func (c *chaosCluster) applyClient(e chaos.Event) {
	if e.Kind != chaos.LoadBurst {
		return
	}
	extra := int(e.Factor)
	for i := 0; i < extra; i++ {
		c.issue()
	}
	c.sims[0].At(e.At+e.Duration, func() { c.shrink += extra })
}

func (c *chaosCluster) draw() (int, int64, core.Op) {
	b := c.rng.Intn(c.spec.bricks)
	off := c.rng.Int63n(c.vol)
	op := core.Read
	if c.rng.Float64() >= c.spec.readFrac {
		op = core.Write
	}
	return b, off, op
}

func (c *chaosCluster) prime() {
	window := c.spec.outstanding
	if window > c.spec.ios {
		window = c.spec.ios
	}
	for i := 0; i < window; i++ {
		c.issue()
	}
}

// issue claims the next logical request and sends its first attempt.
func (c *chaosCluster) issue() {
	if c.issued >= c.spec.ios {
		return
	}
	c.issued++
	c.attempt(c.sims[0].Now())
}

// attempt draws a fresh (brick, offset, op) and sends it over the link;
// submitAt survives retries so measured latency includes outage stalls.
func (c *chaosCluster) attempt(submitAt des.Time) {
	b, off, op := c.draw()
	c.send(0, 1+b, c.sims[0].Now()+bigLinkLat, func() { c.submit(b, off, op, submitAt) })
}

func (c *chaosCluster) submit(b int, off int64, op core.Op, submitAt des.Time) {
	a := c.arr[b]
	sim := c.sims[1+b]
	err := a.Submit(op, off, c.spec.sectors, false, func(r coreResult) {
		failed := r.Failed
		c.send(1+b, 0, sim.Now()+bigLinkLat, func() { c.complete(b, submitAt, failed) })
	})
	if err != nil {
		// The brick is powered off: bounce the attempt back and let the
		// client retry after a backoff (with a fresh draw, so a long
		// outage does not pin the slot to the dark brick).
		c.send(1+b, 0, sim.Now()+bigLinkLat, func() {
			c.rejected++
			c.sims[0].After(chaosRetry, func() { c.attempt(submitAt) })
		})
	}
}

// complete retires one logical request. Failures (in-flight at a crash)
// consume the slot too: the workload observes the failure, it does not
// paper over it.
func (c *chaosCluster) complete(b int, submitAt des.Time, failed bool) {
	now := c.sims[0].Now()
	if now > c.last {
		c.last = now
	}
	c.finished++
	c.perBrick[b]++
	if failed {
		c.failed++
	} else {
		c.ok++
		lat := now - submitAt
		ns := int64(math.Round(float64(lat) * 1000))
		c.latNs += ns
		if lat <= chaosSLO {
			c.sloOK++
		}
		w := int(now / c.spec.window)
		for len(c.wins) <= w {
			c.wins = append(c.wins, nil)
		}
		c.wins[w] = append(c.wins[w], ns)
	}
	if c.shrink > 0 {
		c.shrink--
		return
	}
	c.issue()
}

// p99 of one window's latencies in integer nanoseconds (0 for an empty
// window).
func p99ns(lat []int64) int64 {
	if len(lat) == 0 {
		return 0
	}
	s := append([]int64(nil), lat...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := (99*len(s) + 99) / 100
	if idx > len(s) {
		idx = len(s)
	}
	return s[idx-1]
}

// chaosRunRes summarizes one cluster run; digest equality across worker
// counts is the determinism bar.
type chaosRunRes struct {
	digest         string
	p99            []int64 // per window, ns
	window         des.Time
	ok, failed     int
	rejected       int
	sloOK          int
	crashes        int64
	recoveries     int64
	adopted        int64
	lostDelayed    int64
	divergentFound int64
	repaired       int64
	unrepairable   int64
	divergentAfter int
	events         uint64
}

func (c *chaosCluster) result(events uint64) *chaosRunRes {
	r := &chaosRunRes{
		window: c.spec.window, ok: c.ok, failed: c.failed, rejected: c.rejected,
		sloOK: c.sloOK, events: events,
	}
	r.p99 = make([]int64, len(c.wins))
	for i, w := range c.wins {
		r.p99[i] = p99ns(w)
	}
	rec := ""
	for b, a := range c.arr {
		rc := a.Recovery()
		r.crashes += rc.Crashes
		r.recoveries += rc.Recoveries
		r.adopted += rc.Adopted
		r.lostDelayed += rc.LostDelayed
		r.divergentFound += rc.DivergentFound
		r.repaired += rc.Repaired
		r.unrepairable += rc.Unrepairable
		r.divergentAfter += a.DivergentCopies()
		rec += fmt.Sprintf(" b%d[cr=%d rec=%d ad=%d lost=%d scan=%d div=%d rep=%d unrep=%d drop=%d left=%d skip=%d]",
			b, rc.Crashes, rc.Recoveries, rc.Adopted, rc.LostDelayed, rc.Scanned,
			rc.DivergentFound, rc.Repaired, rc.Unrepairable, rc.RepairsDropped,
			a.DivergentCopies(), c.skipped[b])
	}
	r.digest = fmt.Sprintf("%sissued=%d ok=%d failed=%d rejected=%d latNs=%d last=%.6f perBrick=%v sloOK=%d p99=%v events=%d%s",
		c.spec.sc.Timeline(), c.issued, c.ok, c.failed, c.rejected, c.latNs,
		float64(c.last), c.perBrick, c.sloOK, r.p99, events, rec)
	return r
}

// runChaosCluster executes one cluster run on the sharded epoch engine.
func runChaosCluster(spec chaosSpec) (*chaosRunRes, error) {
	sh := des.NewSharded(spec.bricks+1, bigLinkLat)
	if spec.workers > 0 {
		if err := sh.SetWorkers(spec.workers); err != nil {
			return nil, err
		}
	}
	sims := make([]*des.Sim, spec.bricks+1)
	for i := range sims {
		sims[i] = sh.Shard(i)
	}
	c, err := buildChaosCluster(spec, sims, sh.Send)
	if err != nil {
		return nil, err
	}
	sh.Run()
	if c.finished != c.spec.ios {
		return nil, fmt.Errorf("experiments: chaos cluster drained at %d/%d completions", c.finished, c.spec.ios)
	}
	return c.result(sh.Processed()), nil
}

// defaultChaosSpec sizes the cluster run: four 8-drive bricks under a
// volatile-NVRAM crash model (the mode that exercises the recovery scan),
// with the scenario horizon scaled to the workload length so the events
// land while the loop is hot.
func defaultChaosSpec(c Config) (chaosSpec, error) {
	bricks := 4
	cfg := layout.Config{Ds: 2, Dr: 2, Dm: 2}
	horizon := des.Time(c.IometerIOs) * 150 * des.Microsecond
	sc, err := chaos.Generate(c.Seed, chaos.Options{
		Bricks: bricks, DrivesPerBrick: cfg.Disks(),
		Start: 5 * des.Millisecond, Horizon: horizon,
		DriveFails: 1, SlowDrives: 1, BrickCrashes: 2, ScrubPasses: 1, LoadBursts: 1,
	})
	if err != nil {
		return chaosSpec{}, err
	}
	if err := sc.Validate(bricks, cfg.Disks()); err != nil {
		return chaosSpec{}, err
	}
	return chaosSpec{
		bricks: bricks, cfg: cfg,
		ios: c.IometerIOs * 2, outstanding: 32, sectors: 8, readFrac: 0.5,
		seed: c.Seed, durability: core.Volatile, sc: sc,
		window: horizon / 16,
	}, nil
}

// recoveryRes is one durability mode's crash/recovery micro measurement.
type recoveryRes struct {
	rec            core.RecoveryCounters
	divergentAfter int
	nvramAfter     int
	okOps          int
	failedOps      int
	rejected       int
}

// runRecovery power-fails one array 40 ms into a half-write closed loop,
// recovers it 30 ms later, runs the workload to completion, and drains
// everything — recovery scan and queued repairs included — before reading
// the counters.
func runRecovery(durability core.NVRAMDurability, ios int, seed int64) (recoveryRes, error) {
	sim, a, err := buildArray(layout.RAID10(4), "rsatf", int64(1<<17), seed, func(o *coreOptions) {
		o.ObsLabel = "chaos/recovery/" + durability.String()
		o.Crash = core.CrashModel{
			Enabled: true,
			At:      40 * des.Millisecond, RecoverAfter: 30 * des.Millisecond,
			Durability: durability,
		}
	})
	if err != nil {
		return recoveryRes{}, err
	}
	var res recoveryRes
	const sectors = 8
	const outstanding = 8
	rng := rand.New(rand.NewSource(seed + 101))
	finished, issued := 0, 0
	var issue func()
	issue = func() {
		if issued >= ios {
			return
		}
		off := rng.Int63n(a.DataSectors() - sectors)
		op := core.Read
		if rng.Float64() >= 0.5 {
			op = core.Write
		}
		err := a.Submit(op, off, sectors, false, func(r coreResult) {
			finished++
			if r.Failed {
				res.failedOps++
			} else {
				res.okOps++
			}
			issue()
		})
		if err != nil {
			// Powered off: hold the slot and retry shortly.
			res.rejected++
			sim.After(chaosRetry, issue)
			return
		}
		issued++
	}
	for i := 0; i < outstanding && i < ios; i++ {
		issue()
	}
	for finished < ios {
		if !sim.Step() {
			return recoveryRes{}, fmt.Errorf("experiments: recovery run stalled at %d/%d", finished, ios)
		}
	}
	if !a.Drain(des.Hour) {
		return recoveryRes{}, fmt.Errorf("experiments: recovery run failed to drain")
	}
	sim.Run() // flush the recovery scan and any queued repairs
	res.rec = a.Recovery()
	res.divergentAfter = a.DivergentCopies()
	res.nvramAfter = a.NVRAMUsed()
	return res, nil
}

// Chaos is the registry experiment.
func Chaos(c Config) (*Figure, error) {
	durs := []core.NVRAMDurability{core.Volatile, core.BatteryBacked}
	micro, err := runner.Map(len(durs), func(i int) (recoveryRes, error) {
		return runRecovery(durs[i], c.IometerIOs, c.Seed)
	})
	if err != nil {
		return nil, err
	}

	spec, err := defaultChaosSpec(c)
	if err != nil {
		return nil, err
	}
	var first *chaosRunRes
	for _, w := range []int{1, 2, 4} {
		s := spec
		s.workers = w
		r, err := runChaosCluster(s)
		if err != nil {
			return nil, err
		}
		if first == nil {
			first = r
		} else if r.digest != first.digest {
			return nil, fmt.Errorf("experiments: worker count changed the chaos run:\n%q\nvs\n%q", r.digest, first.digest)
		}
	}

	fig := &Figure{
		Name: "chaos", Title: "Chaos scenario on a 32-drive cluster (crashes, fail-slow, scrub, burst)",
		XLabel: "window end (ms of simulated time)", YLabel: "p99 response time (ms)",
	}
	var p99 Series
	p99.Label = "p99/chaos-cluster"
	for i, ns := range first.p99 {
		p99.Add(float64(first.window)*float64(i+1)/1000, float64(ns)/1e6)
	}
	fig.Series = append(fig.Series, p99)

	fig.Metric("cluster/ok", float64(first.ok))
	fig.Metric("cluster/failed", float64(first.failed))
	fig.Metric("cluster/rejected", float64(first.rejected))
	fig.Metric("cluster/slo_ok", float64(first.sloOK))
	if first.ok > 0 {
		fig.Metric("cluster/slo_pct", 100*float64(first.sloOK)/float64(first.ok))
	}
	fig.Metric("cluster/crashes", float64(first.crashes))
	fig.Metric("cluster/recoveries", float64(first.recoveries))
	fig.Metric("cluster/adopted", float64(first.adopted))
	fig.Metric("cluster/lost_delayed", float64(first.lostDelayed))
	fig.Metric("cluster/divergent_found", float64(first.divergentFound))
	fig.Metric("cluster/repaired", float64(first.repaired))
	fig.Metric("cluster/unrepairable", float64(first.unrepairable))
	fig.Metric("cluster/divergent_after", float64(first.divergentAfter))
	fig.Metric("cluster/events", float64(first.events))
	for i, d := range durs {
		name := d.String()
		r := micro[i]
		fig.Metric("recovery/"+name+"/crashes", float64(r.rec.Crashes))
		fig.Metric("recovery/"+name+"/recoveries", float64(r.rec.Recoveries))
		fig.Metric("recovery/"+name+"/adopted", float64(r.rec.Adopted))
		fig.Metric("recovery/"+name+"/lost_delayed", float64(r.rec.LostDelayed))
		fig.Metric("recovery/"+name+"/scanned", float64(r.rec.Scanned))
		fig.Metric("recovery/"+name+"/divergent_found", float64(r.rec.DivergentFound))
		fig.Metric("recovery/"+name+"/repaired", float64(r.rec.Repaired))
		fig.Metric("recovery/"+name+"/unrepairable", float64(r.rec.Unrepairable))
		fig.Metric("recovery/"+name+"/divergent_after", float64(r.divergentAfter))
		fig.Metric("recovery/"+name+"/failed_ops", float64(r.failedOps))
		fig.Metric("recovery/"+name+"/rejected", float64(r.rejected))
		fig.Metric("recovery/"+name+"/recovery_time_ms", float64(r.rec.RecoveryTime)/1000)
	}
	return fig, nil
}
