package experiments

import (
	"fmt"
	"strings"

	"repro/internal/des"
	"repro/internal/disk"
	"repro/internal/layout"
	"repro/internal/runner"
	"repro/internal/trace"
	"repro/internal/tracegen"
	"repro/internal/workload"
)

// Table1 reports the simulated platform characteristics (paper Table 1).
type Table1Result struct {
	Spec disk.Spec
	Dsk  *disk.Disk
}

// Table1 builds the reference drive and reports its parameters.
func Table1() *Table1Result {
	sp := disk.ST39133LWV()
	return &Table1Result{Spec: sp, Dsk: sp.MustNew()}
}

func (t *Table1Result) String() string {
	var b strings.Builder
	g := t.Dsk.Geom
	fmt.Fprintf(&b, "Table 1: platform characteristics (simulated)\n")
	fmt.Fprintf(&b, "  Disk model     %s\n", t.Spec.Name)
	fmt.Fprintf(&b, "  Capacity       %.1f GB (%d sectors)\n", float64(g.Capacity())/1e9, g.TotalSectors())
	fmt.Fprintf(&b, "  RPM            %.0f (rotation %v)\n", t.Spec.RPM, t.Dsk.NominalR)
	fmt.Fprintf(&b, "  Geometry       %d cylinders x %d heads, %d zones (%d..%d SPT)\n",
		g.Cylinders, g.Heads, len(g.Zones), g.Zones[0].SPT, g.Zones[len(g.Zones)-1].SPT)
	fmt.Fprintf(&b, "  Average seek   %v read, %v write\n", t.Spec.AvgSeek, t.Spec.AvgSeek+t.Spec.WriteSettle)
	fmt.Fprintf(&b, "  Track switch   %v\n", t.Spec.HeadSwitch)
	fmt.Fprintf(&b, "  Interface      simulated bus at 160 MB/s\n")
	return b.String()
}

// Table2Result reproduces the head-prediction accuracy statistics of paper
// Table 2 (0.22%% misses, 3 us mean error, 31 us sigma, 2746 us access,
// demerit 1.9%% of access time) for the Cello base workload on a 2x3
// SR-Array under RSATF in prototype mode.
type Table2Result struct {
	Requests      int
	MissRate      float64
	MeanError     des.Time
	StdError      des.Time
	AvgAccess     des.Time
	Demerit       des.Time
	DemeritOverAT float64
}

// Table2 runs the experiment.
func Table2(c Config) (*Table2Result, error) {
	tr := genTrace(tracegen.CelloBase(c.Seed), c.TraceIOs)
	cfg := layout.SRArray(2, 3)
	sim, a, err := buildArray(cfg, "rsatf", tr.DataSectors, c.Seed, func(o *coreOptions) {
		o.Prototype = true
	})
	if err != nil {
		return nil, err
	}
	if _, err := workload.Replay(sim, a, tr); err != nil {
		return nil, err
	}
	acc := a.Accuracy()
	miss, mean, std, access, demerit := acc.Report(a.RotationPeriod())
	return &Table2Result{
		Requests:      acc.N(),
		MissRate:      miss,
		MeanError:     mean,
		StdError:      std,
		AvgAccess:     access,
		Demerit:       demerit,
		DemeritOverAT: float64(demerit) / float64(access),
	}, nil
}

func (t *Table2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: head-prediction accuracy, Cello base on 2x3 SR-Array (RSATF, prototype mode)\n")
	fmt.Fprintf(&b, "  %-28s %10s %14s\n", "", "measured", "paper")
	fmt.Fprintf(&b, "  %-28s %9.2f%% %14s\n", "Misses", t.MissRate*100, "0.22%")
	fmt.Fprintf(&b, "  %-28s %10v %14s\n", "Mean prediction error", t.MeanError, "3 us")
	fmt.Fprintf(&b, "  %-28s %10v %14s\n", "Std dev of error", t.StdError, "31 us")
	fmt.Fprintf(&b, "  %-28s %10v %14s\n", "Average access time", t.AvgAccess, "2746 us")
	fmt.Fprintf(&b, "  %-28s %10v %14s\n", "Demerit", t.Demerit, "52 us")
	fmt.Fprintf(&b, "  %-28s %9.1f%% %14s\n", "Demerit/access time", t.DemeritOverAT*100, "1.9%")
	fmt.Fprintf(&b, "  (%d physical requests)\n", t.Requests)
	return b.String()
}

// Table3Row pairs a synthetic trace's measured statistics with the
// paper's targets.
type Table3Row struct {
	Name     string
	Measured trace.Stats
	Target   tracegen.Params
}

// Table3Result reproduces paper Table 3 from the synthetic workloads.
type Table3Result struct {
	Rows []Table3Row
}

// Table3 generates each workload (shortened per Config) and measures it,
// one worker per workload.
func Table3(c Config) *Table3Result {
	params := []tracegen.Params{
		tracegen.CelloBase(c.Seed),
		tracegen.CelloDisk6(c.Seed + 1),
		tracegen.TPCC(c.Seed + 2),
	}
	rows := runner.MapNoErr(len(params), func(i int) Table3Row {
		p := params[i]
		// Statistics want more samples than replay.
		tr := genTrace(p, c.TraceIOs*3)
		return Table3Row{Name: p.Name, Measured: tr.ComputeStats(), Target: p}
	})
	return &Table3Result{Rows: rows}
}

func (t *Table3Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: trace characteristics (synthetic, measured vs paper target)\n")
	fmt.Fprintf(&b, "  %-14s %12s %12s %12s %12s %12s\n", "", "I/O rate", "reads", "async wr", "locality L", "RAW(1h)")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "  %-14s %7.2f/s %11.1f%% %11.1f%% %12.2f %11.2f%%\n",
			r.Name, r.Measured.AvgIOPS, r.Measured.ReadFrac*100, r.Measured.AsyncFrac*100,
			r.Measured.SeekLocality, r.Measured.RAWFrac*100)
		fmt.Fprintf(&b, "  %-14s %7.2f/s %11.1f%% %11.1f%% %12.2f %11.2f%%\n",
			"  (target)", r.Target.MeanIOPS, r.Target.ReadFrac*100, r.Target.AsyncFrac*100,
			r.Target.Locality, r.Target.RAWFrac*100)
	}
	return b.String()
}
