package experiments

import (
	"fmt"
	"testing"
)

// TestScrubTolerance is the tentpole acceptance check for the
// silent-corruption stack: with no verification the pre-poisoned latent
// errors must reach callers silently; with verify-on-read plus a scrub
// pass no corrupt data may be returned undetected and at least 95% of the
// injected poison must be repaired by the end of the run.
func TestScrubTolerance(t *testing.T) {
	fig, err := Scrub(Default())
	if err != nil {
		t.Fatal(err)
	}
	labels := []string{"SR-Array 2x3x1", "RAID-10 3x1x2"}
	rates := []float64{0, 2, 8, 32}
	for _, lb := range labels {
		if got := fig.At("silent/"+lb, 0); !(got > 0) {
			t.Errorf("%s: unprotected baseline returned no corrupt data silently (silent=%v); injection did not bite", lb, got)
		}
		if got := fig.At("repaired%/"+lb, 0); got != 0 {
			t.Errorf("%s: baseline repaired %v%% with no repair machinery on", lb, got)
		}
		for _, r := range rates[1:] {
			if got := fig.At("silent/"+lb, r); got != 0 {
				t.Errorf("%s rate=%g: %v reads returned corrupt data despite verification", lb, r, got)
			}
			key := fmt.Sprintf("scrub_passes/%s/rate=%g", lb, r)
			if fig.Metrics[key] != 1 {
				t.Errorf("%s rate=%g: scrub passes = %v, want 1", lb, r, fig.Metrics[key])
			}
			if fig.Metrics[fmt.Sprintf("scrub_verified/%s/rate=%g", lb, r)] == 0 {
				t.Errorf("%s rate=%g: scrubber verified nothing", lb, r)
			}
		}
		// The highest-rate pass must have cleaned at least 95% of the
		// injected population (verify-on-read repairs what the workload
		// touches; the scrubber covers the cold rest).
		if got := fig.At("repaired%/"+lb, 32); got < 95 {
			t.Errorf("%s: repaired %.1f%% of injected poison, want >= 95%%", lb, got)
		}
	}
	// The poison population must be the same across scenarios of one
	// configuration (same injection seed), and detection must engage.
	for _, lb := range labels {
		base := fig.Metrics[fmt.Sprintf("injected/%s/rate=0", lb)]
		if base == 0 {
			t.Fatalf("%s: nothing injected", lb)
		}
		for _, r := range rates[1:] {
			if got := fig.Metrics[fmt.Sprintf("injected/%s/rate=%g", lb, r)]; got != base {
				t.Errorf("%s rate=%g: injected %v, want %v", lb, r, got, base)
			}
			det := fig.Metrics[fmt.Sprintf("verify_detected/%s/rate=%g", lb, r)] +
				fig.Metrics[fmt.Sprintf("scrub_corrupt/%s/rate=%g", lb, r)]
			if det == 0 {
				t.Errorf("%s rate=%g: neither verify-on-read nor the scrubber detected anything", lb, r)
			}
		}
	}
}
