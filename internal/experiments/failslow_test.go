package experiments

import (
	"math"
	"testing"

	"repro/internal/core"
)

// TestFailSlowRecovery is the tentpole acceptance check: one fail-slow
// drive must visibly degrade the p99 read tail, and hedging + eviction
// must recover at least half of the gap back toward the all-healthy tail.
func TestFailSlowRecovery(t *testing.T) {
	fig, err := FailSlow(Default())
	if err != nil {
		t.Fatal(err)
	}
	healthy := fig.At("p99", 0)
	slow := fig.At("p99", 1)
	hedged := fig.At("p99", 2)
	mitigated := fig.At("p99", 3)
	for _, v := range []float64{healthy, slow, hedged, mitigated} {
		if math.IsNaN(v) || v <= 0 {
			t.Fatalf("p99 series incomplete: healthy=%v slow=%v hedged=%v mitigated=%v",
				healthy, slow, hedged, mitigated)
		}
	}
	gap := slow - healthy
	if gap <= 0 {
		t.Fatalf("fail-slow drive did not degrade the tail: healthy p99 %.2fms, slow p99 %.2fms", healthy, slow)
	}
	if recovered := slow - mitigated; recovered < 0.5*gap {
		t.Errorf("hedging+eviction recovered %.2f of a %.2fms p99 gap (%.0f%%), want >= 50%%",
			recovered, gap, 100*recovered/gap)
	}
	// Hedging alone must already improve the tail (the eviction scenario
	// builds on it).
	if hedged >= slow {
		t.Errorf("hedging did not improve p99: slow %.2fms, hedged %.2fms", slow, hedged)
	}
	if mitigated > hedged {
		t.Errorf("eviction made the tail worse than hedging alone: %.2fms > %.2fms", mitigated, hedged)
	}

	// Counter side-channels: hedges fired in the hedge scenarios, exactly
	// one eviction in the eviction scenario, and the slow drive's commands
	// were attributed.
	if fig.Metrics["hedges_issued/slow+hedge"] == 0 {
		t.Error("no hedges issued in the hedging scenario")
	}
	if got := fig.Metrics["evictions/slow+hedge+evict"]; got != 1 {
		t.Errorf("evictions = %v, want 1", got)
	}
	if fig.Metrics["slow_commands/slow"] == 0 {
		t.Error("no slow commands attributed in the unmitigated scenario")
	}
	if fig.Metrics["slow_commands/healthy"] != 0 {
		t.Error("slow commands attributed in the healthy scenario")
	}
}

// TestFailSlowZeroModelMatchesHealthy: scenario 0 runs with no fault model
// and no mitigation options — it must behave exactly like the plain
// closed loop (sanity: enabling the new subsystems only when asked).
func TestFailSlowZeroModelMatchesHealthy(t *testing.T) {
	c := Config{IometerIOs: 400, Seed: 1}
	a, err := runFailSlow(false, false, false, c.IometerIOs, c.Seed)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runFailSlow(false, false, false, c.IometerIOs, c.Seed)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("healthy scenario not reproducible:\n%+v\n%+v", a, b)
	}
	if a.hedges != (core.HedgeCounters{}) || a.evictions != 0 || a.slowCommands != 0 {
		t.Fatalf("healthy scenario engaged mitigation machinery: %+v", a)
	}
}
