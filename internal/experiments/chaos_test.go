package experiments

import (
	"testing"
)

// The chaos figure's acceptance bars: battery-backed NVRAM adopts every
// queued delayed copy across a power failure (nothing lost, nothing
// divergent afterwards); volatile NVRAM loses them all, and the recovery
// scan detects and repairs every resulting divergence — loss is visible
// in the counters, never silent. The cluster run must reconcile too:
// every remaining divergent copy is one the scan explicitly declared
// unrepairable (a composed failure took its last fresh source), and the
// run itself already verified digest equality at 1, 2, and 4 epoch
// workers before returning.
func TestChaosExperiment(t *testing.T) {
	fig, err := Chaos(Config{TraceIOs: 600, IometerIOs: 300, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	m := fig.Metrics
	get := func(k string) float64 {
		v, ok := m[k]
		if !ok {
			t.Fatalf("metric %q missing", k)
		}
		return v
	}

	// Battery-backed: the snapshot survives, everything queued is adopted.
	if v := get("recovery/battery-backed/lost_delayed"); v != 0 {
		t.Errorf("battery-backed lost %v delayed copies, want 0", v)
	}
	if v := get("recovery/battery-backed/adopted"); v == 0 {
		t.Error("battery-backed crash adopted nothing; the micro never populated NVRAM")
	}
	if v := get("recovery/battery-backed/divergent_after"); v != 0 {
		t.Errorf("battery-backed recovery left %v divergent copies", v)
	}

	// Volatile: the table vanishes, the scan finds and repairs the damage.
	if v := get("recovery/volatile/adopted"); v != 0 {
		t.Errorf("volatile crash adopted %v copies, want 0", v)
	}
	if v := get("recovery/volatile/lost_delayed"); v == 0 {
		t.Error("volatile crash lost nothing; the micro never populated NVRAM")
	}
	if v := get("recovery/volatile/divergent_found"); v == 0 {
		t.Error("volatile recovery scan found no divergence")
	}
	if v := get("recovery/volatile/divergent_after"); v != 0 {
		t.Errorf("volatile recovery left %v divergent copies", v)
	}
	for _, mode := range []string{"volatile", "battery-backed"} {
		found := get("recovery/" + mode + "/divergent_found")
		rep := get("recovery/" + mode + "/repaired")
		unrep := get("recovery/" + mode + "/unrepairable")
		if found != rep+unrep {
			t.Errorf("%s: divergent_found %v != repaired %v + unrepairable %v", mode, found, rep, unrep)
		}
		if v := get("recovery/" + mode + "/crashes"); v != 1 {
			t.Errorf("%s: %v crashes, want 1", mode, v)
		}
		if v := get("recovery/" + mode + "/recoveries"); v != 1 {
			t.Errorf("%s: %v recoveries, want 1", mode, v)
		}
	}

	// Cluster: both scripted outages happened and recovered, and no
	// divergence survived beyond what was declared unrepairable.
	if v := get("cluster/crashes"); v != 2 {
		t.Errorf("cluster saw %v crashes, want 2", v)
	}
	if v := get("cluster/recoveries"); v != 2 {
		t.Errorf("cluster saw %v recoveries, want 2", v)
	}
	if after, unrep := get("cluster/divergent_after"), get("cluster/unrepairable"); after > unrep {
		t.Errorf("cluster left %v divergent copies with only %v unrepairable", after, unrep)
	}
	if get("cluster/ok") == 0 {
		t.Error("cluster completed no requests")
	}
	if get("cluster/slo_ok") > get("cluster/ok") {
		t.Error("SLO accounting exceeds completions")
	}
	if len(fig.Series) == 0 || len(fig.Series[0].Points) == 0 {
		t.Fatal("p99 series is empty")
	}
}
