package experiments

import (
	"fmt"
	"math"

	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/layout"
)

// The brick-loss experiment is the headline robustness demonstration: the
// same seeded workload and the same chaos scenario (one whole-brick power
// failure plus a client load burst) run against a three-brick cluster
// volume twice — once unreplicated (R=1) and once with two-way extent
// replication (R=2). With R=1 the outage is client-visible: every request
// touching the dark brick's extents is rejected or fails until power
// returns. With R=2 the cluster absorbs it — reads fail over to the
// surviving replica, writes take a quorum and log divergence, and the
// paced backfill re-replicates once the brick returns, with the
// divergence counters reconciling exactly (Diverged == Backfilled +
// Abandoned). Both legs run on the sharded epoch engine at worker counts
// 1, 2, and 4, and each leg's digest — scenario timeline, every
// completion, router counters, per-brick recovery counters — must be
// byte-identical across them.

// brickLossSLO is the response-time bound the compliance metric counts
// against.
const brickLossSLO = 50 * des.Millisecond

// brickLossSpec sizes one brick-loss leg.
type brickLossSpec struct {
	bricks      int
	cfg         layout.Config
	sectorsPer  int64 // per-brick DataSectors
	replicas    int
	ios         int
	outstanding int
	sectors     int
	readFrac    float64
	seed        int64
	workers     int
	sc          chaos.Scenario
	window      des.Time
}

// brickLossRun is one leg's client state (shard 0) plus bricks (shards
// 1+b). The cluster router also lives on shard 0, so every breaker and
// divergence-log transition is an ordinary shard-0 event — exactly the
// isolation the epoch protocol needs for worker-count invariance.
type brickLossRun struct {
	spec brickLossSpec
	sims []*des.Sim
	arr  []*core.Array
	cl   *cluster.Cluster

	rng        *splitRng
	vol        int64
	issued     int
	finished   int
	ok         int
	failed     int
	rejected   int
	readErrs   int // failed or rejected reads: the client-visible outage
	writeErrs  int
	shrink     int
	latNs      int64
	last       des.Time
	sloOK      int
	wins       [][]int64
	outageFrom des.Time
	outageTo   des.Time
	outageErrs int // client-visible errors inside the outage window
}

// splitRng is a tiny deterministic draw stream (splitmix64) — the client
// needs (op, offset) pairs whose sequence is identical across legs that
// have different volume sizes, so offsets are drawn as fractions.
type splitRng struct{ s uint64 }

func (r *splitRng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	x := r.s
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (r *splitRng) float() float64 { return float64(r.next()>>11) / (1 << 53) }

func buildBrickLoss(spec brickLossSpec, sims []*des.Sim, send func(int, int, des.Time, func())) (*brickLossRun, error) {
	c := &brickLossRun{
		spec: spec, sims: sims,
		rng: &splitRng{s: uint64(spec.seed)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d},
		arr: make([]*core.Array, spec.bricks),
	}
	vols := make([]core.Volume, spec.bricks)
	for b := range c.arr {
		a, err := core.New(sims[1+b], core.Options{
			Config: spec.cfg, Policy: policyFor(spec.cfg), Seed: spec.seed + int64(b),
			DataSectors: spec.sectorsPer,
			Crash:       core.CrashModel{Enabled: true, Durability: core.BatteryBacked},
		})
		if err != nil {
			return nil, err
		}
		c.arr[b] = a
		vols[b] = a
		b := b
		chaos.Arm(sims[1+b], spec.sc, b, func(e chaos.Event) { c.applyBrick(b, e) })
	}
	cl, err := cluster.NewSharded(sims, send, bigLinkLat, vols, cluster.Options{
		Replicas: spec.replicas, ExtentSectors: 1024, Seed: spec.seed,
		BackfillMBps: 256,
	})
	if err != nil {
		return nil, err
	}
	c.cl = cl
	c.vol = cl.DataSectors() - int64(spec.sectors)
	for _, e := range spec.sc.Events {
		if e.Kind == chaos.BrickCrash {
			c.outageFrom, c.outageTo = e.At, e.At+e.Duration
		}
	}
	chaos.Arm(sims[0], spec.sc, chaos.ClientBrick, c.applyClient)
	sims[0].At(0, c.prime)
	return c, nil
}

// applyBrick lands one scenario event on brick b's shard. The router is
// never told: its breaker discovers the outage from failing traffic and
// its probes rediscover the recovery — the whole point of the experiment.
func (c *brickLossRun) applyBrick(b int, e chaos.Event) {
	a := c.arr[b]
	switch e.Kind {
	case chaos.BrickCrash:
		if err := a.Crash(); err != nil {
			panic(fmt.Sprintf("brick-loss: brick %d crash: %v", b, err))
		}
	case chaos.BrickRecover:
		if err := a.Recover(); err != nil {
			panic(fmt.Sprintf("brick-loss: brick %d recover: %v", b, err))
		}
	}
}

// applyClient widens the closed loop for the burst, then narrows back.
func (c *brickLossRun) applyClient(e chaos.Event) {
	if e.Kind != chaos.LoadBurst {
		return
	}
	extra := int(e.Factor)
	for i := 0; i < extra; i++ {
		c.issue()
	}
	c.sims[0].At(e.At+e.Duration, func() { c.shrink += extra })
}

func (c *brickLossRun) prime() {
	window := c.spec.outstanding
	if window > c.spec.ios {
		window = c.spec.ios
	}
	for i := 0; i < window; i++ {
		c.issue()
	}
}

func (c *brickLossRun) issue() {
	if c.issued >= c.spec.ios {
		return
	}
	c.issued++
	c.attempt(c.sims[0].Now())
}

// attempt draws (op, offset) and submits through the cluster router on
// this shard. A synchronous rejection means the router knows every
// replica of the range is down (the R=1 outage signature): count it as a
// client-visible error and retry the slot after a backoff with a fresh
// draw.
func (c *brickLossRun) attempt(submitAt des.Time) {
	off := int64(c.rng.float() * float64(c.vol))
	op := core.Read
	if c.rng.float() >= c.spec.readFrac {
		op = core.Write
	}
	err := c.cl.Submit(op, off, c.spec.sectors, false, func(r coreResult) {
		c.complete(submitAt, r.Failed, op)
	})
	if err != nil {
		c.rejected++
		c.noteError(op)
		c.sims[0].After(chaosRetry, func() { c.attempt(submitAt) })
	}
}

func (c *brickLossRun) noteError(op core.Op) {
	if op == core.Read {
		c.readErrs++
	} else {
		c.writeErrs++
	}
	now := c.sims[0].Now()
	if now >= c.outageFrom && now <= c.outageTo+chaosRetry {
		c.outageErrs++
	}
}

func (c *brickLossRun) complete(submitAt des.Time, failed bool, op core.Op) {
	now := c.sims[0].Now()
	if now > c.last {
		c.last = now
	}
	c.finished++
	if failed {
		c.failed++
		c.noteError(op)
	} else {
		c.ok++
		lat := now - submitAt
		ns := int64(math.Round(float64(lat) * 1000))
		c.latNs += ns
		if lat <= brickLossSLO {
			c.sloOK++
		}
		w := int(now / c.spec.window)
		for len(c.wins) <= w {
			c.wins = append(c.wins, nil)
		}
		c.wins[w] = append(c.wins[w], ns)
	}
	if c.shrink > 0 {
		c.shrink--
		return
	}
	c.issue()
}

// brickLossRes is one leg's summary.
type brickLossRes struct {
	digest     string
	p99        []int64
	window     des.Time
	ok, failed int
	rejected   int
	readErrs   int
	writeErrs  int
	outageErrs int
	sloOK      int
	ctr        cluster.Counters
	pending    int
	events     uint64
}

func (c *brickLossRun) result(events uint64) *brickLossRes {
	r := &brickLossRes{
		window: c.spec.window, ok: c.ok, failed: c.failed, rejected: c.rejected,
		readErrs: c.readErrs, writeErrs: c.writeErrs, outageErrs: c.outageErrs,
		sloOK: c.sloOK, ctr: c.cl.Counters(), pending: c.cl.DivergencePending(),
		events: events,
	}
	r.p99 = make([]int64, len(c.wins))
	for i, w := range c.wins {
		r.p99[i] = p99ns(w)
	}
	rec := ""
	for b, a := range c.arr {
		rc := a.Recovery()
		rec += fmt.Sprintf(" b%d[cr=%d rec=%d ad=%d lost=%d div=%d rep=%d state=%s]",
			b, rc.Crashes, rc.Recoveries, rc.Adopted, rc.LostDelayed,
			rc.DivergentFound, rc.Repaired, c.cl.State(b))
	}
	r.digest = fmt.Sprintf("%sr=%d issued=%d ok=%d failed=%d rejected=%d rdErr=%d wrErr=%d outErr=%d latNs=%d last=%.6f sloOK=%d p99=%v ctr=%+v pending=%d events=%d%s",
		c.spec.sc.Timeline(), c.spec.replicas, c.issued, c.ok, c.failed, c.rejected,
		c.readErrs, c.writeErrs, c.outageErrs, c.latNs, float64(c.last), c.sloOK,
		r.p99, r.ctr, r.pending, events, rec)
	return r
}

// runBrickLoss executes one leg on the sharded epoch engine.
func runBrickLoss(spec brickLossSpec) (*brickLossRes, error) {
	sh := des.NewSharded(spec.bricks+1, bigLinkLat)
	if spec.workers > 0 {
		if err := sh.SetWorkers(spec.workers); err != nil {
			return nil, err
		}
	}
	sims := make([]*des.Sim, spec.bricks+1)
	for i := range sims {
		sims[i] = sh.Shard(i)
	}
	c, err := buildBrickLoss(spec, sims, sh.Send)
	if err != nil {
		return nil, err
	}
	sh.Run()
	if c.finished+c.rejected == 0 || c.issued != c.spec.ios {
		return nil, fmt.Errorf("experiments: brick-loss leg stalled at %d/%d issued", c.issued, c.spec.ios)
	}
	if c.finished != c.spec.ios {
		return nil, fmt.Errorf("experiments: brick-loss leg drained at %d/%d completions", c.finished, c.spec.ios)
	}
	res := c.result(sh.Processed())
	// The divergence log must have settled: every entry ever created was
	// either backfilled or written off, nothing lingers.
	if res.pending != 0 {
		return nil, fmt.Errorf("experiments: %d divergence entries pending after the run", res.pending)
	}
	if res.ctr.Diverged != res.ctr.Backfilled+res.ctr.Abandoned {
		return nil, fmt.Errorf("experiments: divergence counters do not reconcile: %+v", res.ctr)
	}
	return res, nil
}

// defaultBrickLossSpec sizes a leg: three 8-drive bricks, one brick-crash
// cycle and one load burst inside a horizon scaled to the workload.
func defaultBrickLossSpec(c Config, replicas int) (brickLossSpec, error) {
	bricks := 3
	cfg := layout.Config{Ds: 2, Dr: 2, Dm: 2}
	horizon := des.Time(c.IometerIOs) * 150 * des.Microsecond
	sc, err := chaos.Generate(c.Seed, chaos.Options{
		Bricks: bricks, DrivesPerBrick: cfg.Disks(),
		Start: 5 * des.Millisecond, Horizon: horizon,
		BrickCrashes: 1, LoadBursts: 1,
	})
	if err != nil {
		return brickLossSpec{}, err
	}
	if err := sc.Validate(bricks, cfg.Disks()); err != nil {
		return brickLossSpec{}, err
	}
	return brickLossSpec{
		bricks: bricks, cfg: cfg, sectorsPer: 1 << 17, replicas: replicas,
		ios: c.IometerIOs * 2, outstanding: 24, sectors: 8, readFrac: 0.7,
		seed: c.Seed, sc: sc, window: horizon / 16,
	}, nil
}

// BrickLoss is the registry experiment.
func BrickLoss(c Config) (*Figure, error) {
	legs := []int{1, 2}
	results := make([]*brickLossRes, len(legs))
	for i, r := range legs {
		spec, err := defaultBrickLossSpec(c, r)
		if err != nil {
			return nil, err
		}
		var first *brickLossRes
		for _, w := range []int{1, 2, 4} {
			s := spec
			s.workers = w
			res, err := runBrickLoss(s)
			if err != nil {
				return nil, fmt.Errorf("R=%d workers=%d: %w", r, w, err)
			}
			if first == nil {
				first = res
			} else if res.digest != first.digest {
				return nil, fmt.Errorf("experiments: worker count changed the R=%d brick-loss run:\n%q\nvs\n%q", r, res.digest, first.digest)
			}
		}
		results[i] = first
	}
	r1, r2 := results[0], results[1]

	// The headline claims, enforced: unreplicated, the outage is client
	// visible; replicated, reads never fail — there is always a live
	// replica when at most one brick is dark.
	if r1.readErrs+r1.writeErrs == 0 {
		return nil, fmt.Errorf("experiments: R=1 leg saw no client-visible errors; the outage missed the workload")
	}
	if r2.readErrs != 0 {
		return nil, fmt.Errorf("experiments: R=2 leg surfaced %d read errors to the client", r2.readErrs)
	}

	fig := &Figure{
		Name: "brick-loss", Title: "Whole-brick outage: unreplicated vs 2-way replicated cluster volume",
		XLabel: "window end (ms of simulated time)", YLabel: "p99 response time (ms)",
	}
	for i, res := range results {
		var s Series
		s.Label = fmt.Sprintf("p99/R=%d", legs[i])
		for w, ns := range res.p99 {
			s.Add(float64(res.window)*float64(w+1)/1000, float64(ns)/1e6)
		}
		fig.Series = append(fig.Series, s)
	}
	for i, res := range results {
		p := fmt.Sprintf("r%d/", legs[i])
		fig.Metric(p+"ok", float64(res.ok))
		fig.Metric(p+"failed", float64(res.failed))
		fig.Metric(p+"rejected", float64(res.rejected))
		fig.Metric(p+"read_errors", float64(res.readErrs))
		fig.Metric(p+"write_errors", float64(res.writeErrs))
		fig.Metric(p+"outage_errors", float64(res.outageErrs))
		fig.Metric(p+"slo_ok", float64(res.sloOK))
		if res.ok > 0 {
			fig.Metric(p+"slo_pct", 100*float64(res.sloOK)/float64(res.ok))
		}
		fig.Metric(p+"failovers", float64(res.ctr.ReadFailovers))
		fig.Metric(p+"trips", float64(res.ctr.Trips))
		fig.Metric(p+"probes", float64(res.ctr.Probes))
		fig.Metric(p+"diverged", float64(res.ctr.Diverged))
		fig.Metric(p+"backfilled", float64(res.ctr.Backfilled))
		fig.Metric(p+"abandoned", float64(res.ctr.Abandoned))
		fig.Metric(p+"recopies", float64(res.ctr.Recopies))
		fig.Metric(p+"events", float64(res.events))
	}
	return fig, nil
}
