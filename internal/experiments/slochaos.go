package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/disk"
	"repro/internal/layout"
	"repro/internal/service"
	"repro/internal/slo"
)

// The slo-chaos experiment is the control plane's proving ground: the
// same seeded chaos scenario (a drive failure and rebuild, a fail-slow
// window, a power-fail/recover cycle, a heavy scrub pass) lands under a
// bursty multi-tenant load, once with the SLO controller detached and
// once with it closing the loop. Two stages:
//
//   - A gateway run pushes tiered tenants through the full HTTP
//     front-end in deterministic mode while the scenario plays on the
//     array underneath, and compares per-tier SLO compliance off vs on.
//     The controller must buy premium compliance back by shedding in
//     strict priority order — best-effort first, premium never.
//   - A cluster run replays a multi-brick scenario on the sharded epoch
//     engine with one controller per brick, fed and stepped entirely on
//     that brick's shard. Each variant executes at epoch worker counts
//     1, 2, and 4 and its digest (scenario timeline, every per-tier
//     tally, every controller's state) must be byte-identical across
//     them — the determinism bar the rest of the repo holds.

// sloTierOf assigns load-generator tenant i its tier: one in five
// premium, two standard, two best-effort.
func sloTierOf(i int) slo.Tier {
	switch i % 5 {
	case 0:
		return slo.Premium
	case 1, 2:
		return slo.Standard
	default:
		return slo.BestEffort
	}
}

// sloClassifyTenant recovers the tier from a load-generator tenant name
// ("t%05d"); anything else is standard.
func sloClassifyTenant(name string) slo.Tier {
	i, err := strconv.Atoi(strings.TrimPrefix(name, "t"))
	if err != nil || i < 0 {
		return slo.Standard
	}
	return sloTierOf(i)
}

// sloGatewaySpec sizes one gateway run of the experiment.
type sloGatewaySpec struct {
	cfg         layout.Config
	spares      int
	depth       int
	tenants     int
	total       int
	seed        int64
	think       des.Time
	rate, burst float64
	retries     int
	window      des.Time // load-report window
	burstPeriod des.Time
	burstFactor float64
	sc          chaos.Scenario
	ctl         slo.Options
	// met is the per-tier latency bound the compliance metric counts
	// against (independent of the controller's own judging targets).
	met [slo.NumTiers]des.Time
}

// sloTierTotals aggregates one tier's outcomes across its tenants.
// quota is the tier's share of logical operations; compliance is
// met/quota, so shed and failed requests count against the tier.
type sloTierTotals struct {
	quota, issued, ok, limited, overloaded, failed, met int64
}

// sloGatewayRes is one gateway run's outcome.
type sloGatewayRes struct {
	rep     *service.LoadReport
	stats   service.Stats
	state   slo.State
	tuning  core.Tuning
	tiers   [slo.NumTiers]sloTierTotals
	skipped int
	digest  string
}

// runSLOGateway drives the tiered load through the HTTP front-end while
// the chaos scenario plays on the array. on attaches the controller;
// off leaves the gateway's SLO hooks nil (the byte-identical default).
func runSLOGateway(spec sloGatewaySpec, on bool) (*sloGatewayRes, error) {
	sim := des.New()
	o := core.Options{
		Config: spec.cfg, Policy: policyFor(spec.cfg), Seed: spec.seed,
		MaxQueueDepth: spec.depth,
		Spares:        spec.spares,
		Hedge:         true,
		Crash:         core.CrashModel{Enabled: true, Durability: core.Volatile},
	}
	if Observe != nil {
		o.Obs = Observe
	}
	a, err := core.New(sim, o)
	if err != nil {
		return nil, err
	}
	res := &sloGatewayRes{}
	chaos.Arm(sim, spec.sc, 0, func(e chaos.Event) {
		switch e.Kind {
		case chaos.DriveFail:
			if a.Crashed() || a.FailDrive(e.Drive) != nil {
				res.skipped++
			}
		case chaos.SlowDrive:
			if a.SetDriveSlow(e.Drive, disk.SlowProfile{Factor: e.Factor}) != nil {
				res.skipped++
			}
		case chaos.ScrubPass:
			if a.Crashed() || a.StartScrub(core.ScrubOptions{MBps: e.Factor, Passes: 1}) != nil {
				res.skipped++
			}
		case chaos.BrickCrash:
			if err := a.Crash(); err != nil {
				panic(fmt.Sprintf("slo-chaos: crash: %v", err))
			}
		case chaos.BrickRecover:
			if err := a.Recover(); err != nil {
				panic(fmt.Sprintf("slo-chaos: recover: %v", err))
			}
		}
	})
	var ctl *slo.Controller
	if on {
		ctl, err = slo.New(a, spec.ctl)
		if err != nil {
			return nil, err
		}
	}
	h := service.NewHarness(a, service.Config{
		Deterministic: true,
		Limits:        service.Limits{Default: service.TenantLimit{Rate: spec.rate, Burst: spec.burst}},
		SLO:           ctl,
	})
	rep, err := h.RunLoad(service.LoadConfig{
		Tenants:     spec.tenants,
		Requests:    spec.total,
		Sectors:     a.DataSectors(),
		Seed:        spec.seed,
		ThinkMean:   spec.think,
		MaxRetries:  spec.retries,
		Window:      spec.window,
		SLOTarget:   func(i int) des.Time { return spec.met[sloTierOf(i)] },
		BurstPeriod: spec.burstPeriod,
		BurstFactor: spec.burstFactor,
	})
	if err != nil {
		_ = h.Close()
		return nil, err
	}
	res.rep = rep
	res.stats = h.GW.Stats()
	if err := h.Close(); err != nil {
		return nil, fmt.Errorf("experiments: slo-chaos harness close: %w", err)
	}
	if rep.Aborted != 0 {
		return nil, fmt.Errorf("experiments: %d tenants aborted on transport errors", rep.Aborted)
	}
	res.state = ctl.State()
	res.tuning = a.Tuning()
	for i, t := range rep.PerTenant {
		tt := &res.tiers[sloTierOf(i)]
		tt.issued += t.Issued
		tt.ok += t.OK
		tt.limited += t.Limited
		tt.overloaded += t.Overloaded
		tt.failed += t.Failed
		tt.met += t.Met
	}
	for i := 0; i < spec.tenants; i++ {
		q := spec.total / spec.tenants
		if i < spec.total%spec.tenants {
			q++
		}
		res.tiers[sloTierOf(i)].quota += int64(q)
	}
	res.digest = spec.sc.Timeline() + rep.Digest() +
		"slo " + res.state.String() + fmt.Sprintf(" skipped=%d\n", res.skipped)
	return res, nil
}

// compliance is the tier's met fraction of its logical quota, percent.
func (t sloTierTotals) compliance() float64 {
	if t.quota == 0 {
		return 0
	}
	return 100 * float64(t.met) / float64(t.quota)
}

// defaultSLOGatewaySpec sizes the gateway run from the config. The
// scenario horizon sits inside the expected load span so every event
// lands while the loop is hot.
func defaultSLOGatewaySpec(c Config) (sloGatewaySpec, error) {
	cfg := layout.Config{Ds: 2, Dr: 2, Dm: 2}
	tenants := 24
	total := c.IometerIOs * 8
	perTenant := total / tenants
	span := des.Time(perTenant) * 12 * des.Millisecond
	sc, err := chaos.Generate(c.Seed, chaos.Options{
		Bricks: 1, DrivesPerBrick: cfg.Disks(),
		Start: span / 12, Horizon: span / 2,
		DriveFails: 1, SlowDrives: 1, BrickCrashes: 1, ScrubPasses: 1,
		SlowFactor: 8, OutageFrac: 1.0 / 20, ScrubMBps: 128,
	})
	if err != nil {
		return sloGatewaySpec{}, err
	}
	if err := sc.Validate(1, cfg.Disks()); err != nil {
		return sloGatewaySpec{}, err
	}
	var targets, met [slo.NumTiers]des.Time
	targets[slo.Premium] = 15 * des.Millisecond
	targets[slo.Standard] = 40 * des.Millisecond
	met[slo.Premium] = 15 * des.Millisecond
	met[slo.Standard] = 40 * des.Millisecond
	met[slo.BestEffort] = 100 * des.Millisecond
	return sloGatewaySpec{
		cfg: cfg, spares: 1, depth: 24,
		tenants: tenants, total: total, seed: c.Seed,
		think: 4 * des.Millisecond,
		rate:  400, burst: 8, retries: 2,
		window:      span / 24,
		burstPeriod: span / 5, burstFactor: 2.5,
		sc: sc,
		ctl: slo.Options{
			Window:         span / 32,
			Targets:        targets,
			ViolateWindows: 2, RecoverWindows: 3, MinSamples: 4,
			Classify: sloClassifyTenant,
			Actuators: slo.Actuators{
				BackgroundMBps: 1,
				HedgeAfter:     3 * des.Millisecond,
				ThrottleScale:  0.4,
				DepthFactor:    0.5,
			},
		},
		met: met,
	}, nil
}

// sloClusterSpec sizes one cluster run.
type sloClusterSpec struct {
	bricks      int
	cfg         layout.Config
	ios         int
	outstanding int
	sectors     int
	readFrac    float64
	seed        int64
	workers     int
	on          bool
	sc          chaos.Scenario
	window      des.Time // compliance/p99 window
	ctl         slo.Options
	tierSLO     [slo.NumTiers]des.Time
}

// sloClusterTier is one tier's client-side tallies.
type sloClusterTier struct {
	issued, ok, failed, sloOK, shed, rejected int64
}

// sloCluster is the client plus bricks of one run. Client state lives on
// shard 0; each brick's array AND its controller are touched only by
// that brick's shard — Admit runs in the submit event, Observe in the
// completion callback, so the control loop rides the epoch protocol's
// isolation for free.
type sloCluster struct {
	spec sloClusterSpec
	sims []*des.Sim // sims[0] = client, sims[1+b] = brick b
	arr  []*core.Array
	ctl  []*slo.Controller // nil entries when the controller is off
	send func(from, to int, at des.Time, fn func())

	rng      *rand.Rand
	vol      int64
	issued   int
	finished int
	shrink   int
	latNs    int64
	last     des.Time
	perBrick []int
	tiers    [slo.NumTiers]sloClusterTier
	wins     [][]int64
	skipped  []int
}

func buildSLOCluster(spec sloClusterSpec, sims []*des.Sim, send func(int, int, des.Time, func())) (*sloCluster, error) {
	c := &sloCluster{
		spec: spec, sims: sims, send: send,
		rng:      rand.New(rand.NewSource(spec.seed)),
		arr:      make([]*core.Array, spec.bricks),
		ctl:      make([]*slo.Controller, spec.bricks),
		perBrick: make([]int, spec.bricks),
		skipped:  make([]int, spec.bricks),
	}
	for b := range c.arr {
		a, err := core.New(sims[1+b], core.Options{
			Config: spec.cfg, Policy: policyFor(spec.cfg), Seed: spec.seed + int64(b),
			MaxQueueDepth: 16,
			Crash:         core.CrashModel{Enabled: true, Durability: core.Volatile},
		})
		if err != nil {
			return nil, err
		}
		c.arr[b] = a
		if spec.on {
			ctl, err := slo.New(a, spec.ctl)
			if err != nil {
				return nil, err
			}
			c.ctl[b] = ctl
		}
		b := b
		chaos.Arm(sims[1+b], spec.sc, b, func(e chaos.Event) { c.applyBrick(b, e) })
	}
	chaos.Arm(sims[0], spec.sc, chaos.ClientBrick, c.applyClient)
	c.vol = c.arr[0].DataSectors() - int64(spec.sectors)
	sims[0].At(0, c.prime)
	return c, nil
}

// applyBrick lands one scenario event on brick b (same tolerance rules
// as the chaos experiment: state-rejected drive/scrub events are counted
// and dropped, crash/recover must apply).
func (c *sloCluster) applyBrick(b int, e chaos.Event) {
	a := c.arr[b]
	switch e.Kind {
	case chaos.DriveFail:
		if a.Crashed() || a.FailDrive(e.Drive) != nil {
			c.skipped[b]++
		}
	case chaos.SlowDrive:
		if a.SetDriveSlow(e.Drive, disk.SlowProfile{Factor: e.Factor}) != nil {
			c.skipped[b]++
		}
	case chaos.ScrubPass:
		if a.Crashed() || a.StartScrub(core.ScrubOptions{MBps: e.Factor, Passes: 1}) != nil {
			c.skipped[b]++
		}
	case chaos.BrickCrash:
		if err := a.Crash(); err != nil {
			panic(fmt.Sprintf("slo-chaos: brick %d crash: %v", b, err))
		}
	case chaos.BrickRecover:
		if err := a.Recover(); err != nil {
			panic(fmt.Sprintf("slo-chaos: brick %d recover: %v", b, err))
		}
	}
}

func (c *sloCluster) applyClient(e chaos.Event) {
	if e.Kind != chaos.LoadBurst {
		return
	}
	extra := int(e.Factor)
	for i := 0; i < extra; i++ {
		c.issue()
	}
	c.sims[0].At(e.At+e.Duration, func() { c.shrink += extra })
}

func (c *sloCluster) prime() {
	window := c.spec.outstanding
	if window > c.spec.ios {
		window = c.spec.ios
	}
	for i := 0; i < window; i++ {
		c.issue()
	}
}

// issue claims the next logical request; its tier is a pure function of
// the issue order, so the tier mix is identical on and off.
func (c *sloCluster) issue() {
	if c.issued >= c.spec.ios {
		return
	}
	tier := sloTierOf(c.issued)
	c.issued++
	c.tiers[tier].issued++
	c.attempt(tier, c.sims[0].Now())
}

// attempt draws a fresh (brick, offset, op) and sends it over the link;
// submitAt survives retries and shed bounces so measured latency
// includes every stall the request actually suffered.
func (c *sloCluster) attempt(tier slo.Tier, submitAt des.Time) {
	b := c.rng.Intn(c.spec.bricks)
	off := c.rng.Int63n(c.vol)
	op := core.Read
	if c.rng.Float64() >= c.spec.readFrac {
		op = core.Write
	}
	c.send(0, 1+b, c.sims[0].Now()+bigLinkLat, func() { c.submit(b, tier, off, op, submitAt) })
}

func (c *sloCluster) submit(b int, tier slo.Tier, off int64, op core.Op, submitAt des.Time) {
	a := c.arr[b]
	sim := c.sims[1+b]
	name := tier.String()
	// The brick's controller sheds before the array sees the request; a
	// shed bounces back to the client, which retries (fresh draw, maybe
	// another brick) after the quoted hint.
	if ra, ok := c.ctl[b].Admit(sim.Now(), name); !ok {
		c.send(1+b, 0, sim.Now()+bigLinkLat, func() {
			c.tiers[tier].shed++
			c.sims[0].After(ra, func() { c.attempt(tier, submitAt) })
		})
		return
	}
	err := a.Submit(op, off, c.spec.sectors, false, func(r coreResult) {
		c.ctl[b].Observe(sim.Now(), name, sim.Now()-submitAt, r.Failed)
		failed := r.Failed
		c.send(1+b, 0, sim.Now()+bigLinkLat, func() { c.complete(b, tier, submitAt, failed) })
	})
	if err != nil {
		// Powered off: a synchronous rejection is SLO evidence (the same
		// 5xx rule the gateway applies), then the client retries.
		c.ctl[b].Observe(sim.Now(), name, 0, true)
		c.send(1+b, 0, sim.Now()+bigLinkLat, func() {
			c.tiers[tier].rejected++
			c.sims[0].After(chaosRetry, func() { c.attempt(tier, submitAt) })
		})
	}
}

func (c *sloCluster) complete(b int, tier slo.Tier, submitAt des.Time, failed bool) {
	now := c.sims[0].Now()
	if now > c.last {
		c.last = now
	}
	c.finished++
	c.perBrick[b]++
	tt := &c.tiers[tier]
	if failed {
		tt.failed++
	} else {
		tt.ok++
		lat := now - submitAt
		ns := int64(math.Round(float64(lat) * 1000))
		c.latNs += ns
		if lat <= c.spec.tierSLO[tier] {
			tt.sloOK++
		}
		w := int(now / c.spec.window)
		for len(c.wins) <= w {
			c.wins = append(c.wins, nil)
		}
		c.wins[w] = append(c.wins[w], ns)
	}
	if c.shrink > 0 {
		c.shrink--
		return
	}
	c.issue()
}

// sloClusterRes summarizes one cluster run; digest equality across
// worker counts is the determinism bar.
type sloClusterRes struct {
	digest string
	p99    []int64
	window des.Time
	tiers  [slo.NumTiers]sloClusterTier
	states []slo.State
	events uint64
}

func (c *sloCluster) result(events uint64) *sloClusterRes {
	r := &sloClusterRes{window: c.spec.window, tiers: c.tiers, events: events}
	r.p99 = make([]int64, len(c.wins))
	for i, w := range c.wins {
		r.p99[i] = p99ns(w)
	}
	var b strings.Builder
	b.WriteString(c.spec.sc.Timeline())
	fmt.Fprintf(&b, "issued=%d finished=%d latNs=%d last=%.6f perBrick=%v p99=%v events=%d\n",
		c.issued, c.finished, c.latNs, float64(c.last), c.perBrick, r.p99, events)
	for t := slo.Premium; t < slo.NumTiers; t++ {
		tt := c.tiers[t]
		fmt.Fprintf(&b, "%s issued=%d ok=%d failed=%d sloOK=%d shed=%d rejected=%d\n",
			t, tt.issued, tt.ok, tt.failed, tt.sloOK, tt.shed, tt.rejected)
	}
	for i, a := range c.arr {
		rc := a.Recovery()
		fmt.Fprintf(&b, "b%d cr=%d rec=%d ad=%d lost=%d div=%d rep=%d skip=%d",
			i, rc.Crashes, rc.Recoveries, rc.Adopted, rc.LostDelayed,
			rc.DivergentFound, rc.Repaired, c.skipped[i])
		st := c.ctl[i].State()
		r.states = append(r.states, st)
		if c.spec.on {
			fmt.Fprintf(&b, " ctl[%s]", st)
		}
		b.WriteByte('\n')
	}
	r.digest = b.String()
	return r
}

// runSLOCluster executes one cluster run on the sharded epoch engine.
func runSLOCluster(spec sloClusterSpec) (*sloClusterRes, error) {
	sh := des.NewSharded(spec.bricks+1, bigLinkLat)
	if spec.workers > 0 {
		if err := sh.SetWorkers(spec.workers); err != nil {
			return nil, err
		}
	}
	sims := make([]*des.Sim, spec.bricks+1)
	for i := range sims {
		sims[i] = sh.Shard(i)
	}
	c, err := buildSLOCluster(spec, sims, sh.Send)
	if err != nil {
		return nil, err
	}
	sh.Run()
	if c.finished != c.spec.ios {
		return nil, fmt.Errorf("experiments: slo cluster drained at %d/%d completions", c.finished, c.spec.ios)
	}
	return c.result(sh.Processed()), nil
}

// defaultSLOClusterSpec sizes the cluster run: three 8-drive bricks, a
// controller per brick, and the scenario horizon scaled to the workload.
func defaultSLOClusterSpec(c Config, on bool) (sloClusterSpec, error) {
	bricks := 3
	cfg := layout.Config{Ds: 2, Dr: 2, Dm: 2}
	ios := c.IometerIOs * 2
	horizon := des.Time(ios) * 200 * des.Microsecond
	sc, err := chaos.Generate(c.Seed, chaos.Options{
		Bricks: bricks, DrivesPerBrick: cfg.Disks(),
		Start: 5 * des.Millisecond, Horizon: horizon,
		DriveFails: 1, SlowDrives: 2, BrickCrashes: 1, ScrubPasses: 2, LoadBursts: 1,
		SlowFactor: 8, ScrubMBps: 128,
	})
	if err != nil {
		return sloClusterSpec{}, err
	}
	if err := sc.Validate(bricks, cfg.Disks()); err != nil {
		return sloClusterSpec{}, err
	}
	var targets, tierSLO [slo.NumTiers]des.Time
	targets[slo.Premium] = 15 * des.Millisecond
	targets[slo.Standard] = 40 * des.Millisecond
	tierSLO[slo.Premium] = 15 * des.Millisecond
	tierSLO[slo.Standard] = 40 * des.Millisecond
	tierSLO[slo.BestEffort] = 80 * des.Millisecond
	classify := func(name string) slo.Tier {
		t, err := slo.ParseTier(name)
		if err != nil {
			return slo.Standard
		}
		return t
	}
	return sloClusterSpec{
		bricks: bricks, cfg: cfg,
		ios: ios, outstanding: 32, sectors: 8, readFrac: 0.7,
		seed: c.Seed, on: on, sc: sc,
		window: horizon / 16,
		ctl: slo.Options{
			Window:         horizon / 16,
			Targets:        targets,
			ViolateWindows: 1, RecoverWindows: 2, MinSamples: 3,
			ShedRetryAfter: 2 * des.Millisecond,
			Classify:       classify,
			Actuators: slo.Actuators{
				BackgroundMBps: 1,
				HedgeAfter:     3 * des.Millisecond,
				DepthFactor:    0.5,
			},
		},
		tierSLO: tierSLO,
	}, nil
}

// SLOChaos is the registry experiment.
func SLOChaos(c Config) (*Figure, error) {
	spec, err := defaultSLOGatewaySpec(c)
	if err != nil {
		return nil, err
	}
	gwOff, err := runSLOGateway(spec, false)
	if err != nil {
		return nil, err
	}
	gwOn, err := runSLOGateway(spec, true)
	if err != nil {
		return nil, err
	}

	// Determinism double-check at reduced scale, controller on — the new
	// code paths (shed completions, SLO state in the digest) must be
	// byte-identical across identical runs.
	dspec := spec
	dspec.total = spec.total / 4
	if dspec.total < 24*8 {
		dspec.total = 24 * 8
	}
	d1, err := runSLOGateway(dspec, true)
	if err != nil {
		return nil, err
	}
	d2, err := runSLOGateway(dspec, true)
	if err != nil {
		return nil, err
	}
	if d1.digest != d2.digest {
		return nil, fmt.Errorf("experiments: slo gateway run is nondeterministic: digests differ across identical runs")
	}

	// Cluster stage: off and on, each at worker counts 1, 2, 4 with
	// byte-identical digests required.
	var clOff, clOn *sloClusterRes
	for _, on := range []bool{false, true} {
		cspec, err := defaultSLOClusterSpec(c, on)
		if err != nil {
			return nil, err
		}
		var first *sloClusterRes
		for _, w := range []int{1, 2, 4} {
			s := cspec
			s.workers = w
			r, err := runSLOCluster(s)
			if err != nil {
				return nil, err
			}
			if first == nil {
				first = r
			} else if r.digest != first.digest {
				return nil, fmt.Errorf("experiments: worker count changed the slo cluster run (on=%v):\n%q\nvs\n%q",
					on, r.digest, first.digest)
			}
		}
		if on {
			clOn = first
		} else {
			clOff = first
		}
	}

	fig := &Figure{
		Name:   "slo-chaos",
		Title:  "Per-tenant SLO control plane under chaos (controller off vs on)",
		XLabel: "window end (ms of simulated time)",
		YLabel: "p99 response time (ms)",
	}
	var sOff, sOn Series
	sOff.Label = "p99/controller-off"
	sOn.Label = "p99/controller-on"
	for i, ns := range clOff.p99 {
		sOff.Add(float64(clOff.window)*float64(i+1)/1000, float64(ns)/1e6)
	}
	for i, ns := range clOn.p99 {
		sOn.Add(float64(clOn.window)*float64(i+1)/1000, float64(ns)/1e6)
	}
	fig.Series = append(fig.Series, sOff, sOn)

	for t := slo.Premium; t < slo.NumTiers; t++ {
		name := t.String()
		offT, onT := gwOff.tiers[t], gwOn.tiers[t]
		fig.Metric("gateway/"+name+"/compliance_off", offT.compliance())
		fig.Metric("gateway/"+name+"/compliance_on", onT.compliance())
		fig.Metric("gateway/"+name+"/met_off", float64(offT.met))
		fig.Metric("gateway/"+name+"/met_on", float64(onT.met))
		fig.Metric("gateway/"+name+"/failed_off", float64(offT.failed))
		fig.Metric("gateway/"+name+"/failed_on", float64(onT.failed))
		fig.Metric("gateway/"+name+"/sheds_on", float64(gwOn.state.Tiers[t].Sheds))
		co, cn := clOff.tiers[t], clOn.tiers[t]
		if co.ok > 0 {
			fig.Metric("cluster/"+name+"/slo_pct_off", 100*float64(co.sloOK)/float64(co.issued))
		}
		if cn.ok > 0 {
			fig.Metric("cluster/"+name+"/slo_pct_on", 100*float64(cn.sloOK)/float64(cn.issued))
		}
		fig.Metric("cluster/"+name+"/shed_on", float64(cn.shed))
		fig.Metric("cluster/"+name+"/shed_off", float64(co.shed))
	}
	fig.Metric("gateway/premium/compliance_gain",
		gwOn.tiers[slo.Premium].compliance()-gwOff.tiers[slo.Premium].compliance())
	fig.Metric("gateway/escalations_on", float64(gwOn.state.Escalations))
	fig.Metric("gateway/deescalations_on", float64(gwOn.state.Deescalations))
	fig.Metric("gateway/shed_429_on", float64(gwOn.stats.Shed))
	fig.Metric("gateway/shed_429_off", float64(gwOff.stats.Shed))
	fig.Metric("gateway/level_index_end_on", float64(gwOn.state.LevelIndex))
	fig.Metric("cluster/events_on", float64(clOn.events))
	var escal float64
	for _, st := range clOn.states {
		escal += float64(st.Escalations)
	}
	fig.Metric("cluster/escalations_on", escal)
	fig.Metric("determinism/gateway_requests", float64(d1.rep.Issued))
	fig.Metric("determinism/ok", 1)
	return fig, nil
}
