package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/layout"
	"repro/internal/runner"
)

// Scrub measures the silent-corruption tolerance stack on equal-size
// (six-drive) SR-Array and RAID-10 configurations. Each run pre-poisons a
// fixed population of latent errors, serves a closed loop of random reads,
// and sweeps the background scrubber's bandwidth cap: rate 0 is the
// unprotected baseline (no verification, no scrub — corrupt data flows to
// callers silently), and every positive rate turns on verify-on-read plus
// a single scrub pass at that cap. The figure reports how many reads
// returned garbage undetected and what fraction of the injected poison the
// repair machinery cleaned by the end of the run.
func Scrub(c Config) (*Figure, error) {
	rates := []float64{0, 2, 8, 32} // scrub MBps; 0 = unprotected baseline
	configs := []struct {
		label string
		cfg   layout.Config
	}{
		{"SR-Array 2x3x1", layout.SRArray(2, 3)},
		{"RAID-10 3x1x2", layout.RAID10(6)},
	}

	type job struct {
		cfg  layout.Config
		rate float64
	}
	var jobs []job
	for _, cc := range configs {
		for _, r := range rates {
			jobs = append(jobs, job{cc.cfg, r})
		}
	}
	res, err := runner.Map(len(jobs), func(i int) (scrubRes, error) {
		j := jobs[i]
		return runScrub(j.cfg, j.rate, c.IometerIOs, c.Seed)
	})
	if err != nil {
		return nil, err
	}

	fig := &Figure{
		Name:   "scrub",
		Title:  "Silent corruption vs scrub rate (six drives, pre-poisoned latent errors)",
		XLabel: "scrub bandwidth cap (MB/s; 0 = no verification, no scrub)",
		YLabel: "silent reads (count) / poison repaired (%)",
	}
	for ci, cc := range configs {
		silent := Series{Label: "silent/" + cc.label}
		repaired := Series{Label: "repaired%/" + cc.label}
		for ri, rate := range rates {
			r := res[ci*len(rates)+ri]
			silent.Add(rate, float64(r.silentReads))
			pct := 0.0
			if r.injected > 0 {
				pct = 100 * float64(r.injected-r.remaining) / float64(r.injected)
			}
			repaired.Add(rate, pct)
			name := fmt.Sprintf("%s/rate=%g", cc.label, rate)
			fig.Metric("injected/"+name, float64(r.injected))
			fig.Metric("remaining/"+name, float64(r.remaining))
			fig.Metric("silent_reads/"+name, float64(r.silentReads))
			fig.Metric("exposed/"+name, float64(r.exposed))
			fig.Metric("verify_detected/"+name, float64(r.verifyDetected))
			fig.Metric("read_repairs/"+name, float64(r.readRepairs))
			fig.Metric("scrub_verified/"+name, float64(r.scrub.Verified))
			fig.Metric("scrub_corrupt/"+name, float64(r.scrub.Corrupt))
			fig.Metric("scrub_repaired/"+name, float64(r.scrub.Repaired))
			fig.Metric("scrub_unrepairable/"+name, float64(r.scrub.Unrepairable))
			fig.Metric("scrub_passes/"+name, float64(r.scrub.Passes))
		}
		fig.Series = append(fig.Series, silent, repaired)
	}
	return fig, nil
}

// scrubRes is one configuration x rate measurement.
type scrubRes struct {
	injected       int
	remaining      int
	served         int
	silentReads    int64
	verifyDetected int64
	readRepairs    int64
	// exposed counts reads failed with every reachable copy condemned
	// (ErrCorruptData) — detected loss, as opposed to silent loss.
	exposed int
	scrub   core.ScrubCounters
}

// scrubVolume keeps a full scrub pass short at the lowest swept rate while
// leaving ~1024 chunks for the poison to spread over.
const scrubVolume = int64(1 << 17) // 64 MB

// scrubInject is the pre-poisoned latent-error population per run.
const scrubInject = 64

// runScrub builds the array, silently poisons scrubInject copies, and
// measures a closed loop of uniform random reads. rate 0 leaves the array
// unprotected; rate > 0 enables verify-on-read and one scrub pass capped
// at that bandwidth. The drain at the end lets the scrub pass and every
// queued repair finish.
func runScrub(cfg layout.Config, rate float64, ios int, seed int64) (scrubRes, error) {
	sim, a, err := buildArray(cfg, policyFor(cfg), scrubVolume, seed, func(o *coreOptions) {
		o.ObsLabel = fmt.Sprintf("scrub/%s/rate=%g", cfg, rate)
		o.VerifyReads = rate > 0
	})
	if err != nil {
		return scrubRes{}, err
	}
	var res scrubRes
	res.injected = a.InjectCorruption(scrubInject, seed+77)
	if rate > 0 {
		if err := a.StartScrub(core.ScrubOptions{MBps: rate, Passes: 1}); err != nil {
			return scrubRes{}, err
		}
	}

	const sectors = 8
	const outstanding = 4
	rng := rand.New(rand.NewSource(seed + 307))
	finished := 0
	var issue func()
	issued := 0
	issue = func() {
		if issued >= ios {
			return
		}
		issued++
		off := rng.Int63n(a.DataSectors() - sectors)
		if err := a.Submit(core.Read, off, sectors, false, func(r coreResult) {
			finished++
			if r.Failed {
				res.exposed++
			} else {
				res.served++
			}
			issue()
		}); err != nil {
			panic(err)
		}
	}
	for i := 0; i < outstanding && i < ios; i++ {
		issue()
	}
	for finished < ios {
		if !sim.Step() {
			return scrubRes{}, fmt.Errorf("experiments: scrub run stalled at %d/%d", finished, ios)
		}
	}
	if !a.Drain(des.Hour) {
		return scrubRes{}, fmt.Errorf("experiments: scrub run failed to drain")
	}

	fc := a.Faults()
	res.silentReads = fc.SilentReads
	res.verifyDetected = fc.VerifyDetected
	res.readRepairs = fc.RepairsDone
	res.scrub = a.ScrubCounters()
	res.remaining = a.CorruptCopies()
	return res, nil
}
