// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 4) against the simulated MimdRAID. Each experiment
// is a function from a Config (which mostly controls run length) to a
// renderable result; cmd/mimdraid and the repository benchmarks share
// them. EXPERIMENTS.md records paper-versus-measured for each.
package experiments

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/disk"
	"repro/internal/layout"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/tracegen"
	"repro/internal/workload"
)

// Observe, when non-nil, attaches every array any experiment builds to
// this observability registry (per-drive histograms, fault counters,
// optional request traces). cmd/mimdraid sets it for -metrics-out /
// -trace-out runs; tests set it to audit a run. Set it before running an
// experiment — the jobs read it from worker goroutines.
var Observe *obs.Registry

// Config scales the experiments. Defaults reproduce shapes in seconds of
// wall time; raise the knobs to approach the paper's full trace lengths.
type Config struct {
	// TraceIOs is the approximate number of I/Os per macro (trace-replay)
	// data point.
	TraceIOs int
	// IometerIOs is the number of I/Os per micro (closed-loop) data point.
	IometerIOs int
	Seed       int64
}

// Default returns the fast configuration used by tests and benches.
func Default() Config {
	return Config{TraceIOs: 3000, IometerIOs: 2500, Seed: 1}
}

// ReportPad is added to every reported macro response time. The paper
// reports a fixed 2.7 ms of "processing times, transfer costs, track
// switch time, and mechanical acceleration/deceleration"; the simulated
// device already charges about 0.25 ms of that per command, so the pad
// brings the reporting convention in line with the paper's.
const ReportPad = 2450 * des.Microsecond

// paperDisk are the model parameters of the simulated ST39133LWV in the
// form the Section 2 equations use: full-stroke seek time and rotation
// period.
func paperDisk() model.Disk {
	sp := disk.ST39133LWV()
	return model.Disk{S: sp.MaxSeek, R: des.Time(60e6 / sp.RPM)}
}

// Point is one sample of a series.
type Point struct {
	X, Y float64
}

// Series is one labeled curve.
type Series struct {
	Label  string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{x, y}) }

// Figure is a renderable experiment result.
type Figure struct {
	Name   string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// Metrics carries named scalar side-channels of the run (counter
	// totals, rates) that the text table does not show; they appear only
	// in the JSON rendering.
	Metrics map[string]float64
}

// Metric records a named scalar in the figure's metrics map.
func (f *Figure) Metric(name string, v float64) {
	if f.Metrics == nil {
		f.Metrics = map[string]float64{}
	}
	f.Metrics[name] = v
}

// At returns series label's Y at x (NaN if absent) — used by tests.
func (f *Figure) At(label string, x float64) float64 {
	for _, s := range f.Series {
		if s.Label != label {
			continue
		}
		for _, p := range s.Points {
			if p.X == x {
				return p.Y
			}
		}
	}
	return math.NaN()
}

// Render formats the figure as an aligned text table: one column per X,
// one row per series.
func (f *Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", f.Name, f.Title)
	fmt.Fprintf(&b, "  x = %s, y = %s\n", f.XLabel, f.YLabel)
	// Union of X values.
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range f.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	sort.Float64s(xs)
	w := 0
	for _, s := range f.Series {
		if len(s.Label) > w {
			w = len(s.Label)
		}
	}
	fmt.Fprintf(&b, "  %-*s", w, "")
	for _, x := range xs {
		fmt.Fprintf(&b, " %9s", trimFloat(x))
	}
	b.WriteByte('\n')
	for _, s := range f.Series {
		fmt.Fprintf(&b, "  %-*s", w, s.Label)
		for _, x := range xs {
			y := math.NaN()
			for _, p := range s.Points {
				if p.X == x {
					y = p.Y
					break
				}
			}
			if math.IsNaN(y) {
				fmt.Fprintf(&b, " %9s", "-")
			} else {
				fmt.Fprintf(&b, " %9s", trimFloat(y))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the figure as comma-separated series rows (label, then one
// x,y pair per column), for plotting outside the terminal.
func (f *Figure) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s: %s\n# x=%s y=%s\n", f.Name, f.Title, f.XLabel, f.YLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "%q", s.Label)
		for _, p := range s.Points {
			fmt.Fprintf(&b, ",%g,%g", p.X, p.Y)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// figureJSON is the machine-readable rendering of a Figure.
type figureJSON struct {
	Figure  string             `json:"figure"`
	Title   string             `json:"title,omitempty"`
	XLabel  string             `json:"x,omitempty"`
	YLabel  string             `json:"y,omitempty"`
	Series  []seriesJSON       `json:"series"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

type seriesJSON struct {
	Label  string       `json:"label"`
	Points [][2]float64 `json:"points"`
}

// JSON renders the figure as an indented `{figure, series, points,
// metrics}` document. Series keep their insertion order, points their
// sweep order, and map keys marshal sorted, so the bytes are a pure
// function of the figure's contents — appendable to BENCH_*.json and
// byte-stable across parallel runs.
func (f *Figure) JSON() (string, error) {
	out := figureJSON{
		Figure: f.Name, Title: f.Title, XLabel: f.XLabel, YLabel: f.YLabel,
		Series: make([]seriesJSON, 0, len(f.Series)), Metrics: f.Metrics,
	}
	for _, s := range f.Series {
		sj := seriesJSON{Label: s.Label, Points: make([][2]float64, 0, len(s.Points))}
		for _, p := range s.Points {
			sj.Points = append(sj.Points, [2]float64{p.X, p.Y})
		}
		out.Series = append(out.Series, sj)
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return "", err
	}
	return string(b) + "\n", nil
}

func trimFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e7 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.2f", v)
}

// coreOptions lets experiment files tweak array options without importing
// core everywhere.
type coreOptions = core.Options

// coreResult aliases core.Result for the same reason.
type coreResult = core.Result

// coreRead aliases the read opcode.
const coreRead = core.Read

// refHeads is the surface count of the reference drive; the layout
// requires Dr to divide it.
var refHeads = disk.ST39133LWV().Heads

// refDisk is a built reference drive used for capacity and for the
// curve-aware model variants.
var refDisk = disk.ST39133LWV().MustNew()

// refGeomSectors is the logical capacity of the reference drive — the
// "single disk's worth of data" the micro-benchmarks spread over the
// array.
var refGeomSectors = refDisk.Geom.TotalSectors()

// buildArray constructs an array on a fresh simulator, attached to the
// Observe registry when one is installed.
func buildArray(cfg layout.Config, policy string, dataSectors int64, seed int64, mod func(*core.Options)) (*des.Sim, *core.Array, error) {
	sim := des.New()
	o := core.Options{Config: cfg, Policy: policy, DataSectors: dataSectors, Seed: seed}
	if mod != nil {
		mod(&o)
	}
	if Observe != nil {
		o.Obs = Observe
	}
	a, err := core.New(sim, o)
	if err != nil {
		return nil, nil, err
	}
	return sim, a, nil
}

// measuredRate converts completions inside the warmup-trimmed window of
// [start, end] into I/Os per second. All experiment rate reporting goes
// through stats.TrimWarmup so a mis-built window cannot inflate a rate.
func measuredRate(completed int, start, end, warmup des.Time) float64 {
	ws, we := stats.TrimWarmup(start, end, warmup)
	return stats.Throughput(completed, we-ws)
}

// policyFor returns the paper's scheduler pairing: RSATF on replicated
// configurations, SATF elsewhere ("we use the RSATF scheduler for
// SR-Arrays and the SATF scheduler for other configurations").
func policyFor(cfg layout.Config) string {
	if cfg.Dr > 1 {
		return "rsatf"
	}
	return "satf"
}

// celloTrace generates a Cello-style trace sized to about ios I/Os.
func celloTrace(p tracegen.Params, ios int) *tracegen.Params {
	d := des.Time(float64(ios) / p.MeanIOPS * 1e6)
	p = p.WithDuration(d)
	return &p
}

// genTrace returns the synthetic trace for p at about ios I/Os, through the
// process-wide cache: figures that replay the same workload (Figure 6, 7,
// 9, 10, 11, Breakdown, the tables) share one synthesis instead of each
// re-running the generator's fixed-point retune.
func genTrace(p tracegen.Params, ios int) *trace.Trace {
	return tracegen.GenerateCached(*celloTrace(p, ios))
}

// replayJob is one trace-replay simulation in a figure's sweep. Each job
// builds its own simulator and array, so jobs are independent and the
// sweeps fan them out over the runner's worker pool.
type replayJob struct {
	cfg    layout.Config
	policy string // empty means policyFor(cfg)
	tr     *trace.Trace
	// cacheBytes > 0 replays through a block cache of that size
	// (Figure 11's memory series).
	cacheBytes int64
	mod        func(*coreOptions)
}

// replayRes is a replay job's outcome; ok is false when the configuration
// saturated.
type replayRes struct {
	mean des.Time
	ok   bool
}

// runReplayJobs executes the jobs on the worker pool and returns results in
// submission order, so assembling series from the result slice yields
// exactly the sequential path's output.
func runReplayJobs(seed int64, jobs []replayJob) ([]replayRes, error) {
	return runner.Map(len(jobs), func(i int) (replayRes, error) {
		j := jobs[i]
		if j.cacheBytes > 0 {
			m, ok, err := replayCached(j.cfg, j.tr, seed, j.cacheBytes)
			return replayRes{m, ok}, err
		}
		policy := j.policy
		if policy == "" {
			policy = policyFor(j.cfg)
		}
		m, ok, err := replayMean(j.cfg, policy, j.tr, seed, j.mod)
		return replayRes{m, ok}, err
	})
}

// iometerJob is one closed-loop simulation in a micro-benchmark's sweep.
type iometerJob struct {
	cfg    layout.Config
	policy string
	w      workload.Iometer
	total  int
	mod    func(*coreOptions)
}

// runIometerJobs executes the jobs on the worker pool, results in
// submission order.
func runIometerJobs(seed int64, jobs []iometerJob) ([]*workload.Result, error) {
	return runner.Map(len(jobs), func(i int) (*workload.Result, error) {
		j := jobs[i]
		return runIometer(j.cfg, j.policy, j.w, j.total, seed, j.mod)
	})
}

// replayMean replays a trace on a configuration and returns the reported
// mean response time (sync requests only, plus ReportPad). The bool is
// false when the configuration saturated.
func replayMean(cfg layout.Config, policy string, tr *trace.Trace, seed int64, mod func(*core.Options)) (des.Time, bool, error) {
	sim, a, err := buildArray(cfg, policy, tr.DataSectors, seed, mod)
	if err != nil {
		return 0, false, err
	}
	res, err := workload.Replay(sim, a, tr)
	if err != nil {
		return 0, false, err
	}
	if res.Saturated {
		return 0, false, nil
	}
	return res.MeanResponse() + ReportPad, true, nil
}
