// Package calib implements MimdRAID's software-only disk head position
// prediction (paper Section 3.2) plus the supporting measurement machinery:
// rotation-period tracking from reference-sector reads, seek-curve and
// overhead profiling, Worthington-style geometry extraction from timing
// probes, and the slack-k feedback controller that keeps scheduled requests
// on rotational target.
//
// None of this peeks at the simulated drive's mechanical state: everything
// is inferred from host-visible completion timestamps, which in prototype
// mode are perturbed by the bus noise model. That is the point — the paper
// showed a driver can track a 10 kRPM spindle to ~1% of a rotation through
// OS and SCSI timing noise, and this package reproduces that claim against
// the simulated noise.
package calib

import (
	"fmt"
	"math"

	"repro/internal/bus"
	"repro/internal/des"
	"repro/internal/disk"
)

// obs is one reference-sector observation: the inferred mechanical
// completion time and its unwrapped rotation count since the first
// observation.
type obs struct {
	t des.Time
	n float64
}

// Tracker estimates a drive's true rotation period and phase from periodic
// reads of a fixed reference sector. The basic identity (paper Section 3.2)
// is that mechanical completions of reads of the same sector are spaced by
// exact multiples of the rotation period; the host-visible timestamps add
// only a (bounded, one-sided) overhead.
type Tracker struct {
	// RefLBA is the reference sector (default 0).
	RefLBA int64
	// RecalibrateEvery is the target interval between reference reads once
	// calibrated (the paper uses two minutes).
	RecalibrateEvery des.Time
	// Window is how many observations the regression keeps.
	Window int

	geom        *disk.Geometry
	refEndAngle float64  // platter angle when the reference read mechanically completes
	postMean    des.Time // completion-side overhead (incl. bus transfer) subtracted from timestamps

	rHat    des.Time // estimated rotation period
	history []obs
	lastObs des.Time
	calOK   bool
	anchorT des.Time // fitted mechanical time of the latest observation
	// lastExternal is the time of the latest opportunistic anchor update;
	// a fresh external anchor substitutes for a reference read.
	lastExternal des.Time

	// ObsCount counts reference-sector reads consumed (calibration cost).
	ObsCount int
}

// NewTracker builds a tracker for a drive with the given (extracted)
// geometry and nominal rotation period. postMean is the mean
// completion-side overhead to subtract from observed timestamps; it can
// come from MeasureOverheads.
func NewTracker(geom *disk.Geometry, nominalR des.Time, postMean des.Time) *Tracker {
	t := &Tracker{
		RefLBA:           0,
		RecalibrateEvery: 2 * des.Minute,
		Window:           24,
		geom:             geom,
		postMean:         postMean,
		rHat:             nominalR,
	}
	p, err := geom.LBAToPhys(t.RefLBA)
	if err != nil {
		panic(fmt.Sprintf("calib: reference LBA: %v", err))
	}
	// Mechanical completion happens when the *end* of the sector passes.
	t.refEndAngle = math.Mod(geom.SectorAngle(p)+geom.AngularWidth(p.Cyl), 1)
	return t
}

// R returns the current rotation-period estimate.
func (t *Tracker) R() des.Time { return t.rHat }

// Calibrated reports whether enough observations exist to predict.
func (t *Tracker) Calibrated() bool { return t.calOK }

// RefCommand returns the read command used for calibration.
func (t *Tracker) RefCommand() bus.Command {
	return bus.Command{Op: bus.OpRead, LBA: t.RefLBA, Count: 1}
}

// Due reports whether a new reference read should be issued. During
// bootstrap the interval grows geometrically (1, 2, 4, ... rotations) to
// amortize overhead while extending the regression baseline, exactly as
// the paper describes; once the baseline covers RecalibrateEvery the
// tracker settles into the periodic regime.
func (t *Tracker) Due(now des.Time) bool {
	if len(t.history) == 0 {
		return true
	}
	if t.calOK && now-t.lastExternal < t.RecalibrateEvery/4 {
		// Opportunistic anchors are keeping the phase pinned; the period
		// estimate from the calibration baseline does not go stale, so
		// reference reads can be skipped entirely.
		return false
	}
	return now >= t.lastObs+t.nextInterval()
}

func (t *Tracker) nextInterval() des.Time {
	if len(t.history) < 2 {
		return t.rHat
	}
	span := t.history[len(t.history)-1].t - t.history[0].t
	if span < t.RecalibrateEvery {
		// Doubling regime: next gap = current baseline (so the baseline
		// doubles each read) but at least a couple of rotations.
		g := span
		if g < 2*t.rHat {
			g = 2 * t.rHat
		}
		return g
	}
	return t.RecalibrateEvery
}

// Observe feeds a completed reference-sector read into the tracker.
func (t *Tracker) Observe(comp bus.Completion) {
	if comp.Cmd.LBA != t.RefLBA || comp.Cmd.Op != bus.OpRead {
		return
	}
	t.ObsCount++
	mech := comp.Observed - t.postMean
	t.lastObs = comp.Observed
	if len(t.history) == 0 {
		t.history = append(t.history, obs{t: mech, n: 0})
		return
	}
	// Unwrap: the rotation count since the previous observation, using the
	// current period estimate. The doubling schedule guarantees the
	// estimate is always accurate enough that rounding is unambiguous.
	prev := t.history[len(t.history)-1]
	dn := math.Round(float64(mech-prev.t) / float64(t.rHat))
	if dn < 1 {
		dn = 1
	}
	t.history = append(t.history, obs{t: mech, n: prev.n + dn})
	if len(t.history) > t.Window {
		t.history = t.history[len(t.history)-t.Window:]
	}
	t.refit()
}

// refit runs least squares of time against rotation count, pruning gross
// outliers (rare OS scheduling glitches add milliseconds to a timestamp and
// would otherwise tilt the whole fit). The slope is the period; combined
// with the known angle of the reference sector this pins the phase.
func (t *Tracker) refit() {
	for pass := 0; pass < 3; pass++ {
		t.fitOnce()
		if len(t.history) <= 6 {
			return
		}
		// Drop the worst point if it is implausibly far off the line.
		worst, worstAbs := -1, 0.0
		for i, o := range t.history {
			resid := math.Abs(float64(o.t-t.anchorT) - float64(t.rHat)*(o.n-t.history[len(t.history)-1].n))
			if resid > worstAbs {
				worst, worstAbs = i, resid
			}
		}
		if worstAbs < 400 { // microseconds; far beyond normal jitter
			return
		}
		t.history = append(t.history[:worst], t.history[worst+1:]...)
	}
}

func (t *Tracker) fitOnce() {
	if len(t.history) < 2 {
		return
	}
	var sn, st float64
	for _, o := range t.history {
		sn += o.n
		st += float64(o.t)
	}
	k := float64(len(t.history))
	mn, mt := sn/k, st/k
	var num, den float64
	for _, o := range t.history {
		num += (o.n - mn) * (float64(o.t) - mt)
		den += (o.n - mn) * (o.n - mn)
	}
	if den == 0 {
		return
	}
	t.rHat = des.Time(num / den)
	// Anchor the phase on the regression line at the newest observation
	// rather than on the raw timestamp, so a single noisy or outlier read
	// cannot shift every prediction until the next recalibration.
	lastN := t.history[len(t.history)-1].n
	t.anchorT = des.Time(mt + float64(t.rHat)*(lastN-mn))
	t.calOK = len(t.history) >= 4
}

// anchor returns a recent (time, angle) pair on the fitted line.
func (t *Tracker) anchor() (des.Time, float64) {
	return t.anchorT, t.refEndAngle
}

// AngleAt predicts the platter angle at absolute time at, in [0,1).
// Callers must check Calibrated first.
func (t *Tracker) AngleAt(at des.Time) float64 {
	t0, a0 := t.anchor()
	a := a0 + float64(at-t0)/float64(t.rHat)
	a -= math.Floor(a)
	return a
}

// TimeToAngle predicts the delay from time at until the platter reaches
// the target angle.
func (t *Tracker) TimeToAngle(at des.Time, target float64) des.Time {
	diff := target - t.AngleAt(at)
	diff -= math.Floor(diff)
	return des.Time(diff * float64(t.rHat))
}

// OpportunisticObserve refines the phase anchor using the completion of an
// ordinary (non-reference) read whose final sector is known. The paper
// lists this as an unimplemented optimization ("we can exploit the timing
// information and known disk head location at the end of a request"); it
// is implemented here behind this method and ablated in the benchmarks.
// Only the phase anchor moves — the period estimate still comes from the
// reference regression, since a single noisy point carries no slope
// information.
func (t *Tracker) OpportunisticObserve(comp bus.Completion, endOfLast disk.Chs) {
	if !t.calOK {
		return
	}
	mech := comp.Observed - t.postMean
	endAngle := math.Mod(t.geom.SectorAngle(endOfLast)+t.geom.AngularWidth(endOfLast.Cyl), 1)
	// Residual between where the model says the platter was and where the
	// completed request proves it was; nudge the anchor by a damped step.
	pred := t.AngleAt(mech)
	resid := endAngle - pred
	resid -= math.Round(resid) // into [-0.5, 0.5)
	const gain = 0.15
	t.anchorT -= des.Time(resid * gain * float64(t.rHat))
	t.lastExternal = mech
}

// Bootstrap runs the initial calibration synchronously against a drive:
// it issues reference reads on the doubling schedule until the regression
// baseline reaches the recalibration interval. It owns the simulator loop
// while it runs, so call it before attaching the drive to an array.
func (t *Tracker) Bootstrap(sim *des.Sim, drv *bus.Drive) {
	for {
		done := false
		issue := func() {
			drv.Submit(t.RefCommand(), func(c bus.Completion) {
				t.Observe(c)
				done = true
			})
		}
		wait := des.Time(0)
		if len(t.history) > 0 {
			next := t.lastObs + t.nextInterval()
			if next > sim.Now() {
				wait = next - sim.Now()
			}
		}
		sim.After(wait, issue)
		for !done {
			if !sim.Step() {
				panic("calib: bootstrap stalled")
			}
		}
		if span := t.baselineSpan(); t.calOK && span >= t.RecalibrateEvery {
			return
		}
	}
}

func (t *Tracker) baselineSpan() des.Time {
	if len(t.history) < 2 {
		return 0
	}
	return t.history[len(t.history)-1].t - t.history[0].t
}
