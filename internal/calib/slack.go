package calib

// SlackController implements the paper's real-time feedback loop on the
// rotational slack (Section 3.2): when the predictor says the head is less
// than k sectors from a target, the scheduler conservatively treats that
// target as missed and aims for the next replica. The controller widens k
// while more than about 1% of requests miss their rotational target and
// narrows it after sustained clean windows, so the system converges to the
// smallest slack that keeps >99% of requests on target.
type SlackController struct {
	// MinK and MaxK bound the slack.
	MinK, MaxK int
	// WindowSize is the number of completions per adjustment window.
	WindowSize int
	// TargetMissRate is the acceptable fraction of rotation misses.
	TargetMissRate float64

	k            int
	window       int
	misses       int
	cleanWindows int
}

// NewSlackController returns a controller starting at startK sectors.
func NewSlackController(startK int) *SlackController {
	return &SlackController{
		MinK:           0,
		MaxK:           64,
		WindowSize:     200,
		TargetMissRate: 0.01,
		k:              startK,
	}
}

// K returns the current slack in sectors.
func (s *SlackController) K() int { return s.k }

// Record feeds one completion into the feedback loop.
func (s *SlackController) Record(rotationMiss bool) {
	s.window++
	if rotationMiss {
		s.misses++
	}
	if s.window < s.WindowSize {
		return
	}
	missRate := float64(s.misses) / float64(s.window)
	switch {
	case missRate > s.TargetMissRate:
		// Grow quickly: every miss costs a full rotation.
		s.k += 2
		if s.k > s.MaxK {
			s.k = s.MaxK
		}
		s.cleanWindows = 0
	case s.misses == 0:
		// Shrink cautiously after several consecutive clean windows.
		s.cleanWindows++
		if s.cleanWindows >= 3 && s.k > s.MinK {
			s.k--
			s.cleanWindows = 0
		}
	default:
		s.cleanWindows = 0
	}
	s.window, s.misses = 0, 0
}
