package calib

import (
	"math"
	"testing"

	"repro/internal/des"
	"repro/internal/disk"
)

func TestMeasureRotation(t *testing.T) {
	sim, drv, d := protoDrive(t, 11)
	got := MeasureRotation(sim, drv, d.NominalR)
	if err := math.Abs(float64(got - d.R)); err > 0.2 {
		t.Fatalf("measured R = %v, true %v (err %.3fus)", got, d.R, err)
	}
}

func TestMeasureOverheadSum(t *testing.T) {
	sim, drv, d := protoDrive(t, 13)
	r := MeasureRotation(sim, drv, d.NominalR)
	got := MeasureOverheadSum(sim, drv, drv.Geometry(), r)
	// True mean: pre (120+15) + post (90+20) + one sector over the bus.
	want := 248.0
	if math.Abs(float64(got)-want) > 70 {
		t.Fatalf("overhead sum = %v, want ~%.0fus +-70", got, want)
	}
}

func TestMeasureSeekCurve(t *testing.T) {
	sim, drv, d := protoDrive(t, 17)
	r := MeasureRotation(sim, drv, d.NominalR)
	oh := MeasureOverheadSum(sim, drv, drv.Geometry(), r)
	sc, err := MeasureSeekCurve(sim, drv, drv.Geometry(), r, oh, d.Seek.WriteSettle)
	if err != nil {
		t.Fatal(err)
	}
	for _, dist := range []int{1, 10, 100, 1000, 3000, 6000} {
		got := float64(sc.Time(dist, false))
		want := float64(d.Seek.Time(dist, false))
		tol := 0.12*want + 250
		if math.Abs(got-want) > tol {
			t.Errorf("seek(%d) = %.0fus, true %.0fus (tol %.0f)", dist, got, want, tol)
		}
	}
}

func TestExtractGeometry(t *testing.T) {
	if testing.Short() {
		t.Skip("geometry extraction issues thousands of probe I/Os")
	}
	sim, drv, d := protoDrive(t, 19)
	got, err := ExtractGeometry(sim, drv, d.NominalR)
	if err != nil {
		t.Fatal(err)
	}
	if e := math.Abs(float64(got.R - d.R)); e > 0.5 {
		t.Errorf("extracted R = %v, true %v", got.R, d.R)
	}
	if got.Heads != d.Geom.Heads {
		t.Errorf("extracted heads = %d, true %d", got.Heads, d.Geom.Heads)
	}
	z0 := d.Geom.Zones[0]
	if got.TrackSkew < z0.TrackSkew-1 || got.TrackSkew > z0.TrackSkew+1 {
		t.Errorf("extracted track skew = %d, true %d", got.TrackSkew, z0.TrackSkew)
	}
	if got.CylSkew < z0.CylSkew-2 || got.CylSkew > z0.CylSkew+2 {
		t.Errorf("extracted cylinder skew = %d, true %d", got.CylSkew, z0.CylSkew)
	}
	// Zone SPT sequence must match the true zone map.
	var trueSPT []int
	for _, z := range d.Geom.Zones {
		trueSPT = append(trueSPT, z.SPT)
	}
	if len(got.ZoneSPT) != len(trueSPT) {
		t.Fatalf("extracted %d zones (%v), true %d (%v)", len(got.ZoneSPT), got.ZoneSPT, len(trueSPT), trueSPT)
	}
	for i := range trueSPT {
		if got.ZoneSPT[i] != trueSPT[i] {
			t.Errorf("zone %d SPT = %d, true %d", i, got.ZoneSPT[i], trueSPT[i])
		}
	}
	// Zone starts should be within the binary search resolution plus one
	// cylinder of the truth.
	for i := 1; i < len(got.ZoneStarts); i++ {
		z := d.Geom.Zones[i]
		trueStart, err := d.Geom.PhysToLBA(disk.Chs{Cyl: z.StartCyl, Head: 0, Sector: 0})
		if err != nil {
			t.Fatal(err)
		}
		tol := int64(1<<16 + d.Geom.Heads*z.SPT)
		if diff := got.ZoneStarts[i] - trueStart; diff < -tol || diff > tol {
			t.Errorf("zone %d start = %d, true %d (tol %d)", i, got.ZoneStarts[i], trueStart, tol)
		}
	}
	_ = des.Time(0)
}
