package calib

import (
	"math"
	"sort"

	"repro/internal/bus"
	"repro/internal/des"
	"repro/internal/disk"
)

// runCmd submits cmd and steps the simulator until it completes. The
// measurement routines own the simulation loop while they run, mirroring
// how the real driver calibrated disks at attach time before admitting
// traffic.
func runCmd(sim *des.Sim, drv *bus.Drive, cmd bus.Command) bus.Completion {
	var out bus.Completion
	done := false
	drv.Submit(cmd, func(c bus.Completion) {
		out = c
		done = true
	})
	for !done {
		if !sim.Step() {
			panic("calib: simulation stalled mid-command")
		}
	}
	return out
}

func read1(sim *des.Sim, drv *bus.Drive, lba int64) bus.Completion {
	return runCmd(sim, drv, bus.Command{Op: bus.OpRead, LBA: lba, Count: 1})
}

// MeasureRotation estimates the rotation period from host timestamps only.
// Back-to-back reads of the same sector mechanically complete exactly one
// rotation apart, so the observed gap is R plus a zero-mean difference of
// completion overheads; a long baseline then divides the noise down, the
// same doubling trick the head tracker uses.
func MeasureRotation(sim *des.Sim, drv *bus.Drive, nominalR des.Time) des.Time {
	const lba = 0
	// Short gaps: median of 9 single-rotation gaps gives a safe unwrap
	// estimate.
	prev := read1(sim, drv, lba)
	var gaps []float64
	for i := 0; i < 9; i++ {
		cur := read1(sim, drv, lba)
		gaps = append(gaps, float64(cur.Observed-prev.Observed))
		prev = cur
	}
	sort.Float64s(gaps)
	rough := gaps[len(gaps)/2]
	if rough > 1.5*float64(nominalR) {
		// Overheads exceeded one rotation; fold multiples out.
		n := math.Round(rough / float64(nominalR))
		rough /= n
	}
	// Lengthen the baseline in stages. Each stage's rotation count must be
	// small enough that the previous estimate unwraps it unambiguously
	// (error * rotations << R/2); tripling the baseline by ~16x per stage
	// keeps that easily satisfied while driving the noise down to
	// nanoseconds per rotation.
	for _, rotations := range []float64{64, 1024, 8192} {
		first := read1(sim, drv, lba)
		target := sim.Now() + des.Time(rotations*rough)
		for sim.Now() < target {
			if !sim.Step() {
				sim.RunUntil(target)
			}
		}
		last := read1(sim, drv, lba)
		span := float64(last.Observed - first.Observed)
		n := math.Round(span / rough)
		rough = span / n
	}
	return des.Time(rough)
}

// MeasureOverheadSum estimates the total fixed command overhead
// (submit-side + completion-side + bus transfer) in time units. It reads a
// base sector and then a sector m slots ahead on the same track for
// increasing m: while the overhead exceeds the angular gap the drive blows
// a full revolution, and the first m that services quickly brackets the
// overhead at m sector widths. geom supplies the track map (from
// extraction).
func MeasureOverheadSum(sim *des.Sim, drv *bus.Drive, geom *disk.Geometry, r des.Time) des.Time {
	base, err := geom.LBAToPhys(0)
	if err != nil {
		panic(err)
	}
	spt := geom.SPTOf(base.Cyl)
	width := float64(r) / float64(spt)
	// A same-track LBA m sectors ahead (stay clear of the track end).
	lbaOf := func(m int) int64 {
		p := disk.Chs{Cyl: base.Cyl, Head: base.Head, Sector: (base.Sector + m) % spt}
		lba, err := geom.PhysToLBA(p)
		if err != nil {
			panic(err)
		}
		return lba
	}
	// Binary search the smallest m whose immediate follow-up read does not
	// lose a rotation. Repeat each probe a few times and take the median
	// service to reject jitter.
	quick := func(m int) bool {
		var svc []float64
		for i := 0; i < 5; i++ {
			read1(sim, drv, lbaOf(0))
			c := read1(sim, drv, lbaOf(m))
			svc = append(svc, float64(c.ServiceTime()))
		}
		sort.Float64s(svc)
		return svc[len(svc)/2] < 0.7*float64(r)
	}
	// Search only up to half a track: beyond that the wrap-around makes the
	// follow-up read slow again (the target sector is almost a full
	// rotation away), breaking monotonicity.
	lo, hi := 1, spt/2
	if !quick(hi) {
		// Overhead bigger than half a rotation; report that bound.
		return r / 2
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if quick(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	// The follow-up read catches sector m when the overhead fits in the
	// m-1 sector gap between the end of the base sector and the start of
	// sector m, so the overhead is about (lo-1.5) widths.
	return des.Time((float64(lo) - 1.5) * width)
}

// MeasureSeekCurve fits the three-term seek curve from timing probes. For
// each probe distance it seeks out and back many times with varying target
// sectors and keeps the minimum observed service time, which approaches
// pre + seek + transfer + post as rotational luck strikes; subtracting the
// measured overhead sum and the expected residual rotational wait leaves
// the seek time.
func MeasureSeekCurve(sim *des.Sim, drv *bus.Drive, geom *disk.Geometry, r, overheadSum des.Time, writeSettle des.Time) (disk.SeekCurve, error) {
	maxCyl := geom.LogicalCylinders() - 1
	distances := probeDistances(maxCyl)
	const trials = 32
	// Expected minimum of `trials` uniform rotational waits is R/(trials+1).
	residual := float64(r) / float64(trials+1)

	type pt struct{ d, t float64 }
	var pts []pt
	for _, d := range distances {
		homeLBA := lbaAtCylinder(geom, 100)
		awayLBA := lbaAtCylinder(geom, 100+d)
		awaySPT := geom.SPTOf(100 + d)
		minSvc := math.Inf(1)
		for i := 0; i < trials; i++ {
			read1(sim, drv, homeLBA+int64(i%8))
			// Sweep the target sector across the whole track so at least
			// one trial lands with near-zero rotational wait after the
			// seek.
			off := int64(i*awaySPT/trials) % int64(awaySPT)
			c := read1(sim, drv, awayLBA+off)
			if s := float64(c.ServiceTime()); s < minSvc {
				minSvc = s
			}
		}
		seek := minSvc - float64(overheadSum) - residual
		if seek < 0 {
			seek = 0
		}
		pts = append(pts, pt{float64(d), seek})
	}
	// Least squares on [1, sqrt(d), d].
	var m [3][4]float64
	for _, p := range pts {
		b := [3]float64{1, math.Sqrt(p.d), p.d}
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				m[i][j] += b[i] * b[j]
			}
			m[i][3] += b[i] * p.t
		}
	}
	if err := solve3(&m); err != nil {
		return disk.SeekCurve{}, err
	}
	sc := disk.SeekCurve{Alpha: m[0][3], Beta: m[1][3], Gamma: m[2][3], WriteSettle: writeSettle}
	if sc.Gamma < 0 {
		sc.Gamma = 0
	}
	return sc, nil
}

func probeDistances(maxCyl int) []int {
	var ds []int
	for d := 1; d < maxCyl-200; d = int(float64(d)*1.7) + 1 {
		ds = append(ds, d)
	}
	ds = append(ds, maxCyl-200)
	return ds
}

// lbaAtCylinder returns the first LBA on the given cylinder.
func lbaAtCylinder(geom *disk.Geometry, cyl int) int64 {
	lba, err := geom.PhysToLBA(disk.Chs{Cyl: cyl, Head: 0, Sector: 0})
	if err != nil {
		// Slipped defects can make sector 0 unmappable; walk forward.
		spt := geom.SPTOf(cyl)
		for s := 1; s < spt; s++ {
			if l, e := geom.PhysToLBA(disk.Chs{Cyl: cyl, Head: 0, Sector: s}); e == nil {
				return l
			}
		}
		panic(err)
	}
	return lba
}

// solve3 solves a 3x3 normal-equation system (same layout as disk.gauss).
func solve3(m *[3][4]float64) error {
	n := 3
	for col := 0; col < n; col++ {
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-9 {
			return errSingular
		}
		m[col], m[pivot] = m[pivot], m[col]
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := m[r][col] / m[col][col]
			for k := col; k <= n; k++ {
				m[r][k] -= f * m[col][k]
			}
		}
	}
	for i := 0; i < n; i++ {
		m[i][3] /= m[i][i]
	}
	return nil
}

type singularErr struct{}

func (singularErr) Error() string { return "calib: singular fit" }

var errSingular = singularErr{}
