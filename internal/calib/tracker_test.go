package calib

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/bus"
	"repro/internal/des"
	"repro/internal/disk"
)

// protoDrive builds a prototype-mode drive whose spindle is off nominal
// speed and phase, behind the default noise model.
func protoDrive(t testing.TB, seed int64) (*des.Sim, *bus.Drive, *disk.Disk) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	sp := disk.ST39133LWV()
	sp.RSkew = (rng.Float64()*2 - 1) * 4e-4 // within ±0.04% of nominal
	sp.Phase = rng.Float64()
	d, err := sp.New()
	if err != nil {
		t.Fatal(err)
	}
	sim := des.New()
	drv := bus.NewPrototype(sim, d, bus.DefaultNoise(), seed+1)
	return sim, drv, d
}

// truePostMean returns the mean completion-side overhead of the default
// noise model plus the single-sector bus transfer, which a deployment
// would obtain from MeasureOverheadSum.
func truePostMean() des.Time {
	n := bus.DefaultNoise()
	return n.PostBase + n.PostJitter + des.Time(disk.SectorSize/(160e6/1e6))
}

func TestTrackerEstimatesRotationPeriod(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		sim, drv, d := protoDrive(t, seed)
		trk := NewTracker(drv.Geometry(), d.NominalR, truePostMean())
		trk.Bootstrap(sim, drv)
		relErr := math.Abs(float64(trk.R()-d.R)) / float64(d.R)
		if relErr > 2e-6 {
			t.Errorf("seed %d: R estimate off by %.2e relative (est %v true %v)", seed, relErr, trk.R(), d.R)
		}
	}
}

func TestTrackerPredictsAngleWithinOnePercent(t *testing.T) {
	sim, drv, d := protoDrive(t, 42)
	trk := NewTracker(drv.Geometry(), d.NominalR, truePostMean())
	trk.Bootstrap(sim, drv)
	if !trk.Calibrated() {
		t.Fatal("tracker not calibrated after bootstrap")
	}
	// Sample prediction error over the following two minutes (the paper's
	// recalibration interval): 98% of predictions within 1% of a rotation.
	rng := rand.New(rand.NewSource(9))
	start := sim.Now()
	var errs []float64
	for i := 0; i < 2000; i++ {
		at := start + des.Time(rng.Float64()*float64(2*des.Minute))
		pred := trk.AngleAt(at)
		truth := d.AngleAt(at)
		e := math.Abs(circDiff(pred, truth))
		errs = append(errs, e)
	}
	sort.Float64s(errs)
	p98 := errs[int(0.98*float64(len(errs)))]
	if p98 > 0.012 {
		t.Fatalf("98th percentile angle error = %.4f rotations, want <= 0.012 (1%% + margin)", p98)
	}
}

func circDiff(a, b float64) float64 {
	d := a - b
	d -= math.Round(d)
	return d
}

func TestTrackerStaysCalibratedAcrossRecalibrations(t *testing.T) {
	sim, drv, d := protoDrive(t, 7)
	trk := NewTracker(drv.Geometry(), d.NominalR, truePostMean())
	trk.Bootstrap(sim, drv)

	// Run half an hour of periodic recalibration, checking prediction
	// accuracy at the end of each interval (the worst moment).
	horizon := sim.Now() + 30*des.Minute
	for sim.Now() < horizon {
		next := sim.Now() + trk.RecalibrateEvery
		sim.RunUntil(next)
		if !trk.Due(sim.Now()) {
			t.Fatal("tracker not due after a full interval")
		}
		at := sim.Now()
		e := math.Abs(circDiff(trk.AngleAt(at), d.AngleAt(at)))
		if e > 0.02 {
			t.Fatalf("at %v: angle error %.4f rotations just before recalibration", at, e)
		}
		comp := runCmd(sim, drv, trk.RefCommand())
		trk.Observe(comp)
	}
	if trk.ObsCount < 15 {
		t.Fatalf("expected periodic observations, got %d", trk.ObsCount)
	}
}

func TestTrackerIgnoresForeignCompletions(t *testing.T) {
	sim, drv, d := protoDrive(t, 3)
	trk := NewTracker(drv.Geometry(), d.NominalR, truePostMean())
	comp := runCmd(sim, drv, bus.Command{Op: bus.OpRead, LBA: 999, Count: 1})
	trk.Observe(comp)
	if trk.ObsCount != 0 {
		t.Fatal("tracker consumed a non-reference completion")
	}
}

func TestOpportunisticObserveReducesDrift(t *testing.T) {
	sim, drv, d := protoDrive(t, 21)
	trk := NewTracker(drv.Geometry(), d.NominalR, truePostMean())
	trk.Bootstrap(sim, drv)
	// Inject an artificial anchor error, then feed ordinary completions;
	// the damped corrections should shrink the error.
	trk.anchorT += des.Time(0.05 * float64(trk.R())) // 5% of a rotation
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 60; i++ {
		lba := rng.Int63n(drv.Geometry().TotalSectors() - 8)
		comp := runCmd(sim, drv, bus.Command{Op: bus.OpRead, LBA: lba, Count: 1})
		end, err := drv.Geometry().LBAToPhys(lba)
		if err != nil {
			t.Fatal(err)
		}
		trk.OpportunisticObserve(comp, end)
	}
	at := sim.Now()
	e := math.Abs(circDiff(trk.AngleAt(at), d.AngleAt(at)))
	if e > 0.02 {
		t.Fatalf("angle error after opportunistic updates = %.4f rotations, want < 0.02", e)
	}
}

func TestSlackControllerConverges(t *testing.T) {
	s := NewSlackController(4)
	// Phase 1: 5% miss rate -> k must grow.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		s.Record(rng.Float64() < 0.05)
	}
	if s.K() <= 4 {
		t.Fatalf("k = %d after sustained misses, want growth", s.K())
	}
	grown := s.K()
	// Phase 2: no misses -> k shrinks, but never below MinK.
	for i := 0; i < 20000; i++ {
		s.Record(false)
	}
	if s.K() >= grown {
		t.Fatalf("k = %d after clean run, want shrink from %d", s.K(), grown)
	}
	if s.K() < s.MinK {
		t.Fatalf("k = %d below MinK %d", s.K(), s.MinK)
	}
}

// With a physically plausible miss model — misses become exponentially
// rarer as slack grows — the controller settles near the smallest k that
// meets the target rate instead of drifting.
func TestSlackControllerEquilibrates(t *testing.T) {
	s := NewSlackController(0)
	rng := rand.New(rand.NewSource(2))
	missProb := func(k int) float64 { return 0.3 * math.Exp(-float64(k)/3) }
	// Warm up to equilibrium.
	for i := 0; i < 30000; i++ {
		s.Record(rng.Float64() < missProb(s.K()))
	}
	// Measure over a long steady window.
	misses, total := 0, 60000
	var kSum int
	for i := 0; i < total; i++ {
		hit := rng.Float64() < missProb(s.K())
		if hit {
			misses++
		}
		kSum += s.K()
		s.Record(hit)
	}
	rate := float64(misses) / float64(total)
	if rate > 0.02 {
		t.Fatalf("steady-state miss rate = %.4f, want <= 0.02", rate)
	}
	avgK := float64(kSum) / float64(total)
	// exp(-k/3)*0.3 <= 0.01 at k ≈ 10.2; equilibrium should hover near it,
	// not pin at MaxK.
	if avgK < 6 || avgK > 24 {
		t.Fatalf("average k = %.1f, want near the smallest sufficient slack (~10)", avgK)
	}
}

func TestAccuracyStatsReport(t *testing.T) {
	var a AccuracyStats
	r := des.Time(6000)
	// 99 on-target predictions with small errors, 1 rotation miss.
	for i := 0; i < 99; i++ {
		a.Add(PredictionRecord{Predicted: 2000, Measured: 2000 + des.Time(i%5)})
	}
	a.Add(PredictionRecord{Predicted: 2000, Measured: 2000 + r})
	miss, mean, std, acc, demerit := a.Report(r)
	if math.Abs(miss-0.01) > 1e-9 {
		t.Errorf("miss rate = %v, want 0.01", miss)
	}
	if mean < 0 || mean > 70 {
		t.Errorf("mean error = %v, implausible", mean)
	}
	if std <= 0 {
		t.Errorf("std = %v, want > 0", std)
	}
	if acc < 2000 {
		t.Errorf("mean access = %v", acc)
	}
	if demerit < std {
		t.Errorf("demerit %v should be >= std %v with a mean offset", demerit, std)
	}
}

func TestExactEstimatorMatchesDisk(t *testing.T) {
	sp := disk.ST39133LWV()
	d := sp.MustNew()
	e := &Exact{Dsk: d, Overhead: 300}
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 50; i++ {
		c := rng.Intn(d.Geom.Cylinders)
		req := disk.Request{Start: disk.Chs{Cyl: c, Head: rng.Intn(d.Geom.Heads), Sector: rng.Intn(d.Geom.SPTOf(c))}, Count: 1}
		st := disk.State{Cyl: rng.Intn(d.Geom.Cylinders)}
		now := des.Time(rng.Float64() * 1e6)
		got := e.Access(st, req, now)
		want, err := d.AccessTime(st, req, now+150)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(float64(got-(want+300))) > 1e-9 {
			t.Fatalf("Exact.Access = %v, want %v", got, want+300)
		}
	}
}

// The tracked estimator's predictions should match the true service time
// closely for most requests (this is the in-vitro version of Table 2).
func TestTrackedEstimatorPredictionError(t *testing.T) {
	sim, drv, d := protoDrive(t, 99)
	trk := NewTracker(drv.Geometry(), d.NominalR, truePostMean())
	trk.Bootstrap(sim, drv)

	noise := bus.DefaultNoise()
	est := &Tracked{
		Geom:       drv.Geometry(),
		Seek:       d.Seek, // assume the profiler recovered the curve
		HeadSwitch: d.HeadSwitch,
		Pre:        noise.PreBase + noise.PreJitter,
		Post:       truePostMean(),
		Trk:        trk,
	}
	rng := rand.New(rand.NewSource(123))
	var stats AccuracyStats
	for i := 0; i < 400; i++ {
		lba := rng.Int63n(drv.Geometry().TotalSectors() - 16)
		p, err := drv.Geometry().LBAToPhys(lba)
		if err != nil {
			t.Fatal(err)
		}
		req := disk.Request{Start: p, Count: 1}
		pred := est.Access(drv.ArmState(), req, sim.Now())
		comp := runCmd(sim, drv, bus.Command{Op: bus.OpRead, LBA: lba, Count: 1})
		stats.Add(PredictionRecord{Predicted: pred, Measured: comp.ServiceTime()})
	}
	miss, _, _, _, _ := stats.Report(trk.R())
	if miss > 0.02 {
		t.Fatalf("rotation miss rate = %.3f, want <= 0.02", miss)
	}
	// On-target predictions (the ~99%+ that did not lose a rotation; in
	// the full system the slack loop pushes the rest below 1%) should be
	// tightly clustered: that is Table 2's 3us mean / 31us sigma regime,
	// widened here by the synthetic jitter model.
	var sum, sumSq float64
	n := 0
	for _, rec := range stats.records {
		if rec.IsRotationMiss(trk.R()) {
			continue
		}
		e := float64(rec.Error())
		sum += e
		sumSq += e * e
		n++
	}
	mean := sum / float64(n)
	std := math.Sqrt(sumSq/float64(n) - mean*mean)
	if math.Abs(mean) > 100 {
		t.Fatalf("on-target mean prediction error = %.1fus, want |mean| <= 100us", mean)
	}
	if std > 200 {
		t.Fatalf("on-target prediction error std = %.1fus, want <= 200us", std)
	}
}

func TestTrackerWindowBounded(t *testing.T) {
	sim, drv, d := protoDrive(t, 31)
	trk := NewTracker(drv.Geometry(), d.NominalR, truePostMean())
	trk.Window = 8
	trk.Bootstrap(sim, drv)
	for i := 0; i < 30; i++ {
		comp := runCmd(sim, drv, trk.RefCommand())
		trk.Observe(comp)
	}
	if len(trk.history) > trk.Window {
		t.Fatalf("history grew to %d, window is %d", len(trk.history), trk.Window)
	}
}

func TestSlackControllerRespectsMaxK(t *testing.T) {
	s := NewSlackController(0)
	s.MaxK = 6
	for i := 0; i < 50000; i++ {
		s.Record(true) // everything misses
	}
	if s.K() > s.MaxK {
		t.Fatalf("k = %d exceeded MaxK %d", s.K(), s.MaxK)
	}
	if s.K() != s.MaxK {
		t.Fatalf("k = %d under constant misses, want pinned at MaxK %d", s.K(), s.MaxK)
	}
}

// The tracked estimator's multi-extent AccessRun equals the sum of chained
// single-extent estimates.
func TestTrackedAccessRunChains(t *testing.T) {
	sim, drv, d := protoDrive(t, 37)
	trk := NewTracker(drv.Geometry(), d.NominalR, truePostMean())
	trk.Bootstrap(sim, drv)
	noise := bus.DefaultNoise()
	est := &Tracked{
		Geom:       drv.Geometry(),
		Seek:       d.Seek,
		HeadSwitch: d.HeadSwitch,
		Pre:        noise.PreBase + noise.PreJitter,
		Post:       truePostMean(),
		Trk:        trk,
	}
	extents := []disk.Extent{
		{Start: disk.Chs{Cyl: 100, Head: 0, Sector: 5}, Count: 16},
		{Start: disk.Chs{Cyl: 100, Head: 3, Sector: 40}, Count: 16},
	}
	st := disk.State{Cyl: 90}
	now := sim.Now()
	run := est.AccessRun(st, extents, false, now)
	first := est.Access(st, disk.Request{Start: extents[0].Start, Count: 16}, now)
	second := est.Access(disk.State{Cyl: 100, Head: 0}, disk.Request{Start: extents[1].Start, Count: 16}, now+first)
	if math.Abs(float64(run-(first+second))) > 1e-6 {
		t.Fatalf("AccessRun = %v, chained = %v", run, first+second)
	}
	// Fragmentation costs more than the contiguous equivalent.
	single := est.Access(st, disk.Request{Start: extents[0].Start, Count: 32}, now)
	if run <= single {
		t.Fatalf("two-extent run %v not above one contiguous command %v", run, single)
	}
}
